# Local CI for the daxvm simulator. `make ci` is what a pipeline runs.

GO ?= go

.PHONY: ci build fmt vet test race smoke clean

ci: fmt vet build test race smoke

build:
	$(GO) build ./...

# gofmt -l prints offending files; fail when it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end artifact check: run one quick experiment through the CLI and
# validate the BENCH_*.json it writes (schema validation runs in-process
# via TestArtifactSmoke; this exercises the daxbench flag plumbing too).
smoke:
	@tmp="$$(mktemp -d)"; \
	$(GO) run ./cmd/daxbench -quick -metrics-out "$$tmp" storage >/dev/null && \
	test -s "$$tmp/BENCH_storage.json" && \
	$(GO) test ./internal/bench/ -run TestArtifactSmoke -count=1 >/dev/null && \
	echo "smoke: BENCH_storage.json written and schema-validated"; \
	rc=$$?; rm -rf "$$tmp"; exit $$rc

clean:
	$(GO) clean ./...
