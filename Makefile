# Local CI for the daxvm simulator. `make ci` is what a pipeline runs.

GO ?= go

.PHONY: ci build fmt vet lint lint-json test race smoke sched-gate perf-gate validate-baselines baseline clean

ci: fmt vet lint build test race smoke sched-gate perf-gate validate-baselines

# Experiments the perf gate runs: cheap, deterministic, and together they
# exercise the journal, allocator, file tables and mapped-access paths.
GATE_IDS = storage ftcost numa

build:
	$(GO) build ./...

# gofmt -l prints offending files; fail when it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis: determinism, attribution balance,
# lock discipline, charge units, deterministic map export, whole-program
# lock order and hot-path allocations (see tools/simlint; suppress
# findings with //lint:ignore <analyzer> <why>).
lint:
	$(GO) run ./tools/simlint ./...

# Machine-readable lint dump: one JSON finding per line (suppressed
# findings included) in lint.json, which stays untracked. Exit status
# still reflects unsuppressed findings.
lint-json:
	$(GO) run ./tools/simlint -json ./... > lint.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end artifact check: run one quick experiment through the CLI and
# validate the BENCH_*.json it writes (schema validation runs in-process
# via TestArtifactSmoke; this exercises the daxbench flag plumbing too).
smoke:
	@tmp="$$(mktemp -d)"; \
	$(GO) run ./cmd/daxbench -quick -metrics-out "$$tmp" storage >/dev/null && \
	test -s "$$tmp/BENCH_storage.json" && \
	$(GO) test ./internal/bench/ -run TestArtifactSmoke -count=1 >/dev/null && \
	echo "smoke: BENCH_storage.json written and schema-validated"; \
	rc=$$?; rm -rf "$$tmp"; exit $$rc

# Scheduler-equivalence gate: run one quick experiment through the CLI
# under both schedulers and byte-compare the artifacts up to the host
# block (wall-clock telemetry, serialized last — everything before it is
# virtual-time payload). The in-process half — all three gate experiments
# plus a shard-count sweep — runs as TestSchedGate/TestShardSweep in
# `make test`; this target exercises the -sched/-shards flag plumbing
# end to end.
sched-gate:
	@tmp="$$(mktemp -d)"; rc=0; \
	DAXVM_GIT_SHA=gate $(GO) run ./cmd/daxbench -quick -metrics-out "$$tmp" ftcost >/dev/null || rc=1; \
	mv "$$tmp/BENCH_ftcost.json" "$$tmp/seq.json"; \
	DAXVM_GIT_SHA=gate $(GO) run ./cmd/daxbench -quick -sched shard -shards 4 -metrics-out "$$tmp" ftcost >/dev/null || rc=1; \
	sed '/"host":/,$$d' "$$tmp/seq.json" > "$$tmp/seq.trim"; \
	sed '/"host":/,$$d' "$$tmp/BENCH_ftcost.json" > "$$tmp/shard.trim"; \
	test -s "$$tmp/seq.trim" || rc=1; \
	cmp "$$tmp/seq.trim" "$$tmp/shard.trim" || rc=1; \
	rm -rf "$$tmp"; \
	if [ $$rc -eq 0 ]; then echo "sched-gate: seq and shard artifacts byte-identical"; else echo "sched-gate: FAILED"; fi; exit $$rc

# Perf-regression gate: rerun the gate experiments in quick mode and
# compare each artifact against the committed baseline. The simulator is
# deterministic, so any drift is a real cost-model change — exit 1 tells
# the committer to either fix it or refresh the baseline (make baseline)
# with justification.
perf-gate:
	@tmp="$$(mktemp -d)"; rc=0; \
	$(GO) run ./cmd/daxbench -quick -metrics-out "$$tmp" $(GATE_IDS) >/dev/null || rc=1; \
	for id in $(GATE_IDS); do \
		$(GO) run ./cmd/daxbench -compare "bench/baseline/BENCH_$$id.json" "$$tmp/BENCH_$$id.json" || rc=1; \
	done; \
	rm -rf "$$tmp"; \
	if [ $$rc -eq 0 ]; then echo "perf-gate: ok"; else echo "perf-gate: FAILED"; fi; exit $$rc

# Every committed baseline must parse and pass schema validation: a
# hand-edited or truncated baseline would otherwise surface as a
# confusing compare failure on someone else's branch.
validate-baselines:
	$(GO) run ./cmd/daxbench -validate bench/baseline/*.json
	@echo "validate-baselines: ok"

# Refresh the committed perf-gate baselines (review the diff before
# committing: every change here is a deliberate cost-model retune).
baseline:
	$(GO) run ./cmd/daxbench -quick -metrics-out bench/baseline $(GATE_IDS) >/dev/null
	@echo "baseline: refreshed bench/baseline/ for: $(GATE_IDS)"

clean:
	$(GO) clean ./...
