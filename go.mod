module daxvm

go 1.22
