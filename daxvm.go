// Package daxvm is the public API of the DaxVM reproduction: a simulated
// PMem machine (device, cores, MMU, ext4-DAX/NOVA file systems) with the
// DaxVM extension — pre-populated file tables with O(1) mmap, an
// ephemeral address-space heap, asynchronous batched unmapping, nosync
// durability and asynchronous block pre-zeroing — plus the experiment
// harness that regenerates every table and figure of the MICRO 2022 paper.
//
// Quick start:
//
//	sys := daxvm.NewSystem(daxvm.Config{Cores: 4, EnableDaxVM: true})
//	p := sys.NewProcess()
//	sys.Main(p, func(t *daxvm.Thread, c *daxvm.Core) {
//	    fd, _ := p.Create(t, "hello")
//	    p.Append(t, fd, []byte("persistent bytes"))
//	    va, _ := p.DaxvmMmap(t, c, fd, 0, 16, daxvm.ReadOnly, daxvm.MapEphemeral)
//	    p.AccessMapped(t, c, va, 16, daxvm.AccessSum)
//	    p.DaxvmMunmap(t, c, va)
//	})
//	sys.Run()
package daxvm

import (
	"io"

	"daxvm/internal/bench"
	"daxvm/internal/core"
	"daxvm/internal/cpu"
	"daxvm/internal/kernel"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/obs"
	"daxvm/internal/sim"
)

// Aliases exposing the simulation vocabulary through the public API.
type (
	// Thread is a simulated hardware thread (virtual-clocked).
	Thread = sim.Thread
	// Core is one simulated CPU.
	Core = cpu.Core
	// Process is a simulated process with its own address space.
	Process = kernel.Proc
	// VirtAddr is a simulated user virtual address.
	VirtAddr = mem.VirtAddr
	// AccessKind selects the data-cost model of a mapped access.
	AccessKind = kernel.AccessKind
	// Snapshot is a point-in-time reading of every registered metric;
	// subtract two with Delta for measured-window reporting.
	Snapshot = obs.Snapshot
)

// Permissions.
const (
	ReadOnly  = mem.PermRead
	ReadWrite = mem.PermRead | mem.PermWrite
)

// daxvm_mmap flags (paper §IV-F).
const (
	// MapEphemeral requests the scalable ephemeral-heap allocator
	// (MAP_EPHEMERAL).
	MapEphemeral = core.FlagEphemeral
	// MapUnmapAsync defers unmapping into batched TLB flushes
	// (MAP_UNMAP_ASYNC).
	MapUnmapAsync = core.FlagUnmapAsync
	// MapNoMsync drops all kernel dirty tracking; durability is
	// user-space's job (MAP_NO_MSYNC).
	MapNoMsync = core.FlagNoMsync
)

// POSIX mmap flags.
const (
	MapShared   = mm.MapShared
	MapPopulate = mm.MapPopulate
	MapSync     = mm.MapSync
)

// Mapped-access kinds.
const (
	// AccessSum streams 8-byte loads over the mapping (checksum/search).
	AccessSum = kernel.KindSum
	// AccessCopyOut memcpy-s mapped PMem into a DRAM buffer with AVX.
	AccessCopyOut = kernel.KindCopyOut
	// AccessNTWrite stores with non-temporal writes (user durability).
	AccessNTWrite = kernel.KindNTWrite
	// AccessCachedWrite stores through the cache (msync durability).
	AccessCachedWrite = kernel.KindCachedWrite
)

// FS kinds.
const (
	FSExt4 = kernel.Ext4
	FSNova = kernel.Nova
)

// Config describes a simulated machine.
type Config struct {
	// Cores is the hardware-thread count (default 16, the paper's
	// single socket).
	Cores int
	// DeviceBytes is PMem capacity (default 4 GiB).
	DeviceBytes uint64
	// FS selects the file system (FSExt4 default, FSNova).
	FS kernel.FSKind
	// Age churns the image Geriatrix-style before use.
	Age bool
	// EnableDaxVM activates the DaxVM kernel extension.
	EnableDaxVM bool
	// Prezero starts the asynchronous block pre-zeroing daemon.
	Prezero bool
	// Monitor starts the MMU performance monitor.
	Monitor bool
	// VolatileThreshold / AsyncBatchPages / PrezeroBandwidthMBps tune
	// DaxVM (zero = paper defaults).
	VolatileThreshold    uint64
	AsyncBatchPages      uint64
	PrezeroBandwidthMBps uint64
	// TrackPersistence enables crash simulation.
	TrackPersistence bool
	// TraceCapacity bounds the event-trace ring (0 = default 64k events).
	TraceCapacity int
}

// System is a booted simulated machine.
type System struct {
	K *kernel.Kernel
}

// NewSystem boots a machine. Every system carries an observability hub:
// counters, latency histograms and an event tracer are always wired (the
// hot-path cost is a few branches), readable via Snapshot and WriteTrace.
func NewSystem(cfg Config) *System {
	k := kernel.Boot(kernel.Config{
		Obs:         obs.New(cfg.TraceCapacity),
		Cores:       cfg.Cores,
		DeviceBytes: cfg.DeviceBytes,
		FS:          cfg.FS,
		Age:         cfg.Age,
		DaxVM:       cfg.EnableDaxVM,
		DaxVMConfig: core.Config{
			VolatileThreshold:    cfg.VolatileThreshold,
			AsyncBatchPages:      cfg.AsyncBatchPages,
			PrezeroBandwidthMBps: cfg.PrezeroBandwidthMBps,
		},
		Prezero:          cfg.Prezero,
		Monitor:          cfg.Monitor,
		TrackPersistence: cfg.TrackPersistence,
	})
	return &System{K: k}
}

// NewProcess creates a process.
func (s *System) NewProcess() *Process { return s.K.NewProc() }

// Main schedules fn as the workload of core 0 of the last-created process;
// use Spawn on the process for multi-threaded workloads.
func (s *System) Main(p *Process, fn func(t *Thread, c *Core)) {
	p.Spawn("main", 0, 0, fn)
}

// Run executes all spawned threads to completion, returning the virtual
// makespan in cycles.
func (s *System) Run() uint64 { return s.K.Run() }

// Setup runs fn outside the measured window (corpus creation etc.).
func (s *System) Setup(fn func(t *Thread)) { s.K.Setup(fn) }

// Snapshot reads every registered metric. Take one before and one after a
// measured window and subtract (after.Delta(before)) to report only the
// window's activity.
func (s *System) Snapshot() Snapshot { return s.K.Obs.Reg.Snapshot() }

// WriteTrace exports the retained event trace as Chrome trace-event JSON,
// viewable in Perfetto (https://ui.perfetto.dev) or chrome://tracing. One
// track per simulated core; timestamps are virtual cycles converted to
// microseconds at the simulated 2.7 GHz clock.
func (s *System) WriteTrace(w io.Writer) error { return s.K.Obs.Trace.WriteChromeTrace(w) }

// Experiments lists the reproducible experiment ids (tables/figures).
func Experiments() []string { return bench.IDs() }

// RunExperiment regenerates one paper table/figure, rendering the result
// to w. quick shrinks working sets for CI. log, when non-nil, receives
// per-configuration progress lines as the experiment runs.
func RunExperiment(id string, quick bool, w, log io.Writer) (map[string]float64, error) {
	e, ok := bench.ByID(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	r := e.Run(bench.Options{Quick: quick, Log: log})
	bench.Render(w, r)
	return r.Metrics, nil
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "daxvm: unknown experiment " + string(e)
}
