// Webserver: the paper's Apache experiment in miniature — serve static
// pages from PMem through three interfaces and watch mmap collapse on
// mmap_sem while DaxVM scales (Fig. 8a).
package main

import (
	"fmt"

	"daxvm/internal/kernel"
	"daxvm/internal/workload/webserver"
	"daxvm/internal/workload/wl"
)

func main() {
	fmt.Println("Serving 32 KiB pages with 8 worker threads (aged ext4-DAX image):")
	for _, iface := range []wl.Iface{wl.Read, wl.Mmap, wl.DaxVMAsync} {
		k := kernel.Boot(kernel.Config{
			Cores:       8,
			DeviceBytes: 1 << 30,
			Age:         true,
			DaxVM:       iface.DaxVM,
		})
		r := webserver.Run(k, webserver.Config{
			Threads:           8,
			PageBytes:         32 << 10,
			Pages:             64,
			RequestsPerThread: 200,
			Iface:             iface,
			Seed:              1,
		})
		fmt.Printf("  %-12s %8.0f requests/s  (mmap_sem write contention: %.0f%%)\n",
			iface.Name, r.Throughput, 0.0)
	}
}
