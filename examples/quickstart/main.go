// Quickstart: boot a simulated PMem machine with DaxVM, create a file,
// map it with daxvm_mmap (O(1) file-table attachment), touch it, and
// compare against the POSIX mmap path.
package main

import (
	"fmt"

	"daxvm"
)

func main() {
	sys := daxvm.NewSystem(daxvm.Config{
		Cores:       4,
		DeviceBytes: 512 << 20,
		EnableDaxVM: true,
	})
	p := sys.NewProcess()

	sys.Main(p, func(t *daxvm.Thread, c *daxvm.Core) {
		// Create a 1 MiB file through the (simulated) syscall interface.
		fd, err := p.Create(t, "data/hello")
		check(err)
		check(p.Append(t, fd, make([]byte, 1<<20)))

		// POSIX path: lazy mmap, demand faults on every page.
		start := t.Now()
		va, err := p.Mmap(t, c, fd, 0, 1<<20, daxvm.ReadOnly, daxvm.MapShared)
		check(err)
		check(p.AccessMapped(t, c, va, 1<<20, daxvm.AccessSum))
		check(p.Munmap(t, c, va, 1<<20))
		posixCycles := t.Now() - start

		// DaxVM path: O(1) attachment of the pre-populated file table.
		start = t.Now()
		va, err = p.DaxvmMmap(t, c, fd, 0, 1<<20, daxvm.ReadOnly,
			daxvm.MapEphemeral|daxvm.MapUnmapAsync)
		check(err)
		check(p.AccessMapped(t, c, va, 1<<20, daxvm.AccessSum))
		check(p.DaxvmMunmap(t, c, va))
		daxCycles := t.Now() - start

		fmt.Printf("reading 1 MiB once through each interface:\n")
		fmt.Printf("  POSIX mmap : %8d simulated cycles\n", posixCycles)
		fmt.Printf("  daxvm_mmap : %8d simulated cycles (%.2fx faster)\n",
			daxCycles, float64(posixCycles)/float64(daxCycles))

		check(p.Close(t, fd))
	})
	sys.Run()

	d := sys.K.Dax
	fmt.Printf("\nDaxVM stats: %d attach ops, %d 2MiB table fragments attached\n",
		d.Stats.AttachOps, d.Stats.AttachedChunks)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
