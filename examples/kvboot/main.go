// Kvboot: the paper's P-Redis availability experiment — boot a PMem
// key-value store and watch the warm-up curve: lazy mmap ramps slowly,
// MAP_POPULATE delays boot, DaxVM's pre-populated file tables give full
// throughput instantly (Fig. 9b in miniature).
package main

import (
	"fmt"

	"daxvm/internal/kernel"
	"daxvm/internal/workload/predis"
	"daxvm/internal/workload/wl"
)

func main() {
	cfg := predis.DefaultConfig()
	cfg.CacheBytes = 256 << 20
	cfg.Gets = 12_000
	cfg.Buckets = 8

	fmt.Println("P-Redis-like store: first gets after boot (throughput per slice):")
	for _, v := range []struct {
		name  string
		iface wl.Iface
	}{
		{"mmap (lazy)", wl.Mmap},
		{"mmap (populate)", wl.MmapPopulate},
		{"daxvm", wl.DaxVMNoSync},
	} {
		c := cfg
		c.Iface = v.iface
		k := kernel.Boot(kernel.Config{
			Cores:       2,
			DeviceBytes: c.CacheBytes*4 + (512 << 20), // aged to 70% utilization
			Age:         true,                         // fragmentation breaks huge-page shortcuts
			DaxVM:       v.iface.DaxVM,
		})
		r := predis.Run(k, c)
		fmt.Printf("  %-16s boot %6.2f ms | ops/s per slice:", v.name,
			float64(r.SetupCycles)/2_700_000)
		for _, b := range r.Bucket {
			fmt.Printf(" %4.0fk", b/1000)
		}
		fmt.Println()
	}
}
