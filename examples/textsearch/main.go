// Textsearch: the paper's ag experiment — grep a source-tree-like corpus
// for a needle through read(2) vs daxvm_mmap and verify both find exactly
// the planted matches (Fig. 9a in miniature).
package main

import (
	"fmt"

	"daxvm/internal/kernel"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/textsearch"
	"daxvm/internal/workload/wl"
)

func main() {
	tree := corpus.DefaultTree()
	tree.Files = 1500
	tree.LargeFiles = 1
	tree.LargeBytes = 8 << 20

	fmt.Printf("searching %d files for %q with 8 threads:\n", tree.Files, tree.Needle)
	for _, iface := range []wl.Iface{wl.Read, wl.Mmap, wl.DaxVMAsync} {
		k := kernel.Boot(kernel.Config{
			Cores:       8,
			DeviceBytes: 1 << 30,
			Age:         true,
			DaxVM:       iface.DaxVM,
		})
		r := textsearch.Run(k, textsearch.Config{Threads: 8, Tree: tree, Iface: iface})
		fmt.Printf("  %-12s %8.1f MB/s scanned, %d matches\n", iface.Name, r.Throughput, r.Matches)
	}
}
