// Package topo models the machine's NUMA topology: how many nodes
// (sockets) there are, which cores belong to which node, and the ACPI
// SLIT-style distance between nodes. It also defines the placement
// policies (local / interleave / bind:<n>) that allocators consult when
// choosing a node for new memory.
//
// The paper's testbed is a dual-socket Cascade Lake machine with Optane
// on both sockets; a Topology with Nodes()==1 reproduces the simulator's
// original flat machine exactly.
package topo

import (
	"fmt"
	"strconv"
	"strings"

	"daxvm/internal/mem"
)

// SLIT relative-distance values, matching the convention Linux reports
// in /sys/devices/system/node/node*/distance: local is normalized to 10,
// one QPI/UPI hop to 21. These are dimensionless ratios, not cycles.
const (
	DistanceLocal  = 10
	DistanceRemote = 21
)

// Topology is an immutable description of the machine's node layout.
type Topology struct {
	nodes        int
	coresPerNode int
}

// New builds a topology of n nodes with coresPerNode cores each. Cores
// are assigned to nodes in contiguous blocks: cores [0, coresPerNode)
// are node 0, the next block node 1, and so on, matching the usual
// BIOS enumeration on two-socket Xeons.
func New(nodes, coresPerNode int) *Topology {
	if nodes < 1 {
		panic(fmt.Sprintf("topo: invalid node count %d", nodes))
	}
	if coresPerNode < 1 {
		panic(fmt.Sprintf("topo: invalid cores-per-node %d", coresPerNode))
	}
	return &Topology{nodes: nodes, coresPerNode: coresPerNode}
}

// Single is the flat legacy machine: one node holding all cores.
func Single(cores int) *Topology { return New(1, cores) }

// Nodes returns the number of NUMA nodes.
func (tp *Topology) Nodes() int { return tp.nodes }

// CoresPerNode returns the number of cores on each node.
func (tp *Topology) CoresPerNode() int { return tp.coresPerNode }

// Multi reports whether the machine has more than one node; nil
// receivers stand for the flat single-node machine.
func (tp *Topology) Multi() bool { return tp != nil && tp.nodes > 1 }

// NodeOfCore maps a core ID to its home node. Core IDs past the last
// node's block (possible when the core count does not divide evenly)
// land on the last node.
func (tp *Topology) NodeOfCore(core int) mem.NodeID {
	if tp == nil || core < 0 {
		return 0
	}
	n := core / tp.coresPerNode
	if n >= tp.nodes {
		n = tp.nodes - 1
	}
	return mem.NodeID(n)
}

// Distance returns the SLIT distance between two nodes.
func (tp *Topology) Distance(a, b mem.NodeID) int {
	if a == b {
		return DistanceLocal
	}
	return DistanceRemote
}

// Remote reports whether node b is remote from node a.
func (tp *Topology) Remote(a, b mem.NodeID) bool {
	return tp.Multi() && a != b
}

// PolicyKind selects how a placement policy picks nodes.
type PolicyKind uint8

const (
	// Local allocates on the requesting core's node (Linux default).
	Local PolicyKind = iota
	// Interleave round-robins allocations across all nodes.
	Interleave
	// Bind pins every allocation to one explicit node.
	Bind
)

// Policy is a memory-placement policy, selectable per process (page
// tables, DaxVM volatile tables) and per mount (file-block placement).
type Policy struct {
	Kind PolicyKind
	Node mem.NodeID // target node for Bind
}

// ParsePolicy parses "local", "interleave", or "bind:<n>".
func ParsePolicy(s string) (Policy, error) {
	switch {
	case s == "" || s == "local":
		return Policy{Kind: Local}, nil
	case s == "interleave":
		return Policy{Kind: Interleave}, nil
	case strings.HasPrefix(s, "bind:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "bind:"))
		if err != nil || n < 0 || n > 255 {
			return Policy{}, fmt.Errorf("topo: bad bind node in %q", s)
		}
		return Policy{Kind: Bind, Node: mem.NodeID(n)}, nil
	default:
		return Policy{}, fmt.Errorf("topo: unknown placement policy %q (want local, interleave, or bind:<n>)", s)
	}
}

// MustParsePolicy is ParsePolicy for statically-known strings.
func MustParsePolicy(s string) Policy {
	p, err := ParsePolicy(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Policy) String() string {
	switch p.Kind {
	case Interleave:
		return "interleave"
	case Bind:
		return fmt.Sprintf("bind:%d", p.Node)
	default:
		return "local"
	}
}

// Pick chooses the node for the next allocation. local is the
// requesting core's node; counter is the caller's interleave cursor,
// advanced on every Interleave pick so successive allocations rotate.
func (p Policy) Pick(tp *Topology, local mem.NodeID, counter *uint64) mem.NodeID {
	if !tp.Multi() {
		return 0
	}
	switch p.Kind {
	case Interleave:
		n := mem.NodeID(*counter % uint64(tp.Nodes()))
		*counter++
		return n
	case Bind:
		if int(p.Node) >= tp.Nodes() {
			return mem.NodeID(tp.Nodes() - 1)
		}
		return p.Node
	default:
		return local
	}
}
