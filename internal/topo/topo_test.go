package topo

import (
	"testing"

	"daxvm/internal/mem"
)

func TestNodeOfCore(t *testing.T) {
	tp := New(2, 8)
	for core, want := range map[int]mem.NodeID{0: 0, 7: 0, 8: 1, 15: 1, 16: 1} {
		if got := tp.NodeOfCore(core); got != want {
			t.Errorf("NodeOfCore(%d) = %d, want %d", core, got, want)
		}
	}
	var nilTp *Topology
	if nilTp.NodeOfCore(5) != 0 || nilTp.Multi() {
		t.Error("nil topology must behave as flat node 0")
	}
}

func TestDistance(t *testing.T) {
	tp := New(2, 4)
	if tp.Distance(0, 0) != DistanceLocal || tp.Distance(0, 1) != DistanceRemote {
		t.Errorf("distance matrix wrong: local=%d remote=%d", tp.Distance(0, 0), tp.Distance(0, 1))
	}
	if !tp.Remote(0, 1) || tp.Remote(1, 1) {
		t.Error("Remote misclassifies node pairs")
	}
	if Single(16).Remote(0, 0) {
		t.Error("single-node machine has no remote nodes")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", Policy{Kind: Local}, true},
		{"local", Policy{Kind: Local}, true},
		{"interleave", Policy{Kind: Interleave}, true},
		{"bind:1", Policy{Kind: Bind, Node: 1}, true},
		{"bind:x", Policy{}, false},
		{"bind:-1", Policy{}, false},
		{"remote", Policy{}, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePolicy(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if MustParsePolicy("bind:3").String() != "bind:3" {
		t.Error("Policy round-trip through String failed")
	}
}

func TestPolicyPick(t *testing.T) {
	tp := New(2, 2)
	var ctr uint64
	if (Policy{Kind: Local}).Pick(tp, 1, &ctr) != 1 {
		t.Error("local policy must follow the requesting core's node")
	}
	il := Policy{Kind: Interleave}
	got := []mem.NodeID{il.Pick(tp, 0, &ctr), il.Pick(tp, 0, &ctr), il.Pick(tp, 0, &ctr)}
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("interleave sequence = %v, want rotation 0,1,0", got)
	}
	if (Policy{Kind: Bind, Node: 9}).Pick(tp, 0, &ctr) != 1 {
		t.Error("bind past the last node must clamp")
	}
	// Flat machine: every policy collapses to node 0.
	if il.Pick(Single(4), 0, &ctr) != 0 || il.Pick(nil, 0, &ctr) != 0 {
		t.Error("single-node/nil topology must always pick node 0")
	}
}
