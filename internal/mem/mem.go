// Package mem defines the shared low-level memory types used across the
// simulator: physical addresses, page frame numbers, page geometry,
// access permissions, and the medium (DRAM vs persistent memory) that a
// piece of state lives on.
package mem

import "fmt"

// Page geometry of the simulated x86-64 machine.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB base pages

	HugeShift = 21
	HugeSize  = 1 << HugeShift // 2 MiB huge pages (PMD level)

	GiantShift = 30
	GiantSize  = 1 << GiantShift // 1 GiB pages (PUD level)

	// PTEsPerTable is the fan-out of one page-table node on x86-64.
	PTEsPerTable = 512

	// CacheLineSize is the coherence granularity; PTE flush batching and
	// clwb accounting work at this granularity.
	CacheLineSize = 64

	// PTEsPerCacheLine is how many 8-byte PTEs share one cache line.
	PTEsPerCacheLine = CacheLineSize / 8
)

// PhysAddr is a simulated physical address. The DRAM and PMem address
// spaces are disjoint: PMem occupies [0, device size) of its own space and
// is distinguished by the Medium carried alongside, never by the raw value.
type PhysAddr uint64

// PFN is a physical page frame number (PhysAddr >> PageShift).
type PFN uint64

// Addr returns the physical address of the first byte of the frame.
func (p PFN) Addr() PhysAddr { return PhysAddr(p) << PageShift }

// VirtAddr is a simulated user virtual address.
type VirtAddr uint64

// PageDown rounds v down to a base-page boundary.
func (v VirtAddr) PageDown() VirtAddr { return v &^ (PageSize - 1) }

// PageUp rounds v up to a base-page boundary.
func (v VirtAddr) PageUp() VirtAddr { return (v + PageSize - 1) &^ (PageSize - 1) }

// HugeDown rounds v down to a 2 MiB boundary.
func (v VirtAddr) HugeDown() VirtAddr { return v &^ (HugeSize - 1) }

// HugeUp rounds v up to a 2 MiB boundary.
func (v VirtAddr) HugeUp() VirtAddr { return (v + HugeSize - 1) &^ (HugeSize - 1) }

// Medium identifies which memory technology holds a frame. Page-walk and
// data-access costs depend on it.
type Medium uint8

const (
	// DRAM is volatile memory.
	DRAM Medium = iota
	// PMem is byte-addressable persistent memory (Optane-like).
	PMem
)

func (m Medium) String() string {
	switch m {
	case DRAM:
		return "DRAM"
	case PMem:
		return "PMem"
	default:
		return fmt.Sprintf("Medium(%d)", uint8(m))
	}
}

// NodeID identifies a NUMA node. Node 0 is the only node on a
// single-socket (flat) machine, which keeps the zero value meaningful.
type NodeID uint8

// Loc is the full identity of a piece of physical memory: which
// technology it is (Medium) and which NUMA node's DIMMs hold it. Walk
// and data-path costs depend on both — a remote-socket Optane access is
// far more expensive than a local one (Yang et al., FAST '20).
type Loc struct {
	Medium Medium
	Node   NodeID
}

func (l Loc) String() string {
	return fmt.Sprintf("%s@node%d", l.Medium, l.Node)
}

// Perm is a page/mapping permission mask.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// CanRead reports whether the permission allows loads.
func (p Perm) CanRead() bool { return p&PermRead != 0 }

// CanWrite reports whether the permission allows stores.
func (p Perm) CanWrite() bool { return p&PermWrite != 0 }

func (p Perm) String() string {
	b := [3]byte{'-', '-', '-'}
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b[:])
}

// PagesIn returns the number of base pages needed to hold n bytes.
func PagesIn(n uint64) uint64 { return (n + PageSize - 1) / PageSize }

// AlignedDown reports x rounded down to a multiple of align (a power of two).
func AlignedDown(x, align uint64) uint64 { return x &^ (align - 1) }

// AlignedUp reports x rounded up to a multiple of align (a power of two).
func AlignedUp(x, align uint64) uint64 { return (x + align - 1) &^ (align - 1) }

// IsAligned reports whether x is a multiple of align (a power of two).
func IsAligned(x, align uint64) bool { return x&(align-1) == 0 }
