package pmem

import (
	"bytes"
	"testing"

	"daxvm/internal/mem"
	"daxvm/internal/sim"
)

// run executes fn on a single sim thread.
func run(fn func(t *sim.Thread)) uint64 {
	e := sim.New()
	e.Go("t", 0, 0, fn)
	return e.Run()
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	run(func(th *sim.Thread) {
		src := []byte("persistent memory payload")
		d.WriteNT(th, 4096, src)
		got := make([]byte, len(src))
		d.Read(th, 4096, got)
		if !bytes.Equal(got, src) {
			t.Errorf("round trip mismatch: %q", got)
		}
	})
	if d.Stats.BytesWritten == 0 || d.Stats.BytesRead == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run(func(th *sim.Thread) {
		d.Read(th, 1<<16-8, make([]byte, 64))
	})
}

func TestNTStoreCostsMoreThanRead(t *testing.T) {
	d := New(Config{Size: 1 << 22})
	buf := make([]byte, 1<<20)
	wr := run(func(th *sim.Thread) { d.WriteNT(th, 0, buf) })
	d2 := New(Config{Size: 1 << 22})
	rd := run(func(th *sim.Thread) { d2.Read(th, 0, buf) })
	if wr <= rd {
		t.Fatalf("nt-store (%d cycles) should cost more than read (%d): Optane write bandwidth is lower", wr, rd)
	}
}

func TestZeroClears(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	run(func(th *sim.Thread) {
		d.WriteNT(th, 0, bytes.Repeat([]byte{0xAB}, 8192))
		d.Zero(th, 0, 8192)
		got := d.Bytes(0, 8192)
		for i, b := range got {
			if b != 0 {
				t.Fatalf("byte %d not zeroed: %#x", i, b)
				return
			}
		}
	})
}

func TestPersistenceTracking(t *testing.T) {
	d := New(Config{Size: 1 << 20, TrackPersistence: true})
	run(func(th *sim.Thread) {
		payload := bytes.Repeat([]byte{0x5A}, 128)

		// Cached stores without flush do not survive a crash.
		d.WriteCached(th, 0, payload)
		if d.DirtyLineCount() != 2 {
			t.Errorf("dirty lines = %d, want 2", d.DirtyLineCount())
		}

		// Flushed + fenced stores survive.
		d.WriteCached(th, 4096, payload)
		d.Flush(th, 4096, 128)
		d.Fence(th)

		// NT store + fence survives.
		d.WriteNT(th, 8192, payload)
		d.Fence(th)

		d.Crash()

		if b := d.Bytes(0, 1); b[0] != 0xCC {
			t.Errorf("unflushed line survived crash: %#x", b[0])
		}
		if !bytes.Equal(d.Bytes(4096, 128), payload) {
			t.Error("flushed+fenced data lost in crash")
		}
		if !bytes.Equal(d.Bytes(8192, 128), payload) {
			t.Error("nt-stored+fenced data lost in crash")
		}
	})
}

func TestFlushWithoutFenceUnsafe(t *testing.T) {
	d := New(Config{Size: 1 << 20, TrackPersistence: true})
	run(func(th *sim.Thread) {
		d.WriteCached(th, 0, []byte{1, 2, 3, 4})
		d.Flush(th, 0, 4)
		// No fence: the adversarial crash model drops it.
		d.Crash()
		if d.Bytes(0, 1)[0] != 0xCC {
			t.Error("flushed-unfenced line should not be trusted after crash")
		}
	})
}

func TestBandwidthNoSelfInterference(t *testing.T) {
	// A single thread can never outrun the device: its own per-thread
	// bandwidth is below the device bandwidth, so it must see no stall.
	d := New(Config{Size: 1 << 26})
	run(func(th *sim.Thread) {
		for i := 0; i < 64; i++ {
			d.WriteNT(th, mem.PhysAddr(i*65536), make([]byte, 65536))
		}
	})
	if d.Stats.ThrottleStall != 0 {
		t.Fatalf("single writer stalled %d cycles", d.Stats.ThrottleStall)
	}
}

func TestBandwidthInterference(t *testing.T) {
	// Eight concurrent writers demand ~8×2.3 GB/s, above the ~13 GB/s
	// device write budget: some must stall on the shared channel.
	d := New(Config{Size: 1 << 26})
	e := sim.New()
	for w := 0; w < 8; w++ {
		base := mem.PhysAddr(w * (4 << 20))
		e.Go("w", w, 0, func(th *sim.Thread) {
			buf := make([]byte, 65536)
			for i := 0; i < 32; i++ {
				d.WriteNT(th, base+mem.PhysAddr(i*65536), buf)
				th.Yield() // interleave with the other writers
			}
		})
	}
	e.Run()
	if d.Stats.ThrottleStall == 0 {
		t.Fatal("8 concurrent writers saw no interference on the shared channel")
	}
}
