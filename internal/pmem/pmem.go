// Package pmem simulates a byte-addressable persistent-memory device
// (Intel Optane DCPMM in AppDirect mode, as used by the DaxVM paper).
//
// The device provides real storage (host memory) addressed by simulated
// physical addresses, plus the persistence semantics that PMem software
// depends on: regular (cached) stores are not durable until flushed with
// clwb+fence, while non-temporal stores become durable at the next fence.
// A device-wide bandwidth token bucket makes heavy background writers
// (DaxVM's pre-zeroing daemon) interfere with foreground traffic the way
// they do on real Optane.
package pmem

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
)

// Device is one simulated PMem module set.
type Device struct {
	size uint64
	data []byte

	// Persistence tracking (enabled for crash tests): the set of dirty
	// cache lines written with cached stores and not yet flushed, and the
	// lines flushed but not yet fenced.
	trackPersistence bool
	dirtyLines       map[uint64]struct{} // line index -> written, unflushed
	flushedLines     map[uint64]struct{} // clwb issued, fence pending

	bw tokenBucket

	Stats Stats
}

// Stats aggregates device traffic.
type Stats struct {
	BytesRead     uint64
	BytesWritten  uint64
	BytesZeroed   uint64
	NTStores      uint64
	CachedStores  uint64
	Clwbs         uint64
	Fences        uint64
	ThrottleStall uint64 // cycles foreground ops stalled on the bucket
}

// Config controls device construction.
type Config struct {
	// Size is the device capacity in bytes.
	Size uint64
	// TrackPersistence enables per-line durability tracking for crash
	// simulation tests (costly; off for benchmarks).
	TrackPersistence bool
}

// New creates a device. Backing memory is allocated lazily by the host OS
// (untouched pages cost nothing), so multi-GiB devices are cheap until
// written.
func New(cfg Config) *Device {
	if cfg.Size == 0 || !mem.IsAligned(cfg.Size, mem.PageSize) {
		panic(fmt.Sprintf("pmem: bad device size %d", cfg.Size))
	}
	d := &Device{
		size:             cfg.Size,
		data:             make([]byte, cfg.Size),
		trackPersistence: cfg.TrackPersistence,
	}
	if cfg.TrackPersistence {
		d.dirtyLines = make(map[uint64]struct{})
		d.flushedLines = make(map[uint64]struct{})
	}
	d.bw.init()
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// Pages returns the device capacity in base pages.
func (d *Device) Pages() uint64 { return d.size / mem.PageSize }

// Bytes returns the raw backing slice for [addr, addr+n). The caller is
// responsible for charging access costs; use the typed accessors where
// possible.
func (d *Device) Bytes(addr mem.PhysAddr, n uint64) []byte {
	d.check(addr, n)
	return d.data[addr : uint64(addr)+n]
}

func (d *Device) check(addr mem.PhysAddr, n uint64) {
	if uint64(addr)+n > d.size {
		panic(fmt.Sprintf("pmem: access [%#x,+%d) beyond device size %#x", addr, n, d.size))
	}
}

// Read copies device content into buf, charging sequential-read cost and
// consuming read bandwidth. Used for kernel copies (read(2) internals).
func (d *Device) Read(t *sim.Thread, addr mem.PhysAddr, buf []byte) {
	n := uint64(len(buf))
	d.check(addr, n)
	copy(buf, d.data[addr:uint64(addr)+n])
	d.Stats.BytesRead += n
	c := cost.CopyFromPMemPerPage * n / mem.PageSize
	if c == 0 {
		c = cost.PMemSeqLoadLat
	}
	t.ChargeAs("pmem_read", c)
	d.bw.consumeRead(t, n, &d.Stats)
}

// WriteNT writes buf with non-temporal stores: the data bypasses the CPU
// cache and is durable after the next Fence.
func (d *Device) WriteNT(t *sim.Thread, addr mem.PhysAddr, buf []byte) {
	n := uint64(len(buf))
	d.check(addr, n)
	copy(d.data[addr:uint64(addr)+n], buf)
	d.Stats.BytesWritten += n
	d.Stats.NTStores++
	if d.trackPersistence {
		// NT stores go to the WC buffer; durable at next fence. Model
		// them as flushed-awaiting-fence.
		d.forEachLine(addr, n, func(l uint64) {
			delete(d.dirtyLines, l)
			d.flushedLines[l] = struct{}{}
		})
	}
	c := cost.NTStorePMemPerPage * n / mem.PageSize
	if c == 0 {
		c = cost.NTStoreLineCost * (n + mem.CacheLineSize - 1) / mem.CacheLineSize
	}
	t.ChargeAs("ntstore", c)
	d.bw.consumeWrite(t, n, &d.Stats)
}

// StreamNT charges an n-byte non-temporal store stream without
// materializing content (journal log writes and other synthetic payloads
// whose bytes the experiments never read back).
func (d *Device) StreamNT(t *sim.Thread, addr mem.PhysAddr, n uint64) {
	d.check(addr, n)
	d.Stats.BytesWritten += n
	d.Stats.NTStores++
	c := cost.NTStorePMemPerPage * n / mem.PageSize
	if c == 0 {
		c = cost.NTStoreLineCost * (n + mem.CacheLineSize - 1) / mem.CacheLineSize
	}
	t.ChargeAs("ntstore", c)
	d.bw.consumeWrite(t, n, &d.Stats)
}

// WriteCached writes buf with regular stores: fast, but NOT durable until
// the lines are flushed (Flush) and fenced (Fence).
func (d *Device) WriteCached(t *sim.Thread, addr mem.PhysAddr, buf []byte) {
	n := uint64(len(buf))
	d.check(addr, n)
	copy(d.data[addr:uint64(addr)+n], buf)
	d.Stats.BytesWritten += n
	d.Stats.CachedStores++
	if d.trackPersistence {
		d.forEachLine(addr, n, func(l uint64) { d.dirtyLines[l] = struct{}{} })
	}
	// Cached stores complete at cache speed; the PMem cost is paid at
	// flush time.
	t.ChargeAs("cached_store", cost.CacheHitLatency*((n+mem.CacheLineSize-1)/mem.CacheLineSize)/4)
}

// Zero zeroes [addr, addr+n) with non-temporal stores (security zeroing of
// freshly allocated blocks, and DaxVM's pre-zero daemon).
func (d *Device) Zero(t *sim.Thread, addr mem.PhysAddr, n uint64) {
	d.check(addr, n)
	clear(d.data[addr : uint64(addr)+n])
	d.Stats.BytesZeroed += n
	d.Stats.BytesWritten += n
	if d.trackPersistence {
		d.forEachLine(addr, n, func(l uint64) {
			delete(d.dirtyLines, l)
			d.flushedLines[l] = struct{}{}
		})
	}
	c := cost.ZeroPMemPerPage * n / mem.PageSize
	if c == 0 {
		c = cost.NTStoreLineCost
	}
	t.ChargeAs("zero", c)
	d.bw.consumeWrite(t, n, &d.Stats)
}

// Flush issues clwb for every cache line in [addr, addr+n): the write-back
// is durable after the next Fence. Charges store+clwb bandwidth.
func (d *Device) Flush(t *sim.Thread, addr mem.PhysAddr, n uint64) {
	d.check(addr, n)
	lines := (n + mem.CacheLineSize - 1) / mem.CacheLineSize
	d.Stats.Clwbs += lines
	if d.trackPersistence {
		d.forEachLine(addr, n, func(l uint64) {
			if _, ok := d.dirtyLines[l]; ok {
				delete(d.dirtyLines, l)
				d.flushedLines[l] = struct{}{}
			}
		})
	}
	t.ChargeAs("clwb", cost.ClwbCost*lines)
	d.bw.consumeWrite(t, lines*mem.CacheLineSize, &d.Stats)
}

// Fence drains pending flushes/NT stores (sfence); after it returns,
// everything previously flushed is durable.
func (d *Device) Fence(t *sim.Thread) {
	d.Stats.Fences++
	if d.trackPersistence {
		for l := range d.flushedLines {
			delete(d.flushedLines, l)
			delete(d.dirtyLines, l)
		}
	}
	t.ChargeAs("fence", cost.FenceCost)
}

func (d *Device) forEachLine(addr mem.PhysAddr, n uint64, fn func(line uint64)) {
	first := uint64(addr) / mem.CacheLineSize
	last := (uint64(addr) + n - 1) / mem.CacheLineSize
	for l := first; l <= last; l++ {
		fn(l)
	}
}

// Crash simulates a power failure: every line written with cached stores
// and not flushed+fenced is replaced with garbage (0xCC) so recovery code
// that depends on unflushed data fails loudly. Requires TrackPersistence.
func (d *Device) Crash() {
	if !d.trackPersistence {
		panic("pmem: Crash requires TrackPersistence")
	}
	for l := range d.dirtyLines {
		off := l * mem.CacheLineSize
		end := off + mem.CacheLineSize
		if end > d.size {
			end = d.size
		}
		for i := off; i < end; i++ {
			d.data[i] = 0xCC
		}
	}
	// Lines flushed-but-not-fenced may or may not survive; the paper's
	// recovery protocols must not depend on them, so corrupt them too
	// (the adversarial choice).
	for l := range d.flushedLines {
		off := l * mem.CacheLineSize
		end := off + mem.CacheLineSize
		if end > d.size {
			end = d.size
		}
		for i := off; i < end; i++ {
			d.data[i] = 0xCC
		}
	}
	d.dirtyLines = make(map[uint64]struct{})
	d.flushedLines = make(map[uint64]struct{})
}

// DirtyLineCount reports unflushed cached-store lines (crash tests).
func (d *Device) DirtyLineCount() int { return len(d.dirtyLines) }

// BWRead accounts shared-channel occupancy for DAX loads that bypass the
// kernel (mapped access): the data still crosses the DIMM channel even
// though no kernel copy happens.
func (d *Device) BWRead(t *sim.Thread, n uint64) {
	consume(t, &d.bw.readBusyUntil, n, cost.PMemDeviceReadBytesPerCycle, &d.Stats)
}

// BWWrite is the store-side analogue of BWRead.
func (d *Device) BWWrite(t *sim.Thread, n uint64) {
	consume(t, &d.bw.writeBusyUntil, n, cost.PMemDeviceWriteBytesPerCycle, &d.Stats)
}

// ResetTiming clears bandwidth-channel occupancy and statistics. Called
// between an experiment's setup phase (image aging, corpus creation) and
// its measurement phase so setup traffic does not bleed into results.
func (d *Device) ResetTiming() {
	d.bw = tokenBucket{}
	d.Stats = Stats{}
}

// --- bandwidth token bucket -------------------------------------------------

// tokenBucket serializes device bandwidth in virtual time. The issuing
// thread's own charge already covers its per-thread transfer time; the
// bucket additionally models the shared device channel: a transfer of n
// bytes occupies the channel for n/deviceRate cycles ending no earlier
// than previous transfers end. If the channel cannot complete the transfer
// by the thread's current clock, the thread stalls for the difference —
// which is exactly how background zeroing steals bandwidth from foreground
// appends on real Optane.
type tokenBucket struct {
	writeBusyUntil uint64
	readBusyUntil  uint64
}

func (b *tokenBucket) init() {}

func consume(t *sim.Thread, busyUntil *uint64, n uint64, rate float64, st *Stats) {
	// Synchronization point: the shared channel state must be touched in
	// virtual-time order or threads that never block would serialize
	// each other spuriously.
	t.Yield()
	dur := uint64(float64(n) / rate)
	now := t.Now()
	start := now - dur
	if now < dur {
		start = 0
	}
	if *busyUntil > start {
		start = *busyUntil
	}
	finish := start + dur
	*busyUntil = finish
	if finish > now {
		stall := finish - now
		st.ThrottleStall += stall
		t.ChargeAs("bw_stall", stall)
	}
}

func (b *tokenBucket) consumeWrite(t *sim.Thread, n uint64, st *Stats) {
	consume(t, &b.writeBusyUntil, n, cost.PMemDeviceWriteBytesPerCycle, st)
}

func (b *tokenBucket) consumeRead(t *sim.Thread, n uint64, st *Stats) {
	consume(t, &b.readBusyUntil, n, cost.PMemDeviceReadBytesPerCycle, st)
}
