// Package pmem simulates byte-addressable persistent memory (Intel
// Optane DCPMM in AppDirect mode, as used by the DaxVM paper).
//
// The device provides real storage (host memory) addressed by simulated
// physical addresses, plus the persistence semantics that PMem software
// depends on: regular (cached) stores are not durable until flushed with
// clwb+fence, while non-temporal stores become durable at the next fence.
//
// The physical address space is striped across per-NUMA-node banks (one
// DIMM set per socket). Each bank has its own bandwidth token bucket, so
// heavy background writers (DaxVM's pre-zeroing daemon) interfere with
// foreground traffic on the same node the way they do on real Optane,
// while traffic to different sockets proceeds independently. Accesses
// that cross the socket interconnect pay the FAST '20 remote-Optane
// penalties on top of the local rates. With a single-node topology (the
// default) the device collapses to the original flat model, charge for
// charge.
package pmem

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
)

// Device is one simulated PMem module set, possibly spanning several
// NUMA nodes.
type Device struct {
	size uint64
	data []byte

	// Persistence tracking (enabled for crash tests): the set of dirty
	// cache lines written with cached stores and not yet flushed, and the
	// lines flushed but not yet fenced. Tracked device-wide; durability
	// does not depend on which socket holds the line.
	trackPersistence bool
	dirtyLines       map[uint64]struct{} // line index -> written, unflushed
	flushedLines     map[uint64]struct{} // clwb issued, fence pending

	tp       *topo.Topology
	bankSize uint64
	banks    []bank
	attrs    []string // "pmem.node0", ... attribution frames (multi-node only)

	Stats Stats
}

// bank is the per-node slice of the device: its own channel occupancy
// and traffic counters. The data itself lives in the shared slice.
type bank struct {
	bw    tokenBucket
	stats Stats
}

// Stats aggregates device traffic.
type Stats struct {
	BytesRead     uint64
	BytesWritten  uint64
	BytesZeroed   uint64
	NTStores      uint64
	CachedStores  uint64
	Clwbs         uint64
	Fences        uint64
	ThrottleStall uint64 // cycles foreground ops stalled on the bucket
	BusyCycles    uint64 // cycles the bank's channels were occupied by transfers
}

// Config controls device construction.
type Config struct {
	// Size is the device capacity in bytes.
	Size uint64
	// TrackPersistence enables per-line durability tracking for crash
	// simulation tests (costly; off for benchmarks).
	TrackPersistence bool
	// Topo places the device's DIMMs: capacity is split evenly across
	// the topology's nodes. nil means a flat single-node device.
	Topo *topo.Topology
}

// New creates a device. Backing memory is allocated lazily by the host OS
// (untouched pages cost nothing), so multi-GiB devices are cheap until
// written.
func New(cfg Config) *Device {
	if cfg.Size == 0 || !mem.IsAligned(cfg.Size, mem.PageSize) {
		panic(fmt.Sprintf("pmem: bad device size %d", cfg.Size))
	}
	nodes := 1
	if cfg.Topo.Multi() {
		nodes = cfg.Topo.Nodes()
	}
	d := &Device{
		size:             cfg.Size,
		data:             make([]byte, cfg.Size),
		trackPersistence: cfg.TrackPersistence,
		tp:               cfg.Topo,
		bankSize:         mem.AlignedUp(cfg.Size/uint64(nodes), mem.PageSize),
		banks:            make([]bank, nodes),
	}
	if nodes > 1 {
		d.attrs = make([]string, nodes)
		for i := range d.attrs {
			d.attrs[i] = fmt.Sprintf("pmem.node%d", i)
		}
	}
	if cfg.TrackPersistence {
		d.dirtyLines = make(map[uint64]struct{})
		d.flushedLines = make(map[uint64]struct{})
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// Pages returns the device capacity in base pages.
func (d *Device) Pages() uint64 { return d.size / mem.PageSize }

// NodeCount returns how many NUMA-node banks the device spans.
func (d *Device) NodeCount() int { return len(d.banks) }

// NodePages returns the capacity of one node's bank in base pages.
func (d *Device) NodePages() uint64 { return d.bankSize / mem.PageSize }

// NodeOf returns the NUMA node whose DIMMs hold addr.
func (d *Device) NodeOf(addr mem.PhysAddr) mem.NodeID {
	n := uint64(addr) / d.bankSize
	if n >= uint64(len(d.banks)) {
		n = uint64(len(d.banks)) - 1
	}
	return mem.NodeID(n)
}

// NodeOfPFN is NodeOf for a page frame number.
func (d *Device) NodeOfPFN(pfn mem.PFN) mem.NodeID { return d.NodeOf(pfn.Addr()) }

// NodeStats returns the traffic counters of one node's bank.
func (d *Device) NodeStats(node int) *Stats { return &d.banks[node].stats }

func (d *Device) multi() bool { return len(d.banks) > 1 }

// Bytes returns the raw backing slice for [addr, addr+n). The caller is
// responsible for charging access costs; use the typed accessors where
// possible.
func (d *Device) Bytes(addr mem.PhysAddr, n uint64) []byte {
	d.check(addr, n)
	return d.data[addr : uint64(addr)+n]
}

func (d *Device) check(addr mem.PhysAddr, n uint64) {
	if uint64(addr)+n > d.size {
		//lint:ignore hotalloc fatal path: args are boxed only when panicking
		panic(fmt.Sprintf("pmem: access [%#x,+%d) beyond device size %#x", addr, n, d.size))
	}
}

// remoteExtra returns the added cycles for t's core reaching node's
// DIMMs across the socket interconnect (0 when the access is local or
// the machine is flat). Sub-page transfers pay one interconnect hop.
func (d *Device) remoteExtra(t *sim.Thread, node mem.NodeID, ratePerPage, n uint64) uint64 {
	if !d.tp.Remote(d.tp.NodeOfCore(t.Core), node) {
		return 0
	}
	extra := ratePerPage * n / mem.PageSize
	if extra == 0 {
		extra = cost.RemotePMemWalkExtra
	}
	return extra
}

// Read copies device content into buf, charging sequential-read cost and
// consuming the owning node's read bandwidth. Used for kernel copies
// (read(2) internals). A range spanning a bank boundary is attributed to
// the starting node (extents are node-pure under placement, so this only
// approximates pathological straddling ranges).
func (d *Device) Read(t *sim.Thread, addr mem.PhysAddr, buf []byte) {
	n := uint64(len(buf))
	d.check(addr, n)
	copy(buf, d.data[addr:uint64(addr)+n])
	node := d.NodeOf(addr)
	d.Stats.BytesRead += n
	d.banks[node].stats.BytesRead += n
	c := cost.CopyFromPMemPerPage * n / mem.PageSize
	if c == 0 {
		c = cost.PMemSeqLoadLat
	}
	if d.multi() {
		t.PushAttr(d.attrs[node])
		defer t.PopAttr()
		if extra := d.remoteExtra(t, node, cost.RemotePMemReadExtraPerPage, n); extra > 0 {
			// "remote_read"/"remote_write" labels double as the span
			// layer's remote_numa wait kind.
			t.ChargeAs("remote_read", extra)
		}
	}
	t.ChargeAs("pmem_read", c)
	d.consumeRead(t, node, n)
}

// WriteNT writes buf with non-temporal stores: the data bypasses the CPU
// cache and is durable after the next Fence.
func (d *Device) WriteNT(t *sim.Thread, addr mem.PhysAddr, buf []byte) {
	n := uint64(len(buf))
	d.check(addr, n)
	copy(d.data[addr:uint64(addr)+n], buf)
	d.writeNTCommon(t, addr, n)
}

// StreamNT charges an n-byte non-temporal store stream without
// materializing content (journal log writes and other synthetic payloads
// whose bytes the experiments never read back).
func (d *Device) StreamNT(t *sim.Thread, addr mem.PhysAddr, n uint64) {
	d.check(addr, n)
	d.writeNTCommon(t, addr, n)
}

func (d *Device) writeNTCommon(t *sim.Thread, addr mem.PhysAddr, n uint64) {
	node := d.NodeOf(addr)
	d.Stats.BytesWritten += n
	d.Stats.NTStores++
	d.banks[node].stats.BytesWritten += n
	d.banks[node].stats.NTStores++
	if d.trackPersistence {
		// NT stores go to the WC buffer; durable at next fence. Model
		// them as flushed-awaiting-fence. Explicit loop: a forEachLine
		// closure would allocate on every hot-path store.
		first, last := lineSpan(addr, n)
		for l := first; l <= last; l++ {
			delete(d.dirtyLines, l)
			d.flushedLines[l] = struct{}{}
		}
	}
	c := cost.NTStorePMemPerPage * n / mem.PageSize
	if c == 0 {
		c = cost.NTStoreLineCost * (n + mem.CacheLineSize - 1) / mem.CacheLineSize
	}
	if d.multi() {
		t.PushAttr(d.attrs[node])
		defer t.PopAttr()
		if extra := d.remoteExtra(t, node, cost.RemotePMemWriteExtraPerPage, n); extra > 0 {
			t.ChargeAs("remote_write", extra)
		}
	}
	t.ChargeAs("ntstore", c)
	d.consumeWrite(t, node, n)
}

// WriteCached writes buf with regular stores: fast, but NOT durable until
// the lines are flushed (Flush) and fenced (Fence). Remote cached stores
// pay nothing extra here — the store buffer hides the interconnect; the
// cost lands at flush/fence time.
func (d *Device) WriteCached(t *sim.Thread, addr mem.PhysAddr, buf []byte) {
	n := uint64(len(buf))
	d.check(addr, n)
	copy(d.data[addr:uint64(addr)+n], buf)
	node := d.NodeOf(addr)
	d.Stats.BytesWritten += n
	d.Stats.CachedStores++
	d.banks[node].stats.BytesWritten += n
	d.banks[node].stats.CachedStores++
	if d.trackPersistence {
		// Explicit loop: a forEachLine closure would allocate per store.
		first, last := lineSpan(addr, n)
		for l := first; l <= last; l++ {
			d.dirtyLines[l] = struct{}{}
		}
	}
	// Cached stores complete at cache speed; the PMem cost is paid at
	// flush time.
	c := cost.CacheHitLatency * ((n + mem.CacheLineSize - 1) / mem.CacheLineSize) / 4
	if d.multi() {
		t.PushAttr(d.attrs[node])
		defer t.PopAttr()
	}
	t.ChargeAs("cached_store", c)
}

// Zero zeroes [addr, addr+n) with non-temporal stores (security zeroing of
// freshly allocated blocks, and DaxVM's pre-zero daemon).
func (d *Device) Zero(t *sim.Thread, addr mem.PhysAddr, n uint64) {
	d.check(addr, n)
	clear(d.data[addr : uint64(addr)+n])
	node := d.NodeOf(addr)
	d.Stats.BytesZeroed += n
	d.Stats.BytesWritten += n
	d.banks[node].stats.BytesZeroed += n
	d.banks[node].stats.BytesWritten += n
	if d.trackPersistence {
		d.forEachLine(addr, n, func(l uint64) {
			delete(d.dirtyLines, l)
			d.flushedLines[l] = struct{}{}
		})
	}
	c := cost.ZeroPMemPerPage * n / mem.PageSize
	if c == 0 {
		c = cost.NTStoreLineCost
	}
	if d.multi() {
		t.PushAttr(d.attrs[node])
		defer t.PopAttr()
		if extra := d.remoteExtra(t, node, cost.RemotePMemWriteExtraPerPage, n); extra > 0 {
			t.ChargeAs("remote_write", extra)
		}
	}
	t.ChargeAs("zero", c)
	d.consumeWrite(t, node, n)
}

// Flush issues clwb for every cache line in [addr, addr+n): the write-back
// is durable after the next Fence. Charges store+clwb bandwidth.
func (d *Device) Flush(t *sim.Thread, addr mem.PhysAddr, n uint64) {
	d.check(addr, n)
	node := d.NodeOf(addr)
	lines := (n + mem.CacheLineSize - 1) / mem.CacheLineSize
	d.Stats.Clwbs += lines
	d.banks[node].stats.Clwbs += lines
	if d.trackPersistence {
		d.forEachLine(addr, n, func(l uint64) {
			if _, ok := d.dirtyLines[l]; ok {
				delete(d.dirtyLines, l)
				d.flushedLines[l] = struct{}{}
			}
		})
	}
	if d.multi() {
		t.PushAttr(d.attrs[node])
		defer t.PopAttr()
	}
	t.ChargeAs("clwb", cost.ClwbCost*lines)
	d.consumeWrite(t, node, lines*mem.CacheLineSize)
}

// Fence drains pending flushes/NT stores (sfence); after it returns,
// everything previously flushed is durable. The drain is core-local, so
// it carries no node attribution.
func (d *Device) Fence(t *sim.Thread) {
	d.Stats.Fences++
	if d.trackPersistence {
		for l := range d.flushedLines {
			delete(d.flushedLines, l)
			delete(d.dirtyLines, l)
		}
	}
	t.ChargeAs("fence", cost.FenceCost)
}

// lineSpan returns the first and last cache-line indices covering
// [addr, addr+n).
func lineSpan(addr mem.PhysAddr, n uint64) (first, last uint64) {
	return uint64(addr) / mem.CacheLineSize, (uint64(addr) + n - 1) / mem.CacheLineSize
}

func (d *Device) forEachLine(addr mem.PhysAddr, n uint64, fn func(line uint64)) {
	first, last := lineSpan(addr, n)
	for l := first; l <= last; l++ {
		fn(l)
	}
}

// Crash simulates a power failure: every line written with cached stores
// and not flushed+fenced is replaced with garbage (0xCC) so recovery code
// that depends on unflushed data fails loudly. Requires TrackPersistence.
func (d *Device) Crash() {
	if !d.trackPersistence {
		panic("pmem: Crash requires TrackPersistence")
	}
	for l := range d.dirtyLines {
		off := l * mem.CacheLineSize
		end := off + mem.CacheLineSize
		if end > d.size {
			end = d.size
		}
		for i := off; i < end; i++ {
			d.data[i] = 0xCC
		}
	}
	// Lines flushed-but-not-fenced may or may not survive; the paper's
	// recovery protocols must not depend on them, so corrupt them too
	// (the adversarial choice).
	for l := range d.flushedLines {
		off := l * mem.CacheLineSize
		end := off + mem.CacheLineSize
		if end > d.size {
			end = d.size
		}
		for i := off; i < end; i++ {
			d.data[i] = 0xCC
		}
	}
	d.dirtyLines = make(map[uint64]struct{})
	d.flushedLines = make(map[uint64]struct{})
}

// DirtyLineCount reports unflushed cached-store lines (crash tests).
func (d *Device) DirtyLineCount() int { return len(d.dirtyLines) }

// BWRead accounts shared-channel occupancy for DAX loads that bypass the
// kernel (mapped access): the data still crosses the DIMM channel even
// though no kernel copy happens. Single-node convenience for BWReadOn.
func (d *Device) BWRead(t *sim.Thread, n uint64) { d.BWReadOn(t, 0, n) }

// BWWrite is the store-side analogue of BWRead.
func (d *Device) BWWrite(t *sim.Thread, n uint64) { d.BWWriteOn(t, 0, n) }

// BWReadOn accounts mapped-read channel occupancy against one node's bank.
func (d *Device) BWReadOn(t *sim.Thread, node mem.NodeID, n uint64) {
	if d.multi() {
		t.PushAttr(d.attrs[node])
		defer t.PopAttr()
	}
	d.consumeRead(t, node, n)
}

// BWWriteOn accounts mapped-write channel occupancy against one node's bank.
func (d *Device) BWWriteOn(t *sim.Thread, node mem.NodeID, n uint64) {
	if d.multi() {
		t.PushAttr(d.attrs[node])
		defer t.PopAttr()
	}
	d.consumeWrite(t, node, n)
}

// ResetTiming clears bandwidth-channel occupancy and statistics on every
// bank. Called between an experiment's setup phase (image aging, corpus
// creation) and its measurement phase so setup traffic does not bleed
// into results.
func (d *Device) ResetTiming() {
	for i := range d.banks {
		d.banks[i] = bank{}
	}
	d.Stats = Stats{}
}

func (d *Device) consumeRead(t *sim.Thread, node mem.NodeID, n uint64) {
	busy, stall := consume(t, &d.banks[node].bw.readBusyUntil, n, cost.PMemDeviceReadBytesPerCycle)
	d.Stats.BusyCycles += busy
	d.banks[node].stats.BusyCycles += busy
	if stall > 0 {
		d.Stats.ThrottleStall += stall
		d.banks[node].stats.ThrottleStall += stall
	}
}

func (d *Device) consumeWrite(t *sim.Thread, node mem.NodeID, n uint64) {
	busy, stall := consume(t, &d.banks[node].bw.writeBusyUntil, n, cost.PMemDeviceWriteBytesPerCycle)
	d.Stats.BusyCycles += busy
	d.banks[node].stats.BusyCycles += busy
	if stall > 0 {
		d.Stats.ThrottleStall += stall
		d.banks[node].stats.ThrottleStall += stall
	}
}

// BacklogOn reports, at virtual time now, how many cycles of already-booked
// transfer work remain queued on one node's read and write channels
// combined — the token bucket's saturation signal. Zero when both channels
// have drained. Pure read for gauge sampling: charges nothing and never
// touches bucket state.
func (d *Device) BacklogOn(node int, now uint64) uint64 {
	var backlog uint64
	if bu := d.banks[node].bw.readBusyUntil; bu > now {
		backlog += bu - now
	}
	if bu := d.banks[node].bw.writeBusyUntil; bu > now {
		backlog += bu - now
	}
	return backlog
}

// --- bandwidth token bucket -------------------------------------------------

// tokenBucket serializes one bank's bandwidth in virtual time. The
// issuing thread's own charge already covers its per-thread transfer
// time; the bucket additionally models the shared per-node channel: a
// transfer of n bytes occupies the channel for n/deviceRate cycles
// ending no earlier than previous transfers end. If the channel cannot
// complete the transfer by the thread's current clock, the thread stalls
// for the difference — which is exactly how background zeroing steals
// bandwidth from foreground appends on real Optane.
type tokenBucket struct {
	writeBusyUntil uint64
	readBusyUntil  uint64
}

// consume books an n-byte transfer on the channel, charges any stall to
// t, and returns the transfer's channel-occupancy cycles plus the stall
// cycles for the caller's statistics. The "bw_stall" label is
// load-bearing beyond profiling: the span layer (internal/obs/span)
// classifies it as the pmem_bw wait kind.
func consume(t *sim.Thread, busyUntil *uint64, n uint64, rate float64) (busy, stall uint64) {
	// Synchronization point: the shared channel state must be touched in
	// virtual-time order or threads that never block would serialize
	// each other spuriously.
	t.Yield()
	dur := uint64(float64(n) / rate)
	now := t.Now()
	start := now - dur
	if now < dur {
		start = 0
	}
	if *busyUntil > start {
		start = *busyUntil
	}
	finish := start + dur
	*busyUntil = finish
	if finish > now {
		stall = finish - now
		t.ChargeAs("bw_stall", stall)
	}
	return dur, stall
}
