// Package tlb models a per-core translation lookaside buffer.
//
// Geometry loosely follows a Cascade Lake L2 STLB: a unified pool of 4 KiB
// entries plus a smaller pool for 2 MiB entries, with FIFO replacement.
// Full flushes use a generation counter so they are O(1), mirroring the
// cheapness of a CR3 write relative to per-page invlpg — the asymmetry
// DaxVM's batched unmapping exploits.
package tlb

import (
	"daxvm/internal/mem"
	"daxvm/internal/pt"
)

// Default capacities.
const (
	DefaultEntries4K = 1536
	DefaultEntries2M = 32
)

// Entry is a cached translation.
type Entry struct {
	VA       mem.VirtAddr // page-aligned (4 KiB or 2 MiB)
	PTE      pt.Entry
	Writable bool // effective permission honoring upper levels
	Huge     bool
	gen      uint64
}

// TLB is one core's TLB.
type TLB struct {
	small map[mem.VirtAddr]*Entry
	large map[mem.VirtAddr]*Entry
	// FIFO rings for eviction.
	orderSmall []mem.VirtAddr
	orderLarge []mem.VirtAddr
	capSmall   int
	capLarge   int
	gen        uint64

	Stats Stats
}

// Stats counts TLB behaviour.
type Stats struct {
	Hits       uint64
	Misses     uint64
	FullFlush  uint64
	PageInval  uint64
	Insertions uint64
}

// New creates a TLB with default geometry.
func New() *TLB { return NewSized(DefaultEntries4K, DefaultEntries2M) }

// NewSized creates a TLB with explicit entry counts.
func NewSized(small, large int) *TLB {
	return &TLB{
		small:    make(map[mem.VirtAddr]*Entry, small),
		large:    make(map[mem.VirtAddr]*Entry, large),
		capSmall: small,
		capLarge: large,
	}
}

// Lookup returns the cached translation for va.
func (t *TLB) Lookup(va mem.VirtAddr) (*Entry, bool) {
	if e, ok := t.small[va.PageDown()]; ok && e.gen == t.gen {
		t.Stats.Hits++
		return e, true
	}
	if e, ok := t.large[va.HugeDown()]; ok && e.gen == t.gen {
		t.Stats.Hits++
		return e, true
	}
	t.Stats.Misses++
	return nil, false
}

// Insert caches a translation. Steady state allocates nothing: an entry
// already mapped at the key (live or generation-stale) is overwritten in
// place, and otherwise the slot evicted to make room is reused.
func (t *TLB) Insert(va mem.VirtAddr, pte pt.Entry, writable, huge bool) {
	t.Stats.Insertions++
	if huge {
		key := va.HugeDown()
		if e, exists := t.large[key]; exists {
			*e = Entry{VA: key, PTE: pte, Writable: writable, Huge: true, gen: t.gen}
			return
		}
		e := t.evictIfFull(&t.orderLarge, t.large, t.capLarge)
		if e == nil {
			//lint:ignore hotalloc warm-up only: a full TLB reuses the evicted entry in place
			e = &Entry{}
		}
		//lint:ignore hotalloc FIFO ring: bounded by the FlushAll reset, amortized O(1)
		t.orderLarge = append(t.orderLarge, key)
		*e = Entry{VA: key, PTE: pte, Writable: writable, Huge: true, gen: t.gen}
		t.large[key] = e
		return
	}
	key := va.PageDown()
	if e, exists := t.small[key]; exists {
		*e = Entry{VA: key, PTE: pte, Writable: writable, gen: t.gen}
		return
	}
	e := t.evictIfFull(&t.orderSmall, t.small, t.capSmall)
	if e == nil {
		//lint:ignore hotalloc warm-up only: a full TLB reuses the evicted entry in place
		e = &Entry{}
	}
	//lint:ignore hotalloc FIFO ring: bounded by the FlushAll reset, amortized O(1)
	t.orderSmall = append(t.orderSmall, key)
	*e = Entry{VA: key, PTE: pte, Writable: writable, gen: t.gen}
	t.small[key] = e
}

// evictIfFull frees map slots until one is available, returning the last
// evicted entry so the caller can reuse its storage.
func (t *TLB) evictIfFull(order *[]mem.VirtAddr, m map[mem.VirtAddr]*Entry, capacity int) *Entry {
	var reuse *Entry
	for len(m) >= capacity && len(*order) > 0 {
		victim := (*order)[0]
		*order = (*order)[1:]
		if e, ok := m[victim]; ok {
			delete(m, victim) // stale entries just free the slot
			reuse = e
		}
	}
	return reuse
}

// InvalidatePage drops the translation covering va (invlpg semantics:
// both page sizes checked).
func (t *TLB) InvalidatePage(va mem.VirtAddr) {
	t.Stats.PageInval++
	delete(t.small, va.PageDown())
	delete(t.large, va.HugeDown())
}

// InvalidateRange drops all translations overlapping [start, end).
func (t *TLB) InvalidateRange(start, end mem.VirtAddr) {
	for va := start.PageDown(); va < end; va += mem.PageSize {
		delete(t.small, va)
	}
	for va := start.HugeDown(); va < end; va += mem.HugeSize {
		delete(t.large, va)
	}
}

// FlushAll drops every translation (CR3 write) in O(1).
func (t *TLB) FlushAll() {
	t.Stats.FullFlush++
	t.gen++
	// Maps are lazily cleaned by generation checks; reset the rings when
	// they grow stale to bound memory.
	if len(t.orderSmall) > 4*t.capSmall {
		clear(t.small)
		t.orderSmall = t.orderSmall[:0]
	}
	if len(t.orderLarge) > 4*t.capLarge {
		clear(t.large)
		t.orderLarge = t.orderLarge[:0]
	}
}

// Len reports live entries (generation-current).
func (t *TLB) Len() int {
	n := 0
	for _, e := range t.small {
		if e.gen == t.gen {
			n++
		}
	}
	for _, e := range t.large {
		if e.gen == t.gen {
			n++
		}
	}
	return n
}
