package tlb

import (
	"testing"

	"daxvm/internal/mem"
	"daxvm/internal/pt"
)

func TestLookupInsert(t *testing.T) {
	tb := New()
	va := mem.VirtAddr(0x1000)
	if _, ok := tb.Lookup(va); ok {
		t.Fatal("empty TLB hit")
	}
	tb.Insert(va, pt.MakeEntry(7, mem.PermRead, true, false), false, false)
	e, ok := tb.Lookup(va + 0x123) // same page, interior offset
	if !ok || e.PTE.PFN() != 7 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	if tb.Stats.Hits != 1 || tb.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
}

func TestHugeEntryCoversRegion(t *testing.T) {
	tb := New()
	va := mem.VirtAddr(0x40000000) // 2 MiB aligned
	tb.Insert(va, pt.MakeEntry(512, mem.PermRead, true, true), false, true)
	if _, ok := tb.Lookup(va + 1<<20); !ok {
		t.Fatal("huge entry did not cover interior address")
	}
	if _, ok := tb.Lookup(va + mem.HugeSize); ok {
		t.Fatal("huge entry leaked past its region")
	}
}

func TestEvictionRespectsCapacity(t *testing.T) {
	tb := NewSized(8, 2)
	for i := 0; i < 32; i++ {
		tb.Insert(mem.VirtAddr(i)*mem.PageSize, pt.MakeEntry(mem.PFN(i), mem.PermRead, true, false), false, false)
	}
	if got := tb.Len(); got > 8 {
		t.Fatalf("TLB holds %d entries, capacity 8", got)
	}
	// Most recent entries survive FIFO eviction.
	if _, ok := tb.Lookup(mem.VirtAddr(31) * mem.PageSize); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestInvalidatePageBothSizes(t *testing.T) {
	tb := New()
	small := mem.VirtAddr(0x5000)
	huge := mem.VirtAddr(0x40000000)
	tb.Insert(small, pt.MakeEntry(1, mem.PermRead, true, false), false, false)
	tb.Insert(huge, pt.MakeEntry(512, mem.PermRead, true, true), false, true)
	tb.InvalidatePage(small)
	tb.InvalidatePage(huge + 4096) // interior address must hit the huge entry
	if _, ok := tb.Lookup(small); ok {
		t.Fatal("small entry survived invlpg")
	}
	if _, ok := tb.Lookup(huge); ok {
		t.Fatal("huge entry survived invlpg")
	}
}

func TestInvalidateRange(t *testing.T) {
	tb := New()
	for i := 0; i < 10; i++ {
		tb.Insert(mem.VirtAddr(i)*mem.PageSize, pt.MakeEntry(mem.PFN(i), mem.PermRead, true, false), false, false)
	}
	tb.InvalidateRange(2*mem.PageSize, 5*mem.PageSize)
	for i := 0; i < 10; i++ {
		_, ok := tb.Lookup(mem.VirtAddr(i) * mem.PageSize)
		inRange := i >= 2 && i < 5
		if inRange && ok {
			t.Fatalf("page %d survived range invalidation", i)
		}
		if !inRange && !ok {
			t.Fatalf("page %d wrongly invalidated", i)
		}
	}
}

func TestFlushAllIsO1AndComplete(t *testing.T) {
	tb := New()
	for i := 0; i < 100; i++ {
		tb.Insert(mem.VirtAddr(i)*mem.PageSize, pt.MakeEntry(mem.PFN(i), mem.PermRead, true, false), false, false)
	}
	tb.FlushAll()
	if tb.Len() != 0 {
		t.Fatalf("%d entries survived full flush", tb.Len())
	}
	if _, ok := tb.Lookup(0); ok {
		t.Fatal("stale entry returned after flush")
	}
	// Insert after flush works (generation handling).
	tb.Insert(0, pt.MakeEntry(1, mem.PermRead, true, false), false, false)
	if _, ok := tb.Lookup(0); !ok {
		t.Fatal("insert after flush lost")
	}
}
