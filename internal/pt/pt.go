// Package pt implements simulated x86-64 four-level page tables.
//
// Nodes are 512-entry tables exactly like the hardware's; leaf entries
// carry PFN + architectural bits (present/write/accessed/dirty/PS). Interior
// entries are mirrored by Go child pointers so the simulator can descend
// without a physical address space for DRAM nodes.
//
// Two properties matter for DaxVM:
//
//   - Nodes record the Loc (medium + NUMA node) they live on (process
//     tables in DRAM, DaxVM persistent file tables in PMem); the page
//     walker charges TLB-miss costs accordingly (paper Table II), with
//     remote-node surcharges on a multi-socket topology.
//
//   - Sub-trees can be attached/detached at interior levels (PMD/PUD):
//     DaxVM splices shared pre-populated file tables into process trees and
//     applies per-process permissions at the attachment entry, relying on
//     x86's minimum-permission rule across levels.
package pt

import (
	"fmt"

	"daxvm/internal/mem"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

// Entry is a page-table entry. Layout follows x86-64 where it matters.
type Entry uint64

// Architectural and software bits.
const (
	BitPresent  Entry = 1 << 0
	BitWrite    Entry = 1 << 1
	BitUser     Entry = 1 << 2
	BitAccessed Entry = 1 << 5
	BitDirty    Entry = 1 << 6
	BitHuge     Entry = 1 << 7 // PS: leaf at PMD/PUD level
	// BitSoftPMem is a software bit marking that the frame is on PMem
	// (bit 9, available to software on x86-64).
	BitSoftPMem Entry = 1 << 9
	// BitSoftAttached marks an interior entry that points into a shared
	// DaxVM file table (must be detached, never freed).
	BitSoftAttached Entry = 1 << 10

	pfnShift = 12
	pfnMask  = Entry(0x000F_FFFF_FFFF_F000)
)

// Present reports whether the entry is valid.
func (e Entry) Present() bool { return e&BitPresent != 0 }

// Writable reports the write-permission bit.
func (e Entry) Writable() bool { return e&BitWrite != 0 }

// Huge reports the PS bit.
func (e Entry) Huge() bool { return e&BitHuge != 0 }

// Dirty reports the dirty bit.
func (e Entry) Dirty() bool { return e&BitDirty != 0 }

// Accessed reports the accessed bit.
func (e Entry) Accessed() bool { return e&BitAccessed != 0 }

// PFN extracts the frame number.
func (e Entry) PFN() mem.PFN { return mem.PFN((e & pfnMask) >> pfnShift) }

// OnPMem reports the software PMem-frame bit.
func (e Entry) OnPMem() bool { return e&BitSoftPMem != 0 }

// Attached reports the software attached-subtree bit.
func (e Entry) Attached() bool { return e&BitSoftAttached != 0 }

// MakeEntry builds a leaf entry.
func MakeEntry(pfn mem.PFN, perm mem.Perm, onPMem, huge bool) Entry {
	e := Entry(pfn)<<pfnShift | BitPresent | BitUser
	if perm.CanWrite() {
		e |= BitWrite
	}
	if onPMem {
		e |= BitSoftPMem
	}
	if huge {
		e |= BitHuge
	}
	return e
}

// Levels: 1 = PTE (maps 4 KiB), 2 = PMD (2 MiB), 3 = PUD (1 GiB),
// 4 = PGD (512 GiB).
const (
	LevelPTE = 1
	LevelPMD = 2
	LevelPUD = 3
	LevelPGD = 4
)

// LevelShift returns the VA shift of entries at the given level.
func LevelShift(level int) uint { return uint(mem.PageShift + 9*(level-1)) }

// LevelSpan returns the bytes mapped by one entry at the given level.
func LevelSpan(level int) uint64 { return 1 << LevelShift(level) }

// index returns the table index of va at level.
func index(va mem.VirtAddr, level int) int {
	return int(uint64(va)>>LevelShift(level)) & 511
}

// NoFrame marks a node whose backing frame is not tracked by a DRAM
// pool (PMem-resident nodes, or nodes allocated without a pool).
const NoFrame = ^mem.PFN(0)

// Node is one 512-entry table.
type Node struct {
	Entries  [mem.PTEsPerTable]Entry
	children [mem.PTEsPerTable]*Node
	Level    int
	Loc      mem.Loc

	// Frame is the DRAM frame holding this node (NoFrame when the node
	// lives on PMem or was allocated outside a pool). Deallocation paths
	// return it to the pool so double frees are caught.
	Frame mem.PFN

	// Shared marks DaxVM file-table nodes: attach points reference them
	// and teardown must detach rather than free.
	Shared bool

	// NoAD drops accessed/dirty bit maintenance on this node's entries
	// (DaxVM file tables: A/D bits only serve volatile-memory
	// reclamation, irrelevant for DAX).
	NoAD bool

	// Backing mirrors entries into simulated PMem for persistent file
	// tables, so crash tests can rebuild them from media.
	Backing  *pmem.Device
	BackAddr mem.PhysAddr

	// Ptl is the split page-table lock guarding this node's entries
	// (Linux's per-PMD ptl). Used on fault paths.
	Ptl sim.SpinLock

	// live counts present entries + children, for teardown pruning.
	live int
}

// NewNode allocates a table node at the given level at the given
// location (medium + NUMA node).
func NewNode(level int, loc mem.Loc) *Node {
	//lint:ignore hotalloc the allocation is the modeled work: one table node per simulated page-table page
	return &Node{Level: level, Loc: loc, Frame: NoFrame}
}

// Child returns the interior child at idx.
func (n *Node) Child(idx int) *Node { return n.children[idx] }

// Live returns the number of populated slots.
func (n *Node) Live() int { return n.live }

// SetEntry writes a leaf/interior entry value, mirroring to PMem backing
// if present (cached store; the caller batches Flush via FlushEntries).
func (n *Node) SetEntry(t *sim.Thread, idx int, e Entry) {
	old := n.Entries[idx]
	n.Entries[idx] = e
	switch {
	case old == 0 && e != 0:
		n.live++
	case old != 0 && e == 0:
		n.live--
	}
	if n.Backing != nil {
		var buf [8]byte
		putLE64(buf[:], uint64(e))
		n.Backing.WriteCached(t, n.BackAddr+mem.PhysAddr(idx*8), buf[:])
	}
}

// SetChild links an interior entry to a child node.
func (n *Node) SetChild(t *sim.Thread, idx int, child *Node, e Entry) {
	if n.Level <= LevelPTE {
		panic("pt: SetChild on PTE level")
	}
	n.children[idx] = child
	n.SetEntry(t, idx, e)
}

// ClearSlot removes entry and child link at idx.
func (n *Node) ClearSlot(t *sim.Thread, idx int) {
	n.children[idx] = nil
	n.SetEntry(t, idx, 0)
}

// FlushEntries flushes the backing lines of entries [lo,hi) (persistent
// file tables batch flushes at cache-line granularity — 8 PTEs per line).
func (n *Node) FlushEntries(t *sim.Thread, lo, hi int) {
	if n.Backing == nil {
		return
	}
	start := mem.AlignedDown(uint64(lo*8), mem.CacheLineSize)
	end := mem.AlignedUp(uint64(hi*8), mem.CacheLineSize)
	n.Backing.Flush(t, n.BackAddr+mem.PhysAddr(start), end-start)
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// AddressSpace is a process page-table tree rooted at a PGD.
type AddressSpace struct {
	Root *Node

	// AllocNode is called to allocate interior nodes (charges DRAM pool).
	AllocNode func(t *sim.Thread, level int) *Node
	// FreeNode returns a node to the pool.
	FreeNode func(t *sim.Thread, n *Node)
}

// NewAddressSpace creates an empty tree with the given node allocator.
func NewAddressSpace(alloc func(t *sim.Thread, level int) *Node, free func(t *sim.Thread, n *Node)) *AddressSpace {
	as := &AddressSpace{AllocNode: alloc, FreeNode: free}
	as.Root = alloc(nil, LevelPGD)
	return as
}

// ensurePath walks (allocating) interior nodes down to targetLevel and
// returns the node whose entries are at targetLevel.
func (as *AddressSpace) ensurePath(t *sim.Thread, va mem.VirtAddr, targetLevel int) *Node {
	n := as.Root
	for lvl := LevelPGD; lvl > targetLevel; lvl-- {
		idx := index(va, lvl)
		child := n.children[idx]
		if child == nil {
			child = as.AllocNode(t, lvl-1)
			n.SetChild(t, idx, child, BitPresent|BitWrite|BitUser)
		}
		n = child
	}
	return n
}

// Map installs a leaf translation for va at the given level (LevelPTE for
// 4 KiB, LevelPMD for 2 MiB huge).
func (as *AddressSpace) Map(t *sim.Thread, va mem.VirtAddr, e Entry, level int) {
	if level == LevelPMD && !e.Huge() {
		panic("pt: PMD leaf without PS bit")
	}
	n := as.ensurePath(t, va, level)
	n.SetEntry(t, index(va, level), e)
}

// Lookup resolves va structurally (no cost charging — the cpu package's
// walker charges). It returns the leaf entry, its level, and the effective
// writability honoring the minimum-permission rule across levels.
func (as *AddressSpace) Lookup(va mem.VirtAddr) (e Entry, level int, writable bool, ok bool) {
	n := as.Root
	writable = true
	for lvl := LevelPGD; lvl >= LevelPTE; lvl-- {
		idx := index(va, lvl)
		ent := n.Entries[idx]
		if !ent.Present() {
			return 0, lvl, false, false
		}
		if !ent.Writable() {
			writable = false
		}
		if lvl == LevelPTE || ent.Huge() {
			return ent, lvl, writable && ent.Writable(), true
		}
		n = n.children[idx]
		if n == nil {
			return 0, lvl, false, false
		}
	}
	return 0, 0, false, false
}

// NodePath returns the chain of nodes visited resolving va, outermost
// first. Used by the walker for per-level charging.
func (as *AddressSpace) NodePath(va mem.VirtAddr) []*Node {
	path := make([]*Node, 0, 4)
	n := as.Root
	for lvl := LevelPGD; lvl >= LevelPTE; lvl-- {
		path = append(path, n)
		idx := index(va, lvl)
		ent := n.Entries[idx]
		if !ent.Present() || lvl == LevelPTE || ent.Huge() {
			return path
		}
		n = n.children[idx]
		if n == nil {
			return path
		}
	}
	return path
}

// LeafNode returns the node holding va's leaf entry and the index within
// it, or nil if the path is incomplete.
func (as *AddressSpace) LeafNode(va mem.VirtAddr) (*Node, int) {
	n := as.Root
	for lvl := LevelPGD; lvl >= LevelPTE; lvl-- {
		idx := index(va, lvl)
		ent := n.Entries[idx]
		if !ent.Present() {
			return nil, 0
		}
		if lvl == LevelPTE || ent.Huge() {
			return n, idx
		}
		n = n.children[idx]
		if n == nil {
			return nil, 0
		}
	}
	return nil, 0
}

// Attach splices a shared sub-tree (DaxVM file table fragment) at the
// entry covering va at attachLevel. perm applies at the attachment entry —
// the per-process permission of the shared mapping.
func (as *AddressSpace) Attach(t *sim.Thread, va mem.VirtAddr, attachLevel int, sub *Node, perm mem.Perm) {
	if sub.Level != attachLevel-1 {
		panic(fmt.Sprintf("pt: attaching level-%d node at level %d", sub.Level, attachLevel))
	}
	if !mem.IsAligned(uint64(va), LevelSpan(attachLevel)) {
		panic("pt: unaligned attach")
	}
	n := as.ensurePath(t, va, attachLevel)
	e := BitPresent | BitUser | BitSoftAttached
	if perm.CanWrite() {
		e |= BitWrite
	}
	n.SetChild(t, index(va, attachLevel), sub, e)
}

// Detach removes an attached sub-tree, returning it.
func (as *AddressSpace) Detach(t *sim.Thread, va mem.VirtAddr, attachLevel int) *Node {
	n := as.Root
	for lvl := LevelPGD; lvl > attachLevel; lvl-- {
		idx := index(va, lvl)
		n = n.children[idx]
		if n == nil {
			return nil
		}
	}
	idx := index(va, attachLevel)
	if !n.Entries[idx].Attached() {
		return nil
	}
	sub := n.children[idx]
	n.ClearSlot(t, idx)
	return sub
}

// AttachedPerm rewrites the permission bits of an attachment entry
// (DaxVM mprotect over a whole mapping).
func (as *AddressSpace) AttachedPerm(t *sim.Thread, va mem.VirtAddr, attachLevel int, perm mem.Perm) bool {
	n := as.Root
	for lvl := LevelPGD; lvl > attachLevel; lvl-- {
		n = n.children[index(va, lvl)]
		if n == nil {
			return false
		}
	}
	idx := index(va, attachLevel)
	e := n.Entries[idx]
	if !e.Attached() {
		return false
	}
	e &^= BitWrite
	if perm.CanWrite() {
		e |= BitWrite
	}
	child := n.children[idx]
	n.SetChild(t, idx, child, e)
	return true
}

// ClearRange removes leaf translations in [start, end), returning how many
// present leaves were cleared. Attached sub-trees inside the range are
// detached (not recursed into). Empty non-shared interior nodes are freed.
func (as *AddressSpace) ClearRange(t *sim.Thread, start, end mem.VirtAddr) (cleared uint64) {
	return as.clearIn(t, as.Root, 0, start, end)
}

// clearIn clears [start,end) within node n which covers base..base+span.
func (as *AddressSpace) clearIn(t *sim.Thread, n *Node, base mem.VirtAddr, start, end mem.VirtAddr) (cleared uint64) {
	span := LevelSpan(n.Level)
	lo := 0
	if start > base {
		lo = int((uint64(start) - uint64(base)) / span)
	}
	hi := mem.PTEsPerTable - 1
	if covEnd := uint64(base) + span*mem.PTEsPerTable; uint64(end) < covEnd {
		hi = int((uint64(end) - 1 - uint64(base)) / span)
	}
	for idx := lo; idx <= hi; idx++ {
		e := n.Entries[idx]
		if !e.Present() {
			continue
		}
		slotBase := base + mem.VirtAddr(uint64(idx)*span)
		slotEnd := slotBase + mem.VirtAddr(span)
		covered := start <= slotBase && end >= slotEnd
		switch {
		case n.Level == LevelPTE || e.Huge():
			if !covered {
				panic("pt: partial clear of a leaf entry")
			}
			n.SetEntry(t, idx, 0)
			if e.Huge() {
				cleared += span / mem.PageSize
			} else {
				cleared++
			}
		case e.Attached():
			if !covered {
				// DaxVM mappings are unmapped whole; a partial clear
				// would mutate a shared file table.
				panic("pt: partial clear of attached fragment")
			}
			n.ClearSlot(t, idx)
			cleared += span / mem.PageSize // whole fragment detached
		default:
			child := n.children[idx]
			if child == nil {
				continue
			}
			cleared += as.clearIn(t, child, slotBase, start, end)
			if child.live == 0 && !child.Shared {
				n.ClearSlot(t, idx)
				if as.FreeNode != nil {
					as.FreeNode(t, child)
				}
			}
		}
	}
	return cleared
}
