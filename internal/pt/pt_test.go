package pt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daxvm/internal/mem"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

func newAS() *AddressSpace {
	return NewAddressSpace(
		func(_ *sim.Thread, level int) *Node { return NewNode(level, mem.Loc{Medium: mem.DRAM}) },
		func(_ *sim.Thread, _ *Node) {},
	)
}

func run(fn func(t *sim.Thread)) {
	e := sim.New()
	e.Go("t", 0, 0, fn)
	e.Run()
}

func TestEntryBits(t *testing.T) {
	e := MakeEntry(0x1234, mem.PermRead|mem.PermWrite, true, false)
	if !e.Present() || !e.Writable() || !e.OnPMem() || e.Huge() {
		t.Fatalf("bits wrong: %#x", uint64(e))
	}
	if e.PFN() != 0x1234 {
		t.Fatalf("pfn = %#x", e.PFN())
	}
	ro := MakeEntry(7, mem.PermRead, false, true)
	if ro.Writable() || !ro.Huge() || ro.OnPMem() {
		t.Fatalf("bits wrong: %#x", uint64(ro))
	}
}

func TestMapLookup(t *testing.T) {
	as := newAS()
	run(func(th *sim.Thread) {
		va := mem.VirtAddr(0x7f00_0000_0000)
		as.Map(th, va, MakeEntry(42, mem.PermRead|mem.PermWrite, true, false), LevelPTE)
		e, lvl, w, ok := as.Lookup(va)
		if !ok || lvl != LevelPTE || !w || e.PFN() != 42 {
			t.Errorf("Lookup = %#x lvl=%d w=%v ok=%v", uint64(e), lvl, w, ok)
		}
		if _, _, _, ok := as.Lookup(va + mem.PageSize); ok {
			t.Error("adjacent page should be unmapped")
		}
	})
}

func TestHugeMapping(t *testing.T) {
	as := newAS()
	run(func(th *sim.Thread) {
		va := mem.VirtAddr(0x7f00_0020_0000) // 2 MiB aligned
		as.Map(th, va, MakeEntry(512, mem.PermRead, true, true), LevelPMD)
		e, lvl, _, ok := as.Lookup(va + 0x12345)
		if !ok || lvl != LevelPMD || !e.Huge() {
			t.Errorf("huge lookup = %#x lvl=%d ok=%v", uint64(e), lvl, ok)
		}
	})
}

func TestAttachDetachSharedFragment(t *testing.T) {
	// A shared PTE-level node attached into two address spaces with
	// different permissions must yield different effective writability.
	sub := NewNode(LevelPTE, mem.Loc{Medium: mem.PMem})
	sub.Shared = true
	run(func(th *sim.Thread) {
		for i := 0; i < 16; i++ {
			sub.SetEntry(th, i, MakeEntry(mem.PFN(100+i), mem.PermRead|mem.PermWrite, true, false))
		}
		va := mem.VirtAddr(0x7f00_0040_0000)

		asRW := newAS()
		asRO := newAS()
		asRW.Attach(th, va, LevelPMD, sub, mem.PermRead|mem.PermWrite)
		asRO.Attach(th, va, LevelPMD, sub, mem.PermRead)

		_, _, w1, ok1 := asRW.Lookup(va + 4096)
		_, _, w2, ok2 := asRO.Lookup(va + 4096)
		if !ok1 || !ok2 {
			t.Error("attached translations missing")
		}
		if !w1 {
			t.Error("RW attachment should be writable")
		}
		if w2 {
			t.Error("RO attachment must not be writable despite RW PTEs (min-permission rule)")
		}

		got := asRW.Detach(th, va, LevelPMD)
		if got != sub {
			t.Error("Detach returned wrong node")
		}
		if _, _, _, ok := asRW.Lookup(va + 4096); ok {
			t.Error("translation survived detach")
		}
		// The shared fragment must be intact for the other process.
		if _, _, _, ok := asRO.Lookup(va + 4096); !ok {
			t.Error("shared fragment damaged by detach")
		}
		if sub.Entries[3].PFN() != 103 {
			t.Error("shared PTEs mutated")
		}
	})
}

func TestAttachedPerm(t *testing.T) {
	sub := NewNode(LevelPTE, mem.Loc{Medium: mem.DRAM})
	sub.Shared = true
	run(func(th *sim.Thread) {
		sub.SetEntry(th, 0, MakeEntry(1, mem.PermRead|mem.PermWrite, true, false))
		as := newAS()
		va := mem.VirtAddr(0x6000_0000_0000)
		as.Attach(th, va, LevelPMD, sub, mem.PermRead)
		if _, _, w, _ := as.Lookup(va); w {
			t.Error("should start read-only")
		}
		if !as.AttachedPerm(th, va, LevelPMD, mem.PermRead|mem.PermWrite) {
			t.Error("AttachedPerm failed")
		}
		if _, _, w, _ := as.Lookup(va); !w {
			t.Error("permission upgrade did not take effect")
		}
	})
}

func TestClearRange(t *testing.T) {
	as := newAS()
	run(func(th *sim.Thread) {
		base := mem.VirtAddr(0x7f00_0000_0000)
		for i := uint64(0); i < 100; i++ {
			as.Map(th, base+mem.VirtAddr(i*mem.PageSize), MakeEntry(mem.PFN(i), mem.PermRead, true, false), LevelPTE)
		}
		cleared := as.ClearRange(th, base+10*mem.PageSize, base+20*mem.PageSize)
		if cleared != 10 {
			t.Errorf("cleared = %d, want 10", cleared)
		}
		if _, _, _, ok := as.Lookup(base + 9*mem.PageSize); !ok {
			t.Error("page 9 should survive")
		}
		if _, _, _, ok := as.Lookup(base + 15*mem.PageSize); ok {
			t.Error("page 15 should be cleared")
		}
		if _, _, _, ok := as.Lookup(base + 20*mem.PageSize); !ok {
			t.Error("page 20 should survive")
		}
	})
}

func TestClearRangeDetachesFragments(t *testing.T) {
	sub := NewNode(LevelPTE, mem.Loc{Medium: mem.PMem})
	sub.Shared = true
	as := newAS()
	run(func(th *sim.Thread) {
		sub.SetEntry(th, 0, MakeEntry(9, mem.PermRead, true, false))
		va := mem.VirtAddr(0x7f00_0060_0000)
		as.Attach(th, va, LevelPMD, sub, mem.PermRead)
		cleared := as.ClearRange(th, va, va+mem.HugeSize)
		if cleared != mem.HugeSize/mem.PageSize {
			t.Errorf("cleared = %d", cleared)
		}
		if sub.Entries[0] == 0 {
			t.Error("shared fragment zeroed by ClearRange")
		}
	})
}

func TestPMemBackingMirror(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 1 << 20})
	n := NewNode(LevelPTE, mem.Loc{Medium: mem.PMem})
	n.Backing = dev
	n.BackAddr = 0x4000
	run(func(th *sim.Thread) {
		e := MakeEntry(77, mem.PermRead|mem.PermWrite, true, false)
		n.SetEntry(th, 5, e)
		n.FlushEntries(th, 5, 6)
		dev.Fence(th)
		raw := dev.Bytes(0x4000+5*8, 8)
		var got uint64
		for i := 7; i >= 0; i-- {
			got = got<<8 | uint64(raw[i])
		}
		if Entry(got) != e {
			t.Errorf("mirrored entry = %#x, want %#x", got, uint64(e))
		}
	})
}

// Property: Map then Lookup is the identity for arbitrary page-aligned
// addresses and PFNs, and ClearRange removes exactly the mapped range.
func TestQuickMapLookupInverse(t *testing.T) {
	f := func(pages []uint32, pfns []uint32) bool {
		if len(pages) == 0 {
			return true
		}
		if len(pfns) < len(pages) {
			return true
		}
		as := newAS()
		ok := true
		run(func(th *sim.Thread) {
			seen := map[mem.VirtAddr]mem.PFN{}
			for i, p := range pages {
				va := mem.VirtAddr(uint64(p) * mem.PageSize)
				pfn := mem.PFN(pfns[i] & 0xFFFFF)
				as.Map(th, va, MakeEntry(pfn, mem.PermRead, true, false), LevelPTE)
				seen[va] = pfn
			}
			for va, pfn := range seen {
				e, _, _, found := as.Lookup(va)
				if !found || e.PFN() != pfn {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClearRangePrunesNodes(t *testing.T) {
	freed := 0
	as := NewAddressSpace(
		func(_ *sim.Thread, level int) *Node { return NewNode(level, mem.Loc{Medium: mem.DRAM}) },
		func(_ *sim.Thread, _ *Node) { freed++ },
	)
	run(func(th *sim.Thread) {
		rng := rand.New(rand.NewSource(1))
		base := mem.VirtAddr(0x7f00_0000_0000)
		for i := 0; i < 1000; i++ {
			va := base + mem.VirtAddr(uint64(rng.Intn(1<<20))*mem.PageSize)
			as.Map(th, va, MakeEntry(1, mem.PermRead, true, false), LevelPTE)
		}
		as.ClearRange(th, base, base+mem.VirtAddr(uint64(1<<20)*mem.PageSize))
	})
	if freed == 0 {
		t.Fatal("no interior nodes pruned")
	}
}
