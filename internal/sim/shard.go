package sim

import (
	"sort"
	"sync"
	"sync/atomic"

	"daxvm/internal/cost"
)

// The sharded scheduler: what parallelizes, and what provably cannot.
//
// The obvious plan — run each shard's threads on its own host core inside
// conservative epoch windows [T, T+Δ) — founders on this model's physics.
// Conservative parallel discrete-event simulation needs lookahead: a lower
// bound Δ on how far in the future one shard can affect another, so events
// closer than Δ apart can run concurrently. Here the minimum cross-shard
// interaction cost (Lookahead below: the cheapest of IPI dispatch and
// scheduler wakeup) is ~1800 cycles, but two couplings reduce the usable
// lookahead to zero: the PMem bandwidth token bucket is shared by every
// core, so any two charges anywhere may interact at the same virtual
// instant; and SpinLock handoff resumes the next waiter at exactly the
// releaser's clock (TestSpinLockNoWakeCost pins this), i.e. a cross-shard
// effect with zero added latency. With zero usable lookahead the epochs
// degenerate to one event per window — sequential execution with extra
// barriers. That negative result is a finding, not a failure (see
// DESIGN.md "Scheduler architecture").
//
// So the sharded scheduler keeps model execution globally serialized in
// exact (wakeAt, seq) order — which is what guarantees byte-identical
// artifacts — and extracts host parallelism from the other half of the
// engine's work: observability. In profile, charge-sink and span
// bookkeeping (map lookups, top-K exemplars, histogram updates) dominate
// the per-charge cost when -obs is on. The sharded scheduler defers those
// emissions into per-shard buffers, flushes all shards at epoch
// boundaries, and lets per-shard host workers pre-aggregate additive
// charge partials in parallel; a single merger goroutine then applies
// order-dependent records (span begin/end/wait, observer charges) in
// global emission order. Determinism survives because:
//
//   - exactly one model thread runs at a time, so emission order IS the
//     sequential schedule's emission order; every record carries a global
//     sequence stamp assigned at emission;
//   - the merger applies order-dependent records in stamp order, so the
//     span collector sees the identical call sequence it would have seen
//     inline (same internal seq numbers, same exemplar replacements);
//   - charge aggregation is addition-commutative (CycleAccount sums
//     cycles and counts per (path, core)), so applying partials in any
//     order yields identical totals;
//   - observability readers (timeline samplers) force a full drain before
//     they are dispatched, so every snapshot they take matches the
//     sequential scheduler's snapshot at the same virtual time.
//
// Cross-shard scheduling effects — Wake of a thread on another shard,
// AddRemote IPI bookings — land in the target shard's mailbox and are
// drained into its ready heap before every dispatch decision, in push
// order, so the (wakeAt, seq) dispatch key is identical to the sequential
// scheduler's.

// Lookahead returns the conservative-synchronization lookahead Δ in
// cycles: the minimum virtual-time cost of any cross-shard interaction.
// The cheapest ways one core affects another are an IPI dispatch
// (cost.IPIBase, with cost.IPIAckLatency before the effect is observed)
// and a scheduler wakeup (cost.SchedWakeup); any cross-shard effect costs
// at least the smallest of these. Epoch windows are sized as a multiple
// of this bound.
func Lookahead() uint64 {
	la := uint64(cost.IPIBase)
	if w := uint64(cost.SchedWakeup); w < la {
		la = w
	}
	if a := uint64(cost.IPIAckLatency); a < la {
		la = a
	}
	return la
}

// epochFactor scales Lookahead into the epoch window length. Larger
// windows amortize flush overhead; smaller ones bound how stale the
// deferred observability state may get between forced drains.
const epochFactor = 512

// flushCap bounds how many deferred records accumulate across all shards
// before a flush is forced regardless of epoch position.
const flushCap = 16384

// ObsKind discriminates deferred observability records.
type ObsKind uint8

const (
	// ObsCharge is a charge emission (sink + observer).
	ObsCharge ObsKind = iota
	// ObsSpanBegin / ObsSpanEnd / ObsSpanWait are span-collector calls
	// deferred by obs/span via Thread.DeferObs.
	ObsSpanBegin
	ObsSpanEnd
	ObsSpanWait
)

// ObsRecord is one deferred observability emission. Everything
// order-sensitive is captured at emission time — notably Now, because the
// thread's clock will have moved on by the time the merger applies the
// record.
type ObsRecord struct {
	Kind   ObsKind
	Wait   uint8 // span wait-kind for ObsSpanWait
	Remote bool  // AddRemote booking (ObsCharge)
	T      *Thread
	Path   string
	Cycles uint64
	Now    uint64 // thread clock at emission (span begin/end timestamps)
	seq    uint64 // global emission order, stamped by the scheduler
}

// chargePartial is a worker's pre-aggregated charge bucket.
type chargePartial struct {
	path   string
	core   int
	cycles uint64
	count  uint64
}

// prepared is a worker's output for one shard-batch of one generation.
type prepared struct {
	partials []chargePartial // sorted by (path, core); only when bulkSink is set
	ordered  []ObsRecord     // records the merger must apply in seq order
}

type genMsg struct {
	ack chan struct{} // closed by the merger once the generation is applied
}

type shard struct {
	heap    threadHeap
	mailbox []*Thread
	buf     []ObsRecord
	in      chan []ObsRecord
	out     chan prepared
}

// shardScheduler implements Scheduler with per-shard ready heaps and the
// deferred observability pipeline described above.
type shardScheduler struct {
	e        *Engine
	shards   []*shard
	block    int // cores per shard (contiguous partition)
	cores    int
	curShard int // shard of the currently running thread, -1 before Run

	epochLen uint64
	epochEnd uint64

	buffered int // deferred records across all shards since last flush

	// inFlight counts flushed-but-unapplied generations. The model
	// goroutine increments at flush; the merger decrements (atomically,
	// with a happens-before edge) once a generation is fully applied.
	// When it reads 0 at drain time the pipeline is empty and the model
	// goroutine may apply its buffers inline — the common case for
	// sampler-paced drains, which would otherwise pay a full channel
	// round trip per sample interval.
	inFlight int64

	started    bool
	gens       chan genMsg
	workers    sync.WaitGroup
	mergerDone chan struct{}

	// merge scratch, preallocated: drains run per sampler interval.
	scratchLists [][]ObsRecord
	scratchIdx   []int
}

func newShardScheduler(e *Engine, shards, cores int) *shardScheduler {
	if cores < 1 {
		cores = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > cores {
		shards = cores
	}
	s := &shardScheduler{
		e:        e,
		shards:   make([]*shard, shards),
		block:    (cores + shards - 1) / shards,
		cores:    cores,
		curShard: -1,
		epochLen: Lookahead() * epochFactor,
	}
	s.epochEnd = s.epochLen
	for i := range s.shards {
		s.shards[i] = &shard{
			in:  make(chan []ObsRecord, 4),
			out: make(chan prepared, 4),
		}
	}
	s.scratchLists = make([][]ObsRecord, shards)
	s.scratchIdx = make([]int, shards)
	return s
}

func (s *shardScheduler) shardOf(core int) int {
	if core < 0 {
		return 0
	}
	i := core / s.block
	if i >= len(s.shards) {
		i = len(s.shards) - 1
	}
	return i
}

// push routes t to its shard: direct heap insertion when pushed by a
// thread on the same shard (or from outside the simulation), otherwise
// via the target shard's mailbox — the cross-shard path Wake and
// AddRemote wakeups take. Mailboxes drain before every dispatch decision,
// so the effect on dispatch order is identical either way.
func (s *shardScheduler) push(t *Thread) {
	sh := s.shardOf(t.Core)
	if s.curShard >= 0 && sh != s.curShard {
		//lint:ignore hotalloc cross-shard mailbox: amortized, drained and reused every dispatch
		s.shards[sh].mailbox = append(s.shards[sh].mailbox, t)
		return
	}
	s.shards[sh].heap.push(t)
}

// drainMailboxes moves cross-shard pushes into their shard heaps, in push
// order. The heap re-sorts by (wakeAt, seq), so the dispatch key order is
// exactly the sequential scheduler's.
func (s *shardScheduler) drainMailboxes() {
	for _, sh := range s.shards {
		if len(sh.mailbox) == 0 {
			continue
		}
		for _, t := range sh.mailbox {
			sh.heap.push(t)
		}
		sh.mailbox = sh.mailbox[:0]
	}
}

// pop drains mailboxes, then selects the global minimum-(wakeAt, seq)
// thread across the shard heap heads — the identical choice the
// sequential scheduler's single heap would make, because seq values are
// unique and each heap head is its shard's minimum.
func (s *shardScheduler) pop() *Thread {
	s.drainMailboxes()
	best := -1
	var bt *Thread
	for i, sh := range s.shards {
		h := sh.heap.peek()
		if h == nil {
			continue
		}
		if bt == nil || h.wakeAt < bt.wakeAt || (h.wakeAt == bt.wakeAt && h.seq < bt.seq) {
			best, bt = i, h
		}
	}
	if bt == nil {
		return nil
	}
	s.shards[best].heap.pop()
	s.curShard = best
	if bt.wakeAt >= s.epochEnd {
		// Epoch barrier: seal every shard's deferred buffer as one
		// generation and hand it to the workers, then open the next
		// window. Flushing all shards together keeps generation sequence
		// ranges monotone, so the merger never sees out-of-order stamps.
		s.flush(nil)
		s.epochEnd = (bt.wakeAt/s.epochLen + 1) * s.epochLen
	}
	return bt
}

func (s *shardScheduler) readyDepth() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.heap.len() + len(sh.mailbox)
	}
	return n
}

func (s *shardScheduler) emitCharge(t *Thread, path string, cycles uint64, remote bool) {
	s.enqueue(ObsRecord{Kind: ObsCharge, Remote: remote, T: t, Path: path, Cycles: cycles})
}

func (s *shardScheduler) deferRecord(rec ObsRecord) bool {
	if s.e.applier == nil {
		return false
	}
	s.enqueue(rec)
	return true
}

// enqueue stamps rec with its global emission sequence and appends it to
// the current shard's buffer. Runs only on the single model goroutine, so
// the seq counter needs no atomics.
func (s *shardScheduler) enqueue(rec ObsRecord) {
	s.e.obsSeq++
	rec.seq = s.e.obsSeq
	i := s.curShard
	if i < 0 {
		i = 0
	}
	//lint:ignore hotalloc deferred-obs buffer: one amortized append per emission, recycled per generation
	s.shards[i].buf = append(s.shards[i].buf, rec)
	s.buffered++
	if s.buffered >= flushCap {
		s.flush(nil)
	}
}

// flush seals every shard's buffer as one generation and hands the
// batches to the shard workers. ack, when non-nil, is closed by the
// merger once this generation (and, by FIFO, everything before it) has
// been applied.
func (s *shardScheduler) flush(ack chan struct{}) {
	if ack == nil && s.buffered == 0 {
		// Epoch/capacity flush with nothing buffered (e.g. an engine with
		// no sinks wired): sealing an empty generation would only spin up
		// the pipeline for nothing. Acked flushes still go through — the
		// caller is waiting on the close.
		return
	}
	if !s.started {
		s.start()
	}
	for _, sh := range s.shards {
		sh.in <- sh.buf
		sh.buf = nil
	}
	s.buffered = 0
	atomic.AddInt64(&s.inFlight, 1)
	s.gens <- genMsg{ack: ack}
}

// drain blocks until every deferred record has been applied. Called
// before observability readers are dispatched and by stop. When the
// pipeline is already empty it applies the current buffers inline on the
// model goroutine — identical order, identical final state, no channel
// round trip. That matters because the timeline sampler forces a drain
// every sample interval, far more often than epochs close; paying a
// worker+merger round trip per interval costs more than inline
// bookkeeping saves on small batches.
func (s *shardScheduler) drain() {
	if atomic.LoadInt64(&s.inFlight) == 0 {
		if s.buffered == 0 {
			return
		}
		for i, sh := range s.shards {
			s.scratchLists[i] = sh.buf
		}
		s.applyRecords(s.scratchLists, true)
		for i, sh := range s.shards {
			sh.buf = sh.buf[:0]
			s.scratchLists[i] = nil
		}
		s.buffered = 0
		return
	}
	ack := make(chan struct{})
	s.flush(ack)
	<-ack
}

// stop drains outstanding generations and joins the host workers. Called
// once, after the model has finished, before Run returns — so callers
// reading sinks/observers afterwards have a happens-before edge on every
// application.
func (s *shardScheduler) stop() {
	s.drain()
	if !s.started {
		return
	}
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.workers.Wait()
	close(s.gens)
	<-s.mergerDone
}

// start spawns the per-shard workers and the merger. Host-side goroutines
// are the whole point of the sharded scheduler; the determinism lint's
// raw-`go` ban is suppressed for exactly these spawns (the model side
// still never spawns).
func (s *shardScheduler) start() {
	s.started = true
	//lint:ignore hotalloc pipeline setup: runs once per engine
	s.gens = make(chan genMsg, 4)
	//lint:ignore hotalloc pipeline setup: runs once per engine
	s.mergerDone = make(chan struct{})
	for _, sh := range s.shards {
		s.workers.Add(1)
		sh := sh
		// Shard worker: aggregates its shard's deferred charges off the
		// model goroutine. FIFO in→out preserves generation order.
		//lint:ignore determinism,hotalloc shard host worker: one spawn per engine, model stays serialized
		go func() {
			defer s.workers.Done()
			for b := range sh.in {
				sh.out <- s.prepare(b)
			}
		}()
	}
	// Merger: applies each generation's batches — additive partials in
	// any order, order-dependent records in global seq order.
	//lint:ignore determinism merger goroutine: applies deferred records in global emission order
	go s.merge()
}

// prepare runs on a shard worker: it splits a batch into additive charge
// partials (aggregated here, in parallel across shards) and records the
// merger must replay in emission order.
func (s *shardScheduler) prepare(b []ObsRecord) prepared {
	var p prepared
	e := s.e
	aggregate := e.bulkSink != nil && e.sink != nil
	var agg map[chargeKey]int // index into p.partials
	for _, rec := range b {
		if rec.Kind != ObsCharge {
			//lint:ignore hotalloc worker-side batch split: runs off the model goroutine
			p.ordered = append(p.ordered, rec)
			continue
		}
		if aggregate {
			k := chargeKey{path: rec.Path, core: rec.T.Core}
			if agg == nil {
				//lint:ignore hotalloc worker-side aggregation map: one per generation batch, off the model goroutine
				agg = make(map[chargeKey]int)
			}
			if i, ok := agg[k]; ok {
				p.partials[i].cycles += rec.Cycles
				p.partials[i].count++
			} else {
				agg[k] = len(p.partials)
				//lint:ignore hotalloc worker-side partials: one entry per unique (path, core) per batch
				p.partials = append(p.partials, chargePartial{path: rec.Path, core: rec.T.Core, cycles: rec.Cycles, count: 1})
			}
		}
		if e.observer != nil || (!aggregate && e.sink != nil) {
			//lint:ignore hotalloc worker-side batch split: runs off the model goroutine
			p.ordered = append(p.ordered, rec)
		}
	}
	// Deterministic partial order (map iteration order must not leak
	// into any observable sequence, even a commutative one).
	//lint:ignore hotalloc worker-side sort: once per generation batch, off the model goroutine
	sort.Slice(p.partials, func(i, j int) bool {
		a, b := p.partials[i], p.partials[j]
		if a.path != b.path {
			return a.path < b.path
		}
		return a.core < b.core
	})
	return p
}

type chargeKey struct {
	path string
	core int
}

// merge is the single consumer of worker output: per generation it applies
// every shard's additive partials, then k-way-merges the shards' ordered
// records by their global seq stamps and applies them one by one —
// exactly the call sequence the sequential scheduler would have made
// inline.
func (s *shardScheduler) merge() {
	defer close(s.mergerDone)
	e := s.e
	//lint:ignore hotalloc merger scratch: allocated once per engine
	lists := make([][]ObsRecord, len(s.shards))
	//lint:ignore hotalloc merger scratch: allocated once per engine
	idx := make([]int, len(s.shards))
	for g := range s.gens {
		for i, sh := range s.shards {
			p := <-sh.out
			if e.bulkSink != nil {
				for _, c := range p.partials {
					e.bulkSink(c.core, c.path, c.cycles, c.count)
				}
			}
			lists[i] = p.ordered
		}
		s.mergeRecords(lists, idx, false)
		for i := range lists {
			lists[i] = nil
		}
		// Decrement after every application, before the ack: a model
		// goroutine that observes 0 afterwards has a happens-before edge
		// on everything this generation wrote.
		atomic.AddInt64(&s.inFlight, -1)
		if g.ack != nil {
			close(g.ack)
		}
	}
}

// applyRecords applies raw (unprepared) per-shard buffers inline on the
// model goroutine, using the scheduler's scratch space. Charges take the
// per-record form of whichever sink contract is wired — bulk (count 1
// each; addition-commutative, so the final state matches the aggregated
// path) or plain.
func (s *shardScheduler) applyRecords(lists [][]ObsRecord, inline bool) {
	s.mergeRecords(lists, s.scratchIdx, inline)
}

// mergeRecords k-way-merges per-shard seq-ascending record lists and
// applies each record in global emission order. idx is caller-owned
// scratch (the merger goroutine and the model goroutine's inline drain
// must not share it); inlineCharges selects per-record charge
// application for unprepared buffers.
func (s *shardScheduler) mergeRecords(lists [][]ObsRecord, idx []int, inlineCharges bool) {
	e := s.e
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		var bseq uint64
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if sq := l[idx[i]].seq; best < 0 || sq < bseq {
				best, bseq = i, sq
			}
		}
		if best < 0 {
			return
		}
		rec := lists[best][idx[best]]
		idx[best]++
		switch rec.Kind {
		case ObsCharge:
			if inlineCharges && e.bulkSink != nil && e.sink != nil {
				// Unprepared buffer: the aggregated path would have
				// folded this into a partial; one-record bulk calls sum
				// to the identical account state.
				e.bulkSink(rec.T.Core, rec.Path, rec.Cycles, 1)
			} else if e.bulkSink == nil || inlineCharges {
				if e.sink != nil {
					e.sink(rec.T.Core, rec.Path, rec.Cycles)
				}
			}
			if e.observer != nil {
				e.observer(rec.T, rec.Path, rec.Cycles, rec.Remote)
			}
		default:
			if e.applier != nil {
				e.applier(rec)
			}
		}
	}
}
