package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// --- concrete heap ---

// TestThreadHeapPopOrder pins that the concrete-typed heap pops in
// ascending (wakeAt, seq) order — seq is unique, so this is a total
// order and the exact dispatch sequence the engine depends on.
func TestThreadHeapPopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h threadHeap
	var ts []*Thread
	for i := 0; i < 500; i++ {
		th := &Thread{wakeAt: uint64(rng.Intn(50)), seq: uint64(i + 1), index: -1}
		ts = append(ts, th)
		h.push(th)
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].wakeAt != ts[j].wakeAt {
			return ts[i].wakeAt < ts[j].wakeAt
		}
		return ts[i].seq < ts[j].seq
	})
	for i, want := range ts {
		got := h.pop()
		if got != want {
			t.Fatalf("pop %d: got (wakeAt=%d seq=%d), want (wakeAt=%d seq=%d)",
				i, got.wakeAt, got.seq, want.wakeAt, want.seq)
		}
		if got.index != -1 {
			t.Fatalf("pop %d: index not reset, got %d", i, got.index)
		}
	}
	if h.pop() != nil {
		t.Fatal("pop of empty heap should return nil")
	}
}

// TestThreadsReturnsCopy pins the aliasing fix: mutating the returned
// slice must not corrupt the engine's own registry.
func TestThreadsReturnsCopy(t *testing.T) {
	e := New()
	e.Go("a", 0, 0, func(t *Thread) {})
	e.Go("b", 1, 0, func(t *Thread) {})
	got := e.Threads()
	got[0] = nil
	got = append(got, nil)
	_ = got
	again := e.Threads()
	if len(again) != 2 || again[0] == nil || again[0].Name != "a" {
		t.Fatalf("engine registry corrupted through Threads(): %+v", again)
	}
}

// TestLookahead pins the conservative lookahead to the cheapest
// cross-shard interaction in the cost model.
func TestLookahead(t *testing.T) {
	if got := Lookahead(); got != 1800 {
		t.Fatalf("Lookahead() = %d, want 1800 (cost.IPIBase)", got)
	}
}

// TestDumpIncludesAttrAndShard pins the deadlock-dump upgrades: each
// thread line carries its innermost attribution path and, on a sharded
// engine, its shard.
func TestDumpIncludesAttrAndShard(t *testing.T) {
	e := NewSharded(2, 4)
	e.Go("stuck", 3, 0, func(t *Thread) {
		t.PushAttr("fs.write")
		t.Block("nothing")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"attr=fs.write", "shard=1", "blocked on nothing"} {
			if !contains(msg, want) {
				t.Fatalf("deadlock dump missing %q:\n%s", want, msg)
			}
		}
	}()
	e.Run()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// --- cross-scheduler equivalence ---

// op is one step of a generated thread program.
type op struct {
	kind   int
	cycles uint64
	label  string
	target int // AddRemote target thread index
}

const (
	opCharge = iota
	opChargeAs
	opSleep
	opYield
	opPush
	opPop
	opMutex
	opSpin
	opRead
	opWrite
	opRemote
	opWaitEvent
	numOpKinds
)

var opLabels = []string{"walk", "bw_stall", "ipi_send", "copy"}

// genProgram builds a randomized program for nthreads threads from seed.
// The program is plain data, so both schedulers execute the identical
// op sequence.
func genProgram(seed int64, nthreads, nops int) [][]op {
	rng := rand.New(rand.NewSource(seed))
	progs := make([][]op, nthreads)
	for i := range progs {
		depth := 0
		for j := 0; j < nops; j++ {
			o := op{kind: rng.Intn(numOpKinds), cycles: uint64(1 + rng.Intn(4000))}
			switch o.kind {
			case opChargeAs:
				o.label = opLabels[rng.Intn(len(opLabels))]
			case opPush:
				if depth >= 3 {
					o.kind = opCharge
				} else {
					o.label = opLabels[rng.Intn(len(opLabels))]
					depth++
				}
			case opPop:
				if depth == 0 {
					o.kind = opYield
				} else {
					depth--
				}
			case opRemote:
				o.target = rng.Intn(nthreads)
			}
			progs[i] = append(progs[i], o)
		}
		for ; depth > 0; depth-- {
			progs[i] = append(progs[i], op{kind: opPop})
		}
	}
	return progs
}

// schedTrace is everything observable about one run: final thread
// clocks, engine totals, and the exact sink/observer call sequences.
type schedTrace struct {
	clocks   map[string]uint64
	charged  uint64
	events   uint64
	maxClock uint64
	sink     []string
	observer []string
}

// runProgram executes a generated program on e and records its trace.
// The sink/observer records are appended by the sequential scheduler
// inline and by the sharded scheduler's merger goroutine; Run joins the
// workers before returning, so reading them afterwards is race-free.
func runProgram(e *Engine, progs [][]op) schedTrace {
	var tr schedTrace
	e.SetChargeSink(func(core int, path string, cycles uint64) {
		tr.sink = append(tr.sink, fmt.Sprintf("%d|%s|%d", core, path, cycles))
	})
	e.SetChargeObserver(func(t *Thread, path string, cycles uint64, remote bool) {
		tr.observer = append(tr.observer, fmt.Sprintf("%s|%s|%d|%v", t.Name, path, cycles, remote))
	})
	mu := NewMutex(2200)
	var spin SpinLock
	rw := NewRWSem(2200)
	var ev Event
	ths := make([]*Thread, len(progs))
	for i, prog := range progs {
		prog := prog
		ths[i] = e.Go(fmt.Sprintf("t%d", i), i, uint64(i)*37, func(t *Thread) {
			for _, o := range prog {
				switch o.kind {
				case opCharge:
					t.Charge(o.cycles)
				case opChargeAs:
					t.ChargeAs(o.label, o.cycles)
				case opSleep:
					t.Sleep(o.cycles)
				case opYield:
					t.Yield()
				case opPush:
					t.PushAttr(o.label)
				case opPop:
					t.PopAttr()
				case opMutex:
					mu.Lock(t, 80)
					t.Charge(o.cycles)
					mu.Unlock(t, 40)
				case opSpin:
					spin.Lock(t, 80)
					t.Charge(o.cycles)
					spin.Unlock(t, 40)
				case opRead:
					rw.RLock(t, 80)
					t.Charge(o.cycles)
					rw.RUnlock(t, 40)
				case opWrite:
					rw.Lock(t, 80)
					t.Charge(o.cycles)
					rw.Unlock(t, 40)
				case opRemote:
					ths[o.target].AddRemote("ipi.remote", o.cycles)
				case opWaitEvent:
					ev.Wait(t, "prog-event")
				}
			}
		})
	}
	// Broadcaster daemon: guarantees event waiters always wake, so a
	// random program can never deadlock on opWaitEvent.
	e.GoDaemon("broadcaster", 0, 0, func(t *Thread) {
		for {
			ev.Broadcast(t)
			t.Sleep(5_000)
		}
	})
	tr.maxClock = e.Run()
	tr.charged = e.TotalCharged()
	tr.events = e.Events()
	tr.clocks = make(map[string]uint64)
	for _, t := range e.Threads() {
		tr.clocks[t.Name] = t.Now()
	}
	return tr
}

// TestSchedulerEquivalence is the cross-scheduler property test:
// randomized seeded programs of charges, sleeps, yields, attribution
// frames, lock ops (mutex / spin / rwsem), event block/wake and remote
// IPI bookings must produce identical final clocks, identical engine
// totals and identical merged sink/observer event order under the
// sequential and sharded schedulers, across shard counts that divide
// the cores evenly and ones that do not.
func TestSchedulerEquivalence(t *testing.T) {
	const nthreads, nops = 8, 60
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			progs := genProgram(seed, nthreads, nops)
			ref := runProgram(New(), progs)
			for _, shards := range []int{1, 3, 4} {
				got := runProgram(NewSharded(shards, nthreads), progs)
				if got.charged != ref.charged || got.events != ref.events || got.maxClock != ref.maxClock {
					t.Fatalf("shards=%d: totals differ: charged %d vs %d, events %d vs %d, maxClock %d vs %d",
						shards, got.charged, ref.charged, got.events, ref.events, got.maxClock, ref.maxClock)
				}
				for name, c := range ref.clocks {
					if got.clocks[name] != c {
						t.Fatalf("shards=%d: thread %s final clock %d, want %d", shards, name, got.clocks[name], c)
					}
				}
				compareSeqs(t, shards, "sink", ref.sink, got.sink)
				compareSeqs(t, shards, "observer", ref.observer, got.observer)
			}
		})
	}
}

func compareSeqs(t *testing.T, shards int, kind string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("shards=%d: %s call count %d, want %d", shards, kind, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("shards=%d: %s call %d = %q, want %q", shards, kind, i, got[i], want[i])
		}
	}
}

// TestBulkSinkAggregation pins the bulk-sink contract: with a bulk sink
// registered, the sharded scheduler's workers pre-aggregate charges per
// (path, core), and the summed cycles and counts must equal the
// sequential per-call sink stream exactly.
func TestBulkSinkAggregation(t *testing.T) {
	progs := genProgram(42, 8, 60)

	type agg struct{ cycles, count uint64 }
	type key struct {
		core int
		path string
	}

	ref := make(map[key]agg)
	eseq := New()
	eseq.SetChargeSink(func(core int, path string, cycles uint64) {
		a := ref[key{core, path}]
		a.cycles += cycles
		a.count++
		ref[key{core, path}] = a
	})
	runProgram2(eseq, progs)

	got := make(map[key]agg)
	esh := NewSharded(3, 8)
	esh.SetChargeSink(func(core int, path string, cycles uint64) {
		t.Error("plain sink called despite bulk sink being registered")
	})
	esh.SetChargeBulkSink(func(core int, path string, cycles, count uint64) {
		a := got[key{core, path}]
		a.cycles += cycles
		a.count += count
		got[key{core, path}] = a
	})
	runProgram2(esh, progs)

	if len(ref) != len(got) {
		t.Fatalf("aggregate key count %d, want %d", len(got), len(ref))
	}
	for k, w := range ref {
		if got[k] != w {
			t.Fatalf("aggregate %v = %+v, want %+v", k, got[k], w)
		}
	}
}

// runProgram2 runs a program without recording traces (the caller wires
// its own sinks before calling).
func runProgram2(e *Engine, progs [][]op) {
	mu := NewMutex(2200)
	var ev Event
	for i, prog := range progs {
		prog := prog
		e.Go(fmt.Sprintf("t%d", i), i, uint64(i)*37, func(t *Thread) {
			for _, o := range prog {
				switch o.kind {
				case opChargeAs:
					t.ChargeAs(o.label, o.cycles)
				case opSleep:
					t.Sleep(o.cycles)
				case opYield:
					t.Yield()
				case opPush:
					t.PushAttr(o.label)
				case opPop:
					t.PopAttr()
				case opMutex, opSpin, opRead, opWrite:
					mu.Lock(t, 80)
					t.Charge(o.cycles)
					mu.Unlock(t, 40)
				case opWaitEvent:
					ev.Wait(t, "prog-event")
				default:
					t.Charge(o.cycles)
				}
			}
		})
	}
	e.GoDaemon("broadcaster", 0, 0, func(t *Thread) {
		for {
			ev.Broadcast(t)
			t.Sleep(5_000)
		}
	})
	e.Run()
}
