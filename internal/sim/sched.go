package sim

// Scheduler is the engine's dispatch core: it owns the ready queue(s) and
// the policy for delivering observability emissions (charge sink/observer
// calls and deferred span records). Exactly one model thread runs at a
// time under every implementation; schedulers differ only in how ready
// threads are stored and in whether observability bookkeeping is applied
// inline (sequential) or offloaded to host workers and merged back in
// emission order (sharded). The interface is sealed inside package sim:
// correctness depends on invariants (single running thread, seq-stamped
// pushes) the engine alone maintains.
type Scheduler interface {
	// push enqueues t, already stamped with its (wakeAt, seq) key.
	push(t *Thread)
	// pop removes and returns the minimum-(wakeAt, seq) ready thread,
	// or nil when nothing is runnable.
	pop() *Thread
	// readyDepth reports how many threads are queued.
	readyDepth() int
	// shardOf reports which shard dispatches the given core, or -1 when
	// the scheduler has no shards (diagnostics only).
	shardOf(core int) int
	// emitCharge delivers one charge to the engine's sink/observer —
	// inline, or deferred and merged in emission order.
	emitCharge(t *Thread, path string, cycles uint64, remote bool)
	// deferRecord offers a span record for deferred in-order
	// application; false means the caller must apply it inline.
	deferRecord(rec ObsRecord) bool
	// drain forces every deferred emission to be applied before
	// returning (called ahead of observability readers).
	drain()
	// stop drains and joins any host workers (called once, after Run).
	stop()
}

// threadHeap is a concrete-typed binary min-heap of threads ordered by
// (wakeAt, seq). It replaces container/heap on the hottest scheduler
// path: heap.Push/Pop box every *Thread through `any`, and that
// allocation shows up in whole-program hot-path profiles. seq values are
// unique (the engine stamps them from a single counter), so the order is
// total and any correct binary heap pops the identical sequence —
// swapping the implementation cannot change dispatch order.
type threadHeap struct {
	ts []*Thread
}

func (h *threadHeap) len() int { return len(h.ts) }

func (h *threadHeap) less(i, j int) bool {
	a, b := h.ts[i], h.ts[j]
	if a.wakeAt != b.wakeAt {
		return a.wakeAt < b.wakeAt
	}
	return a.seq < b.seq
}

func (h *threadHeap) swap(i, j int) {
	h.ts[i], h.ts[j] = h.ts[j], h.ts[i]
	h.ts[i].index = i
	h.ts[j].index = j
}

func (h *threadHeap) push(t *Thread) {
	t.index = len(h.ts)
	//lint:ignore hotalloc ready-heap backing array: amortized, reaches steady capacity after warm-up
	h.ts = append(h.ts, t)
	h.up(t.index)
}

func (h *threadHeap) pop() *Thread {
	n := len(h.ts)
	if n == 0 {
		return nil
	}
	t := h.ts[0]
	h.swap(0, n-1)
	h.ts[n-1] = nil
	h.ts = h.ts[:n-1]
	if n > 1 {
		h.down(0)
	}
	t.index = -1
	return t
}

// peek returns the minimum thread without removing it.
func (h *threadHeap) peek() *Thread {
	if len(h.ts) == 0 {
		return nil
	}
	return h.ts[0]
}

func (h *threadHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *threadHeap) down(i int) {
	n := len(h.ts)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// seqScheduler is the reference implementation: one global ready heap,
// observability applied inline at the charge site. It is the semantic
// baseline the sharded scheduler must match byte-for-byte.
type seqScheduler struct {
	e     *Engine
	ready threadHeap
}

func (s *seqScheduler) push(t *Thread)       { s.ready.push(t) }
func (s *seqScheduler) pop() *Thread         { return s.ready.pop() }
func (s *seqScheduler) readyDepth() int      { return s.ready.len() }
func (s *seqScheduler) shardOf(core int) int { return -1 }

func (s *seqScheduler) emitCharge(t *Thread, path string, cycles uint64, remote bool) {
	if s.e.sink != nil {
		s.e.sink(t.Core, path, cycles)
	}
	if s.e.observer != nil {
		s.e.observer(t, path, cycles, remote)
	}
}

func (s *seqScheduler) deferRecord(rec ObsRecord) bool { return false }
func (s *seqScheduler) drain()                         {}
func (s *seqScheduler) stop()                          {}
