package sim

import "testing"

// lockIface lets one scenario drive Mutex and SpinLock identically.
type lockIface interface {
	Lock(t *Thread, acqCost uint64)
	Unlock(t *Thread, relCost uint64)
	stats() *LockStats
	setOnContended(fn ContentionFn)
}

type mutexUnderTest struct{ *Mutex }

func (m mutexUnderTest) stats() *LockStats              { return &m.Mutex.Stats }
func (m mutexUnderTest) setOnContended(fn ContentionFn) { m.Mutex.OnContended = fn }

type spinUnderTest struct{ *SpinLock }

func (s spinUnderTest) stats() *LockStats              { return &s.SpinLock.Stats }
func (s spinUnderTest) setOnContended(fn ContentionFn) { s.SpinLock.OnContended = fn }

// TestLockStatsContention runs a deterministic two-thread scenario and
// checks every LockStats field: A acquires at t=0 and holds for 100
// cycles; B arrives at t=10, waits until the handoff at t=100 (90 cycles
// of wait), then holds for 50.
func TestLockStatsContention(t *testing.T) {
	cases := []struct {
		name string
		mk   func() lockIface
	}{
		{"mutex", func() lockIface { return mutexUnderTest{NewMutex(0)} }},
		{"spinlock", func() lockIface { return spinUnderTest{&SpinLock{}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			l := tc.mk()
			type contention struct {
				kind      string
				waitStart uint64
				end       uint64
				blocked   uint64
			}
			var seen []contention
			l.setOnContended(func(th *Thread, kind string, waitStart, blocked uint64) {
				seen = append(seen, contention{kind, waitStart, th.Now(), blocked})
			})
			e.Go("a", 0, 0, func(th *Thread) {
				l.Lock(th, 0)
				th.Charge(100)
				l.Unlock(th, 0)
			})
			e.Go("b", 1, 10, func(th *Thread) {
				l.Lock(th, 0)
				th.Charge(50)
				l.Unlock(th, 0)
			})
			e.Run()

			s := l.stats()
			if s.Acquisitions != 2 {
				t.Errorf("Acquisitions = %d, want 2", s.Acquisitions)
			}
			if s.Contended != 1 {
				t.Errorf("Contended = %d, want 1", s.Contended)
			}
			if s.WaitCycles != 90 {
				t.Errorf("WaitCycles = %d, want 90", s.WaitCycles)
			}
			if s.HoldCycles != 150 {
				t.Errorf("HoldCycles = %d, want 150 (100 by A + 50 by B)", s.HoldCycles)
			}
			if got := s.Contention(); got != 0.5 {
				t.Errorf("Contention() = %v, want 0.5", got)
			}
			if len(seen) != 1 {
				t.Fatalf("OnContended fired %d times, want 1", len(seen))
			}
			if seen[0].kind != tc.name {
				t.Errorf("contention kind = %q, want %q", seen[0].kind, tc.name)
			}
			if seen[0].waitStart != 10 || seen[0].end != 100 {
				t.Errorf("contention window = [%d,%d), want [10,100)", seen[0].waitStart, seen[0].end)
			}
			// With wakeCost 0 the whole window is uncharged park time.
			if seen[0].blocked != 90 {
				t.Errorf("blocked = %d, want 90", seen[0].blocked)
			}
		})
	}
}

// TestContentionBlockedExcludesWakeCost pins the contract the span layer
// relies on: blocked is the uncharged park gap only, while WaitCycles
// keeps including the wakeup charge paid on resume.
func TestContentionBlockedExcludesWakeCost(t *testing.T) {
	e := New()
	m := NewMutex(7)
	var blocked, end uint64
	m.OnContended = func(th *Thread, kind string, waitStart, b uint64) {
		blocked, end = b, th.Now()
	}
	e.Go("a", 0, 0, func(th *Thread) {
		m.Lock(th, 0)
		th.Charge(100)
		m.Unlock(th, 0)
	})
	e.Go("b", 1, 10, func(th *Thread) {
		m.Lock(th, 0)
		m.Unlock(th, 0)
	})
	e.Run()
	if blocked != 90 {
		t.Errorf("blocked = %d, want 90 (park gap without the wake charge)", blocked)
	}
	if end != 107 {
		t.Errorf("hook fired at t=%d, want 107 (after the wake charge)", end)
	}
	if m.Stats.WaitCycles != 97 {
		t.Errorf("WaitCycles = %d, want 97 (gap + wake cost)", m.Stats.WaitCycles)
	}
}

// TestContentionCallbackShape drives every lock flavour through the same
// two-thread scenario (holder keeps the lock for 100 cycles, contender
// arrives at t=10) and asserts all four kinds report identically shaped
// (waitStart, blocked) values per the ContentionFn contract:
// blocked = (now - waitStart) - wakeCharged, computed before the wake
// charge lands. SpinLock historically inlined t.Now()-start instead —
// this pins the fixed behaviour.
func TestContentionCallbackShape(t *testing.T) {
	const wake = 7
	cases := []struct {
		name     string
		wakeCost uint64
		run      func(e *Engine, onc ContentionFn)
	}{
		{"mutex", wake, func(e *Engine, onc ContentionFn) {
			m := NewMutex(wake)
			m.OnContended = onc
			e.Go("a", 0, 0, func(th *Thread) { m.Lock(th, 0); th.Charge(100); m.Unlock(th, 0) })
			e.Go("b", 1, 10, func(th *Thread) { m.Lock(th, 0); m.Unlock(th, 0) })
		}},
		{"spinlock", 0, func(e *Engine, onc ContentionFn) {
			s := &SpinLock{}
			s.OnContended = onc
			e.Go("a", 0, 0, func(th *Thread) { s.Lock(th, 0); th.Charge(100); s.Unlock(th, 0) })
			e.Go("b", 1, 10, func(th *Thread) { s.Lock(th, 0); s.Unlock(th, 0) })
		}},
		{"read", wake, func(e *Engine, onc ContentionFn) {
			s := NewRWSem(wake)
			s.OnContended = onc
			e.Go("a", 0, 0, func(th *Thread) { s.Lock(th, 0); th.Charge(100); s.Unlock(th, 0) })
			e.Go("b", 1, 10, func(th *Thread) { s.RLock(th, 0); s.RUnlock(th, 0) })
		}},
		{"write", wake, func(e *Engine, onc ContentionFn) {
			s := NewRWSem(wake)
			s.OnContended = onc
			e.Go("a", 0, 0, func(th *Thread) { s.RLock(th, 0); th.Charge(100); s.RUnlock(th, 0) })
			e.Go("b", 1, 10, func(th *Thread) { s.Lock(th, 0); s.Unlock(th, 0) })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			var kind string
			var waitStart, blocked, end uint64
			fired := 0
			tc.run(e, func(th *Thread, k string, ws, b uint64) {
				fired++
				kind, waitStart, blocked, end = k, ws, b, th.Now()
			})
			e.Run()
			if fired != 1 {
				t.Fatalf("OnContended fired %d times, want 1", fired)
			}
			if kind != tc.name {
				t.Errorf("kind = %q, want %q", kind, tc.name)
			}
			// Identical shape across flavours: the contender arrived at
			// t=10 and was handed the lock at t=100; the only flavour
			// difference is the wake cost charged after the park gap.
			if waitStart != 10 {
				t.Errorf("waitStart = %d, want 10", waitStart)
			}
			if end != 100+tc.wakeCost {
				t.Errorf("callback fired at t=%d, want %d", end, 100+tc.wakeCost)
			}
			if want := (end - waitStart) - tc.wakeCost; blocked != want {
				t.Errorf("blocked = %d, want %d ((now-waitStart)-wakeCharged)", blocked, want)
			}
			if blocked != 90 {
				t.Errorf("blocked = %d, want 90 for every flavour", blocked)
			}
		})
	}
}

// TestWaitQueueDepth samples queue depth from a zero-cost observer while
// three threads pile onto a mutex, checking the gauge reads the parked
// count without perturbing the run.
func TestWaitQueueDepth(t *testing.T) {
	e := New()
	m := NewMutex(0)
	var depths []int
	e.Go("holder", 0, 0, func(th *Thread) {
		m.Lock(th, 0)
		th.Charge(100)
		th.Yield() // let the t=10 arrivals park before sampling
		depths = append(depths, m.WaitQueueDepth())
		m.Unlock(th, 0)
	})
	for i := 0; i < 2; i++ {
		core := i + 1
		e.Go("w", core, 10, func(th *Thread) { m.Lock(th, 0); m.Unlock(th, 0) })
	}
	e.Run()
	if len(depths) != 1 || depths[0] != 2 {
		t.Fatalf("sampled depths = %v, want [2]", depths)
	}
	if m.WaitQueueDepth() != 0 {
		t.Fatalf("final depth = %d, want 0", m.WaitQueueDepth())
	}
}

// TestRWSemReaderStats checks the reader-side stats and the "read"
// contention callback: a writer holds the sem for 100 cycles while a
// reader arrives at t=10 and must wait for the handoff.
func TestRWSemReaderStats(t *testing.T) {
	e := New()
	s := NewRWSem(0)
	var kinds []string
	s.OnContended = func(th *Thread, kind string, waitStart, blocked uint64) {
		kinds = append(kinds, kind)
	}
	e.Go("w", 0, 0, func(th *Thread) {
		s.Lock(th, 0)
		th.Charge(100)
		s.Unlock(th, 0)
	})
	e.Go("r", 1, 10, func(th *Thread) {
		s.RLock(th, 0)
		th.Charge(20)
		s.RUnlock(th, 0)
	})
	e.Run()
	if s.ReaderStats.Acquisitions != 1 || s.ReaderStats.Contended != 1 {
		t.Fatalf("reader stats = %+v", s.ReaderStats)
	}
	if s.ReaderStats.WaitCycles != 90 {
		t.Fatalf("reader WaitCycles = %d, want 90", s.ReaderStats.WaitCycles)
	}
	if len(kinds) != 1 || kinds[0] != "read" {
		t.Fatalf("contention kinds = %v, want [read]", kinds)
	}
}
