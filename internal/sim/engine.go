// Package sim is a deterministic discrete-event simulation engine for
// virtual-time multicore execution.
//
// Every simulated hardware thread is a goroutine, but exactly one runs at a
// time: threads cooperatively hand a token to the runnable thread with the
// smallest virtual clock. Pure-local work just advances the local clock
// (Charge); only operations that touch shared state (locks, IPIs, wakeups)
// are synchronization points. Because the scheduler always resumes the
// minimum-clock runnable thread, shared-state events are processed in
// virtual-time order, which makes lock-contention behaviour — the central
// quantity in the DaxVM paper's scalability experiments — emerge from the
// model rather than from a formula, while remaining fully deterministic.
//
// The ready queue and the observability emission policy live behind the
// Scheduler interface (sched.go): New builds the sequential reference
// scheduler, NewSharded the sharded epoch scheduler that offloads
// charge-sink and span bookkeeping to host worker goroutines (shard.go)
// while dispatching the model in exactly the same (wakeAt, seq) order.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine owns the virtual-time scheduler.
type Engine struct {
	sched    Scheduler
	seq      uint64
	live     int // non-daemon threads still running
	threads  []*Thread
	done     chan struct{}
	stopping bool
	maxClock uint64
	panicVal any

	// charged accumulates every cycle booked through Charge/ChargeAs/
	// AddRemote on any thread. Idle and lock-wait time (wakeAt clamping in
	// dispatch) is excluded: it is scheduling, not work.
	charged uint64
	// events counts scheduling pushes plus charges — a deterministic
	// proxy for "how much the engine did", used as the numerator of the
	// host-side events/sec speed metric. It never feeds back into
	// simulated behaviour.
	events uint64
	// obsSeq stamps every deferred observability record with its global
	// emission order. Only the sharded scheduler advances it; the model
	// side is single-threaded, so no atomics are needed.
	obsSeq uint64
	// sink, when set, receives every charge with its attribution path
	// (see Thread.PushAttr) — the hook the cycle profiler attaches to.
	sink func(core int, path string, cycles uint64)
	// bulkSink, when set alongside sink, lets the sharded scheduler
	// replace per-record sink calls with pre-aggregated (path, core)
	// partials computed in parallel by the shard workers. The sequential
	// scheduler ignores it. The aggregate must be addition-commutative
	// (obs.CycleAccount.ChargeN is), so the final sink state is identical
	// to per-record application.
	bulkSink func(core int, path string, cycles, count uint64)
	// observer, when set, additionally receives every charge together
	// with the charging thread — the hook the span layer attaches to.
	// remote marks cycles booked onto this thread by another thread
	// (AddRemote): they belong to the target's timeline but not to any
	// operation the target itself is executing.
	observer func(t *Thread, path string, cycles uint64, remote bool)
	// applier, when set, receives deferred span records (ObsRecord) in
	// emission order on sharded engines. Sequential engines never defer,
	// so Thread.DeferObs reports false and callers take their inline path.
	applier func(rec ObsRecord)
	// joined interns parent+"."+label concatenations. Attribution paths
	// are drawn from a small fixed set, but frames open and charges label
	// millions of times per run; without interning the resulting garbage
	// forces GC cycles whose recycled spans make every subsequent
	// gigabyte-sized device allocation eagerly zeroed. Safe without a
	// lock: exactly one thread of an engine runs at a time.
	joined map[string]map[string]string
}

// stopToken is panicked into parked daemon threads at shutdown.
type stopToken struct{}

// New creates an empty engine with the sequential reference scheduler.
func New() *Engine {
	e := &Engine{done: make(chan struct{})}
	e.sched = &seqScheduler{e: e}
	return e
}

// NewSharded creates an engine whose cores are partitioned into shards
// (contiguous blocks), each owning its own ready heap and host worker
// goroutine for observability offload. Model dispatch order — and every
// artifact byte — is identical to New's sequential scheduler; see
// shard.go for what does and does not parallelize, and why.
func NewSharded(shards, cores int) *Engine {
	e := &Engine{done: make(chan struct{})}
	e.sched = newShardScheduler(e, shards, cores)
	return e
}

// Thread is one simulated hardware thread.
type Thread struct {
	e       *Engine
	Name    string
	Core    int
	clock   uint64
	wakeAt  uint64
	seq     uint64
	index   int // heap index, -1 when not queued
	resume  chan struct{}
	state   threadState
	daemon  bool
	started bool
	// obsReader marks sampler daemons that read observability state
	// (cycle-account snapshots): the scheduler forces any deferred
	// emissions to drain before dispatching one, so a sampled snapshot is
	// identical to the sequential scheduler's at the same virtual time.
	obsReader bool
	fn        func(*Thread)

	// attr is the attribution-frame stack: each element is the full
	// dotted path of one open frame ("app.syscall.write", ...). Charges
	// book against the innermost frame.
	attr []string

	// blockedOn is a human-readable tag for deadlock dumps.
	blockedOn string
}

// Unattributed is the path charges book against outside any frame.
const Unattributed = "unattributed"

type threadState uint8

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateExited
)

// Go registers a new simulated thread pinned to the given core, ready to
// run at virtual time start. It may be called before Run or from within a
// running thread (in which case start is clamped to the caller's clock by
// the caller passing t.Now()).
func (e *Engine) Go(name string, core int, start uint64, fn func(*Thread)) *Thread {
	t := &Thread{
		e:      e,
		Name:   name,
		Core:   core,
		clock:  start,
		wakeAt: start,
		resume: make(chan struct{}),
		index:  -1,
		fn:     fn,
	}
	e.threads = append(e.threads, t)
	e.live++
	e.push(t)
	return t
}

// GoDaemon registers a background thread that does not keep the simulation
// alive: when the last non-daemon thread exits, daemons are torn down.
func (e *Engine) GoDaemon(name string, core int, start uint64, fn func(*Thread)) *Thread {
	t := e.Go(name, core, start, fn)
	t.daemon = true
	e.live--
	return t
}

// GoSampler registers a daemon that calls fn at the virtual times chosen
// by next (given the current clock, return the next sample time; returns
// <= now are clamped one cycle forward so the daemon always makes
// progress). The sampler charges no cycles and must not touch simulated
// shared state, so its presence leaves every other thread's timeline
// bit-identical; it is torn down with the other daemons at shutdown.
// Samplers are observability readers: on a sharded engine, deferred
// charge/span records drain before each of their dispatches.
func (e *Engine) GoSampler(name string, core int, next func(now uint64) uint64, fn func(now uint64)) *Thread {
	t := e.GoDaemon(name, core, 0, func(t *Thread) {
		for {
			at := next(t.Now())
			if at <= t.Now() {
				at = t.Now() + 1
			}
			t.SleepUntil(at)
			fn(t.Now())
		}
	})
	t.obsReader = true
	return t
}

// Run executes the simulation until every non-daemon thread has exited.
// It returns the largest virtual clock reached by any thread.
func (e *Engine) Run() uint64 {
	if e.live == 0 {
		return 0
	}
	first := e.pop()
	if first == nil {
		panic("sim: no runnable thread")
	}
	first.state = stateRunning
	first.resumeOrStart()
	<-e.done
	// Apply every deferred observability record and join the host
	// workers before the caller reads sinks/observers or reuses them on
	// another engine.
	e.sched.stop()
	if e.panicVal != nil {
		panic(e.panicVal)
	}
	return e.maxClock
}

// main is the goroutine body wrapping a thread function.
func (t *Thread) main() {
	<-t.resume // wait for first dispatch
	completed := false
	defer func() {
		r := recover()
		if _, ok := r.(stopToken); ok {
			return // engine shutdown
		}
		if r == nil && completed {
			return
		}
		if r == nil {
			// The goroutine is unwinding via runtime.Goexit (e.g. a
			// t.Fatalf inside a thread function). Surface it instead of
			// hanging Run forever.
			r = "sim: thread " + t.Name + " exited abnormally (runtime.Goexit — t.Fatalf inside a sim thread?)"
		}
		// Propagate the failure to Run() and unwind the whole
		// simulation so tests can observe it.
		t.e.panicVal = r
		t.state = stateExited
		t.e.shutdown()
	}()
	t.fn(t)
	completed = true
	t.exit()
}

func (t *Thread) exit() {
	e := t.e
	t.state = stateExited
	if t.clock > e.maxClock {
		e.maxClock = t.clock
	}
	if !t.daemon {
		e.live--
	}
	if e.live == 0 {
		e.shutdown()
		return
	}
	e.dispatchFrom(t, false)
}

// shutdown tears down parked daemon goroutines and signals Run. It runs on
// the goroutine of the last exiting non-daemon thread. Parked threads are
// resumed; they observe stopping and unwind via a stopToken panic that
// their main() recovers, so no goroutines leak across engine instances.
func (e *Engine) shutdown() {
	if e.stopping {
		return
	}
	e.stopping = true
	for _, t := range e.threads {
		if t.state == stateExited || !t.started || t.state == stateRunning {
			continue
		}
		t.resume <- struct{}{}
	}
	close(e.done)
}

// Now returns the thread's virtual clock in cycles.
func (t *Thread) Now() uint64 { return t.clock }

// SetChargeSink routes every subsequent charge on any thread of this
// engine (with its attribution path and core) to fn. Pass nil to detach.
func (e *Engine) SetChargeSink(fn func(core int, path string, cycles uint64)) { e.sink = fn }

// SetChargeBulkSink registers an aggregate form of the charge sink: on a
// sharded engine, shard workers pre-aggregate deferred charges into
// (path, core) partials in parallel and fn receives each partial's
// summed cycles and call count instead of one sink call per charge. fn
// must be addition-commutative with the plain sink (CycleAccount.ChargeN
// is), so the final state is identical either way. Sequential engines
// ignore it. Set it together with SetChargeSink.
func (e *Engine) SetChargeBulkSink(fn func(core int, path string, cycles, count uint64)) {
	e.bulkSink = fn
}

// SetChargeObserver routes every subsequent charge, together with the
// thread it books onto, to fn (nil detaches). The span layer attaches
// here: unlike the sink it needs thread identity to resolve the open
// span stack. remote is true for AddRemote bookings, which advance the
// target thread's clock without being work that thread initiated.
func (e *Engine) SetChargeObserver(fn func(t *Thread, path string, cycles uint64, remote bool)) {
	e.observer = fn
}

// SetObsApplier registers the consumer of deferred span records on a
// sharded engine (span.Collector.Apply). Records reach fn in exact
// emission order, merged across shards by their sequence stamps. On a
// sequential engine fn is never called: Thread.DeferObs reports false
// and the span layer takes its inline path. A span layer that attaches
// a charge observer to a sharded engine must register its applier too:
// observer calls are deferred, so span-stack updates applied inline
// would otherwise interleave with them out of emission order.
func (e *Engine) SetObsApplier(fn func(rec ObsRecord)) { e.applier = fn }

// TotalCharged reports the cycles booked through Charge/ChargeAs/AddRemote
// across all threads so far. Because dispatch clamps idle threads forward
// without charging, this is exactly the engine's total simulated work —
// the quantity a cycle profile must reconcile against.
func (e *Engine) TotalCharged() uint64 { return e.charged }

// ReadyDepth reports how many threads sit in the run queue right now —
// the engine-level saturation gauge. A stopping engine reports 0: during
// shutdown, exited threads can linger in the heap and would otherwise
// read as phantom runnable work. Pure read for gauge sampling.
func (e *Engine) ReadyDepth() int {
	if e.stopping {
		return 0
	}
	return e.sched.readyDepth()
}

// Events reports the deterministic engine-event count (scheduling pushes
// plus charges) accumulated so far. Dividing it by host wall-clock seconds
// yields the simulator's events/sec speed — the denominator is host time,
// but this numerator is reproducible bit-for-bit.
func (e *Engine) Events() uint64 { return e.events }

// join returns the interned parent.label path.
func (e *Engine) join(parent, label string) string {
	m := e.joined[parent]
	if m == nil {
		if e.joined == nil {
			//lint:ignore hotalloc interning table: allocated once per engine
			e.joined = make(map[string]map[string]string)
		}
		//lint:ignore hotalloc interning table: allocated once per unique parent path
		m = make(map[string]string)
		e.joined[parent] = m
	}
	p, ok := m[label]
	if !ok {
		//lint:ignore hotalloc interning miss: concat runs once per unique (parent, label) pair
		p = parent + "." + label
		m[label] = p
	}
	return p
}

// PushAttr opens an attribution frame: label nests under the current path
// ("fault.wp" inside "app.access" books as "app.access.fault.wp"); with no
// open frame the label becomes a root.
func (t *Thread) PushAttr(label string) {
	if n := len(t.attr); n > 0 {
		label = t.e.join(t.attr[n-1], label)
	}
	//lint:ignore hotalloc attribution stack: reaches its steady nesting depth after warm-up
	t.attr = append(t.attr, label)
}

// PopAttr closes the innermost attribution frame.
func (t *Thread) PopAttr() { t.attr = t.attr[:len(t.attr)-1] }

// AttrPath returns the innermost frame's full dotted path.
func (t *Thread) AttrPath() string {
	if n := len(t.attr); n > 0 {
		return t.attr[n-1]
	}
	return Unattributed
}

// Charge advances the thread's clock by c cycles of local work, booked
// against the current attribution frame.
func (t *Thread) Charge(c uint64) {
	t.clock += c
	t.e.charged += c
	t.e.events++
	if t.e.sink != nil || t.e.observer != nil {
		t.e.sched.emitCharge(t, t.AttrPath(), c, false)
	}
}

// ChargeAs books c under a one-shot child of the current frame — the cheap
// way to label leaf costs (walk kinds, nt-stores) without stack churn. The
// path string is only built when a sink or observer is attached.
func (t *Thread) ChargeAs(label string, c uint64) {
	t.clock += c
	t.e.charged += c
	t.e.events++
	if t.e.sink != nil || t.e.observer != nil {
		p := label
		if n := len(t.attr); n > 0 {
			p = t.e.join(t.attr[n-1], label)
		}
		t.e.sched.emitCharge(t, p, c, false)
	}
}

// AddRemote is used by remote-charge mechanisms (IPIs): the running thread
// books c onto this (target) thread's timeline, attributed to path on the
// target's core rather than to the caller's frame.
func (t *Thread) AddRemote(path string, c uint64) {
	t.clock += c
	t.e.charged += c
	t.e.events++
	if t.e.sink != nil || t.e.observer != nil {
		t.e.sched.emitCharge(t, path, c, true)
	}
}

// DeferObs offers an observability record (a span Begin/End/Wait) to the
// scheduler for deferred in-order application. It reports false on a
// sequential engine — or when no applier is registered — in which case
// the caller must apply the record inline itself. Records must capture
// everything order-sensitive (notably t.Now()) at emission time.
func (t *Thread) DeferObs(rec ObsRecord) bool {
	return t.e.sched.deferRecord(rec)
}

// Yield is a synchronization point: the thread re-enters the ready queue at
// its current clock and resumes once it is the minimum-clock runnable
// thread. Shared state must only be examined/mutated right after a Yield
// (or while holding a sim lock) to preserve virtual-time ordering.
func (t *Thread) Yield() {
	e := t.e
	t.wakeAt = t.clock
	e.push(t)
	e.dispatchFrom(t, true)
}

// SleepUntil parks the thread until virtual time tm.
func (t *Thread) SleepUntil(tm uint64) {
	if tm < t.clock {
		tm = t.clock
	}
	t.wakeAt = tm
	t.e.push(t)
	t.e.dispatchFrom(t, true)
}

// Sleep parks the thread for d cycles.
func (t *Thread) Sleep(d uint64) { t.SleepUntil(t.clock + d) }

// Block parks the thread off the ready queue. Another thread must Wake it.
// tag describes what it is waiting for (deadlock dumps).
func (t *Thread) Block(tag string) {
	t.blockedOn = tag
	t.state = stateBlocked
	t.e.dispatchFrom(t, true)
	t.blockedOn = ""
}

// Wake makes a blocked thread runnable no earlier than virtual time at.
// Must be called by the running thread.
func (e *Engine) Wake(t *Thread, at uint64) {
	if t.state != stateBlocked {
		//lint:ignore hotalloc fatal path: the concat only runs when panicking
		panic("sim: Wake of non-blocked thread " + t.Name)
	}
	if at < t.clock {
		at = t.clock
	}
	t.wakeAt = at
	e.push(t)
}

// dispatchFrom hands the token to the next runnable thread. If wait is
// true the calling thread parks until re-dispatched; otherwise the caller
// is exiting.
func (e *Engine) dispatchFrom(t *Thread, wait bool) {
	next := e.pop()
	if next == nil {
		if wait || e.live > 0 {
			//lint:ignore hotalloc fatal path: the concat only runs when panicking
			panic("sim: deadlock\n" + e.dump())
		}
		// Exiting last thread with nothing runnable and live==0 was
		// handled in exit(); reaching here is a bug.
		panic("sim: scheduler underflow")
	}
	if next.obsReader {
		// An observability reader is about to run: force every deferred
		// charge/span record to land first so its snapshot reads are
		// byte-identical to the sequential scheduler's.
		e.sched.drain()
	}
	if next == t {
		// Fast path: we are still the minimum-clock thread.
		if t.clock < t.wakeAt {
			t.clock = t.wakeAt
		}
		t.state = stateRunning
		return
	}
	next.state = stateRunning
	if next.clock < next.wakeAt {
		next.clock = next.wakeAt
	}
	next.resumeOrStart()
	if !wait {
		return
	}
	<-t.resume
	if e.stopping {
		panic(stopToken{})
	}
	t.state = stateRunning
	if t.clock < t.wakeAt {
		t.clock = t.wakeAt
	}
}

// resumeOrStart resumes a parked thread, starting its goroutine lazily the
// first time it is dispatched.
func (t *Thread) resumeOrStart() {
	if t.state == stateExited {
		panic("sim: resuming exited thread")
	}
	if !t.started {
		t.started = true
		// The scheduler's own token handoff: exactly one goroutine runs at
		// a time, so this spawn cannot race.
		//lint:ignore determinism token-handoff scheduler owns this spawn
		go t.main()
	}
	t.resume <- struct{}{}
}

// dump formats the scheduler state for deadlock diagnostics: per thread,
// its state, its innermost attribution path (what it was doing when it
// parked) and — on a sharded engine — the shard it dispatches on.
func (e *Engine) dump() string {
	var b strings.Builder
	ts := append([]*Thread(nil), e.threads...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].seq < ts[j].seq })
	for _, t := range ts {
		st := "?"
		switch t.state {
		case stateReady:
			st = "ready"
		case stateRunning:
			st = "running"
		case stateBlocked:
			st = "blocked on " + t.blockedOn
		case stateExited:
			st = "exited"
		}
		fmt.Fprintf(&b, "  %-24s core=%-3d", t.Name, t.Core)
		if sh := e.sched.shardOf(t.Core); sh >= 0 {
			fmt.Fprintf(&b, " shard=%-2d", sh)
		}
		fmt.Fprintf(&b, " clock=%-12d attr=%-28s %s\n", t.clock, t.AttrPath(), st)
	}
	return b.String()
}

// MaxClock reports the largest clock observed (valid after Run).
func (e *Engine) MaxClock() uint64 { return e.maxClock }

// Threads returns a copy of the registered-thread list (for core->thread
// lookups). Copying keeps the scheduler's own slice unaliased: a caller
// appending to or reordering the returned slice cannot corrupt dispatch
// state. The *Thread values themselves are shared, as intended.
func (e *Engine) Threads() []*Thread {
	out := make([]*Thread, len(e.threads))
	copy(out, e.threads)
	return out
}

func (e *Engine) push(t *Thread) {
	e.seq++
	e.events++
	t.seq = e.seq
	t.state = stateReady
	e.sched.push(t)
}

func (e *Engine) pop() *Thread {
	return e.sched.pop()
}
