package sim

import (
	"sync/atomic"
	"testing"
)

func TestSingleThreadClock(t *testing.T) {
	e := New()
	var end uint64
	e.Go("t0", 0, 0, func(th *Thread) {
		th.Charge(100)
		th.Yield()
		th.Charge(50)
		end = th.Now()
	})
	max := e.Run()
	if end != 150 {
		t.Fatalf("clock = %d, want 150", end)
	}
	if max != 150 {
		t.Fatalf("max clock = %d, want 150", max)
	}
}

func TestMinClockOrdering(t *testing.T) {
	// Threads with staggered start times must interleave their yields in
	// virtual-time order.
	e := New()
	var order []string
	mk := func(name string, start uint64) {
		e.Go(name, 0, start, func(th *Thread) {
			for i := 0; i < 3; i++ {
				th.Yield()
				order = append(order, name)
				th.Charge(100)
			}
		})
	}
	mk("a", 0)   // yields at 0, 100, 200
	mk("b", 50)  // yields at 50, 150, 250
	mk("c", 250) // yields at 250, 350, 450
	e.Run()
	want := []string{"a", "b", "a", "b", "a", "b", "c", "c", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := New()
		m := NewMutex(0)
		var ends []uint64
		for i := 0; i < 8; i++ {
			e.Go("w", i, uint64(i*7), func(th *Thread) {
				for j := 0; j < 20; j++ {
					m.Lock(th, 10)
					th.Charge(33)
					m.Unlock(th, 5)
					th.Charge(17)
				}
				ends = append(ends, th.Now())
			})
		}
		e.Run()
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: run1=%v run2=%v", a, b)
		}
	}
}

func TestMutexSerializes(t *testing.T) {
	e := New()
	m := NewMutex(0)
	var inside int32
	var maxInside int32
	var holds [][2]uint64
	for i := 0; i < 4; i++ {
		e.Go("w", i, 0, func(th *Thread) {
			for j := 0; j < 5; j++ {
				m.Lock(th, 0)
				if v := atomic.AddInt32(&inside, 1); v > maxInside {
					maxInside = v
				}
				start := th.Now()
				th.Charge(1000)
				holds = append(holds, [2]uint64{start, th.Now()})
				atomic.AddInt32(&inside, -1)
				m.Unlock(th, 0)
			}
		})
	}
	e.Run()
	if maxInside != 1 {
		t.Fatalf("mutex admitted %d threads", maxInside)
	}
	// Hold intervals must not overlap in virtual time.
	for i := 1; i < len(holds); i++ {
		if holds[i][0] < holds[i-1][1] {
			t.Fatalf("overlapping holds: %v then %v", holds[i-1], holds[i])
		}
	}
	if m.Stats.Acquisitions != 20 {
		t.Fatalf("acquisitions = %d", m.Stats.Acquisitions)
	}
	if m.Stats.Contended == 0 {
		t.Fatal("expected contention")
	}
}

func TestMutexContentionStretchesTime(t *testing.T) {
	// 4 threads × 10 critical sections of 1000 cycles each must take at
	// least 40000 virtual cycles in total because the lock serializes.
	e := New()
	m := NewMutex(0)
	for i := 0; i < 4; i++ {
		e.Go("w", i, 0, func(th *Thread) {
			for j := 0; j < 10; j++ {
				m.Lock(th, 0)
				th.Charge(1000)
				m.Unlock(th, 0)
			}
		})
	}
	max := e.Run()
	if max < 40000 {
		t.Fatalf("max clock %d < serialized minimum 40000", max)
	}
}

func TestRWSemReadersShare(t *testing.T) {
	e := New()
	s := NewRWSem(0)
	for i := 0; i < 8; i++ {
		e.Go("r", i, 0, func(th *Thread) {
			s.RLock(th, 0)
			th.Charge(1000)
			s.RUnlock(th, 0)
		})
	}
	max := e.Run()
	// All readers run concurrently: finish near 1000, far below 8000.
	if max > 2000 {
		t.Fatalf("readers did not share: max clock %d", max)
	}
}

func TestRWSemWriterExcludes(t *testing.T) {
	e := New()
	s := NewRWSem(0)
	var events []string
	for i := 0; i < 2; i++ {
		e.Go("w", i, 0, func(th *Thread) {
			s.Lock(th, 0)
			events = append(events, "enter")
			th.Charge(500)
			events = append(events, "exit")
			s.Unlock(th, 0)
		})
	}
	e.Run()
	want := []string{"enter", "exit", "enter", "exit"}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v", events)
		}
	}
}

func TestRWSemWriterNotStarved(t *testing.T) {
	// A stream of readers must not starve a waiting writer: once the
	// writer queues, later readers wait behind it.
	e := New()
	s := NewRWSem(0)
	var writerDone uint64
	e.Go("r0", 0, 0, func(th *Thread) {
		s.RLock(th, 0)
		th.Charge(1000)
		s.RUnlock(th, 0)
	})
	e.Go("wr", 1, 100, func(th *Thread) {
		s.Lock(th, 0)
		th.Charge(100)
		s.Unlock(th, 0)
		writerDone = th.Now()
	})
	var lateReaderIn uint64
	e.Go("r1", 2, 200, func(th *Thread) {
		s.RLock(th, 0)
		lateReaderIn = th.Now()
		th.Charge(10)
		s.RUnlock(th, 0)
	})
	e.Run()
	if writerDone == 0 || lateReaderIn < writerDone-100 {
		t.Fatalf("late reader entered at %d before writer finished at %d", lateReaderIn, writerDone)
	}
}

func TestSleepOrdering(t *testing.T) {
	e := New()
	var order []string
	e.Go("sleeper", 0, 0, func(th *Thread) {
		th.Sleep(1000)
		order = append(order, "sleeper")
	})
	e.Go("worker", 1, 0, func(th *Thread) {
		th.Charge(500)
		th.Yield()
		order = append(order, "worker")
	})
	e.Run()
	if order[0] != "worker" || order[1] != "sleeper" {
		t.Fatalf("order = %v", order)
	}
}

func TestDaemonTeardown(t *testing.T) {
	e := New()
	var ticks int
	e.GoDaemon("d", 0, 0, func(th *Thread) {
		for {
			th.Sleep(100)
			ticks++
		}
	})
	e.Go("main", 1, 0, func(th *Thread) {
		th.Charge(550)
		th.Yield()
	})
	e.Run() // must terminate even though the daemon loops forever
	if ticks == 0 {
		t.Fatal("daemon never ran")
	}
	if ticks > 10 {
		t.Fatalf("daemon ran past main exit: %d ticks", ticks)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := New()
	ev := &Event{}
	e.Go("stuck", 0, 0, func(th *Thread) {
		ev.Wait(th, "never")
	})
	e.Run()
}

func TestEventBroadcast(t *testing.T) {
	e := New()
	ev := &Event{}
	var woke []uint64
	for i := 0; i < 3; i++ {
		e.Go("w", i, 0, func(th *Thread) {
			ev.Wait(th, "ev")
			woke = append(woke, th.Now())
		})
	}
	e.Go("sig", 3, 500, func(th *Thread) {
		th.Charge(100)
		th.Yield()
		ev.Broadcast(th)
	})
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke = %v", woke)
	}
	for _, w := range woke {
		if w < 600 {
			t.Fatalf("waiter woke at %d before broadcast at 600", w)
		}
	}
}

func TestSpinLockNoWakeCost(t *testing.T) {
	e := New()
	var sp SpinLock
	var second uint64
	e.Go("a", 0, 0, func(th *Thread) {
		sp.Lock(th, 0)
		th.Charge(1000)
		sp.Unlock(th, 0)
	})
	e.Go("b", 1, 10, func(th *Thread) {
		sp.Lock(th, 0)
		second = th.Now()
		sp.Unlock(th, 0)
	})
	e.Run()
	if second != 1000 {
		t.Fatalf("spinner acquired at %d, want exactly 1000 (release time)", second)
	}
}

func TestChargeSinkAttribution(t *testing.T) {
	e := New()
	type booked struct {
		core  int
		path  string
		cycle uint64
	}
	var got []booked
	e.SetChargeSink(func(core int, path string, cycles uint64) {
		got = append(got, booked{core, path, cycles})
	})
	e.Go("t0", 3, 0, func(th *Thread) {
		th.Charge(10) // empty stack -> unattributed
		th.PushAttr("app")
		th.Charge(20)
		th.PushAttr("syscall.read") // nests -> app.syscall.read
		th.ChargeAs("copy", 30)     // one-shot child
		th.PopAttr()
		th.AddRemote("shootdown.ipi_handler", 40) // absolute, ignores stack
		th.PopAttr()
	})
	e.Run()
	want := []booked{
		{3, Unattributed, 10},
		{3, "app", 20},
		{3, "app.syscall.read.copy", 30},
		{3, "shootdown.ipi_handler", 40},
	}
	if len(got) != len(want) {
		t.Fatalf("sink calls = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sink[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTotalChargedCountsEveryCharge(t *testing.T) {
	// TotalCharged must equal the sum of all Charge/ChargeAs/AddRemote
	// amounts — idle time (Sleep) and lock waits are excluded because
	// dispatch advances clocks without charging.
	e := New()
	e.Go("a", 0, 0, func(th *Thread) {
		th.PushAttr("app")
		th.Charge(100)
		th.Sleep(5000) // idle: not charged
		th.ChargeAs("tail", 11)
	})
	e.Go("b", 1, 0, func(th *Thread) {
		th.Charge(7)
		th.AddRemote("x.y", 3)
	})
	e.Run()
	if e.TotalCharged() != 121 {
		t.Fatalf("TotalCharged = %d, want 121", e.TotalCharged())
	}
}

func TestGoFromRunningThread(t *testing.T) {
	e := New()
	var childClock uint64
	e.Go("parent", 0, 0, func(th *Thread) {
		th.Charge(300)
		th.e.Go("child", 1, th.Now(), func(c *Thread) {
			childClock = c.Now()
		})
		th.Charge(100)
	})
	e.Run()
	if childClock != 300 {
		t.Fatalf("child started at %d, want 300", childClock)
	}
}
