package sim

// LockStats aggregates contention behaviour of a virtual lock.
type LockStats struct {
	Acquisitions uint64
	Contended    uint64 // acquisitions that had to wait
	WaitCycles   uint64 // total virtual cycles spent waiting
	HoldCycles   uint64 // total virtual cycles the lock was held
}

// ContentionFn observes one contended acquisition after the wait ends:
// kind names the lock flavour ("mutex", "spinlock", "read", "write"), and
// the wait spanned [waitStart, t.Now()). blocked is the pure uncharged
// gap the thread spent parked — the wait window minus any wakeup cost
// charged on resume — which is what the span layer books as lock-wait
// time. Wired by the kernel to the observability tracer and span
// collector; nil costs one branch.
//
// Contract (holds for every lock flavour — Mutex, SpinLock, and both
// RWSem modes — and is asserted by TestContentionCallbackShape):
//
//	waitStart < t.Now()
//	blocked   = (t.Now() - waitStart) - wakeCyclesCharged
//
// where wakeCyclesCharged is the lock's wakeup cost (0 for SpinLock,
// which resumes at the release time with nothing charged). blocked is
// computed BEFORE the wakeup charge lands so callbacks never have to
// reverse-engineer it from the clock.
type ContentionFn func(t *Thread, kind string, waitStart, blocked uint64)

// Mutex is a sleeping virtual-time mutex (FIFO). Waiters block and pay a
// scheduler wakeup cost when resumed, mirroring a kernel sleeping lock.
type Mutex struct {
	owner      *Thread
	waiters    []*Thread
	acquiredAt uint64
	wakeCost   uint64
	Stats      LockStats

	// OnContended, when set, observes each contended acquisition.
	OnContended ContentionFn
}

// NewMutex creates a sleeping mutex whose waiters pay wakeCost cycles on
// wakeup (use cost.SchedWakeup for kernel sleeping locks, 0 for pure
// hand-off).
func NewMutex(wakeCost uint64) *Mutex { return &Mutex{wakeCost: wakeCost} }

// Lock acquires the mutex, charging acqCost for the uncontended path.
func (m *Mutex) Lock(t *Thread, acqCost uint64) {
	t.Yield() // synchronization point: lock decisions happen in time order
	t.Charge(acqCost)
	m.Stats.Acquisitions++
	if m.owner == nil {
		m.owner = t
		m.acquiredAt = t.Now()
		return
	}
	m.Stats.Contended++
	start := t.Now()
	//lint:ignore hotalloc contention queue: bounded by thread count, steady after first growth
	m.waiters = append(m.waiters, t)
	t.Block("mutex")
	// Ownership was transferred to us by Unlock.
	blocked := t.Now() - start
	t.Charge(m.wakeCost)
	m.Stats.WaitCycles += t.Now() - start
	m.acquiredAt = t.Now()
	if m.OnContended != nil {
		m.OnContended(t, "mutex", start, blocked)
	}
}

// WaitQueueDepth reports how many threads are currently parked waiting
// for the mutex. Pure read for gauge sampling: charges nothing and never
// perturbs the simulation.
func (m *Mutex) WaitQueueDepth() int { return len(m.waiters) }

// Unlock releases the mutex, charging relCost, and hands ownership to the
// first waiter if any.
func (m *Mutex) Unlock(t *Thread, relCost uint64) {
	t.Yield() // synchronization point: releases are ordered in virtual time too
	if m.owner != t {
		panic("sim: Mutex.Unlock by non-owner")
	}
	t.Charge(relCost)
	m.Stats.HoldCycles += t.Now() - m.acquiredAt
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	w := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.owner = w
	t.e.Wake(w, t.Now())
}

// SpinLock is a virtual-time spinlock: waiters burn cycles until the
// holder releases (their clock advances to the release time with no
// scheduler wakeup cost).
type SpinLock struct {
	owner      *Thread
	waiters    []*Thread
	acquiredAt uint64
	Stats      LockStats

	// OnContended, when set, observes each contended acquisition.
	OnContended ContentionFn
}

// Lock acquires the spinlock, charging acqCost for the uncontended path.
func (s *SpinLock) Lock(t *Thread, acqCost uint64) {
	t.Yield()
	t.Charge(acqCost)
	s.Stats.Acquisitions++
	if s.owner == nil {
		s.owner = t
		s.acquiredAt = t.Now()
		return
	}
	s.Stats.Contended++
	start := t.Now()
	//lint:ignore hotalloc contention queue: bounded by thread count, steady after first growth
	s.waiters = append(s.waiters, t)
	t.Block("spinlock")
	// No wakeup cost for a spinner, so the blocked gap is the whole wait
	// window — same (waitStart, blocked) shape as Mutex/RWSem.
	blocked := t.Now() - start
	s.Stats.WaitCycles += t.Now() - start
	s.acquiredAt = t.Now()
	if s.OnContended != nil {
		s.OnContended(t, "spinlock", start, blocked)
	}
}

// WaitQueueDepth reports how many threads are currently spinning on the
// lock. Pure read for gauge sampling.
func (s *SpinLock) WaitQueueDepth() int { return len(s.waiters) }

// Unlock releases the spinlock and hands it to the first spinner.
func (s *SpinLock) Unlock(t *Thread, relCost uint64) {
	t.Yield() // synchronization point: releases are ordered in virtual time too
	if s.owner != t {
		panic("sim: SpinLock.Unlock by non-owner")
	}
	t.Charge(relCost)
	s.Stats.HoldCycles += t.Now() - s.acquiredAt
	if len(s.waiters) == 0 {
		s.owner = nil
		return
	}
	w := s.waiters[0]
	copy(s.waiters, s.waiters[1:])
	s.waiters = s.waiters[:len(s.waiters)-1]
	s.owner = w
	t.e.Wake(w, t.Now())
}

// RWSem models Linux's rw_semaphore (mmap_sem): readers share, writers are
// exclusive, and — like the kernel's handoff policy — new readers queue
// behind a waiting writer so writers do not starve. Consecutive queued
// readers are woken as a batch.
type RWSem struct {
	readers    int
	writer     *Thread
	queue      []semWaiter
	wakeCost   uint64
	acquiredAt uint64 // time the current exclusive/first-shared stint began

	Stats       LockStats
	ReaderStats LockStats

	// OnContended, when set, observes each contended acquisition
	// (kind "read" or "write").
	OnContended ContentionFn
}

type semWaiter struct {
	t     *Thread
	write bool
}

// NewRWSem creates a reader/writer semaphore; waiters pay wakeCost on
// wakeup.
func NewRWSem(wakeCost uint64) *RWSem { return &RWSem{wakeCost: wakeCost} }

// hasWaitingWriter reports whether any queued waiter wants exclusivity.
func (s *RWSem) hasWaitingWriter() bool {
	for _, w := range s.queue {
		if w.write {
			return true
		}
	}
	return false
}

// WaitQueueDepth reports how many threads (readers and writers combined)
// are currently queued on the semaphore. Pure read for gauge sampling.
func (s *RWSem) WaitQueueDepth() int { return len(s.queue) }

// RLock acquires the semaphore in shared mode.
func (s *RWSem) RLock(t *Thread, acqCost uint64) {
	t.Yield()
	t.Charge(acqCost)
	s.ReaderStats.Acquisitions++
	if s.writer == nil && !s.hasWaitingWriter() {
		if s.readers == 0 {
			s.acquiredAt = t.Now() // a shared stint begins
		}
		s.readers++
		return
	}
	s.ReaderStats.Contended++
	start := t.Now()
	//lint:ignore hotalloc contention queue: bounded by thread count, steady after first growth
	s.queue = append(s.queue, semWaiter{t, false})
	t.Block("rwsem-read")
	blocked := t.Now() - start
	t.Charge(s.wakeCost)
	s.ReaderStats.WaitCycles += t.Now() - start
	if s.OnContended != nil {
		s.OnContended(t, "read", start, blocked)
	}
}

// RUnlock releases shared mode.
func (s *RWSem) RUnlock(t *Thread, relCost uint64) {
	t.Yield() // synchronization point: releases are ordered in virtual time too
	if s.readers <= 0 {
		panic("sim: RUnlock without readers")
	}
	t.Charge(relCost)
	s.readers--
	if s.readers == 0 {
		// The shared stint ends: book its hold time against the reader
		// side (writer stints book in Unlock), so HoldCycles across both
		// sides is the total time the sem was held — the utilization
		// numerator the bottleneck analyzer divides by wall cycles.
		s.ReaderStats.HoldCycles += t.Now() - s.acquiredAt
		s.wakeNext(t)
	}
}

// Lock acquires the semaphore exclusively.
func (s *RWSem) Lock(t *Thread, acqCost uint64) {
	t.Yield()
	t.Charge(acqCost)
	s.Stats.Acquisitions++
	if s.writer == nil && s.readers == 0 && len(s.queue) == 0 {
		s.writer = t
		s.acquiredAt = t.Now()
		return
	}
	s.Stats.Contended++
	start := t.Now()
	s.queue = append(s.queue, semWaiter{t, true})
	t.Block("rwsem-write")
	blocked := t.Now() - start
	t.Charge(s.wakeCost)
	s.Stats.WaitCycles += t.Now() - start
	s.acquiredAt = t.Now()
	if s.OnContended != nil {
		s.OnContended(t, "write", start, blocked)
	}
}

// Unlock releases exclusive mode.
func (s *RWSem) Unlock(t *Thread, relCost uint64) {
	t.Yield() // synchronization point: releases are ordered in virtual time too
	if s.writer != t {
		panic("sim: RWSem.Unlock by non-writer")
	}
	t.Charge(relCost)
	s.Stats.HoldCycles += t.Now() - s.acquiredAt
	s.writer = nil
	s.wakeNext(t)
}

// wakeNext hands the semaphore to the head of the queue: either one writer
// or a batch of consecutive readers.
func (s *RWSem) wakeNext(t *Thread) {
	if len(s.queue) == 0 {
		return
	}
	if s.queue[0].write {
		w := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.writer = w.t
		t.e.Wake(w.t, t.Now())
		return
	}
	// Wake the prefix of readers. Wake only pushes to the run queue —
	// it cannot reenter this semaphore — so waking straight out of the
	// queue before compacting it is safe and saves a batch copy.
	n := 0
	for n < len(s.queue) && !s.queue[n].write {
		n++
	}
	s.readers += n
	s.acquiredAt = t.Now() // the woken batch's shared stint begins at handoff
	for i := 0; i < n; i++ {
		t.e.Wake(s.queue[i].t, t.Now())
	}
	copy(s.queue, s.queue[n:])
	s.queue = s.queue[:len(s.queue)-n]
}

// Event is a simple condition: threads Wait until someone Broadcasts.
type Event struct {
	waiters []*Thread
}

// Wait parks the thread until the next Broadcast.
func (ev *Event) Wait(t *Thread, tag string) {
	t.Yield() // synchronization point
	ev.waiters = append(ev.waiters, t)
	t.Block(tag)
}

// Broadcast wakes every waiter at the caller's clock.
func (ev *Event) Broadcast(t *Thread) {
	t.Yield() // synchronization point: releases are ordered in virtual time too
	ws := ev.waiters
	ev.waiters = nil
	for _, w := range ws {
		t.e.Wake(w, t.Now())
	}
}

// Contention returns the fraction of acquisitions that had to wait.
func (s *LockStats) Contention() float64 {
	if s.Acquisitions == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Acquisitions)
}
