package agefs

import (
	"testing"

	"daxvm/internal/fs/ext4"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

func TestAgeFragmentsImage(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 512 << 20})
	f := ext4.Mkfs(ext4.Config{Dev: dev, JournalBytes: 8 << 20})

	var rep Report
	e := sim.New()
	e.Go("ager", 0, 0, func(th *sim.Thread) {
		var err error
		rep, err = Age(th, f, DefaultConfig())
		if err != nil {
			t.Errorf("Age: %v", err)
		}
	})
	e.Run()

	if rep.Utilization < 0.6 || rep.Utilization > 0.8 {
		t.Fatalf("utilization = %.2f, want ~0.70", rep.Utilization)
	}
	if rep.FreeExtents < 50 {
		t.Fatalf("free extents = %d; image not fragmented", rep.FreeExtents)
	}
	if rep.FilesLive == 0 {
		t.Fatal("no live files after aging")
	}

	// A large allocation on the aged image must span many extents —
	// the property that kills huge-page coverage in the paper.
	e2 := sim.New()
	e2.Go("check", 0, 0, func(th *sim.Thread) {
		in, err := f.Create(th, "bench/big")
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		if err := f.Fallocate(th, in, 0, 32<<20); err != nil {
			t.Errorf("Fallocate: %v", err)
			return
		}
		if exts := f.Extents(in); len(exts) < 8 {
			t.Errorf("aged image produced only %d extents for 32 MiB", len(exts))
		}
	})
	e2.Run()
}

func TestAgeDeterministic(t *testing.T) {
	mk := func() Report {
		dev := pmem.New(pmem.Config{Size: 256 << 20})
		f := ext4.Mkfs(ext4.Config{Dev: dev, JournalBytes: 8 << 20})
		var rep Report
		e := sim.New()
		e.Go("ager", 0, 0, func(th *sim.Thread) { rep, _ = Age(th, f, DefaultConfig()) })
		e.Run()
		return rep
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("aging not deterministic: %+v vs %+v", a, b)
	}
}

func TestSampleSizeDistribution(t *testing.T) {
	// The Agrawal profile is dominated by small files: the median sample
	// must be <= 32 KiB and the tail must produce some >1 MiB files.
	rng := newRng()
	small, big := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		s := sampleSize(rng)
		if s <= 32<<10 {
			small++
		}
		if s >= 1<<20 {
			big++
		}
	}
	if small < n/2 {
		t.Fatalf("only %d/%d samples <= 32 KiB", small, n)
	}
	if big == 0 {
		t.Fatal("no large-file tail")
	}
}
