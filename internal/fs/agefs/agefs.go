// Package agefs ages a simulated file-system image the way the Geriatrix
// tool does for the DaxVM paper: it replays create/delete churn with the
// Agrawal file-size profile (FAST '07 metadata study) until the requested
// utilization, leaving the free-space extent list fragmented. Fragmented
// free space is what breaks huge-page coverage for large files — the
// pivotal variable in Figs. 1, 4, 5 and 9c.
package agefs

import (
	"fmt"
	"math/rand"

	"daxvm/internal/fs/vfs"
	"daxvm/internal/sim"
)

// FS is the file-system surface the ager needs.
type FS interface {
	vfs.FS
	// SetAgingMode skips data writes/zeroing during churn (layout changes
	// stay real).
	SetAgingMode(on bool)
}

// Config controls aging.
type Config struct {
	// Utilization is the target fraction of device space in use (the
	// paper uses 70%).
	Utilization float64
	// ChurnRounds is how many delete/recreate rounds run after the fill
	// phase; more rounds fragment more (the paper applies 100 TB of
	// writes; rounds are our scaled-down knob).
	ChurnRounds int
	// ChurnFraction is the fraction of files replaced per round.
	ChurnFraction float64
	// Seed fixes the churn sequence.
	Seed int64
}

// DefaultConfig mirrors the paper's recipe at simulator scale.
func DefaultConfig() Config {
	return Config{Utilization: 0.70, ChurnRounds: 6, ChurnFraction: 0.35, Seed: 2022}
}

// agrawalBuckets approximates the Agrawal file-size distribution: heavily
// skewed to small files with a long tail. Sizes in bytes with relative
// weights.
var agrawalBuckets = []struct {
	size   uint64
	weight int
}{
	{1 << 10, 8},
	{2 << 10, 12},
	{4 << 10, 18},
	{8 << 10, 16},
	{16 << 10, 13},
	{32 << 10, 10},
	{64 << 10, 8},
	{128 << 10, 5},
	{256 << 10, 4},
	{512 << 10, 2},
	{1 << 20, 2},
	{4 << 20, 1},
	{16 << 20, 1},
}

var totalWeight = func() int {
	w := 0
	for _, b := range agrawalBuckets {
		w += b.weight
	}
	return w
}()

// sampleSize draws a file size from the profile.
func sampleSize(rng *rand.Rand) uint64 {
	r := rng.Intn(totalWeight)
	for _, b := range agrawalBuckets {
		r -= b.weight
		if r < 0 {
			// Jitter within the bucket so sizes are not all powers of 2.
			return b.size + uint64(rng.Int63n(int64(b.size)))
		}
	}
	return 4 << 10
}

// Report summarizes the aged image.
type Report struct {
	FilesLive   int
	FreeExtents int
	Utilization float64
}

// Age churns the image. It must run on a setup sim thread; callers should
// reset device timing afterwards (the kernel package does this).
func Age(t *sim.Thread, fs FS, cfg Config) (Report, error) {
	fs.SetAgingMode(true)
	defer fs.SetAgingMode(false)
	rng := rand.New(rand.NewSource(cfg.Seed))

	total := fs.FreeSpace() // empty image: total usable bytes
	targetUsed := uint64(float64(total) * cfg.Utilization)

	type liveFile struct {
		path string
		in   *vfs.Inode
		size uint64
	}
	var files []liveFile
	n := 0

	createOne := func() error {
		size := sampleSize(rng)
		path := fmt.Sprintf("age/%08d", n)
		n++
		in, err := fs.Create(t, path)
		if err != nil {
			return err
		}
		if err := fs.Fallocate(t, in, 0, size); err != nil {
			// Image full; shrink ambition.
			fs.Unlink(t, path)
			in.Deleted = true
			fs.PutInode(t, in)
			return err
		}
		files = append(files, liveFile{path, in, size})
		return nil
	}
	deleteAt := func(i int) {
		lf := files[i]
		if err := fs.Unlink(t, lf.path); err == nil {
			lf.in.Deleted = true
			fs.PutInode(t, lf.in)
		}
		files[i] = files[len(files)-1]
		files = files[:len(files)-1]
	}
	used := func() uint64 { return total - fs.FreeSpace() }

	// Each round overfills the image well beyond the target and then
	// deletes random victims back down to it. Overfilling consumes any
	// large contiguous tail; trimming leaves free space as scattered
	// holes the size of profile files — which is what decades of churn
	// do to a real image (Geriatrix's stable state).
	highWater := uint64(float64(total) * 0.95)
	for round := 0; round <= cfg.ChurnRounds; round++ {
		for used() < highWater {
			if err := createOne(); err != nil {
				break
			}
		}
		kill := int(float64(len(files)) * cfg.ChurnFraction)
		for i := 0; i < kill && len(files) > 0 && used() > targetUsed; i++ {
			deleteAt(rng.Intn(len(files)))
		}
	}
	// Final trim to the target utilization.
	for used() > targetUsed && len(files) > 0 {
		deleteAt(rng.Intn(len(files)))
	}
	return Report{
		FilesLive:   len(files),
		FreeExtents: fs.FreeExtentCount(),
		Utilization: float64(used()) / float64(total),
	}, nil
}

// newRng returns the profile-sampling RNG used by tests.
func newRng() *rand.Rand { return rand.New(rand.NewSource(7)) }
