package vfs

import (
	"daxvm/internal/cost"
	"daxvm/internal/sim"
)

// ICache is the VFS inode cache. Volatile DaxVM file tables live exactly
// as long as the cached inode: a cold open rebuilds them, eviction
// destroys them (paper §IV-A1, "Dynamic File Table Management").
type ICache struct {
	fs       FS
	capacity int
	inodes   map[Ino]*Inode
	lru      []Ino // approximate LRU: most-recent at the back
	hooks    *Hooks

	Stats ICacheStats
}

// ICacheStats counts cache behaviour.
type ICacheStats struct {
	Hits      uint64
	ColdLoads uint64
	Evictions uint64
}

// NewICache creates a cache over fs holding at most capacity inodes.
func NewICache(fs FS, capacity int, hooks *Hooks) *ICache {
	return &ICache{
		fs:       fs,
		capacity: capacity,
		inodes:   make(map[Ino]*Inode, capacity),
		hooks:    hooks,
	}
}

// Open resolves path and returns a referenced inode, loading it on a cold
// miss (which charges media access and triggers the OnLoad hook).
func (c *ICache) Open(t *sim.Thread, path string) (*Inode, error) {
	ino, err := c.fs.LookupPath(t, path)
	if err != nil {
		return nil, err
	}
	t.Charge(cost.InodeCacheLookup)
	if in, ok := c.inodes[ino]; ok {
		c.Stats.Hits++
		in.Refs++
		c.touch(ino)
		return in, nil
	}
	c.Stats.ColdLoads++
	in, err := c.fs.LoadInode(t, ino)
	if err != nil {
		return nil, err
	}
	c.insert(t, in)
	in.Refs++
	if c.hooks != nil && c.hooks.OnLoad != nil {
		c.hooks.OnLoad(t, in)
	}
	return in, nil
}

// Create makes a new file, caches it and returns it referenced.
func (c *ICache) Create(t *sim.Thread, path string) (*Inode, error) {
	in, err := c.fs.Create(t, path)
	if err != nil {
		return nil, err
	}
	c.insert(t, in)
	in.Refs++
	if c.hooks != nil && c.hooks.OnCreate != nil {
		c.hooks.OnCreate(t, in)
	}
	return in, nil
}

// Put drops a reference. Unreferenced inodes stay cached until evicted
// (or are destroyed immediately when deleted).
func (c *ICache) Put(t *sim.Thread, in *Inode) {
	if in.Refs <= 0 {
		panic("vfs: Put without reference")
	}
	in.Refs--
	if in.Refs == 0 && in.Deleted {
		c.drop(t, in)
		c.fs.PutInode(t, in)
		return
	}
	c.fs.PutInode(t, in)
}

// Get returns the cached inode without loading.
func (c *ICache) Get(ino Ino) (*Inode, bool) {
	in, ok := c.inodes[ino]
	return in, ok
}

// Len reports cached inode count.
func (c *ICache) Len() int { return len(c.inodes) }

func (c *ICache) insert(t *sim.Thread, in *Inode) {
	for len(c.inodes) >= c.capacity {
		if !c.evictOne(t) {
			break // everything referenced
		}
	}
	c.inodes[in.Ino] = in
	c.lru = append(c.lru, in.Ino)
}

func (c *ICache) touch(ino Ino) {
	// Cheap approximate LRU: append; duplicates resolved at eviction.
	c.lru = append(c.lru, ino)
	if len(c.lru) > 8*c.capacity {
		c.compactLRU()
	}
}

func (c *ICache) compactLRU() {
	seen := make(map[Ino]bool, len(c.inodes))
	out := make([]Ino, 0, len(c.inodes))
	for i := len(c.lru) - 1; i >= 0; i-- {
		ino := c.lru[i]
		if seen[ino] {
			continue
		}
		if _, ok := c.inodes[ino]; !ok {
			continue
		}
		seen[ino] = true
		out = append(out, ino)
	}
	// out is most-recent-first; reverse to match ring convention.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	c.lru = out
}

func (c *ICache) evictOne(t *sim.Thread) bool {
	c.compactLRU()
	for i, ino := range c.lru {
		in, ok := c.inodes[ino]
		if !ok {
			continue
		}
		if in.Refs > 0 {
			continue
		}
		c.lru = append(c.lru[:i:i], c.lru[i+1:]...)
		delete(c.inodes, ino)
		c.Stats.Evictions++
		if c.hooks != nil && c.hooks.OnEvict != nil {
			c.hooks.OnEvict(t, in)
		}
		return true
	}
	return false
}

func (c *ICache) drop(t *sim.Thread, in *Inode) {
	delete(c.inodes, in.Ino)
	if c.hooks != nil && c.hooks.OnEvict != nil {
		c.hooks.OnEvict(t, in)
	}
}
