// Package vfs defines the virtual-file-system layer of the simulated
// kernel: inodes, extents, the FS interface implemented by the ext4-DAX
// and NOVA models, and the inode cache whose lifetime bounds DaxVM's
// volatile file tables.
package vfs

import (
	"errors"

	"daxvm/internal/mem"
	"daxvm/internal/pmem"
	"daxvm/internal/radix"
	"daxvm/internal/sim"
)

// Ino is an inode number.
type Ino uint64

// Extent maps a run of file blocks to physical blocks (4 KiB units).
type Extent struct {
	File uint64 // first file block
	Phys uint64 // first physical block on the device
	Len  uint64 // length in blocks
}

// End returns one past the last file block.
func (e Extent) End() uint64 { return e.File + e.Len }

// Common errors.
var (
	ErrNotFound    = errors.New("vfs: no such file")
	ErrExists      = errors.New("vfs: file exists")
	ErrNoSpace     = errors.New("vfs: no space left on device")
	ErrBadOffset   = errors.New("vfs: offset beyond end of file")
	ErrStillOpen   = errors.New("vfs: inode has users")
	ErrUnsupported = errors.New("vfs: operation not supported")
)

// Inode is the in-memory (VFS) inode. FS implementations keep their
// private state in Priv; DaxVM keeps the file-table root in FileTable.
type Inode struct {
	Ino  Ino
	Path string
	Size uint64 // bytes

	// Priv is the owning file system's private per-inode state.
	Priv any

	// FileTable is DaxVM's per-file page-table state (*core.FileTable);
	// held here so the FS block hooks and the VFS eviction path can reach
	// it without an import cycle.
	FileTable any

	// DirtyPages is the page-cache radix tree tracking pages dirtied
	// through mappings (tagged TagDirty). DAX syncing walks it.
	DirtyPages radix.Tree[struct{}]

	// MetaDirty marks uncommitted metadata (extents added but journal
	// transaction not yet committed). A MAP_SYNC write fault must commit
	// it synchronously — the Fig. 9c effect.
	MetaDirty bool
	// MetaDirtyBlocks approximates how many metadata blocks the pending
	// transaction carries (more fragmentation -> bigger commits).
	MetaDirtyBlocks uint64

	// Mappers is the address_space->i_mmap analogue: callbacks to force
	// unmapping when blocks are reclaimed (truncate/unlink vs deferred
	// unmap races). Keyed by an opaque owner.
	Mappers map[any]func(t *sim.Thread)

	// Refs counts open file descriptions + mappings; the icache may only
	// evict at zero.
	Refs int

	// Deleted marks an unlinked inode (freed on last put).
	Deleted bool
}

// FS is the interface both file-system models implement.
type FS interface {
	// Name identifies the model ("ext4-dax", "nova").
	Name() string
	// Device returns the backing PMem device.
	Device() *pmem.Device

	// Create makes an empty file.
	Create(t *sim.Thread, path string) (*Inode, error)
	// LookupPath resolves a path to an inode number (charged).
	LookupPath(t *sim.Thread, path string) (Ino, error)
	// LoadInode materializes the inode from media (cold open).
	LoadInode(t *sim.Thread, ino Ino) (*Inode, error)
	// Unlink removes the directory entry; blocks are freed when the last
	// reference drops (PutInode with Deleted set).
	Unlink(t *sim.Thread, path string) error

	// Append grows the file by writing data at the current end (block
	// allocation + data copy via nt-stores). Used by write(2) at EOF.
	Append(t *sim.Thread, ino *Inode, data []byte) error
	// WriteAt overwrites existing bytes (no allocation).
	WriteAt(t *sim.Thread, ino *Inode, off uint64, data []byte) error
	// ReadAt copies file bytes into buf, returning the count.
	ReadAt(t *sim.Thread, ino *Inode, off uint64, buf []byte) (uint64, error)
	// Fallocate ensures blocks exist for [off, off+n) without writing
	// data (zeroing per the FS's DAX security policy).
	Fallocate(t *sim.Thread, ino *Inode, off, n uint64) error
	// Truncate sets the file size, freeing blocks on shrink.
	Truncate(t *sim.Thread, ino *Inode, size uint64) error
	// Fsync commits metadata and (for mapped dirty pages) flushes data.
	Fsync(t *sim.Thread, ino *Inode)
	// SyncMetaIfDirty synchronously commits pending metadata (the
	// MAP_SYNC fault path). Reports whether a commit happened.
	SyncMetaIfDirty(t *sim.Thread, ino *Inode) bool

	// Extents returns the extent list (ascending file block).
	Extents(ino *Inode) []Extent
	// BlockOf resolves one file block to a physical block, charging the
	// extent-tree lookup (the per-fault FS cost DaxVM avoids).
	BlockOf(t *sim.Thread, ino *Inode, fileBlock uint64) (uint64, bool)

	// FreeSpace reports free bytes.
	FreeSpace() uint64
	// FreeExtentCount reports allocator fragmentation.
	FreeExtentCount() int

	// PutInode drops a reference taken by LoadInode/Create; when the
	// inode is Deleted and unreferenced its blocks are freed.
	PutInode(t *sim.Thread, ino *Inode)
}

// Hooks let DaxVM extend a file system without the FS importing it.
type Hooks struct {
	// OnAlloc runs after blocks are allocated to an inode (file-table
	// population point).
	OnAlloc func(t *sim.Thread, ino *Inode, ext []Extent)
	// OnFree intercepts freed blocks. Returning true takes ownership
	// (the pre-zero daemon will zero and release them later); false lets
	// the FS return them to its allocator immediately.
	OnFree func(t *sim.Thread, ext []Extent) bool
	// OnTruncate runs before blocks are reclaimed so deferred unmappings
	// can be forced synchronously.
	OnTruncate func(t *sim.Thread, ino *Inode)
	// OnShrink runs after a truncate trimmed the extent map (file-table
	// coverage must shrink to keepBlocks).
	OnShrink func(t *sim.Thread, ino *Inode, keepBlocks uint64)
	// OnEvict runs when the icache drops an inode (volatile file tables
	// die here).
	OnEvict func(t *sim.Thread, ino *Inode)
	// OnCreate/OnLoad run when an inode becomes live (file-table
	// construction or recovery point).
	OnCreate func(t *sim.Thread, ino *Inode)
	OnLoad   func(t *sim.Thread, ino *Inode)
}

// ForceUnmapAll invokes every registered mapper callback (truncate race
// path).
func ForceUnmapAll(t *sim.Thread, ino *Inode) {
	for _, fn := range ino.Mappers {
		fn(t)
	}
}

// BytesToBlocks converts a byte count to 4 KiB blocks, rounding up.
func BytesToBlocks(n uint64) uint64 { return (n + mem.PageSize - 1) / mem.PageSize }
