package vfs_test

import (
	"fmt"
	"testing"

	"daxvm/internal/fs/ext4"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

func newCache(capacity int, hooks *vfs.Hooks) (*vfs.ICache, *ext4.FS) {
	f := ext4.Mkfs(ext4.Config{Dev: pmem.New(pmem.Config{Size: 128 << 20}), JournalBytes: 8 << 20})
	return vfs.NewICache(f, capacity, hooks), f
}

func run(fn func(t *sim.Thread)) {
	e := sim.New()
	e.Go("t", 0, 0, fn)
	e.Run()
}

func TestOpenHitAndColdLoad(t *testing.T) {
	c, _ := newCache(16, nil)
	run(func(th *sim.Thread) {
		in, err := c.Create(th, "a")
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		c.Put(th, in)
		in2, err := c.Open(th, "a")
		if err != nil || in2.Ino != in.Ino {
			t.Errorf("Open: %v", err)
			return
		}
		if c.Stats.Hits != 1 {
			t.Errorf("hits = %d", c.Stats.Hits)
		}
		c.Put(th, in2)
		if _, err := c.Open(th, "missing"); err != vfs.ErrNotFound {
			t.Errorf("missing open: %v", err)
		}
	})
}

func TestEvictionLRUAndHook(t *testing.T) {
	var evicted []vfs.Ino
	hooks := &vfs.Hooks{OnEvict: func(_ *sim.Thread, in *vfs.Inode) { evicted = append(evicted, in.Ino) }}
	c, _ := newCache(8, hooks)
	run(func(th *sim.Thread) {
		var first *vfs.Inode
		for i := 0; i < 20; i++ {
			in, err := c.Create(th, fmt.Sprintf("f%02d", i))
			if err != nil {
				t.Errorf("Create: %v", err)
				return
			}
			if i == 0 {
				first = in
			}
			c.Put(th, in)
		}
		if c.Len() > 8 {
			t.Errorf("cache len %d over capacity", c.Len())
		}
		if len(evicted) == 0 {
			t.Error("no evictions")
		}
		// The first file was least recently used: it must be gone.
		if _, ok := c.Get(first.Ino); ok {
			t.Error("LRU victim still cached")
		}
		// Cold open reloads it.
		in, err := c.Open(th, "f00")
		if err != nil {
			t.Errorf("cold open: %v", err)
			return
		}
		if c.Stats.ColdLoads == 0 {
			t.Error("no cold load recorded")
		}
		c.Put(th, in)
	})
}

func TestReferencedInodesNotEvicted(t *testing.T) {
	c, _ := newCache(4, nil)
	run(func(th *sim.Thread) {
		pinned, _ := c.Create(th, "pinned") // ref held
		for i := 0; i < 12; i++ {
			in, _ := c.Create(th, fmt.Sprintf("x%d", i))
			c.Put(th, in)
		}
		if _, ok := c.Get(pinned.Ino); !ok {
			t.Error("referenced inode evicted")
		}
		c.Put(th, pinned)
	})
}

func TestDeletedInodeDestroyedOnLastPut(t *testing.T) {
	destroyed := 0
	hooks := &vfs.Hooks{OnEvict: func(_ *sim.Thread, in *vfs.Inode) {
		if in.Deleted {
			destroyed++
		}
	}}
	c, f := newCache(8, hooks)
	run(func(th *sim.Thread) {
		in, _ := c.Create(th, "doomed")
		f.Append(th, in, make([]byte, 64<<10))
		free0 := f.FreeSpace()
		f.Unlink(th, "doomed")
		in.Deleted = true
		c.Put(th, in)
		if destroyed != 1 {
			t.Errorf("destroy hook ran %d times", destroyed)
		}
		if f.FreeSpace() <= free0 {
			t.Error("blocks not reclaimed on last put")
		}
		if _, ok := c.Get(in.Ino); ok {
			t.Error("deleted inode still cached")
		}
	})
}
