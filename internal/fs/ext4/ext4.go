// Package ext4 models ext4 with DAX (the paper's primary file system):
// extent-mapped inodes, a jbd2-style journal, and the DAX data paths —
// write(2) copies with non-temporal stores directly to media, and block
// allocation conservatively zeroes new blocks even on the system-call
// path (the behaviour DaxVM's asynchronous pre-zeroing removes).
package ext4

import (
	"fmt"
	"sort"

	"daxvm/internal/cost"
	"daxvm/internal/fs/alloc"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

// inode is the "on-media" ext4 inode.
type inode struct {
	ino     vfs.Ino
	size    uint64
	extents []vfs.Extent // sorted by File
	mu      *sim.Mutex   // i_rwsem (write side only is modeled)
	// allocatedBlocks caches the number of blocks the extents cover at
	// the tail (files grow densely at the end).
	allocatedBlocks uint64
}

// Config controls mkfs.
type Config struct {
	// Dev is the backing device.
	Dev *pmem.Device
	// JournalBytes reserves the log area (default 128 MiB).
	JournalBytes uint64
	// TrustZeroed lets the allocator's zeroed tracking skip redundant
	// zeroing — the DaxVM pre-zeroing extension. Baseline ext4-DAX is
	// conservative and zeroes unconditionally.
	TrustZeroed bool
	// Hooks are the DaxVM extension points.
	Hooks *vfs.Hooks
}

// FS is the ext4-DAX instance.
type FS struct {
	dev     *pmem.Device
	alloc   *alloc.Allocator
	journal *Journal
	hooks   *vfs.Hooks

	trustZeroed bool
	agingMode   bool // skip data work during image aging

	dir     map[string]vfs.Ino
	inodes  map[vfs.Ino]*inode
	nextIno vfs.Ino

	dirLock sim.SpinLock

	Stats FSStats
}

// FSStats counts data-path activity.
type FSStats struct {
	Creates      uint64
	Unlinks      uint64
	Appends      uint64
	ZeroedBlocks uint64
	SkippedZero  uint64
	MetaSyncs    uint64
}

// Mkfs formats the device.
func Mkfs(cfg Config) *FS {
	jb := cfg.JournalBytes
	if jb == 0 {
		jb = 128 << 20
	}
	if jb >= cfg.Dev.Size() {
		panic("ext4: journal larger than device")
	}
	firstDataBlock := vfs.BytesToBlocks(jb)
	totalBlocks := cfg.Dev.Size() / mem.PageSize
	f := &FS{
		dev:         cfg.Dev,
		alloc:       alloc.New(firstDataBlock, totalBlocks-firstDataBlock, true),
		journal:     NewJournal(cfg.Dev, 0, jb),
		hooks:       cfg.Hooks,
		trustZeroed: cfg.TrustZeroed,
		dir:         make(map[string]vfs.Ino),
		inodes:      make(map[vfs.Ino]*inode),
		nextIno:     2, // 1 is reserved, like the root inode
	}
	return f
}

// Name implements vfs.FS.
func (f *FS) Name() string { return "ext4-dax" }

// Device implements vfs.FS.
func (f *FS) Device() *pmem.Device { return f.dev }

// Journal exposes the journal (DaxVM couples file-table fences to it).
func (f *FS) Journal() *Journal { return f.journal }

// Allocator exposes the allocator (pre-zero daemon, aging tool).
func (f *FS) Allocator() *alloc.Allocator { return f.alloc }

// SetHooks installs (or replaces) the DaxVM extension hooks. DaxVM's
// manager needs the FS's allocator at construction, so hook installation
// is necessarily a second step.
func (f *FS) SetHooks(h *vfs.Hooks) { f.hooks = h }

// SetAgingMode toggles the fast-setup path used while aging the image:
// layout changes are real, data writes and zeroing are skipped (and the
// touched blocks are marked non-zeroed).
func (f *FS) SetAgingMode(on bool) { f.agingMode = on }

// SetTrustZeroed enables/disables the pre-zeroing extension.
func (f *FS) SetTrustZeroed(on bool) { f.trustZeroed = on }

// Create implements vfs.FS.
func (f *FS) Create(t *sim.Thread, path string) (*vfs.Inode, error) {
	f.dirLock.Lock(t, cost.SpinLockAcquire)
	if _, exists := f.dir[path]; exists {
		f.dirLock.Unlock(t, cost.SpinLockRelease)
		return nil, vfs.ErrExists
	}
	ino := f.nextIno
	f.nextIno++
	f.dir[path] = ino
	f.dirLock.Unlock(t, cost.SpinLockRelease)

	di := &inode{ino: ino, mu: sim.NewMutex(cost.SchedWakeup)}
	f.inodes[ino] = di
	f.Stats.Creates++
	t.ChargeAs("inode_update", cost.InodeUpdate)
	f.journal.Begin(t)
	f.journal.AddMeta(t, 1)
	return f.vfsInode(di, path), nil
}

func (f *FS) vfsInode(di *inode, path string) *vfs.Inode {
	return &vfs.Inode{
		Ino:     di.ino,
		Path:    path,
		Size:    di.size,
		Priv:    di,
		Mappers: make(map[any]func(*sim.Thread)),
	}
}

// LookupPath implements vfs.FS.
func (f *FS) LookupPath(t *sim.Thread, path string) (vfs.Ino, error) {
	comps := uint64(1)
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			comps++
		}
	}
	t.ChargeAs("path_lookup", cost.PathLookupPerCmp*comps)
	ino, ok := f.dir[path]
	if !ok {
		return 0, vfs.ErrNotFound
	}
	return ino, nil
}

// LoadInode implements vfs.FS: a cold open reads the inode and its extent
// tree from media.
func (f *FS) LoadInode(t *sim.Thread, ino vfs.Ino) (*vfs.Inode, error) {
	di, ok := f.inodes[ino]
	if !ok {
		return nil, vfs.ErrNotFound
	}
	// Inode block + one media access per 64 extents (340 fit a 4 KiB
	// extent-tree block; be conservative).
	t.ChargeAs("inode_load", cost.PMemLoadLatency+cost.PMemSeqLoadLat*uint64(1+len(di.extents)/64))
	path := ""
	return f.vfsInodeWithSize(di, path), nil
}

func (f *FS) vfsInodeWithSize(di *inode, path string) *vfs.Inode {
	in := f.vfsInode(di, path)
	in.Size = di.size
	return in
}

// Unlink implements vfs.FS.
func (f *FS) Unlink(t *sim.Thread, path string) error {
	f.dirLock.Lock(t, cost.SpinLockAcquire)
	ino, ok := f.dir[path]
	if !ok {
		f.dirLock.Unlock(t, cost.SpinLockRelease)
		return vfs.ErrNotFound
	}
	delete(f.dir, path)
	f.dirLock.Unlock(t, cost.SpinLockRelease)
	f.Stats.Unlinks++
	f.journal.Begin(t)
	f.journal.AddMeta(t, 1)
	t.ChargeAs("inode_update", cost.InodeUpdate)
	_ = ino
	return nil
}

// DropInode frees an unlinked inode's blocks (called by PutInode when the
// last reference is gone).
func (f *FS) dropBlocks(t *sim.Thread, di *inode) {
	if len(di.extents) == 0 {
		return
	}
	runs := make([]alloc.Run, len(di.extents))
	for i, e := range di.extents {
		runs[i] = alloc.Run{Start: e.Phys, Len: e.Len}
	}
	di.extents = nil
	di.allocatedBlocks = 0
	di.size = 0
	f.journal.Begin(t)
	f.journal.AddMeta(t, uint64(1+len(runs)/64))
	f.freeRuns(t, runs)
	delete(f.inodes, di.ino)
}

// freeRuns routes freed blocks through the OnFree hook (pre-zero daemon)
// or straight back to the allocator.
func (f *FS) freeRuns(t *sim.Thread, runs []alloc.Run) {
	if f.hooks != nil && f.hooks.OnFree != nil {
		ext := make([]vfs.Extent, len(runs))
		for i, r := range runs {
			ext[i] = vfs.Extent{Phys: r.Start, Len: r.Len}
		}
		if f.hooks.OnFree(t, ext) {
			return // daemon owns them now
		}
	}
	f.alloc.Free(t, runs)
}

// ReleaseZeroed returns daemon-zeroed blocks to the allocator marked
// zeroed.
func (f *FS) ReleaseZeroed(t *sim.Thread, ext []vfs.Extent) {
	runs := make([]alloc.Run, len(ext))
	for i, e := range ext {
		runs[i] = alloc.Run{Start: e.Phys, Len: e.Len, Zeroed: true}
	}
	f.alloc.Free(t, runs)
}

// ensureBlocks allocates blocks so the file covers [0, blocks). It zeroes
// new blocks per policy, appends extents, journals the metadata, invokes
// the OnAlloc hook, and marks metadata dirty (MAP_SYNC exposure).
func (f *FS) ensureBlocks(t *sim.Thread, in *vfs.Inode, di *inode, blocks uint64) error {
	if blocks <= di.allocatedBlocks {
		return nil
	}
	need := blocks - di.allocatedBlocks
	runs := f.alloc.Alloc(t, need)
	if runs == nil {
		return vfs.ErrNoSpace
	}
	f.journal.Begin(t)
	newExt := make([]vfs.Extent, 0, len(runs))
	fileBlock := di.allocatedBlocks
	for _, r := range runs {
		if !f.agingMode {
			if r.Zeroed && f.trustZeroed {
				f.Stats.SkippedZero += r.Len
			} else {
				f.dev.Zero(t, mem.PhysAddr(r.Start*mem.PageSize), r.Len*mem.PageSize)
				f.Stats.ZeroedBlocks += r.Len
			}
		}
		e := vfs.Extent{File: fileBlock, Phys: r.Start, Len: r.Len}
		newExt = append(newExt, e)
		fileBlock += r.Len
	}
	di.extents = append(di.extents, newExt...)
	di.allocatedBlocks = fileBlock
	f.journal.AddMeta(t, uint64(1+len(newExt)/8))
	in.MetaDirty = true
	in.MetaDirtyBlocks += uint64(1 + len(newExt)/8)
	if f.hooks != nil && f.hooks.OnAlloc != nil {
		f.hooks.OnAlloc(t, in, newExt)
	}
	return nil
}

// Append implements vfs.FS: write(2) at EOF. Data goes to media with
// non-temporal stores (no dirty tracking needed).
func (f *FS) Append(t *sim.Thread, in *vfs.Inode, data []byte) error {
	di := in.Priv.(*inode)
	di.mu.Lock(t, cost.SemAcquireFast)
	defer di.mu.Unlock(t, cost.SemReleaseFast)
	off := di.size
	end := off + uint64(len(data))
	if err := f.ensureBlocks(t, in, di, vfs.BytesToBlocks(end)); err != nil {
		return err
	}
	if !f.agingMode {
		f.copyToMedia(t, di, off, data)
	}
	di.size = end
	in.Size = end
	t.ChargeAs("inode_update", cost.InodeUpdate)
	f.journal.AddMeta(t, 1)
	f.Stats.Appends++
	return nil
}

// WriteAt implements vfs.FS: overwrite within the file.
func (f *FS) WriteAt(t *sim.Thread, in *vfs.Inode, off uint64, data []byte) error {
	di := in.Priv.(*inode)
	if off+uint64(len(data)) > di.allocatedBlocks*mem.PageSize {
		return vfs.ErrBadOffset
	}
	f.copyToMedia(t, di, off, data)
	if end := off + uint64(len(data)); end > di.size {
		di.size = end
		in.Size = end
		t.ChargeAs("inode_update", cost.InodeUpdate)
	}
	return nil
}

// copyToMedia routes a byte range through the extent map with nt-stores.
func (f *FS) copyToMedia(t *sim.Thread, di *inode, off uint64, data []byte) {
	for len(data) > 0 {
		phys, run := f.physRun(di, off)
		if run == 0 {
			panic(fmt.Sprintf("ext4: write hole at offset %d of inode %d", off, di.ino))
		}
		n := run
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		f.dev.WriteNT(t, mem.PhysAddr(phys), data[:n])
		data = data[n:]
		off += n
	}
	f.dev.Fence(t)
}

// readFromMedia is the mirror path for reads.
func (f *FS) readFromMedia(t *sim.Thread, di *inode, off uint64, buf []byte) {
	for len(buf) > 0 {
		phys, run := f.physRun(di, off)
		if run == 0 {
			panic(fmt.Sprintf("ext4: read hole at offset %d of inode %d", off, di.ino))
		}
		n := run
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		f.dev.Read(t, mem.PhysAddr(phys), buf[:n])
		buf = buf[n:]
		off += n
	}
}

// physRun translates byte offset -> (physical byte address, contiguous
// bytes remaining in that extent).
func (f *FS) physRun(di *inode, off uint64) (uint64, uint64) {
	fb := off / mem.PageSize
	i := sort.Search(len(di.extents), func(i int) bool { return di.extents[i].End() > fb })
	if i == len(di.extents) {
		return 0, 0
	}
	e := di.extents[i]
	if fb < e.File {
		return 0, 0
	}
	inExt := off - e.File*mem.PageSize
	phys := e.Phys*mem.PageSize + inExt
	return phys, e.Len*mem.PageSize - inExt
}

// ReadAt implements vfs.FS.
func (f *FS) ReadAt(t *sim.Thread, in *vfs.Inode, off uint64, buf []byte) (uint64, error) {
	di := in.Priv.(*inode)
	if off >= di.size {
		return 0, vfs.ErrBadOffset
	}
	n := uint64(len(buf))
	if off+n > di.size {
		n = di.size - off
	}
	f.readFromMedia(t, di, off, buf[:n])
	return n, nil
}

// Fallocate implements vfs.FS.
func (f *FS) Fallocate(t *sim.Thread, in *vfs.Inode, off, n uint64) error {
	di := in.Priv.(*inode)
	di.mu.Lock(t, cost.SemAcquireFast)
	defer di.mu.Unlock(t, cost.SemReleaseFast)
	if err := f.ensureBlocks(t, in, di, vfs.BytesToBlocks(off+n)); err != nil {
		return err
	}
	if end := off + n; end > di.size {
		di.size = end
		in.Size = end
		t.ChargeAs("inode_update", cost.InodeUpdate)
		f.journal.AddMeta(t, 1)
	}
	return nil
}

// Truncate implements vfs.FS.
func (f *FS) Truncate(t *sim.Thread, in *vfs.Inode, size uint64) error {
	di := in.Priv.(*inode)
	di.mu.Lock(t, cost.SemAcquireFast)
	defer di.mu.Unlock(t, cost.SemReleaseFast)
	if size >= di.size {
		di.size = size
		in.Size = size
		return nil
	}
	if f.hooks != nil && f.hooks.OnTruncate != nil {
		f.hooks.OnTruncate(t, in)
	}
	vfs.ForceUnmapAll(t, in)
	keep := vfs.BytesToBlocks(size)
	var freed []alloc.Run
	var kept []vfs.Extent
	for _, e := range di.extents {
		switch {
		case e.End() <= keep:
			kept = append(kept, e)
		case e.File >= keep:
			freed = append(freed, alloc.Run{Start: e.Phys, Len: e.Len})
		default:
			cut := keep - e.File
			kept = append(kept, vfs.Extent{File: e.File, Phys: e.Phys, Len: cut})
			freed = append(freed, alloc.Run{Start: e.Phys + cut, Len: e.Len - cut})
		}
	}
	di.extents = kept
	di.allocatedBlocks = keep
	di.size = size
	in.Size = size
	f.journal.Begin(t)
	f.journal.AddMeta(t, uint64(1+len(freed)/8))
	in.MetaDirty = true
	in.MetaDirtyBlocks++
	if f.hooks != nil && f.hooks.OnShrink != nil {
		f.hooks.OnShrink(t, in, keep)
	}
	if len(freed) > 0 {
		f.freeRuns(t, freed)
	}
	return nil
}

// Fsync implements vfs.FS (metadata part; mapped-data flushing is the
// mm layer's job).
func (f *FS) Fsync(t *sim.Thread, in *vfs.Inode) {
	t.ChargeAs("fsync_fixed", cost.FsyncFixed)
	if in.MetaDirty {
		f.journal.Commit(t)
		in.MetaDirty = false
		in.MetaDirtyBlocks = 0
	}
}

// SyncMetaIfDirty implements vfs.FS: the MAP_SYNC write-fault path.
func (f *FS) SyncMetaIfDirty(t *sim.Thread, in *vfs.Inode) bool {
	if !in.MetaDirty {
		return false
	}
	f.Stats.MetaSyncs++
	f.journal.Commit(t)
	in.MetaDirty = false
	in.MetaDirtyBlocks = 0
	return true
}

// Extents implements vfs.FS.
func (f *FS) Extents(in *vfs.Inode) []vfs.Extent {
	di := in.Priv.(*inode)
	out := make([]vfs.Extent, len(di.extents))
	copy(out, di.extents)
	return out
}

// BlockOf implements vfs.FS.
func (f *FS) BlockOf(t *sim.Thread, in *vfs.Inode, fileBlock uint64) (uint64, bool) {
	t.ChargeAs("extent_lookup", cost.ExtentLookup)
	di := in.Priv.(*inode)
	// Manual binary search for the first extent ending past fileBlock:
	// sort.Search's closure would allocate on every fault-path lookup.
	i, j := 0, len(di.extents)
	for i < j {
		h := int(uint(i+j) >> 1)
		if di.extents[h].End() > fileBlock {
			j = h
		} else {
			i = h + 1
		}
	}
	if i == len(di.extents) || di.extents[i].File > fileBlock {
		return 0, false
	}
	e := di.extents[i]
	return e.Phys + (fileBlock - e.File), true
}

// FreeSpace implements vfs.FS.
func (f *FS) FreeSpace() uint64 { return f.alloc.FreeBlocks() * mem.PageSize }

// FreeExtentCount implements vfs.FS.
func (f *FS) FreeExtentCount() int { return f.alloc.FreeExtentCount() }

// PutInode implements vfs.FS.
func (f *FS) PutInode(t *sim.Thread, in *vfs.Inode) {
	if in.Deleted && in.Refs == 0 {
		if f.hooks != nil && f.hooks.OnShrink != nil {
			f.hooks.OnShrink(t, in, 0)
		}
		if di, ok := in.Priv.(*inode); ok {
			f.dropBlocks(t, di)
		}
	}
}

// FileCount reports directory entries (aging tool bookkeeping).
func (f *FS) FileCount() int { return len(f.dir) }

// Paths returns all file paths (corpus iteration); order is unspecified.
func (f *FS) Paths() []string {
	out := make([]string, 0, len(f.dir))
	for p := range f.dir {
		out = append(out, p)
	}
	return out
}
