package ext4

import (
	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

// Journal models jbd2: metadata updates join a running transaction;
// commits write the log to media and fence. There is one journal per file
// system, so concurrent committers serialize — the contention behind the
// aged-image MAP_SYNC collapse in Fig. 9c.
type Journal struct {
	dev *pmem.Device
	mu  *sim.Mutex

	logHead mem.PhysAddr
	logSize uint64
	logOff  uint64

	pendingBlocks uint64
	commitHooks   []func(t *sim.Thread)

	// Trace receives journal-commit events; Spans opens a causal span
	// per commit (see SetSpans). Nil = disabled.
	Trace *obs.Tracer
	Spans *span.Collector

	Stats JournalStats
}

// JournalStats counts journal activity.
type JournalStats struct {
	Begins  uint64
	Commits uint64
	Blocks  uint64
}

// NewJournal creates a journal whose log area is [head, head+size) on dev.
func NewJournal(dev *pmem.Device, head mem.PhysAddr, size uint64) *Journal {
	return &Journal{dev: dev, mu: sim.NewMutex(cost.SchedWakeup), logHead: head, logSize: size}
}

// WaitQueueDepth reports how many threads are parked on the commit lock.
// Pure read for gauge sampling.
func (j *Journal) WaitQueueDepth() int { return j.mu.WaitQueueDepth() }

// Begin starts (or joins) the running transaction.
func (j *Journal) Begin(t *sim.Thread) {
	j.Stats.Begins++
	t.ChargeAs("journal.begin", cost.JournalBegin)
}

// AddMeta records n dirty metadata blocks in the running transaction.
func (j *Journal) AddMeta(t *sim.Thread, n uint64) {
	j.pendingBlocks += n
	j.Stats.Blocks += n
	t.ChargeAs("journal.add_meta", cost.JournalAddPerBlock*n)
}

// OnCommit registers fn to run inside every commit while the journal lock
// is held (DaxVM persistent file tables fence their PTE flushes here).
func (j *Journal) OnCommit(fn func(t *sim.Thread)) {
	j.commitHooks = append(j.commitHooks, fn)
}

// SetSpans attaches the span collector: every commit opens a
// "journal.commit" span, and time parked on the contended commit lock
// books as journal_flush wait inside it. Nil detaches cleanly.
func (j *Journal) SetSpans(sp *span.Collector) {
	j.Spans = sp
	if sp == nil {
		j.mu.OnContended = nil
		return
	}
	j.mu.OnContended = func(t *sim.Thread, kind string, waitStart, blocked uint64) {
		sp.Wait(t, span.WaitJournal, blocked)
	}
}

// Commit forces the running transaction to media. It serializes on the
// journal lock, writes the pending metadata blocks to the log with
// nt-stores and fences.
func (j *Journal) Commit(t *sim.Thread) {
	began := t.Now()
	t.PushAttr("journal.commit")
	defer t.PopAttr()
	j.Spans.Begin(t, span.ClassJournalCommit)
	defer j.Spans.End(t)
	j.mu.Lock(t, cost.SemAcquireFast)
	n := j.pendingBlocks
	j.pendingBlocks = 0
	t.Charge(cost.JournalCommit)
	if n > 0 {
		bytes := n * mem.PageSize
		if j.logOff+bytes > j.logSize {
			j.logOff = 0
		}
		// The log write consumes real device write bandwidth.
		j.dev.StreamNT(t, j.logHead+mem.PhysAddr(j.logOff), bytes)
		j.logOff += bytes
	}
	for _, fn := range j.commitHooks {
		fn(t)
	}
	j.dev.Fence(t)
	j.Stats.Commits++
	j.mu.Unlock(t, cost.SemReleaseFast)
	j.Trace.Emit(obs.EvJournalCommit, t.Core, began, t.Now()-began, "", n)
}

// Pending reports uncommitted metadata blocks.
func (j *Journal) Pending() uint64 { return j.pendingBlocks }
