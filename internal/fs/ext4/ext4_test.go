package ext4

import (
	"bytes"
	"testing"

	"daxvm/internal/fs/vfs"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

func newFS(sizeMB int) *FS {
	dev := pmem.New(pmem.Config{Size: uint64(sizeMB) << 20})
	return Mkfs(Config{Dev: dev, JournalBytes: 8 << 20})
}

func run(fn func(t *sim.Thread)) {
	e := sim.New()
	e.Go("t", 0, 0, fn)
	e.Run()
}

func TestCreateWriteRead(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, err := f.Create(th, "a/b")
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		payload := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16 000 B
		if err := f.Append(th, in, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if in.Size != uint64(len(payload)) {
			t.Fatalf("size = %d", in.Size)
		}
		got := make([]byte, len(payload))
		n, err := f.ReadAt(th, in, 0, got)
		if err != nil || n != uint64(len(payload)) {
			t.Fatalf("ReadAt: %d, %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch")
		}
		// Partial read across block boundary.
		part := make([]byte, 100)
		if _, err := f.ReadAt(th, in, 4090, part); err != nil {
			t.Fatalf("partial ReadAt: %v", err)
		}
		if !bytes.Equal(part, payload[4090:4190]) {
			t.Fatal("partial read mismatch")
		}
	})
}

func TestLookupAndLoad(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "x")
		f.Append(th, in, make([]byte, 10000))
		ino, err := f.LookupPath(th, "x")
		if err != nil || ino != in.Ino {
			t.Fatalf("LookupPath: %d, %v", ino, err)
		}
		loaded, err := f.LoadInode(th, ino)
		if err != nil || loaded.Size != 10000 {
			t.Fatalf("LoadInode: size=%d err=%v", loaded.Size, err)
		}
		if _, err := f.LookupPath(th, "missing"); err != vfs.ErrNotFound {
			t.Fatalf("missing file: %v", err)
		}
	})
}

func TestAppendZeroesNewBlocksConservatively(t *testing.T) {
	// ext4-DAX zeroes new blocks even on the write path (paper §V-B):
	// zeroed bytes must roughly match appended bytes.
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "z")
		f.Append(th, in, make([]byte, 1<<20))
	})
	if f.Stats.ZeroedBlocks < 256 {
		t.Fatalf("zeroed %d blocks, want >= 256 (1 MiB)", f.Stats.ZeroedBlocks)
	}
}

func TestTrustZeroedSkipsRedundantZeroing(t *testing.T) {
	f := newFS(64)
	f.SetTrustZeroed(true)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "z")
		f.Append(th, in, make([]byte, 1<<20)) // fresh device: all pre-zeroed
	})
	if f.Stats.ZeroedBlocks != 0 || f.Stats.SkippedZero < 256 {
		t.Fatalf("zeroed=%d skipped=%d, want 0 / >=256", f.Stats.ZeroedBlocks, f.Stats.SkippedZero)
	}
}

func TestMetaDirtyAndSync(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "m")
		f.Append(th, in, make([]byte, 8192))
		if !in.MetaDirty {
			t.Fatal("append should dirty metadata")
		}
		commits := f.Journal().Stats.Commits
		if !f.SyncMetaIfDirty(th, in) {
			t.Fatal("SyncMetaIfDirty should commit")
		}
		if f.Journal().Stats.Commits != commits+1 {
			t.Fatal("no journal commit recorded")
		}
		if in.MetaDirty || f.SyncMetaIfDirty(th, in) {
			t.Fatal("second sync should be a no-op")
		}
	})
}

func TestTruncateFreesAndUnlinkReclaims(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "t")
		f.Append(th, in, make([]byte, 1<<20))
		free0 := f.FreeSpace()
		if err := f.Truncate(th, in, 4096); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		if f.FreeSpace() <= free0 {
			t.Fatal("truncate freed nothing")
		}
		if in.Size != 4096 {
			t.Fatalf("size = %d", in.Size)
		}
		if err := f.Unlink(th, "t"); err != nil {
			t.Fatalf("Unlink: %v", err)
		}
		in.Deleted = true
		free1 := f.FreeSpace()
		f.PutInode(th, in)
		if f.FreeSpace() <= free1 {
			t.Fatal("unlink+put freed nothing")
		}
	})
}

func TestBlockOf(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "b")
		f.Append(th, in, make([]byte, 64<<10))
		exts := f.Extents(in)
		if len(exts) == 0 {
			t.Fatal("no extents")
		}
		phys, ok := f.BlockOf(th, in, 3)
		if !ok {
			t.Fatal("BlockOf(3) missed")
		}
		// Verify against the extent list.
		want := uint64(0)
		found := false
		for _, e := range exts {
			if e.File <= 3 && 3 < e.End() {
				want = e.Phys + 3 - e.File
				found = true
			}
		}
		if !found || phys != want {
			t.Fatalf("BlockOf(3) = %d, want %d", phys, want)
		}
		if _, ok := f.BlockOf(th, in, 1000); ok {
			t.Fatal("BlockOf beyond EOF should miss")
		}
	})
}

func TestFreshImageGivesContiguousExtents(t *testing.T) {
	f := newFS(256)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "big")
		f.Fallocate(th, in, 0, 32<<20)
		exts := f.Extents(in)
		if len(exts) > 20 {
			t.Fatalf("fresh image produced %d extents for 32 MiB", len(exts))
		}
	})
}

func TestOnFreeHookInterceptsBlocks(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	var intercepted uint64
	hooks := &vfs.Hooks{
		OnFree: func(_ *sim.Thread, ext []vfs.Extent) bool {
			for _, e := range ext {
				intercepted += e.Len
			}
			return true
		},
	}
	f := Mkfs(Config{Dev: dev, JournalBytes: 8 << 20, Hooks: hooks})
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "h")
		f.Append(th, in, make([]byte, 1<<20))
		free0 := f.FreeSpace()
		f.Truncate(th, in, 0)
		if intercepted < 256 {
			t.Fatalf("hook intercepted %d blocks", intercepted)
		}
		if f.FreeSpace() != free0 {
			t.Fatal("blocks should be held by the hook, not the allocator")
		}
	})
}
