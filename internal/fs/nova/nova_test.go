package nova

import (
	"bytes"
	"testing"

	"daxvm/internal/mem"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

func newFS(sizeMB int) *FS {
	return Mkfs(Config{Dev: pmem.New(pmem.Config{Size: uint64(sizeMB) << 20})})
}

func run(fn func(t *sim.Thread)) {
	e := sim.New()
	e.Go("t", 0, 0, fn)
	e.Run()
}

func TestWritePathDoesNotZero(t *testing.T) {
	// NOVA's write(2) initializes blocks with the payload itself; no
	// security zeroing on that path (the Fig. 7 asymmetry).
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "w")
		if err := f.Append(th, in, make([]byte, 1<<20)); err != nil {
			t.Errorf("Append: %v", err)
		}
	})
	if f.Stats.ZeroedBlocks != 0 {
		t.Fatalf("write path zeroed %d blocks", f.Stats.ZeroedBlocks)
	}
}

func TestFallocateZeroes(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "fa")
		// Dirty the free space first so zeroing is observable.
		tmp, _ := f.Create(th, "tmp")
		f.Append(th, tmp, bytes.Repeat([]byte{0xEE}, 1<<20))
		f.Truncate(th, tmp, 0)
		if err := f.Fallocate(th, in, 0, 1<<20); err != nil {
			t.Errorf("Fallocate: %v", err)
			return
		}
		// Every allocated byte must read zero (security).
		buf := make([]byte, 4096)
		for _, e := range f.Extents(in) {
			f.dev.Read(th, mem.PhysAddr(e.Phys*mem.PageSize), buf)
			for _, b := range buf {
				if b != 0 {
					t.Error("fallocate exposed stale bytes")
					return
				}
			}
		}
	})
	if f.Stats.ZeroedBlocks == 0 {
		t.Fatal("fallocate did not zero")
	}
}

func TestMetadataSynchronous(t *testing.T) {
	// NOVA commits metadata at operation time: MAP_SYNC faults are no-ops
	// and MetaDirty never sets.
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "m")
		f.Append(th, in, make([]byte, 64<<10))
		if in.MetaDirty {
			t.Error("NOVA inode left MetaDirty")
		}
		if f.SyncMetaIfDirty(th, in) {
			t.Error("SyncMetaIfDirty should be a no-op on NOVA")
		}
	})
	if f.Stats.LogAppends == 0 {
		t.Fatal("no log appends recorded")
	}
}

func TestReadBack(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "rb")
		payload := bytes.Repeat([]byte("nova-relaxed"), 2000)
		f.Append(th, in, payload)
		got := make([]byte, len(payload))
		if _, err := f.ReadAt(th, in, 0, got); err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Error("payload mismatch")
		}
	})
}

func TestTruncateAndReclaim(t *testing.T) {
	f := newFS(64)
	run(func(th *sim.Thread) {
		in, _ := f.Create(th, "t")
		f.Append(th, in, make([]byte, 1<<20))
		free0 := f.FreeSpace()
		f.Truncate(th, in, 8192)
		if f.FreeSpace() <= free0 {
			t.Error("truncate freed nothing")
		}
		f.Unlink(th, "t")
		in.Deleted = true
		f.PutInode(th, in)
		if _, err := f.LookupPath(th, "t"); err == nil {
			t.Error("unlinked file still resolvable")
		}
	})
}
