// Package nova models the NOVA file system (relaxed mode): log-structured
// per-inode metadata committed synchronously and in place, which makes the
// MAP_SYNC interface a no-op; the write(2) path does NOT zero new blocks
// (it overwrites them with the payload), but fallocate for DAX mapping
// MUST zero — the asymmetry Fig. 7 (NOVA) exposes.
package nova

import (
	"fmt"
	"sort"

	"daxvm/internal/cost"
	"daxvm/internal/fs/alloc"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/obs/span"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

type inode struct {
	ino             vfs.Ino
	size            uint64
	extents         []vfs.Extent
	mu              *sim.Mutex
	allocatedBlocks uint64
}

// Config controls mkfs.
type Config struct {
	Dev *pmem.Device
	// TrustZeroed enables the DaxVM pre-zeroing extension.
	TrustZeroed bool
	Hooks       *vfs.Hooks
}

// FS is a NOVA instance.
type FS struct {
	dev         *pmem.Device
	alloc       *alloc.Allocator
	hooks       *vfs.Hooks
	trustZeroed bool
	agingMode   bool

	dir     map[string]vfs.Ino
	inodes  map[vfs.Ino]*inode
	nextIno vfs.Ino
	dirLock sim.SpinLock

	// Spans, when set, opens a causal span per synchronous log append
	// (nil = disabled).
	Spans *span.Collector

	logArea mem.PhysAddr
	logOff  uint64
	logCap  uint64

	Stats FSStats
}

// FSStats counts data-path activity.
type FSStats struct {
	LogAppends   uint64
	ZeroedBlocks uint64
	SkippedZero  uint64
}

const logBytes = 64 << 20

// Mkfs formats the device. The metadata-log area is 64 MiB or 1/16 of the
// device, whichever is smaller.
func Mkfs(cfg Config) *FS {
	lb := uint64(logBytes)
	if lb > cfg.Dev.Size()/16 {
		lb = cfg.Dev.Size() / 16
	}
	firstData := vfs.BytesToBlocks(lb)
	total := cfg.Dev.Size() / mem.PageSize
	return &FS{
		dev:         cfg.Dev,
		alloc:       alloc.New(firstData, total-firstData, true),
		hooks:       cfg.Hooks,
		trustZeroed: cfg.TrustZeroed,
		dir:         make(map[string]vfs.Ino),
		inodes:      make(map[vfs.Ino]*inode),
		nextIno:     2,
		logCap:      lb,
	}
}

// Name implements vfs.FS.
func (f *FS) Name() string { return "nova" }

// Device implements vfs.FS.
func (f *FS) Device() *pmem.Device { return f.dev }

// Allocator exposes the allocator for the pre-zero daemon and aging.
func (f *FS) Allocator() *alloc.Allocator { return f.alloc }

// SetHooks installs (or replaces) the DaxVM extension hooks.
func (f *FS) SetHooks(h *vfs.Hooks) { f.hooks = h }

// SetAgingMode toggles fast image-churn setup.
func (f *FS) SetAgingMode(on bool) { f.agingMode = on }

// SetTrustZeroed enables the pre-zeroing extension.
func (f *FS) SetTrustZeroed(on bool) { f.trustZeroed = on }

// logAppend models one synchronous metadata log entry: an nt-stored,
// fenced record. This is why NOVA needs no MAP_SYNC faults.
func (f *FS) logAppend(t *sim.Thread) {
	f.Spans.Begin(t, "nova.log_append")
	defer f.Spans.End(t)
	f.Stats.LogAppends++
	t.ChargeAs("log_append", cost.NovaLogAppend)
	if f.logOff+mem.CacheLineSize > f.logCap {
		f.logOff = 0
	}
	f.dev.StreamNT(t, f.logArea+mem.PhysAddr(f.logOff), mem.CacheLineSize)
	f.logOff += mem.CacheLineSize
	f.dev.Fence(t)
}

// Create implements vfs.FS.
func (f *FS) Create(t *sim.Thread, path string) (*vfs.Inode, error) {
	f.dirLock.Lock(t, cost.SpinLockAcquire)
	if _, exists := f.dir[path]; exists {
		f.dirLock.Unlock(t, cost.SpinLockRelease)
		return nil, vfs.ErrExists
	}
	ino := f.nextIno
	f.nextIno++
	f.dir[path] = ino
	f.dirLock.Unlock(t, cost.SpinLockRelease)
	di := &inode{ino: ino, mu: sim.NewMutex(cost.SchedWakeup)}
	f.inodes[ino] = di
	f.logAppend(t)
	return f.newVFS(di, path), nil
}

func (f *FS) newVFS(di *inode, path string) *vfs.Inode {
	return &vfs.Inode{
		Ino:     di.ino,
		Path:    path,
		Size:    di.size,
		Priv:    di,
		Mappers: make(map[any]func(*sim.Thread)),
	}
}

// LookupPath implements vfs.FS.
func (f *FS) LookupPath(t *sim.Thread, path string) (vfs.Ino, error) {
	t.ChargeAs("path_lookup", cost.PathLookupPerCmp)
	ino, ok := f.dir[path]
	if !ok {
		return 0, vfs.ErrNotFound
	}
	return ino, nil
}

// LoadInode implements vfs.FS: NOVA replays the inode log on a cold open.
func (f *FS) LoadInode(t *sim.Thread, ino vfs.Ino) (*vfs.Inode, error) {
	di, ok := f.inodes[ino]
	if !ok {
		return nil, vfs.ErrNotFound
	}
	t.ChargeAs("inode_load", cost.PMemLoadLatency+cost.PMemSeqLoadLat*uint64(1+len(di.extents)/32))
	return f.newVFS(di, ""), nil
}

// Unlink implements vfs.FS.
func (f *FS) Unlink(t *sim.Thread, path string) error {
	f.dirLock.Lock(t, cost.SpinLockAcquire)
	_, ok := f.dir[path]
	if !ok {
		f.dirLock.Unlock(t, cost.SpinLockRelease)
		return vfs.ErrNotFound
	}
	delete(f.dir, path)
	f.dirLock.Unlock(t, cost.SpinLockRelease)
	f.logAppend(t)
	return nil
}

func (f *FS) ensureBlocks(t *sim.Thread, in *vfs.Inode, di *inode, blocks uint64, zeroNew bool) error {
	if blocks <= di.allocatedBlocks {
		return nil
	}
	runs := f.alloc.Alloc(t, blocks-di.allocatedBlocks)
	if runs == nil {
		return vfs.ErrNoSpace
	}
	newExt := make([]vfs.Extent, 0, len(runs))
	fb := di.allocatedBlocks
	for _, r := range runs {
		if zeroNew && !f.agingMode {
			if r.Zeroed && f.trustZeroed {
				f.Stats.SkippedZero += r.Len
			} else {
				f.dev.Zero(t, mem.PhysAddr(r.Start*mem.PageSize), r.Len*mem.PageSize)
				f.Stats.ZeroedBlocks += r.Len
			}
		}
		newExt = append(newExt, vfs.Extent{File: fb, Phys: r.Start, Len: r.Len})
		fb += r.Len
	}
	di.extents = append(di.extents, newExt...)
	di.allocatedBlocks = fb
	f.logAppend(t) // metadata committed synchronously: no MetaDirty, ever
	if f.hooks != nil && f.hooks.OnAlloc != nil {
		f.hooks.OnAlloc(t, in, newExt)
	}
	return nil
}

// Append implements vfs.FS. NOVA does not zero on the write path: the
// payload itself initializes the new blocks.
func (f *FS) Append(t *sim.Thread, in *vfs.Inode, data []byte) error {
	di := in.Priv.(*inode)
	di.mu.Lock(t, cost.SemAcquireFast)
	defer di.mu.Unlock(t, cost.SemReleaseFast)
	off := di.size
	if err := f.ensureBlocks(t, in, di, vfs.BytesToBlocks(off+uint64(len(data))), false); err != nil {
		return err
	}
	if !f.agingMode {
		f.copyToMedia(t, di, off, data)
	}
	di.size = off + uint64(len(data))
	in.Size = di.size
	f.logAppend(t)
	return nil
}

// WriteAt implements vfs.FS (relaxed mode: in-place update).
func (f *FS) WriteAt(t *sim.Thread, in *vfs.Inode, off uint64, data []byte) error {
	di := in.Priv.(*inode)
	if off+uint64(len(data)) > di.allocatedBlocks*mem.PageSize {
		return vfs.ErrBadOffset
	}
	f.copyToMedia(t, di, off, data)
	if end := off + uint64(len(data)); end > di.size {
		di.size = end
		in.Size = end
		f.logAppend(t)
	}
	return nil
}

func (f *FS) copyToMedia(t *sim.Thread, di *inode, off uint64, data []byte) {
	for len(data) > 0 {
		phys, run := f.physRun(di, off)
		if run == 0 {
			panic(fmt.Sprintf("nova: write hole at %d", off))
		}
		n := run
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		f.dev.WriteNT(t, mem.PhysAddr(phys), data[:n])
		data = data[n:]
		off += n
	}
	f.dev.Fence(t)
}

func (f *FS) physRun(di *inode, off uint64) (uint64, uint64) {
	fb := off / mem.PageSize
	i := sort.Search(len(di.extents), func(i int) bool { return di.extents[i].End() > fb })
	if i == len(di.extents) || fb < di.extents[i].File {
		return 0, 0
	}
	e := di.extents[i]
	inExt := off - e.File*mem.PageSize
	return e.Phys*mem.PageSize + inExt, e.Len*mem.PageSize - inExt
}

// ReadAt implements vfs.FS.
func (f *FS) ReadAt(t *sim.Thread, in *vfs.Inode, off uint64, buf []byte) (uint64, error) {
	di := in.Priv.(*inode)
	if off >= di.size {
		return 0, vfs.ErrBadOffset
	}
	n := uint64(len(buf))
	if off+n > di.size {
		n = di.size - off
	}
	rem := buf[:n]
	pos := off
	for len(rem) > 0 {
		phys, run := f.physRun(di, pos)
		if run == 0 {
			panic(fmt.Sprintf("nova: read hole at %d", pos))
		}
		c := run
		if c > uint64(len(rem)) {
			c = uint64(len(rem))
		}
		f.dev.Read(t, mem.PhysAddr(phys), rem[:c])
		rem = rem[c:]
		pos += c
	}
	return n, nil
}

// Fallocate implements vfs.FS: blocks exposed for DAX mapping must be
// zeroed (security), even though the write path is zero-free.
func (f *FS) Fallocate(t *sim.Thread, in *vfs.Inode, off, n uint64) error {
	di := in.Priv.(*inode)
	di.mu.Lock(t, cost.SemAcquireFast)
	defer di.mu.Unlock(t, cost.SemReleaseFast)
	if err := f.ensureBlocks(t, in, di, vfs.BytesToBlocks(off+n), true); err != nil {
		return err
	}
	if end := off + n; end > di.size {
		di.size = end
		in.Size = end
		f.logAppend(t)
	}
	return nil
}

// Truncate implements vfs.FS.
func (f *FS) Truncate(t *sim.Thread, in *vfs.Inode, size uint64) error {
	di := in.Priv.(*inode)
	di.mu.Lock(t, cost.SemAcquireFast)
	defer di.mu.Unlock(t, cost.SemReleaseFast)
	if size >= di.size {
		di.size = size
		in.Size = size
		return nil
	}
	if f.hooks != nil && f.hooks.OnTruncate != nil {
		f.hooks.OnTruncate(t, in)
	}
	vfs.ForceUnmapAll(t, in)
	keep := vfs.BytesToBlocks(size)
	var freed []alloc.Run
	var kept []vfs.Extent
	for _, e := range di.extents {
		switch {
		case e.End() <= keep:
			kept = append(kept, e)
		case e.File >= keep:
			freed = append(freed, alloc.Run{Start: e.Phys, Len: e.Len})
		default:
			cut := keep - e.File
			kept = append(kept, vfs.Extent{File: e.File, Phys: e.Phys, Len: cut})
			freed = append(freed, alloc.Run{Start: e.Phys + cut, Len: e.Len - cut})
		}
	}
	di.extents = kept
	di.allocatedBlocks = keep
	di.size = size
	in.Size = size
	f.logAppend(t)
	if f.hooks != nil && f.hooks.OnShrink != nil {
		f.hooks.OnShrink(t, in, keep)
	}
	if len(freed) > 0 {
		if f.hooks != nil && f.hooks.OnFree != nil {
			ext := make([]vfs.Extent, len(freed))
			for i, r := range freed {
				ext[i] = vfs.Extent{Phys: r.Start, Len: r.Len}
			}
			if f.hooks.OnFree(t, ext) {
				return nil
			}
		}
		f.alloc.Free(t, freed)
	}
	return nil
}

// ReleaseZeroed returns daemon-zeroed blocks marked zeroed.
func (f *FS) ReleaseZeroed(t *sim.Thread, ext []vfs.Extent) {
	runs := make([]alloc.Run, len(ext))
	for i, e := range ext {
		runs[i] = alloc.Run{Start: e.Phys, Len: e.Len, Zeroed: true}
	}
	f.alloc.Free(t, runs)
}

// Fsync implements vfs.FS: metadata is already durable; only a fixed cost.
func (f *FS) Fsync(t *sim.Thread, in *vfs.Inode) {
	t.ChargeAs("fsync_fixed", cost.FsyncFixed)
}

// SyncMetaIfDirty implements vfs.FS: a no-op — NOVA commits synchronously,
// so MAP_SYNC faults carry no journal work (the Fig. 9c NOVA contrast).
func (f *FS) SyncMetaIfDirty(t *sim.Thread, in *vfs.Inode) bool { return false }

// Extents implements vfs.FS.
func (f *FS) Extents(in *vfs.Inode) []vfs.Extent {
	di := in.Priv.(*inode)
	out := make([]vfs.Extent, len(di.extents))
	copy(out, di.extents)
	return out
}

// BlockOf implements vfs.FS.
func (f *FS) BlockOf(t *sim.Thread, in *vfs.Inode, fileBlock uint64) (uint64, bool) {
	t.ChargeAs("extent_lookup", cost.ExtentLookup)
	di := in.Priv.(*inode)
	// Manual binary search for the first extent ending past fileBlock:
	// sort.Search's closure would allocate on every fault-path lookup.
	i, j := 0, len(di.extents)
	for i < j {
		h := int(uint(i+j) >> 1)
		if di.extents[h].End() > fileBlock {
			j = h
		} else {
			i = h + 1
		}
	}
	if i == len(di.extents) || di.extents[i].File > fileBlock {
		return 0, false
	}
	e := di.extents[i]
	return e.Phys + (fileBlock - e.File), true
}

// FreeSpace implements vfs.FS.
func (f *FS) FreeSpace() uint64 { return f.alloc.FreeBlocks() * mem.PageSize }

// FreeExtentCount implements vfs.FS.
func (f *FS) FreeExtentCount() int { return f.alloc.FreeExtentCount() }

// PutInode implements vfs.FS.
func (f *FS) PutInode(t *sim.Thread, in *vfs.Inode) {
	if in.Deleted && in.Refs == 0 {
		if f.hooks != nil && f.hooks.OnShrink != nil {
			f.hooks.OnShrink(t, in, 0)
		}
		di := in.Priv.(*inode)
		if len(di.extents) > 0 {
			runs := make([]alloc.Run, len(di.extents))
			for i, e := range di.extents {
				runs[i] = alloc.Run{Start: e.Phys, Len: e.Len}
			}
			di.extents = nil
			di.allocatedBlocks = 0
			f.logAppend(t)
			if f.hooks != nil && f.hooks.OnFree != nil {
				ext := make([]vfs.Extent, len(runs))
				for i, r := range runs {
					ext[i] = vfs.Extent{Phys: r.Start, Len: r.Len}
				}
				if f.hooks.OnFree(t, ext) {
					delete(f.inodes, di.ino)
					return
				}
			}
			f.alloc.Free(t, runs)
		}
		delete(f.inodes, di.ino)
	}
}

// FileCount reports directory entries.
func (f *FS) FileCount() int { return len(f.dir) }
