// Package alloc implements the extent-based block allocator shared by the
// ext4-DAX and NOVA models.
//
// Free space is a set of non-overlapping extents in a red-black tree.
// Allocation carves from free extents starting at a rotating goal (like
// ext4's per-group goal blocks); large requests prefer 2 MiB-aligned runs
// so that fresh images yield huge-page-mappable files while aged images —
// whose free list is shattered by churn — do not. Each free extent tracks
// whether its blocks are known-zeroed, the state DaxVM's asynchronous
// pre-zeroing maintains.
package alloc

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/rbtree"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
)

// BlocksPerHuge is the number of 4 KiB blocks in a 2 MiB huge page.
const BlocksPerHuge = mem.HugeSize / mem.PageSize

// Run is a contiguous physical block run handed out by the allocator.
type Run struct {
	Start  uint64 // physical block
	Len    uint64 // blocks
	Zeroed bool   // contents known to be zero
}

type freeExt struct {
	len    uint64
	zeroed bool
}

// Allocator manages the free space of one device.
type Allocator struct {
	tree       rbtree.Tree[freeExt] // keyed by start block
	total      uint64
	free       uint64
	cursor     uint64 // rotating goal
	firstBlock uint64

	// NUMA placement: when set on a multi-node topology, Alloc steers
	// the goal cursor into the caller\'s preferred node\'s block range
	// before carving (best effort; fragmentation may spill elsewhere).
	tp            *topo.Topology
	policy        topo.Policy
	blocksPerNode uint64
	ileave        uint64

	Stats Stats
}

// Stats counts allocator activity.
type Stats struct {
	Allocs       uint64
	Frees        uint64
	BlocksServed uint64
}

// New creates an allocator over [firstBlock, firstBlock+blocks), initially
// one free extent. deviceZeroed marks the initial space as pre-zeroed
// (fresh simulated media).
func New(firstBlock, blocks uint64, deviceZeroed bool) *Allocator {
	a := &Allocator{total: blocks, free: blocks, cursor: firstBlock, firstBlock: firstBlock}
	a.tree.Insert(firstBlock, freeExt{len: blocks, zeroed: deviceZeroed})
	return a
}

// SetPlacement enables node-preferring allocation: node i\'s preferred
// range is [firstBlock+i*blocksPerNode, firstBlock+(i+1)*blocksPerNode).
// A nil or single-node topology disables steering (flat behaviour).
func (a *Allocator) SetPlacement(tp *topo.Topology, policy topo.Policy, blocksPerNode uint64) {
	if !tp.Multi() || blocksPerNode == 0 {
		a.tp, a.blocksPerNode = nil, 0
		return
	}
	a.tp, a.policy, a.blocksPerNode = tp, policy, blocksPerNode
}

// steer moves the rotating goal into t\'s preferred node\'s block range.
// No-op unless placement is configured (so flat images keep the exact
// historical cursor walk).
func (a *Allocator) steer(t *sim.Thread) {
	if a.tp == nil || t == nil {
		return
	}
	node := a.policy.Pick(a.tp, a.tp.NodeOfCore(t.Core), &a.ileave)
	lo := a.firstBlock + uint64(node)*a.blocksPerNode
	hi := lo + a.blocksPerNode
	if a.cursor < lo || a.cursor >= hi {
		a.cursor = lo
	}
}

// FreeBlocks reports free block count.
func (a *Allocator) FreeBlocks() uint64 { return a.free }

// TotalBlocks reports managed block count.
func (a *Allocator) TotalBlocks() uint64 { return a.total }

// FreeExtentCount reports the number of free extents (fragmentation
// proxy).
func (a *Allocator) FreeExtentCount() int { return a.tree.Len() }

// Alloc carves n blocks, returning the runs (possibly many on a
// fragmented image). Charges allocator path cost. Returns nil if space is
// insufficient.
func (a *Allocator) Alloc(t *sim.Thread, n uint64) []Run {
	if n == 0 {
		return []Run{}
	}
	if n > a.free {
		return nil
	}
	if t != nil {
		t.Charge(cost.ExtentAllocBase)
	}
	a.steer(t)
	var runs []Run
	remaining := n
	for remaining > 0 {
		r, ok := a.allocOne(remaining)
		if !ok {
			// Should not happen given the free check; restore and fail.
			for _, run := range runs {
				a.insertFree(run.Start, run.Len, run.Zeroed)
			}
			return nil
		}
		runs = append(runs, r)
		remaining -= r.Len
		if t != nil {
			t.Charge(cost.ExtentAllocPerExtent)
		}
	}
	a.Stats.Allocs++
	a.Stats.BlocksServed += n
	return runs
}

// allocOne carves at most `want` blocks from one free extent.
func (a *Allocator) allocOne(want uint64) (Run, bool) {
	// Placement steering can park the cursor in the middle of a large
	// free extent, which Ceiling (keyed on extent starts) cannot see.
	// Carve from the cursor inside that extent so a steered goal really
	// lands in its node's block range. Gated on placement being active:
	// the flat allocator's historical walk is untouched.
	if a.tp != nil {
		if pk, pv, ok := a.tree.Floor(a.cursor); ok && pk < a.cursor && a.cursor < pk+pv.len {
			take := pk + pv.len - a.cursor
			if take > want {
				take = want
			}
			start := a.cursor
			a.carve(pk, pv, start, take)
			a.cursor = start + take
			return Run{Start: start, Len: take, Zeroed: pv.zeroed}, true
		}
	}
	// Start searching at the cursor, wrapping once.
	start, fe, ok := a.tree.Ceiling(a.cursor)
	if !ok {
		start, fe, ok = a.tree.Min()
		if !ok {
			return Run{}, false
		}
	}

	// For huge-page-sized demand, prefer an extent that can supply an
	// aligned 2 MiB run; scan a bounded window before settling.
	if want >= BlocksPerHuge {
		if r, found := a.alignedCarve(start, want); found {
			return r, true
		}
	}

	take := fe.len
	if take > want {
		take = want
	}
	a.carve(start, fe, start, take)
	return Run{Start: start, Len: take, Zeroed: fe.zeroed}, true
}

// alignedCarve looks for a free extent (starting from key, wrapping) that
// contains a 2 MiB-aligned run and carves up to want blocks from it.
func (a *Allocator) alignedCarve(fromKey uint64, want uint64) (Run, bool) {
	const window = 32 // extents examined before giving up
	seen := 0
	var res Run
	found := false
	scan := func(key uint64, fe freeExt) bool {
		seen++
		alignedStart := mem.AlignedUp(key, BlocksPerHuge)
		if alignedStart < key+fe.len && key+fe.len-alignedStart >= BlocksPerHuge {
			take := key + fe.len - alignedStart
			if take > want {
				take = want
			}
			a.carve(key, fe, alignedStart, take)
			res = Run{Start: alignedStart, Len: take, Zeroed: fe.zeroed}
			found = true
			return false
		}
		return seen < window
	}
	a.tree.Ascend(fromKey, scan)
	if !found && seen < window {
		a.tree.Ascend(0, func(key uint64, fe freeExt) bool {
			if key >= fromKey {
				return false
			}
			return scan(key, fe)
		})
	}
	return res, found
}

// carve removes [carveStart, carveStart+take) from the free extent at key.
func (a *Allocator) carve(key uint64, fe freeExt, carveStart, take uint64) {
	if carveStart < key || carveStart+take > key+fe.len {
		panic(fmt.Sprintf("alloc: carve [%d,+%d) outside extent [%d,+%d)", carveStart, take, key, fe.len))
	}
	a.tree.Delete(key)
	if carveStart > key {
		a.tree.Insert(key, freeExt{len: carveStart - key, zeroed: fe.zeroed})
	}
	if end, feEnd := carveStart+take, key+fe.len; end < feEnd {
		a.tree.Insert(end, freeExt{len: feEnd - end, zeroed: fe.zeroed})
	}
	a.free -= take
	if a.cursor == key {
		a.cursor = carveStart + take
	}
}

// Free returns runs to the pool. Charges list costs to t if non-nil.
func (a *Allocator) Free(t *sim.Thread, runs []Run) {
	for _, r := range runs {
		a.insertFree(r.Start, r.Len, r.Zeroed)
		if t != nil {
			t.Charge(cost.KernelListOp)
		}
	}
	a.Stats.Frees++
}

// insertFree inserts a free extent, merging with equal-zeroed neighbours.
func (a *Allocator) insertFree(start, n uint64, zeroed bool) {
	if n == 0 {
		return
	}
	a.free += n
	// Merge with predecessor.
	if pk, pv, ok := a.tree.Floor(start); ok {
		if pk+pv.len > start {
			panic(fmt.Sprintf("alloc: double free at block %d", start))
		}
		if pk+pv.len == start && pv.zeroed == zeroed {
			a.tree.Delete(pk)
			start, n = pk, n+pv.len
		}
	}
	// Merge with successor.
	if nk, nv, ok := a.tree.Ceiling(start + n); ok {
		if nk < start+n {
			panic(fmt.Sprintf("alloc: double free overlapping block %d", nk))
		}
		if nk == start+n && nv.zeroed == zeroed {
			a.tree.Delete(nk)
			n += nv.len
		}
	}
	a.tree.Insert(start, freeExt{len: n, zeroed: zeroed})
}

// MarkAllZeroed marks every free extent as zeroed ("pre-zero in advance"
// experiment setup).
func (a *Allocator) MarkAllZeroed() {
	type kv struct {
		k uint64
		v freeExt
	}
	var all []kv
	a.tree.All(func(k uint64, v freeExt) bool { all = append(all, kv{k, v}); return true })
	for _, e := range all {
		e.v.zeroed = true
		a.tree.Insert(e.k, e.v)
	}
	// Re-merge adjacent extents that differed only in zeroed-ness.
	var merged []kv
	a.tree.All(func(k uint64, v freeExt) bool {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.k+last.v.len == k {
				last.v.len += v.len
				return true
			}
		}
		merged = append(merged, kv{k, v})
		return true
	})
	a.tree = rbtree.Tree[freeExt]{}
	for _, e := range merged {
		a.tree.Insert(e.k, e.v)
	}
}

// ZeroedFreeBlocks counts free blocks currently marked zeroed.
func (a *Allocator) ZeroedFreeBlocks() uint64 {
	var n uint64
	a.tree.All(func(_ uint64, v freeExt) bool {
		if v.zeroed {
			n += v.len
		}
		return true
	})
	return n
}

// CheckInvariants validates no overlap and conservation against expected
// allocated blocks; used by property tests.
func (a *Allocator) CheckInvariants() error {
	var prevEnd uint64
	var sum uint64
	var err error
	first := true
	a.tree.All(func(k uint64, v freeExt) bool {
		if !first && k < prevEnd {
			err = fmt.Errorf("alloc: overlap at %d (prev end %d)", k, prevEnd)
			return false
		}
		first = false
		prevEnd = k + v.len
		sum += v.len
		return true
	})
	if err != nil {
		return err
	}
	if sum != a.free {
		return fmt.Errorf("alloc: free count %d != tree sum %d", a.free, sum)
	}
	return nil
}
