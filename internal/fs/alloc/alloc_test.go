package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeConservation(t *testing.T) {
	a := New(0, 10000, true)
	r1 := a.Alloc(nil, 100)
	r2 := a.Alloc(nil, 250)
	if got := a.FreeBlocks(); got != 10000-350 {
		t.Fatalf("free = %d", got)
	}
	a.Free(nil, r1)
	a.Free(nil, r2)
	if a.FreeBlocks() != 10000 {
		t.Fatalf("free after return = %d", a.FreeBlocks())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(0, 100, false)
	if r := a.Alloc(nil, 101); r != nil {
		t.Fatal("overcommit allowed")
	}
	r := a.Alloc(nil, 100)
	if r == nil {
		t.Fatal("full allocation failed")
	}
	if a.Alloc(nil, 1) != nil {
		t.Fatal("allocated from empty pool")
	}
}

func TestZeroedTrackingThroughSplitAndMerge(t *testing.T) {
	a := New(0, 1000, true)
	r := a.Alloc(nil, 100)
	if !r[0].Zeroed {
		t.Fatal("fresh blocks should be zeroed")
	}
	// Returning them unzeroed must not poison the rest.
	r[0].Zeroed = false
	a.Free(nil, r)
	total := a.ZeroedFreeBlocks()
	if total != 900 {
		t.Fatalf("zeroed free = %d, want 900", total)
	}
	a.MarkAllZeroed()
	if a.ZeroedFreeBlocks() != 1000 {
		t.Fatalf("MarkAllZeroed left %d", a.ZeroedFreeBlocks())
	}
	if a.FreeExtentCount() != 1 {
		t.Fatalf("extents after re-merge = %d", a.FreeExtentCount())
	}
}

func TestAlignedCarveForHugeDemand(t *testing.T) {
	a := New(3, 5000, true) // deliberately misaligned start
	runs := a.Alloc(nil, BlocksPerHuge*2)
	if runs == nil {
		t.Fatal("alloc failed")
	}
	if runs[0].Start%BlocksPerHuge != 0 {
		t.Fatalf("large allocation start %d not 2MiB aligned", runs[0].Start)
	}
}

func TestFragmentedImageYieldsManyRuns(t *testing.T) {
	a := New(0, 20000, true)
	rng := rand.New(rand.NewSource(3))
	// Churn: exhaust the pool with small allocations, then free every
	// other one so free space is only scattered holes.
	var held [][]Run
	for {
		n := uint64(1 + rng.Intn(16))
		r := a.Alloc(nil, n)
		if r == nil {
			break
		}
		held = append(held, r)
	}
	for i := 0; i < len(held); i += 2 {
		a.Free(nil, held[i])
	}
	big := a.Alloc(nil, 4000)
	if big == nil {
		t.Fatal("large alloc failed on fragmented image")
	}
	if len(big) < 5 {
		t.Fatalf("fragmented image gave %d runs, expected many", len(big))
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(0, 100, false)
	r := a.Alloc(nil, 10)
	a.Free(nil, r)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not detected")
		}
	}()
	a.Free(nil, r)
}

// Property: any interleaving of allocs and frees preserves non-overlap and
// block conservation, and allocated runs never overlap each other.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const total = 4096
		a := New(0, total, true)
		type slot struct{ runs []Run }
		var live []slot
		liveBlocks := uint64(0)
		owned := map[uint64]bool{}
		for op := 0; op < 400; op++ {
			if rng.Intn(2) == 0 {
				n := uint64(1 + rng.Intn(64))
				runs := a.Alloc(nil, n)
				if runs == nil {
					continue
				}
				for _, r := range runs {
					for b := r.Start; b < r.Start+r.Len; b++ {
						if owned[b] {
							return false // overlap with live allocation
						}
						owned[b] = true
					}
					liveBlocks += r.Len
				}
				live = append(live, slot{runs})
			} else if len(live) > 0 {
				i := rng.Intn(len(live))
				for _, r := range live[i].runs {
					for b := r.Start; b < r.Start+r.Len; b++ {
						delete(owned, b)
					}
					liveBlocks -= r.Len
				}
				a.Free(nil, live[i].runs)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if a.FreeBlocks() != total-liveBlocks {
				return false
			}
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
