// Package cpu models the cores of the simulated machine: the translation
// front-end (TLB, page walker with medium-dependent costs, accessed/dirty
// bit maintenance), data-access cost helpers, and the inter-processor
// interrupt machinery used for TLB shootdowns.
package cpu

import (
	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/pt"
	"daxvm/internal/sim"
	"daxvm/internal/tlb"
	"daxvm/internal/topo"
)

// pteLineCacheSize is how many distinct PTE cache lines a core keeps warm;
// it discriminates sequential from random access, reproducing Table II.
const pteLineCacheSize = 192

// Set is the machine's collection of cores.
type Set struct {
	Cores []*Core

	// Topo is the machine's NUMA layout (nil = flat single-node).
	Topo *topo.Topology

	// Trace receives TLB-shootdown events; Spans opens a causal span
	// per shootdown with its IPI cost typed as wait. Nil = disabled.
	Trace *obs.Tracer
	Spans *span.Collector

	// In-flight IPI window: ipiInflight remote IPIs have acknowledgement
	// deadlines no earlier than ipiInflightUntil. Overlapping shootdowns
	// accumulate; once virtual time passes the deadline the window is
	// empty. Scalar on purpose — tracking exact per-IPI deadlines would
	// allocate on the shootdown hot path for a gauge that only needs the
	// saturation envelope.
	ipiInflight      uint64
	ipiInflightUntil uint64
}

// NewSet creates n cores on a flat single-node machine.
func NewSet(n int) *Set {
	s := &Set{Cores: make([]*Core, n)}
	for i := range s.Cores {
		s.Cores[i] = &Core{
			ID:       i,
			TLB:      tlb.New(),
			pteLines: make(map[lineKey]struct{}, pteLineCacheSize),
		}
	}
	return s
}

// SetTopology assigns each core its home NUMA node. Walk and shootdown
// costs become distance-sensitive once the topology spans >1 node.
func (s *Set) SetTopology(tp *topo.Topology) {
	s.Topo = tp
	for _, c := range s.Cores {
		c.Node = tp.NodeOfCore(c.ID)
		c.multiNode = tp.Multi()
	}
}

// Core is one hardware thread.
type Core struct {
	ID  int
	TLB *tlb.TLB

	// Node is the core's home NUMA node; multiNode is true when the
	// machine spans more than one (so remote surcharges can apply).
	Node      mem.NodeID
	multiNode bool

	// bound is the sim thread currently executing on this core (IPI
	// targets are charged through it).
	bound *sim.Thread

	// PTE-line reuse cache for the walk cost model. The FIFO ring is a
	// fixed array so the per-walk touch path never allocates.
	pteLines   map[lineKey]struct{}
	pteRing    [pteLineCacheSize]lineKey
	pteHead    int // oldest entry when pteCount == pteLineCacheSize
	pteCount   int
	pteLineGen uint64

	// WalkHist, when set, records the latency of every charged page
	// walk (registered as the cpu.walk_latency histogram).
	WalkHist *obs.Histogram

	Stats CoreStats
}

// CoreStats aggregates per-core MMU behaviour (the DaxVM performance
// monitor reads these).
type CoreStats struct {
	WalkCycles     uint64
	Walks          uint64
	PMemWalks      uint64
	Faults         uint64
	IPIsSent       uint64
	IPIsReceived   uint64
	ShootdownWait  uint64
	DataReadBytes  uint64
	DataWriteBytes uint64
}

type lineKey struct {
	node *pt.Node
	line int
	gen  uint64
}

// Bind associates a sim thread with the core (the thread "runs on" it).
func (c *Core) Bind(t *sim.Thread) { c.bound = t }

// Unbind clears the association.
func (c *Core) Unbind() { c.bound = nil }

// Bound returns the running thread, if any.
func (c *Core) Bound() *sim.Thread { return c.bound }

// TranslateResult describes the outcome of a translation attempt.
type TranslateResult uint8

const (
	// TransOK: translation present with sufficient permission.
	TransOK TranslateResult = iota
	// TransNotPresent: no valid leaf entry — demand fault.
	TransNotPresent
	// TransNoWrite: present but write attempted on read-only mapping —
	// permission (dirty-tracking) fault.
	TransNoWrite
)

// Translate performs the hardware part of an access to va: TLB lookup,
// page walk on miss (charging medium-dependent cycles), A/D bit updates
// and TLB fill. The fault paths are the caller's (mm's) job.
func (c *Core) Translate(t *sim.Thread, as *pt.AddressSpace, va mem.VirtAddr, write bool) (pt.Entry, TranslateResult) {
	if e, ok := c.TLB.Lookup(va); ok {
		if write && !e.Writable {
			return e.PTE, TransNoWrite
		}
		if write && !e.PTE.Dirty() {
			// Hardware re-walks to set the dirty bit; approximate with
			// a short walk charge and update the cached entry.
			c.chargeWalk(t, as, va, true)
			e.PTE |= pt.BitDirty
			c.setLeafBits(t, as, va, true)
		}
		return e.PTE, TransOK
	}

	entry, level, writable, present := c.walk(t, as, va)
	if !present {
		return 0, TransNotPresent
	}
	if write && !writable {
		return entry, TransNoWrite
	}
	c.setLeafBits(t, as, va, write)
	if write {
		entry |= pt.BitDirty
	}
	if leaf, _ := as.LeafNode(va); leaf != nil && leaf.NoAD {
		// DaxVM file tables drop A/D maintenance entirely: the hardware
		// never needs the dirty-bit assist walk on these mappings, so
		// cache the translation as already-dirty.
		entry |= pt.BitDirty | pt.BitAccessed
	}
	c.TLB.Insert(va, entry, writable, level == pt.LevelPMD)
	return entry, TransOK
}

// walk performs a charged page walk.
func (c *Core) walk(t *sim.Thread, as *pt.AddressSpace, va mem.VirtAddr) (pt.Entry, int, bool, bool) {
	entry, level, writable, ok := as.Lookup(va)
	c.chargeWalkCost(t, as, va, level, ok)
	return entry, level, writable, ok
}

// chargeWalk charges a walk without resolving (dirty-bit re-walk).
func (c *Core) chargeWalk(t *sim.Thread, as *pt.AddressSpace, va mem.VirtAddr, _ bool) {
	_, level, _, ok := as.Lookup(va)
	c.chargeWalkCost(t, as, va, level, ok)
}

// Walk attribution labels, precomposed so the per-walk charge path never
// builds a string.
const (
	walkAborted        = "walk.aborted"
	walkHugeLabel      = "walk.huge"
	walkPTECachedDRAM  = "walk.pte_cached_dram"
	walkPTECachedPMem  = "walk.pte_cached_pmem"
	walkPTEMissDRAM    = "walk.pte_miss_dram"
	walkPTEMissDRAMRem = "walk.pte_miss_dram_remote"
	walkPTEMissPMem    = "walk.pte_miss_pmem"
	walkPTEMissPMemRem = "walk.pte_miss_pmem_remote"
)

// chargeWalkCost books one walk: the cycles go to the cycle account under
// "walk.<kind>" (nested below whatever path triggered the translation),
// the per-core stats, and the walk-latency histogram.
func (c *Core) chargeWalkCost(t *sim.Thread, as *pt.AddressSpace, va mem.VirtAddr, level int, ok bool) {
	cycles, label := c.walkCost(as, va, level, ok)
	t.ChargeAs(label, cycles)
	c.Stats.WalkCycles += cycles
	c.Stats.Walks++
	c.WalkHist.Observe(cycles)
}

// walkCost computes the cycle cost of a walk resolving at the given level,
// using the leaf node's medium and the PTE-line reuse cache, and names the
// walk kind for cycle attribution.
func (c *Core) walkCost(as *pt.AddressSpace, va mem.VirtAddr, level int, ok bool) (uint64, string) {
	if !ok {
		// Aborted walk; upper levels only.
		return cost.WalkUpperLevels + cost.WalkPTECachedDRAM, walkAborted
	}
	if level >= pt.LevelPMD {
		return cost.WalkHuge, walkHugeLabel
	}
	leaf, idx := as.LeafNode(va)
	if leaf == nil {
		return cost.WalkUpperLevels + cost.WalkPTECachedDRAM, walkPTECachedDRAM
	}
	hot := c.touchPTELine(leaf, idx/mem.PTEsPerCacheLine)
	// The leaf fetch reaches across the interconnect when the table node
	// lives on another socket's DIMMs; the cached cases stay cheap (the
	// line is already in this core's cache hierarchy).
	remote := c.multiNode && leaf.Loc.Node != c.Node
	if leaf.Loc.Medium == mem.PMem {
		c.Stats.PMemWalks++
		if hot {
			return cost.WalkUpperLevels + cost.WalkPTECachedPMem, walkPTECachedPMem
		}
		if remote {
			return cost.WalkUpperLevels + cost.WalkPTEMissPMem + cost.RemotePMemWalkExtra, walkPTEMissPMemRem
		}
		return cost.WalkUpperLevels + cost.WalkPTEMissPMem, walkPTEMissPMem
	}
	if hot {
		return cost.WalkUpperLevels + cost.WalkPTECachedDRAM, walkPTECachedDRAM
	}
	if remote {
		return cost.WalkUpperLevels + cost.WalkPTEMissDRAM + cost.RemoteDRAMWalkExtra, walkPTEMissDRAMRem
	}
	return cost.WalkUpperLevels + cost.WalkPTEMissDRAM, walkPTEMissDRAM
}

// touchPTELine records a PTE cache-line touch, reporting whether it was
// already warm.
func (c *Core) touchPTELine(node *pt.Node, line int) bool {
	k := lineKey{node, line, c.pteLineGen}
	if _, ok := c.pteLines[k]; ok {
		return true
	}
	if c.pteCount == pteLineCacheSize {
		delete(c.pteLines, c.pteRing[c.pteHead])
		c.pteRing[c.pteHead] = k
		c.pteHead = (c.pteHead + 1) % pteLineCacheSize
	} else {
		c.pteRing[(c.pteHead+c.pteCount)%pteLineCacheSize] = k
		c.pteCount++
	}
	c.pteLines[k] = struct{}{}
	return false
}

// DropPTELines invalidates the PTE-line reuse cache (after table
// migration or teardown the old lines are dead).
func (c *Core) DropPTELines() {
	c.pteLineGen++
	c.pteLines = make(map[lineKey]struct{}, pteLineCacheSize)
	c.pteHead, c.pteCount = 0, 0
}

// setLeafBits sets accessed (and dirty on write) bits on the leaf entry
// unless the owning node opts out (DaxVM file tables drop A/D upkeep).
func (c *Core) setLeafBits(t *sim.Thread, as *pt.AddressSpace, va mem.VirtAddr, write bool) {
	leaf, idx := as.LeafNode(va)
	if leaf == nil || leaf.NoAD {
		return
	}
	e := leaf.Entries[idx]
	ne := e | pt.BitAccessed
	if write {
		ne |= pt.BitDirty
	}
	if ne != e {
		leaf.SetEntry(t, idx, ne)
	}
}

// --- shootdowns -------------------------------------------------------------

// ShootdownKind selects the invalidation applied on targets.
type ShootdownKind uint8

const (
	// ShootPages invalidates an explicit page list.
	ShootPages ShootdownKind = iota
	// ShootRange invalidates a VA range.
	ShootRange
	// ShootFull flushes the whole TLB.
	ShootFull
)

// Shootdown performs a TLB shootdown from the calling thread's core to the
// target cores: the initiator also invalidates locally, sends IPIs, and
// waits for all acknowledgements; each running target is charged the
// handler cost. This is the inherently non-scalable operation that
// DaxVM's asynchronous batched unmapping amortizes.
func (s *Set) Shootdown(t *sim.Thread, initiator *Core, targets []*Core, kind ShootdownKind, pages []mem.VirtAddr, start, end mem.VirtAddr) {
	t.Yield() // synchronization point: remote clocks are examined
	began := t.Now()
	t.PushAttr("shootdown")
	defer t.PopAttr()
	s.Spans.Begin(t, "shootdown")
	defer s.Spans.End(t)
	var tag string
	var nPages uint64
	switch kind {
	case ShootPages:
		tag, nPages = "pages", uint64(len(pages))
	case ShootRange:
		tag, nPages = "range", uint64((end-start)/mem.PageSize)
	case ShootFull:
		tag = "full"
	}
	// Local invalidation.
	applyInval(initiator.TLB, kind, pages, start, end)
	switch kind {
	case ShootPages:
		t.ChargeAs("inval", cost.TLBInvlpgLocal*uint64(len(pages)))
	case ShootRange:
		t.ChargeAs("inval", cost.TLBInvlpgLocal*uint64((end-start)/mem.PageSize))
	case ShootFull:
		t.ChargeAs("inval", cost.TLBFlushLocal)
	}
	if len(targets) == 0 {
		s.Trace.Emit(obs.EvShootdown, initiator.ID, began, t.Now()-began, tag, nPages)
		return
	}
	initiator.Stats.IPIsSent++
	t.ChargeAs("ipi_send", cost.IPIBase+cost.IPIPerTarget*uint64(len(targets)))
	if initiator.multiNode {
		// Cross-socket IPIs pay the interconnect round trip per
		// other-node target (delivery + acknowledgement cross UPI).
		crossSocket := uint64(0)
		for _, tc := range targets {
			if tc != initiator && tc.Node != initiator.Node {
				crossSocket++
			}
		}
		if crossSocket > 0 {
			t.ChargeAs("ipi_send", cost.IPICrossSocketPerTarget*crossSocket)
		}
	}
	remote := 0
	for _, tc := range targets {
		if tc == initiator {
			continue
		}
		applyInval(tc.TLB, kind, pages, start, end)
		tc.Stats.IPIsReceived++
		remote++
		if b := tc.bound; b != nil {
			// The target handles the interrupt wherever it is in its
			// own timeline; charge the handler there. The initiator's
			// wait is modeled by the fixed acknowledgement latency
			// below — NOT by the target's (possibly far-ahead) clock,
			// which in the DES only reflects locally-buffered progress.
			b.AddRemote("shootdown.ipi_handler", cost.IPITargetHandler)
		}
	}
	if remote > 0 {
		if t.Now() >= s.ipiInflightUntil {
			s.ipiInflight = uint64(remote)
		} else {
			s.ipiInflight += uint64(remote)
		}
		s.ipiInflightUntil = t.Now() + cost.IPIAckLatency
		initiator.Stats.ShootdownWait += cost.IPIAckLatency
		t.ChargeAs("ipi_wait", cost.IPIAckLatency)
	}
	s.Trace.Emit(obs.EvShootdown, initiator.ID, began, t.Now()-began, tag, nPages)
}

// InflightIPIs reports how many remote shootdown IPIs are still awaiting
// acknowledgement at virtual time now — the IPI saturation gauge. The
// window is an envelope: overlapping shootdowns accumulate until the
// latest acknowledgement deadline passes, then the count drops to zero.
// Pure read for gauge sampling.
func (s *Set) InflightIPIs(now uint64) uint64 {
	if now >= s.ipiInflightUntil {
		return 0
	}
	return s.ipiInflight
}

func applyInval(tb *tlb.TLB, kind ShootdownKind, pages []mem.VirtAddr, start, end mem.VirtAddr) {
	switch kind {
	case ShootPages:
		for _, p := range pages {
			tb.InvalidatePage(p)
		}
	case ShootRange:
		tb.InvalidateRange(start, end)
	case ShootFull:
		tb.FlushAll()
	}
}
