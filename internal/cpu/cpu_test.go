package cpu

import (
	"testing"

	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/pt"
	"daxvm/internal/sim"
)

func newAS() *pt.AddressSpace {
	return pt.NewAddressSpace(
		func(_ *sim.Thread, level int) *pt.Node { return pt.NewNode(level, mem.Loc{Medium: mem.DRAM}) },
		nil,
	)
}

func run(fn func(t *sim.Thread)) uint64 {
	e := sim.New()
	e.Go("t", 0, 0, fn)
	return e.Run()
}

func TestTranslateHitAndMiss(t *testing.T) {
	s := NewSet(1)
	c := s.Cores[0]
	as := newAS()
	run(func(th *sim.Thread) {
		va := mem.VirtAddr(0x1000_0000)
		as.Map(th, va, pt.MakeEntry(5, mem.PermRead|mem.PermWrite, true, false), pt.LevelPTE)

		e, res := c.Translate(th, as, va, false)
		if res != TransOK || e.PFN() != 5 {
			t.Errorf("first translate: %v pfn=%d", res, e.PFN())
		}
		if c.TLB.Stats.Misses != 1 {
			t.Errorf("misses = %d", c.TLB.Stats.Misses)
		}
		_, res = c.Translate(th, as, va, false)
		if res != TransOK || c.TLB.Stats.Hits != 1 {
			t.Errorf("second translate should hit: %v hits=%d", res, c.TLB.Stats.Hits)
		}
		if _, res := c.Translate(th, as, va+mem.PageSize, false); res != TransNotPresent {
			t.Errorf("unmapped VA: %v", res)
		}
	})
}

func TestWriteProtectFaultDetected(t *testing.T) {
	s := NewSet(1)
	c := s.Cores[0]
	as := newAS()
	run(func(th *sim.Thread) {
		va := mem.VirtAddr(0x2000_0000)
		as.Map(th, va, pt.MakeEntry(9, mem.PermRead, true, false), pt.LevelPTE)
		if _, res := c.Translate(th, as, va, false); res != TransOK {
			t.Errorf("read should pass: %v", res)
		}
		if _, res := c.Translate(th, as, va, true); res != TransNoWrite {
			t.Errorf("write to RO should fault: %v", res)
		}
	})
}

func TestADBitsMaintainedUnlessNoAD(t *testing.T) {
	s := NewSet(1)
	c := s.Cores[0]
	as := newAS()
	run(func(th *sim.Thread) {
		va := mem.VirtAddr(0x3000_0000)
		as.Map(th, va, pt.MakeEntry(1, mem.PermRead|mem.PermWrite, true, false), pt.LevelPTE)
		c.Translate(th, as, va, true)
		leaf, idx := as.LeafNode(va)
		if !leaf.Entries[idx].Accessed() || !leaf.Entries[idx].Dirty() {
			t.Error("A/D bits not set on write")
		}

		// NoAD node: bits stay clear.
		va2 := va + mem.HugeSize
		as.Map(th, va2, pt.MakeEntry(2, mem.PermRead|mem.PermWrite, true, false), pt.LevelPTE)
		leaf2, _ := as.LeafNode(va2)
		leaf2.NoAD = true
		c.Translate(th, as, va2, true)
		_, idx2 := as.LeafNode(va2)
		if leaf2.Entries[idx2].Accessed() || leaf2.Entries[idx2].Dirty() {
			t.Error("NoAD node had A/D bits set")
		}
	})
}

func TestWalkCostSeqVsRandAndMedium(t *testing.T) {
	// The Table II reproduction in miniature: random access to
	// PMem-resident tables must cost far more than sequential access to
	// DRAM-resident tables.
	type cfg struct {
		medium mem.Medium
		stride uint64 // pages
	}
	walkCost := func(cf cfg) uint64 {
		s := NewSet(1)
		c := s.Cores[0]
		as := pt.NewAddressSpace(
			func(_ *sim.Thread, level int) *pt.Node { return pt.NewNode(level, mem.Loc{Medium: cf.medium}) },
			nil,
		)
		run(func(th *sim.Thread) {
			pagesTotal := uint64(16384)
			for i := uint64(0); i < pagesTotal; i++ {
				as.Map(th, mem.VirtAddr(i*mem.PageSize), pt.MakeEntry(mem.PFN(i), mem.PermRead, true, false), pt.LevelPTE)
			}
			c.Stats = CoreStats{}
			c.TLB.FlushAll()
			// Touch pages with the given stride; large strides defeat
			// both the TLB and the PTE-line cache.
			idx := uint64(0)
			for i := uint64(0); i < 4096; i++ {
				idx = (idx + cf.stride) % pagesTotal
				c.Translate(th, as, mem.VirtAddr(idx*mem.PageSize), false)
			}
		})
		if c.Stats.Walks == 0 {
			t.Fatal("no walks recorded")
		}
		return c.Stats.WalkCycles / c.Stats.Walks
	}

	dramSeq := walkCost(cfg{mem.DRAM, 1})
	dramRand := walkCost(cfg{mem.DRAM, 4099}) // coprime stride, defeats caches
	pmemSeq := walkCost(cfg{mem.PMem, 1})
	pmemRand := walkCost(cfg{mem.PMem, 4099})

	if !(dramSeq < dramRand && dramRand < pmemRand) {
		t.Errorf("ordering violated: dramSeq=%d dramRand=%d pmemRand=%d", dramSeq, dramRand, pmemRand)
	}
	if !(pmemSeq < pmemRand) {
		t.Errorf("pmemSeq=%d should be below pmemRand=%d", pmemSeq, pmemRand)
	}
	// Table II magnitudes (generous tolerance): 28/111/103/821.
	approx := func(got, want uint64) bool {
		return got > want/2 && got < want*2
	}
	if !approx(dramSeq, 28) || !approx(dramRand, 111) || !approx(pmemSeq, 103) || !approx(pmemRand, 821) {
		t.Errorf("Table II calibration off: dram %d/%d pmem %d/%d (want ~28/111, ~103/821)",
			dramSeq, dramRand, pmemSeq, pmemRand)
	}
}

func TestShootdownChargesAndInvalidates(t *testing.T) {
	s := NewSet(3)
	e := sim.New()
	as := newAS()
	va := mem.VirtAddr(0x4000_0000)

	var initiatorEnd, targetEnd uint64
	tInit := e.Go("init", 0, 0, func(th *sim.Thread) {
		s.Cores[0].Bind(th)
		as.Map(th, va, pt.MakeEntry(1, mem.PermRead, true, false), pt.LevelPTE)
		s.Cores[0].Translate(th, as, va, false)
		// Target core warms its TLB too via its own thread below; give
		// it time.
		th.Sleep(50_000)
		s.Shootdown(th, s.Cores[0], []*Core{s.Cores[1]}, ShootPages, []mem.VirtAddr{va}, 0, 0)
		initiatorEnd = th.Now()
	})
	_ = tInit
	e.Go("target", 1, 0, func(th *sim.Thread) {
		s.Cores[1].Bind(th)
		s.Cores[1].Translate(th, as, va, false)
		th.Sleep(200_000)
		targetEnd = th.Now()
	})
	e.Run()

	if s.Cores[1].TLB.Len() != 0 {
		t.Error("target TLB entry survived shootdown")
	}
	if s.Cores[1].Stats.IPIsReceived != 1 || s.Cores[0].Stats.IPIsSent != 1 {
		t.Error("IPI counters wrong")
	}
	if targetEnd <= 200_000 {
		t.Errorf("target was not charged the handler: end=%d", targetEnd)
	}
	if initiatorEnd < 50_000+cost.IPIBase {
		t.Errorf("initiator did not pay IPI cost: end=%d", initiatorEnd)
	}
}

func TestShootdownFullFlushCheaperThanManyPages(t *testing.T) {
	s := NewSet(2)
	manyPages := make([]mem.VirtAddr, 128)
	for i := range manyPages {
		manyPages[i] = mem.VirtAddr(i * mem.PageSize)
	}
	runOnce := func(kind ShootdownKind, pages []mem.VirtAddr) uint64 {
		e := sim.New()
		var end uint64
		e.Go("i", 0, 0, func(th *sim.Thread) {
			s.Cores[0].Bind(th)
			s.Shootdown(th, s.Cores[0], []*Core{s.Cores[1]}, kind, pages, 0, mem.VirtAddr(len(pages)*mem.PageSize))
			end = th.Now()
		})
		e.Run()
		return end
	}
	pageCost := runOnce(ShootPages, manyPages)
	fullCost := runOnce(ShootFull, nil)
	if fullCost >= pageCost {
		t.Errorf("full flush (%d) should be cheaper than 128 invlpgs (%d)", fullCost, pageCost)
	}
}
