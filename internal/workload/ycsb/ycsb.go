// Package ycsb implements the YCSB workload generator: a zipfian request
// distribution over a keyspace and the standard core workload mixes
// (A-F plus Load), as used by the paper's Fig. 9c RocksDB evaluation.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is one generated operation.
type OpKind uint8

const (
	// OpRead is a point lookup.
	OpRead OpKind = iota
	// OpUpdate overwrites an existing key.
	OpUpdate
	// OpInsert adds a new key.
	OpInsert
	// OpScan reads a short ordered range.
	OpScan
	// OpRMW is read-modify-write.
	OpRMW
)

// Op is one request.
type Op struct {
	Kind    OpKind
	Key     uint64
	ScanLen int
}

// Mix is a workload definition.
type Mix struct {
	Name                            string
	Read, Update, Insert, Scan, RMW int // percentages
	ReadLatest                      bool
}

// Standard YCSB core workloads.
var (
	WorkloadLoad = Mix{Name: "load", Insert: 100}
	WorkloadA    = Mix{Name: "a", Read: 50, Update: 50}
	WorkloadB    = Mix{Name: "b", Read: 95, Update: 5}
	WorkloadC    = Mix{Name: "c", Read: 100}
	WorkloadD    = Mix{Name: "d", Read: 95, Insert: 5, ReadLatest: true}
	WorkloadE    = Mix{Name: "e", Scan: 95, Insert: 5}
	WorkloadF    = Mix{Name: "f", Read: 50, RMW: 50}
)

// ByName resolves a workload id ("load", "a".."f").
func ByName(name string) (Mix, error) {
	for _, m := range []Mix{WorkloadLoad, WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF} {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Generator produces operations for one mix.
type Generator struct {
	mix      Mix
	rng      *rand.Rand
	zipf     *zipfian
	inserted uint64
}

// NewGenerator creates a generator over an initial keyspace of n keys.
func NewGenerator(mix Mix, keys uint64, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{mix: mix, rng: rng, inserted: keys}
	if keys > 0 {
		g.zipf = newZipfian(rng, keys, 0.99)
	}
	return g
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Intn(100)
	m := g.mix
	switch {
	case r < m.Read:
		return Op{Kind: OpRead, Key: g.chooseKey()}
	case r < m.Read+m.Update:
		return Op{Kind: OpUpdate, Key: g.chooseKey()}
	case r < m.Read+m.Update+m.Insert:
		k := g.inserted
		g.inserted++
		return Op{Kind: OpInsert, Key: k}
	case r < m.Read+m.Update+m.Insert+m.Scan:
		return Op{Kind: OpScan, Key: g.chooseKey(), ScanLen: 1 + g.rng.Intn(100)}
	default:
		return Op{Kind: OpRMW, Key: g.chooseKey()}
	}
}

// chooseKey picks a key: zipfian over the live keyspace, or latest-skewed
// for workload D.
func (g *Generator) chooseKey() uint64 {
	if g.inserted == 0 {
		return 0
	}
	if g.mix.ReadLatest {
		// Skew toward recently inserted keys.
		d := uint64(g.rng.ExpFloat64() * float64(g.inserted) / 16)
		if d >= g.inserted {
			d = g.inserted - 1
		}
		return g.inserted - 1 - d
	}
	if g.zipf == nil {
		return g.rng.Uint64() % g.inserted
	}
	k := g.zipf.next()
	if k >= g.inserted {
		k = g.rng.Uint64() % g.inserted
	}
	return k
}

// Inserted reports the current keyspace size.
func (g *Generator) Inserted() uint64 { return g.inserted }

// zipfian is the standard Gray et al. rejection-inversion generator.
type zipfian struct {
	rng               *rand.Rand
	n                 uint64
	theta             float64
	alpha, zetan, eta float64
	zeta2             float64
}

func newZipfian(rng *rand.Rand, n uint64, theta float64) *zipfian {
	z := &zipfian{rng: rng, n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	// Cap the exact sum; beyond the cap use the integral approximation.
	const cap0 = 100000
	m := n
	if m > cap0 {
		m = cap0
	}
	for i := uint64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

func (z *zipfian) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
