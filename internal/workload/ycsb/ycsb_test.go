package ycsb

import "testing"

func TestMixProportions(t *testing.T) {
	g := NewGenerator(WorkloadA, 10_000, 1)
	counts := map[OpKind]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	rf := float64(counts[OpRead]) / n
	uf := float64(counts[OpUpdate]) / n
	if rf < 0.45 || rf > 0.55 || uf < 0.45 || uf > 0.55 {
		t.Fatalf("workload A mix off: read %.2f update %.2f", rf, uf)
	}
}

func TestLoadIsAllInserts(t *testing.T) {
	g := NewGenerator(WorkloadLoad, 0, 1)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind != OpInsert {
			t.Fatalf("load produced %v", op.Kind)
		}
		if op.Key != uint64(i) {
			t.Fatalf("insert keys not sequential: %d at %d", op.Key, i)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewGenerator(WorkloadC, 100_000, 2)
	counts := map[uint64]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Top-10 hottest keys must absorb a large share (zipf 0.99).
	var top int
	for k := uint64(0); k < 10; k++ {
		top += counts[k]
	}
	if float64(top)/n < 0.10 {
		t.Fatalf("zipfian not skewed: top-10 share %.3f", float64(top)/n)
	}
	// And every key must be in range.
	for k := range counts {
		if k >= 100_000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestReadLatestSkewsRecent(t *testing.T) {
	g := NewGenerator(WorkloadD, 10_000, 3)
	recent := 0
	reads := 0
	for i := 0; i < 20_000; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		reads++
		if op.Key >= g.Inserted()-g.Inserted()/4 {
			recent++
		}
	}
	if float64(recent)/float64(reads) < 0.5 {
		t.Fatalf("read-latest not skewed: %.2f recent", float64(recent)/float64(reads))
	}
}

func TestScanLengths(t *testing.T) {
	g := NewGenerator(WorkloadE, 1000, 4)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
			t.Fatalf("scan length %d", op.ScanLen)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"load", "a", "b", "c", "d", "e", "f"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("zzz"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(WorkloadF, 1000, 9)
	b := NewGenerator(WorkloadF, 1000, 9)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generator not deterministic")
		}
	}
}
