// Package corpus builds synthetic file sets on a simulated kernel: the
// fixed-size file pools of the micro-benchmarks, the web-page sets of the
// Apache experiments and a Linux-source-tree-like corpus for text search
// (the paper's tree: ~68 K mostly-small files plus a few large git packs).
package corpus

import (
	"fmt"
	"math/rand"

	"daxvm/internal/kernel"
	"daxvm/internal/sim"
)

// Fixed creates n files of exactly size bytes named prefix/%06d and
// returns their paths.
func Fixed(t *sim.Thread, p *kernel.Proc, prefix string, n int, size uint64) []string {
	paths := make([]string, n)
	buf := payload(size)
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("%s/%06d", prefix, i)
		fd, err := p.Create(t, path)
		if err != nil {
			panic(err)
		}
		if size > 0 {
			if err := p.Append(t, fd, buf); err != nil {
				panic(err)
			}
		}
		p.Close(t, fd)
		paths[i] = path
	}
	return paths
}

// TreeConfig shapes a source-tree-like corpus.
type TreeConfig struct {
	// Files is the number of source files (the Linux tree has ~68 K; the
	// default scales down to 8 K).
	Files int
	// LargeFiles models git pack files (few, tens of MB -> scaled).
	LargeFiles int
	// LargeBytes is the size of each large file.
	LargeBytes uint64
	// Seed fixes sizes and needle placement.
	Seed int64
	// Needle is planted in a deterministic subset of files so a search
	// has verifiable hits.
	Needle string
	// NeedleEvery plants the needle in every Nth file.
	NeedleEvery int
}

// DefaultTree mirrors the paper's Linux-tree corpus at simulator scale.
func DefaultTree() TreeConfig {
	return TreeConfig{
		Files:       8000,
		LargeFiles:  3,
		LargeBytes:  24 << 20,
		Seed:        41,
		Needle:      "daxvm_mmap",
		NeedleEvery: 97,
	}
}

// Tree is a created corpus.
type Tree struct {
	Paths      []string
	TotalBytes uint64
	Needles    int
	Needle     string
}

// BuildTree creates the corpus through the kernel's syscall interface.
// Source-file sizes follow the Linux tree's profile: median ~4-10 KiB with
// a tail to ~200 KiB.
func BuildTree(t *sim.Thread, p *kernel.Proc, cfg TreeConfig) *Tree {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tree := &Tree{Needle: cfg.Needle}
	for i := 0; i < cfg.Files; i++ {
		size := sourceFileSize(rng)
		path := fmt.Sprintf("linux/%05d.c", i)
		fd, err := p.Create(t, path)
		if err != nil {
			panic(err)
		}
		data := payload(size)
		if cfg.Needle != "" && cfg.NeedleEvery > 0 && i%cfg.NeedleEvery == 0 {
			copy(data[len(data)/2:], cfg.Needle)
			tree.Needles++
		}
		if err := p.Append(t, fd, data); err != nil {
			panic(err)
		}
		p.Close(t, fd)
		tree.Paths = append(tree.Paths, path)
		tree.TotalBytes += size
	}
	for i := 0; i < cfg.LargeFiles; i++ {
		path := fmt.Sprintf("linux/.git/pack-%d", i)
		fd, err := p.Create(t, path)
		if err != nil {
			panic(err)
		}
		chunk := payload(1 << 20)
		for written := uint64(0); written < cfg.LargeBytes; written += 1 << 20 {
			if err := p.Append(t, fd, chunk); err != nil {
				panic(err)
			}
		}
		p.Close(t, fd)
		tree.Paths = append(tree.Paths, path)
		tree.TotalBytes += cfg.LargeBytes
	}
	return tree
}

// sourceFileSize draws from a source-file-like distribution.
func sourceFileSize(rng *rand.Rand) uint64 {
	switch r := rng.Intn(100); {
	case r < 25:
		return uint64(1024 + rng.Intn(3*1024))
	case r < 60:
		return uint64(4*1024 + rng.Intn(12*1024))
	case r < 85:
		return uint64(16*1024 + rng.Intn(32*1024))
	case r < 97:
		return uint64(48*1024 + rng.Intn(80*1024))
	default:
		return uint64(128*1024 + rng.Intn(128*1024))
	}
}

// payload builds deterministic printable content.
func payload(size uint64) []byte {
	b := make([]byte, size)
	const src = "int daxvm_attach(struct vm_area_struct *vma, pgd_t *pgd);\n"
	for i := range b {
		b[i] = src[i%len(src)]
	}
	return b
}
