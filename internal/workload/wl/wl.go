// Package wl holds the access-interface abstraction shared by every
// workload: the same logical file operation (read a file once, write a
// record, append a block) expressed through read/write system calls,
// POSIX mmap (lazy or populated), or the daxvm_mmap variants — the axes
// of every figure in the paper.
package wl

import (
	"daxvm/internal/core"
	"daxvm/internal/kernel"
	"daxvm/internal/latr"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/sim"

	hw "daxvm/internal/cpu"
)

// Iface selects how a workload touches file data.
type Iface struct {
	// Name labels result rows ("read", "mmap", "populate", "daxvm", ...).
	Name string
	// Syscall uses read(2)/write(2) instead of mapping.
	Syscall bool
	// DaxVM uses daxvm_mmap; otherwise POSIX mmap.
	DaxVM bool
	// Populate adds MAP_POPULATE to POSIX mmap.
	Populate bool
	// Ephemeral, AsyncUnmap, NoSync are the daxvm_mmap flags.
	Ephemeral  bool
	AsyncUnmap bool
	NoSync     bool
	// LATR routes munmap through the LATR baseline.
	LATR bool
}

// The standard interface set of the evaluation.
var (
	Read           = Iface{Name: "read", Syscall: true}
	Mmap           = Iface{Name: "mmap"}
	MmapPopulate   = Iface{Name: "populate", Populate: true}
	MmapLATR       = Iface{Name: "latr", Populate: true, LATR: true}
	DaxVMTables    = Iface{Name: "daxvm-ft"}                                               // file tables only
	DaxVMEph       = Iface{Name: "daxvm-eph", Ephemeral: true}                             // + ephemeral heap
	DaxVMAsync     = Iface{Name: "daxvm-async", Ephemeral: true, AsyncUnmap: true}         // + async unmap
	DaxVMFull      = Iface{Name: "daxvm", Ephemeral: true, AsyncUnmap: true, NoSync: true} // everything
	DaxVMNoSync    = Iface{Name: "daxvm-nosync", NoSync: true}                             // long-lived mappings
	DaxVMAsyncOnly = Iface{Name: "daxvm-asynconly", AsyncUnmap: true}                      // ablation
)

func init() {
	// The daxvm variants all go through daxvm_mmap.
	for _, p := range []*Iface{&DaxVMTables, &DaxVMEph, &DaxVMAsync, &DaxVMFull, &DaxVMNoSync, &DaxVMAsyncOnly} {
		p.DaxVM = true
	}
}

// Flags converts the Iface to daxvm_mmap flags.
func (i Iface) Flags() core.Flags {
	var f core.Flags
	if i.Ephemeral {
		f |= core.FlagEphemeral
	}
	if i.AsyncUnmap {
		f |= core.FlagUnmapAsync
	}
	if i.NoSync {
		f |= core.FlagNoMsync
	}
	return f
}

// MapFlags converts the Iface to POSIX mmap flags.
func (i Iface) MapFlags() mm.MapFlags {
	f := mm.MapShared | mm.MapSync
	if i.Populate {
		f |= mm.MapPopulate
	}
	return f
}

// Env bundles what a workload thread needs.
type Env struct {
	Proc *kernel.Proc
	LATR *latr.LATR
	// Buf is a reusable read(2) destination buffer.
	Buf []byte
}

// ConsumeFileOnce performs the paper's ephemeral access: open the file,
// touch all its bytes once through the interface, close it. It returns
// the number of bytes processed.
func (e *Env) ConsumeFileOnce(t *sim.Thread, c *hw.Core, path string, iface Iface, kind kernel.AccessKind) uint64 {
	p := e.Proc
	fd, err := p.Open(t, path)
	if err != nil {
		panic(err)
	}
	size := p.Inode(fd).Size
	var processed uint64
	switch {
	case iface.Syscall:
		if uint64(len(e.Buf)) < size {
			e.Buf = make([]byte, size)
		}
		n, err := p.ReadAt(t, fd, 0, e.Buf[:size])
		if err != nil {
			panic(err)
		}
		kernel.ConsumeBuffer(t, n)
		processed = n
	case iface.DaxVM:
		va, err := p.DaxvmMmap(t, c, fd, 0, size, mem.PermRead, iface.Flags())
		if err != nil {
			panic(err)
		}
		if err := p.AccessMapped(t, c, va, size, kind); err != nil {
			panic(err)
		}
		if err := p.DaxvmMunmap(t, c, va); err != nil {
			panic(err)
		}
		processed = size
	default:
		va, err := p.Mmap(t, c, fd, 0, size, mem.PermRead, iface.MapFlags())
		if err != nil {
			panic(err)
		}
		if err := p.AccessMapped(t, c, va, size, kind); err != nil {
			panic(err)
		}
		if iface.LATR && e.LATR != nil {
			if err := e.LATR.Munmap(t, p.MM, c, va, size); err != nil {
				panic(err)
			}
			p.K.ICache.Put(t, p.Inode(fd)) // drop the mapping reference
			e.LATR.Tick(t, c)
		} else {
			if err := p.Munmap(t, c, va, size); err != nil {
				panic(err)
			}
		}
		processed = size
	}
	p.Close(t, fd)
	return processed
}
