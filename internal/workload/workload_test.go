// Package workload_test runs end-to-end sanity checks of the application
// models at miniature scale.
package workload_test

import (
	"testing"

	"daxvm/internal/kernel"
	"daxvm/internal/workload/pmemrocks"
	"daxvm/internal/workload/predis"
	"daxvm/internal/workload/textsearch"
	"daxvm/internal/workload/webserver"
	"daxvm/internal/workload/wl"
	"daxvm/internal/workload/ycsb"

	"daxvm/internal/workload/corpus"
)

func TestWebserverAllInterfaces(t *testing.T) {
	var results []float64
	for _, iface := range []wl.Iface{wl.Read, wl.Mmap, wl.MmapPopulate, wl.MmapLATR, wl.DaxVMAsync} {
		k := kernel.Boot(kernel.Config{Cores: 4, DeviceBytes: 512 << 20, DaxVM: iface.DaxVM})
		r := webserver.Run(k, webserver.Config{
			Threads: 4, PageBytes: 32 << 10, Pages: 32,
			RequestsPerThread: 50, Iface: iface, Seed: 1,
		})
		if r.Requests != 200 || r.Throughput <= 0 {
			t.Fatalf("%s: %+v", iface.Name, r)
		}
		results = append(results, r.Throughput)
	}
	// DaxVM must beat baseline mmap.
	if results[4] <= results[1] {
		t.Fatalf("daxvm (%f) not faster than mmap (%f)", results[4], results[1])
	}
}

func TestTextSearchFindsExactlyPlantedNeedles(t *testing.T) {
	cfg := corpus.DefaultTree()
	cfg.Files = 400
	cfg.LargeFiles = 0
	want := 0
	for i := 0; i < cfg.Files; i += cfg.NeedleEvery {
		want++
	}
	for _, iface := range []wl.Iface{wl.Read, wl.DaxVMAsync} {
		k := kernel.Boot(kernel.Config{Cores: 2, DeviceBytes: 512 << 20, DaxVM: iface.DaxVM})
		r := textsearch.Run(k, textsearch.Config{Threads: 2, Tree: cfg, Iface: iface})
		if int(r.Matches) != want {
			t.Fatalf("%s found %d matches, want %d", iface.Name, r.Matches, want)
		}
	}
}

func TestPredisVerifies(t *testing.T) {
	k := kernel.Boot(kernel.Config{Cores: 1, DeviceBytes: 512 << 20, DaxVM: true})
	r := predis.Run(k, predis.Config{
		CacheBytes: 64 << 20, ValueBytes: 16 << 10,
		Gets: 2000, Buckets: 4, Iface: wl.DaxVMNoSync, Seed: 1,
	})
	if !r.Verified {
		t.Fatal("predis gets did not verify against media")
	}
	for _, b := range r.Bucket {
		if b <= 0 {
			t.Fatalf("empty bucket: %v", r.Bucket)
		}
	}
}

func TestPmemRocksLoadAndRun(t *testing.T) {
	for _, iface := range []wl.Iface{wl.Mmap, wl.DaxVMNoSync} {
		k := kernel.Boot(kernel.Config{Cores: 3, DeviceBytes: 1 << 30, DaxVM: iface.DaxVM, Prezero: iface.DaxVM})
		r := pmemrocks.Run(k, pmemrocks.Config{
			Mix: ycsb.WorkloadA, InitialRecords: 2000, Ops: 2000,
			Threads: 2, RecordBytes: 4 << 10, MemtableBytes: 2 << 20,
			Iface: iface, Seed: 2,
		})
		if !r.Verified {
			t.Fatalf("%s: reads did not verify", iface.Name)
		}
		if r.Flushes == 0 {
			t.Fatalf("%s: no memtable flushes", iface.Name)
		}
		if r.Throughput <= 0 {
			t.Fatalf("%s: %+v", iface.Name, r)
		}
	}
}

func TestPmemRocksCompactionReclaims(t *testing.T) {
	k := kernel.Boot(kernel.Config{Cores: 2, DeviceBytes: 1 << 30, DaxVM: true, Prezero: true})
	r := pmemrocks.Run(k, pmemrocks.Config{
		Mix: ycsb.WorkloadLoad, InitialRecords: 0, Ops: 12_000,
		Threads: 1, RecordBytes: 4 << 10, MemtableBytes: 2 << 20,
		Iface: wl.DaxVMNoSync, Seed: 3,
	})
	if r.Compactions == 0 {
		t.Fatalf("no compactions after %d inserts (%d flushes, %d ssts)", r.Ops, r.Flushes, r.SSTables)
	}
	// Compaction deletions feed the pre-zero daemon.
	if k.Dax.Prezero() == nil || k.Dax.Prezero().Stats.Intercepted == 0 {
		t.Fatal("compaction did not feed the pre-zero daemon")
	}
}
