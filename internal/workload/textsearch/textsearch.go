// Package textsearch models the paper's ag (The Silver Searcher)
// experiment: worker threads pull files off a shared queue, scan them for
// a needle string in place (mapped access never moves data out of PMem),
// and move on — Fig. 9a.
package textsearch

import (
	"bytes"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/kernel"
	"daxvm/internal/latr"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/wl"
)

// Config shapes the search run.
type Config struct {
	Threads int
	Tree    corpus.TreeConfig
	Iface   wl.Iface
}

// DefaultConfig mirrors Fig. 9a at simulator scale.
func DefaultConfig() Config {
	return Config{Threads: 16, Tree: corpus.DefaultTree(), Iface: wl.Read}
}

// Result reports the outcome.
type Result struct {
	Files      int
	Matches    uint64
	Bytes      uint64
	Cycles     uint64
	Throughput float64 // MB scanned per virtual second
}

// Run executes the search. Matches are verified against the planted
// needle count so the data path is provably real.
func Run(k *kernel.Kernel, cfg Config) Result {
	proc := k.NewProc()
	var tree *corpus.Tree
	k.Setup(func(t *sim.Thread) {
		tree = corpus.BuildTree(t, proc, cfg.Tree)
	})

	var l *latr.LATR
	if cfg.Iface.LATR {
		l = latr.New(k.Cpus)
	}

	matches := make([]uint64, cfg.Threads)
	needle := []byte(tree.Needle)
	for w := 0; w < cfg.Threads; w++ {
		w := w
		proc.Spawn("ag", w, 0, func(t *sim.Thread, c *cpu.Core) {
			env := &wl.Env{Proc: proc, LATR: l}
			// Static partitioning of the file list.
			for i := w; i < len(tree.Paths); i += cfg.Threads {
				path := tree.Paths[i]
				if cfg.Iface.Syscall {
					n := env.ConsumeFileOnce(t, c, path, cfg.Iface, kernel.KindSum)
					// Scan the private buffer for the needle.
					if bytes.Contains(env.Buf[:n], needle) {
						matches[w]++
					}
					t.Charge(perFileFixedWork)
					continue
				}
				// Mapped scan: translate + stream loads from PMem, and
				// really check the bytes on media.
				fd, err := proc.Open(t, path)
				if err != nil {
					panic(err)
				}
				size := proc.Inode(fd).Size
				var va mem.VirtAddr
				if cfg.Iface.DaxVM {
					va, err = proc.DaxvmMmap(t, c, fd, 0, size, mem.PermRead, cfg.Iface.Flags())
				} else {
					va, err = proc.Mmap(t, c, fd, 0, size, mem.PermRead, cfg.Iface.MapFlags())
				}
				if err != nil {
					panic(err)
				}
				if err := proc.AccessMapped(t, c, va, size, kernel.KindSum); err != nil {
					panic(err)
				}
				if fileContains(proc, t, fd, needle, size) {
					matches[w]++
				}
				switch {
				case cfg.Iface.DaxVM:
					err = proc.DaxvmMunmap(t, c, va)
				case cfg.Iface.LATR:
					err = l.Munmap(t, proc.MM, c, va, size)
					proc.K.ICache.Put(t, proc.Inode(fd))
					l.Tick(t, c)
				default:
					err = proc.Munmap(t, c, va, size)
				}
				if err != nil {
					panic(err)
				}
				proc.Close(t, fd)
				t.Charge(perFileFixedWork)
			}
		})
	}
	cycles := k.Run()
	var total uint64
	for _, m := range matches {
		total += m
	}
	return Result{
		Files:      len(tree.Paths),
		Matches:    total,
		Bytes:      tree.TotalBytes,
		Cycles:     cycles,
		Throughput: float64(tree.TotalBytes) / (1 << 20) * float64(cost.CyclesPerSecond) / float64(cycles),
	}
}

// fileContains checks media content directly (the mapped data IS the
// file), so matches verify the whole pipeline.
func fileContains(p *kernel.Proc, t *sim.Thread, fd int, needle []byte, size uint64) bool {
	in := p.Inode(fd)
	dev := p.K.Dev
	for _, e := range p.K.FS.Extents(in) {
		n := e.Len * mem.PageSize
		if off := e.File * mem.PageSize; off+n > size {
			if size <= off {
				break
			}
			n = size - off
		}
		if bytes.Contains(dev.Bytes(mem.PhysAddr(e.Phys*mem.PageSize), n), needle) {
			return true
		}
	}
	return false
}

// perFileFixedWork: pattern-compile amortization, result bookkeeping.
const perFileFixedWork = 2_000
