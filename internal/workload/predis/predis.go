// Package predis models P-Redis (the NVSL persistent-memory port of
// Redis) for the paper's Fig. 9b availability experiment: the server's
// key-value cache and index hash table live in PMem files; at boot the
// server maps both and serves gets whose early latency is dominated by
// mapping-population faults — unless DaxVM attaches pre-populated file
// tables and throughput is maximal instantly.
package predis

import (
	"encoding/binary"
	"math/rand"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/kernel"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
	"daxvm/internal/workload/wl"
)

// Config shapes the run.
type Config struct {
	// CacheBytes is the value-cache file size (paper: 60 GB; scaled).
	CacheBytes uint64
	// ValueBytes is the stored value size (paper: 16 KiB).
	ValueBytes uint64
	// Gets is the number of random get operations after boot.
	Gets int
	// Buckets is the time-series resolution for the warm-up curve.
	Buckets int
	// Iface: read is meaningless here; mmap / populate / daxvm.
	Iface wl.Iface
	// Seed fixes the key sequence.
	Seed int64
}

// DefaultConfig mirrors Fig. 9b at simulator scale.
func DefaultConfig() Config {
	return Config{
		CacheBytes: 1 << 30,
		ValueBytes: 16 << 10,
		Gets:       60_000,
		Buckets:    24,
		Iface:      wl.Mmap,
		Seed:       11,
	}
}

// Result is the boot curve.
type Result struct {
	// SetupCycles covers open+mmap (populate pays its pre-fault here —
	// the "10 s boot delay" of Fig. 9b).
	SetupCycles uint64
	// Bucket[i] is the throughput (ops per virtual second) of the i-th
	// slice of the get stream.
	Bucket []float64
	// TotalCycles is setup plus serving.
	TotalCycles uint64
	Verified    bool
}

// Run builds the PMem store, then boots the server and serves gets.
func Run(k *kernel.Kernel, cfg Config) Result {
	proc := k.NewProc()
	values := cfg.CacheBytes / cfg.ValueBytes

	k.Setup(func(t *sim.Thread) {
		// The store: one cache file whose v-th slot holds a value
		// stamped with its key, plus an index file (key -> slot).
		fd, err := proc.Create(t, "predis/cache")
		if err != nil {
			panic(err)
		}
		chunk := make([]byte, 1<<20)
		for off := uint64(0); off < cfg.CacheBytes; off += uint64(len(chunk)) {
			for v := uint64(0); v < uint64(len(chunk)); v += cfg.ValueBytes {
				binary.LittleEndian.PutUint64(chunk[v:], (off+v)/cfg.ValueBytes)
			}
			if err := proc.Append(t, fd, chunk); err != nil {
				panic(err)
			}
		}
		proc.Close(t, fd)
		idx, err := proc.Create(t, "predis/index")
		if err != nil {
			panic(err)
		}
		if err := proc.Fallocate(t, idx, 0, values*8); err != nil {
			panic(err)
		}
		proc.Close(t, idx)
	})

	res := Result{Bucket: make([]float64, cfg.Buckets)}
	proc.Spawn("predis", 0, 0, func(t *sim.Thread, c *cpu.Core) {
		// --- boot: map cache + index ---------------------------------
		bootStart := t.Now()
		cacheFD, _ := proc.Open(t, "predis/cache")
		idxFD, _ := proc.Open(t, "predis/index")
		var cacheVA, idxVA mem.VirtAddr
		var err error
		if cfg.Iface.DaxVM {
			cacheVA, err = proc.DaxvmMmap(t, c, cacheFD, 0, cfg.CacheBytes, mem.PermRead|mem.PermWrite, cfg.Iface.Flags()|daxBootFlags)
			if err == nil {
				idxVA, err = proc.DaxvmMmap(t, c, idxFD, 0, values*8, mem.PermRead|mem.PermWrite, cfg.Iface.Flags()|daxBootFlags)
			}
		} else {
			cacheVA, err = proc.Mmap(t, c, cacheFD, 0, cfg.CacheBytes, mem.PermRead|mem.PermWrite, cfg.Iface.MapFlags())
			if err == nil {
				idxVA, err = proc.Mmap(t, c, idxFD, 0, values*8, mem.PermRead|mem.PermWrite, cfg.Iface.MapFlags())
			}
		}
		if err != nil {
			panic(err)
		}
		res.SetupCycles = t.Now() - bootStart

		// --- serve gets ----------------------------------------------
		rng := rand.New(rand.NewSource(cfg.Seed))
		perBucket := cfg.Gets / cfg.Buckets
		verified := true
		dev := proc.K.Dev
		cacheIn := proc.Inode(cacheFD)
		for b := 0; b < cfg.Buckets; b++ {
			start := t.Now()
			for i := 0; i < perBucket; i++ {
				key := uint64(rng.Int63n(int64(values)))
				// Index probe: one random 8-byte load.
				if err := proc.AccessMapped(t, c, idxVA+mem.VirtAddr(key*8), 8, kernel.KindSum); err != nil {
					panic(err)
				}
				// Value fetch: copy the value out to the client buffer.
				off := key * cfg.ValueBytes
				if err := proc.AccessMapped(t, c, cacheVA+mem.VirtAddr(off), cfg.ValueBytes, kernel.KindCopyOut); err != nil {
					panic(err)
				}
				// Verify against media (the mapped data is the file).
				if blk, ok := proc.K.FS.BlockOf(t, cacheIn, off/mem.PageSize); ok {
					raw := dev.Bytes(mem.PhysAddr(blk*mem.PageSize+(off%mem.PageSize)), 8)
					if binary.LittleEndian.Uint64(raw) != key {
						verified = false
					}
				}
				t.Charge(getFixedWork)
			}
			dur := t.Now() - start
			if dur > 0 {
				res.Bucket[b] = float64(perBucket) * float64(cost.CyclesPerSecond) / float64(dur)
			}
		}
		res.Verified = verified
	})
	res.TotalCycles = k.Run()
	return res
}

// daxBootFlags: P-Redis manages durability in user space (nt-stores), so
// the DaxVM runs use nosync; mappings are long-lived (no ephemeral).
const daxBootFlags = 0

// getFixedWork is command parsing + reply assembly per get.
const getFixedWork = 2_500
