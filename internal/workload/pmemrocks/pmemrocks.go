// Package pmemrocks models Pmem-RocksDB (Intel's PMem-optimized RocksDB)
// for the paper's Fig. 9c YCSB evaluation: an LSM store whose write-ahead
// log and SSTables live on the DAX file system and are accessed through
// memory mappings with user-space durability (non-temporal stores, no
// fsync). Inserts allocate fresh file blocks constantly, which on an aged
// ext4 image makes the baseline pay a MAP_SYNC journal commit on the
// first write fault of nearly every 4 KiB page — the effect DaxVM's
// 2 MiB-grained (or absent) dirty tracking removes.
package pmemrocks

import (
	"encoding/binary"
	"fmt"
	"sort"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/kernel"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
	"daxvm/internal/workload/wl"
	"daxvm/internal/workload/ycsb"
)

// Config shapes the store and the workload.
type Config struct {
	// Mix is the YCSB workload.
	Mix ycsb.Mix
	// InitialRecords pre-loads the store (Run phases start warm).
	InitialRecords uint64
	// Ops is the number of workload operations.
	Ops int
	// Threads is the number of client threads.
	Threads int
	// RecordBytes is the value size (paper: 4 KiB records).
	RecordBytes uint64
	// MemtableBytes triggers a flush when exceeded.
	MemtableBytes uint64
	// Iface selects mmap / populate / daxvm / daxvm-nosync for the file
	// mappings.
	Iface wl.Iface
	// Seed fixes the request stream.
	Seed int64
}

// DefaultConfig mirrors Fig. 9c at simulator scale.
func DefaultConfig() Config {
	return Config{
		Mix:            ycsb.WorkloadA,
		InitialRecords: 20_000,
		Ops:            20_000,
		Threads:        8,
		RecordBytes:    4 << 10,
		MemtableBytes:  8 << 20,
		Iface:          wl.Mmap,
		Seed:           5,
	}
}

// Result reports throughput and store shape.
type Result struct {
	Ops         uint64
	Cycles      uint64
	Throughput  float64 // ops per virtual second
	Flushes     uint64
	Compactions uint64
	SSTables    int
	Verified    bool
}

// record location inside one SSTable.
type recLoc struct {
	key  uint64
	slot uint64
}

// sstable is one on-FS sorted run kept mapped for reads.
type sstable struct {
	path  string
	fd    int
	va    mem.VirtAddr
	index []recLoc // sorted by key
	bytes uint64
}

// store is the LSM engine.
type store struct {
	cfg  Config
	proc *kernel.Proc

	mu *sim.Mutex // RocksDB single-writer queue

	memtable map[uint64]uint64 // key -> generation stamp (payload simulated)
	memBytes uint64

	walFD  int
	walVA  mem.VirtAddr
	walOff uint64
	walCap uint64

	ssts   []*sstable // newest last
	nextID int

	flushes     uint64
	compactions uint64
}

// mapFile maps [0,size) of fd through the configured interface.
func (s *store) mapFile(t *sim.Thread, c *cpu.Core, fd int, size uint64, write bool) mem.VirtAddr {
	perm := mem.PermRead
	if write {
		perm |= mem.PermWrite
	}
	var va mem.VirtAddr
	var err error
	if s.cfg.Iface.DaxVM {
		va, err = s.proc.DaxvmMmap(t, c, fd, 0, size, perm, s.cfg.Iface.Flags())
	} else {
		va, err = s.proc.Mmap(t, c, fd, 0, size, perm, s.cfg.Iface.MapFlags())
	}
	if err != nil {
		panic(err)
	}
	return va
}

func (s *store) unmap(t *sim.Thread, c *cpu.Core, va mem.VirtAddr, size uint64) {
	var err error
	if s.cfg.Iface.DaxVM {
		err = s.proc.DaxvmMunmap(t, c, va)
	} else {
		err = s.proc.Munmap(t, c, va, size)
	}
	if err != nil {
		panic(err)
	}
}

// openWAL creates (or recycles) the write-ahead log. Pmem-RocksDB
// recycles WAL files to avoid re-allocating (and re-zeroing) blocks.
func (s *store) openWAL(t *sim.Thread, c *cpu.Core) {
	if s.walFD != 0 {
		// Recycle in place: just reset the write offset.
		s.walOff = 0
		return
	}
	fd, err := s.proc.Create(t, "rocks/wal")
	if err != nil {
		panic(err)
	}
	s.walCap = s.cfg.MemtableBytes + s.cfg.MemtableBytes/2
	if err := s.proc.Fallocate(t, fd, 0, s.walCap); err != nil {
		panic(err)
	}
	s.walFD = fd
	s.walVA = s.mapFile(t, c, fd, s.walCap, true)
	s.walOff = 0
}

// put inserts/updates a key: WAL append + memtable insert; flush when the
// memtable fills.
func (s *store) put(t *sim.Thread, c *cpu.Core, key uint64) {
	s.mu.Lock(t, cost.SemAcquireFast)
	rec := s.cfg.RecordBytes
	if s.walOff+rec > s.walCap {
		s.flushLocked(t, c)
	}
	// WAL append through the mapping with nt-stores (user durability).
	if err := s.proc.AccessMapped(t, c, s.walVA+mem.VirtAddr(s.walOff), rec, kernel.KindNTWrite); err != nil {
		panic(err)
	}
	s.walOff += rec
	s.memtable[key] = s.walOff
	s.memBytes += rec
	if s.memBytes >= s.cfg.MemtableBytes {
		s.flushLocked(t, c)
	}
	s.mu.Unlock(t, cost.SemReleaseFast)
}

// flushLocked writes the memtable as a new SSTable and recycles the WAL.
func (s *store) flushLocked(t *sim.Thread, c *cpu.Core) {
	if len(s.memtable) == 0 {
		s.walOff = 0
		return
	}
	keys := make([]uint64, 0, len(s.memtable))
	for k := range s.memtable {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	path := fmt.Sprintf("rocks/sst-%06d", s.nextID)
	s.nextID++
	fd, err := s.proc.Create(t, path)
	if err != nil {
		panic(err)
	}
	size := uint64(len(keys)) * s.cfg.RecordBytes
	if err := s.proc.Fallocate(t, fd, 0, size); err != nil {
		panic(err)
	}
	va := s.mapFile(t, c, fd, size, true)
	sst := &sstable{path: path, fd: fd, va: va, bytes: size}
	for i, k := range keys {
		slot := uint64(i)
		off := slot * s.cfg.RecordBytes
		if err := s.proc.AccessMapped(t, c, va+mem.VirtAddr(off), s.cfg.RecordBytes, kernel.KindNTWrite); err != nil {
			panic(err)
		}
		s.stampRecord(t, sst, slot, k)
		sst.index = append(sst.index, recLoc{key: k, slot: slot})
	}
	s.ssts = append(s.ssts, sst)
	s.memtable = make(map[uint64]uint64)
	s.memBytes = 0
	s.flushes++
	s.openWAL(t, c) // recycle
	if len(s.ssts) > 8 {
		s.compactLocked(t, c)
	}
}

// stampRecord writes the key into the record's first bytes on media so
// gets can verify end-to-end integrity.
func (s *store) stampRecord(t *sim.Thread, sst *sstable, slot, key uint64) {
	in := s.proc.Inode(sst.fd)
	off := slot * s.cfg.RecordBytes
	if blk, ok := s.proc.K.FS.BlockOf(t, in, off/mem.PageSize); ok {
		raw := s.proc.K.Dev.Bytes(mem.PhysAddr(blk*mem.PageSize+(off%mem.PageSize)), 8)
		binary.LittleEndian.PutUint64(raw, key)
	}
}

// readRecord fetches a key's record from media for verification.
func (s *store) checkRecord(t *sim.Thread, sst *sstable, slot, key uint64) bool {
	in := s.proc.Inode(sst.fd)
	off := slot * s.cfg.RecordBytes
	if blk, ok := s.proc.K.FS.BlockOf(t, in, off/mem.PageSize); ok {
		raw := s.proc.K.Dev.Bytes(mem.PhysAddr(blk*mem.PageSize+(off%mem.PageSize)), 8)
		return binary.LittleEndian.Uint64(raw) == key
	}
	return false
}

// compactLocked merges the four oldest SSTables into one and deletes them
// (unlink feeds the pre-zero daemon under DaxVM).
func (s *store) compactLocked(t *sim.Thread, c *cpu.Core) {
	n := 4
	victims := s.ssts[:n]
	merged := map[uint64]bool{}
	var keys []uint64
	for _, v := range victims {
		for _, rl := range v.index {
			if !merged[rl.key] {
				merged[rl.key] = true
				keys = append(keys, rl.key)
			}
			// Read cost of merging.
			s.proc.AccessMapped(t, c, v.va+mem.VirtAddr(rl.slot*s.cfg.RecordBytes), s.cfg.RecordBytes, kernel.KindCopyOut)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	path := fmt.Sprintf("rocks/sst-%06d", s.nextID)
	s.nextID++
	fd, err := s.proc.Create(t, path)
	if err != nil {
		panic(err)
	}
	size := uint64(len(keys)) * s.cfg.RecordBytes
	if err := s.proc.Fallocate(t, fd, 0, size); err != nil {
		panic(err)
	}
	va := s.mapFile(t, c, fd, size, true)
	out := &sstable{path: path, fd: fd, va: va, bytes: size}
	for i, k := range keys {
		off := uint64(i) * s.cfg.RecordBytes
		s.proc.AccessMapped(t, c, va+mem.VirtAddr(off), s.cfg.RecordBytes, kernel.KindNTWrite)
		s.stampRecord(t, out, uint64(i), k)
		out.index = append(out.index, recLoc{key: k, slot: uint64(i)})
	}
	// Delete the merged inputs.
	for _, v := range victims {
		s.unmap(t, c, v.va, v.bytes)
		s.proc.Close(t, v.fd)
		if err := s.proc.Unlink(t, v.path); err != nil {
			panic(err)
		}
	}
	s.ssts = append([]*sstable{out}, s.ssts[n:]...)
	s.compactions++
}

// get reads a key, returning whether it was found and verified.
func (s *store) get(t *sim.Thread, c *cpu.Core, key uint64) (found, verified bool) {
	t.Charge(cost.KernelListOp) // memtable probe
	if _, ok := s.memtable[key]; ok {
		return true, true
	}
	for i := len(s.ssts) - 1; i >= 0; i-- {
		sst := s.ssts[i]
		idx := sort.Search(len(sst.index), func(j int) bool { return sst.index[j].key >= key })
		t.Charge(sstIndexProbe)
		if idx < len(sst.index) && sst.index[idx].key == key {
			off := sst.index[idx].slot * s.cfg.RecordBytes
			if err := s.proc.AccessMapped(t, c, sst.va+mem.VirtAddr(off), s.cfg.RecordBytes, kernel.KindCopyOut); err != nil {
				panic(err)
			}
			return true, s.checkRecord(t, sst, sst.index[idx].slot, key)
		}
	}
	return false, true
}

// scan reads up to n records in key order starting at key.
func (s *store) scan(t *sim.Thread, c *cpu.Core, key uint64, n int) {
	if len(s.ssts) == 0 {
		return
	}
	sst := s.ssts[len(s.ssts)-1]
	idx := sort.Search(len(sst.index), func(j int) bool { return sst.index[j].key >= key })
	t.Charge(sstIndexProbe)
	for i := 0; i < n && idx+i < len(sst.index); i++ {
		off := sst.index[idx+i].slot * s.cfg.RecordBytes
		s.proc.AccessMapped(t, c, sst.va+mem.VirtAddr(off), s.cfg.RecordBytes, kernel.KindCopyOut)
	}
}

const sstIndexProbe = 600

// Run loads the store and executes the YCSB mix.
func Run(k *kernel.Kernel, cfg Config) Result {
	proc := k.NewProc()
	s := &store{
		cfg:      cfg,
		proc:     proc,
		mu:       sim.NewMutex(cost.SchedWakeup),
		memtable: make(map[uint64]uint64),
	}

	isLoad := cfg.Mix.Name == "load"
	// WAL creation (and the pre-load for run phases) happens outside the
	// measured window.
	k.Setup(func(t *sim.Thread) {
		c := k.Cpus.Cores[0]
		c.Bind(t)
		s.openWAL(t, c)
		if !isLoad {
			for key := uint64(0); key < cfg.InitialRecords; key++ {
				s.put(t, c, key)
			}
		}
		c.Unbind()
	})

	gen := make([]*ycsb.Generator, cfg.Threads)
	initial := cfg.InitialRecords
	if isLoad {
		initial = 0
	}
	for w := range gen {
		gen[w] = ycsb.NewGenerator(cfg.Mix, initial, cfg.Seed+int64(w))
	}

	verifiedAll := true
	var opsDone uint64
	for w := 0; w < cfg.Threads; w++ {
		w := w
		perThread := cfg.Ops / cfg.Threads
		proc.Spawn("ycsb", w, 0, func(t *sim.Thread, c *cpu.Core) {
			g := gen[w]
			for i := 0; i < perThread; i++ {
				op := g.Next()
				switch op.Kind {
				case ycsb.OpInsert, ycsb.OpUpdate:
					s.put(t, c, op.Key)
				case ycsb.OpRead:
					_, ok := s.get(t, c, op.Key)
					if !ok {
						verifiedAll = false
					}
				case ycsb.OpScan:
					s.scan(t, c, op.Key, op.ScanLen)
				case ycsb.OpRMW:
					s.get(t, c, op.Key)
					s.put(t, c, op.Key)
				}
				opsDone++
				t.Charge(clientFixedWork)
			}
		})
	}
	cycles := k.Run()
	return Result{
		Ops:         opsDone,
		Cycles:      cycles,
		Throughput:  float64(opsDone) * float64(cost.CyclesPerSecond) / float64(cycles),
		Flushes:     s.flushes,
		Compactions: s.compactions,
		SSTables:    len(s.ssts),
		Verified:    verifiedAll,
	}
}

const clientFixedWork = 1_200
