// Package webserver models the paper's Apache mpm_event experiment:
// worker threads serve static pages by mapping the page file, copying its
// content into a socket buffer, and unmapping — an m(un)map-heavy
// ephemeral pattern that collapses on mmap_sem (Fig. 8).
package webserver

import (
	"math/rand"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/kernel"
	"daxvm/internal/latr"
	"daxvm/internal/sim"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/wl"
)

// Config shapes the experiment.
type Config struct {
	// Threads is the number of server worker threads (1-16 in Fig. 8a).
	Threads int
	// PageBytes is the static page size (32 KiB default).
	PageBytes uint64
	// Pages is the number of distinct page files (the paper serves
	// multiple pages to avoid always hitting the processor cache).
	Pages int
	// RequestsPerThread is the closed-loop request count.
	RequestsPerThread int
	// Iface selects the serving interface.
	Iface wl.Iface
	// Seed fixes the page-selection sequence.
	Seed int64
}

// DefaultConfig mirrors Fig. 8a's setup at simulator scale.
func DefaultConfig() Config {
	return Config{
		Threads:           16,
		PageBytes:         32 << 10,
		Pages:             256,
		RequestsPerThread: 400,
		Iface:             wl.Read,
		Seed:              7,
	}
}

// Result is the measured outcome.
type Result struct {
	Requests   uint64
	Cycles     uint64  // virtual makespan
	Throughput float64 // requests per virtual second
	BytesMoved uint64
}

// Run boots the workload on an existing kernel. Page files are created in
// a setup phase; the measurement spans only the serving loop.
func Run(k *kernel.Kernel, cfg Config) Result {
	proc := k.NewProc()
	var paths []string
	k.Setup(func(t *sim.Thread) {
		paths = corpus.Fixed(t, proc, "htdocs", cfg.Pages, cfg.PageBytes)
	})

	var l *latr.LATR
	if cfg.Iface.LATR {
		l = latr.New(k.Cpus)
	}

	for w := 0; w < cfg.Threads; w++ {
		w := w
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
		proc.Spawn("httpd", w, 0, func(t *sim.Thread, c *cpu.Core) {
			env := &wl.Env{Proc: proc, LATR: l}
			for r := 0; r < cfg.RequestsPerThread; r++ {
				path := paths[rng.Intn(len(paths))]
				// Serve: move page content into the socket. Mapped
				// interfaces copy PMem->socket directly (zero copy);
				// read(2) copies PMem->buffer, then buffer->socket.
				n := env.ConsumeFileOnce(t, c, path, cfg.Iface, kernel.KindCopyOut)
				if cfg.Iface.Syscall {
					// Extra DRAM->socket copy that mapping avoids.
					t.Charge(cost.CopyDRAMPerPage * (n + 4095) / 4096)
				}
				// Socket/connection handling beyond file access.
				t.Charge(requestFixedWork)
			}
		})
	}
	cycles := k.Run()
	reqs := uint64(cfg.Threads * cfg.RequestsPerThread)
	return Result{
		Requests:   reqs,
		Cycles:     cycles,
		Throughput: float64(reqs) * float64(cost.CyclesPerSecond) / float64(cycles),
		BytesMoved: reqs * cfg.PageBytes,
	}
}

// requestFixedWork is the per-request cost outside file access: parsing
// the HTTP request, socket syscalls, event-loop bookkeeping.
const requestFixedWork = 55_000
