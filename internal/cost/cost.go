// Package cost holds every calibrated constant of the simulator's timing
// model in one place, with provenance notes.
//
// All durations are in CPU cycles of the paper's testbed (Intel Xeon Gold
// Cascade Lake fixed at 2.7 GHz, so 1 ns = 2.7 cycles). Constants marked
// [paper] are taken from measurements reported in the DaxVM paper itself;
// constants marked [fast20] derive from Yang et al., "An Empirical Guide to
// the Behavior and Use of Scalable Persistent Memory" (FAST '20), which the
// paper cites for the same purpose; the rest are order-of-magnitude values
// from the cited systems literature, tuned so the paper's relative results
// reproduce (see EXPERIMENTS.md).
//
// # Typed-units naming convention
//
// Identifiers carry their unit in a name suffix, and the simlint
// chargeunits analyzer enforces that arithmetic does not mix them:
//
//   - bare names, and the suffixes Cycles/Cost/Latency/Lat: CPU cycles
//     (every constant in this package is cycle-valued unless its suffix
//     says otherwise)
//   - NS/Ns/Nanos: wall nanoseconds — convert with Cycles() before
//     charging
//   - Bytes, Pages: quantities, never durations
//   - Per<X> (PerPage, PerCycle, PerSecond, ...) and Pct: conversion
//     rates; multiplying by one changes units, so products are untyped
//
// Thread.Charge/ChargeAs/AddRemote/Sleep take cycles; adding a
// ns/byte/page value to a cycle value is flagged until it goes through a
// rate constant or Cycles().
package cost

// Frequency of the simulated cores.
const (
	CyclesPerSecond = 2_700_000_000
	CyclesPerUsec   = 2_700
)

// Cycles converts nanoseconds to cycles at the simulated frequency.
func Cycles(ns float64) uint64 { return uint64(ns * 2.7) }

// Syscall and trap costs.
const (
	// UserKernelCrossing is the one-way cost of entering or leaving the
	// kernel (KPTI-era trap, register save/restore).
	UserKernelCrossing = 700

	// SyscallDispatch is the in-kernel dispatch overhead per system call,
	// on top of the two crossings.
	SyscallDispatch = 300

	// FaultEntry is the hardware + entry cost of taking a page fault
	// exception before any handler work runs.
	FaultEntry = 800

	// MinorFaultService is the kernel work of a DAX minor fault: VMA
	// lookup, file-system block lookup, PTE allocation/installation.
	// [paper §III: paging dominates small-file mmap; tuned so mmap is
	// ~20-30% slower than read for 4-32 KiB files on Fig. 4.]
	MinorFaultService = 1_300

	// WriteProtectFaultService is the kernel work of a dirty-tracking
	// write-protect fault: page_mkwrite, radix-tree tagging, PTE upgrade.
	WriteProtectFaultService = 2_200

	// HugeFaultService is the extra work of installing a PMD-sized
	// mapping in one fault (huge page path).
	HugeFaultService = 3_400
)

// Virtual-memory operation costs (excluding lock waits, which the DES
// engine produces from contention).
const (
	// MmapFixed is the fixed kernel path of mmap: argument checks, VMA
	// allocation, address-space bookkeeping.
	MmapFixed = 1_600

	// VMAInsert / VMAErase are red-black-tree update costs.
	VMAInsert = 450
	VMAErase  = 450

	// VMAFind is a VMA tree lookup (fault path, munmap path).
	VMAFind = 260

	// GetUnmappedArea is Linux's search for a free virtual range.
	GetUnmappedArea = 500

	// MunmapFixed is the fixed kernel path of munmap before page-table
	// teardown.
	MunmapFixed = 1_300

	// PTEClearPerPage is the per-page cost of tearing down present PTEs
	// during unmap (clear + accounting).
	PTEClearPerPage = 90

	// PTESetPerPage is the per-page cost of installing a PTE outside the
	// fault path (MAP_POPULATE, DaxVM file-table population).
	PTESetPerPage = 80

	// TableAlloc is allocating + linking one page-table node in DRAM.
	TableAlloc = 500

	// EphemeralAlloc / EphemeralFree are DaxVM's heap bump-pointer
	// operations (atomics plus list update under a spinlock).
	EphemeralAlloc = 180
	EphemeralFree  = 160

	// AttachEntry is the cost of writing one attachment-level entry
	// (PMD/PUD) when splicing a DaxVM file table into a process tree.
	AttachEntry = 120
)

// TLB and shootdown costs. [paper §III-A3: IPIs cost up to thousands of
// cycles; Amit (ATC'17), LATR (ASPLOS'18) report 4-8k cycle shootdowns.]
const (
	// TLBInvlpgLocal is one local invlpg.
	TLBInvlpgLocal = 220

	// TLBFlushLocal is a full local TLB flush (CR3 write).
	TLBFlushLocal = 450

	// IPIBase is the initiator's fixed cost to send a shootdown IPI
	// (prepare cpumask, call function).
	IPIBase = 1_800

	// IPIPerTarget is the initiator's added wait per acknowledging core.
	IPIPerTarget = 900

	// IPITargetHandler is the interrupted core's handler cost (context +
	// invalidation work), charged to the target.
	IPITargetHandler = 1_400

	// IPIAckLatency is the initiator's wait for the last acknowledgement
	// once the IPIs are out (interrupt delivery + handler + ack write).
	IPIAckLatency = 2_200

	// FullFlushThresholdPages mirrors Linux/x86: past this many pages a
	// munmap performs a full TLB flush instead of per-page invlpg.
	FullFlushThresholdPages = 33
)

// Page-walk model. A TLB miss triggers a 4-level walk. Upper levels
// overwhelmingly hit the page-walk caches; the leaf PTE access goes to the
// memory holding the table node. The PTE-cacheline reuse model (8 PTEs per
// line) makes sequential access cheap and random access expensive, matching
// Table II of the paper: DRAM seq 28 / rand 111; PMem seq 103 / rand 821.
const (
	// WalkUpperLevels is the cost of the PGD/PUD/PMD lookups when they
	// hit the paging-structure caches.
	WalkUpperLevels = 15

	// WalkPTECachedDRAM: leaf PTE line resident in CPU cache (sequential
	// reuse), DRAM-backed table. [paper Table II: 28 total]
	WalkPTECachedDRAM = 13

	// WalkPTEMissDRAM: leaf PTE line fetched from DRAM. [Table II: 111]
	WalkPTEMissDRAM = 96

	// WalkPTECachedPMem: leaf PTE line resident in cache but the node
	// lives on PMem; first touch of each line costs a PMem fetch that the
	// model amortizes over the 8 PTEs of the line. [Table II: 103]
	WalkPTECachedPMem = 88

	// WalkPTEMissPMem: leaf PTE line fetched from Optane. [Table II: 821]
	WalkPTEMissPMem = 806

	// WalkHuge is a PMD-level hit (one fewer level, line almost always
	// cached thanks to 2 MiB reach).
	WalkHuge = 24
)

// DaxVM performance-monitor thresholds. [paper Table III]
const (
	// MonitorWalkCycleThreshold: average walk latency above this suggests
	// PMem-resident tables are hurting.
	MonitorWalkCycleThreshold = 200

	// MonitorMMUOverheadPct: percent of execution time in walks above
	// which migration triggers.
	MonitorMMUOverheadPct = 5
)

// Memory-technology latencies and bandwidths.
// [fast20] Optane read latency ~300 ns random, sequential-stream reads
// amortize to ~170 ns/line; DRAM ~80 ns. Per-thread bandwidths: DRAM copy
// ~11 GB/s, PMem read ~6.5 GB/s, nt-store ~2.3 GB/s, store+clwb ~1.2 GB/s.
const (
	DRAMLoadLatency  = 216 // 80 ns
	PMemLoadLatency  = 824 // 305 ns random
	PMemSeqLoadLat   = 460 // 170 ns streaming
	CacheHitLatency  = 40  // L2/LLC-ish hit for recently-touched lines
	ClwbCost         = 90  // issue clwb for one line (throughput view)
	FenceCost        = 120 // sfence drain
	NTStoreLineCost  = 70  // issue one 64 B non-temporal store line
	AtomicRMWCost    = 60
	SpinLockAcquire  = 80 // uncontended spinlock cycle cost
	SpinLockRelease  = 40
	SemAcquireFast   = 140 // uncontended rwsem acquire
	SemReleaseFast   = 100
	SchedWakeup      = 2_200 // blocking wakeup path (sleep+wake)
	KernelListOp     = 70
	RadixTreeTag     = 420 // page-cache radix tag set/clear with lock
	RadixTreeLookup  = 180
	PerfCounterRead  = 250
	InodeCacheLookup = 380
	PathLookupPerCmp = 160 // per path component
	FDTableOp        = 120
)

// Per-thread copy/zero bandwidths expressed as cycles per 4 KiB page.
// cycles = 4096 bytes / (GB/s) * 2.7 cycles/ns.
const (
	// CopyDRAMPerPage: DRAM->DRAM copy at ~11 GB/s.
	CopyDRAMPerPage = 1_000

	// CopyFromPMemPerPage: PMem->DRAM inside a read(2). Kernel copies
	// cannot use AVX (register save/restore across the boundary, paper
	// §III-C), so they run at roughly half the user-space streaming
	// bandwidth: ~3.3 GB/s.
	CopyFromPMemPerPage = 2_900

	// UserCopyPMemPerPage: user-space AVX-512 memcpy out of mapped PMem
	// (web server page->socket, database record fetch) at ~6 GB/s.
	UserCopyPMemPerPage = 1_850

	// NTStorePMemPerPage: DRAM->PMem with non-temporal stores at
	// ~2.3 GB/s (write syscall path, user-space nt-store path).
	NTStorePMemPerPage = 4_800

	// StoreClwbPMemPerPage: cached stores + clwb flush at ~1.2 GB/s
	// (kernel msync/fsync flushing path).
	StoreClwbPMemPerPage = 9_200

	// ZeroPMemPerPage: zeroing with nt-stores, same engine as NTStore.
	ZeroPMemPerPage = 4_800

	// UserLoadPMemPerPage: user code streaming loads from PMem (text
	// search, checksum) at ~6.5 GB/s plus demand-miss stalls.
	UserLoadPMemPerPage = 1_700

	// UserLoadDRAMPerPage: user code re-reading a freshly copied DRAM
	// buffer; hot in cache, ~25 GB/s effective.
	UserLoadDRAMPerPage = 450
)

// File-system costs.
const (
	// ExtentLookup is mapping one file offset through the extent tree.
	ExtentLookup = 300

	// ExtentAllocBase / ExtentAllocPerExtent: block allocator work.
	ExtentAllocBase      = 1_500
	ExtentAllocPerExtent = 500

	// JournalBegin / JournalAddPerBlock / JournalCommit: jbd2-style
	// transaction costs. Commit includes log write + flush + fence.
	// [paper §V-C: MAP_SYNC faults triggering commits severely penalize
	// aged-image RocksDB.]
	JournalBegin       = 600
	JournalAddPerBlock = 250
	JournalCommit      = 24_000

	// NovaLogAppend is NOVA's per-operation metadata log append + flush.
	NovaLogAppend = 1_900

	// InodeUpdate is an in-place inode (meta)data update.
	InodeUpdate = 500

	// OpenPath / CloseFixed: open(2)/close(2) beyond crossings.
	OpenPath   = 1_800
	CloseFixed = 700

	// ReadWriteFixed is the fixed kernel path of read(2)/write(2) beyond
	// crossings (file position, rw checks, iterator setup).
	ReadWriteFixed = 900

	// FsyncFixed is the fixed fsync/msync path cost.
	FsyncFixed = 2_600

	// FileTablePTEFlushPerLine: flushing one cache line of persistent
	// file-table PTEs (clwb; the fence rides on the journal commit).
	FileTablePTEFlushPerLine = ClwbCost
)

// Cross-socket (remote NUMA node) penalties. [fast20 §3.2] A remote
// Optane access crosses UPI before reaching the DIMM: read latency grows
// by ~170 ns and remote sequential-read bandwidth drops to roughly half
// of local; remote nt-store bandwidth collapses much harder (to ~1/3 of
// local, the paper's headline "remote Optane cliff"), because write
// buffering across the interconnect defeats the DIMM's combining buffer.
// DRAM pays the usual ~60-70 ns UPI hop. The per-page rates below are
// the extra cycles added on top of the local-rate charge for a 4 KiB
// page moved across sockets; the walk extras are the added leaf-fetch
// latency for one remote page-table access.
const (
	// RemotePMemReadExtraPerPage: local read ~6.5 GB/s vs remote
	// ~3.5 GB/s => ~+2.3 GB/s-equivalent extra cycles per page.
	RemotePMemReadExtraPerPage = 2_500

	// RemotePMemWriteExtraPerPage: local nt-store ~2.3 GB/s vs remote
	// ~0.8 GB/s; also applied to remote zeroing.
	RemotePMemWriteExtraPerPage = 9_600

	// RemoteDRAMExtraPerPage: UPI hop on a streamed DRAM page
	// (~11 GB/s local vs ~8 GB/s remote).
	RemoteDRAMExtraPerPage = 650

	// RemotePMemWalkExtra: one remote Optane leaf-PTE fetch pays the
	// UPI round trip on top of the media latency (~170 ns).
	RemotePMemWalkExtra = 460

	// RemoteDRAMWalkExtra: one remote DRAM leaf-PTE fetch (~65 ns hop).
	RemoteDRAMWalkExtra = 170

	// IPICrossSocketPerTarget: extra initiator wait per shootdown target
	// on the other socket (interrupt delivery crosses UPI both ways).
	IPICrossSocketPerTarget = 900
)

// Device-wide bandwidth budget, in bytes per cycle, used by the token
// bucket that makes heavy writers (pre-zeroing daemon) interfere with
// foreground traffic. [fast20] whole-device: write ~13 GB/s, read ~37 GB/s
// for 3 interleaved DIMMs; per-DIMM-set values scaled to the paper's 3-DIMM
// single-socket setup.
const (
	PMemDeviceWriteBytesPerCycle = 2.6 // ≈7 GB/s (3 DIMMs x ~2.3 GB/s)
	PMemDeviceReadBytesPerCycle  = 7.4 // ≈20 GB/s (3 DIMMs x ~6.6 GB/s)
)
