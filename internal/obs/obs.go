// Package obs is the unified observability layer of the simulated machine:
// a metrics registry where every subsystem publishes its counters under a
// dotted namespace (tlb.shootdowns, mm.lock.wait_cycles, ext4.journal.commits,
// core.prezero.batches, ...), log2-bucket histograms for latency
// distributions (page walks, fault service), and a bounded virtual-time
// event tracer exportable as Chrome trace-event JSON (one track per
// simulated core, viewable in Perfetto).
//
// The package is dependency-free by design: subsystems pass virtual
// timestamps and core ids explicitly, so every layer of the simulator —
// sim engine, MMU, TLB, file systems, DaxVM extension — can emit without
// import cycles. All entry points are nil-receiver safe, so an unwired
// subsystem pays one branch.
package obs

import "sync"

// DefaultTraceCap bounds the event ring when the caller does not choose:
// large enough to hold the tail of any experiment, small enough that an
// always-on tracer is free.
const DefaultTraceCap = 1 << 16

// Obs bundles the registry, tracer and cycle account one machine (or one
// experiment run, when shared across machines) collects into.
type Obs struct {
	Reg    *Registry
	Trace  *Tracer
	Cycles *CycleAccount

	mu           sync.Mutex
	engineTotals []func() uint64
	engineEvents []func() uint64
}

// New creates an observability hub with a trace ring of traceCap events
// (0 selects DefaultTraceCap).
func New(traceCap int) *Obs {
	if traceCap == 0 {
		traceCap = DefaultTraceCap
	}
	return &Obs{Reg: NewRegistry(), Trace: NewTracer(traceCap), Cycles: NewCycleAccount()}
}

// AddEngineTotal registers a reader for one engine's total charged cycles.
// Every engine whose charges feed Cycles must register here (the kernel
// does this when wiring), so EnginesTotal is the reconciliation target for
// CycleAccount.Total. Kept as func values to stay dependency-free.
func (o *Obs) AddEngineTotal(fn func() uint64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.engineTotals = append(o.engineTotals, fn)
	o.mu.Unlock()
}

// EnginesTotal sums the total charged cycles of every registered engine.
func (o *Obs) EnginesTotal() uint64 {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	var s uint64
	for _, fn := range o.engineTotals {
		s += fn()
	}
	return s
}

// AddEngineEvents registers a reader for one engine's event count (see
// sim.Engine.Events). The sum across engines is the deterministic
// numerator of the host-side events/sec speed metric.
func (o *Obs) AddEngineEvents(fn func() uint64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.engineEvents = append(o.engineEvents, fn)
	o.mu.Unlock()
}

// EnginesEvents sums the event counts of every registered engine.
func (o *Obs) EnginesEvents() uint64 {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	var s uint64
	for _, fn := range o.engineEvents {
		s += fn()
	}
	return s
}
