package obs

import "math/bits"

// histBuckets is one bucket per possible bit length of a uint64, plus
// bucket 0 for the value 0.
const histBuckets = 65

// Histogram is a log2-bucket latency histogram: bucket b counts values v
// with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b). Observing is two
// adds and an increment — cheap enough for per-walk recording.
type Histogram struct {
	counts [histBuckets]uint64
	sum    uint64
	n      uint64
}

// Observe records one value. Nil-safe so unwired subsystems pay a branch.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bits.Len64(v)]++
	h.sum += v
	h.n++
}

// Count reports total observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Sum: h.sum, Count: h.n}
	for b, c := range h.counts {
		if c != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64)
			}
			s.Buckets[b] = c
		}
	}
	return s
}

// HistSnapshot is a point-in-time histogram reading. Buckets maps the
// log2 bucket index to its count; BucketUpper gives the bucket's
// exclusive upper bound.
type HistSnapshot struct {
	Buckets map[int]uint64 `json:"buckets,omitempty"`
	Sum     uint64         `json:"sum"`
	Count   uint64         `json:"count"`
}

// BucketUpper returns the exclusive upper value bound of bucket b.
func BucketUpper(b int) uint64 {
	if b <= 0 {
		return 1
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1 << b
}

// Mean returns the average observed value.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Delta subtracts prev bucket-wise (the measured window's distribution).
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	if s.Count > prev.Count {
		d.Count = s.Count - prev.Count
	}
	for b, c := range s.Buckets {
		p := prev.Buckets[b]
		if c > p {
			if d.Buckets == nil {
				d.Buckets = make(map[int]uint64)
			}
			d.Buckets[b] = c - p
		}
	}
	return d
}
