package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// histBuckets is one bucket per possible bit length of a uint64, plus
// bucket 0 for the value 0.
const histBuckets = 65

// Histogram is a log2-bucket latency histogram: bucket b counts values v
// with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b). Observing is three
// atomic adds — cheap enough for per-walk recording, and race-safe when
// multiple engines (or a concurrent Snapshot) touch the same histogram.
// Snapshot is lock-free and therefore only weakly consistent (sum, count
// and buckets are loaded independently), which is fine for monotonic
// window deltas.
type Histogram struct {
	counts [histBuckets]uint64
	sum    uint64
	n      uint64
}

// Observe records one value. Nil-safe so unwired subsystems pay a branch.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	atomic.AddUint64(&h.counts[bits.Len64(v)], 1)
	atomic.AddUint64(&h.sum, v)
	atomic.AddUint64(&h.n, 1)
}

// Count reports total observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.n)
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Sum: atomic.LoadUint64(&h.sum), Count: atomic.LoadUint64(&h.n)}
	for b := range h.counts {
		if c := atomic.LoadUint64(&h.counts[b]); c != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64)
			}
			s.Buckets[b] = c
		}
	}
	return s
}

// HistSnapshot is a point-in-time histogram reading. Buckets maps the
// log2 bucket index to its count; BucketUpper gives the bucket's
// exclusive upper bound.
type HistSnapshot struct {
	Buckets map[int]uint64 `json:"buckets,omitempty"`
	Sum     uint64         `json:"sum"`
	Count   uint64         `json:"count"`
}

// BucketUpper returns the exclusive upper value bound of bucket b.
func BucketUpper(b int) uint64 {
	if b <= 0 {
		return 1
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1 << b
}

// Mean returns the average observed value.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the p-quantile (p in [0,1], clamped) by linear
// interpolation inside the log2 bucket holding the target rank: the rank's
// position within the bucket's count maps linearly onto the bucket's value
// range [BucketUpper(b-1), BucketUpper(b)). Bucket 0 holds only the value
// 0, so ranks landing there return 0 exactly. An empty snapshot returns 0.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank == 0 {
		rank = 1 // p=0 selects the smallest observation's bucket
	}
	bs := make([]int, 0, len(s.Buckets))
	for b := range s.Buckets {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	var cum uint64
	for _, b := range bs {
		c := s.Buckets[b]
		if cum+c < rank {
			cum += c
			continue
		}
		if b == 0 {
			return 0
		}
		lower := float64(BucketUpper(b - 1))
		upper := float64(BucketUpper(b))
		return lower + (upper-lower)*float64(rank-cum)/float64(c)
	}
	return float64(BucketUpper(64)) // unreachable when Buckets sums to Count
}

// Delta subtracts prev bucket-wise (the measured window's distribution).
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	if s.Count > prev.Count {
		d.Count = s.Count - prev.Count
	}
	for b, c := range s.Buckets {
		p := prev.Buckets[b]
		if c > p {
			if d.Buckets == nil {
				d.Buckets = make(map[int]uint64)
			}
			d.Buckets[b] = c - p
		}
	}
	return d
}
