package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a deterministic trace whose ring wrapped: capacity 2,
// three events, so exactly one was dropped.
func goldenTracer() *Tracer {
	tr := NewTracer(2)
	tr.Emit(EvMmap, 0, 2700, 2700, "", 16)
	tr.Emit(EvShootdown, 1, 5400, 0, "full", 3)
	tr.Emit(EvJournalCommit, 0, 8100, 1350, "", 2)
	return tr
}

// TestWriteChromeTraceGolden pins the exact exported bytes and round-trips
// them through encoding/json: the trace must parse, and the trace_stats
// metadata event must carry the ring's drop count so truncated traces are
// self-describing.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	var sawStats bool
	for _, e := range ct.TraceEvents {
		if e.Name != "trace_stats" {
			continue
		}
		sawStats = true
		if e.Ph != "M" {
			t.Fatalf("trace_stats ph = %q", e.Ph)
		}
		if e.Args["dropped"] != float64(1) || e.Args["retained"] != float64(2) {
			t.Fatalf("trace_stats args = %v, want dropped=1 retained=2", e.Args)
		}
	}
	if !sawStats {
		t.Fatal("no trace_stats metadata event")
	}
	// Re-encoding the parsed form must also survive (valid JSON both ways).
	if _, err := json.Marshal(ct); err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
}
