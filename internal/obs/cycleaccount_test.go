package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCycleAccountBooking(t *testing.T) {
	a := NewCycleAccount()
	a.Charge(0, "app.syscall.write", 100)
	a.Charge(0, "app.syscall.write.ntstore", 50)
	a.Charge(1, "app.syscall.write.ntstore", 25)
	a.Charge(2, "journal.commit", 10)

	if got := a.Total(); got != 185 {
		t.Fatalf("total = %d, want 185", got)
	}
	s := a.Snapshot()
	if s.Total != 185 {
		t.Fatalf("snapshot total = %d", s.Total)
	}
	nt := s.Leaves["app.syscall.write.ntstore"]
	if nt.Cycles != 75 || nt.Count != 2 {
		t.Fatalf("ntstore leaf: %+v", nt)
	}
	if nt.ByCore[0] != 50 || nt.ByCore[1] != 25 {
		t.Fatalf("ntstore by_core: %+v", nt.ByCore)
	}
	if got := s.TotalOf("app.syscall.write"); got != 175 {
		t.Fatalf("TotalOf(app.syscall.write) = %d, want 175", got)
	}
	if got := s.TotalOf("app"); got != 175 {
		t.Fatalf("TotalOf(app) = %d, want 175", got)
	}
	if got := s.TotalOf("jour"); got != 0 {
		t.Fatalf("TotalOf must not match partial segments: %d", got)
	}
}

func TestCycleSnapshotDelta(t *testing.T) {
	a := NewCycleAccount()
	a.Charge(0, "x.y", 100)
	s1 := a.Snapshot()
	a.Charge(0, "x.y", 40)
	a.Charge(1, "x.z", 7)
	d := a.Snapshot().Delta(s1)
	if d.Total != 47 {
		t.Fatalf("delta total = %d", d.Total)
	}
	if d.Leaves["x.y"].Cycles != 40 || d.Leaves["x.y"].Count != 1 {
		t.Fatalf("x.y delta: %+v", d.Leaves["x.y"])
	}
	if d.Leaves["x.z"].Cycles != 7 {
		t.Fatalf("x.z delta: %+v", d.Leaves["x.z"])
	}
	if d.Leaves["x.y"].ByCore[0] != 40 {
		t.Fatalf("x.y by_core delta: %+v", d.Leaves["x.y"].ByCore)
	}
}

func TestCycleSnapshotWriteFolded(t *testing.T) {
	a := NewCycleAccount()
	a.Charge(0, "app.access.walk.pte_miss_pmem", 900)
	a.Charge(0, "app.access", 100)
	var buf bytes.Buffer
	if err := a.Snapshot().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "app;access 100\napp;access;walk;pte_miss_pmem 900\n"
	if buf.String() != want {
		t.Fatalf("folded:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestCycleSnapshotWriteTable(t *testing.T) {
	a := NewCycleAccount()
	a.Charge(0, "app.syscall.write", 100)
	a.Charge(0, "app.syscall.write.ntstore", 300)
	a.Charge(0, "journal.commit", 50)
	var buf bytes.Buffer
	a.Snapshot().WriteTable(&buf, 0)
	out := buf.String()
	// "app" rolls up to 400 total with 0 self; the write node keeps 100 self.
	if !strings.Contains(out, "app") || !strings.Contains(out, "400") {
		t.Fatalf("table missing rollup:\n%s", out)
	}
	// Nodes: app, app.syscall, app.syscall.write, app.syscall.write.ntstore,
	// journal, journal.commit — plus the header line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("unexpected table rows (%d):\n%s", len(lines)-1, out)
	}
	// Rows must be sorted by total descending: app (400) before journal (50).
	if strings.Index(out, " app\n") > strings.Index(out, " journal\n") {
		t.Fatalf("rows not sorted by total:\n%s", out)
	}
}

func TestCycleAccountNilSafety(t *testing.T) {
	var a *CycleAccount
	a.Charge(0, "x", 1) // must not panic
	if a.Total() != 0 {
		t.Fatal("nil account not inert")
	}
	s := a.Snapshot()
	if s.Total != 0 || len(s.Leaves) != 0 {
		t.Fatal("nil snapshot not empty")
	}
}
