package bottleneck

import (
	"encoding/json"
	"strings"
	"testing"

	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// saturatedLockExport builds a segment where mmap_sem is write-held 97%
// of the time with a deep sampled queue while the PMem channel idles —
// the post-knee shape. The reader-hold counter is present but must not
// feed utilization (shared stints are not serial capacity).
func saturatedLockExport() (timeline.Export, *span.SegmentExport) {
	ex := timeline.Export{
		Segment: "t16",
		Intervals: []timeline.Interval{
			{
				Start: 0, End: 1_000_000, Cycles: 1_000_000,
				Counters: map[string]uint64{
					"mm.lock.hold_cycles":        970_000,
					"mm.lock.read.hold_cycles":   400_000,
					"mm.lock.wait_cycles":        11_400_000,
					"pmem.bw.busy_cycles":        120_000,
					"pmem.throttle_stall_cycles": 5_000,
				},
				Gauges: map[string]timeline.GaugePoint{
					"mmap_sem.queue": {Sum: 113, Max: 15},
					"rq.depth":       {Sum: 140, Max: 16},
				},
				GaugeSamples: 10,
			},
		},
	}
	sp := &span.SegmentExport{
		Segment: "t16",
		WaitTotals: map[string]uint64{
			"mmap_sem": 11_000_000,
			"pmem_bw":  5_000,
		},
	}
	return ex, sp
}

func TestAnalyzeFingersSaturatedLock(t *testing.T) {
	ex, sp := saturatedLockExport()
	rep := Analyze(ex, sp)
	if rep.WindowCycles != 1_000_000 {
		t.Fatalf("WindowCycles = %d", rep.WindowCycles)
	}
	if len(rep.Resources) == 0 || rep.Resources[0].Name != "mmap_sem" {
		t.Fatalf("top resource = %+v, want mmap_sem first", rep.Resources)
	}
	top := rep.Resources[0]
	if top.Utilization != 0.97 {
		t.Errorf("mmap_sem util = %v, want 0.97", top.Utilization)
	}
	if top.MeanQueue != 11.3 {
		t.Errorf("mmap_sem mean queue = %v, want 11.3 (gauge 113/10)", top.MeanQueue)
	}
	if top.MaxQueue != 15 {
		t.Errorf("mmap_sem max queue = %v, want 15", top.MaxQueue)
	}
	want := "bottleneck: mmap_sem (util 0.97, avg queue 11.3)"
	if rep.Verdict != want {
		t.Errorf("verdict = %q, want %q", rep.Verdict, want)
	}
	// The advisory run-queue row has the deepest queue but must not win.
	for _, r := range rep.Resources {
		if r.Name == "cpu_runqueue" && !r.Advisory {
			t.Errorf("cpu_runqueue not advisory")
		}
	}
}

// TestAnalyzeFingersPMemBelowKnee checks the pre-knee shape: channel
// nearly saturated, lock barely held.
func TestAnalyzeFingersPMemBelowKnee(t *testing.T) {
	ex := timeline.Export{
		Segment: "t1",
		Intervals: []timeline.Interval{
			{
				Start: 0, End: 1_000_000, Cycles: 1_000_000,
				Counters: map[string]uint64{
					"mm.lock.hold_cycles":        40_000,
					"pmem.bw.busy_cycles":        930_000,
					"pmem.throttle_stall_cycles": 400_000,
				},
				Gauges:       map[string]timeline.GaugePoint{"mmap_sem.queue": {Sum: 0, Max: 0}},
				GaugeSamples: 10,
			},
		},
	}
	sp := &span.SegmentExport{Segment: "t1", WaitTotals: map[string]uint64{"pmem_bw": 400_000}}
	rep := Analyze(ex, sp)
	if rep.Resources[0].Name != "pmem_bw" {
		t.Fatalf("top resource = %s, want pmem_bw", rep.Resources[0].Name)
	}
	if !strings.HasPrefix(rep.Verdict, "bottleneck: pmem_bw") {
		t.Errorf("verdict = %q", rep.Verdict)
	}
}

// TestScoreReconcilesAgainstSpanWaits pins the cross-layer identity: for
// the charged pmem_bw kind, the throttle-stall counter the score's queue
// term uses and the span layer's once-counted wait total are the same
// cycles, so MeanQueue must equal SpanMeanQueue exactly.
func TestScoreReconcilesAgainstSpanWaits(t *testing.T) {
	ex, sp := saturatedLockExport()
	rep := Analyze(ex, sp)
	var pm *Resource
	for i := range rep.Resources {
		if rep.Resources[i].Name == "pmem_bw" {
			pm = &rep.Resources[i]
		}
	}
	if pm == nil {
		t.Fatal("no pmem_bw row")
	}
	if pm.SpanWaitCycles != sp.WaitTotals["pmem_bw"] {
		t.Fatalf("SpanWaitCycles = %d, want %d", pm.SpanWaitCycles, sp.WaitTotals["pmem_bw"])
	}
	if pm.MeanQueue != pm.SpanMeanQueue {
		t.Errorf("pmem_bw MeanQueue %v != SpanMeanQueue %v — layers disagree", pm.MeanQueue, pm.SpanMeanQueue)
	}
	// Score follows the documented formula exactly.
	if want := pm.Utilization * (1 + pm.MeanQueue); pm.Score != want {
		t.Errorf("score = %v, want %v", pm.Score, want)
	}
}

func TestAnalyzeDeterministicBytes(t *testing.T) {
	ex, sp := saturatedLockExport()
	a, err := json.Marshal(Analyze(ex, sp))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(Analyze(ex, sp))
	if string(a) != string(b) {
		t.Fatal("two analyses of the same exports marshalled differently")
	}
}

func TestAnalyzeEmptySegment(t *testing.T) {
	rep := Analyze(timeline.Export{Segment: "empty"}, nil)
	if rep.Verdict != "bottleneck: none (empty segment)" {
		t.Errorf("verdict = %q", rep.Verdict)
	}
	// Nil spans and no gauges: still no panic, advisory rows absent.
	rep = Analyze(timeline.Export{
		Segment:   "quiet",
		Intervals: []timeline.Interval{{Start: 0, End: 100, Cycles: 100}},
	}, nil)
	if rep.Verdict != "bottleneck: none (no saturated resource)" {
		t.Errorf("quiet verdict = %q", rep.Verdict)
	}
	for _, r := range rep.Resources {
		if r.Name == "cpu_runqueue" || r.Name == "dram" {
			t.Errorf("advisory row %s present without gauge samples", r.Name)
		}
	}
}
