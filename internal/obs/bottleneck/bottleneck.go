// Package bottleneck turns the observability stack's raw saturation
// telemetry into an automated USE-method verdict: given one experiment
// segment's timeline export (counter deltas + sampled saturation gauges)
// and span export (once-counted wait-kind totals), it computes each
// contended resource's utilization and mean queue depth, ranks them by a
// saturation score, and names the bottleneck.
//
// Scoring. For a resource r over a segment of W wall cycles:
//
//	util(r)  = busy_cycles(r) / W
//	queue(r) = mean waiters (sampled gauge where one exists, else
//	           wait_cycles(r)/W — Little's law: cycles threads spent
//	           waiting per wall cycle IS the average queue depth)
//	score(r) = util(r) × (1 + queue(r))
//
// The +1 keeps a busy-but-unqueued resource rankable: a channel at 95%
// utilization with no queue still scores 0.95, while the same channel
// with 10 waiting threads scores ~10× that. Utilization may exceed 1
// for resources with parallel servers (the PMem read and write channels
// book busy cycles independently).
//
// Cross-check. Each scored resource carries the span layer's
// once-counted wait total for its wait kind and the Little's-law queue
// derived from it, so the two observability layers must reconcile: for
// charged waits (pmem_bw) the counter the score uses and the span total
// are the same cycles booked through two independent paths and match
// exactly; for uncharged waits (mmap_sem) the span total is the pure
// park gap and the lock's wait_cycles counter exceeds it by exactly the
// wakeup cost per contended acquisition. Unit tests pin both identities.
//
// Advisory rows (CPU run queue, DRAM occupancy) are reported but never
// win the verdict: a deep run queue is available parallelism, not a
// saturated resource, and would otherwise outrank every real bottleneck
// in any experiment with more threads than cores.
//
// Everything is a pure function of the exports, so reports are
// deterministic and byte-stable under JSON marshalling.
package bottleneck

import (
	"fmt"

	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// Resource is one ranked row of the saturation report.
type Resource struct {
	// Name identifies the resource ("mmap_sem", "pmem_bw", "tlb_ipi",
	// "cpu_runqueue", "dram").
	Name string `json:"name"`
	// Utilization is busy cycles per wall cycle (may exceed 1 for
	// multi-channel resources).
	Utilization float64 `json:"utilization"`
	// MeanQueue is the average number of waiters the score uses.
	MeanQueue float64 `json:"mean_queue"`
	// MaxQueue is the worst sampled gauge instant (0 when no gauge).
	MaxQueue uint64 `json:"max_queue,omitempty"`
	// Score = Utilization × (1 + MeanQueue).
	Score float64 `json:"score"`
	// WaitKind is the span wait kind this resource maps to, if any.
	WaitKind string `json:"wait_kind,omitempty"`
	// SpanWaitCycles is the span layer's once-counted wait total for
	// WaitKind — the cross-check anchor.
	SpanWaitCycles uint64 `json:"span_wait_cycles,omitempty"`
	// SpanMeanQueue is SpanWaitCycles/W, the Little's-law queue depth
	// seen by the span layer.
	SpanMeanQueue float64 `json:"span_mean_queue,omitempty"`
	// Advisory rows inform but never win the verdict.
	Advisory bool `json:"advisory,omitempty"`
}

// Report is one segment's bottleneck attribution.
type Report struct {
	Segment      string     `json:"segment"`
	WindowCycles uint64     `json:"window_cycles"`
	Resources    []Resource `json:"resources"`
	// Verdict names the highest-scoring non-advisory resource, e.g.
	// "bottleneck: mmap_sem (util 0.97, avg queue 11.3)".
	Verdict string `json:"verdict"`
}

// Gauge track names the kernel registers (internal/kernel.registerGauges)
// and counter names it registers (registerCounters). The analyzer is the
// third leg of that contract.
const (
	gaugeMmapSemQueue  = "mmap_sem.queue"
	gaugeInflightIPIs  = "tlb.inflight_ipis"
	gaugeRunQueue      = "rq.depth"
	gaugeDramOccupancy = "dram.occupancy"
)

// Analyze builds the saturation report for one segment. spans may be nil
// (span layer disabled); the wait-total cross-check fields stay zero.
func Analyze(ex timeline.Export, spans *span.SegmentExport) Report {
	rep := Report{Segment: ex.Segment}
	w := window(ex)
	rep.WindowCycles = w
	if w == 0 {
		rep.Verdict = "bottleneck: none (empty segment)"
		return rep
	}
	fw := float64(w)
	counters := sumCounters(ex)
	waits := map[string]uint64{}
	if spans != nil {
		waits = spans.WaitTotals
	}

	// mmap_sem: writer hold cycles over wall time — only exclusive holds
	// consume the lock's serial capacity; reader stints run concurrently
	// (a fault-heavy single thread books reader hold ≈ wall without any
	// contention, which must not read as saturation). Reader pressure
	// still surfaces through the queue term: blocked readers park on the
	// same sampled waiter-count gauge. Queue falls back to Little's law
	// on the lock's own wait counters when no gauge was sampled.
	{
		hold := counters["mm.lock.hold_cycles"]
		mean, max, ok := gaugeStats(ex, gaugeMmapSemQueue)
		if !ok {
			mean = float64(counters["mm.lock.wait_cycles"]+counters["mm.lock.read.wait_cycles"]) / fw
		}
		rep.Resources = append(rep.Resources, scored(Resource{
			Name:           "mmap_sem",
			Utilization:    float64(hold) / fw,
			MeanQueue:      mean,
			MaxQueue:       max,
			WaitKind:       span.WaitMmapSem.String(),
			SpanWaitCycles: waits[span.WaitMmapSem.String()],
		}))
	}

	// PMem bandwidth: channel busy cycles over wall time; queue is the
	// throttle-stall total over wall time (Little's law — these are the
	// same cycles the span layer books as pmem_bw, so the cross-check is
	// exact).
	{
		rep.Resources = append(rep.Resources, scored(Resource{
			Name:           "pmem_bw",
			Utilization:    float64(counters["pmem.bw.busy_cycles"]) / fw,
			MeanQueue:      float64(counters["pmem.throttle_stall_cycles"]) / fw,
			WaitKind:       span.WaitPMemBW.String(),
			SpanWaitCycles: waits[span.WaitPMemBW.String()],
		}))
	}

	// TLB shootdown IPIs: the initiator's charged broadcast time is both
	// the utilization numerator and the span layer's ipi wait kind; queue
	// is the sampled in-flight IPI gauge.
	{
		mean, max, _ := gaugeStats(ex, gaugeInflightIPIs)
		rep.Resources = append(rep.Resources, scored(Resource{
			Name:           "tlb_ipi",
			Utilization:    float64(waits[span.WaitIPI.String()]) / fw,
			MeanQueue:      mean,
			MaxQueue:       max,
			WaitKind:       span.WaitIPI.String(),
			SpanWaitCycles: waits[span.WaitIPI.String()],
		}))
	}

	// Advisory: engine run-queue depth (deep queue = available
	// parallelism, not saturation) and DRAM occupancy (capacity signal,
	// not a queueing resource).
	if mean, max, ok := gaugeStats(ex, gaugeRunQueue); ok {
		rep.Resources = append(rep.Resources, Resource{
			Name: "cpu_runqueue", MeanQueue: mean, MaxQueue: max, Advisory: true,
		})
	}
	if mean, max, ok := gaugeStats(ex, gaugeDramOccupancy); ok {
		rep.Resources = append(rep.Resources, Resource{
			Name: "dram", Utilization: mean / 1000, MaxQueue: max, Advisory: true,
		})
	}

	for i := range rep.Resources {
		if r := &rep.Resources[i]; r.SpanWaitCycles > 0 {
			r.SpanMeanQueue = float64(r.SpanWaitCycles) / fw
		}
	}
	sortResources(rep.Resources)
	rep.Verdict = verdict(rep.Resources)
	return rep
}

// scored fills in the saturation score.
func scored(r Resource) Resource {
	r.Score = r.Utilization * (1 + r.MeanQueue)
	return r
}

// sortResources orders by score descending, advisory rows last, name
// ascending on ties — a total deterministic order.
func sortResources(rs []Resource) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b Resource) bool {
	if a.Advisory != b.Advisory {
		return !a.Advisory
	}
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Name < b.Name
}

// verdict names the winner among non-advisory rows.
func verdict(rs []Resource) string {
	for _, r := range rs {
		if r.Advisory || r.Score <= 0 {
			continue
		}
		return fmt.Sprintf("bottleneck: %s (util %.2f, avg queue %.1f)", r.Name, r.Utilization, r.MeanQueue)
	}
	return "bottleneck: none (no saturated resource)"
}

// window is the wall-cycle span the intervals cover.
func window(ex timeline.Export) uint64 {
	if len(ex.Intervals) == 0 {
		return 0
	}
	return ex.Intervals[len(ex.Intervals)-1].End - ex.Intervals[0].Start
}

// sumCounters folds the per-interval counter deltas back into segment
// totals.
func sumCounters(ex timeline.Export) map[string]uint64 {
	out := map[string]uint64{}
	for _, iv := range ex.Intervals {
		for name, v := range iv.Counters {
			out[name] += v
		}
	}
	return out
}

// gaugeStats returns one gauge's sample-weighted mean and max across the
// segment. ok reports whether the gauge was sampled at all (a segment
// whose every reading was zero still counts as sampled — zero pruning
// only drops the per-interval map entries, not the sample counts).
func gaugeStats(ex timeline.Export, name string) (mean float64, max uint64, ok bool) {
	var sum, samples uint64
	for _, iv := range ex.Intervals {
		samples += iv.GaugeSamples
		if g, hit := iv.Gauges[name]; hit {
			sum += g.Sum
			if g.Max > max {
				max = g.Max
			}
		}
	}
	if samples == 0 {
		return 0, 0, false
	}
	return float64(sum) / float64(samples), max, true
}
