package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// CycleAccount is the hierarchical cycle-attribution profiler: every cycle
// the simulator charges is booked against a dotted attribution path
// ("app.syscall.write.ntstore", "app.access.fault.minor", ...), per
// simulated core. It implements the sim engine's charge-sink signature, so
// wiring is one SetChargeSink call per engine. Leaves are exact paths;
// interior nodes exist implicitly as shared prefixes and are materialized
// by Snapshot views (WriteTable, TotalOf).
//
// Invariant (asserted by bench tests): Total() equals the sum of
// Engine.TotalCharged() over every engine wired to the account — the
// profile cannot silently lose time.
type CycleAccount struct {
	mu sync.Mutex
	// guarded by mu
	leaves map[string]*cycleLeaf
	total  uint64 // guarded by mu
}

type cycleLeaf struct {
	cycles uint64
	count  uint64
	byCore map[int]uint64
}

// NewCycleAccount creates an empty account.
func NewCycleAccount() *CycleAccount {
	return &CycleAccount{leaves: make(map[string]*cycleLeaf)}
}

// Charge books cycles against path on core. Nil-safe, and the signature
// matches sim.Engine.SetChargeSink so the method value wires directly.
func (a *CycleAccount) Charge(core int, path string, cycles uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	l := a.leaves[path]
	if l == nil {
		//lint:ignore hotalloc first charge to a unique path only; steady state hits the map
		l = &cycleLeaf{byCore: make(map[int]uint64)}
		a.leaves[path] = l
	}
	l.cycles += cycles
	l.count++
	l.byCore[core] += cycles
	a.total += cycles
	a.mu.Unlock()
}

// ChargeN books a pre-aggregated batch: cycles summed over count charges
// to the same (core, path). It is the bulk form of Charge used by the
// sharded scheduler's workers (wire via sim.Engine.SetChargeBulkSink);
// because the account only ever sums, N single charges and one ChargeN
// land in the identical state.
func (a *CycleAccount) ChargeN(core int, path string, cycles, count uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	l := a.leaves[path]
	if l == nil {
		//lint:ignore hotalloc first charge to a unique path only; steady state hits the map
		l = &cycleLeaf{byCore: make(map[int]uint64)}
		a.leaves[path] = l
	}
	l.cycles += cycles
	l.count += count
	l.byCore[core] += cycles
	a.total += cycles
	a.mu.Unlock()
}

// Total reports all cycles booked so far.
func (a *CycleAccount) Total() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Snapshot copies the account state.
func (a *CycleAccount) Snapshot() CycleSnapshot {
	if a == nil {
		return CycleSnapshot{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := CycleSnapshot{Total: a.total, Leaves: make(map[string]CycleLeaf, len(a.leaves))}
	for path, l := range a.leaves {
		cl := CycleLeaf{Cycles: l.cycles, Count: l.count, ByCore: make(map[int]uint64, len(l.byCore))}
		for c, v := range l.byCore {
			cl.ByCore[c] = v
		}
		s.Leaves[path] = cl
	}
	return s
}

// CycleLeaf is one attribution path's booked cost.
type CycleLeaf struct {
	Cycles uint64         `json:"cycles"`
	Count  uint64         `json:"count"`
	ByCore map[int]uint64 `json:"by_core,omitempty"`
}

// CycleSnapshot is a point-in-time reading of the account; it is what the
// daxvm-bench/v2 artifact embeds as cycle_breakdown.
type CycleSnapshot struct {
	Total  uint64               `json:"total"`
	Leaves map[string]CycleLeaf `json:"leaves"`
}

// Delta subtracts prev leaf-wise (the measured window's profile), dropping
// leaves that saw no new cycles.
func (s CycleSnapshot) Delta(prev CycleSnapshot) CycleSnapshot {
	d := CycleSnapshot{Leaves: make(map[string]CycleLeaf)}
	if s.Total > prev.Total {
		d.Total = s.Total - prev.Total
	}
	for path, l := range s.Leaves {
		p := prev.Leaves[path]
		if l.Cycles <= p.Cycles {
			continue
		}
		dl := CycleLeaf{Cycles: l.Cycles - p.Cycles}
		if l.Count > p.Count {
			dl.Count = l.Count - p.Count
		}
		for c, v := range l.ByCore {
			if pv := p.ByCore[c]; v > pv {
				if dl.ByCore == nil {
					dl.ByCore = make(map[int]uint64)
				}
				dl.ByCore[c] = v - pv
			}
		}
		d.Leaves[path] = dl
	}
	return d
}

// TotalOf sums every leaf at prefix or nested under it ("journal" covers
// both the "journal" leaf and "journal.commit").
func (s CycleSnapshot) TotalOf(prefix string) uint64 {
	var sum uint64
	for path, l := range s.Leaves {
		if path == prefix || strings.HasPrefix(path, prefix+".") {
			sum += l.Cycles
		}
	}
	return sum
}

// WriteFolded emits the snapshot in folded-stack format — one line per
// leaf, frames separated by semicolons, sample count last — directly
// consumable by flamegraph.pl or speedscope. Lines are sorted for
// deterministic output.
func (s CycleSnapshot) WriteFolded(w io.Writer) error {
	for _, p := range SortedKeys(s.Leaves) {
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.ReplaceAll(p, ".", ";"), s.Leaves[p].Cycles); err != nil {
			return err
		}
	}
	return nil
}

// cycleNode is one materialized row of the hierarchical table.
type cycleNode struct {
	path        string
	total, self uint64
	count       uint64
}

// nodes materializes every prefix of every leaf with its rolled-up total.
func (s CycleSnapshot) nodes() []cycleNode {
	m := map[string]*cycleNode{}
	for path, l := range s.Leaves {
		for i := 0; i <= len(path); i++ {
			if i == len(path) || path[i] == '.' {
				pre := path[:i]
				n := m[pre]
				if n == nil {
					n = &cycleNode{path: pre}
					m[pre] = n
				}
				n.total += l.Cycles
				n.count += l.Count
				if i == len(path) {
					n.self += l.Cycles
				}
			}
		}
	}
	out := make([]cycleNode, 0, len(m))
	for _, n := range m {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].path < out[j].path
	})
	return out
}

// WriteTable prints the topN nodes by rolled-up total: attributed share,
// total (node + descendants), self (cycles booked exactly at the node),
// and charge count. Nested rows indent by depth so the hierarchy reads.
func (s CycleSnapshot) WriteTable(w io.Writer, topN int) {
	nodes := s.nodes()
	if topN > 0 && len(nodes) > topN {
		nodes = nodes[:topN]
	}
	fmt.Fprintf(w, "  %7s %14s %14s %12s  %s\n", "%TOTAL", "TOTAL", "SELF", "CALLS", "PATH")
	for _, n := range nodes {
		pct := 0.0
		if s.Total > 0 {
			pct = 100 * float64(n.total) / float64(s.Total)
		}
		indent := strings.Repeat("  ", strings.Count(n.path, "."))
		fmt.Fprintf(w, "  %6.2f%% %14d %14d %12d  %s%s\n", pct, n.total, n.self, n.count, indent, n.path)
	}
}
