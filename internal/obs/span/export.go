package span

import (
	"fmt"
	"io"
	"sort"

	"daxvm/internal/obs"
)

// Span is one exported span-tree node. Children always ran on the same
// thread as the parent (spans nest on the open-span stack), so a tree
// reads as one operation's timeline. Self counts cycles charged while
// this exact span was innermost; TreeSelf adds all descendants.
// Charged wait kinds are a subset of self-time, uncharged ones
// (mmap_sem, journal_flush) a subset of Dur − TreeSelf.
type Span struct {
	Class    string            `json:"class"`
	Core     int               `json:"core"`
	Start    uint64            `json:"start_cycles"`
	Dur      uint64            `json:"dur_cycles"`
	Self     uint64            `json:"self_cycles"`
	TreeSelf uint64            `json:"tree_self_cycles"`
	Waits    map[string]uint64 `json:"waits,omitempty"`
	Children []Span            `json:"children,omitempty"`
}

// Decomp is a latency decomposition of one exemplar operation:
// TotalCycles = SelfCycles (charged work) + BlockedCycles (uncharged
// park/queue gaps). Waits name the known reasons inside either half.
type Decomp struct {
	TotalCycles   uint64            `json:"total_cycles"`
	SelfCycles    uint64            `json:"self_cycles"`
	BlockedCycles uint64            `json:"blocked_cycles"`
	Waits         map[string]uint64 `json:"waits,omitempty"`
}

// ClassExport is the critical-path summary of one op class in a
// segment: counts, cycle totals, latency quantiles from the log2
// histogram, the tree-aggregated wait decomposition, and the p99
// exemplar's exact decomposition.
type ClassExport struct {
	Class       string            `json:"class"`
	Count       uint64            `json:"count"`
	TotalCycles uint64            `json:"total_cycles"`
	SelfCycles  uint64            `json:"self_cycles"`
	AvgCycles   float64           `json:"avg_cycles"`
	P50Cycles   float64           `json:"p50_cycles"`
	P99Cycles   float64           `json:"p99_cycles"`
	Waits       map[string]uint64 `json:"waits,omitempty"`
	P99         *Decomp           `json:"p99_exemplar,omitempty"`
}

// SegmentExport is everything the span layer learned during one
// segment: per-class critical-path rows (sorted by class name), the
// top-K exemplar trees per class (slowest first), and the segment's
// once-counted wait-kind totals. Unlike the per-class Waits (which
// multi-count by span nesting depth), WaitTotals book every classified
// charge and every uncharged Wait gap exactly once, so they reconcile
// against the resource models' stall counters and anchor the bottleneck
// analyzer's cross-check.
type SegmentExport struct {
	Segment    string            `json:"segment"`
	Classes    []ClassExport     `json:"classes"`
	Exemplars  map[string][]Span `json:"exemplars,omitempty"`
	WaitTotals map[string]uint64 `json:"wait_totals,omitempty"`
}

// snapshot deep-copies a finished node tree into the export form.
func snapshot(n *node) Span {
	s := Span{
		Class:    n.class,
		Core:     n.core,
		Start:    n.start,
		Dur:      n.dur,
		Self:     n.self,
		TreeSelf: n.treeSelf(),
		Waits:    waitMap(n.waits),
	}
	if len(n.children) > 0 {
		//lint:ignore hotalloc exemplar snapshot: deep copy only when a span enters the top-K
		s.Children = make([]Span, len(n.children))
		for i, ch := range n.children {
			s.Children[i] = snapshot(ch)
		}
	}
	return s
}

// waitMap converts the fixed wait array to its sparse serialized form
// (nil when all zero, so empty maps never reach the artifact).
func waitMap(w [numWaitKinds]uint64) map[string]uint64 {
	var m map[string]uint64
	for k, v := range w {
		if v == 0 {
			continue
		}
		if m == nil {
			//lint:ignore hotalloc exemplar snapshot: only when a span enters the top-K
			m = make(map[string]uint64, numWaitKinds)
		}
		m[WaitKind(k).String()] = v
	}
	return m
}

// Export returns every finished segment plus the current one if it saw
// spans, in run order.
func (c *Collector) Export() []SegmentExport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SegmentExport
	for _, s := range c.done {
		out = append(out, exportSegment(s))
	}
	if !c.cur.empty() {
		out = append(out, exportSegment(c.cur))
	}
	return out
}

// ExportSegment returns the latest segment with the given id, which is
// what an artifact for that experiment embeds (a later run of the same
// segment wins, matching how artifacts resolve repeated runs).
func (c *Collector) ExportSegment(id string) (SegmentExport, bool) {
	var found SegmentExport
	ok := false
	for _, ex := range c.Export() {
		if ex.Segment == id {
			found, ok = ex, true
		}
	}
	return found, ok
}

func exportSegment(s *segment) SegmentExport {
	out := SegmentExport{Segment: s.id, WaitTotals: waitMap(s.waits)}
	for _, name := range obs.SortedKeys(s.classes) {
		st := s.classes[name]
		snap := st.hist.Snapshot()
		ce := ClassExport{
			Class:       name,
			Count:       st.count,
			TotalCycles: st.totalDur,
			SelfCycles:  st.totalSelf,
			AvgCycles:   float64(st.totalDur) / float64(st.count),
			P50Cycles:   snap.Quantile(0.50),
			P99Cycles:   snap.Quantile(0.99),
			Waits:       waitMap(st.waits),
		}
		if len(st.top) > 0 {
			// The p99 exemplar is the retained op closest above the
			// histogram's p99 estimate (the reservoir is ascending), or
			// the slowest retained op if the estimate overshoots.
			pick := st.top[len(st.top)-1]
			for _, ex := range st.top {
				if float64(ex.dur) >= ce.P99Cycles {
					pick = ex
					break
				}
			}
			ce.P99 = &Decomp{
				TotalCycles:   pick.dur,
				SelfCycles:    pick.treeSelf,
				BlockedCycles: pick.dur - pick.treeSelf,
				Waits:         waitMap(pick.waits),
			}
			exs := make([]exemplar, len(st.top))
			copy(exs, st.top)
			sort.Slice(exs, func(i, j int) bool {
				if exs[i].dur != exs[j].dur {
					return exs[i].dur > exs[j].dur
				}
				return exs[i].seq < exs[j].seq
			})
			trees := make([]Span, len(exs))
			for i, ex := range exs {
				trees[i] = ex.tree
			}
			if out.Exemplars == nil {
				out.Exemplars = map[string][]Span{}
			}
			out.Exemplars[name] = trees
		}
		out.Classes = append(out.Classes, ce)
	}
	return out
}

// WriteTable renders one segment's critical-path breakdown as the
// human-readable table daxbench prints: per op class, latency stats
// and the share of class time explained by each wait kind.
func WriteTable(w io.Writer, ex SegmentExport) {
	if len(ex.Classes) == 0 {
		return
	}
	fmt.Fprintf(w, "-- critical path (%s) --\n", ex.Segment)
	fmt.Fprintf(w, "%-22s %10s %12s %12s %7s  %s\n",
		"op class", "count", "avg cyc", "p99 cyc", "self%", "waits (% of class time)")
	for _, ce := range ex.Classes {
		selfPct := 0.0
		if ce.TotalCycles > 0 {
			selfPct = 100 * float64(ce.SelfCycles) / float64(ce.TotalCycles)
		}
		fmt.Fprintf(w, "%-22s %10d %12.0f %12.0f %7.1f  %s\n",
			ce.Class, ce.Count, ce.AvgCycles, ce.P99Cycles, selfPct, waitSummary(ce))
	}
}

// waitSummary formats a class's wait kinds as "name pct" pairs, largest
// first, name-ascending on ties.
func waitSummary(ce ClassExport) string {
	if len(ce.Waits) == 0 || ce.TotalCycles == 0 {
		return "-"
	}
	names := obs.SortedKeys(ce.Waits)
	sort.SliceStable(names, func(i, j int) bool {
		return ce.Waits[names[i]] > ce.Waits[names[j]]
	})
	s := ""
	for i, name := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %.1f%%", name, 100*float64(ce.Waits[name])/float64(ce.TotalCycles))
	}
	return s
}
