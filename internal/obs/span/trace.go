package span

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"daxvm/internal/obs"
)

// WriteChromeTrace exports the exemplar span trees of every segment as
// Chrome trace-event JSON, viewable in Perfetto next to the simulator's
// event trace: same timebase (virtual cycles over cyclesPerUsec), same
// track convention (pid 0, tid = simulated core). Each exemplar renders
// as nested "X" slices, and each multi-span exemplar additionally
// carries one flow (s/t/f chain) so Perfetto highlights the whole
// causal tree when any slice is selected. Output is deterministic:
// segments in run order, classes sorted, exemplars slowest-first.
func WriteChromeTrace(w io.Writer, segs []SegmentExport, cyclesPerUsec float64) error {
	if cyclesPerUsec <= 0 {
		cyclesPerUsec = 2700
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.WriteString(s)
		return err
	}
	usec := func(cycles uint64) string {
		return strconv.FormatFloat(float64(cycles)/cyclesPerUsec, 'f', 3, 64)
	}
	// Name the core tracks that carry exemplar slices.
	cores := map[int]bool{}
	for _, seg := range segs {
		for _, trees := range seg.Exemplars {
			for _, t := range trees {
				collectCores(&t, cores)
			}
		}
	}
	ids := make([]int, 0, len(cores))
	for c := range cores {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, c := range ids {
		meta := fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"core %d"}}`, c, c)
		if err := emit(meta); err != nil {
			return err
		}
	}
	flowID := 0
	for _, seg := range segs {
		for _, class := range obs.SortedKeys(seg.Exemplars) {
			for rank, tree := range seg.Exemplars[class] {
				flowID++
				if err := writeTree(emit, usec, &tree, seg.Segment, rank, flowID); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func collectCores(s *Span, cores map[int]bool) {
	cores[s.Core] = true
	for i := range s.Children {
		collectCores(&s.Children[i], cores)
	}
}

// writeTree emits one exemplar: its slices in pre-order plus, when the
// tree has more than one span, a flow chain binding them together.
func writeTree(emit func(string) error, usec func(uint64) string, root *Span, segment string, rank, flowID int) error {
	var nodes []*Span
	var walk func(*Span)
	walk = func(s *Span) {
		nodes = append(nodes, s)
		for i := range s.Children {
			walk(&s.Children[i])
		}
	}
	walk(root)
	for _, s := range nodes {
		args := fmt.Sprintf(`{"segment":%s,"rank":%d,"self_cycles":%d,"tree_self_cycles":%d%s}`,
			strconv.Quote(segment), rank, s.Self, s.TreeSelf, waitArgs(s.Waits))
		line := fmt.Sprintf(`{"name":%s,"cat":"exemplar","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d,"args":%s}`,
			strconv.Quote(s.Class), usec(s.Start), usec(s.Dur), s.Core, args)
		if err := emit(line); err != nil {
			return err
		}
	}
	if len(nodes) < 2 {
		return nil
	}
	for i, s := range nodes {
		ph := "t"
		switch i {
		case 0:
			ph = "s"
		case len(nodes) - 1:
			ph = "f"
		}
		bp := ""
		if ph == "f" {
			bp = `,"bp":"e"`
		}
		line := fmt.Sprintf(`{"name":%s,"cat":"exemplar_flow","ph":%q,"id":%d,"ts":%s,"pid":0,"tid":%d%s}`,
			strconv.Quote(root.Class), ph, flowID, usec(s.Start), s.Core, bp)
		if err := emit(line); err != nil {
			return err
		}
	}
	return nil
}

// waitArgs renders a span's wait decomposition as deterministic JSON
// (sorted keys), or nothing when empty.
func waitArgs(waits map[string]uint64) string {
	if len(waits) == 0 {
		return ""
	}
	s := `,"waits":{`
	for i, k := range obs.SortedKeys(waits) {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s:%d", strconv.Quote(k), waits[k])
	}
	return s + "}"
}
