package span

import (
	"bytes"
	"strings"
	"testing"

	"daxvm/internal/sim"
)

// runOne drives a single-thread scenario with the collector attached as
// the engine's charge observer, the way the kernel wires it.
func runOne(c *Collector, body func(t *sim.Thread)) *sim.Engine {
	e := sim.New()
	e.SetChargeObserver(c.Observe)
	e.Go("t0", 0, 0, body)
	e.Run()
	return e
}

// TestSelfTimeReconciliation is the layer's core invariant on a nested
// span tree: every charge lands in exactly one of booked/outside, the
// totals match the engine, and tree self-times roll up children.
func TestSelfTimeReconciliation(t *testing.T) {
	c := New(4)
	e := runOne(c, func(th *sim.Thread) {
		th.Charge(7) // before any span: outside
		c.Begin(th, "outer")
		th.Charge(100)
		c.Begin(th, "inner")
		th.Charge(50)
		c.End(th)
		th.Charge(25)
		c.End(th)
		th.Charge(3) // after: outside
	})
	if got := c.BookedCycles(); got != 175 {
		t.Errorf("booked = %d, want 175", got)
	}
	if got := c.OutsideCycles(); got != 10 {
		t.Errorf("outside = %d, want 10", got)
	}
	if got, want := c.ObservedCycles(), e.TotalCharged(); got != want {
		t.Errorf("observed %d != engine charged %d", got, want)
	}
	exs := c.Export()
	if len(exs) != 1 {
		t.Fatalf("exported %d segments, want 1", len(exs))
	}
	byClass := map[string]ClassExport{}
	for _, ce := range exs[0].Classes {
		byClass[ce.Class] = ce
	}
	outer := byClass["outer"]
	if outer.SelfCycles != 175 || outer.TotalCycles != 175 {
		t.Errorf("outer self/total = %d/%d, want 175/175", outer.SelfCycles, outer.TotalCycles)
	}
	inner := byClass["inner"]
	if inner.SelfCycles != 50 {
		t.Errorf("inner self = %d, want 50", inner.SelfCycles)
	}
	// The outer exemplar tree must carry the inner span as a child with
	// the split self-times intact.
	tree := exs[0].Exemplars["outer"][0]
	if tree.Self != 125 || tree.TreeSelf != 175 {
		t.Errorf("outer exemplar self/treeSelf = %d/%d, want 125/175", tree.Self, tree.TreeSelf)
	}
	if len(tree.Children) != 1 || tree.Children[0].Class != "inner" || tree.Children[0].Self != 50 {
		t.Errorf("outer exemplar children = %+v", tree.Children)
	}
}

// TestWaitClassification checks both wait flavours: charged stalls
// classified from charge labels (subset of self) and uncharged blocked
// gaps via Wait plus clock advance without charges (subset of
// dur − treeSelf).
func TestWaitClassification(t *testing.T) {
	c := New(1)
	runOne(c, func(th *sim.Thread) {
		c.Begin(th, "op")
		th.ChargeAs("bw_stall", 40)
		th.ChargeAs("remote_read", 10)
		th.ChargeAs("ipi_send", 5)
		th.Charge(45) // plain work, no wait kind
		th.Sleep(30)  // uncharged gap: blocked time
		c.Wait(th, WaitMmapSem, 30)
		c.End(th)
	})
	ex := c.Export()[0]
	ce := ex.Classes[0]
	if ce.TotalCycles != 130 {
		t.Fatalf("dur = %d, want 130 (100 charged + 30 slept)", ce.TotalCycles)
	}
	if ce.SelfCycles != 100 {
		t.Fatalf("self = %d, want 100", ce.SelfCycles)
	}
	want := map[string]uint64{"pmem_bw": 40, "remote_numa": 10, "ipi": 5, "mmap_sem": 30}
	for k, v := range want {
		if ce.Waits[k] != v {
			t.Errorf("waits[%s] = %d, want %d", k, ce.Waits[k], v)
		}
	}
	d := ce.P99
	if d == nil {
		t.Fatal("no p99 exemplar")
	}
	if d.TotalCycles != 130 || d.SelfCycles != 100 || d.BlockedCycles != 30 {
		t.Errorf("p99 decomp = %+v, want 130/100/30", d)
	}
}

// TestJournalChildRule: a journal.commit child folds into the parent as
// one opaque journal_flush wait of the commit's full duration — its
// internal bw stalls must not double-book onto the parent.
func TestJournalChildRule(t *testing.T) {
	c := New(1)
	runOne(c, func(th *sim.Thread) {
		c.Begin(th, "syscall.append")
		th.Charge(20)
		c.Begin(th, ClassJournalCommit)
		th.ChargeAs("bw_stall", 30)
		th.Charge(20)
		c.End(th)
		c.End(th)
	})
	ex := c.Export()[0]
	byClass := map[string]ClassExport{}
	for _, ce := range ex.Classes {
		byClass[ce.Class] = ce
	}
	app := byClass["syscall.append"]
	if app.Waits["journal_flush"] != 50 {
		t.Errorf("parent journal_flush = %d, want 50 (commit dur)", app.Waits["journal_flush"])
	}
	if app.Waits["pmem_bw"] != 0 {
		t.Errorf("parent pmem_bw = %d, want 0 (folded into journal_flush)", app.Waits["pmem_bw"])
	}
	if app.SelfCycles != 70 {
		t.Errorf("parent tree self = %d, want 70 (commit work still self-time)", app.SelfCycles)
	}
	jc := byClass[ClassJournalCommit]
	if jc.Waits["pmem_bw"] != 30 {
		t.Errorf("commit class pmem_bw = %d, want 30", jc.Waits["pmem_bw"])
	}
}

// TestRemoteChargesStayOutsideSpans: AddRemote advances the target's
// clock (stretching span duration) but books to no span, so self-time
// remains exactly the cycles the op's own thread charged.
func TestRemoteChargesStayOutsideSpans(t *testing.T) {
	c := New(1)
	e := sim.New()
	e.SetChargeObserver(c.Observe)
	var victim *sim.Thread
	e.Go("victim", 0, 0, func(th *sim.Thread) {
		victim = th
		c.Begin(th, "access")
		th.Charge(100)
		th.Sleep(50) // window for the remote booking
		c.End(th)
	})
	e.Go("ipi", 1, 120, func(th *sim.Thread) {
		victim.AddRemote("shootdown.ipi_handler", 25)
	})
	e.Run()
	if got := c.RemoteCycles(); got != 25 {
		t.Errorf("remote = %d, want 25", got)
	}
	ce := c.Export()[0].Classes[0]
	if ce.SelfCycles != 100 {
		t.Errorf("self = %d, want 100 (remote booking excluded)", ce.SelfCycles)
	}
	// The remote booking lands inside the sleep window, which already
	// covers it: dur stays 150 and the handler cost is in no span.
	if ce.TotalCycles != 150 {
		t.Errorf("dur = %d, want 150", ce.TotalCycles)
	}
	if got, want := c.ObservedCycles(), e.TotalCharged(); got != want {
		t.Errorf("observed %d != engine charged %d", got, want)
	}
}

// TestExemplarReservoirDeterminism pins the top-K rules: strict-greater
// replacement (ties keep the earliest op) and slowest-first export
// order with arrival-order tiebreak.
func TestExemplarReservoirDeterminism(t *testing.T) {
	c := New(2)
	durs := []uint64{10, 30, 20, 30, 5, 30}
	runOne(c, func(th *sim.Thread) {
		for _, d := range durs {
			c.Begin(th, "op")
			th.Sleep(d)
			c.End(th)
		}
	})
	trees := c.Export()[0].Exemplars["op"]
	if len(trees) != 2 {
		t.Fatalf("kept %d exemplars, want 2", len(trees))
	}
	// Both kept exemplars are 30-cycle ops; the first and second 30s
	// (starts 10 and 60) survive, the third is a tie and is dropped.
	if trees[0].Dur != 30 || trees[1].Dur != 30 {
		t.Fatalf("kept durs %d,%d, want 30,30", trees[0].Dur, trees[1].Dur)
	}
	if trees[0].Start != 10 || trees[1].Start != 60 {
		t.Errorf("kept starts %d,%d, want 10,60 (earliest ties win, arrival order)", trees[0].Start, trees[1].Start)
	}
}

// TestSegments mirrors the timeline contract: spans land in the segment
// open at their End, and ExportSegment finds a named segment.
func TestSegments(t *testing.T) {
	c := New(1)
	e := sim.New()
	e.SetChargeObserver(c.Observe)
	e.Go("t0", 0, 0, func(th *sim.Thread) {
		c.Begin(th, "warmup")
		th.Charge(10)
		c.End(th)
	})
	e.Run()
	c.StartSegment("ftcost")
	e2 := sim.New()
	e2.SetChargeObserver(c.Observe)
	e2.Go("t0", 0, 0, func(th *sim.Thread) {
		c.Begin(th, "op")
		th.Charge(10)
		c.End(th)
	})
	e2.Run()
	exs := c.Export()
	if len(exs) != 2 || exs[0].Segment != "" || exs[1].Segment != "ftcost" {
		t.Fatalf("segments = %+v", exs)
	}
	seg, ok := c.ExportSegment("ftcost")
	if !ok || len(seg.Classes) != 1 || seg.Classes[0].Class != "op" {
		t.Fatalf("ExportSegment(ftcost) = %+v, %v", seg, ok)
	}
}

// TestNilCollector: every entry point must be a cheap no-op on nil, so
// unwired subsystems need no guards.
func TestNilCollector(t *testing.T) {
	var c *Collector
	runOne(c, func(th *sim.Thread) {
		c.Begin(th, "op")
		th.Charge(10)
		c.Wait(th, WaitMmapSem, 5)
		c.End(th)
	})
	if c.Export() != nil || c.ObservedCycles() != 0 {
		t.Fatal("nil collector must export nothing")
	}
	if _, ok := c.ExportSegment("x"); ok {
		t.Fatal("nil collector must have no segments")
	}
}

// TestChromeTraceExport sanity-checks the Perfetto export: slices for
// every span, one flow chain per multi-span exemplar, valid JSON shape.
func TestChromeTraceExport(t *testing.T) {
	c := New(1)
	runOne(c, func(th *sim.Thread) {
		c.Begin(th, "outer")
		th.Charge(10)
		c.Begin(th, "inner")
		th.Charge(5)
		c.End(th)
		c.End(th)
	})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c.Export(), 2700); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"X"`, `"ph":"s"`, `"ph":"f"`, `"cat":"exemplar"`, `"name":"outer"`, `"name":"inner"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	// Two runs must serialize identically.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, c.Export(), 2700); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("trace export not deterministic")
	}
}

// TestEndWithoutBegin: unmatched End is an instrumentation bug and must
// fail loudly, like PopAttr without PushAttr.
func TestEndWithoutBegin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin did not panic")
		}
	}()
	c := New(1)
	runOne(c, func(th *sim.Thread) {
		c.End(th)
	})
}
