// Package span is the causal layer of the observability stack: every
// top-level simulated operation (page fault, syscall, data-path access,
// journal commit, NOVA log append, TLB shootdown) opens a span in
// virtual time, nested operations become child spans, and blocking
// reasons are recorded as typed wait kinds. Where the cycle profiler
// (obs.CycleAccount) answers "where did all cycles go in aggregate",
// spans answer "what did *this* operation spend its latency on" — the
// per-op provenance that aggregate counters cannot give for tail
// phenomena like the paper's mmap_sem collapse.
//
// Reconciliation contract (the same zero-unattributed discipline as the
// cycle profiler): the collector observes every engine charge through
// sim.Engine's charge observer, so
//
//	BookedCycles + OutsideCycles + RemoteCycles == Σ Engine.TotalCharged
//
// holds exactly. Booked cycles are charges made by a thread while it
// has a span open (they become span self-time); outside cycles are
// charges with no open span (daemons, setup bootstrap); remote cycles
// are AddRemote bookings (IPI handler work), which advance the target
// thread's clock without being work the target's current operation
// initiated, so they belong to no span. Consequently, for a span class
// whose Begin/End window coincides with an attribution frame (e.g.
// "fault.minor"), the class's summed tree self-time equals the cycles
// the profiler attributed under that frame.
//
// Wait kinds decompose a span two ways, and the two overlap by design:
//   - charged waits (pmem_bw, remote_numa, ipi) are a subset of
//     self-time, classified from the charge's attribution label;
//   - blocked waits (mmap_sem, journal_flush via lock hooks) are
//     uncharged park gaps, a subset of Dur − TreeSelf.
//
// Everything here is deterministic: spans live in virtual time, the
// exemplar reservoir breaks ties by arrival order, and exports sort by
// class name — two runs of the same binary serialize byte-identically.
package span

import (
	"strings"
	"sync"

	"daxvm/internal/obs"
	"daxvm/internal/sim"
)

// WaitKind is a typed blocking reason recorded on a span.
type WaitKind uint8

const (
	// WaitMmapSem is uncharged time parked on a contended mmap_sem
	// (reader or writer side), fed by the RWSem contention hook.
	WaitMmapSem WaitKind = iota
	// WaitPMemBW is charged stall time against a PMem device's
	// bandwidth model ("bw_stall" charge labels).
	WaitPMemBW
	// WaitRemoteNUMA is the charged surcharge for crossing sockets on
	// the data path ("remote_read"/"remote_write"/"data_remote").
	WaitRemoteNUMA
	// WaitIPI is charged TLB-shootdown broadcast time on the initiator
	// ("ipi_send"/"ipi_wait").
	WaitIPI
	// WaitJournal is journal-flush time: uncharged waits on the journal
	// mutex plus, on a parent span, the full duration of any child
	// journal-commit span (the commit is one opaque flush from the
	// enclosing operation's point of view).
	WaitJournal

	numWaitKinds = 5
)

// ClassJournalCommit is the span class of an ext4 journal commit; the
// collector folds child spans of this class into the parent's
// WaitJournal rather than propagating their internal waits.
const ClassJournalCommit = "journal.commit"

var waitNames = [numWaitKinds]string{"mmap_sem", "pmem_bw", "remote_numa", "ipi", "journal_flush"}

// String returns the stable serialized name of the wait kind.
func (k WaitKind) String() string {
	if int(k) < len(waitNames) {
		return waitNames[k]
	}
	return "unknown"
}

// node is one live span. Nodes are pooled: a finished root tree is
// recycled unless an exemplar snapshot kept a deep copy.
type node struct {
	class      string
	core       int
	seq        uint64 // global arrival order, the deterministic tiebreak
	start      uint64 // virtual cycles at Begin
	dur        uint64 // set at End
	self       uint64 // cycles this thread charged while innermost here
	childSelf  uint64 // Σ finished children's tree self
	waits      [numWaitKinds]uint64
	childWaits [numWaitKinds]uint64
	children   []*node
}

func (n *node) treeSelf() uint64 { return n.self + n.childSelf }

func (n *node) treeWaits() [numWaitKinds]uint64 {
	w := n.waits
	for k := range w {
		w[k] += n.childWaits[k]
	}
	return w
}

// tstate is the per-thread open-span stack. Spans nest strictly (the
// instrumented layers bracket with Begin/defer End), so a stack is the
// whole story.
type tstate struct {
	stack []*node
}

// classStats aggregates finished spans of one class within a segment.
type classStats struct {
	count     uint64
	totalDur  uint64
	totalSelf uint64 // Σ tree self
	waits     [numWaitKinds]uint64
	hist      obs.Histogram
	top       []exemplar // ascending by (dur, seq), len ≤ collector K
}

// exemplar is a retained slow-op record: the full span tree plus the
// roll-ups the critical-path table needs.
type exemplar struct {
	dur      uint64
	seq      uint64
	treeSelf uint64
	waits    [numWaitKinds]uint64
	tree     Span
}

// segment groups spans the way the timeline groups intervals: one
// segment per experiment run, so artifacts can slice per experiment.
// waits are the segment's once-counted wait-kind totals: every charged
// classified cycle and every uncharged Wait gap lands here exactly once,
// whether or not a span is open. Per-class wait stats multi-count by
// nesting depth (finish propagates tree waits to parents), so these
// totals — not the class sums — are what reconcile against the resource
// models' own stall counters and what the bottleneck analyzer
// cross-checks saturation scores against.
type segment struct {
	id      string
	classes map[string]*classStats
	waits   [numWaitKinds]uint64
}

// empty reports whether the segment saw neither spans nor wait cycles.
func (s *segment) empty() bool {
	if len(s.classes) > 0 {
		return false
	}
	for _, v := range s.waits {
		if v != 0 {
			return false
		}
	}
	return true
}

func (s *segment) class(name string) *classStats {
	st := s.classes[name]
	if st == nil {
		//lint:ignore hotalloc once per new span class in a segment; steady state hits the map
		st = &classStats{}
		s.classes[name] = st
	}
	return st
}

// noKind marks a charge label that maps to no wait kind.
const noKind = WaitKind(numWaitKinds)

// Collector owns the per-thread span stacks and the per-segment
// aggregates. All entry points are nil-receiver safe so unwired
// subsystems pay one branch, mirroring the tracer and profiler.
type Collector struct {
	mu sync.Mutex

	k   int    // exemplars kept per class
	seq uint64 // Begin arrival counter

	booked  uint64 // charges landed in an open span
	outside uint64 // charges with no open span
	remote  uint64 // AddRemote bookings (never in a span)

	threads map[*sim.Thread]*tstate
	lastT   *sim.Thread // single-entry state cache: consecutive
	lastS   *tstate     // charges come from the running thread

	waitCls map[string]WaitKind // interned charge path → kind (noKind = none)

	cur  *segment
	done []*segment

	free []*node
}

// New creates a collector keeping at most k exemplar span trees per op
// class per segment (k <= 0 disables exemplars; stats are still kept).
func New(k int) *Collector {
	return &Collector{
		k:       k,
		threads: map[*sim.Thread]*tstate{},
		waitCls: map[string]WaitKind{},
		cur:     &segment{classes: map[string]*classStats{}},
	}
}

func (c *Collector) state(t *sim.Thread) *tstate {
	if t == c.lastT {
		return c.lastS
	}
	ts := c.threads[t]
	if ts == nil {
		//lint:ignore hotalloc once per thread; steady state hits the one-slot cache or the map
		ts = &tstate{}
		c.threads[t] = ts
	}
	c.lastT, c.lastS = t, ts
	return ts
}

func (c *Collector) newNode() *node {
	if n := len(c.free); n > 0 {
		nd := c.free[n-1]
		c.free = c.free[:n-1]
		return nd
	}
	//lint:ignore hotalloc pool miss: steady state recycles finished trees through the free list
	return &node{}
}

// recycle returns a finished root tree to the free list. Exemplar
// snapshots deep-copied out of the tree are unaffected.
func (c *Collector) recycle(n *node) {
	for _, ch := range n.children {
		c.recycle(ch)
	}
	kids := n.children[:0]
	*n = node{}
	n.children = kids
	//lint:ignore hotalloc free list: bounded by the peak live tree size
	c.free = append(c.free, n)
}

// Begin opens a span of the given class on t at its current virtual
// time. Classes mirror the attribution labels of the operation they
// wrap ("fault.minor", "syscall.append", ...).
func (c *Collector) Begin(t *sim.Thread, class string) {
	if c == nil {
		return
	}
	// On a sharded engine the call is deferred: the scheduler replays it
	// through Apply in emission order, off the model goroutine. The
	// timestamp must be captured here — the clock moves on immediately.
	if t.DeferObs(sim.ObsRecord{Kind: sim.ObsSpanBegin, T: t, Path: class, Now: t.Now()}) {
		return
	}
	c.beginAt(t, class, t.Now())
}

func (c *Collector) beginAt(t *sim.Thread, class string, now uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.state(t)
	c.seq++
	n := c.newNode()
	n.class = class
	n.core = t.Core
	n.seq = c.seq
	n.start = now
	//lint:ignore hotalloc span stack: reaches its steady nesting depth after warm-up
	ts.stack = append(ts.stack, n)
}

// End closes t's innermost open span. Panics on an unmatched End — an
// instrumentation bug, like PopAttr without PushAttr.
func (c *Collector) End(t *sim.Thread) {
	if c == nil {
		return
	}
	if t.DeferObs(sim.ObsRecord{Kind: sim.ObsSpanEnd, T: t, Now: t.Now()}) {
		return
	}
	c.endAt(t, t.Now())
}

func (c *Collector) endAt(t *sim.Thread, now uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.state(t)
	if len(ts.stack) == 0 {
		panic("span: End without matching Begin")
	}
	n := ts.stack[len(ts.stack)-1]
	ts.stack = ts.stack[:len(ts.stack)-1]
	n.dur = now - n.start
	c.finish(n, ts)
}

// finish folds a closed span into its segment's class stats and either
// attaches it to its parent or recycles the finished root tree.
func (c *Collector) finish(n *node, ts *tstate) {
	st := c.cur.class(n.class)
	st.count++
	st.totalDur += n.dur
	tSelf := n.treeSelf()
	st.totalSelf += tSelf
	tw := n.treeWaits()
	for k := range tw {
		st.waits[k] += tw[k]
	}
	st.hist.Observe(n.dur)
	c.consider(st, n, tSelf, tw)
	if len(ts.stack) > 0 {
		p := ts.stack[len(ts.stack)-1]
		p.childSelf += tSelf
		if n.class == ClassJournalCommit {
			// From the enclosing op's point of view the commit is one
			// opaque flush: book its whole duration as journal wait and
			// drop its internal decomposition (avoids double counting
			// the commit's own bw stalls against the parent).
			p.childWaits[WaitJournal] += n.dur
		} else {
			for k := range tw {
				p.childWaits[k] += tw[k]
			}
		}
		//lint:ignore hotalloc children slices are recycled with their nodes; growth amortizes away
		p.children = append(p.children, n)
		return
	}
	c.recycle(n)
}

// consider offers a finished span to the class's top-K reservoir.
// Replacement requires strictly greater duration, so among equal-length
// ops the earliest seen survive; combined with the virtual-time seq
// tiebreak this makes the kept set and its order run-invariant.
func (c *Collector) consider(st *classStats, n *node, tSelf uint64, tw [numWaitKinds]uint64) {
	if c.k <= 0 {
		return
	}
	if len(st.top) == c.k && n.dur <= st.top[0].dur {
		return
	}
	ex := exemplar{dur: n.dur, seq: n.seq, treeSelf: tSelf, waits: tw, tree: snapshot(n)}
	if len(st.top) == c.k {
		copy(st.top, st.top[1:])
		st.top = st.top[:c.k-1]
	}
	// Insert keeping ascending (dur, seq) order; K is small.
	i := len(st.top)
	for i > 0 && (st.top[i-1].dur > ex.dur || (st.top[i-1].dur == ex.dur && st.top[i-1].seq > ex.seq)) {
		i--
	}
	//lint:ignore hotalloc top-K reservoir: the append never grows past K
	st.top = append(st.top, exemplar{})
	copy(st.top[i+1:], st.top[i:])
	st.top[i] = ex
}

// Observe is the engine charge hook (wire via sim.Engine's
// SetChargeObserver): it books every charge into the charging thread's
// innermost open span, classifying bandwidth/NUMA/IPI labels into wait
// kinds, and keeps the outside/remote counters that make the layer
// reconcile exactly against Engine.TotalCharged.
func (c *Collector) Observe(t *sim.Thread, path string, cycles uint64, remote bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if remote {
		c.remote += cycles
		return
	}
	ts := c.state(t)
	k, hit := c.waitCls[path]
	if !hit {
		k = classify(path)
		c.waitCls[path] = k
	}
	if k != noKind {
		// Segment totals count every classified charge exactly once,
		// span or no span (a daemon's bw stall is still channel wait).
		c.cur.waits[k] += cycles
	}
	if len(ts.stack) == 0 {
		c.outside += cycles
		return
	}
	n := ts.stack[len(ts.stack)-1]
	n.self += cycles
	c.booked += cycles
	if k != noKind {
		n.waits[k] += cycles
	}
}

// classify maps a charge path's leaf label to a wait kind. The labels
// are the attribution contract of the instrumented layers: pmem books
// bandwidth stalls as "bw_stall" and cross-socket surcharges as
// "remote_read"/"remote_write", the kernel data path books remote
// accesses as "data_remote", and cpu books shootdown broadcast cost as
// "ipi_send"/"ipi_wait".
func classify(path string) WaitKind {
	leaf := path
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		leaf = path[i+1:]
	}
	switch leaf {
	case "bw_stall":
		return WaitPMemBW
	case "remote_read", "remote_write", "data_remote":
		return WaitRemoteNUMA
	case "ipi_send", "ipi_wait":
		return WaitIPI
	}
	return noKind
}

// Wait books an uncharged blocked gap (cycles long) of the given kind
// onto t's innermost open span. No-op when no span is open — a daemon
// parked on a lock is not an operation. Wired from lock contention
// hooks with the pure park gap (ContentionFn's blocked argument).
func (c *Collector) Wait(t *sim.Thread, k WaitKind, cycles uint64) {
	if c == nil || cycles == 0 {
		return
	}
	if t.DeferObs(sim.ObsRecord{Kind: sim.ObsSpanWait, Wait: uint8(k), T: t, Cycles: cycles}) {
		return
	}
	c.waitAt(t, k, cycles)
}

func (c *Collector) waitAt(t *sim.Thread, k WaitKind, cycles uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur.waits[k] += cycles
	ts := c.state(t)
	if len(ts.stack) == 0 {
		return
	}
	ts.stack[len(ts.stack)-1].waits[k] += cycles
}

// Apply consumes one deferred span record from the sharded scheduler's
// merger (wire via sim.Engine.SetObsApplier). Records arrive in exact
// emission order, so the collector's internal sequence numbers, exemplar
// replacements, and segment totals are byte-identical to the inline path.
func (c *Collector) Apply(rec sim.ObsRecord) {
	switch rec.Kind {
	case sim.ObsSpanBegin:
		c.beginAt(rec.T, rec.Path, rec.Now)
	case sim.ObsSpanEnd:
		c.endAt(rec.T, rec.Now)
	case sim.ObsSpanWait:
		c.waitAt(rec.T, WaitKind(rec.Wait), rec.Cycles)
	}
}

// StartSegment finalizes the current segment (if it saw any spans) and
// starts a new one named id, mirroring timeline.StartSegment.
func (c *Collector) StartSegment(id string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.cur.empty() {
		c.done = append(c.done, c.cur)
	}
	c.cur = &segment{id: id, classes: map[string]*classStats{}}
}

// BookedCycles reports charges booked as span self-time.
func (c *Collector) BookedCycles() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.booked
}

// OutsideCycles reports charges observed with no open span.
func (c *Collector) OutsideCycles() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outside
}

// RemoteCycles reports AddRemote bookings, which belong to no span.
func (c *Collector) RemoteCycles() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// ObservedCycles is the reconciliation total: it must equal the summed
// TotalCharged of every engine whose observer points here.
func (c *Collector) ObservedCycles() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.booked + c.outside + c.remote
}
