package timeline

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"daxvm/internal/obs"
)

// Export is one segment's timeline in artifact form: window deltas only,
// maps pruned of zero entries so committed baselines stay small.
// encoding/json sorts map keys, so marshalling an Export is byte-stable.
type Export struct {
	Segment string `json:"segment,omitempty"`
	// IntervalCycles is the final sampling period after adaptive
	// coalescing.
	IntervalCycles uint64     `json:"interval_cycles"`
	Intervals      []Interval `json:"intervals"`
	Runs           []RunMark  `json:"runs,omitempty"`
}

// Interval is one sampled window: [Start, End) in concatenated segment
// cycles, with the window's cycle total, non-zero counter deltas,
// histogram summaries and top-level attribution split.
type Interval struct {
	Start    uint64               `json:"start_cycles"`
	End      uint64               `json:"end_cycles"`
	Cycles   uint64               `json:"cycles"`
	Counters map[string]uint64    `json:"counters,omitempty"`
	Hists    map[string]HistPoint `json:"hist,omitempty"`
	Attr     map[string]uint64    `json:"attr,omitempty"`
	// Gauges holds per-interval saturation-gauge accumulations (all-zero
	// readings pruned); GaugeSamples is how many sampler wakes landed in
	// the interval, the shared denominator for every gauge's mean.
	Gauges       map[string]GaugePoint `json:"gauges,omitempty"`
	GaugeSamples uint64                `json:"gauge_samples,omitempty"`
}

// HistPoint summarizes one histogram's window delta.
type HistPoint struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// GaugePoint accumulates one gauge's instantaneous readings over an
// interval's GaugeSamples wakes: Sum/GaugeSamples is the mean, Max the
// worst instant observed.
type GaugePoint struct {
	Sum uint64 `json:"sum"`
	Max uint64 `json:"max"`
}

// RunMark records one engine run's span on the segment axis.
type RunMark struct {
	Label string `json:"label"`
	Start uint64 `json:"start_cycles"`
	End   uint64 `json:"end_cycles"`
}

// Export returns every finished segment plus the in-progress one. It does
// not end the current segment, so it may be called repeatedly.
func (tl *Timeline) Export() []Export {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := append([]Export(nil), tl.done...)
	if s := tl.cur; s != nil && (len(s.intervals) > 0 || len(s.runs) > 0) {
		out = append(out, exportSegment(s))
	}
	return out
}

// exportSegment converts in-progress state to artifact form.
func exportSegment(s *segment) Export {
	ex := Export{
		Segment:        s.id,
		IntervalCycles: s.period,
		Intervals:      make([]Interval, 0, len(s.intervals)),
		Runs:           append([]RunMark(nil), s.runs...),
	}
	for _, iv := range s.intervals {
		out := Interval{Start: iv.start, End: iv.end, Cycles: iv.cyc.Total}
		for name, v := range iv.reg.Counters {
			if v == 0 {
				continue
			}
			if out.Counters == nil {
				out.Counters = make(map[string]uint64)
			}
			out.Counters[name] = v
		}
		for name, h := range iv.reg.Hists {
			if h.Count == 0 {
				continue
			}
			if out.Hists == nil {
				out.Hists = make(map[string]HistPoint)
			}
			out.Hists[name] = HistPoint{Count: h.Count, P50: h.Quantile(0.50), P99: h.Quantile(0.99)}
		}
		for path, l := range iv.cyc.Leaves {
			if out.Attr == nil {
				out.Attr = make(map[string]uint64)
			}
			out.Attr[attrRoot(path)] += l.Cycles
		}
		out.GaugeSamples = iv.gaugeSamples
		for name, g := range iv.gauges {
			if g.sum == 0 && g.max == 0 {
				continue
			}
			if out.Gauges == nil {
				out.Gauges = make(map[string]GaugePoint)
			}
			out.Gauges[name] = GaugePoint{Sum: g.sum, Max: g.max}
		}
		ex.Intervals = append(ex.Intervals, out)
	}
	return ex
}

// WriteCSV writes the exports in tidy (long) form —
// experiment,interval,start_cycles,end_cycles,series,value — one row per
// series per interval, series sorted, ready for plotting
// throughput-vs-p99 curves per experiment.
func WriteCSV(w io.Writer, exports []Export) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "experiment,interval,start_cycles,end_cycles,series,value")
	for _, ex := range exports {
		for i, iv := range ex.Intervals {
			row := func(series, value string) {
				fmt.Fprintf(bw, "%s,%d,%d,%d,%s,%s\n", ex.Segment, i, iv.Start, iv.End, series, value)
			}
			row("cycles", strconv.FormatUint(iv.Cycles, 10))
			for _, name := range obs.SortedKeys(iv.Counters) {
				row(name, strconv.FormatUint(iv.Counters[name], 10))
			}
			for _, name := range obs.SortedKeys(iv.Hists) {
				h := iv.Hists[name]
				row(name+".count", strconv.FormatUint(h.Count, 10))
				row(name+".p50", strconv.FormatFloat(h.P50, 'g', -1, 64))
				row(name+".p99", strconv.FormatFloat(h.P99, 'g', -1, 64))
			}
			for _, name := range obs.SortedKeys(iv.Attr) {
				row("attr."+name, strconv.FormatUint(iv.Attr[name], 10))
			}
			if iv.GaugeSamples > 0 {
				row("gauge_samples", strconv.FormatUint(iv.GaugeSamples, 10))
			}
			for _, name := range obs.SortedKeys(iv.Gauges) {
				g := iv.Gauges[name]
				row("gauge."+name+".sum", strconv.FormatUint(g.Sum, 10))
				row("gauge."+name+".max", strconv.FormatUint(g.Max, 10))
			}
		}
	}
	return bw.Flush()
}
