package timeline

import (
	"strings"
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/sim"
)

// drive books cycles and counter increments at controlled virtual times
// through the Timeline's public surface.
func TestIntervalsReconcileAndCoalesce(t *testing.T) {
	reg := obs.NewRegistry()
	var ops uint64
	reg.Counter("test.ops", func() uint64 { return ops })
	h := reg.Histogram("test.lat")
	cyc := obs.NewCycleAccount()
	tl := New(reg, cyc, Config{BaseInterval: 16, MaxIntervals: 8})

	tl.StartSegment("seg")
	var now uint64
	for i := 0; i < 200; i++ {
		cyc.Charge(0, "app.work", 7)
		cyc.Charge(0, "fault.minor", 3)
		ops++
		h.Observe(uint64(100 + i))
		now = tl.NextWake(now)
		tl.Sample(now)
	}
	tl.FlushRun("run", now+5)

	exs := tl.Export()
	if len(exs) != 1 {
		t.Fatalf("exports = %d, want 1", len(exs))
	}
	ex := exs[0]
	if ex.Segment != "seg" {
		t.Fatalf("segment = %q", ex.Segment)
	}
	if n := len(ex.Intervals); n == 0 || n > 8 {
		t.Fatalf("intervals = %d, want in (0, 8]", n)
	}
	if ex.IntervalCycles <= 16 {
		t.Fatalf("period did not grow under coalescing: %d", ex.IntervalCycles)
	}
	var cycles, opsSum, hcount uint64
	for _, iv := range ex.Intervals {
		cycles += iv.Cycles
		opsSum += iv.Counters["test.ops"]
		hcount += iv.Hists["test.lat"].Count
		if app := iv.Attr["app"]; iv.Cycles > 0 && app == 0 {
			t.Fatalf("interval missing app attribution: %+v", iv)
		}
	}
	if cycles != cyc.Total() {
		t.Fatalf("interval cycles sum %d != account total %d", cycles, cyc.Total())
	}
	if opsSum != ops {
		t.Fatalf("counter delta sum %d != %d", opsSum, ops)
	}
	if hcount != h.Count() {
		t.Fatalf("hist count sum %d != %d", hcount, h.Count())
	}
	if len(ex.Runs) != 1 || ex.Runs[0].Label != "run" {
		t.Fatalf("runs = %+v", ex.Runs)
	}
}

// The sampler daemon must leave simulated results untouched and reconcile
// against the engine it rides on.
func TestEngineSamplerReconciles(t *testing.T) {
	run := func(withTimeline bool) (uint64, []Export) {
		reg := obs.NewRegistry()
		cyc := obs.NewCycleAccount()
		e := sim.New()
		e.SetChargeSink(cyc.Charge)
		var tl *Timeline
		if withTimeline {
			tl = New(reg, cyc, Config{BaseInterval: 64, MaxIntervals: 16})
			tl.StartSegment("eng")
			e.GoSampler("timeline", 0, tl.NextWake, tl.Sample)
		}
		e.Go("worker", 0, 0, func(th *sim.Thread) {
			th.PushAttr("app")
			for i := 0; i < 500; i++ {
				th.Charge(13)
				th.Yield()
			}
		})
		end := e.Run()
		tl.FlushRun("run", end)
		return e.TotalCharged(), tl.Export()
	}

	base, _ := run(false)
	charged, exs := run(true)
	if charged != base {
		t.Fatalf("sampler perturbed charged cycles: %d != %d", charged, base)
	}
	var cycles uint64
	for _, ex := range exs {
		for _, iv := range ex.Intervals {
			cycles += iv.Cycles
		}
	}
	if cycles != charged {
		t.Fatalf("timeline cycles %d != engine charged %d", cycles, charged)
	}
}

func TestSegmentsIndependent(t *testing.T) {
	reg := obs.NewRegistry()
	cyc := obs.NewCycleAccount()
	tl := New(reg, cyc, Config{BaseInterval: 32})

	tl.StartSegment("a")
	cyc.Charge(0, "app.x", 100)
	tl.FlushRun("run", 40)

	tl.StartSegment("b")
	cyc.Charge(0, "app.x", 9)
	tl.FlushRun("run", 10)

	exs := tl.Export()
	if len(exs) != 2 {
		t.Fatalf("exports = %d, want 2", len(exs))
	}
	b := exs[1]
	if b.Segment != "b" {
		t.Fatalf("segment = %q", b.Segment)
	}
	// Segment b must see only its own activity, on its own time origin.
	var cycles uint64
	for _, iv := range b.Intervals {
		cycles += iv.Cycles
		if iv.End > 10 {
			t.Fatalf("segment b interval beyond its run: %+v", iv)
		}
	}
	if cycles != 9 {
		t.Fatalf("segment b cycles = %d, want 9", cycles)
	}
}

func TestWriteCSV(t *testing.T) {
	reg := obs.NewRegistry()
	var ops uint64
	reg.Counter("test.ops", func() uint64 { return ops })
	cyc := obs.NewCycleAccount()
	tl := New(reg, cyc, Config{BaseInterval: 32})
	tl.StartSegment("csv")
	cyc.Charge(0, "app.x", 5)
	ops = 2
	tl.FlushRun("run", 20)

	var sb strings.Builder
	if err := WriteCSV(&sb, tl.Export()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "experiment,interval,start_cycles,end_cycles,series,value" {
		t.Fatalf("header = %q", lines[0])
	}
	want := []string{
		"csv,0,0,20,cycles,5",
		"csv,0,0,20,test.ops,2",
		"csv,0,0,20,attr.app,5",
	}
	for i, w := range want {
		if lines[1+i] != w {
			t.Fatalf("line %d = %q, want %q", 1+i, lines[1+i], w)
		}
	}
}

func TestCounterTracks(t *testing.T) {
	reg := obs.NewRegistry()
	var ops uint64
	reg.Counter("test.ops", func() uint64 { return ops })
	cyc := obs.NewCycleAccount()
	tr := obs.NewTracer(64)
	tl := New(reg, cyc, Config{BaseInterval: 32, Tracer: tr, TrackCounters: []string{"test.ops"}})
	tl.StartSegment("tr")
	cyc.Charge(0, "app.x", 5)
	ops = 3
	tl.Sample(32)

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Type != obs.EvCounter || evs[0].Tag != "cycles" || evs[0].Arg != 5 {
		t.Fatalf("cycles track event = %+v", evs[0])
	}
	if evs[1].Tag != "test.ops" || evs[1].Arg != 3 {
		t.Fatalf("ops track event = %+v", evs[1])
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"ph":"C"`) {
		t.Fatalf("chrome trace missing counter phase:\n%s", sb.String())
	}
}
