package timeline

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"daxvm/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildGoldenTimeline books a small fixed scenario through the public
// surface: two segments, a counter, a histogram, and attribution under
// two roots, exercising every CSV series shape (cycles, counter,
// hist .count/.p50/.p99, attr.*).
func buildGoldenTimeline() *Timeline {
	reg := obs.NewRegistry()
	var ops uint64
	reg.Counter("test.ops", func() uint64 { return ops })
	h := reg.Histogram("test.lat")
	cyc := obs.NewCycleAccount()
	tl := New(reg, cyc, Config{BaseInterval: 16})

	tl.StartSegment("alpha")
	cyc.Charge(0, "app.work", 7)
	cyc.Charge(0, "setup.mkfs", 3)
	ops = 2
	h.Observe(100)
	h.Observe(400)
	tl.Sample(16)
	cyc.Charge(1, "app.work", 5)
	ops = 3
	tl.FlushRun("run-a", 30)

	tl.StartSegment("beta")
	cyc.Charge(0, "app.other", 11)
	tl.FlushRun("run-b", 16)
	return tl
}

// TestWriteCSVGolden pins the exact CSV bytes — header, column order,
// row order, number formatting — against a checked-in golden file, so
// any accidental change to the export format (a tool-breaking event for
// downstream plotting scripts) shows up as a diff. Regenerate with
// `go test ./internal/obs/timeline -run Golden -update-golden`.
func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, buildGoldenTimeline().Export()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "write_csv.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := bytes.Split(buf.Bytes(), []byte("\n"))
		exp := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(got) && i < len(exp); i++ {
			if !bytes.Equal(got[i], exp[i]) {
				t.Fatalf("CSV diverges from golden at line %d:\n got:  %s\n want: %s", i+1, got[i], exp[i])
			}
		}
		t.Fatalf("CSV length differs from golden: %d vs %d bytes", buf.Len(), len(want))
	}
}

// TestWriteCSVDeterministic renders the same timeline twice and demands
// byte-identical output: the writer iterates maps only through sorted
// keys, so two exports of one run never differ.
func TestWriteCSVDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, buildGoldenTimeline().Export()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if first, second := render(), render(); !bytes.Equal(first, second) {
		t.Fatal("two renders of the same scenario differ")
	}
}
