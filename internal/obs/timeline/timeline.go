// Package timeline is the virtual-time interval sampler: a daemon thread
// (sim.Engine.GoSampler) wakes every period cycles and records the window
// delta of every registered counter, each latency histogram, and the
// cycle-attribution profile since the previous sample. Sampling reads
// snapshots only — it charges zero cycles and mutates no simulated state —
// so a run with a timeline attached produces bit-identical metrics to one
// without.
//
// Time axis. Each engine run has a local clock starting at zero; an
// experiment segment may span several sequential runs (aging, setup
// corpora, the measured run). The timeline concatenates them: FlushRun
// closes the tail interval of the finished run, records a RunMark, and
// advances the segment offset so the next run's local times continue the
// same monotone axis.
//
// Interval width adapts: sampling starts at BaseInterval cycles, and
// whenever the interval count would exceed MaxIntervals, adjacent pairs
// merge and the period doubles — long runs settle between MaxIntervals/2
// and MaxIntervals intervals without knowing the run length up front. The
// schedule is a pure function of virtual time, so it is deterministic.
package timeline

import (
	"sort"
	"strings"
	"sync"

	"daxvm/internal/obs"
)

// DefaultBaseInterval is the initial sampling period in virtual cycles.
const DefaultBaseInterval = 65536

// DefaultMaxIntervals caps retained intervals per segment; crossing it
// merges adjacent pairs and doubles the period.
const DefaultMaxIntervals = 200

// Config tunes a Timeline.
type Config struct {
	// BaseInterval is the initial sampling period in virtual cycles
	// (default DefaultBaseInterval).
	BaseInterval uint64
	// MaxIntervals bounds intervals per segment (default
	// DefaultMaxIntervals); coalescing keeps the count in
	// [MaxIntervals/2, MaxIntervals].
	MaxIntervals int
	// Tracer, when set, receives an obs.EvCounter event per sample per
	// tracked series, rendering as Perfetto counter tracks on the same
	// timebase as the event slices.
	Tracer *obs.Tracer
	// TrackCounters names the registry counters to mirror as trace
	// counter tracks (the total cycle delta is always emitted as
	// "cycles").
	TrackCounters []string
}

// Timeline accumulates interval samples, one segment per experiment.
// All methods are nil-safe.
type Timeline struct {
	reg *obs.Registry
	cyc *obs.CycleAccount
	cfg Config

	mu        sync.Mutex
	done      []Export // finished segments, in StartSegment order
	cur       *segment
	gauges    []gaugeEntry // sorted by name
	gaugeVals []uint64     // per-sample scratch, len(gauges); avoids per-sample allocation
}

// gaugeEntry is one registered saturation gauge. The Perfetto track name
// is interned at registration so sampling never concatenates strings.
type gaugeEntry struct {
	name  string
	track string // "gauge." + name
	fn    func(now uint64) uint64
}

// segment is one experiment's in-progress timeline.
type segment struct {
	id           string
	period       uint64
	offset       uint64 // absolute segment time of the current run's local zero
	lastBoundary uint64 // absolute time of the last sample
	intervals    []interval
	runs         []RunMark
	prevReg      obs.Snapshot
	prevCyc      obs.CycleSnapshot
}

// interval holds one window's deltas (not absolute readings), plus the
// instantaneous gauge readings taken at sampler wakes that landed inside
// the window (sum and max across gaugeSamples wakes, so the mean
// survives coalescing).
type interval struct {
	start, end   uint64
	reg          obs.Snapshot
	cyc          obs.CycleSnapshot
	gauges       map[string]gaugeAcc
	gaugeSamples uint64
}

// gaugeAcc accumulates one gauge's readings inside one interval.
type gaugeAcc struct{ sum, max uint64 }

// New creates a timeline sampling reg and cyc. Zero-value Config fields
// take the package defaults.
func New(reg *obs.Registry, cyc *obs.CycleAccount, cfg Config) *Timeline {
	if cfg.BaseInterval == 0 {
		cfg.BaseInterval = DefaultBaseInterval
	}
	if cfg.MaxIntervals == 0 {
		cfg.MaxIntervals = DefaultMaxIntervals
	}
	return &Timeline{reg: reg, cyc: cyc, cfg: cfg}
}

// Gauge registers a named saturation gauge: fn is read at every sampler
// wake with the engine-local virtual time and must be a pure snapshot —
// no cycle charges, no simulated-state mutation, no allocation (gauge
// readers are simlint hotalloc roots). Registering an existing name
// replaces its reader, mirroring Registry.Counter, so sequentially
// booted kernels sharing one timeline always sample live state. Gauges
// are sampled in name order for deterministic trace emission.
func (tl *Timeline) Gauge(name string, fn func(now uint64) uint64) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	e := gaugeEntry{name: name, track: "gauge." + name, fn: fn}
	for i := range tl.gauges {
		if tl.gauges[i].name == name {
			tl.gauges[i] = e
			return
		}
	}
	tl.gauges = append(tl.gauges, e)
	sort.Slice(tl.gauges, func(i, j int) bool { return tl.gauges[i].name < tl.gauges[j].name })
	tl.gaugeVals = make([]uint64, len(tl.gauges))
}

// StartSegment finishes the current segment (if it recorded anything) and
// begins a new one labelled id, re-baselining the delta snapshots so the
// segment is identical whether the experiment runs alone or after others.
func (tl *Timeline) StartSegment(id string) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.finishLocked()
	tl.cur = tl.newSegment(id)
}

func (tl *Timeline) newSegment(id string) *segment {
	return &segment{
		id:      id,
		period:  tl.cfg.BaseInterval,
		prevReg: tl.reg.Snapshot(),
		prevCyc: tl.cyc.Snapshot(),
	}
}

func (tl *Timeline) finishLocked() {
	s := tl.cur
	tl.cur = nil
	if s == nil || (len(s.intervals) == 0 && len(s.runs) == 0) {
		return
	}
	tl.done = append(tl.done, exportSegment(s))
}

// ensureLocked lazily opens an unnamed segment so a kernel booted without
// an explicit StartSegment still records.
func (tl *Timeline) ensureLocked() *segment {
	if tl.cur == nil {
		tl.cur = tl.newSegment("")
	}
	return tl.cur
}

// NextWake returns the engine-local virtual time of the next sample given
// the sampler's current local clock (sim.Engine.GoSampler's schedule
// callback).
func (tl *Timeline) NextWake(now uint64) uint64 {
	if tl == nil {
		return now + DefaultBaseInterval
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	s := tl.ensureLocked()
	next := s.lastBoundary + s.period
	if abs := s.offset + now; next <= abs {
		next = abs + s.period
	}
	return next - s.offset
}

// Sample records one interval ending at the sampler's current local time
// (sim.Engine.GoSampler's sample callback).
func (tl *Timeline) Sample(now uint64) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	s := tl.ensureLocked()
	tl.recordLocked(s, s.offset+now, now, true)
}

// FlushRun closes the tail interval of a finished engine run whose local
// clock reached localEnd, marks the run's span, and advances the segment
// offset so the next run continues the same axis. The kernel calls this
// after every engine run (aging, setup, measured), which is what makes the
// summed interval cycle deltas reconcile exactly against the engines'
// TotalCharged. Gauges are NOT read here: the engine has drained, so
// queue-depth readings at flush time would dilute the means with
// structural zeros.
func (tl *Timeline) FlushRun(label string, localEnd uint64) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	s := tl.ensureLocked()
	abs := s.offset + localEnd
	tl.recordLocked(s, abs, localEnd, false)
	if abs > s.offset {
		s.runs = append(s.runs, RunMark{Label: label, Start: s.offset, End: abs})
	}
	s.offset = abs
	s.lastBoundary = abs
}

// recordLocked closes the interval [s.lastBoundary, abs): it diffs the
// current snapshots against the previous sample, emits counter-track trace
// events at the engine-local timestamp, and appends the interval. Empty
// windows advance the boundary without appending; a zero-width flush tail
// (work booked at the exact sample time after the sampler ran) folds into
// the previous interval so no cycles are lost. When sample is true (a
// sampler wake, not a run flush) every registered gauge is read at the
// engine-local instant; readings in empty windows are dropped with the
// window, so per-interval means only average instants where work ran.
func (tl *Timeline) recordLocked(s *segment, abs, local uint64, sample bool) {
	curReg := tl.reg.Snapshot()
	curCyc := tl.cyc.Snapshot()
	dReg := curReg.Delta(s.prevReg)
	dCyc := curCyc.Delta(s.prevCyc)
	s.prevReg = curReg
	s.prevCyc = curCyc
	sampledGauges := sample && len(tl.gauges) > 0
	if sampledGauges {
		for i := range tl.gauges {
			tl.gaugeVals[i] = tl.gauges[i].fn(local)
		}
	}
	tl.emitTracks(local, dCyc, dReg, sampledGauges)
	if emptyDelta(dReg, dCyc) {
		s.lastBoundary = abs
		return
	}
	var g map[string]gaugeAcc
	var gSamples uint64
	if sampledGauges {
		g = make(map[string]gaugeAcc, len(tl.gauges))
		for i := range tl.gauges {
			v := tl.gaugeVals[i]
			g[tl.gauges[i].name] = gaugeAcc{sum: v, max: v}
		}
		gSamples = 1
	}
	if abs == s.lastBoundary && len(s.intervals) > 0 {
		last := &s.intervals[len(s.intervals)-1]
		last.reg = mergeReg(last.reg, dReg)
		last.cyc = mergeCyc(last.cyc, dCyc)
		last.gauges = mergeGauges(last.gauges, g)
		last.gaugeSamples += gSamples
		return
	}
	s.intervals = append(s.intervals, interval{
		start: s.lastBoundary, end: abs, reg: dReg, cyc: dCyc,
		gauges: g, gaugeSamples: gSamples,
	})
	s.lastBoundary = abs
	if len(s.intervals) > tl.cfg.MaxIntervals {
		s.coalesce()
	}
}

// emitTracks mirrors the window's headline deltas into the trace ring as
// counter events. Series order is the fixed config order (then gauge name
// order), never a map range. Gauge tracks carry instantaneous readings,
// not window deltas, and interleave with the event slices on the same
// engine-local timebase.
func (tl *Timeline) emitTracks(local uint64, dCyc obs.CycleSnapshot, dReg obs.Snapshot, sampledGauges bool) {
	tr := tl.cfg.Tracer
	if tr == nil {
		return
	}
	tr.Emit(obs.EvCounter, 0, local, 0, "cycles", dCyc.Total)
	for _, name := range tl.cfg.TrackCounters {
		if v, ok := dReg.Counters[name]; ok {
			tr.Emit(obs.EvCounter, 0, local, 0, name, v)
		}
	}
	if sampledGauges {
		for i := range tl.gauges {
			tr.Emit(obs.EvCounter, 0, local, 0, tl.gauges[i].track, tl.gaugeVals[i])
		}
	}
}

// coalesce merges adjacent interval pairs and doubles the period.
func (s *segment) coalesce() {
	merged := make([]interval, 0, (len(s.intervals)+1)/2)
	for i := 0; i+1 < len(s.intervals); i += 2 {
		a, b := s.intervals[i], s.intervals[i+1]
		merged = append(merged, interval{
			start:        a.start,
			end:          b.end,
			reg:          mergeReg(a.reg, b.reg),
			cyc:          mergeCyc(a.cyc, b.cyc),
			gauges:       mergeGauges(a.gauges, b.gauges),
			gaugeSamples: a.gaugeSamples + b.gaugeSamples,
		})
	}
	if len(s.intervals)%2 == 1 {
		merged = append(merged, s.intervals[len(s.intervals)-1])
	}
	s.intervals = merged
	s.period *= 2
}

// emptyDelta reports whether the window saw no activity at all.
func emptyDelta(dReg obs.Snapshot, dCyc obs.CycleSnapshot) bool {
	if dCyc.Total != 0 {
		return false
	}
	for _, v := range dReg.Counters {
		if v != 0 {
			return false
		}
	}
	for _, h := range dReg.Hists {
		if h.Count != 0 {
			return false
		}
	}
	return true
}

// mergeReg sums two window deltas.
func mergeReg(a, b obs.Snapshot) obs.Snapshot {
	m := obs.Snapshot{
		Counters: make(map[string]uint64, len(a.Counters)),
		Hists:    make(map[string]obs.HistSnapshot, len(a.Hists)),
	}
	for k, v := range a.Counters {
		m.Counters[k] = v
	}
	for k, v := range b.Counters {
		m.Counters[k] += v
	}
	for k, h := range a.Hists {
		m.Hists[k] = h
	}
	for k, h := range b.Hists {
		m.Hists[k] = mergeHist(m.Hists[k], h)
	}
	return m
}

// mergeHist sums two histogram window deltas bucket-wise.
func mergeHist(a, b obs.HistSnapshot) obs.HistSnapshot {
	out := obs.HistSnapshot{Sum: a.Sum + b.Sum, Count: a.Count + b.Count}
	if len(a.Buckets)+len(b.Buckets) > 0 {
		out.Buckets = make(map[int]uint64, len(a.Buckets))
		for k, v := range a.Buckets {
			out.Buckets[k] = v
		}
		for k, v := range b.Buckets {
			out.Buckets[k] += v
		}
	}
	return out
}

// mergeGauges combines two intervals' gauge accumulations: sums add
// (preserving the mean across gaugeSamples) and maxima take the larger.
func mergeGauges(a, b map[string]gaugeAcc) map[string]gaugeAcc {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(map[string]gaugeAcc, len(a))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		acc := out[k]
		acc.sum += v.sum
		if v.max > acc.max {
			acc.max = v.max
		}
		out[k] = acc
	}
	return out
}

// mergeCyc sums two cycle-profile window deltas leaf-wise.
func mergeCyc(a, b obs.CycleSnapshot) obs.CycleSnapshot {
	out := obs.CycleSnapshot{Total: a.Total + b.Total, Leaves: make(map[string]obs.CycleLeaf, len(a.Leaves))}
	for p, l := range a.Leaves {
		out.Leaves[p] = l
	}
	for p, l := range b.Leaves {
		acc := out.Leaves[p]
		acc.Cycles += l.Cycles
		acc.Count += l.Count
		if len(l.ByCore) > 0 {
			if acc.ByCore == nil {
				acc.ByCore = make(map[int]uint64, len(l.ByCore))
			}
			for c, v := range l.ByCore {
				acc.ByCore[c] += v
			}
		}
		out.Leaves[p] = acc
	}
	return out
}

// attrRoot returns the top-level component of a dotted attribution path.
func attrRoot(path string) string {
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i]
	}
	return path
}
