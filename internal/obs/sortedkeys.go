package obs

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. Go randomizes map
// iteration; any loop whose per-iteration effects are observable — trace
// emission, cycle charging, artifact output — must iterate through this
// (the simlint detmap and determinism analyzers enforce it).
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
