package obs

import (
	"sync"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	for _, p := range []float64{0, 0.5, 1} {
		if q := s.Quantile(p); q != 0 {
			t.Fatalf("empty Quantile(%v) = %v", p, q)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(700) // bucket 10: [512, 1024)
	}
	s := h.Snapshot()
	lo, hi := float64(512), float64(1024)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		q := s.Quantile(p)
		if q < lo || q > hi {
			t.Fatalf("Quantile(%v) = %v outside bucket [%v,%v)", p, q, lo, hi)
		}
	}
	// Interpolation is monotone in p.
	if s.Quantile(0.1) > s.Quantile(0.9) {
		t.Fatal("quantile not monotone")
	}
	// p=1 hits the bucket's upper bound exactly (rank == count).
	if q := s.Quantile(1); q != hi {
		t.Fatalf("Quantile(1) = %v, want %v", q, hi)
	}
}

func TestQuantileEdges(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)    // bucket 0
	h.Observe(1)    // bucket 1
	h.Observe(1000) // bucket 10
	s := h.Snapshot()
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) = %v, want 0 (smallest observation is 0)", q)
	}
	if q := s.Quantile(1); q < 512 || q > 1024 {
		t.Fatalf("Quantile(1) = %v, want within [512,1024]", q)
	}
	// Out-of-range p clamps instead of panicking.
	if q := s.Quantile(-3); q != s.Quantile(0) {
		t.Fatalf("p<0 not clamped: %v", q)
	}
	if q := s.Quantile(7); q != s.Quantile(1) {
		t.Fatalf("p>1 not clamped: %v", q)
	}
	// Median lands in the middle bucket: value 1 lives in [1,2).
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("Quantile(0.5) = %v, want within [1,2]", q)
	}
}

// TestHistogramConcurrentObserve hammers Observe and Snapshot from many
// goroutines; under -race this verifies the atomics claim, and the final
// count/sum must still be exact.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer")
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(uint64(i % 4096))
				if i%512 == 0 {
					s := h.Snapshot()
					_ = s.Quantile(0.99)
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, c := range s.Buckets {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("buckets sum to %d, count %d", bucketSum, s.Count)
	}
}
