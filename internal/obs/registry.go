package obs

import (
	"sync"
)

// Registry maps dotted metric names to reader closures. Subsystems keep
// their existing Stats structs; the registry reads them on Snapshot, so
// registration costs nothing on the hot path.
//
// Names follow `subsystem.metric` (e.g. "tlb.misses") with further dots
// for sub-components ("mm.lock.wait_cycles", "ext4.journal.commits").
// Re-registering a name replaces the reader — when several machines share
// one registry (an experiment sweep), the latest boot wins.
type Registry struct {
	mu sync.Mutex
	// guarded by mu
	counters map[string]func() uint64
	// guarded by mu
	hists map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]func() uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter registers a named counter read through fn at snapshot time.
// Gauges (values that can shrink, e.g. dram.used_bytes) register the same
// way; Delta clamps them at zero.
func (r *Registry) Counter(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = fn
	r.mu.Unlock()
}

// Histogram registers (or returns the existing) named log2 histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// Names lists registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return SortedKeys(r.counters)
}

// Snapshot reads every registered counter and histogram. Call it at
// window boundaries and diff with Delta so benches report only the
// measured interval.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, fn := range r.counters {
		s.Counters[name] = fn()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time reading of every registered metric.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Get returns one counter (0 when absent).
func (s Snapshot) Get(name string) uint64 { return s.Counters[name] }

// Delta returns this snapshot minus prev: the activity of the measured
// window. Counters are monotonic so the subtraction is exact; gauge-style
// entries that shrank clamp to zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for name, v := range s.Counters {
		p := prev.Counters[name]
		if v > p {
			d.Counters[name] = v - p
		} else {
			d.Counters[name] = 0
		}
	}
	for name, h := range s.Hists {
		d.Hists[name] = h.Delta(prev.Hists[name])
	}
	return d
}
