package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRegistrySnapshotDelta(t *testing.T) {
	r := NewRegistry()
	var a, b uint64
	r.Counter("x.a", func() uint64 { return a })
	r.Counter("x.b", func() uint64 { return b })

	a, b = 5, 10
	s1 := r.Snapshot()
	if s1.Get("x.a") != 5 || s1.Get("x.b") != 10 {
		t.Fatalf("snapshot: %v", s1.Counters)
	}
	a, b = 8, 10
	s2 := r.Snapshot()
	d := s2.Delta(s1)
	if d.Get("x.a") != 3 || d.Get("x.b") != 0 {
		t.Fatalf("delta: %v", d.Counters)
	}
}

func TestRegistryGaugeClamp(t *testing.T) {
	r := NewRegistry()
	v := uint64(100)
	r.Counter("g", func() uint64 { return v })
	s1 := r.Snapshot()
	v = 40 // gauge shrank
	if d := r.Snapshot().Delta(s1); d.Get("g") != 0 {
		t.Fatalf("gauge delta not clamped: %d", d.Get("g"))
	}
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", func() uint64 { return 1 })
	r.Counter("c", func() uint64 { return 2 })
	if got := r.Snapshot().Get("c"); got != 2 {
		t.Fatalf("re-registration did not replace: %d", got)
	}
	if n := r.Names(); len(n) != 1 || n[0] != "c" {
		t.Fatalf("names: %v", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if h2 := r.Histogram("lat"); h2 != h {
		t.Fatal("histogram not deduplicated")
	}
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Hists["lat"]
	if s.Count != 6 || s.Sum != 1010 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	// 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1000 -> 10.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
	for b, c := range want {
		if s.Buckets[b] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", b, s.Buckets[b], c, s.Buckets)
		}
	}
	if got := BucketUpper(10); got != 1024 {
		t.Fatalf("BucketUpper(10) = %d", got)
	}
	if m := s.Mean(); m < 168 || m > 169 {
		t.Fatalf("mean = %v", m)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvMmap, 0, 0, 0, "", 0) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer not inert")
	}
	var h *Histogram
	h.Observe(4)
	if h.Count() != 0 {
		t.Fatal("nil histogram not inert")
	}
	var r *Registry
	r.Counter("x", func() uint64 { return 1 })
	if r.Histogram("h") != nil {
		t.Fatal("nil registry returned histogram")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(EvPageFault, i, uint64(i)*10, 1, "", 0)
	}
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].TS != 20 || evs[3].TS != 50 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
}

// chromeTrace mirrors the subset of the trace-event format we emit.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(EvMmap, 0, 2700, 2700, "", 16)
	tr.Emit(EvShootdown, 1, 5400, 0, "full", 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata (thread_name) + 1 trace_stats + 2 events.
	if len(ct.TraceEvents) != 5 {
		t.Fatalf("events: %d", len(ct.TraceEvents))
	}
	byName := map[string]int{}
	for _, e := range ct.TraceEvents {
		byName[e.Name]++
	}
	if byName["thread_name"] != 2 || byName["trace_stats"] != 1 || byName[EvMmap] != 1 || byName[EvShootdown] != 1 {
		t.Fatalf("names: %v", byName)
	}
	for _, e := range ct.TraceEvents {
		if e.Name == "trace_stats" {
			if e.Ph != "M" || e.Args["dropped"] != float64(0) || e.Args["retained"] != float64(2) {
				t.Fatalf("trace_stats wrong: %+v", e)
			}
		}
	}
	for _, e := range ct.TraceEvents {
		if e.Name == EvMmap {
			if e.Ph != "X" || e.TS != 1.0 || e.Dur != 1.0 || e.Tid != 0 {
				t.Fatalf("mmap event wrong: %+v", e)
			}
		}
		if e.Name == EvShootdown {
			if e.Ph != "i" || e.Tid != 1 || e.Args["tag"] != "full" {
				t.Fatalf("shootdown event wrong: %+v", e)
			}
		}
	}
}
