package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Event types emitted by the simulator. Kept as strings so the trace and
// tests read naturally; comparisons are infrequent (export time only).
const (
	EvPageFault      = "page_fault"
	EvWPFault        = "wp_fault"
	EvMmap           = "mmap"
	EvMunmap         = "munmap"
	EvMsync          = "msync"
	EvDaxvmMmap      = "daxvm_mmap"
	EvDaxvmMunmap    = "daxvm_munmap"
	EvShootdown      = "tlb_shootdown"
	EvJournalCommit  = "journal_commit"
	EvPrezeroBatch   = "prezero_batch"
	EvZombieFlush    = "zombie_flush"
	EvMonitorMigrate = "monitor_migrate"
	EvLockContention = "lock_contention"

	// EvCounter is a sampled counter value for a Chrome counter track
	// ("C" phase): Tag names the series, Arg carries the value at TS. The
	// timeline sampler emits these so Perfetto plots throughput and
	// contention curves over the same timebase as the event slices.
	EvCounter = "counter"
)

// Event is one traced occurrence in virtual time.
type Event struct {
	TS   uint64 // virtual start time, cycles
	Dur  uint64 // duration in cycles (0 = instant)
	Core int    // simulated core (trace track)
	Type string // one of the Ev* constants
	Tag  string // free-form label (lock name, shootdown kind, ...)
	Arg  uint64 // type-specific payload (pages, blocks, bytes)
}

// Tracer is a bounded ring of events. When full it overwrites the oldest,
// keeping the tail of the run and counting what it dropped; an always-on
// tracer therefore has fixed memory cost. Safe for concurrent emitters
// (the sim is single-threaded, but -race and multi-engine setups are not).
type Tracer struct {
	mu sync.Mutex
	// guarded by mu
	buf []Event
	// guarded by mu
	next    int
	wrapped bool   // guarded by mu
	dropped uint64 // guarded by mu

	// CyclesPerUsec converts virtual cycles to trace microseconds on
	// export (default 2700, the simulator's 2.7 GHz clock).
	CyclesPerUsec float64
}

// NewTracer creates a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, 0, capacity), CyclesPerUsec: 2700}
}

// Emit records one event. Nil-safe: unwired subsystems pay one branch.
func (tr *Tracer) Emit(typ string, core int, ts, dur uint64, tag string, arg uint64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	e := Event{TS: ts, Dur: dur, Core: core, Type: typ, Tag: tag, Arg: arg}
	if len(tr.buf) < cap(tr.buf) {
		//lint:ignore hotalloc ring fill phase: the append stays within the preallocated cap
		tr.buf = append(tr.buf, e)
	} else {
		tr.buf[tr.next] = e
		tr.next = (tr.next + 1) % cap(tr.buf)
		tr.wrapped = true
		tr.dropped++
	}
	tr.mu.Unlock()
}

// Events returns a copy of the retained events in emission order.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Event, 0, len(tr.buf))
	if tr.wrapped {
		out = append(out, tr.buf[tr.next:]...)
		out = append(out, tr.buf[:tr.next]...)
	} else {
		out = append(out, tr.buf...)
	}
	return out
}

// Len reports retained events; Dropped reports overwritten ones.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.buf)
}

// Dropped reports how many events the ring overwrote.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// WriteChromeTrace exports the retained events as Chrome trace-event JSON
// (the {"traceEvents": [...]} object form) viewable in Perfetto or
// chrome://tracing. Each simulated core is one track (tid); events with a
// duration render as complete ("X") slices, instants as "i" marks.
// Timestamps are virtual cycles converted to microseconds.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	events := tr.Events()
	cpu := tr.CyclesPerUsec
	if cpu <= 0 {
		cpu = 2700
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	// Name the core tracks. Counter samples render as pid-wide counter
	// tracks keyed by series name, not as core slices, so they do not
	// claim a tid.
	cores := map[int]bool{}
	for _, e := range events {
		if e.Type == EvCounter {
			continue
		}
		cores[e.Core] = true
	}
	ids := make([]int, 0, len(cores))
	for c := range cores {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	first := true
	emit := func(s string) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.WriteString(s)
		return err
	}
	for _, c := range ids {
		meta := fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"core %d"}}`, c, c)
		if err := emit(meta); err != nil {
			return err
		}
	}
	// Self-describing truncation record: a ring that wrapped kept only the
	// tail, and Perfetto should say so rather than show a silent gap.
	stats := fmt.Sprintf(`{"name":"trace_stats","ph":"M","pid":0,"tid":0,"args":{"dropped":%d,"retained":%d}}`,
		tr.Dropped(), len(events))
	if err := emit(stats); err != nil {
		return err
	}
	usec := func(cycles uint64) string {
		return strconv.FormatFloat(float64(cycles)/cpu, 'f', 3, 64)
	}
	for _, e := range events {
		var line string
		if e.Type == EvCounter {
			line = fmt.Sprintf(`{"name":%s,"cat":"timeline","ph":"C","ts":%s,"pid":0,"args":{"value":%d}}`,
				strconv.Quote(e.Tag), usec(e.TS), e.Arg)
			if err := emit(line); err != nil {
				return err
			}
			continue
		}
		args := fmt.Sprintf(`{"cycles":%d,"arg":%d,"tag":%s}`, e.TS, e.Arg, strconv.Quote(e.Tag))
		if e.Dur > 0 {
			line = fmt.Sprintf(`{"name":%s,"cat":"sim","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d,"args":%s}`,
				strconv.Quote(e.Type), usec(e.TS), usec(e.Dur), e.Core, args)
		} else {
			line = fmt.Sprintf(`{"name":%s,"cat":"sim","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":%s}`,
				strconv.Quote(e.Type), usec(e.TS), e.Core, args)
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
