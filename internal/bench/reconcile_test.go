package bench

import (
	"strings"
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// TestCycleReconciliation asserts the profiler's core invariant on real
// experiment runs: every cycle an engine charges lands in the cycle
// account — no charge path bypasses attribution, nothing is double
// booked. Idle and lock-wait time advance thread clocks without Charge
// calls, so both sides of the comparison exclude them by construction.
func TestCycleReconciliation(t *testing.T) {
	for _, id := range []string{"storage", "ftcost", "numa"} {
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			o := obs.New(0)
			tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
			sp := span.New(3)
			e.Run(Options{Quick: true, Obs: o, Timeline: tl, Spans: sp})
			attributed := o.Cycles.Total()
			charged := o.EnginesTotal()
			if attributed == 0 {
				t.Fatal("no cycles attributed — charge sink not wired")
			}
			if attributed != charged {
				t.Fatalf("attributed %d != engine-charged %d (drift %d)",
					attributed, charged, int64(attributed)-int64(charged))
			}
			// Nothing should charge without a frame: the simulator roots
			// every thread ("app", "setup", "daemon.*").
			snap := o.Cycles.Snapshot()
			if u := snap.TotalOf("unattributed"); u != 0 {
				t.Errorf("%d cycles unattributed", u)
			}
			// The timeline's per-interval cycle deltas must telescope back
			// to the full account: sampling loses nothing at the seams.
			var sampled uint64
			for _, ex := range tl.Export() {
				for _, iv := range ex.Intervals {
					sampled += iv.Cycles
				}
			}
			if sampled != attributed {
				t.Fatalf("timeline intervals sum to %d cycles, account holds %d (drift %d)",
					sampled, attributed, int64(sampled)-int64(attributed))
			}
			// The span layer observes the same charge stream through its
			// own hook: booked (inside an open span) + outside (daemons,
			// setup bootstrap) + remote (AddRemote work, never booked into
			// the interrupted thread's span) must telescope to the same
			// engine total.
			if got := sp.ObservedCycles(); got != charged {
				t.Fatalf("span layer observed %d cycles, engines charged %d (booked %d outside %d remote %d)",
					got, charged, sp.BookedCycles(), sp.OutsideCycles(), sp.RemoteCycles())
			}
			if sp.BookedCycles() == 0 {
				t.Fatal("no cycles booked into spans — observer not wired")
			}
		})
	}
}

// TestSpanSelfTimeMatchesAttribution is the zero-unattributed discipline
// extended to the span layer, per op class: for every class whose Begin
// coincides with an attribution frame of the same name (syscalls, faults,
// shootdowns, journal commits), the summed span self-times must equal the
// cycles the account attributes to frames carrying that class segment.
// The two sides are computed by independent code paths from the same
// charge stream, so any instrumentation gap — a charge escaping its span,
// a span outliving its frame — shows up as drift here.
func TestSpanSelfTimeMatchesAttribution(t *testing.T) {
	// classMatches reports whether an attribution leaf path contains the
	// class as a frame segment. Suffix or infix with dots on both sides:
	// "app.x.syscall.append" and "app.x.syscall.append.ntstore" both carry
	// "syscall.append"; the root-absolute remote path "shootdown.ipi_handler"
	// does not carry class "shootdown" as ".shootdown." or ".shootdown" —
	// remote work belongs to no span, and the matcher must agree.
	classMatches := func(path, class string) bool {
		return strings.Contains(path, "."+class+".") || strings.HasSuffix(path, "."+class)
	}
	for _, id := range []string{"storage", "ftcost", "numa"} {
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			o := obs.New(0)
			sp := span.New(3)
			e.Run(Options{Quick: true, Obs: o, Spans: sp})
			snap := o.Cycles.Snapshot()

			seg, ok := sp.ExportSegment(id)
			if !ok {
				t.Fatalf("no span segment for %s", id)
			}
			if len(seg.Classes) == 0 {
				t.Fatal("no span classes recorded")
			}
			checked := 0
			for _, ce := range seg.Classes {
				// nova.log_append has no attribution frame of its own (the
				// charges book under the enclosing syscall), so the account
				// holds no independent number to check it against.
				if ce.Class == "nova.log_append" {
					continue
				}
				var want uint64
				for path, leaf := range snap.Leaves {
					if classMatches(path, ce.Class) {
						want += leaf.Cycles
					}
				}
				if ce.SelfCycles != want {
					t.Errorf("class %s: span self %d != attributed %d (drift %d)",
						ce.Class, ce.SelfCycles, want, int64(ce.SelfCycles)-int64(want))
				}
				checked++
			}
			if checked == 0 {
				t.Fatal("no classes cross-checked")
			}
		})
	}
}
