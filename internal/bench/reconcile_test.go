package bench

import (
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/obs/timeline"
)

// TestCycleReconciliation asserts the profiler's core invariant on real
// experiment runs: every cycle an engine charges lands in the cycle
// account — no charge path bypasses attribution, nothing is double
// booked. Idle and lock-wait time advance thread clocks without Charge
// calls, so both sides of the comparison exclude them by construction.
func TestCycleReconciliation(t *testing.T) {
	for _, id := range []string{"storage", "ftcost", "numa"} {
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			o := obs.New(0)
			tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
			e.Run(Options{Quick: true, Obs: o, Timeline: tl})
			attributed := o.Cycles.Total()
			charged := o.EnginesTotal()
			if attributed == 0 {
				t.Fatal("no cycles attributed — charge sink not wired")
			}
			if attributed != charged {
				t.Fatalf("attributed %d != engine-charged %d (drift %d)",
					attributed, charged, int64(attributed)-int64(charged))
			}
			// Nothing should charge without a frame: the simulator roots
			// every thread ("app", "setup", "daemon.*").
			snap := o.Cycles.Snapshot()
			if u := snap.TotalOf("unattributed"); u != 0 {
				t.Errorf("%d cycles unattributed", u)
			}
			// The timeline's per-interval cycle deltas must telescope back
			// to the full account: sampling loses nothing at the seams.
			var sampled uint64
			for _, ex := range tl.Export() {
				for _, iv := range ex.Intervals {
					sampled += iv.Cycles
				}
			}
			if sampled != attributed {
				t.Fatalf("timeline intervals sum to %d cycles, account holds %d (drift %d)",
					sampled, attributed, int64(sampled)-int64(attributed))
			}
		})
	}
}
