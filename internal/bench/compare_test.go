package bench

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/obs/bottleneck"
)

func mkArtifact(t *testing.T, mutate func(a *Artifact)) []byte {
	t.Helper()
	a := &Artifact{
		Schema:     ArtifactSchema,
		ID:         "ftcost",
		Title:      "File-table maintenance overhead on appends",
		Quick:      true,
		GitSHA:     "baseline-sha",
		ConfigHash: configHash("ftcost", true, 0, ""),
		Metrics: map[string]float64{
			"overhead-pct/4.0M": 3.2,
			"64K/daxvm":         1_500_000,
		},
		CycleBreakdown: &obs.CycleSnapshot{
			Total: 1_000_000,
			Leaves: map[string]obs.CycleLeaf{
				"app.syscall.append.journal.commit": {Cycles: 200_000, Count: 50},
				"app.syscall.append.ntstore":        {Cycles: 700_000, Count: 500},
				"app.tiny":                          {Cycles: 1_000, Count: 3},
			},
		},
	}
	if mutate != nil {
		mutate(a)
	}
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCompareDetectsJournalInflation is the issue's acceptance check: a
// 10% inflation of the JournalCommit cost must surface as a cycle-leaf
// regression (10% > the 5% cycle tolerance).
func TestCompareDetectsJournalInflation(t *testing.T) {
	base := mkArtifact(t, nil)
	inflated := mkArtifact(t, func(a *Artifact) {
		l := a.CycleBreakdown.Leaves["app.syscall.append.journal.commit"]
		l.Cycles = l.Cycles * 110 / 100
		a.CycleBreakdown.Leaves["app.syscall.append.journal.commit"] = l
		a.CycleBreakdown.Total += l.Cycles - 200_000
		a.GitSHA = "new-sha" // sha differences alone must not matter
	})
	rep, err := CompareArtifacts(base, inflated)
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, r := range rep.Regressions {
		if r.Name == "cycles:app.syscall.append.journal.commit" {
			hit = true
			if r.RelChange < 0.09 || r.RelChange > 0.11 {
				t.Fatalf("relative change = %v, want ~0.10", r.RelChange)
			}
		}
		if strings.HasPrefix(r.Name, "cycles:app.tiny") {
			t.Fatal("sub-min-share leaf flagged")
		}
	}
	if !hit {
		t.Fatalf("journal.commit inflation not detected; regressions = %v", rep.Regressions)
	}
}

func TestCompareCleanPair(t *testing.T) {
	rep, err := CompareArtifacts(mkArtifact(t, nil), mkArtifact(t, func(a *Artifact) {
		a.GitSHA = "other-sha"
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("clean pair flagged: %v", rep.Regressions)
	}
	if rep.Checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestCompareMetricDirections(t *testing.T) {
	// Throughput shrinking past 10% regresses; growing does not.
	slow := mkArtifact(t, func(a *Artifact) { a.Metrics["64K/daxvm"] = 1_200_000 })
	rep, err := CompareArtifacts(mkArtifact(t, nil), slow)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "64K/daxvm" {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
	// Overhead percentage growing past 10% regresses (lower is better).
	worse := mkArtifact(t, func(a *Artifact) { a.Metrics["overhead-pct/4.0M"] = 4.0 })
	rep, err = CompareArtifacts(mkArtifact(t, nil), worse)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "overhead-pct/4.0M" {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
	// A vanished metric is always a regression.
	missing := mkArtifact(t, func(a *Artifact) { delete(a.Metrics, "64K/daxvm") })
	rep, err = CompareArtifacts(mkArtifact(t, nil), missing)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0].Name, "missing") {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
}

func TestCompareRefusesCrossConfig(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(a *Artifact)
	}{
		{"quick-vs-full", func(a *Artifact) { a.Quick = false; a.ConfigHash = configHash(a.ID, false, 0, "") }},
		{"different-experiment", func(a *Artifact) { a.ID = "storage"; a.ConfigHash = configHash("storage", true, 0, "") }},
		{"config-hash-drift", func(a *Artifact) { a.ConfigHash = "deadbeefdeadbeef" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := CompareArtifacts(mkArtifact(t, nil), mkArtifact(t, c.mutate))
			var mm *MismatchError
			if !errors.As(err, &mm) {
				t.Fatalf("err = %v, want MismatchError", err)
			}
		})
	}
}

// TestCompareHostInformational checks that host-speed telemetry surfaces
// as an info line when both artifacts carry it — and never as a
// regression, no matter how large the slowdown: wall-clock speed depends
// on the host machine, not the simulated system under test.
func TestCompareHostInformational(t *testing.T) {
	withHost := func(eps float64) func(a *Artifact) {
		return func(a *Artifact) {
			a.Host = &HostTelemetry{WallSeconds: 1, Events: uint64(eps), EventsPerSec: eps}
		}
	}
	rep, err := CompareArtifacts(mkArtifact(t, withHost(100_000)), mkArtifact(t, withHost(10_000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("10x host slowdown gated the comparison: %v", rep.Regressions)
	}
	var hit bool
	for _, s := range rep.Info {
		if strings.Contains(s, "events/sec") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no host events/sec info line; info = %v", rep.Info)
	}

	// One side missing host telemetry (e.g. a pre-v3 baseline): no info
	// line, no error.
	rep, err = CompareArtifacts(mkArtifact(t, nil), mkArtifact(t, withHost(10_000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Info) != 0 {
		t.Fatalf("info emitted without both hosts: %v", rep.Info)
	}
}

// TestLowerBetterFromRegistry pins the direction metadata to the
// experiment registration: registerCost experiments report every metric
// as lower-is-better, an experiment with a custom LowerBetter is
// consulted per metric, and unknown ids (old baselines from renamed
// experiments) fall back to the metric-name conventions.
// TestCompareSaturationInformational checks that bottleneck-verdict
// changes between artifacts surface as info lines and never gate: a
// verdict flipping is what a perf fix looks like, so only the metric
// and cycle checks may flip the exit code.
func TestCompareSaturationInformational(t *testing.T) {
	withVerdicts := func(sha string, t16 string) []byte {
		return mkArtifact(t, func(a *Artifact) {
			a.GitSHA = sha
			a.Saturation = []bottleneck.Report{
				{Segment: "ftcost/t1", Verdict: "bottleneck: pmem_bw (util 0.93, avg queue 0.4)"},
				{Segment: "ftcost/t16", Verdict: t16},
			}
		})
	}
	old := withVerdicts("a", "bottleneck: mmap_sem (util 0.97, avg queue 11.3)")
	new_ := withVerdicts("b", "bottleneck: pmem_bw (util 0.91, avg queue 0.2)")
	rep, err := CompareArtifacts(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("saturation change gated: %v", rep.Regressions)
	}
	var hit bool
	for _, s := range rep.Info {
		if strings.Contains(s, "saturation ftcost/t16") && strings.Contains(s, "mmap_sem") && strings.Contains(s, "informational") {
			hit = true
		}
		if strings.Contains(s, "saturation ftcost/t1:") {
			t.Fatalf("unchanged verdict reported: %q", s)
		}
	}
	if !hit {
		t.Fatalf("no saturation info line; info = %v", rep.Info)
	}

	// A report present on only one side is also informational.
	rep, err = CompareArtifacts(mkArtifact(t, nil), withVerdicts("b", "bottleneck: none (no saturated resource)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("new saturation section gated: %v", rep.Regressions)
	}
	var added int
	for _, s := range rep.Info {
		if strings.Contains(s, "new report") {
			added++
		}
	}
	if added != 2 {
		t.Fatalf("want 2 new-report info lines, got %d: %v", added, rep.Info)
	}
}

func TestLowerBetterFromRegistry(t *testing.T) {
	// The real cost experiments are registered via registerCost.
	for _, id := range []string{"table2", "storage"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		if e.LowerBetter == nil || !e.LowerBetter("anything") {
			t.Fatalf("experiment %q not registered as all-cost", id)
		}
		if !lowerBetter(id, "walk-cycles") {
			t.Fatalf("lowerBetter(%q) ignored the registration", id)
		}
	}

	// A per-metric LowerBetter is consulted, not a blanket answer.
	saved := registry
	t.Cleanup(func() { registry = saved })
	registry = append(registry, Experiment{
		ID: "mixed-test", Title: "t",
		LowerBetter: func(metric string) bool { return metric == "lat-cycles" },
	})
	if !lowerBetter("mixed-test", "lat-cycles") {
		t.Fatal("cost metric not lower-better")
	}
	if lowerBetter("mixed-test", "throughput") {
		t.Fatal("throughput metric treated as cost")
	}

	// Unknown id: name conventions still apply.
	if !lowerBetter("no-such-experiment", "overhead-pct/4M") {
		t.Fatal("convention fallback lost")
	}
	if lowerBetter("no-such-experiment", "64K/daxvm") {
		t.Fatal("throughput metric flagged lower-better for unknown id")
	}
}

// TestCompareUsesRegisteredDirection is the end-to-end check: a metric
// on a registerCost experiment growing past tolerance regresses even
// though its name matches no cost-shaped convention.
func TestCompareUsesRegisteredDirection(t *testing.T) {
	mk := func(walk float64) []byte {
		return mkArtifact(t, func(a *Artifact) {
			a.ID = "table2"
			a.ConfigHash = configHash("table2", true, 0, "")
			a.Metrics = map[string]float64{"4K/walk-cycles": walk}
			a.CycleBreakdown = nil
		})
	}
	rep, err := CompareArtifacts(mk(100), mk(120))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "4K/walk-cycles" {
		t.Fatalf("growing cost not flagged: %v", rep.Regressions)
	}
	rep, err = CompareArtifacts(mk(100), mk(80))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("shrinking cost flagged: %v", rep.Regressions)
	}
}

// TestCompareAcceptsV1Baseline keeps old baselines usable: a v1 artifact
// has no provenance or breakdown, so only metrics are compared.
func TestCompareAcceptsV1Baseline(t *testing.T) {
	v1 := []byte(`{"schema":"daxvm-bench/v1","id":"ftcost","title":"t","quick":true,"metrics":{"64K/daxvm":1500000}}`)
	rep, err := CompareArtifacts(v1, mkArtifact(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
}
