package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"daxvm/internal/obs"
)

// Comparison thresholds. Experiments are deterministic, so drift between
// two runs of the same tree is zero; the margins exist to absorb benign
// cost-model retunes that stay within noise of the paper's shape claims.
const (
	// metricTolerance is the default relative change allowed per metric.
	metricTolerance = 0.10
	// cycleTolerance is the relative change allowed per cycle leaf and for
	// the attributed total.
	cycleTolerance = 0.05
	// cycleMinShare filters leaves below this share of the attributed
	// total: a 5% swing on a 0.01% leaf is not a regression signal.
	cycleMinShare = 0.005
)

// MismatchError reports artifacts that must not be compared (different
// experiment, quick vs full, diverged config). The CLI maps it to exit
// code 2, distinct from a genuine regression (exit 1).
type MismatchError struct{ Reason string }

func (e *MismatchError) Error() string { return "compare: " + e.Reason }

// Regression is one metric or cycle leaf that moved past tolerance in the
// slow/wrong direction.
type Regression struct {
	Name      string // metric name, or "cycles:" + attribution path
	Old, New  float64
	RelChange float64 // signed, relative to old
}

func (r Regression) String() string {
	return fmt.Sprintf("%-50s %14.3f -> %14.3f  (%+.1f%%)", r.Name, r.Old, r.New, 100*r.RelChange)
}

// CompareReport is the outcome of comparing a new artifact to a baseline.
type CompareReport struct {
	ID          string
	Regressions []Regression
	Checked     int // metrics + cycle leaves examined
	// Info lines are purely informational (host wall-clock speed deltas):
	// printed by the CLI but never counted as regressions, because host
	// speed is noise-prone and must not flip the gate's exit code.
	Info []string
}

// lowerBetter reports whether a metric regresses by growing. The
// experiment registration is the source of truth (Experiment.LowerBetter,
// set by registerCost for all-cost experiments); for artifacts from
// experiments this binary doesn't know — old baselines, renamed ids —
// metric-name conventions decide: overhead percentages, storage
// footprints, and boot latency are costs, everything else is
// throughput-shaped (higher better).
func lowerBetter(id, metric string) bool {
	if e, ok := ByID(id); ok && e.LowerBetter != nil {
		return e.LowerBetter(metric)
	}
	switch {
	case strings.HasPrefix(metric, "overhead-pct"),
		strings.HasPrefix(metric, "pmem/"),
		strings.HasPrefix(metric, "dram/"),
		strings.HasSuffix(metric, "/boot-ms"),
		metric == "pmem-pct", metric == "dram-mb":
		return true
	}
	return false
}

// CompareArtifacts validates both artifacts, refuses cross-config pairs,
// and reports every metric and cycle-breakdown leaf that regressed past
// tolerance. git_sha differences are expected (that is the point of the
// gate) and ignored.
func CompareArtifacts(oldRaw, newRaw []byte) (*CompareReport, error) {
	if err := ValidateArtifact(oldRaw); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := ValidateArtifact(newRaw); err != nil {
		return nil, fmt.Errorf("new: %w", err)
	}
	var oa, na Artifact
	if err := json.Unmarshal(oldRaw, &oa); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(newRaw, &na); err != nil {
		return nil, err
	}
	if oa.ID != na.ID {
		return nil, &MismatchError{fmt.Sprintf("experiment id %q vs %q", oa.ID, na.ID)}
	}
	if oa.Quick != na.Quick {
		return nil, &MismatchError{fmt.Sprintf("quick=%v vs quick=%v", oa.Quick, na.Quick)}
	}
	if oa.ConfigHash != "" && na.ConfigHash != "" && oa.ConfigHash != na.ConfigHash {
		return nil, &MismatchError{fmt.Sprintf("config_hash %s vs %s", oa.ConfigHash, na.ConfigHash)}
	}

	rep := &CompareReport{ID: oa.ID}
	// Saturation verdicts: informational only. A bottleneck shifting
	// (e.g. mmap_sem -> pmem_bw at some sweep point) is exactly what a
	// perf fix is supposed to do, so it must never gate; the metric and
	// cycle checks below catch any throughput cost. Segments present on
	// only one side are also reported — an attribution report appearing
	// or vanishing is worth a log line.
	if len(oa.Saturation) > 0 || len(na.Saturation) > 0 {
		ov := map[string]string{}
		for _, s := range oa.Saturation {
			ov[s.Segment] = s.Verdict
		}
		nv := map[string]string{}
		for _, s := range na.Saturation {
			nv[s.Segment] = s.Verdict
		}
		for _, seg := range obs.SortedKeys(ov) {
			nw, ok := nv[seg]
			switch {
			case !ok:
				rep.Info = append(rep.Info, fmt.Sprintf("saturation %s: report gone (was %q, informational)", seg, ov[seg]))
			case nw != ov[seg]:
				rep.Info = append(rep.Info, fmt.Sprintf("saturation %s: %q -> %q (informational)", seg, ov[seg], nw))
			}
		}
		for _, seg := range obs.SortedKeys(nv) {
			if _, ok := ov[seg]; !ok {
				rep.Info = append(rep.Info, fmt.Sprintf("saturation %s: new report %q (informational)", seg, nv[seg]))
			}
		}
	}
	// Host speed: informational only. Wall-clock varies with host load,
	// so it reports as a trend line in CI logs, never as a regression.
	if oa.Host != nil && na.Host != nil && oa.Host.EventsPerSec > 0 && na.Host.EventsPerSec > 0 {
		rel := (na.Host.EventsPerSec - oa.Host.EventsPerSec) / oa.Host.EventsPerSec
		rep.Info = append(rep.Info, fmt.Sprintf(
			"host events/sec %.3g -> %.3g (%+.1f%%, informational)",
			oa.Host.EventsPerSec, na.Host.EventsPerSec, 100*rel))
	}
	for _, name := range obs.SortedKeys(oa.Metrics) {
		ov := oa.Metrics[name]
		rep.Checked++
		nv, ok := na.Metrics[name]
		if !ok {
			// A metric the baseline had must not vanish.
			rep.Regressions = append(rep.Regressions, Regression{Name: name + " (missing)", Old: ov, New: 0, RelChange: -1})
			continue
		}
		if ov == 0 {
			continue
		}
		rel := (nv - ov) / ov
		bad := rel < -metricTolerance // throughput-like: shrinking is bad
		if lowerBetter(oa.ID, name) {
			bad = rel > metricTolerance
		}
		if bad {
			rep.Regressions = append(rep.Regressions, Regression{Name: name, Old: ov, New: nv, RelChange: rel})
		}
	}

	// Cycle breakdown: any leaf carrying a meaningful share of the run
	// that got more expensive, plus the attributed total itself.
	if oa.CycleBreakdown != nil && na.CycleBreakdown != nil && oa.CycleBreakdown.Total > 0 {
		ob, nb := oa.CycleBreakdown, na.CycleBreakdown
		rep.Checked++
		if rel := relDelta(ob.Total, nb.Total); rel > cycleTolerance {
			rep.Regressions = append(rep.Regressions, Regression{
				Name: "cycles:total", Old: float64(ob.Total), New: float64(nb.Total), RelChange: rel,
			})
		}
		for _, p := range obs.SortedKeys(ob.Leaves) {
			ol := ob.Leaves[p]
			if float64(ol.Cycles) < cycleMinShare*float64(ob.Total) {
				continue
			}
			rep.Checked++
			nl := nb.Leaves[p]
			if rel := relDelta(ol.Cycles, nl.Cycles); rel > cycleTolerance {
				rep.Regressions = append(rep.Regressions, Regression{
					Name: "cycles:" + p, Old: float64(ol.Cycles), New: float64(nl.Cycles), RelChange: rel,
				})
			}
		}
	}
	return rep, nil
}

func relDelta(old, new uint64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (float64(new) - float64(old)) / float64(old)
}
