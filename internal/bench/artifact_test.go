package bench

import (
	"bytes"
	"strings"
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// TestArtifactSmoke runs one cheap experiment end to end and validates
// the JSON artifact it produces against the daxvm-bench/v4 schema.
func TestArtifactSmoke(t *testing.T) {
	e, ok := ByID("storage")
	if !ok {
		t.Fatal("storage experiment not registered")
	}
	o := obs.New(0)
	tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
	opts := Options{Quick: true, Obs: o, Timeline: tl, Spans: span.New(3)}
	r := e.Run(opts)
	if len(r.Metrics) == 0 {
		t.Fatal("experiment produced no metrics")
	}

	snap := o.Reg.Snapshot()
	cycles := o.Cycles.Snapshot()
	a := NewArtifact(r, opts, &snap, &cycles)
	a.Host = &HostTelemetry{WallSeconds: 0.5, Events: 1000, EventsPerSec: 2000}
	var buf bytes.Buffer
	if err := a.WriteArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateArtifact(buf.Bytes()); err != nil {
		t.Fatalf("artifact failed its own schema: %v\n%s", err, buf.String())
	}

	// The observability hub wired into the experiment's kernel must have
	// seen the corpus build (creates + appends, each a journal txn).
	if len(snap.Counters) == 0 {
		t.Error("snapshot has no counters — Obs was not wired into boot()")
	}
	for _, name := range []string{"ext4.creates", "ext4.appends", "ext4.journal.begins"} {
		if snap.Get(name) == 0 {
			t.Errorf("%s = 0: experiment activity did not reach the registry", name)
		}
	}

	// v2 provenance and the cycle breakdown must make it to disk.
	if a.GitSHA == "" || a.ConfigHash == "" {
		t.Errorf("missing provenance: git_sha=%q config_hash=%q", a.GitSHA, a.ConfigHash)
	}
	if cycles.Total == 0 || len(cycles.Leaves) == 0 {
		t.Error("cycle breakdown empty — charge sink was not wired into boot()")
	}

	// v3: the experiment's timeline segment must land in the artifact.
	if len(a.Timeline) == 0 {
		t.Fatal("artifact has no timeline section")
	}
	for _, ex := range a.Timeline {
		if ex.Segment != "storage" {
			t.Errorf("foreign segment %q embedded in storage artifact", ex.Segment)
		}
		if len(ex.Intervals) == 0 {
			t.Error("timeline segment has no intervals")
		}
	}

	// v4: the span layer's critical-path rows and exemplar trees must
	// land in the artifact too.
	if len(a.CriticalPath) == 0 {
		t.Fatal("artifact has no critical_path section")
	}
	if len(a.Exemplars) == 0 {
		t.Fatal("artifact has no exemplars section")
	}
	for class, trees := range a.Exemplars {
		if len(trees) == 0 || len(trees) > 3 {
			t.Errorf("class %s kept %d exemplars, want 1..3", class, len(trees))
		}
	}
}

// TestValidateArtifactRejects exercises the validator's failure modes.
func TestValidateArtifactRejects(t *testing.T) {
	// v1 artifacts (no provenance fields) must stay accepted.
	valid := `{"schema":"daxvm-bench/v1","id":"x","title":"t","quick":true,"metrics":{"a":1}}`
	if err := ValidateArtifact([]byte(valid)); err != nil {
		t.Fatalf("valid v1 artifact rejected: %v", err)
	}
	validV2 := `{"schema":"daxvm-bench/v2","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"0011223344556677","metrics":{"a":1},"cycle_breakdown":{"total":10,"leaves":{"app":{"cycles":10,"count":1}}}}`
	if err := ValidateArtifact([]byte(validV2)); err != nil {
		t.Fatalf("valid v2 artifact rejected: %v", err)
	}
	validV3 := `{"schema":"daxvm-bench/v3","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"0011223344556677","metrics":{"a":1},` +
		`"timeline":[{"segment":"x","interval_cycles":64,"intervals":[{"start_cycles":0,"end_cycles":64,"cycles":10}]}],` +
		`"host":{"wall_seconds":0.5,"engine_events":100,"events_per_sec":200}}`
	if err := ValidateArtifact([]byte(validV3)); err != nil {
		t.Fatalf("valid v3 artifact rejected: %v", err)
	}
	validV4 := `{"schema":"daxvm-bench/v4","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"0011223344556677","metrics":{"a":1},` +
		`"timeline":[{"segment":"x","interval_cycles":64,"intervals":[{"start_cycles":0,"end_cycles":64,"cycles":10}]}],` +
		`"critical_path":[{"class":"fault.minor","count":3,"total_cycles":300,"self_cycles":250,"avg_cycles":100,"p50_cycles":96,"p99_cycles":128},` +
		`{"class":"syscall.read","count":2,"total_cycles":400,"self_cycles":400,"avg_cycles":200,"p50_cycles":192,"p99_cycles":256}],` +
		`"exemplars":{"fault.minor":[{"class":"fault.minor","core":0,"start_cycles":10,"dur_cycles":120,"self_cycles":80,"tree_self_cycles":110,` +
		`"children":[{"class":"fault.alloc","core":0,"start_cycles":20,"dur_cycles":30,"self_cycles":30,"tree_self_cycles":30}]}]}}`
	if err := ValidateArtifact([]byte(validV4)); err != nil {
		t.Fatalf("valid v4 artifact rejected: %v", err)
	}
	v4head := `{"schema":"daxvm-bench/v4","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},`
	cases := []struct {
		name, raw, wantErr string
	}{
		{"not-json", `nope`, "not a JSON object"},
		{"wrong-schema", `{"schema":"other/v9","id":"x","title":"t","quick":true,"metrics":{}}`, "schema"},
		{"missing-id", `{"schema":"daxvm-bench/v1","title":"t","quick":true,"metrics":{}}`, `missing required field "id"`},
		{"empty-id", `{"schema":"daxvm-bench/v1","id":"","title":"t","quick":true,"metrics":{}}`, "empty id"},
		{"bad-metrics", `{"schema":"daxvm-bench/v1","id":"x","title":"t","quick":true,"metrics":{"a":"NaN"}}`, `field "metrics"`},
		{"bad-quick", `{"schema":"daxvm-bench/v1","id":"x","title":"t","quick":"yes","metrics":{}}`, `field "quick"`},
		{"bad-snapshot", `{"schema":"daxvm-bench/v1","id":"x","title":"t","quick":true,"metrics":{},"snapshot":42}`, "bad snapshot"},
		{"v2-missing-sha", `{"schema":"daxvm-bench/v2","id":"x","title":"t","quick":true,"config_hash":"00","metrics":{}}`, `missing required field "git_sha"`},
		{"v2-empty-confhash", `{"schema":"daxvm-bench/v2","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"","metrics":{}}`, "empty config_hash"},
		{"v2-bad-breakdown", `{"schema":"daxvm-bench/v2","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"cycle_breakdown":[]}`, "bad cycle_breakdown"},
		{"v3-missing-provenance", `{"schema":"daxvm-bench/v3","id":"x","title":"t","quick":true,"metrics":{}}`, `missing required field "git_sha"`},
		{"timeline-on-v2", `{"schema":"daxvm-bench/v2","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"timeline":[]}`, "timeline section requires schema"},
		{"bad-timeline", `{"schema":"daxvm-bench/v3","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"timeline":42}`, "bad timeline"},
		{"timeline-backwards-interval", `{"schema":"daxvm-bench/v3","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"timeline":[{"segment":"x","interval_cycles":64,"intervals":[{"start_cycles":64,"end_cycles":0,"cycles":1}]}]}`, "ends before it starts"},
		{"host-on-v2", `{"schema":"daxvm-bench/v2","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"host":{"wall_seconds":1}}`, "host block requires schema"},
		{"negative-host", `{"schema":"daxvm-bench/v3","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"host":{"wall_seconds":-1,"engine_events":1,"events_per_sec":1}}`, "negative host"},
		{"critical-path-on-v3", `{"schema":"daxvm-bench/v3","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"critical_path":[]}`, "critical_path section requires schema"},
		{"exemplars-on-v3", `{"schema":"daxvm-bench/v3","id":"x","title":"t","quick":true,"git_sha":"abc","config_hash":"00","metrics":{},"exemplars":{}}`, "exemplars section requires schema"},
		{"bad-critical-path", v4head + `"critical_path":42}`, "bad critical_path"},
		{"critical-path-empty-class", v4head + `"critical_path":[{"class":"","count":1,"total_cycles":1,"self_cycles":1,"avg_cycles":1,"p50_cycles":1,"p99_cycles":1}]}`, "empty class"},
		{"critical-path-unsorted", v4head + `"critical_path":[{"class":"b","count":1,"total_cycles":1,"self_cycles":1,"avg_cycles":1,"p50_cycles":1,"p99_cycles":1},{"class":"a","count":1,"total_cycles":1,"self_cycles":1,"avg_cycles":1,"p50_cycles":1,"p99_cycles":1}]}`, "not sorted"},
		{"critical-path-zero-count", v4head + `"critical_path":[{"class":"a","count":0,"total_cycles":1,"self_cycles":1,"avg_cycles":1,"p50_cycles":1,"p99_cycles":1}]}`, "zero count"},
		{"critical-path-self-over-total", v4head + `"critical_path":[{"class":"a","count":1,"total_cycles":10,"self_cycles":11,"avg_cycles":1,"p50_cycles":1,"p99_cycles":1}]}`, "self exceeds total"},
		{"bad-exemplars", v4head + `"exemplars":[]}`, "bad exemplars"},
		{"exemplar-self-over-dur", v4head + `"exemplars":{"a":[{"class":"a","core":0,"start_cycles":0,"dur_cycles":10,"self_cycles":11,"tree_self_cycles":11}]}}`, "exceeds dur"},
		{"exemplar-child-escapes", v4head + `"exemplars":{"a":[{"class":"a","core":0,"start_cycles":10,"dur_cycles":10,"self_cycles":5,"tree_self_cycles":10,"children":[{"class":"b","core":0,"start_cycles":15,"dur_cycles":10,"self_cycles":5,"tree_self_cycles":5}]}]}}`, "escapes parent"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateArtifact([]byte(c.raw))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
