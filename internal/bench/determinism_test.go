package bench

import (
	"bytes"
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// TestRunDeterminism runs the ftcost experiment twice in one process and
// asserts the two serialized artifacts are byte-identical once the
// provenance fields (identical anyway within one build) are pinned. This
// is the invariant the perf gate's byte-stable baselines rest on: a
// simulator that produces different artifacts across same-binary runs —
// map-order leaks, wall-clock contamination, scheduler races — would
// render every baseline diff meaningless.
func TestRunDeterminism(t *testing.T) {
	run := func() []byte {
		e, ok := ByID("ftcost")
		if !ok {
			t.Fatal("ftcost not registered")
		}
		o := obs.New(0)
		tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
		sp := span.New(3)
		opts := Options{Quick: true, Obs: o, Timeline: tl, Spans: sp}
		res := e.Run(opts)
		snap := o.Reg.Snapshot()
		cycles := o.Cycles.Snapshot()
		art := NewArtifact(res, opts, &snap, &cycles)
		// The timeline rides the same determinism contract as everything
		// else in the artifact: the sampler runs on virtual time, so its
		// interval boundaries and deltas are part of the payload.
		if len(art.Timeline) == 0 {
			t.Fatal("artifact has no timeline section")
		}
		var intervals int
		for _, ex := range art.Timeline {
			intervals += len(ex.Intervals)
		}
		if intervals < 50 {
			t.Fatalf("timeline has %d intervals, want >= 50", intervals)
		}
		// The span sections ride the same contract: critical-path rows and
		// exemplar trees (including which ops the reservoir kept) are part
		// of the byte-compared payload below.
		if len(art.CriticalPath) == 0 {
			t.Fatal("artifact has no critical_path section")
		}
		if len(art.Exemplars) == 0 {
			t.Fatal("artifact has no exemplars section")
		}
		// Pin provenance: the invariant under test is the payload, and
		// the env-sensitive git SHA would make the assertion flaky in CI.
		art.GitSHA = "test"
		var buf bytes.Buffer
		if err := art.WriteArtifact(&buf); err != nil {
			t.Fatalf("serialize artifact: %v", err)
		}
		return buf.Bytes()
	}
	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		a, b := first, second
		// Find the first divergent line for a readable failure.
		al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(al) && i < len(bl); i++ {
			if !bytes.Equal(al[i], bl[i]) {
				t.Fatalf("artifacts diverge at line %d:\n run 1: %s\n run 2: %s", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("artifacts differ in length: %d vs %d bytes", len(a), len(b))
	}
}
