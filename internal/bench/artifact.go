package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime/debug"

	"daxvm/internal/obs"
	"daxvm/internal/obs/timeline"
)

// ArtifactSchema identifies the current per-experiment JSON artifact
// format. v2 added provenance (git_sha, config_hash) and the cycle
// breakdown; v3 adds the timeline section and the host telemetry block.
// Older artifacts remain readable (ValidateArtifact accepts v1/v2/v3).
const (
	ArtifactSchema   = "daxvm-bench/v3"
	ArtifactSchemaV2 = "daxvm-bench/v2"
	ArtifactSchemaV1 = "daxvm-bench/v1"
)

// Artifact is the machine-readable outcome of one experiment run, written
// as BENCH_<id>.json. Metrics mirror Result.Metrics; Snapshot, when
// present, is the observability registry state after the run;
// CycleBreakdown, when present, is the cycle-attribution delta for this
// experiment alone; Timeline, when present, holds this experiment's
// interval samples. Every field except Host is a pure function of the
// build: two runs of the same binary produce byte-identical artifacts up
// to the host block, which is measured outside the deterministic core.
type Artifact struct {
	Schema         string             `json:"schema"`
	ID             string             `json:"id"`
	Title          string             `json:"title"`
	Quick          bool               `json:"quick"`
	GitSHA         string             `json:"git_sha,omitempty"`
	ConfigHash     string             `json:"config_hash,omitempty"`
	Metrics        map[string]float64 `json:"metrics"`
	Notes          []string           `json:"notes,omitempty"`
	Snapshot       *obs.Snapshot      `json:"snapshot,omitempty"`
	CycleBreakdown *obs.CycleSnapshot `json:"cycle_breakdown,omitempty"`
	Timeline       []timeline.Export  `json:"timeline,omitempty"`
	Host           *HostTelemetry     `json:"host,omitempty"`
}

// HostTelemetry is the artifact's only wall-clock-dependent block: how
// fast the host machine ground through the simulation. Events is the
// deterministic engine-event count (sim.Engine.Events summed over
// engines); WallSeconds and EventsPerSec vary run to run, which is why
// -compare treats them as informational and never gates on them.
type HostTelemetry struct {
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"engine_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// NewArtifact packages a result (and optionally the post-run registry
// snapshot and cycle breakdown) for serialization. The options' topology
// overrides feed the config hash, so -compare refuses cross-topology
// diffs.
func NewArtifact(r *Result, o Options, snap *obs.Snapshot, cycles *obs.CycleSnapshot) *Artifact {
	m := r.Metrics
	if m == nil {
		m = map[string]float64{}
	}
	a := &Artifact{
		Schema:         ArtifactSchema,
		ID:             r.ID,
		Title:          r.Title,
		Quick:          o.Quick,
		GitSHA:         gitSHA(),
		ConfigHash:     configHash(r.ID, o.Quick, o.Nodes, o.Placement),
		Metrics:        m,
		Notes:          r.Notes,
		Snapshot:       snap,
		CycleBreakdown: cycles,
	}
	if o.Timeline != nil {
		// A shared timeline accumulates one segment per experiment; the
		// artifact embeds only this experiment's.
		for _, ex := range o.Timeline.Export() {
			if ex.Segment == r.ID {
				a.Timeline = append(a.Timeline, ex)
			}
		}
	}
	return a
}

// gitSHA resolves the source revision the binary was built from:
// DAXVM_GIT_SHA wins (CI sets it), then the vcs.revision embedded by the
// go toolchain, then "unknown" (e.g. `go test` builds without VCS stamps).
func gitSHA() string {
	if sha := os.Getenv("DAXVM_GIT_SHA"); sha != "" {
		return sha
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// configHash fingerprints the run configuration that determines an
// artifact's numbers. Comparing artifacts with different hashes is
// meaningless (quick vs full working sets, different experiments,
// different machine topologies), so the comparator refuses them.
// Topology overrides extend the pre-NUMA hash input only when
// non-default, keeping historical single-node hashes stable.
func configHash(id string, quick bool, nodes int, placement string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|quick=%v", id, quick)
	if nodes > 1 {
		fmt.Fprintf(h, "|nodes=%d", nodes)
	}
	if placement != "" {
		fmt.Fprintf(h, "|placement=%s", placement)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteArtifact serializes the artifact as indented JSON.
func (a *Artifact) WriteArtifact(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ValidateArtifact checks raw bytes against the artifact schema:
// required fields present with the right JSON types, schema id matching
// (v1 or v2), metric values finite numbers. Hand-rolled — the toolchain
// has no JSON Schema validator and the format is small enough not to
// want one.
func ValidateArtifact(raw []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return fmt.Errorf("artifact: not a JSON object: %w", err)
	}
	var schema string
	if err := unmarshalField(top, "schema", &schema); err != nil {
		return err
	}
	if schema != ArtifactSchema && schema != ArtifactSchemaV2 && schema != ArtifactSchemaV1 {
		return fmt.Errorf("artifact: schema %q, want %q, %q or %q", schema, ArtifactSchema, ArtifactSchemaV2, ArtifactSchemaV1)
	}
	var id, title string
	if err := unmarshalField(top, "id", &id); err != nil {
		return err
	}
	if id == "" {
		return fmt.Errorf("artifact: empty id")
	}
	if err := unmarshalField(top, "title", &title); err != nil {
		return err
	}
	var quick bool
	if err := unmarshalField(top, "quick", &quick); err != nil {
		return err
	}
	var metrics map[string]float64
	if err := unmarshalField(top, "metrics", &metrics); err != nil {
		return err
	}
	if schema != ArtifactSchemaV1 {
		// v2+ requires provenance.
		var sha, cfg string
		if err := unmarshalField(top, "git_sha", &sha); err != nil {
			return err
		}
		if sha == "" {
			return fmt.Errorf("artifact: empty git_sha")
		}
		if err := unmarshalField(top, "config_hash", &cfg); err != nil {
			return err
		}
		if cfg == "" {
			return fmt.Errorf("artifact: empty config_hash")
		}
	}
	if snap, ok := top["snapshot"]; ok {
		var s obs.Snapshot
		if err := json.Unmarshal(snap, &s); err != nil {
			return fmt.Errorf("artifact: bad snapshot: %w", err)
		}
	}
	if cb, ok := top["cycle_breakdown"]; ok {
		var c obs.CycleSnapshot
		if err := json.Unmarshal(cb, &c); err != nil {
			return fmt.Errorf("artifact: bad cycle_breakdown: %w", err)
		}
	}
	if tlRaw, ok := top["timeline"]; ok {
		if schema != ArtifactSchema {
			return fmt.Errorf("artifact: timeline section requires schema %q, got %q", ArtifactSchema, schema)
		}
		var exs []timeline.Export
		if err := json.Unmarshal(tlRaw, &exs); err != nil {
			return fmt.Errorf("artifact: bad timeline: %w", err)
		}
		for _, ex := range exs {
			for i, iv := range ex.Intervals {
				if iv.End < iv.Start {
					return fmt.Errorf("artifact: timeline %q interval %d ends before it starts", ex.Segment, i)
				}
			}
		}
	}
	if hostRaw, ok := top["host"]; ok {
		if schema != ArtifactSchema {
			return fmt.Errorf("artifact: host block requires schema %q, got %q", ArtifactSchema, schema)
		}
		var h HostTelemetry
		if err := json.Unmarshal(hostRaw, &h); err != nil {
			return fmt.Errorf("artifact: bad host: %w", err)
		}
		if h.WallSeconds < 0 || h.EventsPerSec < 0 {
			return fmt.Errorf("artifact: negative host telemetry")
		}
	}
	return nil
}

func unmarshalField(top map[string]json.RawMessage, name string, into any) error {
	raw, ok := top[name]
	if !ok {
		return fmt.Errorf("artifact: missing required field %q", name)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("artifact: field %q: %w", name, err)
	}
	return nil
}
