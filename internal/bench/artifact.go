package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime/debug"
	"strings"

	"daxvm/internal/obs"
	"daxvm/internal/obs/bottleneck"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// ArtifactSchema identifies the current per-experiment JSON artifact
// format. v2 added provenance (git_sha, config_hash) and the cycle
// breakdown; v3 added the timeline section and the host telemetry
// block; v4 added the critical_path and exemplars sections from the
// span layer; v5 adds the saturation section (per-segment bottleneck
// reports) and lets an experiment embed sub-segments named
// "<id>/<suffix>". Older artifacts remain readable (ValidateArtifact
// accepts v1–v5).
const (
	ArtifactSchema   = "daxvm-bench/v5"
	ArtifactSchemaV4 = "daxvm-bench/v4"
	ArtifactSchemaV3 = "daxvm-bench/v3"
	ArtifactSchemaV2 = "daxvm-bench/v2"
	ArtifactSchemaV1 = "daxvm-bench/v1"
)

// Artifact is the machine-readable outcome of one experiment run, written
// as BENCH_<id>.json. Metrics mirror Result.Metrics; Snapshot, when
// present, is the observability registry state after the run;
// CycleBreakdown, when present, is the cycle-attribution delta for this
// experiment alone; Timeline, when present, holds this experiment's
// interval samples; CriticalPath and Exemplars, when present, hold the
// span layer's per-op-class latency decomposition and top-K slowest
// span trees; Saturation, when present, holds one bottleneck report
// per embedded timeline segment. Every field except Host is a pure
// function of the build:
// two runs of the same binary produce byte-identical artifacts up to
// the host block, which is measured outside the deterministic core.
type Artifact struct {
	Schema         string                 `json:"schema"`
	ID             string                 `json:"id"`
	Title          string                 `json:"title"`
	Quick          bool                   `json:"quick"`
	GitSHA         string                 `json:"git_sha,omitempty"`
	ConfigHash     string                 `json:"config_hash,omitempty"`
	Metrics        map[string]float64     `json:"metrics"`
	Notes          []string               `json:"notes,omitempty"`
	Snapshot       *obs.Snapshot          `json:"snapshot,omitempty"`
	CycleBreakdown *obs.CycleSnapshot     `json:"cycle_breakdown,omitempty"`
	Timeline       []timeline.Export      `json:"timeline,omitempty"`
	CriticalPath   []span.ClassExport     `json:"critical_path,omitempty"`
	Exemplars      map[string][]span.Span `json:"exemplars,omitempty"`
	Saturation     []bottleneck.Report    `json:"saturation,omitempty"`
	Host           *HostTelemetry         `json:"host,omitempty"`
}

// HostTelemetry is the artifact's only wall-clock-dependent block: how
// fast the host machine ground through the simulation. Events is the
// deterministic engine-event count (sim.Engine.Events summed over
// engines); WallSeconds and EventsPerSec vary run to run, which is why
// -compare treats them as informational and never gates on them.
type HostTelemetry struct {
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"engine_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// NewArtifact packages a result (and optionally the post-run registry
// snapshot and cycle breakdown) for serialization. The options' topology
// overrides feed the config hash, so -compare refuses cross-topology
// diffs.
func NewArtifact(r *Result, o Options, snap *obs.Snapshot, cycles *obs.CycleSnapshot) *Artifact {
	m := r.Metrics
	if m == nil {
		m = map[string]float64{}
	}
	a := &Artifact{
		Schema:         ArtifactSchema,
		ID:             r.ID,
		Title:          r.Title,
		Quick:          o.Quick,
		GitSHA:         gitSHA(),
		ConfigHash:     configHash(r.ID, o.Quick, o.Nodes, o.Placement),
		Metrics:        m,
		Notes:          r.Notes,
		Snapshot:       snap,
		CycleBreakdown: cycles,
	}
	if o.Timeline != nil {
		// A shared timeline accumulates segments across experiments; the
		// artifact embeds this experiment's own segment plus any
		// sub-segments it opened ("<id>/<suffix>", e.g. one per sweep
		// point), and attributes a bottleneck per embedded segment.
		for _, ex := range o.Timeline.Export() {
			if ex.Segment != r.ID && !strings.HasPrefix(ex.Segment, r.ID+"/") {
				continue
			}
			a.Timeline = append(a.Timeline, ex)
			var sp *span.SegmentExport
			if o.Spans != nil {
				if seg, ok := o.Spans.ExportSegment(ex.Segment); ok {
					sp = &seg
				}
			}
			a.Saturation = append(a.Saturation, bottleneck.Analyze(ex, sp))
		}
	}
	if o.Spans != nil {
		if seg, ok := o.Spans.ExportSegment(r.ID); ok {
			a.CriticalPath = seg.Classes
			a.Exemplars = seg.Exemplars
		}
	}
	return a
}

// gitSHA resolves the source revision the binary was built from:
// DAXVM_GIT_SHA wins (CI sets it), then the vcs.revision embedded by the
// go toolchain, then "unknown" (e.g. `go test` builds without VCS stamps).
func gitSHA() string {
	if sha := os.Getenv("DAXVM_GIT_SHA"); sha != "" {
		return sha
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// configHash fingerprints the run configuration that determines an
// artifact's numbers. Comparing artifacts with different hashes is
// meaningless (quick vs full working sets, different experiments,
// different machine topologies), so the comparator refuses them.
// Topology overrides extend the pre-NUMA hash input only when
// non-default, keeping historical single-node hashes stable.
//
// The scheduler selection (-sched/-shards) is deliberately NOT hashed:
// by construction — and by the sched-gate byte-identity check in CI — it
// can never change an artifact's numbers, and hashing it would make seq
// and shard runs incomparable, defeating the very comparison the gate
// performs. Only inputs that may move numbers belong here.
func configHash(id string, quick bool, nodes int, placement string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|quick=%v", id, quick)
	if nodes > 1 {
		fmt.Fprintf(h, "|nodes=%d", nodes)
	}
	if placement != "" {
		fmt.Fprintf(h, "|placement=%s", placement)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteArtifact serializes the artifact as indented JSON.
func (a *Artifact) WriteArtifact(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ValidateArtifact checks raw bytes against the artifact schema:
// required fields present with the right JSON types, schema id matching
// (v1–v5), metric values finite numbers, and version-gated sections
// (timeline/host need v3+, critical_path/exemplars need v4+,
// saturation needs v5). Hand-rolled — the toolchain has no JSON Schema
// validator and the format is small enough not to want one.
func ValidateArtifact(raw []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return fmt.Errorf("artifact: not a JSON object: %w", err)
	}
	var schema string
	if err := unmarshalField(top, "schema", &schema); err != nil {
		return err
	}
	switch schema {
	case ArtifactSchema, ArtifactSchemaV4, ArtifactSchemaV3, ArtifactSchemaV2, ArtifactSchemaV1:
	default:
		return fmt.Errorf("artifact: schema %q, want one of %q, %q, %q, %q, %q", schema, ArtifactSchema, ArtifactSchemaV4, ArtifactSchemaV3, ArtifactSchemaV2, ArtifactSchemaV1)
	}
	var id, title string
	if err := unmarshalField(top, "id", &id); err != nil {
		return err
	}
	if id == "" {
		return fmt.Errorf("artifact: empty id")
	}
	if err := unmarshalField(top, "title", &title); err != nil {
		return err
	}
	var quick bool
	if err := unmarshalField(top, "quick", &quick); err != nil {
		return err
	}
	var metrics map[string]float64
	if err := unmarshalField(top, "metrics", &metrics); err != nil {
		return err
	}
	if schema != ArtifactSchemaV1 {
		// v2+ requires provenance.
		var sha, cfg string
		if err := unmarshalField(top, "git_sha", &sha); err != nil {
			return err
		}
		if sha == "" {
			return fmt.Errorf("artifact: empty git_sha")
		}
		if err := unmarshalField(top, "config_hash", &cfg); err != nil {
			return err
		}
		if cfg == "" {
			return fmt.Errorf("artifact: empty config_hash")
		}
	}
	if snap, ok := top["snapshot"]; ok {
		var s obs.Snapshot
		if err := json.Unmarshal(snap, &s); err != nil {
			return fmt.Errorf("artifact: bad snapshot: %w", err)
		}
	}
	if cb, ok := top["cycle_breakdown"]; ok {
		var c obs.CycleSnapshot
		if err := json.Unmarshal(cb, &c); err != nil {
			return fmt.Errorf("artifact: bad cycle_breakdown: %w", err)
		}
	}
	v3plus := schema == ArtifactSchema || schema == ArtifactSchemaV4 || schema == ArtifactSchemaV3
	v4plus := schema == ArtifactSchema || schema == ArtifactSchemaV4
	if tlRaw, ok := top["timeline"]; ok {
		if !v3plus {
			return fmt.Errorf("artifact: timeline section requires schema %q or %q, got %q", ArtifactSchema, ArtifactSchemaV3, schema)
		}
		var exs []timeline.Export
		if err := json.Unmarshal(tlRaw, &exs); err != nil {
			return fmt.Errorf("artifact: bad timeline: %w", err)
		}
		for _, ex := range exs {
			for i, iv := range ex.Intervals {
				if iv.End < iv.Start {
					return fmt.Errorf("artifact: timeline %q interval %d ends before it starts", ex.Segment, i)
				}
			}
		}
	}
	if hostRaw, ok := top["host"]; ok {
		if !v3plus {
			return fmt.Errorf("artifact: host block requires schema %q or %q, got %q", ArtifactSchema, ArtifactSchemaV3, schema)
		}
		var h HostTelemetry
		if err := json.Unmarshal(hostRaw, &h); err != nil {
			return fmt.Errorf("artifact: bad host: %w", err)
		}
		if h.WallSeconds < 0 || h.EventsPerSec < 0 {
			return fmt.Errorf("artifact: negative host telemetry")
		}
	}
	if cpRaw, ok := top["critical_path"]; ok {
		if !v4plus {
			return fmt.Errorf("artifact: critical_path section requires schema %q or %q, got %q", ArtifactSchema, ArtifactSchemaV4, schema)
		}
		var classes []span.ClassExport
		if err := json.Unmarshal(cpRaw, &classes); err != nil {
			return fmt.Errorf("artifact: bad critical_path: %w", err)
		}
		prev := ""
		for i, ce := range classes {
			if ce.Class == "" {
				return fmt.Errorf("artifact: critical_path entry %d has empty class", i)
			}
			if i > 0 && ce.Class <= prev {
				return fmt.Errorf("artifact: critical_path classes not sorted (%q after %q)", ce.Class, prev)
			}
			prev = ce.Class
			if ce.Count == 0 {
				return fmt.Errorf("artifact: critical_path class %q has zero count", ce.Class)
			}
			if ce.SelfCycles > ce.TotalCycles {
				return fmt.Errorf("artifact: critical_path class %q self exceeds total", ce.Class)
			}
			for _, q := range []float64{ce.AvgCycles, ce.P50Cycles, ce.P99Cycles} {
				if math.IsNaN(q) || math.IsInf(q, 0) {
					return fmt.Errorf("artifact: critical_path class %q has non-finite quantile", ce.Class)
				}
			}
		}
	}
	if exRaw, ok := top["exemplars"]; ok {
		if !v4plus {
			return fmt.Errorf("artifact: exemplars section requires schema %q or %q, got %q", ArtifactSchema, ArtifactSchemaV4, schema)
		}
		var exs map[string][]span.Span
		if err := json.Unmarshal(exRaw, &exs); err != nil {
			return fmt.Errorf("artifact: bad exemplars: %w", err)
		}
		for class, trees := range exs {
			if class == "" {
				return fmt.Errorf("artifact: exemplars has empty class key")
			}
			for i := range trees {
				if err := validateSpanTree(&trees[i]); err != nil {
					return fmt.Errorf("artifact: exemplar %q[%d]: %w", class, i, err)
				}
			}
		}
	}
	if satRaw, ok := top["saturation"]; ok {
		if schema != ArtifactSchema {
			return fmt.Errorf("artifact: saturation section requires schema %q, got %q", ArtifactSchema, schema)
		}
		var reports []bottleneck.Report
		if err := json.Unmarshal(satRaw, &reports); err != nil {
			return fmt.Errorf("artifact: bad saturation: %w", err)
		}
		for i, rep := range reports {
			if rep.Segment == "" {
				return fmt.Errorf("artifact: saturation report %d has empty segment", i)
			}
			if rep.Verdict == "" {
				return fmt.Errorf("artifact: saturation %q has empty verdict", rep.Segment)
			}
			for _, res := range rep.Resources {
				for _, v := range []float64{res.Utilization, res.MeanQueue, res.Score} {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						return fmt.Errorf("artifact: saturation %q resource %q has non-finite value", rep.Segment, res.Name)
					}
				}
			}
		}
	}
	return nil
}

// validateSpanTree checks the structural invariants every exported span
// tree must satisfy: self-time never exceeds duration (charges advance
// the clock by what they book), and children nest inside the parent's
// window (spans close LIFO on one thread).
func validateSpanTree(s *span.Span) error {
	if s.Class == "" {
		return fmt.Errorf("span with empty class")
	}
	if s.TreeSelf > s.Dur {
		return fmt.Errorf("span %q tree_self %d exceeds dur %d", s.Class, s.TreeSelf, s.Dur)
	}
	if s.Self > s.TreeSelf {
		return fmt.Errorf("span %q self %d exceeds tree_self %d", s.Class, s.Self, s.TreeSelf)
	}
	for i := range s.Children {
		c := &s.Children[i]
		if c.Start < s.Start || c.Start+c.Dur > s.Start+s.Dur {
			return fmt.Errorf("child %q escapes parent %q window", c.Class, s.Class)
		}
		if err := validateSpanTree(c); err != nil {
			return err
		}
	}
	return nil
}

func unmarshalField(top map[string]json.RawMessage, name string, into any) error {
	raw, ok := top[name]
	if !ok {
		return fmt.Errorf("artifact: missing required field %q", name)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("artifact: field %q: %w", name, err)
	}
	return nil
}
