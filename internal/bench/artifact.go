package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"daxvm/internal/obs"
)

// ArtifactSchema identifies the per-experiment JSON artifact format.
const ArtifactSchema = "daxvm-bench/v1"

// Artifact is the machine-readable outcome of one experiment run, written
// as BENCH_<id>.json. Metrics mirror Result.Metrics; Snapshot, when
// present, is the observability registry state after the run.
type Artifact struct {
	Schema   string             `json:"schema"`
	ID       string             `json:"id"`
	Title    string             `json:"title"`
	Quick    bool               `json:"quick"`
	Metrics  map[string]float64 `json:"metrics"`
	Notes    []string           `json:"notes,omitempty"`
	Snapshot *obs.Snapshot      `json:"snapshot,omitempty"`
}

// NewArtifact packages a result (and optionally the post-run registry
// snapshot) for serialization.
func NewArtifact(r *Result, quick bool, snap *obs.Snapshot) *Artifact {
	m := r.Metrics
	if m == nil {
		m = map[string]float64{}
	}
	return &Artifact{
		Schema:   ArtifactSchema,
		ID:       r.ID,
		Title:    r.Title,
		Quick:    quick,
		Metrics:  m,
		Notes:    r.Notes,
		Snapshot: snap,
	}
}

// WriteArtifact serializes the artifact as indented JSON.
func (a *Artifact) WriteArtifact(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ValidateArtifact checks raw bytes against the daxvm-bench/v1 schema:
// required fields present with the right JSON types, schema id matching,
// metric values finite numbers. Hand-rolled — the toolchain has no JSON
// Schema validator and the format is small enough not to want one.
func ValidateArtifact(raw []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return fmt.Errorf("artifact: not a JSON object: %w", err)
	}
	var schema string
	if err := unmarshalField(top, "schema", &schema); err != nil {
		return err
	}
	if schema != ArtifactSchema {
		return fmt.Errorf("artifact: schema %q, want %q", schema, ArtifactSchema)
	}
	var id, title string
	if err := unmarshalField(top, "id", &id); err != nil {
		return err
	}
	if id == "" {
		return fmt.Errorf("artifact: empty id")
	}
	if err := unmarshalField(top, "title", &title); err != nil {
		return err
	}
	var quick bool
	if err := unmarshalField(top, "quick", &quick); err != nil {
		return err
	}
	var metrics map[string]float64
	if err := unmarshalField(top, "metrics", &metrics); err != nil {
		return err
	}
	if snap, ok := top["snapshot"]; ok {
		var s obs.Snapshot
		if err := json.Unmarshal(snap, &s); err != nil {
			return fmt.Errorf("artifact: bad snapshot: %w", err)
		}
	}
	return nil
}

func unmarshalField(top map[string]json.RawMessage, name string, into any) error {
	raw, ok := top[name]
	if !ok {
		return fmt.Errorf("artifact: missing required field %q", name)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("artifact: field %q: %w", name, err)
	}
	return nil
}
