package bench

import (
	"fmt"

	"daxvm/internal/core"
	"daxvm/internal/kernel"
	"daxvm/internal/sim"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/pmemrocks"
	"daxvm/internal/workload/webserver"
	"daxvm/internal/workload/wl"
	"daxvm/internal/workload/ycsb"
)

func init() {
	register("ablate-batch", "Ablation: async-unmap batch threshold 33 vs 512 (§V-C)", runAblateBatch)
	register("ablate-threshold", "Ablation: volatile/persistent file-table threshold (§IV-A1)", runAblateThreshold)
	register("ablate-migration", "Ablation: table migration monitor on/off (§V-B)", runAblateMigration)
	register("ablate-throttle", "Ablation: pre-zero bandwidth throttle (§V-C)", runAblateThrottle)
}

// runAblateBatch sweeps the zombie-batch size on the web-server workload
// (paper: 33 -> 512 pages gains ~20% but widens the vulnerability window).
func runAblateBatch(o Options) *Result {
	batches := []uint64{33, 128, 512}
	th := 16
	reqs := 300
	if o.Quick {
		th = 8
		reqs = 120
	}
	res := &Result{ID: "ablate-batch", Title: "Async-unmap batch threshold vs web-server throughput"}
	tab := Table{Cols: []string{"batch-pages", "req/s", "zombie-batches"}}
	for _, b := range batches {
		iface := wl.DaxVMAsync
		k := boot(o, iface, th, true, kernel.Ext4, func(c *kernel.Config) {
			c.DaxVMConfig = core.Config{AsyncBatchPages: b}
		})
		r := webserver.Run(k, webserver.Config{
			Threads: th, PageBytes: 32 << 10, Pages: 128,
			RequestsPerThread: reqs, Iface: iface, Seed: 7,
		})
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", b), fmtF(r.Throughput),
			fmt.Sprintf("%d", k.Dax.Stats.ZombieBatches),
		})
		res.Metric(fmt.Sprintf("batch%d", b), r.Throughput)
		o.logf("ablate-batch %d: %.0f req/s", b, r.Throughput)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

// runAblateThreshold sweeps the volatile/persistent split on a small-file
// corpus: PMem storage tax vs DRAM tax vs cold-open behaviour.
func runAblateThreshold(o Options) *Result {
	thresholds := []uint64{0, 32 << 10, 1 << 40}
	names := []string{"all-persistent", "32K (default)", "all-volatile"}
	files := 2000
	if o.Quick {
		files = 600
	}
	res := &Result{ID: "ablate-threshold", Title: "Volatile/persistent threshold: storage vs DRAM tax"}
	tab := Table{Cols: []string{"threshold", "PMem-tables", "DRAM-tables"}}
	for i, thr := range thresholds {
		iface := wl.DaxVMFull
		k := boot(o, iface, 1, false, kernel.Ext4, func(c *kernel.Config) {
			c.DaxVMConfig = core.Config{VolatileThreshold: maxU64(thr, 1)}
		})
		proc := k.NewProc()
		k.Setup(func(t *sim.Thread) {
			cfg := corpus.DefaultTree()
			cfg.Files = files
			cfg.LargeFiles = 1
			corpus.BuildTree(t, proc, cfg)
		})
		tab.Rows = append(tab.Rows, []string{
			names[i],
			fmtBytes(k.Dax.Stats.PMemTableBytes),
			fmtBytes(k.Dax.Stats.DRAMTableBytes),
		})
		res.Metric(fmt.Sprintf("pmem/%s", names[i]), float64(k.Dax.Stats.PMemTableBytes))
		res.Metric(fmt.Sprintf("dram/%s", names[i]), float64(k.Dax.Stats.DRAMTableBytes))
		o.logf("ablate-threshold %s: pmem=%s dram=%s", names[i],
			fmtBytes(k.Dax.Stats.PMemTableBytes), fmtBytes(k.Dax.Stats.DRAMTableBytes))
	}
	res.Tables = append(res.Tables, tab)
	return res
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// runAblateMigration reruns the fig5 random-read pattern with the MMU
// monitor on and off (paper: migration recovers ~10%).
func runAblateMigration(o Options) *Result {
	fileSize := uint64(192 << 20)
	ops := 30_000
	if o.Quick {
		fileSize = 48 << 20
		ops = 10_000
	}
	res := &Result{ID: "ablate-migration", Title: "Fig. 5 rand-read with file-table migration on/off"}
	tab := Table{Cols: []string{"monitor", "ops/s", "migrations"}}
	for _, mon := range []bool{false, true} {
		iface := wl.DaxVMNoSync
		k := boot(o, iface, 1, false, kernel.Ext4, func(c *kernel.Config) {
			c.Monitor = mon
		})
		proc := k.NewProc()
		var fd int
		k.Setup(func(t *sim.Thread) {
			fd, _ = proc.Create(t, "big")
			pad, _ := proc.Create(t, "pad")
			// Fragmented growth defeats huge promotion so walks hit the
			// PMem-resident tables.
			for off := uint64(0); off < fileSize; off += 512 << 10 {
				proc.Fallocate(t, fd, 0, off+512<<10)
				proc.Fallocate(t, pad, 0, off/1024+4096)
			}
		})
		cycles := runRepetitive(k, proc, fd, iface, pattern{"rand-read-4K", true, false, 4 << 10}, fileSize&^(2<<20-1), ops)
		tp := opsps(uint64(ops), cycles)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%v", mon), fmtF(tp), fmt.Sprintf("%d", k.Dax.Stats.Migrations),
		})
		res.Metric(fmt.Sprintf("monitor-%v", mon), tp)
		o.logf("ablate-migration monitor=%v: %.0f ops/s (%d migrations)", mon, tp, k.Dax.Stats.Migrations)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

// runAblateThrottle compares pre-zero throttle settings on the YCSB load
// phase (paper: a 64 MB/s throttle costs 5-10% vs pre-zeroed-in-advance).
func runAblateThrottle(o Options) *Result {
	rates := []uint64{64, 512, 4096}
	cfg := pmemrocks.DefaultConfig()
	cfg.Mix = ycsb.WorkloadLoad
	if o.Quick {
		cfg.Ops = 6_000
		cfg.Threads = 4
	}
	res := &Result{ID: "ablate-throttle", Title: "Pre-zero throttle vs YCSB load throughput"}
	tab := Table{Cols: []string{"throttle-MB/s", "ops/s", "prezeroed-MB"}}
	for _, rate := range rates {
		c := cfg
		c.Iface = wl.DaxVMNoSync
		k := boot(o, c.Iface, c.Threads, true, kernel.Ext4, func(kc *kernel.Config) {
			kc.Cores = c.Threads + 1
			kc.Prezero = true
			kc.DaxVMConfig = core.Config{PrezeroBandwidthMBps: rate}
		})
		r := pmemrocks.Run(k, c)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", rate), fmtF(r.Throughput),
			fmt.Sprintf("%d", k.Dax.Stats.PrezeroedMB),
		})
		res.Metric(fmt.Sprintf("rate%d", rate), r.Throughput)
		o.logf("ablate-throttle %d MB/s: %.0f ops/s", rate, r.Throughput)
	}
	res.Tables = append(res.Tables, tab)
	return res
}
