package bench

import (
	"fmt"

	"daxvm/internal/kernel"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/wl"
)

func init() {
	registerTopo("numa", "NUMA placement: local vs remote vs interleaved PMem (topology model)", runNuma)
}

// numaPlacements is the sweep daxbench validates -placement against.
var numaPlacements = []string{"local", "remote", "interleave"}

// NumaSupportedPlacement reports whether the numa experiment understands
// a -placement override: the sweep labels plus any raw policy string the
// topology parser accepts ("bind:<n>", "local", "interleave").
func NumaSupportedPlacement(s string) bool {
	for _, p := range numaPlacements {
		if s == p {
			return true
		}
	}
	_, err := topo.ParsePolicy(s)
	return err == nil
}

// numaPolicy maps a sweep label to the placement policy string. The
// workload is pinned to core 0 (node 0), so "local" binds data to node 0
// and "remote" to node 1; "interleave" round-robins allocations. Raw
// policy strings ("bind:<n>") pass through unchanged rather than being
// silently rewritten to interleave.
func numaPolicy(label string, nodes int) string {
	switch label {
	case "local":
		return "bind:0"
	case "remote":
		if nodes < 2 {
			return "bind:0"
		}
		return "bind:1"
	case "interleave":
		return "interleave"
	default:
		return label
	}
}

// runNuma sweeps data placement on a multi-socket machine and reports
// sequential read(2) and mmap-paging bandwidth seen from node 0. The
// paper's machine is one socket; this experiment characterises the
// topology model the simulator adds on top: remote PMem pays the
// FAST '20 far-Optane surcharges, so local > interleave > remote.
func runNuma(o Options) *Result {
	nodes := o.Nodes
	if nodes == 0 {
		nodes = 2
	}
	placements := numaPlacements
	if o.Placement != "" {
		placements = []string{o.Placement}
	}
	if nodes == 1 {
		// Degenerate machine: every placement is local.
		placements = []string{"local"}
	}

	fileSize := uint64(2 << 20)
	files := 48
	if o.Quick {
		fileSize = 512 << 10
		files = 16
	}

	res := &Result{ID: "numa", Title: fmt.Sprintf("Data placement on a %d-node machine, workload on node 0", nodes)}
	tab := Table{Title: "bandwidth from node 0 (MB/s)", Cols: []string{"placement", "read", "paging"}}

	for _, label := range placements {
		policy := numaPolicy(label, nodes)
		row := []string{label}
		for _, path := range []struct {
			name  string
			iface wl.Iface
		}{
			{"read", wl.Read},
			{"paging", wl.Mmap},
		} {
			cfg := kernel.Config{
				Cores:          2 * nodes,
				Nodes:          nodes,
				DeviceBytes:    1 << 30,
				DRAMBytes:      1 << 30,
				FS:             kernel.Ext4,
				Placement:      policy,
				MountPlacement: policy,
				Obs:            o.Obs,
				Timeline:       o.Timeline,
				Spans:          o.Spans,
				Sched:          o.Sched,
				Shards:         o.Shards,
			}
			if o.Quick {
				cfg.DeviceBytes = 512 << 20
			}
			k := kernel.Boot(cfg)
			proc := k.NewProc()
			var paths []string
			k.Setup(func(t *sim.Thread) {
				paths = corpus.Fixed(t, proc, "numa", files, fileSize)
			})
			bytes, cycles := consumeOnce(k, path.iface, paths, 1, kernel.KindSum)
			mb := mbps(bytes, cycles)
			res.Metric(path.name+"/"+label, mb)
			row = append(row, fmtF(mb))
			o.logf("numa: %s/%s %.1f MB/s (%d bytes, %d cycles)", path.name, label, mb, bytes, cycles)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	res.Note("workload pinned to node 0; remote PMem pays calibrated far-socket surcharges (see internal/cost)")
	return res
}
