package bench

import "testing"

// TestNumaSupportedPlacement covers the -placement validation surface:
// sweep labels and raw topology policies ("bind:<n>") are accepted, junk
// is not, and raw policies pass through numaPolicy unrewritten.
func TestNumaSupportedPlacement(t *testing.T) {
	for _, ok := range []string{"local", "remote", "interleave", "bind:0", "bind:3"} {
		if !NumaSupportedPlacement(ok) {
			t.Errorf("placement %q rejected", ok)
		}
	}
	for _, bad := range []string{"bind:", "bind:x", "nearest", "bind:-1"} {
		if NumaSupportedPlacement(bad) {
			t.Errorf("placement %q accepted", bad)
		}
	}
	if got := numaPolicy("bind:1", 4); got != "bind:1" {
		t.Errorf("numaPolicy rewrote bind:1 to %q", got)
	}
	if got := numaPolicy("remote", 2); got != "bind:1" {
		t.Errorf("numaPolicy(remote, 2) = %q, want bind:1", got)
	}
}

// TestNumaPlacementShape asserts the topology model's headline claim:
// from node 0, local PMem bandwidth strictly beats interleaved, which
// strictly beats remote, on both the read(2) and paging paths.
func TestNumaPlacementShape(t *testing.T) {
	e, ok := ByID("numa")
	if !ok {
		t.Fatal("numa not registered")
	}
	res := e.Run(Options{Quick: true})
	for _, path := range []string{"read", "paging"} {
		local := res.Metrics[path+"/local"]
		ileave := res.Metrics[path+"/interleave"]
		remote := res.Metrics[path+"/remote"]
		if local == 0 || ileave == 0 || remote == 0 {
			t.Fatalf("%s: missing metrics: local=%v interleave=%v remote=%v", path, local, ileave, remote)
		}
		if !(local > ileave && ileave > remote) {
			t.Errorf("%s: want local > interleave > remote, got %.1f / %.1f / %.1f", path, local, ileave, remote)
		}
	}
}
