package bench

import "testing"

// TestNumaPlacementShape asserts the topology model's headline claim:
// from node 0, local PMem bandwidth strictly beats interleaved, which
// strictly beats remote, on both the read(2) and paging paths.
func TestNumaPlacementShape(t *testing.T) {
	e, ok := ByID("numa")
	if !ok {
		t.Fatal("numa not registered")
	}
	res := e.Run(Options{Quick: true})
	for _, path := range []string{"read", "paging"} {
		local := res.Metrics[path+"/local"]
		ileave := res.Metrics[path+"/interleave"]
		remote := res.Metrics[path+"/remote"]
		if local == 0 || ileave == 0 || remote == 0 {
			t.Fatalf("%s: missing metrics: local=%v interleave=%v remote=%v", path, local, ileave, remote)
		}
		if !(local > ileave && ileave > remote) {
			t.Errorf("%s: want local > interleave > remote, got %.1f / %.1f / %.1f", path, local, ileave, remote)
		}
	}
}
