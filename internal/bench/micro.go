package bench

import (
	"fmt"
	"math/rand"

	"daxvm/internal/core"
	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/kernel"
	"daxvm/internal/latr"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/wl"
)

func init() {
	register("fig4", "Read-once (ephemeral) file access vs file size (Fig. 1a/4)", runFig4)
	register("fig1b", "Read-once throughput scalability, 32 KiB files (Fig. 1b)", runFig1b)
	register("fig5", "Repetitive access over a large file (Fig. 1c/5)", runFig5)
	registerCost("table2", "Average page-walk cycles: DRAM vs PMem file tables (Table II)", runTable2)
	register("fig6", "Kernel- vs user-space syncing (Fig. 6)", runFig6)
	register("fig7", "Append operations: zeroing and interfaces (Fig. 7)", runFig7)
	register("ftcost", "File-table maintenance overhead on appends (§V-B)", runFTCost)
	registerCost("storage", "File-table storage overheads on a source tree (§V-B)", runStorage)
}

// boot builds a machine tailored to one interface.
func boot(o Options, iface wl.Iface, cores int, aged bool, fs kernel.FSKind, mod func(*kernel.Config)) *kernel.Kernel {
	cfg := kernel.Config{
		Cores:       cores,
		DeviceBytes: 2 << 30,
		FS:          fs,
		Age:         aged,
		DaxVM:       iface.DaxVM,
		Obs:         o.Obs,
		Timeline:    o.Timeline,
		Spans:       o.Spans,
		Sched:       o.Sched,
		Shards:      o.Shards,
	}
	if o.Quick {
		cfg.DeviceBytes = 1 << 30
	}
	if mod != nil {
		mod(&cfg)
	}
	return kernel.Boot(cfg)
}

// consumeOnce measures open->touch->close over the paths, threads-wide.
func consumeOnce(k *kernel.Kernel, iface wl.Iface, paths []string, threads int, kind kernel.AccessKind) (bytes, cycles uint64) {
	proc := k.NewProc()
	var l *latr.LATR
	if iface.LATR {
		l = latr.New(k.Cpus)
	}
	done := make([]uint64, threads)
	for w := 0; w < threads; w++ {
		w := w
		proc.Spawn("consume", w, 0, func(t *sim.Thread, c *cpu.Core) {
			env := &wl.Env{Proc: proc, LATR: l}
			for i := w; i < len(paths); i += threads {
				done[w] += env.ConsumeFileOnce(t, c, paths[i], iface, kind)
			}
		})
	}
	cycles = k.Run()
	for _, d := range done {
		bytes += d
	}
	return bytes, cycles
}

// mbps converts (bytes, cycles) to MB per virtual second.
func mbps(bytes, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) * float64(cost.CyclesPerSecond) / float64(cycles)
}

// opsps converts (ops, cycles) to ops per virtual second.
func opsps(ops, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(ops) * float64(cost.CyclesPerSecond) / float64(cycles)
}

// readOnceIfaces is the interface set of Figs. 1/4.
var readOnceIfaces = []wl.Iface{wl.Read, wl.Mmap, wl.MmapPopulate, wl.DaxVMAsync}

// runFig4 sweeps file size at one thread on an aged image.
func runFig4(o Options) *Result {
	sizes := []uint64{4 << 10, 16 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20, 32 << 20}
	budget := uint64(192 << 20)
	if o.Quick {
		sizes = []uint64{4 << 10, 32 << 10, 512 << 10, 8 << 20}
		budget = 48 << 20
	}
	res := &Result{ID: "fig4", Title: "Read-once throughput relative to read(2), 1 thread, aged ext4-DAX"}
	tab := Table{Cols: []string{"filesize"}}
	for _, f := range readOnceIfaces {
		tab.Cols = append(tab.Cols, f.Name, f.Name+"-MB/s")
	}
	for _, size := range sizes {
		n := int(budget / size)
		if n > 400 {
			n = 400
		}
		if n < 4 {
			n = 4
		}
		row := []string{fmtBytes(size)}
		var baseline float64
		for _, iface := range readOnceIfaces {
			k := boot(o, iface, 1, true, kernel.Ext4, nil)
			proc := k.NewProc()
			var paths []string
			k.Setup(func(t *sim.Thread) {
				paths = corpus.Fixed(t, proc, "pool", n, size)
			})
			bytes, cycles := consumeOnce(k, iface, paths, 1, kernel.KindSum)
			tp := mbps(bytes, cycles)
			if iface.Name == "read" {
				baseline = tp
			}
			row = append(row, fmtRel(tp, baseline), fmtF(tp))
			res.Metric(fmt.Sprintf("%s/%s", fmtBytes(size), iface.Name), tp)
			o.logf("fig4 %s %s: %.1f MB/s", fmtBytes(size), iface.Name, tp)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

// runFig1b sweeps thread count at 32 KiB files.
func runFig1b(o Options) *Result {
	threads := []int{1, 2, 4, 8, 16}
	perThreadFiles := 120
	if o.Quick {
		threads = []int{1, 4, 16}
		perThreadFiles = 40
	}
	res := &Result{ID: "fig1b", Title: "Read-once ops/s vs threads, 32 KiB files, aged ext4-DAX"}
	tab := Table{Cols: []string{"threads"}}
	for _, f := range readOnceIfaces {
		tab.Cols = append(tab.Cols, f.Name)
	}
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th)}
		for _, iface := range readOnceIfaces {
			k := boot(o, iface, th, true, kernel.Ext4, nil)
			proc := k.NewProc()
			n := th * perThreadFiles
			var paths []string
			k.Setup(func(t *sim.Thread) {
				paths = corpus.Fixed(t, proc, "pool", n, 32<<10)
			})
			_, cycles := consumeOnce(k, iface, paths, th, kernel.KindSum)
			tp := opsps(uint64(n), cycles)
			row = append(row, fmtF(tp))
			res.Metric(fmt.Sprintf("t%d/%s", th, iface.Name), tp)
			o.logf("fig1b t=%d %s: %.0f ops/s", th, iface.Name, tp)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

// fig5 patterns.
type pattern struct {
	name   string
	random bool
	write  bool
	unit   uint64
}

// runFig5 measures repetitive ops over one large mapped file.
func runFig5(o Options) *Result {
	fileSize := uint64(256 << 20)
	ops := 24_000
	if o.Quick {
		fileSize = 64 << 20
		ops = 6_000
	}
	pats := []pattern{
		{"seq-read-1K", false, false, 1 << 10},
		{"rand-read-1K", true, false, 1 << 10},
		{"seq-write-1K", false, true, 1 << 10},
		{"rand-write-1K", true, true, 1 << 10},
		{"seq-read-4K", false, false, 4 << 10},
		{"rand-read-4K", true, false, 4 << 10},
		{"seq-write-4K", false, true, 4 << 10},
		{"rand-write-4K", true, true, 4 << 10},
	}
	ifaces := []wl.Iface{wl.Read, wl.Mmap, wl.MmapPopulate, wl.DaxVMTables, wl.DaxVMNoSync}
	res := &Result{ID: "fig5", Title: "Repetitive access ops/s relative to read/write(2), aged ext4-DAX"}
	tab := Table{Cols: []string{"pattern"}}
	for _, f := range ifaces {
		name := f.Name
		if name == "read" {
			name = "syscall"
		}
		tab.Cols = append(tab.Cols, name)
	}
	for _, p := range pats {
		row := []string{p.name}
		var baseline float64
		for _, iface := range ifaces {
			// The paper runs the irregular patterns with the MMU monitor
			// active: it migrates hot PMem file tables to DRAM (§V-B).
			k := boot(o, iface, 1, true, kernel.Ext4, func(c *kernel.Config) {
				c.Monitor = iface.DaxVM
			})
			proc := k.NewProc()
			var fd int
			k.Setup(func(t *sim.Thread) {
				var err error
				fd, err = proc.Create(t, "big")
				if err != nil {
					panic(err)
				}
				if err := proc.Fallocate(t, fd, 0, fileSize); err != nil {
					panic(err)
				}
			})
			cycles := runRepetitive(k, proc, fd, iface, p, fileSize, ops)
			tp := opsps(uint64(ops), cycles)
			if iface.Name == "read" {
				baseline = tp
			}
			row = append(row, fmtRel(tp, baseline))
			res.Metric(p.name+"/"+iface.Name, tp)
			o.logf("fig5 %s %s: %.0f ops/s", p.name, iface.Name, tp)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

func runRepetitive(k *kernel.Kernel, proc *kernel.Proc, fd int, iface wl.Iface, p pattern, fileSize uint64, ops int) uint64 {
	proc.Spawn("db", 0, 0, func(t *sim.Thread, c *cpu.Core) {
		var va mem.VirtAddr
		var err error
		perm := mem.PermRead | mem.PermWrite
		if iface.DaxVM {
			va, err = proc.DaxvmMmap(t, c, fd, 0, fileSize, perm, iface.Flags())
		} else if !iface.Syscall {
			va, err = proc.Mmap(t, c, fd, 0, fileSize, perm, iface.MapFlags())
		}
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(3))
		buf := make([]byte, p.unit)
		off := uint64(0)
		for i := 0; i < ops; i++ {
			if p.random {
				off = uint64(rng.Int63n(int64(fileSize-p.unit))) &^ 63
			} else {
				off += p.unit
				if off+p.unit > fileSize {
					off = 0
				}
			}
			switch {
			case iface.Syscall && p.write:
				if err := proc.WriteAt(t, fd, off, buf); err != nil {
					panic(err)
				}
			case iface.Syscall:
				if _, err := proc.ReadAt(t, fd, off, buf); err != nil {
					panic(err)
				}
			case p.write:
				if err := proc.AccessMapped(t, c, va+mem.VirtAddr(off), p.unit, kernel.KindNTWrite); err != nil {
					panic(err)
				}
			default:
				if err := proc.AccessMapped(t, c, va+mem.VirtAddr(off), p.unit, kernel.KindCopyOut); err != nil {
					panic(err)
				}
			}
		}
	})
	return k.Run()
}

// runTable2 measures average walk cycles for seq/rand reads with file
// tables resident in DRAM vs PMem.
func runTable2(o Options) *Result {
	res := &Result{ID: "table2", Title: "Average page-walk cycles, 4 KiB access on a mapped file (Table II)"}
	fileSize := uint64(128 << 20)
	touches := 60_000
	if o.Quick {
		fileSize = 32 << 20
		touches = 20_000
	}
	tab := Table{Cols: []string{"benchmark", "DRAM file tables", "PMem file tables"}}
	vals := map[string]uint64{}
	for _, medium := range []string{"DRAM", "PMem"} {
		threshold := uint64(0) // PMem: everything persistent
		if medium == "DRAM" {
			threshold = 1 << 62 // volatile tables for everything
		}
		for _, random := range []bool{false, true} {
			iface := wl.DaxVMNoSync
			k := boot(o, iface, 1, false, kernel.Ext4, func(c *kernel.Config) {
				c.DaxVMConfig = core.Config{VolatileThreshold: threshold}
			})
			proc := k.NewProc()
			var fd int
			k.Setup(func(t *sim.Thread) {
				var err error
				fd, err = proc.Create(t, "t2")
				if err != nil {
					panic(err)
				}
				// Interleave with a pad file so chunks never promote to
				// huge leaves (the measurement needs PTE-level walks).
				pad, _ := proc.Create(t, "pad")
				for off := uint64(0); off < fileSize; off += 512 << 10 {
					proc.Fallocate(t, fd, 0, off+512<<10)
					proc.Fallocate(t, pad, 0, off/1024+4096)
				}
			})
			core0 := k.Cpus.Cores[0]
			proc.Spawn("walker", 0, 0, func(t *sim.Thread, c *cpu.Core) {
				va, err := proc.DaxvmMmap(t, c, fd, 0, fileSize, mem.PermRead, iface.Flags())
				if err != nil {
					panic(err)
				}
				// Warm attachments, then reset counters.
				proc.AccessMapped(t, c, va, 2<<20, kernel.KindSum)
				c.Stats = cpu.CoreStats{}
				c.TLB.FlushAll()
				c.DropPTELines()
				rng := rand.New(rand.NewSource(9))
				off := uint64(0)
				span := fileSize &^ (mem.HugeSize - 1)
				for i := 0; i < touches; i++ {
					if random {
						off = uint64(rng.Int63n(int64(span-4096))) &^ 4095
					} else {
						off += 4096
						if off+4096 > span {
							off = 0
						}
					}
					if err := proc.AccessMapped(t, c, va+mem.VirtAddr(off), 64, kernel.KindSum); err != nil {
						panic(err)
					}
				}
			})
			k.Run()
			avg := uint64(0)
			if core0.Stats.Walks > 0 {
				avg = core0.Stats.WalkCycles / core0.Stats.Walks
			}
			key := "seq"
			if random {
				key = "rand"
			}
			vals[medium+"/"+key] = avg
			res.Metric(medium+"/"+key, float64(avg))
			o.logf("table2 %s %s: %d cycles/walk", medium, key, avg)
		}
	}
	tab.Rows = [][]string{
		{"seq read", fmt.Sprintf("%d", vals["DRAM/seq"]), fmt.Sprintf("%d", vals["PMem/seq"])},
		{"rand read", fmt.Sprintf("%d", vals["DRAM/rand"]), fmt.Sprintf("%d", vals["PMem/rand"])},
	}
	res.Tables = append(res.Tables, tab)
	res.Note("paper Table II: seq 28/103, rand 111/821 cycles")
	return res
}

// runFig6 compares durability management paths.
func runFig6(o Options) *Result {
	fileSize := uint64(256 << 20)
	totalWrite := uint64(48 << 20)
	if o.Quick {
		fileSize = 64 << 20
		totalWrite = 12 << 20
	}
	windows := []uint64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	res := &Result{ID: "fig6", Title: "Sequential 4 KiB writes + syncing every W bytes (relative to write+fsync)"}
	variants := []string{"write+fsync", "mmap+msync", "daxvm+msync", "mmap-user-sync", "daxvm-nosync"}
	tab := Table{Cols: append([]string{"window"}, variants...)}
	for _, win := range windows {
		row := []string{fmtBytes(win)}
		var baseline float64
		for _, variant := range variants {
			iface := wl.Mmap
			switch variant {
			case "daxvm+msync":
				iface = wl.DaxVMTables
			case "daxvm-nosync":
				iface = wl.DaxVMNoSync
			case "write+fsync":
				iface = wl.Read
			}
			k := boot(o, iface, 1, false, kernel.Ext4, func(c *kernel.Config) {
				c.HugePagesOff = true // paper turns huge pages off here
			})
			proc := k.NewProc()
			var fd int
			k.Setup(func(t *sim.Thread) {
				fd, _ = proc.Create(t, "sync")
				proc.Fallocate(t, fd, 0, fileSize)
			})
			cycles := runSyncVariant(k, proc, fd, variant, iface, fileSize, totalWrite, win)
			tp := mbps(totalWrite, cycles)
			if variant == "write+fsync" {
				baseline = tp
			}
			row = append(row, fmtRel(tp, baseline))
			res.Metric(fmt.Sprintf("%s/%s", fmtBytes(win), variant), tp)
			o.logf("fig6 win=%s %s: %.1f MB/s", fmtBytes(win), variant, tp)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

func runSyncVariant(k *kernel.Kernel, proc *kernel.Proc, fd int, variant string, iface wl.Iface, fileSize, totalWrite, window uint64) uint64 {
	proc.Spawn("sync", 0, 0, func(t *sim.Thread, c *cpu.Core) {
		const unit = 4 << 10
		var va mem.VirtAddr
		var err error
		if variant != "write+fsync" {
			perm := mem.PermRead | mem.PermWrite
			if iface.DaxVM {
				va, err = proc.DaxvmMmap(t, c, fd, 0, fileSize, perm, iface.Flags())
			} else {
				va, err = proc.Mmap(t, c, fd, 0, fileSize, perm, iface.MapFlags())
			}
			if err != nil {
				panic(err)
			}
		}
		buf := make([]byte, unit)
		sinceSync := uint64(0)
		for off := uint64(0); off < totalWrite; off += unit {
			pos := off % (fileSize - unit)
			switch variant {
			case "write+fsync":
				if err := proc.WriteAt(t, fd, pos, buf); err != nil {
					panic(err)
				}
			case "mmap+msync", "daxvm+msync":
				// Kernel-managed durability: cached stores, flushed by
				// msync.
				if err := proc.AccessMapped(t, c, va+mem.VirtAddr(pos), unit, kernel.KindCachedWrite); err != nil {
					panic(err)
				}
			default:
				// User-managed durability: nt-stores.
				if err := proc.AccessMapped(t, c, va+mem.VirtAddr(pos), unit, kernel.KindNTWrite); err != nil {
					panic(err)
				}
			}
			sinceSync += unit
			if sinceSync >= window {
				sinceSync = 0
				switch variant {
				case "write+fsync":
					proc.Fsync(t, fd)
				case "mmap+msync", "daxvm+msync":
					proc.Msync(t, c, va, fileSize)
				default:
					// User syncing: the nt-stores are already durable;
					// just a fence.
					proc.K.Dev.Fence(t)
				}
			}
		}
	})
	return k.Run()
}

// runFig7 measures single-operation appends through each interface.
func runFig7(o Options) *Result {
	sizes := []uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	reps := 30
	if o.Quick {
		sizes = []uint64{4 << 10, 64 << 10, 1 << 20}
		reps = 10
	}
	res := &Result{ID: "fig7", Title: "Append throughput relative to write(2) (Fig. 7)"}
	variants := []string{"write", "mmap", "daxvm", "daxvm+prezero", "daxvm+prezero+nosync"}
	for _, fsKind := range []kernel.FSKind{kernel.Ext4, kernel.Nova} {
		tab := Table{Title: string(fsKind), Cols: append([]string{"append"}, variants...)}
		for _, size := range sizes {
			row := []string{fmtBytes(size)}
			var baseline float64
			for _, variant := range variants {
				tp := runAppendVariant(o, fsKind, variant, size, reps)
				if variant == "write" {
					baseline = tp
				}
				row = append(row, fmtRel(tp, baseline))
				res.Metric(fmt.Sprintf("%s/%s/%s", fsKind, fmtBytes(size), variant), tp)
				o.logf("fig7 %s %s %s: %.1f MB/s", fsKind, fmtBytes(size), variant, tp)
			}
			tab.Rows = append(tab.Rows, row)
		}
		res.Tables = append(res.Tables, tab)
	}
	return res
}

func runAppendVariant(o Options, fsKind kernel.FSKind, variant string, size uint64, reps int) float64 {
	iface := wl.Mmap
	prezero := false
	switch variant {
	case "write":
		iface = wl.Read
	case "daxvm":
		iface = wl.DaxVMTables
	case "daxvm+prezero":
		iface = wl.DaxVMTables
		prezero = true
	case "daxvm+prezero+nosync":
		iface = wl.DaxVMNoSync
		prezero = true
	}
	k := boot(o, iface, 2, false, fsKind, func(c *kernel.Config) {
		c.Prezero = prezero && iface.DaxVM
		if c.Prezero {
			c.DaxVMConfig.PrezeroBandwidthMBps = 4096
		}
	})
	proc := k.NewProc()
	if prezero {
		// Warm the pre-zero pool: churn files of the same total size and
		// let the daemon zero them ("pre-zero in advance", §V-B).
		k.Setup(func(t *sim.Thread) {
			for i := 0; i < reps+2; i++ {
				fd, _ := proc.Create(t, fmt.Sprintf("warm/%d", i))
				proc.Fallocate(t, fd, 0, size)
				proc.Close(t, fd)
				proc.Unlink(t, fmt.Sprintf("warm/%d", i))
			}
			if k.Dax != nil {
				k.Dax.DrainPrezero(t)
			}
		})
	}
	payload := make([]byte, size)
	var cycles uint64
	proc.Spawn("append", 0, 0, func(t *sim.Thread, c *cpu.Core) {
		start := t.Now()
		for i := 0; i < reps; i++ {
			path := fmt.Sprintf("a/%d", i)
			fd, err := proc.Create(t, path)
			if err != nil {
				panic(err)
			}
			if iface.Syscall {
				if err := proc.Append(t, fd, payload); err != nil {
					panic(err)
				}
			} else {
				// MM append: allocate blocks, map them, store payload.
				if err := proc.Fallocate(t, fd, 0, size); err != nil {
					panic(err)
				}
				var va mem.VirtAddr
				if iface.DaxVM {
					va, err = proc.DaxvmMmap(t, c, fd, 0, size, mem.PermRead|mem.PermWrite, iface.Flags())
				} else {
					va, err = proc.Mmap(t, c, fd, 0, size, mem.PermRead|mem.PermWrite, iface.MapFlags())
				}
				if err != nil {
					panic(err)
				}
				if err := proc.AccessMapped(t, c, va, size, kernel.KindNTWrite); err != nil {
					panic(err)
				}
				if iface.DaxVM {
					err = proc.DaxvmMunmap(t, c, va)
				} else {
					err = proc.Munmap(t, c, va, size)
				}
				if err != nil {
					panic(err)
				}
			}
			proc.Close(t, fd)
			proc.Unlink(t, path)
		}
		cycles = t.Now() - start
	})
	k.Run()
	return mbps(size*uint64(reps), cycles)
}

// runFTCost measures the append-latency tax of maintaining file tables.
func runFTCost(o Options) *Result {
	sizes := []uint64{4 << 10, 32 << 10, 256 << 10, 1 << 20}
	reps := 40
	if o.Quick {
		reps = 12
	}
	res := &Result{ID: "ftcost", Title: "Append latency overhead of DaxVM file-table maintenance"}
	tab := Table{Cols: []string{"append", "plain-cycles", "daxvm-cycles", "overhead"}}
	for _, size := range sizes {
		var lat [2]float64
		for i, daxvm := range []bool{false, true} {
			iface := wl.Read
			if daxvm {
				iface = wl.DaxVMTables
			}
			k := boot(o, iface, 1, false, kernel.Ext4, nil)
			proc := k.NewProc()
			payload := make([]byte, size)
			var cycles uint64
			proc.Spawn("ft", 0, 0, func(t *sim.Thread, c *cpu.Core) {
				start := t.Now()
				for r := 0; r < reps; r++ {
					path := fmt.Sprintf("f/%d", r)
					fd, _ := proc.Create(t, path)
					if err := proc.Append(t, fd, payload); err != nil {
						panic(err)
					}
					proc.Close(t, fd)
					proc.Unlink(t, path)
				}
				cycles = t.Now() - start
			})
			k.Run()
			lat[i] = float64(cycles) / float64(reps)
		}
		ovh := (lat[1] - lat[0]) / lat[0] * 100
		tab.Rows = append(tab.Rows, []string{
			fmtBytes(size), fmtF(lat[0]), fmtF(lat[1]), fmt.Sprintf("%+.1f%%", ovh),
		})
		res.Metric("overhead-pct/"+fmtBytes(size), ovh)
		o.logf("ftcost %s: %+.1f%%", fmtBytes(size), ovh)
	}
	res.Tables = append(res.Tables, tab)
	res.Note("paper: ~10%% worst case at 32 KiB, amortized to ~0 by 256 KiB")
	return res
}

// runStorage reports file-table storage tax on a source-tree corpus.
func runStorage(o Options) *Result {
	cfg := corpus.DefaultTree()
	if o.Quick {
		cfg.Files = 2000
	}
	// Quick is deliberately dropped: storage always boots the full-size
	// device (the quick knob shrinks the corpus above instead).
	k := boot(Options{Obs: o.Obs, Timeline: o.Timeline, Spans: o.Spans}, wl.DaxVMFull, 1, false, kernel.Ext4, nil)
	proc := k.NewProc()
	var tree *corpus.Tree
	k.Setup(func(t *sim.Thread) {
		tree = corpus.BuildTree(t, proc, cfg)
	})
	res := &Result{ID: "storage", Title: "DaxVM file-table storage overheads (source-tree corpus)"}
	pmemMB := float64(k.Dax.Stats.PMemTableBytes) / (1 << 20)
	dramMB := float64(k.Dax.Stats.DRAMTableBytes) / (1 << 20)
	treeMB := float64(tree.TotalBytes) / (1 << 20)
	res.Tables = append(res.Tables, Table{
		Cols: []string{"quantity", "value"},
		Rows: [][]string{
			{"corpus files", fmt.Sprintf("%d", len(tree.Paths))},
			{"corpus bytes", fmt.Sprintf("%.1f MB", treeMB)},
			{"PMem file tables", fmt.Sprintf("%.2f MB (%.2f%%)", pmemMB, pmemMB/treeMB*100)},
			{"DRAM file tables (all inodes cached)", fmt.Sprintf("%.2f MB", dramMB)},
		},
	})
	res.Metric("pmem-pct", pmemMB/treeMB*100)
	res.Metric("dram-mb", dramMB)
	res.Note("paper: 891 MB tree -> 25 MB PMem (2.8%%), up to 216 MB DRAM")
	return res
}
