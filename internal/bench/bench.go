// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation on the simulated machine and prints the
// same rows/series the paper reports. Absolute numbers are simulator
// cycles, not testbed wall-clock; the shape (who wins, by what factor,
// where the knees are) is the reproduction target — see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"

	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// Options control an experiment run.
type Options struct {
	// Quick shrinks working sets for CI/testing.
	Quick bool
	// Log receives progress lines (may be nil).
	Log io.Writer
	// Obs, when set, is wired into every kernel the experiment boots:
	// counters and histograms reflect the most recent boot, the trace
	// ring accumulates across boots.
	Obs *obs.Obs
	// Timeline, when set, samples interval deltas from every kernel the
	// experiment boots. Each experiment records into its own segment
	// (Experiment.Run starts one named after the id), so a shared
	// timeline keeps experiments separable and run-order independent.
	Timeline *timeline.Timeline
	// Spans, when set, collects per-operation span trees (critical-path
	// breakdown, tail exemplars) from every kernel the experiment
	// boots. Segmented per experiment like the timeline.
	Spans *span.Collector
	// Nodes overrides the NUMA node count for topology-aware experiments
	// (0 = experiment default). Only experiments with Topo=true accept it.
	Nodes int
	// Placement overrides the default placement policy ("local",
	// "interleave", "bind:<n>"). Only Topo=true experiments accept it.
	Placement string
	// Sched selects the virtual-time scheduler for every kernel the
	// experiment boots: kernel.SchedSeq (default) or kernel.SchedShard.
	// Artifact bytes are identical either way — the choice only affects
	// host-side speed (make sched-gate enforces this).
	Sched string
	// Shards is the shard count when Sched is kernel.SchedShard
	// (0 = kernel default).
	Shards int
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Table is one printable result table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// Result is an experiment outcome.
type Result struct {
	ID     string
	Title  string
	Tables []Table
	Notes  []string
	// Metrics holds named scalar outcomes for programmatic assertions
	// (bench_test.go checks the paper-shape claims against these).
	Metrics map[string]float64
}

// Metric records a scalar.
func (r *Result) Metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Note appends a free-form annotation.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is a registered reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) *Result
	// Topo marks experiments that accept topology overrides
	// (Options.Nodes / Options.Placement).
	Topo bool
	// LowerBetter, when set, reports whether a regression gate should
	// treat an increase in the named metric as a regression (costs,
	// latencies, byte counts) rather than an improvement (throughput).
	// Direction metadata lives here, on the registration, so the
	// compare logic never needs a hard-coded experiment-id table.
	LowerBetter func(metric string) bool
}

var registry []Experiment

// withSegment opens a fresh timeline and span segment named after the
// experiment before it runs, so every caller (CLI, tests) gets
// per-experiment segments without remembering to start one. Nil-safe
// via Timeline/Spans.
func withSegment(id string, run func(o Options) *Result) func(o Options) *Result {
	return func(o Options) *Result {
		o.Timeline.StartSegment(id)
		o.Spans.StartSegment(id)
		return run(o)
	}
}

func register(id, title string, run func(o Options) *Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: withSegment(id, run)})
}

// registerCost registers an experiment whose metrics are all costs:
// lower is better for every one of them (overheads, storage bytes,
// maintenance cycles).
func registerCost(id, title string, run func(o Options) *Result) {
	registry = append(registry, Experiment{
		ID: id, Title: title, Run: withSegment(id, run),
		LowerBetter: func(string) bool { return true },
	})
}

// registerTopo registers an experiment that understands topology
// overrides (daxbench validates -nodes/-placement against this flag).
func registerTopo(id, title string, run func(o Options) *Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: withSegment(id, run), Topo: true})
}

// All returns the registered experiments in registration order.
func All() []Experiment { return registry }

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists registered ids.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Render prints a result as aligned text.
func Render(w io.Writer, r *Result) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		}
		widths := make([]int, len(t.Cols))
		for i, c := range t.Cols {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			var b strings.Builder
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
			fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		}
		line(t.Cols)
		for _, row := range t.Rows {
			line(row)
		}
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	if len(r.Metrics) > 0 {
		fmt.Fprintln(w)
		for _, k := range obs.SortedKeys(r.Metrics) {
			fmt.Fprintf(w, "metric: %-40s %10.3f\n", k, r.Metrics[k])
		}
	}
	fmt.Fprintln(w)
}

// fmtRel formats a value relative to a baseline ("1.00x").
func fmtRel(v, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", v/base)
}

// fmtF formats a float compactly.
func fmtF(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// fmtBytes human-prints a byte count.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
