package bench

import (
	"fmt"

	"daxvm/internal/kernel"
	"daxvm/internal/obs/bottleneck"
	"daxvm/internal/obs/span"
	"daxvm/internal/sim"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/wl"
)

func init() {
	register("saturation", "Resource saturation sweep: PMem bandwidth to the mmap_sem knee (§V USE report)", runSaturation)
}

// runSaturation sweeps thread count over a read-once mmap workload and
// lets the bottleneck analyzer name the saturated resource at each
// point. The workload is weak-scaled (fixed files per thread), so the
// constraint that binds changes with concurrency: one thread streams
// file data and saturates the PMem read channel, while many threads
// serialize on the mmap_sem writer side (every munmap holds it across
// a TLB shootdown broadcast whose cost grows with core count). Each
// sweep point records into its own "saturation/t<N>" sub-segment so
// the per-point reports land in the artifact's saturation section.
func runSaturation(o Options) *Result {
	threads := []int{1, 2, 4, 8, 16}
	perThreadFiles := 128
	fileSize := uint64(160 << 10)
	if o.Quick {
		threads = []int{1, 4, 16}
		perThreadFiles = 48
	}
	res := &Result{ID: "saturation", Title: "Bottleneck attribution vs threads, read-once mmap, 160 KiB files"}
	tab := Table{Cols: []string{"threads", "MB/s", "bottleneck", "util", "avg queue", "runner-up"}}
	// Retire the harness-opened "saturation" segment before any boot or
	// corpus cycles land in it: only the per-point sub-segments below
	// should reach the artifact, and a report over setup cycles would be
	// attribution noise. The filler name has no "saturation/" prefix, so
	// the artifact never embeds it.
	o.Timeline.StartSegment("saturation-setup")
	o.Spans.StartSegment("saturation-setup")
	for _, th := range threads {
		seg := fmt.Sprintf("saturation/t%d", th)
		k := boot(o, wl.Mmap, th, false, kernel.Ext4, nil)
		proc := k.NewProc()
		n := th * perThreadFiles
		var paths []string
		k.Setup(func(t *sim.Thread) {
			paths = corpus.Fixed(t, proc, "pool", n, fileSize)
		})
		// The sub-segment opens after corpus setup so its window covers
		// only the measured run — setup cycles would otherwise dilute
		// every utilization below the knee.
		o.Timeline.StartSegment(seg)
		o.Spans.StartSegment(seg)
		bytes, cycles := consumeOnce(k, wl.Mmap, paths, th, kernel.KindSum)
		tp := mbps(bytes, cycles)
		res.Metric(fmt.Sprintf("t%d/mbps", th), tp)
		// Close the sub-segment before the next iteration's boot/setup
		// cycles can leak into its tail.
		o.Timeline.StartSegment("saturation-setup")
		o.Spans.StartSegment("saturation-setup")

		rep, ok := analyzeSegment(o, seg)
		if !ok {
			tab.Rows = append(tab.Rows, []string{fmt.Sprintf("%d", th), fmtF(tp), "-", "-", "-", "-"})
			o.logf("saturation t=%d: %.1f MB/s (no timeline attached, skipping attribution)", th, tp)
			continue
		}
		top, next := topResources(rep)
		res.Metric(fmt.Sprintf("t%d/top.is_mmap_sem", th), boolMetric(top.Name == "mmap_sem"))
		res.Metric(fmt.Sprintf("t%d/top.is_pmem_bw", th), boolMetric(top.Name == "pmem_bw"))
		res.Metric(fmt.Sprintf("t%d/mmap_sem.score", th), resourceScore(rep, "mmap_sem"))
		res.Metric(fmt.Sprintf("t%d/pmem_bw.score", th), resourceScore(rep, "pmem_bw"))
		res.Note("t%d: %s", th, rep.Verdict)
		runnerUp := "-"
		if next != nil {
			runnerUp = fmt.Sprintf("%s (%.2f)", next.Name, next.Score)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", th), fmtF(tp), top.Name,
			fmt.Sprintf("%.2f", top.Utilization), fmt.Sprintf("%.1f", top.MeanQueue), runnerUp,
		})
		o.logf("saturation t=%d: %.1f MB/s, %s", th, tp, rep.Verdict)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

// analyzeSegment runs the bottleneck analyzer over one just-finished
// timeline segment (plus its span export when the span layer is on).
// ok is false when no timeline is attached — attribution needs the
// sampled telemetry.
func analyzeSegment(o Options, seg string) (bottleneck.Report, bool) {
	if o.Timeline == nil {
		return bottleneck.Report{}, false
	}
	for _, ex := range o.Timeline.Export() {
		if ex.Segment != seg {
			continue
		}
		var sp *span.SegmentExport
		if o.Spans != nil {
			if s, ok := o.Spans.ExportSegment(seg); ok {
				sp = &s
			}
		}
		return bottleneck.Analyze(ex, sp), true
	}
	return bottleneck.Report{}, false
}

// topResources returns the verdict winner and the best-scoring other
// non-advisory resource (nil when there is none).
func topResources(rep bottleneck.Report) (top bottleneck.Resource, next *bottleneck.Resource) {
	first := true
	for i := range rep.Resources {
		r := &rep.Resources[i]
		if r.Advisory {
			continue
		}
		if first {
			top, first = *r, false
			continue
		}
		if next == nil {
			next = r
		}
	}
	return top, next
}

// resourceScore looks up one resource's saturation score in a report.
func resourceScore(rep bottleneck.Report, name string) float64 {
	for _, r := range rep.Resources {
		if r.Name == name {
			return r.Score
		}
	}
	return 0
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
