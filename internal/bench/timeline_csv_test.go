package bench

import (
	"bytes"
	"strings"
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/obs/timeline"
)

// TestTimelineCSVDeterminism covers the -timeline-out export end to end:
// run a real experiment twice in one process, render each run's timeline
// as CSV, and demand byte-identical files plus the documented header and
// row shape. This is the contract plotting scripts depend on — stable
// column layout, stable row order, no run-to-run drift.
func TestTimelineCSVDeterminism(t *testing.T) {
	run := func() []byte {
		e, ok := ByID("ftcost")
		if !ok {
			t.Fatal("ftcost not registered")
		}
		o := obs.New(0)
		tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
		e.Run(Options{Quick: true, Obs: o, Timeline: tl})
		var buf bytes.Buffer
		if err := timeline.WriteCSV(&buf, tl.Export()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := run()

	lines := strings.Split(strings.TrimSpace(string(first)), "\n")
	if lines[0] != "experiment,interval,start_cycles,end_cycles,series,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("only %d CSV lines from a real run", len(lines))
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			t.Fatalf("row %d has %d fields, want 6: %q", i+1, len(fields), line)
		}
		if fields[0] != "ftcost" {
			t.Fatalf("row %d experiment = %q, want ftcost", i+1, fields[0])
		}
	}

	second := run()
	if !bytes.Equal(first, second) {
		a := strings.Split(string(first), "\n")
		b := strings.Split(string(second), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("CSV diverges at line %d:\n run 1: %s\n run 2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("CSV length differs: %d vs %d bytes", len(first), len(second))
	}
}
