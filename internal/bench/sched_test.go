package bench

import (
	"bytes"
	"fmt"
	"testing"

	"daxvm/internal/kernel"
	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// runArtifact runs one experiment in-process with a fresh observability
// stack under the given scheduler selection and returns the serialized
// artifact with provenance pinned. In-process artifacts carry no host
// block (only the CLI runner sets it), so byte equality here is exactly
// the "identical up to the host block" bar.
func runArtifact(t *testing.T, id, sched string, shards int) []byte {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	o := obs.New(0)
	tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
	sp := span.New(3)
	opts := Options{Quick: true, Obs: o, Timeline: tl, Spans: sp, Sched: sched, Shards: shards}
	res := e.Run(opts)
	snap := o.Reg.Snapshot()
	cycles := o.Cycles.Snapshot()
	art := NewArtifact(res, opts, &snap, &cycles)
	art.GitSHA = "test"
	var buf bytes.Buffer
	if err := art.WriteArtifact(&buf); err != nil {
		t.Fatalf("serialize artifact: %v", err)
	}
	return buf.Bytes()
}

func diffArtifacts(t *testing.T, label string, a, b []byte) {
	t.Helper()
	if bytes.Equal(a, b) {
		return
	}
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Fatalf("%s: artifacts diverge at line %d:\n seq:   %s\n shard: %s", label, i+1, al[i], bl[i])
		}
	}
	t.Fatalf("%s: artifacts differ in length: %d vs %d bytes", label, len(a), len(b))
}

// TestSchedGate is the in-process half of make sched-gate: for each
// perf-gate experiment, the sharded scheduler must produce a
// byte-identical artifact to the sequential reference. This is the
// refactor's non-negotiable bar — the sharded scheduler buys host-side
// speed only, never different numbers.
func TestSchedGate(t *testing.T) {
	for _, id := range []string{"storage", "ftcost", "numa"} {
		id := id
		t.Run(id, func(t *testing.T) {
			seq := runArtifact(t, id, kernel.SchedSeq, 0)
			shard := runArtifact(t, id, kernel.SchedShard, 4)
			diffArtifacts(t, id, seq, shard)
		})
	}
}

// TestShardSweep pins that the shard count is also invisible in artifact
// bytes: 1, 2 and 4 shards all reproduce the sequential ftcost artifact.
func TestShardSweep(t *testing.T) {
	ref := runArtifact(t, "ftcost", kernel.SchedSeq, 0)
	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			got := runArtifact(t, "ftcost", kernel.SchedShard, n)
			diffArtifacts(t, fmt.Sprintf("ftcost shards=%d", n), ref, got)
		})
	}
}
