package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// runSaturationOnce executes the saturation experiment with the full
// observability stack attached and returns the result plus its artifact.
func runSaturationOnce(t *testing.T) (*Result, *Artifact) {
	t.Helper()
	e, ok := ByID("saturation")
	if !ok {
		t.Fatal("saturation not registered")
	}
	o := obs.New(0)
	tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
	opts := Options{Quick: true, Obs: o, Timeline: tl, Spans: span.New(3)}
	res := e.Run(opts)
	snap := o.Reg.Snapshot()
	cycles := o.Cycles.Snapshot()
	art := NewArtifact(res, opts, &snap, &cycles)
	art.GitSHA = "test"
	return res, art
}

// TestSaturationShape pins the experiment's headline claim: below the
// knee the PMem read channel is the named bottleneck, past it the
// mmap_sem writer side is, and the lock's saturation score grows
// monotonically with thread count.
func TestSaturationShape(t *testing.T) {
	res, art := runSaturationOnce(t)

	if res.Metrics["t1/top.is_pmem_bw"] != 1 {
		t.Errorf("t1: want pmem_bw as top resource, metrics: %v", res.Metrics)
	}
	if res.Metrics["t16/top.is_mmap_sem"] != 1 {
		t.Errorf("t16: want mmap_sem as top resource, metrics: %v", res.Metrics)
	}
	prev := -1.0
	for _, th := range []int{1, 4, 16} {
		s := res.Metrics[fmt.Sprintf("t%d/mmap_sem.score", th)]
		if s <= prev {
			t.Errorf("mmap_sem score not increasing: t%d has %v after %v", th, s, prev)
		}
		prev = s
	}

	// The artifact's saturation section carries one report per sweep
	// point, and the embedded verdict strings agree with the metrics.
	if len(art.Saturation) != 3 {
		t.Fatalf("artifact has %d saturation reports, want 3 (quick sweep)", len(art.Saturation))
	}
	verdicts := map[string]string{}
	for _, rep := range art.Saturation {
		verdicts[rep.Segment] = rep.Verdict
	}
	if v := verdicts["saturation/t1"]; !strings.HasPrefix(v, "bottleneck: pmem_bw") {
		t.Errorf("t1 verdict = %q, want pmem_bw", v)
	}
	if v := verdicts["saturation/t16"]; !strings.HasPrefix(v, "bottleneck: mmap_sem") {
		t.Errorf("t16 verdict = %q, want mmap_sem", v)
	}
}

// TestSaturationDeterminism runs the sweep twice in one process and
// asserts the serialized saturation reports are byte-identical — the
// verdicts are part of the artifact payload the perf gate diffs, so
// they must be a pure function of the build.
func TestSaturationDeterminism(t *testing.T) {
	marshal := func() []byte {
		_, art := runSaturationOnce(t)
		b, err := json.Marshal(art.Saturation)
		if err != nil {
			t.Fatalf("marshal saturation: %v", err)
		}
		return b
	}
	first := marshal()
	second := marshal()
	if !bytes.Equal(first, second) {
		t.Fatalf("saturation sections differ between runs:\n run 1: %s\n run 2: %s", first, second)
	}
}
