package bench

import (
	"fmt"

	"daxvm/internal/kernel"
	"daxvm/internal/workload/corpus"
	"daxvm/internal/workload/pmemrocks"
	"daxvm/internal/workload/predis"
	"daxvm/internal/workload/textsearch"
	"daxvm/internal/workload/webserver"
	"daxvm/internal/workload/wl"
	"daxvm/internal/workload/ycsb"
)

func init() {
	register("fig8a", "Web server scalability, 32 KiB pages (Fig. 8a)", runFig8a)
	register("fig8b", "Web server throughput vs page size at 16 cores (Fig. 8b)", runFig8b)
	register("fig9a", "Text search scalability over a source tree (Fig. 9a)", runFig9a)
	register("fig9b", "P-Redis boot-time throughput curve (Fig. 9b)", runFig9b)
	register("fig9c", "YCSB on a Pmem-RocksDB-like store, aged ext4-DAX (Fig. 9c)", runFig9c)
	register("fig9c-nova", "YCSB on the same store over NOVA (§V-C)", runFig9cNova)
}

// apacheIfaces is Fig. 8a's incremental interface set.
var apacheIfaces = []wl.Iface{
	wl.Read, wl.Mmap, wl.MmapPopulate, wl.MmapLATR,
	wl.DaxVMTables, wl.DaxVMEph, wl.DaxVMAsync,
}

func runFig8a(o Options) *Result {
	threads := []int{1, 2, 4, 8, 16}
	reqs := 300
	if o.Quick {
		threads = []int{1, 4, 16}
		reqs = 100
	}
	res := &Result{ID: "fig8a", Title: "Web server requests/s vs cores (32 KiB pages, aged ext4-DAX)"}
	tab := Table{Cols: []string{"cores"}}
	for _, f := range apacheIfaces {
		tab.Cols = append(tab.Cols, f.Name)
	}
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th)}
		for _, iface := range apacheIfaces {
			k := boot(o, iface, th, true, kernel.Ext4, nil)
			r := webserver.Run(k, webserver.Config{
				Threads: th, PageBytes: 32 << 10, Pages: 128,
				RequestsPerThread: reqs, Iface: iface, Seed: 7,
			})
			row = append(row, fmtF(r.Throughput))
			res.Metric(fmt.Sprintf("t%d/%s", th, iface.Name), r.Throughput)
			o.logf("fig8a t=%d %s: %.0f req/s", th, iface.Name, r.Throughput)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

func runFig8b(o Options) *Result {
	sizes := []uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	reqs := 200
	cores := 16
	if o.Quick {
		sizes = []uint64{16 << 10, 256 << 10}
		reqs = 80
	}
	ifaces := []wl.Iface{wl.Read, wl.Mmap, wl.MmapPopulate, wl.DaxVMAsync}
	res := &Result{ID: "fig8b", Title: "Web server throughput vs page size, 16 cores, relative to read(2)"}
	tab := Table{Cols: []string{"pagesize"}}
	for _, f := range ifaces {
		tab.Cols = append(tab.Cols, f.Name)
	}
	for _, size := range sizes {
		row := []string{fmtBytes(size)}
		var baseline float64
		for _, iface := range ifaces {
			k := boot(o, iface, cores, true, kernel.Ext4, nil)
			r := webserver.Run(k, webserver.Config{
				Threads: cores, PageBytes: size, Pages: 128,
				RequestsPerThread: reqs, Iface: iface, Seed: 7,
			})
			if iface.Name == "read" {
				baseline = r.Throughput
			}
			row = append(row, fmtRel(r.Throughput, baseline))
			res.Metric(fmt.Sprintf("%s/%s", fmtBytes(size), iface.Name), r.Throughput)
			o.logf("fig8b %s %s: %.0f req/s", fmtBytes(size), iface.Name, r.Throughput)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

func runFig9a(o Options) *Result {
	threads := []int{1, 2, 4, 8, 16}
	tree := corpusScaled(o)
	ifaces := []wl.Iface{wl.Read, wl.Mmap, wl.MmapPopulate, wl.DaxVMAsync}
	if o.Quick {
		threads = []int{1, 4, 16}
	}
	res := &Result{ID: "fig9a", Title: "Text search MB/s vs cores (source-tree corpus, aged ext4-DAX)"}
	tab := Table{Cols: []string{"cores"}}
	for _, f := range ifaces {
		tab.Cols = append(tab.Cols, f.Name)
	}
	var wantMatches uint64
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th)}
		for _, iface := range ifaces {
			k := boot(o, iface, th, true, kernel.Ext4, nil)
			r := textsearch.Run(k, textsearch.Config{Threads: th, Tree: tree, Iface: iface})
			if wantMatches == 0 {
				wantMatches = r.Matches
			} else if r.Matches != wantMatches {
				res.Note("MATCH MISMATCH: %s t=%d found %d, expected %d", iface.Name, th, r.Matches, wantMatches)
			}
			row = append(row, fmtF(r.Throughput))
			res.Metric(fmt.Sprintf("t%d/%s", th, iface.Name), r.Throughput)
			o.logf("fig9a t=%d %s: %.0f MB/s (%d matches)", th, iface.Name, r.Throughput, r.Matches)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Metric("matches", float64(wantMatches))
	res.Tables = append(res.Tables, tab)
	return res
}

func corpusScaled(o Options) corpus.TreeConfig {
	c := corpus.DefaultTree()
	if o.Quick {
		c.Files = 1200
		c.LargeFiles = 1
		c.LargeBytes = 8 << 20
	} else {
		c.Files = 4000
	}
	return c
}

func runFig9b(o Options) *Result {
	cfg := predis.DefaultConfig()
	if o.Quick {
		cfg.CacheBytes = 256 << 20
		cfg.Gets = 12_000
		cfg.Buckets = 12
	}
	variants := []struct {
		name  string
		iface wl.Iface
	}{
		{"mmap", wl.Mmap},
		{"populate", wl.MmapPopulate},
		{"daxvm", wl.DaxVMNoSync},
	}
	res := &Result{ID: "fig9b", Title: "P-Redis throughput over the first gets after boot (Fig. 9b)"}
	tab := Table{Cols: []string{"variant", "boot-ms", "first-bucket", "last-bucket", "curve"}}
	for _, v := range variants {
		c := cfg
		c.Iface = v.iface
		k := boot(o, v.iface, 1, true, kernel.Ext4, func(kc *kernel.Config) {
			kc.DeviceBytes = c.CacheBytes*4 + (1 << 30) // aged to 70%: keep ~30% free > cache
		})
		r := predis.Run(k, c)
		bootMS := float64(r.SetupCycles) / 2_700_000
		curve := ""
		for i, b := range r.Bucket {
			if i%3 == 0 {
				curve += fmt.Sprintf("%.0fk ", b/1000)
			}
		}
		tab.Rows = append(tab.Rows, []string{
			v.name, fmt.Sprintf("%.2f", bootMS),
			fmtF(r.Bucket[0]), fmtF(r.Bucket[len(r.Bucket)-1]), curve,
		})
		res.Metric(v.name+"/boot-ms", bootMS)
		res.Metric(v.name+"/first", r.Bucket[0])
		res.Metric(v.name+"/last", r.Bucket[len(r.Bucket)-1])
		if !r.Verified {
			res.Note("VERIFICATION FAILED for %s", v.name)
		}
		o.logf("fig9b %s: boot %.2fms first %.0f last %.0f", v.name, bootMS, r.Bucket[0], r.Bucket[len(r.Bucket)-1])
	}
	res.Tables = append(res.Tables, tab)
	return res
}

// ycsbVariants is Fig. 9c's interface set.
var ycsbVariants = []struct {
	name    string
	iface   wl.Iface
	prezero bool
}{
	{"mmap", wl.Mmap, false},
	{"populate", wl.MmapPopulate, false},
	{"daxvm", wl.DaxVMTables, true},
	{"daxvm-nosync", wl.DaxVMNoSync, true},
}

func runYCSB(o Options, id string, fsKind kernel.FSKind, aged bool) *Result {
	mixes := []string{"load", "a", "b", "c", "d", "e", "f"}
	cfg := pmemrocks.DefaultConfig()
	if o.Quick {
		mixes = []string{"load", "a", "c"}
		cfg.InitialRecords = 6_000
		cfg.Ops = 6_000
		cfg.Threads = 4
	}
	res := &Result{ID: id, Title: fmt.Sprintf("YCSB ops/s relative to default mmap (%s)", fsKind)}
	tab := Table{Cols: []string{"workload"}}
	for _, v := range ycsbVariants {
		tab.Cols = append(tab.Cols, v.name)
	}
	for _, mixName := range mixes {
		mix, err := ycsb.ByName(mixName)
		if err != nil {
			panic(err)
		}
		label := "run-" + mixName
		if mixName == "load" {
			label = "load"
		}
		row := []string{label}
		var baseline float64
		for _, v := range ycsbVariants {
			c := cfg
			c.Mix = mix
			c.Iface = v.iface
			k := boot(o, v.iface, c.Threads, aged, fsKind, func(kc *kernel.Config) {
				kc.Cores = c.Threads + 1 // spare core for the zero daemon
				kc.Prezero = v.prezero && v.iface.DaxVM
				kc.DeviceBytes = 3 << 30
				if o.Quick {
					kc.DeviceBytes = 1500 << 20
				}
			})
			r := pmemrocks.Run(k, c)
			if v.name == "mmap" {
				baseline = r.Throughput
			}
			row = append(row, fmtRel(r.Throughput, baseline))
			res.Metric(fmt.Sprintf("%s/%s", label, v.name), r.Throughput)
			if !r.Verified {
				res.Note("VERIFICATION FAILED: %s %s", label, v.name)
			}
			o.logf("%s %s %s: %.0f ops/s (%d flushes, %d compactions)", id, label, v.name, r.Throughput, r.Flushes, r.Compactions)
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res
}

func runFig9c(o Options) *Result     { return runYCSB(o, "fig9c", kernel.Ext4, true) }
func runFig9cNova(o Options) *Result { return runYCSB(o, "fig9c-nova", kernel.Nova, true) }
