package bench

import (
	"strings"
	"testing"
)

// TestCompareThresholdBoundary pins the tolerance comparison as strict:
// a metric landing exactly on the 10% boundary passes, one epsilon past
// it regresses. Guards against an accidental <= / < flip inverting gate
// behavior for retunes that aim exactly at the documented margin.
func TestCompareThresholdBoundary(t *testing.T) {
	atBoundary := mkArtifact(t, func(a *Artifact) {
		a.Metrics["64K/daxvm"] = 1_350_000 // exactly -10%
	})
	rep, err := CompareArtifacts(mkArtifact(t, nil), atBoundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("exact-boundary change flagged: %v", rep.Regressions)
	}
	pastBoundary := mkArtifact(t, func(a *Artifact) {
		a.Metrics["64K/daxvm"] = 1_349_000 // just past -10%
	})
	rep, err = CompareArtifacts(mkArtifact(t, nil), pastBoundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "64K/daxvm" {
		t.Fatalf("past-boundary change not flagged: %v", rep.Regressions)
	}
}

// TestCompareNewOnlyMetricIgnored: a metric present only in the new
// artifact is new coverage, not a regression, and is not counted as
// checked (the baseline defines the contract).
func TestCompareNewOnlyMetricIgnored(t *testing.T) {
	base := mkArtifact(t, nil)
	extra := mkArtifact(t, func(a *Artifact) {
		a.Metrics["brand-new-metric"] = 42
	})
	repBase, err := CompareArtifacts(base, mkArtifact(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareArtifacts(base, extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("new-only metric flagged: %v", rep.Regressions)
	}
	if rep.Checked != repBase.Checked {
		t.Fatalf("new-only metric counted as checked: %d vs %d", rep.Checked, repBase.Checked)
	}
}

// TestCompareLowerBetterID: for an id-level lower-is-better experiment
// (storage footprints), growth past tolerance regresses and shrinkage is
// an improvement — the exact mirror of the throughput rule.
func TestCompareLowerBetterID(t *testing.T) {
	asStorage := func(extra func(a *Artifact)) []byte {
		return mkArtifact(t, func(a *Artifact) {
			a.ID = "storage"
			a.ConfigHash = configHash("storage", true, 0, "")
			if extra != nil {
				extra(a)
			}
		})
	}
	grown := asStorage(func(a *Artifact) { a.Metrics["64K/daxvm"] *= 1.12 })
	rep, err := CompareArtifacts(asStorage(nil), grown)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "64K/daxvm" {
		t.Fatalf("lower-is-better growth not flagged: %v", rep.Regressions)
	}
	shrunk := asStorage(func(a *Artifact) { a.Metrics["64K/daxvm"] *= 0.5 })
	rep, err = CompareArtifacts(asStorage(nil), shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("lower-is-better improvement flagged: %v", rep.Regressions)
	}
}

// TestCompareVanishedCycleLeaf: a leaf that disappears from the new
// breakdown spent zero cycles — an improvement, never a regression
// (unlike a vanished metric, which is a lost measurement).
func TestCompareVanishedCycleLeaf(t *testing.T) {
	faster := mkArtifact(t, func(a *Artifact) {
		delete(a.CycleBreakdown.Leaves, "app.syscall.append.journal.commit")
		a.CycleBreakdown.Total -= 200_000
	})
	rep, err := CompareArtifacts(mkArtifact(t, nil), faster)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("vanished cycle leaf flagged: %v", rep.Regressions)
	}
}

// TestCompareBelowMinShareIgnored: even a 10x blowup on a leaf holding
// under 0.5% of the attributed total stays invisible — the share filter
// keeps micro-leaves from gating.
func TestCompareBelowMinShareIgnored(t *testing.T) {
	blown := mkArtifact(t, func(a *Artifact) {
		l := a.CycleBreakdown.Leaves["app.tiny"]
		l.Cycles *= 10
		a.CycleBreakdown.Leaves["app.tiny"] = l
	})
	rep, err := CompareArtifacts(mkArtifact(t, nil), blown)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Regressions {
		if strings.HasPrefix(r.Name, "cycles:app.tiny") {
			t.Fatalf("below-min-share leaf flagged: %v", r)
		}
	}
}
