// Package latr models LATR (Kumar et al., ASPLOS '18) as the paper's
// asynchronous-unmap baseline: instead of IPI shootdowns, munmap enqueues
// per-core invalidation messages that target cores apply lazily at their
// next scheduler tick. The mechanism is general-purpose and volatile-
// memory-safe, which is exactly why it is heavier than DaxVM's batched
// detach: its shared state tracking serializes on its own lock, and every
// core pays a sweep on every tick (§V-C: DaxVM with async unmapping alone
// outperforms LATR by ~12%).
package latr

import (
	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/sim"
)

// Costs specific to the LATR mechanism.
const (
	// stateEntryCost: allocating/queueing one LATR state entry per core.
	stateEntryCost = 1_200
	// sweepBaseCost: scanning the per-core lazy list at a tick.
	sweepBaseCost = 900
	// bookkeepingCost: LATR's per-munmap global state maintenance (the
	// paper: "LATR's status tracking mechanisms induce contention on its
	// own locks").
	bookkeepingCost = 4_000
	// TickInterval: scheduler-tick granularity at which lazy
	// invalidations are applied (1 ms, LATR's design point).
	TickInterval = 1000 * cost.CyclesPerUsec
)

// LATR is the machine-wide lazy-invalidation state.
type LATR struct {
	cpus *cpu.Set
	// lock guards the global state table — the contention the paper
	// observes ("LATR's status tracking mechanisms induce contention on
	// its own locks").
	lock sim.SpinLock

	pending  [][]pendingInval // per core
	lastTick []uint64

	Stats Stats
}

// Stats counts LATR activity.
type Stats struct {
	Munmaps     uint64
	Entries     uint64
	Sweeps      uint64
	Invalidated uint64
}

type pendingInval struct {
	start, end mem.VirtAddr
	tlb        int // target core
}

// New creates the LATR state for the machine.
func New(cpus *cpu.Set) *LATR {
	return &LATR{
		cpus:     cpus,
		pending:  make([][]pendingInval, len(cpus.Cores)),
		lastTick: make([]uint64, len(cpus.Cores)),
	}
}

// Munmap replaces mm.Munmap's shootdown with lazy per-core messages: the
// PTEs are cleared synchronously (so the VMA can be reused is NOT true —
// LATR delays VA reuse by one tick; the mm layer handles reuse windows)
// but remote TLBs are invalidated at their next tick.
func (l *LATR) Munmap(t *sim.Thread, m *mm.MM, core *cpu.Core, va mem.VirtAddr, length uint64) error {
	t.Charge(cost.MunmapFixed)
	end := va + mem.VirtAddr(mem.AlignedUp(length, mem.PageSize))
	m.Sem.Lock(t, cost.SemAcquireFast)
	if err := m.MunmapNoInval(t, core, va, end); err != nil {
		m.Sem.Unlock(t, cost.SemReleaseFast)
		return err
	}
	m.Sem.Unlock(t, cost.SemReleaseFast)

	// Local invalidation is immediate.
	core.TLB.InvalidateRange(va, end)
	t.Charge(cost.TLBFlushLocal)

	// Enqueue one state entry per remote core, under the global lock.
	l.lock.Lock(t, cost.SpinLockAcquire)
	l.Stats.Munmaps++
	t.Charge(bookkeepingCost)
	for _, c := range m.Cores() {
		if c == core {
			continue
		}
		l.pending[c.ID] = append(l.pending[c.ID], pendingInval{va, end, c.ID})
		l.Stats.Entries++
		t.Charge(stateEntryCost)
	}
	l.lock.Unlock(t, cost.SpinLockRelease)
	return nil
}

// Tick applies lazy invalidations on the calling thread's core if a tick
// boundary passed. Workload loops call it on every operation, mirroring
// the scheduler-tick hook.
func (l *LATR) Tick(t *sim.Thread, core *cpu.Core) {
	if t.Now()-l.lastTick[core.ID] < TickInterval {
		return
	}
	l.lock.Lock(t, cost.SpinLockAcquire)
	l.lastTick[core.ID] = t.Now()
	list := l.pending[core.ID]
	l.pending[core.ID] = nil
	l.lock.Unlock(t, cost.SpinLockRelease)
	t.Charge(sweepBaseCost)
	l.Stats.Sweeps++
	for _, p := range list {
		core.TLB.InvalidateRange(p.start, p.end)
		t.Charge(cost.TLBInvlpgLocal)
		l.Stats.Invalidated++
	}
}
