// Package rbtree implements an ordered red-black tree keyed by uint64,
// the structure Linux uses for the per-process VMA tree and that our ext4
// model uses for free-extent indexing. Keys are unique; values are generic.
//
// Both client structures store non-overlapping ranges keyed by range start,
// so range queries ("which VMA contains this address", "first free extent
// at or after X") reduce to Floor/Ceiling lookups.
package rbtree

type color bool

const (
	red   color = false
	black color = true
)

type node[V any] struct {
	key                 uint64
	val                 V
	left, right, parent *node[V]
	color               color
}

// Tree is an ordered red-black tree from uint64 keys to V values.
// The zero value is an empty tree ready to use.
type Tree[V any] struct {
	root *node[V]
	size int
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

// Get returns the value stored at key.
func (t *Tree[V]) Get(key uint64) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Insert adds or replaces the entry at key and reports whether the key was
// already present.
func (t *Tree[V]) Insert(key uint64, val V) bool {
	var parent *node[V]
	n := t.root
	for n != nil {
		parent = n
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			n.val = val
			return true
		}
	}
	nn := &node[V]{key: key, val: val, parent: parent, color: red}
	if parent == nil {
		t.root = nn
	} else if key < parent.key {
		parent.left = nn
	} else {
		parent.right = nn
	}
	t.size++
	t.fixInsert(nn)
	return false
}

// Delete removes the entry at key, reporting whether it existed.
func (t *Tree[V]) Delete(key uint64) bool {
	n := t.root
	for n != nil && n.key != key {
		if key < n.key {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return false
	}
	t.deleteNode(n)
	t.size--
	return true
}

// Floor returns the entry with the largest key <= key.
func (t *Tree[V]) Floor(key uint64) (uint64, V, bool) {
	var best *node[V]
	n := t.root
	for n != nil {
		if n.key == key {
			return n.key, n.val, true
		}
		if n.key < key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Ceiling returns the entry with the smallest key >= key.
func (t *Tree[V]) Ceiling(key uint64) (uint64, V, bool) {
	var best *node[V]
	n := t.root
	for n != nil {
		if n.key == key {
			return n.key, n.val, true
		}
		if n.key > key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Min returns the smallest entry.
func (t *Tree[V]) Min() (uint64, V, bool) {
	if t.root == nil {
		var zero V
		return 0, zero, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest entry.
func (t *Tree[V]) Max() (uint64, V, bool) {
	if t.root == nil {
		var zero V
		return 0, zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ascend calls fn for each entry with key >= from in ascending order until
// fn returns false.
func (t *Tree[V]) Ascend(from uint64, fn func(key uint64, val V) bool) {
	n := t.ceilingNode(from)
	for n != nil {
		if !fn(n.key, n.val) {
			return
		}
		n = successor(n)
	}
}

// All calls fn for every entry in ascending order until fn returns false.
func (t *Tree[V]) All(fn func(key uint64, val V) bool) { t.Ascend(0, fn) }

func (t *Tree[V]) ceilingNode(key uint64) *node[V] {
	var best *node[V]
	n := t.root
	for n != nil {
		if n.key == key {
			return n
		}
		if n.key > key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

func successor[V any](n *node[V]) *node[V] {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.right {
		n, p = p, p.parent
	}
	return p
}

// --- balancing --------------------------------------------------------------

func (t *Tree[V]) rotateLeft(x *node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[V]) fixInsert(z *node[V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			u := gp.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

func (t *Tree[V]) deleteNode(z *node[V]) {
	y := z
	yColor := y.color
	var x, xParent *node[V]
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != nil {
			y = y.left
		}
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == black {
		t.fixDelete(x, xParent)
	}
}

func (t *Tree[V]) transplant(u, v *node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func isBlack[V any](n *node[V]) bool { return n == nil || n.color == black }

func (t *Tree[V]) fixDelete(x *node[V], parent *node[V]) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.right) {
					if w.left != nil {
						w.left.color = black
					}
					w.color = red
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = black
				if w.right != nil {
					w.right.color = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if isBlack(w.right) && isBlack(w.left) {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.left) {
					if w.right != nil {
						w.right.color = black
					}
					w.color = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = black
				if w.left != nil {
					w.left.color = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.color = black
	}
}

// checkInvariants validates red-black properties; used by tests.
func (t *Tree[V]) checkInvariants() (ok bool, reason string) {
	if t.root == nil {
		return true, ""
	}
	if t.root.color != black {
		return false, "root not black"
	}
	blackHeight := -1
	var walk func(n *node[V], bh int, lo, hi uint64, loSet, hiSet bool) bool
	walk = func(n *node[V], bh int, lo, hi uint64, loSet, hiSet bool) bool {
		if n == nil {
			if blackHeight == -1 {
				blackHeight = bh
			}
			if bh != blackHeight {
				reason = "uneven black height"
				return false
			}
			return true
		}
		if loSet && n.key <= lo {
			reason = "order violation"
			return false
		}
		if hiSet && n.key >= hi {
			reason = "order violation"
			return false
		}
		if n.color == red {
			if !isBlack(n.left) || !isBlack(n.right) {
				reason = "red node with red child"
				return false
			}
		} else {
			bh++
		}
		if n.left != nil && n.left.parent != n {
			reason = "broken parent link"
			return false
		}
		if n.right != nil && n.right.parent != n {
			reason = "broken parent link"
			return false
		}
		return walk(n.left, bh, lo, n.key, loSet, true) &&
			walk(n.right, bh, n.key, hi, true, hiSet)
	}
	return walk(t.root, 0, 0, 0, false, false), reason
}
