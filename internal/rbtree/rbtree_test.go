package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	var tr Tree[string]
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	tr.Insert(10, "a")
	tr.Insert(5, "b")
	tr.Insert(20, "c")
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if v, ok := tr.Get(5); !ok || v != "b" {
		t.Fatalf("Get(5) = %q, %v", v, ok)
	}
	if replaced := tr.Insert(5, "b2"); !replaced {
		t.Fatal("Insert of existing key should report replacement")
	}
	if v, _ := tr.Get(5); v != "b2" {
		t.Fatal("replacement did not stick")
	}
	if !tr.Delete(10) || tr.Delete(10) {
		t.Fatal("Delete semantics wrong")
	}
	if tr.Len() != 2 {
		t.Fatalf("len after delete = %d", tr.Len())
	}
}

func TestFloorCeiling(t *testing.T) {
	var tr Tree[int]
	for _, k := range []uint64{10, 20, 30, 40} {
		tr.Insert(k, int(k))
	}
	cases := []struct {
		q         uint64
		floor     uint64
		floorOK   bool
		ceiling   uint64
		ceilingOK bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{25, 20, true, 30, true},
		{40, 40, true, 40, true},
		{45, 40, true, 0, false},
	}
	for _, c := range cases {
		if k, _, ok := tr.Floor(c.q); ok != c.floorOK || (ok && k != c.floor) {
			t.Errorf("Floor(%d) = %d,%v want %d,%v", c.q, k, ok, c.floor, c.floorOK)
		}
		if k, _, ok := tr.Ceiling(c.q); ok != c.ceilingOK || (ok && k != c.ceiling) {
			t.Errorf("Ceiling(%d) = %d,%v want %d,%v", c.q, k, ok, c.ceiling, c.ceilingOK)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	var tr Tree[int]
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(500)
	for _, k := range keys {
		tr.Insert(uint64(k), k)
	}
	var got []uint64
	tr.All(func(k uint64, _ int) bool { got = append(got, k); return true })
	if len(got) != 500 {
		t.Fatalf("iterated %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Ascend not in order")
	}
	var partial []uint64
	tr.Ascend(250, func(k uint64, _ int) bool { partial = append(partial, k); return len(partial) < 10 })
	if partial[0] != 250 || len(partial) != 10 {
		t.Fatalf("Ascend(250) = %v", partial)
	}
}

func TestMinMax(t *testing.T) {
	var tr Tree[int]
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	for _, k := range []uint64{17, 3, 99, 42} {
		tr.Insert(k, 0)
	}
	if k, _, _ := tr.Min(); k != 3 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 99 {
		t.Fatalf("Max = %d", k)
	}
}

// TestRandomAgainstModel drives the tree with a random op sequence and
// checks every answer against a map+sort model, validating RB invariants
// along the way.
func TestRandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr Tree[uint64]
	model := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0:
			tr.Insert(k, k*2)
			model[k] = k * 2
		case 1:
			delTree := tr.Delete(k)
			_, inModel := model[k]
			if delTree != inModel {
				t.Fatalf("Delete(%d) = %v, model has %v", k, delTree, inModel)
			}
			delete(model, k)
		case 2:
			v, ok := tr.Get(k)
			mv, mok := model[k]
			if ok != mok || v != mv {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, v, ok, mv, mok)
			}
		}
		if i%997 == 0 {
			if ok, why := tr.checkInvariants(); !ok {
				t.Fatalf("invariant broken after %d ops: %s", i, why)
			}
			if tr.Len() != len(model) {
				t.Fatalf("len %d != model %d", tr.Len(), len(model))
			}
		}
	}
	if ok, why := tr.checkInvariants(); !ok {
		t.Fatalf("final invariant: %s", why)
	}
}

// Property: for any key set, Floor and Ceiling agree with a sorted-slice
// model.
func TestQuickFloorCeiling(t *testing.T) {
	f := func(keys []uint16, queries []uint16) bool {
		var tr Tree[struct{}]
		set := map[uint64]bool{}
		for _, k := range keys {
			tr.Insert(uint64(k), struct{}{})
			set[uint64(k)] = true
		}
		sorted := make([]uint64, 0, len(set))
		for k := range set {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range queries {
			qq := uint64(q)
			// model floor
			var mf uint64
			mfOK := false
			for _, k := range sorted {
				if k <= qq {
					mf, mfOK = k, true
				}
			}
			gf, _, gok := tr.Floor(qq)
			if gok != mfOK || (gok && gf != mf) {
				return false
			}
			// model ceiling
			var mc uint64
			mcOK := false
			for i := len(sorted) - 1; i >= 0; i-- {
				if sorted[i] >= qq {
					mc, mcOK = sorted[i], true
				}
			}
			gc, _, cok := tr.Ceiling(qq)
			if cok != mcOK || (cok && gc != mc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RB invariants hold after any interleaving of inserts and
// deletes.
func TestQuickInvariants(t *testing.T) {
	f := func(ops []int16) bool {
		var tr Tree[int]
		for _, op := range ops {
			k := uint64(op) & 0x3ff
			if op < 0 {
				tr.Delete(k)
			} else {
				tr.Insert(k, int(op))
			}
			if ok, _ := tr.checkInvariants(); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
