// Package radix implements a tagged radix tree modeled on the Linux page
// cache radix tree (now xarray): entries are indexed by page offset and
// carry per-entry tags (e.g. DIRTY) that propagate to interior nodes so
// "find next dirty page from offset X" is O(height).
//
// The simulated kernel uses one tree per mapped file (address_space) to
// track dirty pages for msync/fsync, exactly the structure whose update
// cost DaxVM's nosync mode eliminates.
package radix

const (
	bitsPerLevel = 6
	fanout       = 1 << bitsPerLevel // 64, like Linux RADIX_TREE_MAP_SHIFT
	levelMask    = fanout - 1
)

// Tag identifies a per-entry tag bit.
type Tag uint8

const (
	// TagDirty marks pages dirtied through a mapping (PAGECACHE_TAG_DIRTY).
	TagDirty Tag = iota
	// TagTowrite marks pages picked for writeback (PAGECACHE_TAG_TOWRITE).
	TagTowrite
	numTags
)

type node[V any] struct {
	slots  [fanout]any // *node[V] for interior, *leaf[V] for bottom level
	tags   [numTags][fanout / 64]uint64
	count  int // populated slots
	shift  uint
	parent *node[V]
	offset int // index in parent
}

type leaf[V any] struct {
	val V
}

// Tree maps uint64 indices to values with tags. The zero value is empty.
type Tree[V any] struct {
	root   *node[V]
	height uint // shift of root level
	size   int
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

func (n *node[V]) tagSet(tag Tag, off int) bool {
	return n.tags[tag][off/64]&(1<<(off%64)) != 0
}

func (n *node[V]) setTag(tag Tag, off int) {
	n.tags[tag][off/64] |= 1 << (off % 64)
}

func (n *node[V]) clearTag(tag Tag, off int) {
	n.tags[tag][off/64] &^= 1 << (off % 64)
}

func (n *node[V]) anyTag(tag Tag) bool {
	for _, w := range n.tags[tag] {
		if w != 0 {
			return true
		}
	}
	return false
}

// grow raises the tree height until index fits.
func (t *Tree[V]) grow(index uint64) {
	if t.root == nil {
		//lint:ignore hotalloc tree growth: amortized, O(tracked pages) nodes total
		t.root = &node[V]{shift: 0}
		t.height = 0
	}
	for index>>t.root.shift >= fanout {
		//lint:ignore hotalloc tree growth: amortized, O(log index) roots total
		newRoot := &node[V]{shift: t.root.shift + bitsPerLevel}
		old := t.root
		if old.count > 0 {
			newRoot.slots[0] = old
			newRoot.count = 1
			old.parent = newRoot
			old.offset = 0
			for tg := Tag(0); tg < numTags; tg++ {
				if old.anyTag(tg) {
					newRoot.setTag(tg, 0)
				}
			}
		}
		t.root = newRoot
		t.height = newRoot.shift
	}
}

// Set stores val at index (untagged; previous tags at the index are kept).
func (t *Tree[V]) Set(index uint64, val V) {
	t.grow(index)
	n := t.root
	for n.shift > 0 {
		off := int(index>>n.shift) & levelMask
		child, _ := n.slots[off].(*node[V])
		if child == nil {
			//lint:ignore hotalloc tree growth: amortized, O(tracked pages) nodes total
			child = &node[V]{shift: n.shift - bitsPerLevel, parent: n, offset: off}
			n.slots[off] = child
			n.count++
		}
		n = child
	}
	off := int(index) & levelMask
	if n.slots[off] == nil {
		n.count++
		t.size++
	}
	//lint:ignore hotalloc one leaf per tracked page; reuse would need intrusive storage in V
	n.slots[off] = &leaf[V]{val: val}
}

// Get returns the value at index.
func (t *Tree[V]) Get(index uint64) (V, bool) {
	var zero V
	n := t.lookupLeafNode(index)
	if n == nil {
		return zero, false
	}
	lf, _ := n.slots[int(index)&levelMask].(*leaf[V])
	if lf == nil {
		return zero, false
	}
	return lf.val, true
}

func (t *Tree[V]) lookupLeafNode(index uint64) *node[V] {
	if t.root == nil || index>>t.root.shift >= fanout {
		return nil
	}
	n := t.root
	for n.shift > 0 {
		off := int(index>>n.shift) & levelMask
		child, _ := n.slots[off].(*node[V])
		if child == nil {
			return nil
		}
		n = child
	}
	return n
}

// Delete removes the entry (and its tags) at index.
func (t *Tree[V]) Delete(index uint64) bool {
	n := t.lookupLeafNode(index)
	if n == nil {
		return false
	}
	off := int(index) & levelMask
	if n.slots[off] == nil {
		return false
	}
	n.slots[off] = nil
	n.count--
	t.size--
	for tg := Tag(0); tg < numTags; tg++ {
		if n.tagSet(tg, off) {
			n.clearTag(tg, off)
			propagateClear(n, tg)
		}
	}
	// Prune empty nodes.
	for n != nil && n.count == 0 && n.parent != nil {
		p := n.parent
		p.slots[n.offset] = nil
		p.count--
		for tg := Tag(0); tg < numTags; tg++ {
			if p.tagSet(tg, n.offset) {
				p.clearTag(tg, n.offset)
				propagateClear(p, tg)
			}
		}
		n = p
	}
	return true
}

// SetTag tags an existing entry; it reports whether the entry exists.
func (t *Tree[V]) SetTag(index uint64, tag Tag) bool {
	n := t.lookupLeafNode(index)
	if n == nil {
		return false
	}
	off := int(index) & levelMask
	if n.slots[off] == nil {
		return false
	}
	n.setTag(tag, off)
	// Propagate up.
	for n.parent != nil {
		p := n.parent
		if p.tagSet(tag, n.offset) {
			break
		}
		p.setTag(tag, n.offset)
		n = p
	}
	return true
}

// ClearTag removes a tag from the entry at index.
func (t *Tree[V]) ClearTag(index uint64, tag Tag) {
	n := t.lookupLeafNode(index)
	if n == nil {
		return
	}
	off := int(index) & levelMask
	if !n.tagSet(tag, off) {
		return
	}
	n.clearTag(tag, off)
	propagateClear(n, tag)
}

func propagateClear[V any](n *node[V], tag Tag) {
	for n.parent != nil && !n.anyTag(tag) {
		p := n.parent
		p.clearTag(tag, n.offset)
		n = p
	}
}

// Tagged reports whether the entry at index carries the tag.
func (t *Tree[V]) Tagged(index uint64, tag Tag) bool {
	n := t.lookupLeafNode(index)
	if n == nil {
		return false
	}
	return n.tagSet(tag, int(index)&levelMask)
}

// NextTagged returns the smallest index >= from whose entry carries tag.
func (t *Tree[V]) NextTagged(from uint64, tag Tag) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	if from>>t.root.shift >= fanout {
		return 0, false
	}
	return nextTaggedIn(t.root, from, tag)
}

// nextTaggedIn searches node n for the smallest tagged index >= from,
// where from is relative to the subtree rooted at n (below fanout<<shift).
func nextTaggedIn[V any](n *node[V], from uint64, tag Tag) (uint64, bool) {
	start := int(from >> n.shift)
	for off := start; off < fanout; off++ {
		if !n.tagSet(tag, off) {
			continue
		}
		if n.shift == 0 {
			return uint64(off), true // off >= start == from at leaf level
		}
		childFrom := uint64(0)
		if off == start {
			childFrom = from & ((uint64(1) << n.shift) - 1)
		}
		child := n.slots[off].(*node[V])
		if idx, ok := nextTaggedIn(child, childFrom, tag); ok {
			return uint64(off)<<n.shift | idx, true
		}
	}
	return 0, false
}

// CountTagged counts tagged entries in [from, to).
func (t *Tree[V]) CountTagged(from, to uint64, tag Tag) int {
	count := 0
	idx := from
	for {
		next, ok := t.NextTagged(idx, tag)
		if !ok || next >= to {
			return count
		}
		count++
		idx = next + 1
	}
}
