package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGetDelete(t *testing.T) {
	var tr Tree[string]
	tr.Set(0, "zero")
	tr.Set(63, "sixty-three")
	tr.Set(64, "sixty-four")
	tr.Set(1<<20, "big")
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	for idx, want := range map[uint64]string{0: "zero", 63: "sixty-three", 64: "sixty-four", 1 << 20: "big"} {
		if v, ok := tr.Get(idx); !ok || v != want {
			t.Fatalf("Get(%d) = %q,%v", idx, v, ok)
		}
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get(5) should miss")
	}
	if !tr.Delete(64) || tr.Delete(64) {
		t.Fatal("Delete semantics")
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if _, ok := tr.Get(1 << 20); !ok {
		t.Fatal("unrelated entry vanished after delete")
	}
}

func TestGrowKeepsEntries(t *testing.T) {
	var tr Tree[int]
	tr.Set(1, 1)
	tr.Set(1<<30, 2) // forces multiple growth steps
	if v, ok := tr.Get(1); !ok || v != 1 {
		t.Fatal("entry lost during growth")
	}
	if v, ok := tr.Get(1 << 30); !ok || v != 2 {
		t.Fatal("high entry missing")
	}
}

func TestTags(t *testing.T) {
	var tr Tree[int]
	for i := uint64(0); i < 1000; i++ {
		tr.Set(i, int(i))
	}
	tr.SetTag(100, TagDirty)
	tr.SetTag(500, TagDirty)
	tr.SetTag(999, TagDirty)
	tr.SetTag(500, TagTowrite)

	if !tr.Tagged(100, TagDirty) || tr.Tagged(101, TagDirty) {
		t.Fatal("Tagged wrong")
	}
	if tr.Tagged(100, TagTowrite) {
		t.Fatal("tags must be independent")
	}

	var dirty []uint64
	idx := uint64(0)
	for {
		n, ok := tr.NextTagged(idx, TagDirty)
		if !ok {
			break
		}
		dirty = append(dirty, n)
		idx = n + 1
	}
	want := []uint64{100, 500, 999}
	if len(dirty) != 3 || dirty[0] != want[0] || dirty[1] != want[1] || dirty[2] != want[2] {
		t.Fatalf("dirty = %v", dirty)
	}

	tr.ClearTag(500, TagDirty)
	if n, ok := tr.NextTagged(101, TagDirty); !ok || n != 999 {
		t.Fatalf("NextTagged(101) = %d,%v", n, ok)
	}
	if !tr.Tagged(500, TagTowrite) {
		t.Fatal("clearing one tag cleared the other")
	}

	if c := tr.CountTagged(0, 1000, TagDirty); c != 2 {
		t.Fatalf("CountTagged = %d", c)
	}
}

func TestTagSetOnMissingEntry(t *testing.T) {
	var tr Tree[int]
	tr.Set(10, 1)
	if tr.SetTag(11, TagDirty) {
		t.Fatal("SetTag on missing entry should fail")
	}
	if ok := tr.SetTag(10, TagDirty); !ok {
		t.Fatal("SetTag on present entry should succeed")
	}
}

func TestDeleteClearsTagPropagation(t *testing.T) {
	var tr Tree[int]
	tr.Set(1<<12, 1)
	tr.SetTag(1<<12, TagDirty)
	tr.Delete(1 << 12)
	if _, ok := tr.NextTagged(0, TagDirty); ok {
		t.Fatal("tag survived entry deletion")
	}
}

// Property: NextTagged agrees with a sorted-slice model under random
// tagging, clearing and deletion.
func TestQuickNextTagged(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree[int]
		tagged := map[uint64]bool{}
		present := map[uint64]bool{}
		for i := 0; i < 300; i++ {
			idx := uint64(rng.Intn(1 << 14))
			switch rng.Intn(4) {
			case 0:
				tr.Set(idx, 1)
				present[idx] = true
			case 1:
				if tr.SetTag(idx, TagDirty) {
					tagged[idx] = true
				}
			case 2:
				tr.ClearTag(idx, TagDirty)
				delete(tagged, idx)
			case 3:
				tr.Delete(idx)
				delete(present, idx)
				delete(tagged, idx)
			}
		}
		var sorted []uint64
		for k := range tagged {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for q := 0; q < 50; q++ {
			from := uint64(rng.Intn(1 << 14))
			var want uint64
			wantOK := false
			for _, k := range sorted {
				if k >= from {
					want, wantOK = k, true
					break
				}
			}
			got, ok := tr.NextTagged(from, TagDirty)
			if ok != wantOK || (ok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
