package mm

import (
	"strings"
	"testing"

	"daxvm/internal/cpu"
	"daxvm/internal/dram"
	"daxvm/internal/fs/agefs"
	"daxvm/internal/fs/ext4"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

type env struct {
	fs   *ext4.FS
	mm   *MM
	cpus *cpu.Set
}

func newEnv(devMB int, ncores int) *env {
	dev := pmem.New(pmem.Config{Size: uint64(devMB) << 20})
	f := ext4.Mkfs(ext4.Config{Dev: dev, JournalBytes: 8 << 20})
	cpus := cpu.NewSet(ncores)
	m := New(dram.New(1<<30), f, cpus)
	for _, c := range cpus.Cores {
		m.RunOn(c)
	}
	return &env{fs: f, mm: m, cpus: cpus}
}

func run(fn func(t *sim.Thread)) {
	e := sim.New()
	e.Go("t", 0, 0, fn)
	e.Run()
}

func (ev *env) mkFile(t *sim.Thread, path string, size int) *vfs.Inode {
	in, err := ev.fs.Create(t, path)
	if err != nil {
		panic(err)
	}
	if err := ev.fs.Append(t, in, make([]byte, size)); err != nil {
		panic(err)
	}
	return in
}

func TestMmapAccessMunmap(t *testing.T) {
	ev := newEnv(64, 1)
	run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 64<<10)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, err := ev.mm.Mmap(th, core, in, 0, 64<<10, mem.PermRead, MapShared)
		if err != nil {
			t.Fatalf("Mmap: %v", err)
		}
		if err := ev.mm.Access(th, core, va, 64<<10, false, 100); err != nil {
			t.Fatalf("Access: %v", err)
		}
		if ev.mm.Stats.MinorFaults == 0 {
			t.Fatal("no demand faults taken")
		}
		if err := ev.mm.Munmap(th, core, va, 64<<10); err != nil {
			t.Fatalf("Munmap: %v", err)
		}
		if ev.mm.VMACount() != 0 {
			t.Fatalf("VMAs left: %d", ev.mm.VMACount())
		}
		// Access after unmap must fault to segfault.
		if err := ev.mm.Access(th, core, va, mem.PageSize, false, 0); err == nil {
			t.Fatal("access after munmap succeeded")
		}
	})
}

func TestLazyVsPopulate(t *testing.T) {
	ev := newEnv(64, 1)
	run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 256<<10)
		core := ev.cpus.Cores[0]
		core.Bind(th)

		va, _ := ev.mm.Mmap(th, core, in, 0, 256<<10, mem.PermRead, MapShared|MapPopulate)
		faults0 := ev.mm.Stats.MinorFaults
		ev.mm.Access(th, core, va, 256<<10, false, 0)
		if ev.mm.Stats.MinorFaults != faults0 {
			t.Fatalf("populate left %d faults", ev.mm.Stats.MinorFaults-faults0)
		}
		ev.mm.Munmap(th, core, va, 256<<10)

		va2, _ := ev.mm.Mmap(th, core, in, 0, 256<<10, mem.PermRead, MapShared)
		ev.mm.Access(th, core, va2, 256<<10, false, 0)
		if ev.mm.Stats.MinorFaults == faults0 {
			t.Fatal("lazy mapping took no faults")
		}
	})
}

func TestDirtyTrackingWriteProtectCycle(t *testing.T) {
	ev := newEnv(64, 1)
	run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 64<<10)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, _ := ev.mm.Mmap(th, core, in, 0, 64<<10, mem.PermRead|mem.PermWrite, MapShared|MapPopulate)

		// Populate installs write-protected PTEs; the first store takes a
		// WP fault per page and tags the radix tree.
		if err := ev.mm.Access(th, core, va, 16<<10, true, 0); err != nil {
			t.Fatalf("write access: %v", err)
		}
		if ev.mm.Stats.WPFaults != 4 {
			t.Fatalf("WP faults = %d, want 4", ev.mm.Stats.WPFaults)
		}
		if got := in.DirtyPages.CountTagged(0, 1000, 0); got != 4 {
			t.Fatalf("dirty pages tagged = %d", got)
		}
		// Second write to the same pages: no more faults.
		ev.mm.Access(th, core, va, 16<<10, true, 0)
		if ev.mm.Stats.WPFaults != 4 {
			t.Fatalf("redundant WP faults: %d", ev.mm.Stats.WPFaults)
		}

		// Msync flushes and re-protects: writing again faults again.
		if err := ev.mm.Msync(th, core, va, 64<<10); err != nil {
			t.Fatalf("Msync: %v", err)
		}
		if in.DirtyPages.CountTagged(0, 1000, 0) != 0 {
			t.Fatal("msync left dirty tags")
		}
		ev.mm.Access(th, core, va, 16<<10, true, 0)
		if ev.mm.Stats.WPFaults != 8 {
			t.Fatalf("post-msync WP faults = %d, want 8", ev.mm.Stats.WPFaults)
		}
	})
}

func TestMsyncEveryNWritesCausesMoreFaults(t *testing.T) {
	// Paper §III-A4: one msync per 10 writes causes ~2.8x more faults
	// than no sync. Shape check: sync-every-10 >> no-sync fault count.
	faults := func(syncEvery int) uint64 {
		ev := newEnv(128, 1)
		var n uint64
		run(func(th *sim.Thread) {
			in := ev.mkFile(th, "f", 4<<20)
			core := ev.cpus.Cores[0]
			core.Bind(th)
			va, _ := ev.mm.Mmap(th, core, in, 0, 4<<20, mem.PermRead|mem.PermWrite, MapShared|MapPopulate)
			rng := uint64(1)
			for i := 0; i < 400; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				off := (rng >> 11) % (4<<20 - 1024)
				ev.mm.Access(th, core, va+mem.VirtAddr(off), 1024, true, 0)
				if syncEvery > 0 && (i+1)%syncEvery == 0 {
					ev.mm.Msync(th, core, va, 4<<20)
				}
			}
			n = ev.mm.Stats.WPFaults
		})
		return n
	}
	noSync := faults(0)
	withSync := faults(10)
	if withSync < noSync*2 {
		t.Fatalf("sync-every-10 faults=%d, no-sync=%d; expected ~2.8x", withSync, noSync)
	}
}

func TestHugePageMappingOnFreshImage(t *testing.T) {
	ev := newEnv(128, 1)
	run(func(th *sim.Thread) {
		in, _ := ev.fs.Create(th, "big")
		if err := ev.fs.Fallocate(th, in, 0, 8<<20); err != nil {
			t.Fatalf("Fallocate: %v", err)
		}
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, _ := ev.mm.Mmap(th, core, in, 0, 8<<20, mem.PermRead, MapShared)
		// Align access start so huge mappings can be used.
		ev.mm.Access(th, core, va, 8<<20, false, 0)
		if ev.mm.Stats.HugeFaults == 0 {
			t.Fatal("no huge faults on fresh contiguous image")
		}
		if ev.mm.Stats.MinorFaults > 600 {
			t.Fatalf("too many 4K faults (%d) for a hugepage-able file", ev.mm.Stats.MinorFaults)
		}
	})
}

func TestAgedImageBreaksHugePages(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 512 << 20})
	f := ext4.Mkfs(ext4.Config{Dev: dev, JournalBytes: 8 << 20})
	cpus := cpu.NewSet(1)
	m := New(dram.New(1<<30), f, cpus)
	m.RunOn(cpus.Cores[0])
	run(func(th *sim.Thread) {
		agefs.Age(th, f, agefs.DefaultConfig())
		in, _ := f.Create(th, "bench/big")
		if err := f.Fallocate(th, in, 0, 16<<20); err != nil {
			t.Fatalf("Fallocate: %v", err)
		}
		core := cpus.Cores[0]
		core.Bind(th)
		va, _ := m.Mmap(th, core, in, 0, 16<<20, mem.PermRead, MapShared)
		m.Access(th, core, va, 16<<20, false, 0)
		total := 16 << 20 / mem.HugeSize
		if m.Stats.HugeFaults >= uint64(total) {
			t.Fatalf("aged image fully huge-mapped (%d/%d)", m.Stats.HugeFaults, total)
		}
		if m.Stats.MinorFaults == 0 {
			t.Fatal("aged image should force 4K faults")
		}
	})
}

func TestMunmapBatchedInvalidation(t *testing.T) {
	ev := newEnv(64, 2)
	run(func(th *sim.Thread) {
		core := ev.cpus.Cores[0]
		core.Bind(th)
		// Small unmap: ranged shootdown, no full flush.
		in := ev.mkFile(th, "small", 16<<10)
		va, _ := ev.mm.Mmap(th, core, in, 0, 16<<10, mem.PermRead, MapShared|MapPopulate)
		ev.mm.Munmap(th, core, va, 16<<10)
		if ev.mm.Stats.FullFlushes != 0 {
			t.Fatal("small unmap should not full-flush")
		}
		// Large unmap: full flush.
		in2 := ev.mkFile(th, "large", 1<<20)
		va2, _ := ev.mm.Mmap(th, core, in2, 0, 1<<20, mem.PermRead, MapShared|MapPopulate)
		ev.mm.Munmap(th, core, va2, 1<<20)
		if ev.mm.Stats.FullFlushes != 1 {
			t.Fatalf("large unmap full flushes = %d", ev.mm.Stats.FullFlushes)
		}
	})
}

func TestPartialMunmapSplitsVMA(t *testing.T) {
	ev := newEnv(64, 1)
	run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 64<<10)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, _ := ev.mm.Mmap(th, core, in, 0, 64<<10, mem.PermRead, MapShared|MapPopulate)
		// Unmap the middle 16K.
		if err := ev.mm.Munmap(th, core, va+16<<10, 16<<10); err != nil {
			t.Fatalf("Munmap: %v", err)
		}
		if ev.mm.VMACount() != 2 {
			t.Fatalf("VMAs = %d, want 2 after split", ev.mm.VMACount())
		}
		if err := ev.mm.Access(th, core, va, 16<<10, false, 0); err != nil {
			t.Fatalf("left half: %v", err)
		}
		if err := ev.mm.Access(th, core, va+16<<10, 4096, false, 0); err == nil {
			t.Fatal("middle still accessible")
		}
		if err := ev.mm.Access(th, core, va+32<<10, 16<<10, false, 0); err != nil {
			t.Fatalf("right half: %v", err)
		}
		// FileOff of the right half must account for the hole.
		v := ev.mm.FindVMAForTest(va + 32<<10)
		if v == nil || v.FileOff != 32<<10 {
			t.Fatalf("right-half FileOff = %+v", v)
		}
	})
}

func TestTruncateForcesUnmap(t *testing.T) {
	ev := newEnv(64, 1)
	run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 64<<10)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, _ := ev.mm.Mmap(th, core, in, 0, 64<<10, mem.PermRead, MapShared|MapPopulate)
		_ = va
		if err := ev.fs.Truncate(th, in, 0); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		if ev.mm.VMACount() != 0 {
			t.Fatal("truncate did not force unmap")
		}
		if err := ev.mm.Access(th, core, va, 4096, false, 0); err == nil ||
			!strings.Contains(err.Error(), "segfault") {
			t.Fatalf("expected segfault after truncate, got %v", err)
		}
	})
}

func TestMmapSemContentionAcrossThreads(t *testing.T) {
	// N threads doing mmap/munmap serialize on mmap_sem: per-op latency
	// must grow with thread count.
	latency := func(nthreads int) uint64 {
		ev := newEnv(256, nthreads)
		e := sim.New()
		var maxClock uint64
		setup := sim.New()
		var inodes []*vfs.Inode
		setup.Go("setup", 0, 0, func(th *sim.Thread) {
			for i := 0; i < nthreads; i++ {
				inodes = append(inodes, ev.mkFile(th, "f"+string(rune('a'+i)), 32<<10))
			}
		})
		setup.Run()
		const opsPerThread = 50
		for i := 0; i < nthreads; i++ {
			core := ev.cpus.Cores[i]
			in := inodes[i]
			e.Go("w", i, 0, func(th *sim.Thread) {
				core.Bind(th)
				for op := 0; op < opsPerThread; op++ {
					va, err := ev.mm.Mmap(th, core, in, 0, 32<<10, mem.PermRead, MapShared)
					if err != nil {
						t.Errorf("Mmap: %v", err)
						return
					}
					ev.mm.Access(th, core, va, 32<<10, false, 0)
					ev.mm.Munmap(th, core, va, 32<<10)
				}
			})
		}
		maxClock = e.Run()
		return maxClock / opsPerThread
	}
	l1 := latency(1)
	l8 := latency(8)
	if l8 < l1*3 {
		t.Fatalf("8-thread per-op latency %d not much worse than 1-thread %d; mmap_sem contention missing", l8, l1)
	}
}
