// Package mm models the Linux virtual-memory manager for one process:
// the VMA red-black tree guarded by mmap_sem, demand paging of DAX file
// mappings, MAP_POPULATE, software dirty tracking through write-protect
// faults feeding the page-cache radix tree, and munmap with the x86
// batched-invalidation heuristic.
//
// This is the baseline whose costs DaxVM (internal/core) removes; its code
// paths mirror the paper's Table IV inventory of mmap_sem users.
package mm

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/dram"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/pt"
	"daxvm/internal/radix"
	"daxvm/internal/rbtree"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
)

// MapFlags are mmap(2) flags the simulator distinguishes.
type MapFlags uint32

const (
	// MapShared is MAP_SHARED (the only sharing mode DAX supports here).
	MapShared MapFlags = 1 << iota
	// MapPopulate pre-faults the whole mapping at mmap time.
	MapPopulate
	// MapSync is MAP_SYNC: write faults must synchronously commit dirty
	// file metadata so user-space flushes alone guarantee durability.
	MapSync
)

// VMA is one virtual memory area.
type VMA struct {
	Start, End mem.VirtAddr
	Perm       mem.Perm
	Flags      MapFlags
	Inode      *vfs.Inode
	FileOff    uint64 // bytes, page-aligned

	// DaxVM fields (owned by internal/core).
	DaxVM       bool
	Ephemeral   bool
	NoSync      bool
	UnmapAsync  bool
	AttachLevel int
}

// Len returns the VMA length in bytes.
func (v *VMA) Len() uint64 { return uint64(v.End - v.Start) }

// MM is one process's memory manager.
type MM struct {
	// Sem is mmap_sem. Everything in Table IV of the paper queues here.
	Sem *sim.RWSem
	// AS is the process page-table tree.
	AS *pt.AddressSpace

	vmas  rbtree.Tree[*VMA] // keyed by Start
	dram  *dram.Pool
	fs    vfs.FS
	cpus  *cpu.Set
	cores map[int]*cpu.Core // cores this process runs on (shootdown set)

	vaCursor mem.VirtAddr

	// policy places this process's page-table frames (and is inherited
	// by DaxVM's volatile tables); ileave is its interleave cursor.
	policy topo.Policy
	ileave uint64

	// HugePagesEnabled permits PMD-sized DAX mappings when alignment and
	// extent contiguity allow (Linux's DAX huge page support).
	HugePagesEnabled bool

	// EphemeralLookup lets DaxVM's ephemeral heap resolve VMAs that are
	// intentionally absent from the VMA tree (fault paths consult it
	// after the tree misses).
	EphemeralLookup func(va mem.VirtAddr) *VMA

	// DaxWPFault handles write-protect faults on DaxVM mappings, where
	// permissions live at the attachment level and dirty tracking is
	// 2 MiB-grained. Set by internal/core.
	DaxWPFault func(t *sim.Thread, core *cpu.Core, v *VMA, va mem.VirtAddr) error

	// Trace receives VM events (faults, mmap/munmap, msync); FaultHist
	// records end-to-end fault service latency; Spans opens a causal
	// span per fault with its wait decomposition. All nil = disabled.
	Trace     *obs.Tracer
	FaultHist *obs.Histogram
	Spans     *span.Collector

	Stats Stats
}

// Stats counts VM events.
type Stats struct {
	Mmaps        uint64
	Munmaps      uint64
	MinorFaults  uint64
	HugeFaults   uint64
	WPFaults     uint64
	SpuriousWP   uint64
	MetaSyncs    uint64
	PagesMapped  uint64
	PagesCleared uint64
	Shootdowns   uint64
	FullFlushes  uint64
	MsyncPages   uint64
}

// mmBase is where file mappings start in the simulated address space.
const mmBase mem.VirtAddr = 0x7f00_0000_0000

// New creates a process memory manager.
func New(pool *dram.Pool, fs vfs.FS, cpus *cpu.Set) *MM {
	m := &MM{
		Sem:              sim.NewRWSem(cost.SchedWakeup),
		dram:             pool,
		fs:               fs,
		cpus:             cpus,
		cores:            make(map[int]*cpu.Core),
		vaCursor:         mmBase,
		HugePagesEnabled: true,
	}
	m.AS = pt.NewAddressSpace(
		func(t *sim.Thread, level int) *pt.Node {
			node := mem.NodeID(0)
			if t != nil && pool != nil {
				node = m.PickNode(t)
				n := pt.NewNode(level, mem.Loc{Medium: mem.DRAM, Node: node})
				n.Frame = pool.AllocFrameOn(t, node)
				return n
			}
			return pt.NewNode(level, mem.Loc{Medium: mem.DRAM, Node: node})
		},
		func(t *sim.Thread, n *pt.Node) {
			if t != nil && pool != nil && n.Frame != pt.NoFrame {
				pool.FreeFrame(t, n.Frame)
				n.Frame = pt.NoFrame
			}
		},
	)
	return m
}

// SetPlacement selects the process's memory-placement policy.
func (m *MM) SetPlacement(p topo.Policy) { m.policy = p }

// Placement returns the process's placement policy.
func (m *MM) Placement() topo.Policy { return m.policy }

// PickNode applies the placement policy for an allocation requested by
// t (whose core determines the local node). Always 0 on flat machines.
func (m *MM) PickNode(t *sim.Thread) mem.NodeID {
	if m.cpus == nil || !m.cpus.Topo.Multi() {
		return 0
	}
	return m.policy.Pick(m.cpus.Topo, m.cpus.Topo.NodeOfCore(t.Core), &m.ileave)
}

// multiNode reports whether locality matters on this machine.
func (m *MM) multiNode() bool { return m.cpus != nil && m.cpus.Topo.Multi() }

// NodeOfMapped resolves which NUMA node's PMem backs the present
// translation at va, structurally (no charges). ok=false when va is not
// mapped to PMem.
func (m *MM) NodeOfMapped(va mem.VirtAddr) (mem.NodeID, bool) {
	e, _, _, ok := m.AS.Lookup(va)
	if !ok || !e.OnPMem() {
		return 0, false
	}
	return m.fs.Device().NodeOfPFN(e.PFN()), true
}

// FS returns the file system the process maps files from.
func (m *MM) FS() vfs.FS { return m.fs }

// RunOn registers a core as running this process (shootdown targeting).
func (m *MM) RunOn(c *cpu.Core) { m.cores[c.ID] = c }

// Cores returns the registered cores.
func (m *MM) Cores() []*cpu.Core {
	out := make([]*cpu.Core, 0, len(m.cores))
	for i := 0; i < len(m.cpus.Cores); i++ {
		if c, ok := m.cores[i]; ok {
			out = append(out, c)
		}
	}
	return out
}

// FindVMA returns the VMA containing va (caller holds Sem).
func (m *MM) FindVMA(t *sim.Thread, va mem.VirtAddr) *VMA {
	t.Charge(cost.VMAFind)
	_, v, ok := m.vmas.Floor(uint64(va))
	if ok && va < v.End {
		return v
	}
	if m.EphemeralLookup != nil {
		return m.EphemeralLookup(va)
	}
	return nil
}

// VMACount reports live VMAs.
func (m *MM) VMACount() int { return m.vmas.Len() }

// EachVMA visits every tree VMA (caller holds Sem).
func (m *MM) EachVMA(fn func(v *VMA)) {
	m.vmas.All(func(_ uint64, v *VMA) bool { fn(v); return true })
}

// InsertVMA adds a VMA to the tree (caller holds Sem for writing).
func (m *MM) InsertVMA(t *sim.Thread, v *VMA) {
	t.Charge(cost.VMAInsert)
	m.vmas.Insert(uint64(v.Start), v)
}

// EraseVMA removes a VMA (caller holds Sem for writing).
func (m *MM) EraseVMA(t *sim.Thread, v *VMA) {
	t.Charge(cost.VMAErase)
	m.vmas.Delete(uint64(v.Start))
}

// GetUnmappedArea finds a free aligned virtual range (caller holds Sem).
func (m *MM) GetUnmappedArea(t *sim.Thread, length uint64, align uint64) mem.VirtAddr {
	t.Charge(cost.GetUnmappedArea)
	if align < mem.PageSize {
		align = mem.PageSize
	}
	va := mem.VirtAddr(mem.AlignedUp(uint64(m.vaCursor), align))
	for {
		_, v, ok := m.vmas.Floor(uint64(va))
		if ok && va < v.End {
			va = mem.VirtAddr(mem.AlignedUp(uint64(v.End), align))
			continue
		}
		if nk, nv, ok := m.vmas.Ceiling(uint64(va)); ok && uint64(va)+length > nk {
			va = mem.VirtAddr(mem.AlignedUp(uint64(nv.End), align))
			continue
		}
		break
	}
	m.vaCursor = va + mem.VirtAddr(length)
	return va
}

// Mmap maps a shared DAX file mapping and returns its base address.
// Costs: mmap_sem write, VA search, VMA insert; with MapPopulate also the
// full population walk.
func (m *MM) Mmap(t *sim.Thread, core *cpu.Core, in *vfs.Inode, fileOff, length uint64, perm mem.Perm, flags MapFlags) (mem.VirtAddr, error) {
	if length == 0 || !mem.IsAligned(fileOff, mem.PageSize) {
		return 0, fmt.Errorf("mm: bad mmap args off=%d len=%d", fileOff, length)
	}
	began := t.Now()
	t.Charge(cost.MmapFixed)
	m.Sem.Lock(t, cost.SemAcquireFast)
	length = mem.AlignedUp(length, mem.PageSize)
	va := m.GetUnmappedArea(t, length, mem.PageSize)
	v := &VMA{
		Start: va, End: va + mem.VirtAddr(length),
		Perm: perm, Flags: flags, Inode: in, FileOff: fileOff,
	}
	m.InsertVMA(t, v)
	in.Mappers[v] = func(ft *sim.Thread) { m.forceUnmapLocked(ft, v) }
	m.Stats.Mmaps++
	if flags&MapPopulate != 0 {
		m.populateRange(t, core, v, v.Start, v.End)
	}
	m.Sem.Unlock(t, cost.SemReleaseFast)
	m.Trace.Emit(obs.EvMmap, coreID(core), began, t.Now()-began, "", length/mem.PageSize)
	return va, nil
}

// coreID names the trace track for a (possibly nil) core.
func coreID(c *cpu.Core) int {
	if c == nil {
		return 0
	}
	return c.ID
}

// populateRange installs clean (write-protected when dirty tracking
// applies) translations for [start,end) of the VMA. Caller holds Sem.
func (m *MM) populateRange(t *sim.Thread, core *cpu.Core, v *VMA, start, end mem.VirtAddr) {
	va := start
	for va < end {
		if m.tryHuge(t, v, va, end, false) {
			m.Stats.PagesMapped += mem.HugeSize / mem.PageSize
			va += mem.HugeSize
			continue
		}
		fileBlock := (uint64(va-v.Start) + v.FileOff) / mem.PageSize
		phys, ok := m.fs.BlockOf(t, v.Inode, fileBlock)
		if !ok {
			va += mem.PageSize
			continue // hole (beyond EOF): leave unmapped, access will fault
		}
		e := pt.MakeEntry(mem.PFN(phys), m.initialPerm(v), true, false)
		m.AS.Map(t, va, e, pt.LevelPTE)
		t.Charge(cost.PTESetPerPage)
		m.Stats.PagesMapped++
		va += mem.PageSize
	}
}

// initialPerm: shared DAX mappings with dirty tracking start write-
// protected so the first store takes a tracking fault.
func (m *MM) initialPerm(v *VMA) mem.Perm {
	p := v.Perm
	if m.needsDirtyTracking(v) {
		p &^= mem.PermWrite
	}
	return p
}

func (m *MM) needsDirtyTracking(v *VMA) bool {
	return v.Flags&MapShared != 0 && v.Perm.CanWrite() && !v.NoSync
}

// tryHuge installs a PMD mapping at va if alignment, remaining length and
// extent contiguity allow. Returns false silently otherwise.
func (m *MM) tryHuge(t *sim.Thread, v *VMA, va, end mem.VirtAddr, chargeFault bool) bool {
	if !m.HugePagesEnabled {
		return false
	}
	if !mem.IsAligned(uint64(va), mem.HugeSize) || uint64(end-va) < mem.HugeSize {
		return false
	}
	off := uint64(va-v.Start) + v.FileOff
	if !mem.IsAligned(off, mem.HugeSize) {
		return false
	}
	if off+mem.HugeSize > mem.AlignedUp(v.Inode.Size, mem.PageSize) {
		return false // file tail does not cover the whole huge page
	}
	fileBlock := off / mem.PageSize
	phys, ok := m.fs.BlockOf(t, v.Inode, fileBlock)
	if !ok || !mem.IsAligned(phys, 512) {
		return false
	}
	// All 512 blocks must be physically contiguous.
	last, ok2 := m.fs.BlockOf(t, v.Inode, fileBlock+511)
	if !ok2 || last != phys+511 {
		return false
	}
	e := pt.MakeEntry(mem.PFN(phys), m.initialPerm(v), true, true)
	m.AS.Map(t, va, e, pt.LevelPMD)
	if chargeFault {
		t.ChargeAs("huge", cost.HugeFaultService)
	} else {
		t.Charge(cost.PTESetPerPage * 8)
	}
	return true
}

// PageFault services a demand fault at va (not-present). Access type
// write=true folds the dirty-tracking work into the same fault, like
// Linux's shared-file write fault.
func (m *MM) PageFault(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, write bool) error {
	began := t.Now()
	t.PushAttr("fault.minor")
	m.Spans.Begin(t, "fault.minor")
	err := m.pageFault(t, core, va, write)
	m.Spans.End(t)
	t.PopAttr()
	cycles := t.Now() - began
	m.FaultHist.Observe(cycles)
	tag := "read"
	if write {
		tag = "write"
	}
	m.Trace.Emit(obs.EvPageFault, coreID(core), began, cycles, tag, uint64(va))
	return err
}

func (m *MM) pageFault(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, write bool) error {
	t.Charge(cost.FaultEntry)
	m.Sem.RLock(t, cost.SemAcquireFast)
	v := m.FindVMA(t, va)
	if v == nil {
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		//lint:ignore hotalloc error path: a segfault ends the workload
		return fmt.Errorf("mm: segfault at %#x", va)
	}
	if write && !v.Perm.CanWrite() {
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		//lint:ignore hotalloc error path: a protection fault ends the workload
		return fmt.Errorf("mm: write to read-only mapping at %#x", va)
	}

	if m.tryHuge(t, v, va.HugeDown(), v.End, true) {
		m.Stats.HugeFaults++
		m.Stats.PagesMapped += mem.HugeSize / mem.PageSize
		if write {
			m.trackDirty(t, v, va)
			m.makeWritable(t, va)
		}
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		return nil
	}

	fileBlock := (uint64(va.PageDown()-v.Start) + v.FileOff) / mem.PageSize
	phys, ok := m.fs.BlockOf(t, v.Inode, fileBlock)
	if !ok {
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		//lint:ignore hotalloc error path: a fault beyond EOF ends the workload
		return fmt.Errorf("mm: fault beyond EOF at %#x (block %d)", va, fileBlock)
	}
	t.Charge(cost.MinorFaultService)
	m.Stats.MinorFaults++

	perm := m.initialPerm(v)
	if write {
		// Single combined fault: dirty-track now and install writable.
		m.trackDirty(t, v, va)
		perm = v.Perm
	}
	leafParent := m.installPTE(t, va.PageDown(), phys, perm, write)
	_ = leafParent
	m.Stats.PagesMapped++
	m.Sem.RUnlock(t, cost.SemReleaseFast)
	return nil
}

// installPTE installs a 4 KiB translation under the split page-table lock.
func (m *MM) installPTE(t *sim.Thread, va mem.VirtAddr, phys uint64, perm mem.Perm, dirty bool) *pt.Node {
	e := pt.MakeEntry(mem.PFN(phys), perm, true, false)
	if dirty {
		e |= pt.BitDirty | pt.BitAccessed
	}
	m.AS.Map(t, va, e, pt.LevelPTE)
	leaf, _ := m.AS.LeafNode(va)
	if leaf != nil {
		leaf.Ptl.Lock(t, cost.SpinLockAcquire)
		leaf.Ptl.Unlock(t, cost.SpinLockRelease)
	}
	return leaf
}

// WPFault services a write to a write-protected present page: the
// dirty-tracking path (ext4's page_mkwrite + radix tagging), plus the
// MAP_SYNC metadata commit.
func (m *MM) WPFault(t *sim.Thread, core *cpu.Core, va mem.VirtAddr) error {
	began := t.Now()
	t.PushAttr("fault.wp")
	m.Spans.Begin(t, "fault.wp")
	err := m.wpFault(t, core, va)
	m.Spans.End(t)
	t.PopAttr()
	cycles := t.Now() - began
	m.FaultHist.Observe(cycles)
	m.Trace.Emit(obs.EvWPFault, coreID(core), began, cycles, "", uint64(va))
	return err
}

func (m *MM) wpFault(t *sim.Thread, core *cpu.Core, va mem.VirtAddr) error {
	t.Charge(cost.FaultEntry)
	m.Sem.RLock(t, cost.SemAcquireFast)
	v := m.FindVMA(t, va)
	if v == nil {
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		//lint:ignore hotalloc error path: a segfault ends the workload
		return fmt.Errorf("mm: segfault at %#x", va)
	}
	if !v.Perm.CanWrite() {
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		//lint:ignore hotalloc error path: a protection fault ends the workload
		return fmt.Errorf("mm: write to read-only mapping at %#x", va)
	}
	if v.DaxVM && m.DaxWPFault != nil {
		err := m.DaxWPFault(t, core, v, va)
		core.TLB.InvalidatePage(va)
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		return err
	}
	// Spurious? Another thread may have upgraded the PTE already.
	if _, _, writable, ok := m.AS.Lookup(va); ok && writable {
		m.Stats.SpuriousWP++
		core.TLB.InvalidatePage(va)
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		return nil
	}
	t.Charge(cost.WriteProtectFaultService)
	m.Stats.WPFaults++
	m.trackDirty(t, v, va)
	m.makeWritable(t, va)
	core.TLB.InvalidatePage(va)
	m.Sem.RUnlock(t, cost.SemReleaseFast)
	return nil
}

// trackDirty records the dirtied page in the inode's radix tree and runs
// the MAP_SYNC metadata commit if needed.
func (m *MM) trackDirty(t *sim.Thread, v *VMA, va mem.VirtAddr) {
	if v.NoSync {
		return
	}
	if v.Flags&MapSync != 0 {
		if m.fs.SyncMetaIfDirty(t, v.Inode) {
			m.Stats.MetaSyncs++
		}
	}
	pageIdx := (uint64(va.PageDown()-v.Start) + v.FileOff) / mem.PageSize
	t.Charge(cost.RadixTreeTag)
	v.Inode.DirtyPages.Set(pageIdx, struct{}{})
	v.Inode.DirtyPages.SetTag(pageIdx, radix.TagDirty)
}

// makeWritable upgrades the leaf entry at va to writable+dirty.
func (m *MM) makeWritable(t *sim.Thread, va mem.VirtAddr) {
	leaf, idx := m.AS.LeafNode(va)
	if leaf == nil {
		return
	}
	leaf.Ptl.Lock(t, cost.SpinLockAcquire)
	e := leaf.Entries[idx]
	leaf.SetEntry(t, idx, e|pt.BitWrite|pt.BitDirty|pt.BitAccessed)
	leaf.Ptl.Unlock(t, cost.SpinLockRelease)
	t.Charge(cost.PTESetPerPage)
}

// Munmap removes [va, va+length). Partially covered VMAs are split, like
// POSIX requires (the fine-grained generality DaxVM's ephemeral mappings
// drop).
func (m *MM) Munmap(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, length uint64) error {
	began := t.Now()
	t.Charge(cost.MunmapFixed)
	end := va + mem.VirtAddr(mem.AlignedUp(length, mem.PageSize))
	m.Sem.Lock(t, cost.SemAcquireFast)
	err := m.munmapLocked(t, core, va, end)
	m.Sem.Unlock(t, cost.SemReleaseFast)
	m.Trace.Emit(obs.EvMunmap, coreID(core), began, t.Now()-began, "", uint64(end-va)/mem.PageSize)
	return err
}

// MunmapNoInval removes [va, end) clearing PTEs but performing no TLB
// invalidation — callers owning coherence (LATR) handle it themselves.
// Caller holds Sem for writing.
func (m *MM) MunmapNoInval(t *sim.Thread, core *cpu.Core, va, end mem.VirtAddr) error {
	return m.munmapRange(t, core, va, end, false)
}

func (m *MM) munmapLocked(t *sim.Thread, core *cpu.Core, va, end mem.VirtAddr) error {
	return m.munmapRange(t, core, va, end, true)
}

func (m *MM) munmapRange(t *sim.Thread, core *cpu.Core, va, end mem.VirtAddr, inval bool) error {
	// Collect overlapping VMAs.
	var overlapping []*VMA
	m.vmas.Ascend(0, func(k uint64, v *VMA) bool {
		if v.Start >= end {
			return false
		}
		if v.End > va {
			overlapping = append(overlapping, v)
		}
		return true
	})
	if len(overlapping) == 0 {
		return nil
	}
	for _, v := range overlapping {
		m.EraseVMA(t, v)
		delete(v.Inode.Mappers, v)
		// Splits for partial coverage.
		if v.Start < va {
			left := *v
			left.End = va
			m.InsertVMA(t, &left)
			v.Inode.Mappers[&left] = func(ft *sim.Thread) { m.forceUnmapLocked(ft, &left) }
		}
		if v.End > end {
			right := *v
			right.Start = end
			right.FileOff = v.FileOff + uint64(end-v.Start)
			m.InsertVMA(t, &right)
			v.Inode.Mappers[&right] = func(ft *sim.Thread) { m.forceUnmapLocked(ft, &right) }
		}
	}
	lo := overlapping[0].Start
	if lo < va {
		lo = va
	}
	hi := overlapping[len(overlapping)-1].End
	if hi > end {
		hi = end
	}
	cleared := m.AS.ClearRange(t, lo, hi)
	t.Charge(cost.PTEClearPerPage * cleared)
	m.Stats.PagesCleared += cleared
	m.Stats.Munmaps++
	if inval {
		m.invalidate(t, core, lo, hi, cleared)
	}
	return nil
}

// invalidate applies Linux's batched-invalidation policy: few pages ->
// ranged shootdown, many -> one full flush on all cores of the process.
func (m *MM) invalidate(t *sim.Thread, core *cpu.Core, start, end mem.VirtAddr, pages uint64) {
	if pages == 0 {
		return
	}
	targets := m.Cores()
	m.Stats.Shootdowns++
	if pages <= cost.FullFlushThresholdPages {
		m.cpus.Shootdown(t, core, targets, cpu.ShootRange, nil, start, end)
		return
	}
	m.Stats.FullFlushes++
	m.cpus.Shootdown(t, core, targets, cpu.ShootFull, nil, 0, 0)
}

// forceUnmapLocked is invoked by the FS when blocks are reclaimed under a
// mapping (truncate): translations must die immediately. The caller
// context already serializes with the FS; take Sem for writing.
func (m *MM) forceUnmapLocked(t *sim.Thread, v *VMA) {
	m.Sem.Lock(t, cost.SemAcquireFast)
	if _, ok := m.vmas.Get(uint64(v.Start)); ok {
		m.EraseVMA(t, v)
		delete(v.Inode.Mappers, v)
		cleared := m.AS.ClearRange(t, v.Start, v.End)
		m.Stats.PagesCleared += cleared
		core := m.anyCore()
		if core != nil {
			m.invalidate(t, core, v.Start, v.End, cleared)
		}
	}
	m.Sem.Unlock(t, cost.SemReleaseFast)
}

func (m *MM) anyCore() *cpu.Core {
	for _, c := range m.Cores() {
		return c
	}
	return nil
}

// Mprotect changes protection of [va, va+length). Implemented for whole
// or partial ranges (splitting), as POSIX demands of the baseline.
func (m *MM) Mprotect(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, length uint64, perm mem.Perm) error {
	end := va + mem.VirtAddr(mem.AlignedUp(length, mem.PageSize))
	m.Sem.Lock(t, cost.SemAcquireFast)
	defer m.Sem.Unlock(t, cost.SemReleaseFast)
	v := m.FindVMA(t, va)
	if v == nil || v.End < end {
		return fmt.Errorf("mm: mprotect range not mapped")
	}
	// Split off the affected range.
	if v.Start < va || v.End > end {
		m.EraseVMA(t, v)
		delete(v.Inode.Mappers, v)
		mkseg := func(s, e mem.VirtAddr, off uint64, p mem.Perm) {
			seg := *v
			seg.Start, seg.End, seg.FileOff, seg.Perm = s, e, off, p
			m.InsertVMA(t, &seg)
			v.Inode.Mappers[&seg] = func(ft *sim.Thread) { m.forceUnmapLocked(ft, &seg) }
		}
		if v.Start < va {
			mkseg(v.Start, va, v.FileOff, v.Perm)
		}
		mkseg(va, end, v.FileOff+uint64(va-v.Start), perm)
		if v.End > end {
			mkseg(end, v.End, v.FileOff+uint64(end-v.Start), v.Perm)
		}
	} else {
		v.Perm = perm
	}
	// Downgrade present PTEs and invalidate.
	pages := uint64(end-va) / mem.PageSize
	for p := va; p < end; p += mem.PageSize {
		leaf, idx := m.AS.LeafNode(p)
		if leaf == nil {
			continue
		}
		e := leaf.Entries[idx]
		if !e.Present() {
			continue
		}
		ne := e &^ pt.BitWrite
		if perm.CanWrite() {
			// Stay write-protected if dirty tracking applies; upgraded
			// lazily by WP faults.
		}
		leaf.SetEntry(t, idx, ne)
		t.Charge(cost.PTESetPerPage)
	}
	m.invalidate(t, core, va, end, pages)
	return nil
}

// Msync flushes dirty pages of the mapping containing va back to media:
// walk the radix tags, clwb the data, re-write-protect, commit metadata.
func (m *MM) Msync(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, length uint64) error {
	began := t.Now()
	t.Charge(cost.FsyncFixed)
	m.Sem.RLock(t, cost.SemAcquireFast)
	v := m.FindVMA(t, va)
	if v == nil {
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		return fmt.Errorf("mm: msync of unmapped range")
	}
	if v.NoSync {
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		return nil // DaxVM nosync mode: no-op
	}
	in := v.Inode
	firstPage := (uint64(va-v.Start) + v.FileOff) / mem.PageSize
	lastPage := firstPage + mem.PagesIn(length)
	dev := m.fs.Device()
	idx := firstPage
	flushed := uint64(0)
	for {
		pg, ok := in.DirtyPages.NextTagged(idx, radix.TagDirty)
		if !ok || pg >= lastPage {
			break
		}
		phys, ok2 := m.fs.BlockOf(t, in, pg)
		if ok2 {
			dev.Flush(t, mem.PhysAddr(phys*mem.PageSize), mem.PageSize)
		}
		in.DirtyPages.ClearTag(pg, radix.TagDirty)
		t.Charge(cost.RadixTreeTag)
		// Re-write-protect the page for all mappings of this process.
		pva := v.Start + mem.VirtAddr((pg-v.FileOff/mem.PageSize)*mem.PageSize)
		if leaf, i := m.AS.LeafNode(pva); leaf != nil {
			e := leaf.Entries[i]
			if e.Present() {
				leaf.SetEntry(t, i, e&^(pt.BitWrite|pt.BitDirty))
				t.Charge(cost.PTESetPerPage)
			}
		}
		flushed++
		idx = pg + 1
	}
	if flushed > 0 {
		dev.Fence(t)
		m.invalidate(t, core, va, va+mem.VirtAddr(length), flushed)
	}
	m.Stats.MsyncPages += flushed
	m.Sem.RUnlock(t, cost.SemReleaseFast)
	m.fs.Fsync(t, in)
	m.Trace.Emit(obs.EvMsync, coreID(core), began, t.Now()-began, "", flushed)
	return nil
}

// Access simulates user code touching [va, va+n): per-page translation
// with demand/WP faults, charging dataPerPage cycles pro-rated by the
// bytes actually touched within each page. write selects store semantics.
func (m *MM) Access(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, n uint64, write bool, dataPerPage uint64) error {
	end := va + mem.VirtAddr(n)
	multi := m.multiNode()
	for p := va.PageDown(); p < end; p += mem.PageSize {
		e, err := m.touchPage(t, core, p, write)
		if err != nil {
			return err
		}
		lo, hi := p, p+mem.PageSize
		if va > lo {
			lo = va
		}
		if end < hi {
			hi = end
		}
		t.ChargeAs("data", dataPerPage*uint64(hi-lo)/mem.PageSize)
		if multi && e.OnPMem() {
			// Data touched on another socket's DIMMs pays the FAST '20
			// remote-Optane deficit on top of the local rate.
			if node := m.fs.Device().NodeOfPFN(e.PFN()); node != core.Node {
				rate := uint64(cost.RemotePMemReadExtraPerPage)
				if write {
					rate = cost.RemotePMemWriteExtraPerPage
				}
				t.ChargeAs("data_remote", rate*uint64(hi-lo)/mem.PageSize)
			}
		}
	}
	return nil
}

// touchPage resolves one page, taking faults until the access succeeds,
// and returns the final leaf entry.
func (m *MM) touchPage(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, write bool) (pt.Entry, error) {
	for tries := 0; tries < 4; tries++ {
		e, res := core.Translate(t, m.AS, va, write)
		switch res {
		case cpu.TransOK:
			return e, nil
		case cpu.TransNotPresent:
			if err := m.PageFault(t, core, va, write); err != nil {
				return 0, err
			}
		case cpu.TransNoWrite:
			if err := m.WPFault(t, core, va); err != nil {
				return 0, err
			}
		}
	}
	return 0, fmt.Errorf("mm: access to %#x did not converge", va)
}

// FindVMAForTest looks up a VMA without charging (test helper).
func (m *MM) FindVMAForTest(va mem.VirtAddr) *VMA {
	_, v, ok := m.vmas.Floor(uint64(va))
	if !ok || va >= v.End {
		return nil
	}
	return v
}
