package kernel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
	"daxvm/internal/sim"
)

// runContendedWorkload drives four threads of the same process through
// create/append/mmap/touch/munmap loops so the mmap_sem writer side and
// the PMem bandwidth bucket both see real contention.
func runContendedWorkload(t *testing.T, k *Kernel) *Proc {
	t.Helper()
	p := k.NewProc()
	for w := 0; w < 4; w++ {
		w := w
		p.Spawn("worker", w, 0, func(th *sim.Thread, c *cpu.Core) {
			for i := 0; i < 6; i++ {
				fd, err := p.Create(th, fmt.Sprintf("f%d_%d", w, i))
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				p.Append(th, fd, make([]byte, 256<<10))
				va, err := p.Mmap(th, c, fd, 0, 256<<10, mem.PermRead, mm.MapShared|mm.MapSync)
				if err != nil {
					t.Errorf("Mmap: %v", err)
					return
				}
				p.AccessMapped(th, c, va, 256<<10, KindSum)
				p.Munmap(th, c, va, 256<<10)
				p.Close(th, fd)
			}
		})
	}
	if k.Run() == 0 {
		t.Fatal("no virtual time elapsed")
	}
	return p
}

// TestWaitTotalsReconcile pins the cross-layer identities the bottleneck
// analyzer's report rests on: the span layer's once-counted wait totals
// must reconcile exactly against the resource models' own counters.
//
//   - pmem_bw: every throttle-stall cycle is charged as a "bw_stall"
//     classified charge, so the span total and the device counter are
//     the same cycles booked through two independent paths.
//   - mmap_sem: the span total books the pure park gap (blocked time
//     before the wakeup charge), while the lock's wait counters include
//     the wakeup cost, so counter − wakeCost × contended == span total.
func TestWaitTotalsReconcile(t *testing.T) {
	o := obs.New(0)
	sp := span.New(3)
	k := Boot(Config{Cores: 4, DeviceBytes: 512 << 20, Obs: o, Spans: sp})
	// Boot-time mkfs stalls land in the collector's default segment;
	// measure from a fresh segment and against counter deltas.
	sp.StartSegment("measured")
	stallBefore := k.Dev.Stats.ThrottleStall
	p := runContendedWorkload(t, k)

	seg, ok := sp.ExportSegment("measured")
	if !ok {
		t.Fatal("no measured segment exported")
	}

	wantStall := k.Dev.Stats.ThrottleStall - stallBefore
	if wantStall == 0 {
		t.Fatal("workload produced no PMem throttle stalls — reconciliation vacuous")
	}
	if got := seg.WaitTotals[span.WaitPMemBW.String()]; got != wantStall {
		t.Errorf("span pmem_bw total = %d, device throttle stall delta = %d", got, wantStall)
	}

	s := p.MM.Sem
	contended := s.Stats.Contended + s.ReaderStats.Contended
	if contended == 0 {
		t.Fatal("workload produced no mmap_sem contention — reconciliation vacuous")
	}
	wantSem := s.Stats.WaitCycles + s.ReaderStats.WaitCycles - cost.SchedWakeup*contended
	if got := seg.WaitTotals[span.WaitMmapSem.String()]; got != wantSem {
		t.Errorf("span mmap_sem total = %d, lock counters say %d (wait %d+%d − wake %d×%d)",
			got, wantSem, s.Stats.WaitCycles, s.ReaderStats.WaitCycles, cost.SchedWakeup, contended)
	}
}

// TestGaugeSamplingIsFree asserts the tentpole's zero-cost contract: a
// run with the full telemetry stack (registry, sampler, gauges) reaches
// exactly the same virtual end time as a bare run of the same workload,
// so attaching -timeline can never shift baseline metrics.
func TestGaugeSamplingIsFree(t *testing.T) {
	run := func(withObs bool) uint64 {
		cfg := Config{Cores: 4, DeviceBytes: 512 << 20}
		if withObs {
			o := obs.New(0)
			cfg.Obs = o
			cfg.Timeline = timeline.New(o.Reg, o.Cycles, timeline.Config{})
		}
		k := Boot(cfg)
		p := k.NewProc()
		for w := 0; w < 4; w++ {
			w := w
			p.Spawn("worker", w, 0, func(th *sim.Thread, c *cpu.Core) {
				fd, err := p.Create(th, fmt.Sprintf("f%d", w))
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				p.Append(th, fd, make([]byte, 128<<10))
				va, err := p.Mmap(th, c, fd, 0, 128<<10, mem.PermRead, mm.MapShared|mm.MapSync)
				if err != nil {
					t.Errorf("Mmap: %v", err)
					return
				}
				p.AccessMapped(th, c, va, 128<<10, KindSum)
				p.Munmap(th, c, va, 128<<10)
				p.Close(th, fd)
			})
		}
		return k.Run()
	}
	bare := run(false)
	instrumented := run(true)
	if bare != instrumented {
		t.Fatalf("telemetry shifted virtual time: bare run ends at %d, instrumented at %d", bare, instrumented)
	}
}

// TestMultiNodeGaugeDeterminism runs the same two-node workload twice
// and asserts the serialized timeline — per-node saturation gauges
// included — is byte-identical, and that the per-node gauge tracks
// actually registered (they only exist on multi-node machines).
func TestMultiNodeGaugeDeterminism(t *testing.T) {
	run := func() []byte {
		o := obs.New(0)
		tl := timeline.New(o.Reg, o.Cycles, timeline.Config{})
		k := Boot(Config{Cores: 4, Nodes: 2, DeviceBytes: 512 << 20, Obs: o, Timeline: tl})
		runContendedWorkload(t, k)
		b, err := json.Marshal(tl.Export())
		if err != nil {
			t.Fatalf("marshal timeline: %v", err)
		}
		return b
	}
	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatal("two-node gauge tracks differ between identical runs")
	}

	var exs []timeline.Export
	if err := json.Unmarshal(first, &exs); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	samples := uint64(0)
	for _, ex := range exs {
		for _, iv := range ex.Intervals {
			samples += iv.GaugeSamples
			for name := range iv.Gauges {
				seen[name] = true
			}
		}
	}
	if samples == 0 {
		t.Fatal("no gauge samples recorded")
	}
	// Per-node tracks only register on multi-node machines; their
	// presence (with non-zero samples — zero-only gauges are pruned
	// from the JSON) proves the NUMA gauge wiring end to end.
	for _, want := range []string{"mmap_sem.queue", "pmem.node0.bw.backlog", "pmem.node1.bw.backlog"} {
		if !seen[want] {
			t.Errorf("gauge %q never sampled non-zero (saw %v)", want, seen)
		}
	}
}
