package kernel

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/obs"
	"daxvm/internal/obs/timeline"
)

// wireObs connects an observability hub to this kernel: the tracer is
// handed to every event-emitting subsystem and a reader for each legacy
// Stats counter is registered under a dotted namespace. The hub may be
// shared across sequentially booted kernels (bench runs many machines):
// re-registration replaces the readers, so a snapshot always reflects the
// most recently booted kernel, while the trace ring accumulates events
// from all of them.
func (k *Kernel) wireObs(o *obs.Obs) {
	k.Obs = o
	// Route every cycle the main engine charges into the hierarchical
	// cycle account, and register the engine's total so bench tests can
	// assert the profile reconciles (attributed == simulated).
	k.attachEngine(k.Engine)
	tr := o.Trace
	if tr != nil {
		tr.CyclesPerUsec = float64(cost.CyclesPerUsec)
	}
	k.Cpus.Trace = tr
	if k.Dax != nil {
		k.Dax.Trace = tr
	}
	if f, ok := k.FS.(*ext4FS); ok {
		f.FS.Journal().Trace = tr
	}
	if o.Reg == nil {
		return
	}
	k.walkHist = o.Reg.Histogram("cpu.walk_latency")
	k.faultHist = o.Reg.Histogram("mm.fault_latency")
	for _, c := range k.Cpus.Cores {
		c.WalkHist = k.walkHist
	}
	k.registerCounters(o.Reg)
}

// sumCores builds a reader summing a per-core quantity at snapshot time.
func (k *Kernel) sumCores(f func(*cpu.Core) uint64) func() uint64 {
	return func() uint64 {
		var s uint64
		for _, c := range k.Cpus.Cores {
			s += f(c)
		}
		return s
	}
}

// sumProcs builds a reader summing a per-process quantity. The closure
// walks k.procs live, so processes created after registration count too.
func (k *Kernel) sumProcs(f func(*Proc) uint64) func() uint64 {
	return func() uint64 {
		var s uint64
		for _, p := range k.procs {
			s += f(p)
		}
		return s
	}
}

// registerCounters exposes every legacy Stats struct under the metrics
// registry. Registration is boot-time work; the hot paths keep bumping
// their plain struct fields and the closures read them at snapshot time.
func (k *Kernel) registerCounters(r *obs.Registry) {
	// tlb.*: translation caching, summed over cores.
	r.Counter("tlb.hits", k.sumCores(func(c *cpu.Core) uint64 { return c.TLB.Stats.Hits }))
	r.Counter("tlb.misses", k.sumCores(func(c *cpu.Core) uint64 { return c.TLB.Stats.Misses }))
	r.Counter("tlb.full_flushes", k.sumCores(func(c *cpu.Core) uint64 { return c.TLB.Stats.FullFlush }))
	r.Counter("tlb.page_invals", k.sumCores(func(c *cpu.Core) uint64 { return c.TLB.Stats.PageInval }))
	r.Counter("tlb.insertions", k.sumCores(func(c *cpu.Core) uint64 { return c.TLB.Stats.Insertions }))
	r.Counter("tlb.shootdowns", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.IPIsSent }))

	// cpu.*: MMU and IPI behaviour, summed over cores.
	r.Counter("cpu.walks", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.Walks }))
	r.Counter("cpu.walk_cycles", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.WalkCycles }))
	r.Counter("cpu.pmem_walks", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.PMemWalks }))
	r.Counter("cpu.faults", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.Faults }))
	r.Counter("cpu.ipis_sent", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.IPIsSent }))
	r.Counter("cpu.ipis_received", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.IPIsReceived }))
	r.Counter("cpu.shootdown_wait_cycles", k.sumCores(func(c *cpu.Core) uint64 { return c.Stats.ShootdownWait }))

	// mm.*: the baseline VM paths, summed over processes.
	r.Counter("mm.mmaps", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.Mmaps }))
	r.Counter("mm.munmaps", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.Munmaps }))
	r.Counter("mm.minor_faults", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.MinorFaults }))
	r.Counter("mm.huge_faults", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.HugeFaults }))
	r.Counter("mm.wp_faults", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.WPFaults }))
	r.Counter("mm.spurious_wp", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.SpuriousWP }))
	r.Counter("mm.meta_syncs", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.MetaSyncs }))
	r.Counter("mm.pages_mapped", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.PagesMapped }))
	r.Counter("mm.pages_cleared", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.PagesCleared }))
	r.Counter("mm.shootdowns", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.Shootdowns }))
	r.Counter("mm.full_flushes", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.FullFlushes }))
	r.Counter("mm.msync_pages", k.sumProcs(func(p *Proc) uint64 { return p.MM.Stats.MsyncPages }))

	// mm.lock.*: mmap_sem writer side; mm.lock.read.*: reader side.
	r.Counter("mm.lock.acquisitions", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.Stats.Acquisitions }))
	r.Counter("mm.lock.contended", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.Stats.Contended }))
	r.Counter("mm.lock.wait_cycles", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.Stats.WaitCycles }))
	r.Counter("mm.lock.hold_cycles", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.Stats.HoldCycles }))
	r.Counter("mm.lock.read.acquisitions", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.ReaderStats.Acquisitions }))
	r.Counter("mm.lock.read.contended", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.ReaderStats.Contended }))
	r.Counter("mm.lock.read.wait_cycles", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.ReaderStats.WaitCycles }))
	r.Counter("mm.lock.read.hold_cycles", k.sumProcs(func(p *Proc) uint64 { return p.MM.Sem.ReaderStats.HoldCycles }))

	// File systems: only the mounted one registers.
	switch f := k.FS.(type) {
	case *ext4FS:
		fs := f.FS
		r.Counter("ext4.creates", func() uint64 { return fs.Stats.Creates })
		r.Counter("ext4.unlinks", func() uint64 { return fs.Stats.Unlinks })
		r.Counter("ext4.appends", func() uint64 { return fs.Stats.Appends })
		r.Counter("ext4.zeroed_blocks", func() uint64 { return fs.Stats.ZeroedBlocks })
		r.Counter("ext4.skipped_zero", func() uint64 { return fs.Stats.SkippedZero })
		r.Counter("ext4.meta_syncs", func() uint64 { return fs.Stats.MetaSyncs })
		j := fs.Journal()
		r.Counter("ext4.journal.begins", func() uint64 { return j.Stats.Begins })
		r.Counter("ext4.journal.commits", func() uint64 { return j.Stats.Commits })
		r.Counter("ext4.journal.blocks", func() uint64 { return j.Stats.Blocks })
	case *novaFS:
		fs := f.FS
		r.Counter("nova.log_appends", func() uint64 { return fs.Stats.LogAppends })
		r.Counter("nova.zeroed_blocks", func() uint64 { return fs.Stats.ZeroedBlocks })
		r.Counter("nova.skipped_zero", func() uint64 { return fs.Stats.SkippedZero })
	}

	ic := k.ICache
	r.Counter("icache.hits", func() uint64 { return ic.Stats.Hits })
	r.Counter("icache.cold_loads", func() uint64 { return ic.Stats.ColdLoads })
	r.Counter("icache.evictions", func() uint64 { return ic.Stats.Evictions })

	dev := k.Dev
	r.Counter("pmem.bytes_read", func() uint64 { return dev.Stats.BytesRead })
	r.Counter("pmem.bytes_written", func() uint64 { return dev.Stats.BytesWritten })
	r.Counter("pmem.bytes_zeroed", func() uint64 { return dev.Stats.BytesZeroed })
	r.Counter("pmem.nt_stores", func() uint64 { return dev.Stats.NTStores })
	r.Counter("pmem.cached_stores", func() uint64 { return dev.Stats.CachedStores })
	r.Counter("pmem.clwbs", func() uint64 { return dev.Stats.Clwbs })
	r.Counter("pmem.fences", func() uint64 { return dev.Stats.Fences })
	r.Counter("pmem.throttle_stall_cycles", func() uint64 { return dev.Stats.ThrottleStall })
	r.Counter("pmem.bw.busy_cycles", func() uint64 { return dev.Stats.BusyCycles })

	// Per-node breakdowns: only on multi-node machines, so single-node
	// snapshots stay byte-identical to the flat model's.
	if k.Topo.Multi() {
		for i := 0; i < dev.NodeCount(); i++ {
			ns := dev.NodeStats(i)
			pfx := fmt.Sprintf("pmem.node%d.", i)
			r.Counter(pfx+"bytes_read", func() uint64 { return ns.BytesRead })
			r.Counter(pfx+"bytes_written", func() uint64 { return ns.BytesWritten })
			r.Counter(pfx+"bytes_zeroed", func() uint64 { return ns.BytesZeroed })
			r.Counter(pfx+"nt_stores", func() uint64 { return ns.NTStores })
			r.Counter(pfx+"throttle_stall_cycles", func() uint64 { return ns.ThrottleStall })
			r.Counter(pfx+"bw.busy_cycles", func() uint64 { return ns.BusyCycles })
		}
		for i := 0; i < k.Pool.NodeCount(); i++ {
			node := i
			r.Counter(fmt.Sprintf("dram.node%d.used_bytes", i), func() uint64 { return k.Pool.UsedOn(node) })
		}
	}

	pool := k.Pool
	r.Counter("dram.allocs", func() uint64 { return pool.Stats.Allocs })
	r.Counter("dram.frees", func() uint64 { return pool.Stats.Frees })
	// Gauges: snapshot deltas clamp at zero when they shrink.
	r.Counter("dram.used_bytes", func() uint64 { return pool.Used() })
	r.Counter("dram.peak_bytes", func() uint64 { return pool.Peak() })

	if d := k.Dax; d != nil {
		r.Counter("core.attach_ops", func() uint64 { return d.Stats.AttachOps })
		r.Counter("core.detach_ops", func() uint64 { return d.Stats.DetachOps })
		r.Counter("core.attached_chunks", func() uint64 { return d.Stats.AttachedChunks })
		r.Counter("core.cold_builds", func() uint64 { return d.Stats.ColdBuilds })
		r.Counter("core.upgrades", func() uint64 { return d.Stats.Upgrades })
		r.Counter("core.wp_faults_2m", func() uint64 { return d.Stats.WPFaults2M })
		r.Counter("core.meta_syncs", func() uint64 { return d.Stats.MetaSyncs })
		r.Counter("core.zombie_batches", func() uint64 { return d.Stats.ZombieBatches })
		r.Counter("core.zombie_pages", func() uint64 { return d.Stats.ZombiePages })
		r.Counter("core.forced_unmaps", func() uint64 { return d.Stats.ForcedUnmaps })
		r.Counter("core.migrations", func() uint64 { return d.Stats.Migrations })
		r.Counter("core.pmem_table_bytes", func() uint64 { return d.Stats.PMemTableBytes })
		r.Counter("core.dram_table_bytes", func() uint64 { return d.Stats.DRAMTableBytes })
		r.Counter("core.prezeroed_mb", func() uint64 { return d.Stats.PrezeroedMB })
		r.Counter("core.prezero.intercepted", func() uint64 {
			if pz := d.Prezero(); pz != nil {
				return pz.Stats.Intercepted
			}
			return 0
		})
		r.Counter("core.prezero.zeroed", func() uint64 {
			if pz := d.Prezero(); pz != nil {
				return pz.Stats.Zeroed
			}
			return 0
		})
		r.Counter("core.prezero.stalls", func() uint64 {
			if pz := d.Prezero(); pz != nil {
				return pz.Stats.Stalls
			}
			return 0
		})
		r.Counter("core.prezero.batches", func() uint64 {
			if pz := d.Prezero(); pz != nil {
				return pz.Stats.Batches
			}
			return 0
		})
		r.Counter("core.monitor.samples", func() uint64 {
			var s uint64
			for _, m := range k.monitors {
				s += m.Stats.Samples
			}
			return s
		})
		r.Counter("core.monitor.triggers", func() uint64 {
			var s uint64
			for _, m := range k.monitors {
				s += m.Stats.Triggers
			}
			return s
		})
	}
}

// --- saturation gauges -------------------------------------------------------
//
// Gauge readers are named methods (not closures) on purpose: the simlint
// hotalloc analyzer roots them by name, proving the per-sample path never
// allocates. Every reader is a pure snapshot — no charges, no simulated
// state mutation — so a run with gauges attached produces bit-identical
// metrics to one without.

// gaugeRunQueue sums runnable-thread counts over every engine this kernel
// attached; finished engines report zero.
func (k *Kernel) gaugeRunQueue(now uint64) uint64 {
	var s uint64
	for _, e := range k.engines {
		s += uint64(e.ReadyDepth())
	}
	return s
}

// gaugeMmapSemQueue sums mmap_sem waiter counts over live processes.
func (k *Kernel) gaugeMmapSemQueue(now uint64) uint64 {
	var s uint64
	for _, p := range k.procs {
		s += uint64(p.MM.Sem.WaitQueueDepth())
	}
	return s
}

// gaugeInflightIPIs reads the shootdown machinery's in-flight IPI window.
func (k *Kernel) gaugeInflightIPIs(now uint64) uint64 {
	return k.Cpus.InflightIPIs(now)
}

// gaugePMemBacklog sums queued transfer cycles over every PMem bank.
func (k *Kernel) gaugePMemBacklog(now uint64) uint64 {
	var s uint64
	for i := 0; i < k.Dev.NodeCount(); i++ {
		s += k.Dev.BacklogOn(i, now)
	}
	return s
}

// gaugeDramOccupancy reads pool fill in tenths of a percent.
func (k *Kernel) gaugeDramOccupancy(now uint64) uint64 {
	return k.Pool.OccupancyPerMille()
}

// gaugeJournalQueue reads the ext4 journal commit-lock queue depth.
func (k *Kernel) gaugeJournalQueue(now uint64) uint64 {
	f, ok := k.FS.(*ext4FS)
	if !ok {
		return 0
	}
	return uint64(f.FS.Journal().WaitQueueDepth())
}

// nodeGauge binds a per-node gauge reader to its node index; methods on a
// named type keep the readers visible to the hotalloc analyzer.
type nodeGauge struct {
	k    *Kernel
	node int
}

func (g nodeGauge) pmemBacklog(now uint64) uint64 { return g.k.Dev.BacklogOn(g.node, now) }

func (g nodeGauge) dramOccupancy(now uint64) uint64 { return g.k.Pool.OccupancyOnPerMille(g.node) }

// registerGauges wires every contended resource's saturation gauge onto
// the timeline sampler. Names are the contract the bottleneck analyzer
// (internal/obs/bottleneck) resolves; per-node tracks register only on
// multi-node machines so single-node exports stay byte-identical to the
// flat model's. Re-registration on a shared timeline replaces readers,
// matching registerCounters.
func (k *Kernel) registerGauges(tl *timeline.Timeline) {
	tl.Gauge("rq.depth", k.gaugeRunQueue)
	tl.Gauge("mmap_sem.queue", k.gaugeMmapSemQueue)
	tl.Gauge("tlb.inflight_ipis", k.gaugeInflightIPIs)
	tl.Gauge("pmem.bw.backlog", k.gaugePMemBacklog)
	tl.Gauge("dram.occupancy", k.gaugeDramOccupancy)
	if _, ok := k.FS.(*ext4FS); ok {
		tl.Gauge("ext4.journal.queue", k.gaugeJournalQueue)
	}
	if k.Topo.Multi() {
		for i := 0; i < k.Dev.NodeCount(); i++ {
			g := nodeGauge{k, i}
			tl.Gauge(fmt.Sprintf("pmem.node%d.bw.backlog", i), g.pmemBacklog)
		}
		for i := 0; i < k.Pool.NodeCount(); i++ {
			g := nodeGauge{k, i}
			tl.Gauge(fmt.Sprintf("dram.node%d.occupancy", i), g.dramOccupancy)
		}
	}
}
