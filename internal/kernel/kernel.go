// Package kernel assembles the simulated machine: PMem device, cores,
// DRAM pool, a mounted file system (ext4-DAX or NOVA, optionally aged),
// the DaxVM extension, processes with their memory managers, and a
// POSIX-ish system-call surface that charges user/kernel crossing costs.
package kernel

import (
	"fmt"

	"daxvm/internal/core"
	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/dram"
	"daxvm/internal/fs/agefs"
	"daxvm/internal/fs/alloc"
	"daxvm/internal/fs/ext4"
	"daxvm/internal/fs/nova"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/obs"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
)

// FSKind selects the file-system model.
type FSKind string

const (
	// Ext4 is ext4-DAX (the paper's default).
	Ext4 FSKind = "ext4-dax"
	// Nova is NOVA in relaxed mode.
	Nova FSKind = "nova"
)

// Config describes the machine.
type Config struct {
	// Cores is the number of hardware threads (the paper's socket has 16).
	Cores int
	// Nodes is the number of NUMA nodes (sockets). Default 1 keeps the
	// flat single-node machine; >1 splits DRAM, PMem DIMMs and cores
	// evenly across nodes.
	Nodes int
	// CoresPerNode overrides the contiguous-block core->node split
	// (default Cores/Nodes).
	CoresPerNode int
	// Placement is the default page/table placement policy for processes:
	// "", "local", "interleave" or "bind:<n>".
	Placement string
	// MountPlacement steers the file system's block allocator and
	// DaxVM's table placement (same syntax as Placement).
	MountPlacement string
	// DeviceBytes is PMem capacity (default 4 GiB).
	DeviceBytes uint64
	// DRAMBytes is volatile capacity (default 8 GiB).
	DRAMBytes uint64
	// FS picks the file-system model (default ext4-DAX).
	FS FSKind
	// Age runs Geriatrix-style churn at boot.
	Age bool
	// AgeConfig overrides the default aging recipe.
	AgeConfig *agefs.Config
	// DaxVM enables the DaxVM extension.
	DaxVM bool
	// DaxVMConfig tunes it.
	DaxVMConfig core.Config
	// Prezero starts the asynchronous block pre-zeroing daemon
	// (requires DaxVM).
	Prezero bool
	// Monitor starts the MMU performance monitor per process.
	Monitor bool
	// ICacheCapacity bounds the inode cache (default 64k).
	ICacheCapacity int
	// TrackPersistence enables crash simulation.
	TrackPersistence bool
	// HugePages toggles baseline DAX huge-page support (default on).
	HugePagesOff bool
	// Obs, when set, receives every subsystem's counters, latency
	// histograms and trace events. May be shared across sequentially
	// booted kernels (counter readers are re-registered; the trace ring
	// accumulates).
	Obs *obs.Obs
	// Timeline, when set, rides a zero-cost sampler daemon on every
	// engine this kernel runs (aging, setup, measured) and brackets each
	// run with a flush, so per-interval cycle deltas reconcile exactly
	// against the engines' TotalCharged. Shared across sequentially
	// booted kernels the same way Obs is.
	Timeline *timeline.Timeline
	// Spans, when set, opens a causal span per top-level operation
	// (syscalls, faults, data-path accesses, journal commits, NOVA log
	// appends, TLB shootdowns) on every engine this kernel runs, with
	// typed wait kinds and self-time that reconciles exactly against
	// the cycle account. Shared across sequentially booted kernels the
	// same way Obs is.
	Spans *span.Collector
	// Sched selects the virtual-time scheduler: SchedSeq (default) is
	// the sequential reference, SchedShard the sharded scheduler that
	// offloads observability to host workers. Artifacts are
	// byte-identical either way (enforced by make sched-gate).
	Sched string
	// Shards is the shard count for SchedShard (default min(4, Cores)).
	Shards int
}

// Scheduler selector values for Config.Sched.
const (
	SchedSeq   = "seq"
	SchedShard = "shard"
)

// newEngine builds a virtual-time engine per the config's scheduler
// selection. Every engine a kernel runs (aging, setup, measured) goes
// through here so a -sched choice applies to the whole boot.
func (c Config) newEngine() *sim.Engine {
	if c.Sched == SchedShard {
		return sim.NewSharded(c.Shards, c.Cores)
	}
	return sim.New()
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.DeviceBytes == 0 {
		c.DeviceBytes = 4 << 30
	}
	if c.DRAMBytes == 0 {
		c.DRAMBytes = 8 << 30
	}
	if c.FS == "" {
		c.FS = Ext4
	}
	if c.ICacheCapacity == 0 {
		c.ICacheCapacity = 1 << 16
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = c.Cores / c.Nodes
		if c.CoresPerNode == 0 {
			c.CoresPerNode = 1
		}
	}
	if c.Sched == "" {
		c.Sched = SchedSeq
	}
	if c.Shards == 0 {
		// Deterministic default — never derived from the host (a
		// host-core-count default would make artifact bytes depend on
		// the machine if shard count ever leaked into behaviour; it
		// must not, but the default should not tempt fate either).
		c.Shards = 4
		if c.Cores < 4 {
			c.Shards = c.Cores
		}
	}
	return c
}

// MountedFS is the common surface of both FS models.
type MountedFS interface {
	vfs.FS
	SetAgingMode(on bool)
	SetHooks(h *vfs.Hooks)
	SetTrustZeroed(on bool)
}

// Kernel is the booted machine.
type Kernel struct {
	Cfg    Config
	Engine *sim.Engine
	Topo   *topo.Topology
	Dev    *pmem.Device
	Cpus   *cpu.Set
	Pool   *dram.Pool
	FS     MountedFS
	ICache *vfs.ICache
	Dax    *core.DaxVM
	Obs    *obs.Obs

	AgeReport agefs.Report

	procs     []*Proc
	monitors  []*core.Monitor
	placement topo.Policy   // default per-process policy
	engines   []*sim.Engine // every engine this kernel attached (main + aging + setup), for run-queue gauges

	// shared latency histograms (registered once, fed by every core/proc)
	walkHist  *obs.Histogram
	faultHist *obs.Histogram
}

// Boot builds the machine, formats (and optionally ages) the image, and
// wires DaxVM.
func Boot(cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	tp := topo.New(cfg.Nodes, cfg.CoresPerNode)
	k := &Kernel{
		Cfg:    cfg,
		Engine: cfg.newEngine(),
		Topo:   tp,
		Dev:    pmem.New(pmem.Config{Size: cfg.DeviceBytes, TrackPersistence: cfg.TrackPersistence, Topo: tp}),
		Cpus:   cpu.NewSet(cfg.Cores),
		Pool:   dram.NewNUMA(cfg.DRAMBytes, tp),
	}
	k.Cpus.SetTopology(tp)
	k.placement = topo.MustParsePolicy(cfg.Placement)
	k.Cpus.Spans = cfg.Spans

	switch cfg.FS {
	case Nova:
		f := nova.Mkfs(nova.Config{Dev: k.Dev})
		f.Spans = cfg.Spans
		k.FS = &novaFS{f}
	default:
		f := ext4.Mkfs(ext4.Config{Dev: k.Dev, JournalBytes: 128 << 20})
		f.Journal().SetSpans(cfg.Spans)
		k.FS = &ext4FS{f}
	}

	if tp.Multi() {
		mp := topo.MustParsePolicy(cfg.MountPlacement)
		a := k.allocator()
		a.SetPlacement(tp, mp, a.TotalBlocks()/uint64(tp.Nodes()))
	}

	var hooks *vfs.Hooks
	if cfg.DaxVM {
		k.Dax = core.New(cfg.DaxVMConfig, k.Dev, k.Pool, k.Cpus, k.allocator(), k.releaser())
		if tp.Multi() {
			k.Dax.SetPlacement(topo.MustParsePolicy(cfg.MountPlacement))
		}
		hooks = k.Dax.Hooks(cfg.Prezero)
		k.FS.SetHooks(hooks)
		if cfg.Prezero {
			k.Dax.StartPrezero(k.Engine, cfg.Cores-1)
			k.FS.SetTrustZeroed(true)
		}
	}
	k.ICache = vfs.NewICache(k.FS, cfg.ICacheCapacity, hooks)

	if cfg.Obs != nil {
		k.wireObs(cfg.Obs)
	} else {
		// No hub, but a timeline sampler may still ride the main engine.
		k.attachEngine(k.Engine)
	}
	if cfg.Timeline != nil {
		k.registerGauges(cfg.Timeline)
	}

	if cfg.Age {
		ac := agefs.DefaultConfig()
		if cfg.AgeConfig != nil {
			ac = *cfg.AgeConfig
		}
		setup := cfg.newEngine()
		k.attachEngine(setup)
		setup.Go("ager", 0, 0, func(t *sim.Thread) {
			t.PushAttr("setup.age")
			rep, err := agefs.Age(t, agingSurface{k.FS}, ac)
			if err != nil {
				panic(err)
			}
			k.AgeReport = rep
		})
		k.runEngine("age", setup)
		k.Dev.ResetTiming()
	}
	return k
}

// Setup runs fn on a dedicated setup engine thread (corpus creation etc.)
// and resets device timing afterwards so measurement starts clean. Setup
// work books under the "setup" attribution root, and the ephemeral engine
// registers with the hub so attributed cycles still reconcile.
func (k *Kernel) Setup(fn func(t *sim.Thread)) {
	e := k.Cfg.newEngine()
	k.attachEngine(e)
	e.Go("setup", 0, 0, func(t *sim.Thread) {
		t.PushAttr("setup")
		fn(t)
	})
	k.runEngine("setup", e)
	k.Dev.ResetTiming()
}

// attachEngine routes an auxiliary engine's charges into the hub's cycle
// account, registers its totals for reconciliation and speed telemetry,
// and rides the timeline sampler daemon on it.
func (k *Kernel) attachEngine(e *sim.Engine) {
	k.engines = append(k.engines, e)
	if k.Obs != nil && k.Obs.Cycles != nil {
		e.SetChargeSink(k.Obs.Cycles.Charge)
		// Bulk form for the sharded scheduler's workers; the sequential
		// scheduler ignores it and calls the plain sink per charge.
		e.SetChargeBulkSink(k.Obs.Cycles.ChargeN)
		k.Obs.AddEngineTotal(e.TotalCharged)
		k.Obs.AddEngineEvents(e.Events)
	}
	if sp := k.Cfg.Spans; sp != nil {
		e.SetChargeObserver(sp.Observe)
		e.SetObsApplier(sp.Apply)
	}
	if tl := k.Cfg.Timeline; tl != nil {
		e.GoSampler("timeline", 0, tl.NextWake, tl.Sample)
	}
}

// runEngine runs an engine bracketed by a timeline flush so the tail
// interval (and the run's span mark) lands before the next run starts.
func (k *Kernel) runEngine(label string, e *sim.Engine) uint64 {
	end := e.Run()
	if tl := k.Cfg.Timeline; tl != nil {
		tl.FlushRun(label, end)
	}
	return end
}

// Run executes the main engine until all spawned workload threads finish,
// returning the final virtual time in cycles.
func (k *Kernel) Run() uint64 { return k.runEngine("run", k.Engine) }

// allocator exposes the data-block allocator for DaxVM metadata.
func (k *Kernel) allocator() *alloc.Allocator {
	switch f := k.FS.(type) {
	case *ext4FS:
		return f.FS.Allocator()
	case *novaFS:
		return f.FS.Allocator()
	}
	panic("kernel: unknown FS")
}

func (k *Kernel) releaser() core.ZeroReleaser {
	switch f := k.FS.(type) {
	case *ext4FS:
		return f.FS
	case *novaFS:
		return f.FS
	}
	panic("kernel: unknown FS")
}

// Proc is a simulated process.
type Proc struct {
	K   *Kernel
	MM  *mm.MM
	Dax *core.Proc

	fds    map[int]*FileDesc
	nextFD int
}

// FileDesc is an open file description.
type FileDesc struct {
	In  *vfs.Inode
	Pos uint64
}

// NewProc creates a process able to run on every core of the machine.
func (k *Kernel) NewProc() *Proc {
	p := &Proc{K: k, fds: make(map[int]*FileDesc), nextFD: 3}
	p.MM = mm.New(k.Pool, k.FS, k.Cpus)
	if k.Topo.Multi() {
		p.MM.SetPlacement(k.placement)
	}
	if k.Cfg.HugePagesOff {
		p.MM.HugePagesEnabled = false
	}
	for _, c := range k.Cpus.Cores {
		p.MM.RunOn(c)
	}
	if k.Dax != nil {
		p.Dax = k.Dax.NewProc(p.MM)
		if k.Cfg.Monitor {
			k.monitors = append(k.monitors, core.NewMonitor(p.Dax, k.Engine, 0))
		}
	}
	if k.Obs != nil {
		p.MM.Trace = k.Obs.Trace
		p.MM.FaultHist = k.faultHist
	}
	p.MM.Spans = k.Cfg.Spans
	if k.Obs != nil || k.Cfg.Spans != nil {
		tr := p.MM.Trace
		sp := k.Cfg.Spans
		p.MM.Sem.OnContended = func(t *sim.Thread, kind string, waitStart, blocked uint64) {
			// Precomposed tags: this closure runs on the contended fault
			// path, where a concat would allocate per event.
			tag := "mmap_sem/read"
			if kind == "write" {
				tag = "mmap_sem/write"
			}
			tr.Emit(obs.EvLockContention, t.Core, waitStart, t.Now()-waitStart, tag, 0)
			sp.Wait(t, span.WaitMmapSem, blocked)
		}
	}
	k.procs = append(k.procs, p)
	return p
}

// Spawn starts a workload thread of this process pinned to a core. All of
// the thread's work books under the "app" attribution root.
func (p *Proc) Spawn(name string, coreID int, start uint64, fn func(t *sim.Thread, c *cpu.Core)) {
	c := p.K.Cpus.Cores[coreID]
	p.K.Engine.Go(name, coreID, start, func(t *sim.Thread) {
		t.PushAttr("app")
		c.Bind(t)
		fn(t, c)
	})
}

// --- system calls -----------------------------------------------------------

// sysEnter opens the syscall's attribution frame and span ("syscall.<name>",
// nested under the thread's current path) and charges the entry crossing;
// the returned func charges the exit crossing and closes both. Use as
// `defer p.sysEnter(t, "open")()`.
func (p *Proc) sysEnter(t *sim.Thread, name string) func() {
	cls := "syscall." + name
	t.PushAttr(cls)
	sp := p.K.Cfg.Spans
	sp.Begin(t, cls)
	t.Charge(cost.UserKernelCrossing + cost.SyscallDispatch)
	return func() {
		t.Charge(cost.UserKernelCrossing)
		sp.End(t)
		t.PopAttr()
	}
}

// Open opens an existing file.
func (p *Proc) Open(t *sim.Thread, path string) (int, error) {
	defer p.sysEnter(t, "open")()
	t.Charge(cost.OpenPath)
	in, err := p.K.ICache.Open(t, path)
	if err != nil {
		return -1, err
	}
	t.Charge(cost.FDTableOp)
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &FileDesc{In: in}
	return fd, nil
}

// Create makes and opens a new file.
func (p *Proc) Create(t *sim.Thread, path string) (int, error) {
	defer p.sysEnter(t, "create")()
	t.Charge(cost.OpenPath)
	in, err := p.K.ICache.Create(t, path)
	if err != nil {
		return -1, err
	}
	t.Charge(cost.FDTableOp)
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &FileDesc{In: in}
	return fd, nil
}

// Close drops the descriptor.
func (p *Proc) Close(t *sim.Thread, fd int) error {
	defer p.sysEnter(t, "close")()
	t.Charge(cost.CloseFixed)
	f, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("kernel: bad fd %d", fd)
	}
	delete(p.fds, fd)
	p.K.ICache.Put(t, f.In)
	return nil
}

// Inode returns the inode behind fd (workload plumbing).
func (p *Proc) Inode(fd int) *vfs.Inode { return p.fds[fd].In }

// Read reads from the current position.
func (p *Proc) Read(t *sim.Thread, fd int, buf []byte) (uint64, error) {
	defer p.sysEnter(t, "read")()
	t.Charge(cost.ReadWriteFixed)
	f, ok := p.fds[fd]
	if !ok {
		return 0, fmt.Errorf("kernel: bad fd %d", fd)
	}
	n, err := p.K.FS.ReadAt(t, f.In, f.Pos, buf)
	f.Pos += n
	return n, err
}

// ReadAt reads at an absolute offset.
func (p *Proc) ReadAt(t *sim.Thread, fd int, off uint64, buf []byte) (uint64, error) {
	defer p.sysEnter(t, "pread")()
	t.Charge(cost.ReadWriteFixed)
	f, ok := p.fds[fd]
	if !ok {
		return 0, fmt.Errorf("kernel: bad fd %d", fd)
	}
	return p.K.FS.ReadAt(t, f.In, off, buf)
}

// Append writes at end of file.
func (p *Proc) Append(t *sim.Thread, fd int, data []byte) error {
	defer p.sysEnter(t, "append")()
	t.Charge(cost.ReadWriteFixed)
	f, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("kernel: bad fd %d", fd)
	}
	return p.K.FS.Append(t, f.In, data)
}

// WriteAt overwrites existing bytes.
func (p *Proc) WriteAt(t *sim.Thread, fd int, off uint64, data []byte) error {
	defer p.sysEnter(t, "pwrite")()
	t.Charge(cost.ReadWriteFixed)
	f, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("kernel: bad fd %d", fd)
	}
	return p.K.FS.WriteAt(t, f.In, off, data)
}

// Fallocate reserves blocks.
func (p *Proc) Fallocate(t *sim.Thread, fd int, off, n uint64) error {
	defer p.sysEnter(t, "fallocate")()
	f, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("kernel: bad fd %d", fd)
	}
	return p.K.FS.Fallocate(t, f.In, off, n)
}

// Ftruncate resizes.
func (p *Proc) Ftruncate(t *sim.Thread, fd int, size uint64) error {
	defer p.sysEnter(t, "ftruncate")()
	f, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("kernel: bad fd %d", fd)
	}
	return p.K.FS.Truncate(t, f.In, size)
}

// Fsync commits the file.
func (p *Proc) Fsync(t *sim.Thread, fd int) error {
	defer p.sysEnter(t, "fsync")()
	f, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("kernel: bad fd %d", fd)
	}
	p.K.FS.Fsync(t, f.In)
	return nil
}

// Unlink removes a file.
func (p *Proc) Unlink(t *sim.Thread, path string) error {
	defer p.sysEnter(t, "unlink")()
	ino, err := p.K.FS.LookupPath(t, path)
	if err != nil {
		return err
	}
	if err := p.K.FS.Unlink(t, path); err != nil {
		return err
	}
	if in, ok := p.K.ICache.Get(ino); ok {
		in.Deleted = true
		if in.Refs == 0 {
			// Nothing holds it: reclaim now via a ref cycle.
			in.Refs = 1
			p.K.ICache.Put(t, in)
		}
	}
	return nil
}

// Mmap is the POSIX mmap(2) path.
func (p *Proc) Mmap(t *sim.Thread, c *cpu.Core, fd int, off, length uint64, perm mem.Perm, flags mm.MapFlags) (mem.VirtAddr, error) {
	defer p.sysEnter(t, "mmap")()
	f, ok := p.fds[fd]
	if !ok {
		return 0, fmt.Errorf("kernel: bad fd %d", fd)
	}
	f.In.Refs++ // the mapping holds the inode
	va, err := p.MM.Mmap(t, c, f.In, off, length, perm, flags)
	if err != nil {
		f.In.Refs--
	}
	return va, err
}

// Munmap is munmap(2).
func (p *Proc) Munmap(t *sim.Thread, c *cpu.Core, va mem.VirtAddr, length uint64) error {
	defer p.sysEnter(t, "munmap")()
	// Identify the inode to drop the mapping reference.
	p.MM.Sem.RLock(t, 0)
	v := p.MM.FindVMA(t, va)
	p.MM.Sem.RUnlock(t, 0)
	err := p.MM.Munmap(t, c, va, length)
	if err == nil && v != nil && v.Inode != nil {
		p.K.ICache.Put(t, v.Inode)
	}
	return err
}

// Msync is msync(2).
func (p *Proc) Msync(t *sim.Thread, c *cpu.Core, va mem.VirtAddr, length uint64) error {
	defer p.sysEnter(t, "msync")()
	return p.MM.Msync(t, c, va, length)
}

// Mprotect is mprotect(2).
func (p *Proc) Mprotect(t *sim.Thread, c *cpu.Core, va mem.VirtAddr, length uint64, perm mem.Perm) error {
	defer p.sysEnter(t, "mprotect")()
	if p.Dax != nil {
		p.MM.Sem.RLock(t, 0)
		v := p.MM.FindVMA(t, va)
		p.MM.Sem.RUnlock(t, 0)
		if v != nil && v.DaxVM {
			return p.Dax.Mprotect(t, c, va, length, perm)
		}
	}
	return p.MM.Mprotect(t, c, va, length, perm)
}

// DaxvmMmap is daxvm_mmap(2).
func (p *Proc) DaxvmMmap(t *sim.Thread, c *cpu.Core, fd int, off, length uint64, perm mem.Perm, flags core.Flags) (mem.VirtAddr, error) {
	defer p.sysEnter(t, "daxvm_mmap")()
	if p.Dax == nil {
		return 0, fmt.Errorf("kernel: DaxVM not enabled")
	}
	f, ok := p.fds[fd]
	if !ok {
		return 0, fmt.Errorf("kernel: bad fd %d", fd)
	}
	f.In.Refs++
	va, err := p.Dax.Mmap(t, c, f.In, off, length, perm, flags)
	if err != nil {
		f.In.Refs--
	}
	return va, err
}

// DaxvmMunmap is daxvm_munmap(2).
func (p *Proc) DaxvmMunmap(t *sim.Thread, c *cpu.Core, va mem.VirtAddr) error {
	defer p.sysEnter(t, "daxvm_munmap")()
	p.MM.Sem.RLock(t, 0)
	v := p.MM.FindVMA(t, va)
	p.MM.Sem.RUnlock(t, 0)
	err := p.Dax.Munmap(t, c, va)
	if err == nil && v != nil && v.Inode != nil {
		p.K.ICache.Put(t, v.Inode)
	}
	return err
}

// --- user-space access helpers ----------------------------------------------

// AccessKind selects the data-cost model for touching mapped memory.
type AccessKind uint8

const (
	// KindSum: streaming 8-byte reads straight from PMem (checksum, text
	// search).
	KindSum AccessKind = iota
	// KindCopyOut: memcpy from PMem into a DRAM buffer/socket (AVX).
	KindCopyOut
	// KindNTWrite: non-temporal stores to PMem (user-managed
	// durability).
	KindNTWrite
	// KindCachedWrite: regular stores (kernel-synced durability).
	KindCachedWrite
)

func (k AccessKind) perPage() uint64 {
	switch k {
	case KindCopyOut:
		return cost.UserCopyPMemPerPage
	case KindNTWrite:
		return cost.NTStorePMemPerPage
	case KindCachedWrite:
		return cost.CacheHitLatency * 64
	default:
		return cost.UserLoadPMemPerPage
	}
}

func (k AccessKind) isWrite() bool { return k == KindNTWrite || k == KindCachedWrite }

// AccessMapped touches [va, va+n) from user space with the kind's data
// cost: translation, faults, payload cycles AND shared device-channel
// occupancy (DAX loads/stores cross the DIMM channel even without a
// kernel copy).
func (p *Proc) AccessMapped(t *sim.Thread, c *cpu.Core, va mem.VirtAddr, n uint64, kind AccessKind) error {
	t.PushAttr("access")
	defer t.PopAttr()
	sp := p.K.Cfg.Spans
	sp.Begin(t, "access")
	defer sp.End(t)
	if err := p.MM.Access(t, c, va, n, kind.isWrite(), kind.perPage()); err != nil {
		return err
	}
	dev := p.K.Dev
	multi := dev.NodeCount() > 1
	var off uint64
	for rem := n; rem > 0; {
		chunk := rem
		if chunk > 64<<10 {
			chunk = 64 << 10
		}
		if multi {
			// Route channel occupancy to the bank actually backing this
			// chunk, so remote traffic contends on the remote node's DIMMs.
			node, ok := p.MM.NodeOfMapped(va + mem.VirtAddr(off))
			if !ok {
				node = 0
			}
			if kind.isWrite() {
				dev.BWWriteOn(t, node, chunk)
			} else {
				dev.BWReadOn(t, node, chunk)
			}
		} else if kind.isWrite() {
			dev.BWWrite(t, chunk)
		} else {
			dev.BWRead(t, chunk)
		}
		rem -= chunk
		off += chunk
	}
	return nil
}

// ConsumeBuffer models user code scanning an n-byte DRAM buffer it just
// read() (hot in cache).
func ConsumeBuffer(t *sim.Thread, n uint64) {
	t.ChargeAs("consume", cost.UserLoadDRAMPerPage*(n+mem.PageSize-1)/mem.PageSize)
}

// --- FS adapters --------------------------------------------------------------

type ext4FS struct{ *ext4.FS }

func (f *ext4FS) SetHooks(h *vfs.Hooks) { f.FS.SetHooks(h) }

type novaFS struct{ *nova.FS }

func (f *novaFS) SetHooks(h *vfs.Hooks) { f.FS.SetHooks(h) }

// agingSurface adapts MountedFS to agefs.FS.
type agingSurface struct{ MountedFS }
