package kernel

import (
	"fmt"
	"testing"

	"daxvm/internal/cpu"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/sim"
)

// TestBootMatrix boots the cross-product of machine configurations and
// runs a trivial create/append/read/mmap workload on each. It guards the
// wiring no single-feature test exercises: every feature flag must
// compose with every other (and with both topologies) without panicking
// or corrupting the trivial workload's results.
func TestBootMatrix(t *testing.T) {
	for _, fs := range []FSKind{Ext4, Nova} {
		for _, daxvm := range []bool{false, true} {
			for _, prezero := range []bool{false, true} {
				if prezero && !daxvm {
					continue // prezero requires DaxVM
				}
				for _, monitor := range []bool{false, true} {
					for _, hugeOff := range []bool{false, true} {
						for _, nodes := range []int{1, 2} {
							name := fmt.Sprintf("%s/daxvm=%v/prezero=%v/monitor=%v/hugeoff=%v/nodes=%d",
								fs, daxvm, prezero, monitor, hugeOff, nodes)
							cfg := Config{
								Cores:        4,
								Nodes:        nodes,
								DeviceBytes:  256 << 20,
								DRAMBytes:    256 << 20,
								FS:           fs,
								DaxVM:        daxvm,
								Prezero:      prezero,
								Monitor:      monitor,
								HugePagesOff: hugeOff,
							}
							if nodes > 1 {
								cfg.Placement = "interleave"
								cfg.MountPlacement = "interleave"
							}
							t.Run(name, func(t *testing.T) {
								bootMatrixWorkload(t, cfg)
							})
						}
					}
				}
			}
		}
	}
}

// bootMatrixWorkload runs the trivial workload: write a file through the
// syscall path, read it back, then touch it through a mapping.
func bootMatrixWorkload(t *testing.T, cfg Config) {
	k := Boot(cfg)
	p := k.NewProc()
	const size = 128 << 10
	p.Spawn("matrix", 0, 0, func(th *sim.Thread, c *cpu.Core) {
		fd, err := p.Create(th, "/matrix")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := p.Append(th, fd, make([]byte, size)); err != nil {
			t.Errorf("append: %v", err)
			return
		}
		buf := make([]byte, size)
		if n, err := p.ReadAt(th, fd, 0, buf); err != nil || n != size {
			t.Errorf("read: n=%d err=%v", n, err)
			return
		}
		va, err := p.Mmap(th, c, fd, 0, size, mem.PermRead|mem.PermWrite, mm.MapShared|mm.MapSync)
		if err != nil {
			t.Errorf("mmap: %v", err)
			return
		}
		if err := p.AccessMapped(th, c, va, size, KindSum); err != nil {
			t.Errorf("access: %v", err)
			return
		}
		if err := p.Munmap(th, c, va, size); err != nil {
			t.Errorf("munmap: %v", err)
			return
		}
		if err := p.Close(th, fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	if cycles := k.Run(); cycles == 0 {
		t.Error("workload charged no cycles")
	}
	if k.Topo.Multi() != (cfg.Nodes > 1) {
		t.Errorf("topology: Multi()=%v with %d nodes", k.Topo.Multi(), cfg.Nodes)
	}
}
