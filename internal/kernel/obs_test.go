package kernel

import (
	"bytes"
	"encoding/json"
	"testing"

	"daxvm/internal/cpu"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/obs"
	"daxvm/internal/sim"
)

// runObsWorkload drives both the POSIX and the DaxVM data paths on two
// cores so every instrumented subsystem fires at least once.
func runObsWorkload(t *testing.T, k *Kernel) *Proc {
	t.Helper()
	p := k.NewProc()
	p.Spawn("posix", 0, 0, func(th *sim.Thread, c *cpu.Core) {
		fd, err := p.Create(th, "f")
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		p.Append(th, fd, make([]byte, 1<<20))
		va, err := p.Mmap(th, c, fd, 0, 1<<20, mem.PermRead|mem.PermWrite, mm.MapShared|mm.MapSync)
		if err != nil {
			t.Errorf("Mmap: %v", err)
			return
		}
		// Read first (pages install write-protected under MAP_SYNC), then
		// write: the second pass takes WP faults and hits the TLB.
		p.AccessMapped(th, c, va, 128<<10, KindSum)
		p.AccessMapped(th, c, va, 128<<10, KindCachedWrite)
		p.Msync(th, c, va, 1<<20)
		p.Munmap(th, c, va, 1<<20)
		p.Close(th, fd)
	})
	p.Spawn("daxvm", 1, 0, func(th *sim.Thread, c *cpu.Core) {
		fd, err := p.Create(th, "g")
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		p.Append(th, fd, make([]byte, 1<<20))
		p.Fsync(th, fd)
		va, err := p.DaxvmMmap(th, c, fd, 0, 1<<20, mem.PermRead, 0)
		if err != nil {
			t.Errorf("DaxvmMmap: %v", err)
			return
		}
		p.AccessMapped(th, c, va, 128<<10, KindSum)
		p.DaxvmMunmap(th, c, va)
		p.Close(th, fd)
	})
	if k.Run() == 0 {
		t.Fatal("no virtual time elapsed")
	}
	return p
}

// TestSnapshotMatchesLegacyStats is the acceptance check for the metrics
// registry: the delta over the measured window must reproduce exactly the
// values the per-subsystem Stats structs report.
func TestSnapshotMatchesLegacyStats(t *testing.T) {
	o := obs.New(0)
	k := Boot(Config{Cores: 2, DeviceBytes: 512 << 20, DaxVM: true, Obs: o})
	before := o.Reg.Snapshot()
	p := runObsWorkload(t, k)
	after := o.Reg.Snapshot()
	d := after.Delta(before)

	sumCores := func(f func(*cpu.Core) uint64) uint64 {
		var s uint64
		for _, c := range k.Cpus.Cores {
			s += f(c)
		}
		return s
	}
	// The boot-time snapshot is zero for these namespaces (no process
	// existed, no faults ran), so both the absolute snapshot and the
	// window delta must equal the legacy structs.
	checks := []struct {
		name string
		want uint64
	}{
		{"mm.mmaps", p.MM.Stats.Mmaps},
		{"mm.munmaps", p.MM.Stats.Munmaps},
		{"mm.minor_faults", p.MM.Stats.MinorFaults},
		{"mm.wp_faults", p.MM.Stats.WPFaults},
		{"mm.msync_pages", p.MM.Stats.MsyncPages},
		{"mm.shootdowns", p.MM.Stats.Shootdowns},
		{"mm.lock.acquisitions", p.MM.Sem.Stats.Acquisitions},
		{"mm.lock.read.acquisitions", p.MM.Sem.ReaderStats.Acquisitions},
		{"tlb.misses", sumCores(func(c *cpu.Core) uint64 { return c.TLB.Stats.Misses })},
		{"tlb.hits", sumCores(func(c *cpu.Core) uint64 { return c.TLB.Stats.Hits })},
		{"cpu.walks", sumCores(func(c *cpu.Core) uint64 { return c.Stats.Walks })},
		{"cpu.walk_cycles", sumCores(func(c *cpu.Core) uint64 { return c.Stats.WalkCycles })},
		{"core.attach_ops", k.Dax.Stats.AttachOps},
		{"core.detach_ops", k.Dax.Stats.DetachOps},
	}
	for _, c := range checks {
		if got := after.Get(c.name); got != c.want {
			t.Errorf("snapshot %s = %d, legacy stats say %d", c.name, got, c.want)
		}
		if got := d.Get(c.name); got != c.want {
			t.Errorf("delta %s = %d, legacy stats say %d", c.name, got, c.want)
		}
		if c.want == 0 {
			t.Errorf("workload did not exercise %s (legacy value 0)", c.name)
		}
	}
	// Journal commits happen during boot-time mkfs too, so compare the
	// absolute snapshot only.
	if f, ok := k.FS.(*ext4FS); ok {
		if got, want := after.Get("ext4.journal.commits"), f.FS.Journal().Stats.Commits; got != want || want == 0 {
			t.Errorf("ext4.journal.commits = %d, legacy %d", got, want)
		}
	} else {
		t.Fatal("expected ext4")
	}
	if got, want := after.Get("pmem.bytes_written"), k.Dev.Stats.BytesWritten; got != want || want == 0 {
		t.Errorf("pmem.bytes_written = %d, legacy %d", got, want)
	}
	if got, want := after.Get("dram.used_bytes"), k.Pool.Used(); got != want {
		t.Errorf("dram.used_bytes = %d, legacy %d", got, want)
	}

	// Histograms: every charged walk lands in cpu.walk_latency, so the
	// counts must agree with the per-core Stats too.
	wh := after.Hists["cpu.walk_latency"]
	if want := sumCores(func(c *cpu.Core) uint64 { return c.Stats.Walks }); wh.Count != want {
		t.Errorf("cpu.walk_latency count = %d, want %d", wh.Count, want)
	}
	if fh := after.Hists["mm.fault_latency"]; fh.Count == 0 || fh.Sum == 0 {
		t.Errorf("mm.fault_latency empty: %+v", fh)
	}
}

// TestTraceEventsAcrossCores checks the tracer acceptance criteria: the
// workload must produce several distinct event types spread over more
// than one core track, and the Chrome export must be valid JSON.
func TestTraceEventsAcrossCores(t *testing.T) {
	o := obs.New(0)
	k := Boot(Config{Cores: 2, DeviceBytes: 512 << 20, DaxVM: true, Obs: o})
	runObsWorkload(t, k)

	types := map[string]int{}
	cores := map[int]bool{}
	for _, e := range o.Trace.Events() {
		types[e.Type]++
		cores[e.Core] = true
	}
	if len(types) < 4 {
		t.Errorf("only %d distinct event types: %v", len(types), types)
	}
	if len(cores) < 2 {
		t.Errorf("events on %d cores, want >= 2", len(cores))
	}
	for _, want := range []string{obs.EvPageFault, obs.EvMmap, obs.EvShootdown, obs.EvJournalCommit, obs.EvDaxvmMmap} {
		if types[want] == 0 {
			t.Errorf("no %s events (have %v)", want, types)
		}
	}

	var buf bytes.Buffer
	if err := o.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < 10 {
		t.Fatalf("suspiciously small trace: %d entries", len(parsed.TraceEvents))
	}
}

// TestObsSharedAcrossBoots locks in the multi-kernel contract: when one
// hub is reused (as bench does), counter readers follow the most recent
// boot while the trace ring keeps accumulating.
func TestObsSharedAcrossBoots(t *testing.T) {
	o := obs.New(0)
	k1 := Boot(Config{Cores: 2, DeviceBytes: 512 << 20, DaxVM: true, Obs: o})
	runObsWorkload(t, k1)
	if o.Reg.Snapshot().Get("mm.mmaps") == 0 {
		t.Fatal("first kernel registered nothing")
	}
	eventsAfterFirst := o.Trace.Len()
	if eventsAfterFirst == 0 {
		t.Fatal("first kernel traced nothing")
	}

	Boot(Config{Cores: 2, DeviceBytes: 512 << 20, DaxVM: true, Obs: o})
	if got := o.Reg.Snapshot().Get("mm.mmaps"); got != 0 {
		t.Errorf("after reboot mm.mmaps = %d, want 0 (readers must follow the new kernel)", got)
	}
	if o.Trace.Len() < eventsAfterFirst {
		t.Error("reboot discarded trace events")
	}
}
