package kernel

import (
	"bytes"
	"strings"
	"testing"

	"daxvm/internal/cpu"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/sim"
)

func TestBootAndBasicSyscalls(t *testing.T) {
	k := Boot(Config{Cores: 2, DeviceBytes: 512 << 20})
	p := k.NewProc()
	payload := bytes.Repeat([]byte("integration"), 5000)
	p.Spawn("main", 0, 0, func(th *sim.Thread, c *cpu.Core) {
		fd, err := p.Create(th, "dir/file")
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		if err := p.Append(th, fd, payload); err != nil {
			t.Errorf("Append: %v", err)
			return
		}
		got := make([]byte, len(payload))
		if _, err := p.ReadAt(th, fd, 0, got); err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Error("payload mismatch through syscalls")
		}
		// Sequential Read with position.
		small := make([]byte, 11)
		p.Read(th, fd, small)
		p.Read(th, fd, small)
		if string(small) != string(payload[11:22]) {
			t.Errorf("positioned read got %q", small)
		}
		if err := p.Close(th, fd); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := p.Unlink(th, "dir/file"); err != nil {
			t.Errorf("Unlink: %v", err)
		}
		if _, err := p.Open(th, "dir/file"); err == nil {
			t.Error("unlinked file opened")
		}
	})
	if k.Run() == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestMmapDataPathEndToEnd(t *testing.T) {
	k := Boot(Config{Cores: 1, DeviceBytes: 256 << 20, DaxVM: true})
	p := k.NewProc()
	p.Spawn("main", 0, 0, func(th *sim.Thread, c *cpu.Core) {
		fd, _ := p.Create(th, "m")
		p.Append(th, fd, make([]byte, 256<<10))
		// POSIX mapping with write + msync.
		va, err := p.Mmap(th, c, fd, 0, 256<<10, mem.PermRead|mem.PermWrite, mapSharedSync())
		if err != nil {
			t.Errorf("Mmap: %v", err)
			return
		}
		if err := p.AccessMapped(th, c, va, 64<<10, KindCachedWrite); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := p.Msync(th, c, va, 256<<10); err != nil {
			t.Errorf("Msync: %v", err)
		}
		if err := p.Munmap(th, c, va, 256<<10); err != nil {
			t.Errorf("Munmap: %v", err)
		}
		// DaxVM mapping.
		dva, err := p.DaxvmMmap(th, c, fd, 0, 256<<10, mem.PermRead, 0)
		if err != nil {
			t.Errorf("DaxvmMmap: %v", err)
			return
		}
		if err := p.AccessMapped(th, c, dva, 256<<10, KindSum); err != nil {
			t.Errorf("dax access: %v", err)
		}
		if err := p.DaxvmMunmap(th, c, dva); err != nil {
			t.Errorf("DaxvmMunmap: %v", err)
		}
		p.Close(th, fd)
	})
	k.Run()
	if p.MM.Stats.MsyncPages == 0 {
		t.Error("msync flushed nothing")
	}
}

func TestDaxvmPosixSemanticsDiffer(t *testing.T) {
	// §IV-F: partial mprotect fails on DaxVM mappings, works on POSIX;
	// mprotect on ephemeral mappings always fails.
	k := Boot(Config{Cores: 1, DeviceBytes: 256 << 20, DaxVM: true})
	p := k.NewProc()
	p.Spawn("main", 0, 0, func(th *sim.Thread, c *cpu.Core) {
		fd, _ := p.Create(th, "sem")
		p.Append(th, fd, make([]byte, 4<<20))

		pva, _ := p.Mmap(th, c, fd, 0, 4<<20, mem.PermRead|mem.PermWrite, mapSharedSync())
		if err := p.Mprotect(th, c, pva+mem.VirtAddr(1<<20), 1<<20, mem.PermRead); err != nil {
			t.Errorf("POSIX partial mprotect should work: %v", err)
		}
		p.Munmap(th, c, pva, 4<<20)

		dva, _ := p.DaxvmMmap(th, c, fd, 0, 4<<20, mem.PermRead|mem.PermWrite, 0)
		if err := p.Mprotect(th, c, dva+mem.VirtAddr(2<<20), 1<<20, mem.PermRead); err == nil {
			t.Error("DaxVM partial mprotect should fail")
		} else if !strings.Contains(err.Error(), "daxvm") {
			t.Errorf("unexpected error: %v", err)
		}
		if err := p.Mprotect(th, c, dva, 4<<20, mem.PermRead); err != nil {
			t.Errorf("whole-mapping mprotect should work: %v", err)
		}
		// After the downgrade, writes must fault to an error.
		if err := p.AccessMapped(th, c, dva, 4096, KindNTWrite); err == nil {
			t.Error("write allowed after mprotect(PROT_READ)")
		}
		p.DaxvmMunmap(th, c, dva)
		p.Close(th, fd)
	})
	k.Run()
}

func TestNovaBoot(t *testing.T) {
	k := Boot(Config{Cores: 1, DeviceBytes: 256 << 20, FS: Nova, DaxVM: true, Prezero: true})
	p := k.NewProc()
	p.Spawn("main", 0, 0, func(th *sim.Thread, c *cpu.Core) {
		fd, err := p.Create(th, "n")
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		if err := p.Fallocate(th, fd, 0, 1<<20); err != nil {
			t.Errorf("Fallocate: %v", err)
			return
		}
		va, err := p.DaxvmMmap(th, c, fd, 0, 1<<20, mem.PermRead|mem.PermWrite, 0)
		if err != nil {
			t.Errorf("DaxvmMmap: %v", err)
			return
		}
		if err := p.AccessMapped(th, c, va, 1<<20, KindNTWrite); err != nil {
			t.Errorf("write: %v", err)
		}
		p.DaxvmMunmap(th, c, va)
		p.Close(th, fd)
	})
	k.Run()
}

func TestAgedBootReport(t *testing.T) {
	k := Boot(Config{Cores: 1, DeviceBytes: 1 << 30, Age: true})
	if k.AgeReport.Utilization < 0.6 || k.AgeReport.FreeExtents < 100 {
		t.Fatalf("age report %+v", k.AgeReport)
	}
}

func mapSharedSync() mm.MapFlags { return mm.MapShared | mm.MapSync }
