// Package dram models the volatile memory pool of the simulated machine.
//
// Unlike internal/pmem, DRAM contents need no persistence semantics and the
// simulator does not route most user data through it (workload buffers are
// plain Go slices). What the experiments DO need is accounting: how much
// DRAM the kernel consumes for page tables, volatile DaxVM file tables and
// page-cache metadata — the paper reports these as DaxVM's DRAM tax — plus
// an allocation cost model.
package dram

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
)

// Pool is a volatile frame allocator.
type Pool struct {
	capacity uint64 // bytes
	used     uint64
	peak     uint64
	next     mem.PFN
	free     []mem.PFN

	Stats Stats
}

// Stats aggregates pool activity.
type Stats struct {
	Allocs uint64
	Frees  uint64
}

// New creates a pool of the given capacity in bytes.
func New(capacity uint64) *Pool {
	if capacity == 0 || !mem.IsAligned(capacity, mem.PageSize) {
		panic(fmt.Sprintf("dram: bad capacity %d", capacity))
	}
	return &Pool{capacity: capacity}
}

// AllocFrame allocates one zeroed 4 KiB frame and returns its PFN.
// The cycle cost models the buddy-allocator fast path plus zeroing from
// the per-CPU free lists (mostly pre-zeroed in modern kernels).
func (p *Pool) AllocFrame(t *sim.Thread) mem.PFN {
	if p.used+mem.PageSize > p.capacity {
		panic(fmt.Sprintf("dram: out of memory (capacity %d)", p.capacity))
	}
	p.used += mem.PageSize
	if p.used > p.peak {
		p.peak = p.used
	}
	p.Stats.Allocs++
	t.Charge(cost.TableAlloc)
	if n := len(p.free); n > 0 {
		pfn := p.free[n-1]
		p.free = p.free[:n-1]
		return pfn
	}
	pfn := p.next
	p.next++
	return pfn
}

// FreeFrame returns a frame to the pool.
func (p *Pool) FreeFrame(t *sim.Thread, pfn mem.PFN) {
	if p.used < mem.PageSize {
		panic("dram: free underflow")
	}
	p.used -= mem.PageSize
	p.Stats.Frees++
	p.free = append(p.free, pfn)
	t.Charge(cost.KernelListOp)
}

// Used reports current usage in bytes.
func (p *Pool) Used() uint64 { return p.used }

// Peak reports the high-water mark in bytes.
func (p *Pool) Peak() uint64 { return p.peak }

// Capacity reports the configured capacity in bytes.
func (p *Pool) Capacity() uint64 { return p.capacity }
