// Package dram models the volatile memory pool of the simulated machine.
//
// Unlike internal/pmem, DRAM contents need no persistence semantics and the
// simulator does not route most user data through it (workload buffers are
// plain Go slices). What the experiments DO need is accounting: how much
// DRAM the kernel consumes for page tables, volatile DaxVM file tables and
// page-cache metadata — the paper reports these as DaxVM's DRAM tax — plus
// an allocation cost model.
//
// The pool is split into per-NUMA-node banks with disjoint PFN ranges, so
// a frame's number identifies its home node. AllocFrameOn implements
// node-preferred allocation with Linux-style fallback to the other nodes
// when the preferred bank is exhausted. A single-node pool (the default)
// behaves exactly like the original flat allocator.
package dram

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
)

// Pool is a volatile frame allocator.
type Pool struct {
	capacity  uint64 // bytes, whole pool
	used      uint64
	peak      uint64
	bankPages uint64 // frames per bank; bank i owns PFNs [i*bankPages, (i+1)*bankPages)
	banks     []bank

	Stats Stats
}

// bank is one node's share of the pool.
type bank struct {
	used uint64 // bytes
	peak uint64
	next uint64 // frames handed out from the never-allocated region
	free []mem.PFN
	// freed holds the current free-list membership so FreeFrame can
	// detect double frees.
	freed map[mem.PFN]struct{}
}

// Stats aggregates pool activity.
type Stats struct {
	Allocs uint64
	Frees  uint64
}

// New creates a flat single-node pool of the given capacity in bytes.
func New(capacity uint64) *Pool { return NewNUMA(capacity, nil) }

// NewNUMA creates a pool whose capacity is split evenly across the
// topology's nodes (nil topology = one node).
func NewNUMA(capacity uint64, tp *topo.Topology) *Pool {
	if capacity == 0 || !mem.IsAligned(capacity, mem.PageSize) {
		panic(fmt.Sprintf("dram: bad capacity %d", capacity))
	}
	nodes := 1
	if tp.Multi() {
		nodes = tp.Nodes()
	}
	p := &Pool{
		capacity:  capacity,
		bankPages: capacity / uint64(nodes) / mem.PageSize,
		banks:     make([]bank, nodes),
	}
	for i := range p.banks {
		p.banks[i].freed = make(map[mem.PFN]struct{})
	}
	return p
}

// NodeCount returns how many banks the pool spans.
func (p *Pool) NodeCount() int { return len(p.banks) }

// NodeOfFrame returns the home node of a PFN handed out by this pool.
func (p *Pool) NodeOfFrame(pfn mem.PFN) mem.NodeID {
	n := uint64(pfn) / p.bankPages
	if n >= uint64(len(p.banks)) {
		n = uint64(len(p.banks)) - 1
	}
	return mem.NodeID(n)
}

// AllocFrame allocates one zeroed 4 KiB frame from node 0 and returns
// its PFN. The cycle cost models the buddy-allocator fast path plus
// zeroing from the per-CPU free lists (mostly pre-zeroed in modern
// kernels).
func (p *Pool) AllocFrame(t *sim.Thread) mem.PFN { return p.AllocFrameOn(t, 0) }

// AllocFrameOn allocates a frame on the given node, falling back to the
// other nodes in ascending order when that bank is exhausted (the
// Linux zonelist behaviour).
func (p *Pool) AllocFrameOn(t *sim.Thread, node mem.NodeID) mem.PFN {
	idx := p.bankWithSpace(node)
	if idx < 0 {
		//lint:ignore hotalloc fatal path: args are boxed only when panicking
		panic(fmt.Sprintf("dram: out of memory (capacity %d)", p.capacity))
	}
	b := &p.banks[idx]
	b.used += mem.PageSize
	if b.used > b.peak {
		b.peak = b.used
	}
	p.used += mem.PageSize
	if p.used > p.peak {
		p.peak = p.used
	}
	p.Stats.Allocs++
	t.Charge(cost.TableAlloc)
	if n := len(b.free); n > 0 {
		pfn := b.free[n-1]
		b.free = b.free[:n-1]
		delete(b.freed, pfn)
		return pfn
	}
	pfn := mem.PFN(uint64(idx)*p.bankPages + b.next)
	b.next++
	return pfn
}

func (p *Pool) bankWithSpace(node mem.NodeID) int {
	bankCap := p.bankPages * mem.PageSize
	if int(node) >= len(p.banks) {
		node = mem.NodeID(len(p.banks) - 1)
	}
	if p.banks[node].used+mem.PageSize <= bankCap {
		return int(node)
	}
	for i := range p.banks {
		if p.banks[i].used+mem.PageSize <= bankCap {
			return i
		}
	}
	return -1
}

// FreeFrame returns a frame to its home bank. Freeing a PFN that was
// never allocated, or freeing the same PFN twice, is a simulator bug and
// panics with the offending frame number.
func (p *Pool) FreeFrame(t *sim.Thread, pfn mem.PFN) {
	if p.used < mem.PageSize {
		panic("dram: free underflow")
	}
	bankIdx, rel := uint64(pfn)/p.bankPages, uint64(pfn)%p.bankPages
	if bankIdx >= uint64(len(p.banks)) || rel >= p.banks[bankIdx].next {
		panic(fmt.Sprintf("dram: free of never-allocated PFN %#x", uint64(pfn)))
	}
	b := &p.banks[bankIdx]
	if _, dup := b.freed[pfn]; dup {
		panic(fmt.Sprintf("dram: double free of PFN %#x", uint64(pfn)))
	}
	b.used -= mem.PageSize
	p.used -= mem.PageSize
	p.Stats.Frees++
	b.free = append(b.free, pfn)
	b.freed[pfn] = struct{}{}
	t.Charge(cost.KernelListOp)
}

// Used reports current usage in bytes.
func (p *Pool) Used() uint64 { return p.used }

// UsedOn reports one node's current usage in bytes.
func (p *Pool) UsedOn(node int) uint64 { return p.banks[node].used }

// Peak reports the high-water mark in bytes.
func (p *Pool) Peak() uint64 { return p.peak }

// OccupancyPerMille reports pool usage as tenths of a percent of
// capacity (0..1000) — integer so gauge tracks stay byte-stable. Pure
// read for gauge sampling.
func (p *Pool) OccupancyPerMille() uint64 { return p.used * 1000 / p.capacity }

// OccupancyOnPerMille is OccupancyPerMille for one node's bank.
func (p *Pool) OccupancyOnPerMille(node int) uint64 {
	return p.banks[node].used * 1000 / (p.bankPages * mem.PageSize)
}

// Capacity reports the configured capacity in bytes.
func (p *Pool) Capacity() uint64 { return p.capacity }
