package dram

import (
	"strings"
	"testing"

	"daxvm/internal/mem"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
)

func run(t *testing.T, fn func(th *sim.Thread)) {
	t.Helper()
	e := sim.New()
	e.Go("test", 0, 0, fn)
	e.Run()
}

func wantPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

func TestAllocFreeRoundTrip(t *testing.T) {
	p := New(16 * mem.PageSize)
	run(t, func(th *sim.Thread) {
		a := p.AllocFrame(th)
		b := p.AllocFrame(th)
		if a == b {
			t.Errorf("distinct allocations returned the same PFN %d", a)
		}
		p.FreeFrame(th, a)
		if got := p.AllocFrame(th); got != a {
			t.Errorf("free list not LIFO: got %d, want %d", got, a)
		}
		if p.Used() != 2*mem.PageSize || p.Stats.Allocs != 3 || p.Stats.Frees != 1 {
			t.Errorf("accounting wrong: used=%d allocs=%d frees=%d", p.Used(), p.Stats.Allocs, p.Stats.Frees)
		}
	})
}

func TestFreeFrameDoubleFree(t *testing.T) {
	p := New(16 * mem.PageSize)
	run(t, func(th *sim.Thread) {
		a := p.AllocFrame(th)
		p.AllocFrame(th) // keep used high enough to pass the underflow check
		p.FreeFrame(th, a)
		wantPanic(t, "double free of PFN", func() { p.FreeFrame(th, a) })
	})
}

func TestFreeFrameNeverAllocated(t *testing.T) {
	p := New(16 * mem.PageSize)
	run(t, func(th *sim.Thread) {
		p.AllocFrame(th)
		wantPanic(t, "never-allocated PFN", func() { p.FreeFrame(th, mem.PFN(7)) })
	})
}

func TestFreeFrameUnderflow(t *testing.T) {
	p := New(16 * mem.PageSize)
	run(t, func(th *sim.Thread) {
		wantPanic(t, "free underflow", func() { p.FreeFrame(th, 0) })
	})
}

func TestNUMABanksAndFallback(t *testing.T) {
	tp := topo.New(2, 1)
	p := NewNUMA(4*mem.PageSize, tp) // 2 frames per bank
	run(t, func(th *sim.Thread) {
		a := p.AllocFrameOn(th, 1)
		if p.NodeOfFrame(a) != 1 {
			t.Errorf("AllocFrameOn(1) returned PFN %d on node %d", a, p.NodeOfFrame(a))
		}
		if p.UsedOn(1) != mem.PageSize || p.UsedOn(0) != 0 {
			t.Errorf("per-node accounting wrong: node0=%d node1=%d", p.UsedOn(0), p.UsedOn(1))
		}
		// Exhaust node 1; the next preferred-node-1 allocation must fall
		// back to node 0 rather than fail.
		p.AllocFrameOn(th, 1)
		c := p.AllocFrameOn(th, 1)
		if p.NodeOfFrame(c) != 0 {
			t.Errorf("fallback allocation landed on node %d, want 0", p.NodeOfFrame(c))
		}
		// A freed frame returns to its home bank, not the freeing core's.
		p.FreeFrame(th, a)
		d := p.AllocFrameOn(th, 1)
		if d != a {
			t.Errorf("node-1 free list not reused: got %d, want %d", d, a)
		}
	})
}
