package core

import (
	"testing"

	"daxvm/internal/cpu"
	"daxvm/internal/dram"
	"daxvm/internal/fs/ext4"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

// env wires a device, an ext4 image with DaxVM hooks, an inode cache, one
// process and the DaxVM manager — the kernel package repeats this wiring
// for real workloads.
type env struct {
	dev    *pmem.Device
	fs     *ext4.FS
	icache *vfs.ICache
	mm     *mm.MM
	cpus   *cpu.Set
	d      *DaxVM
	proc   *Proc
	engine *sim.Engine
}

func newEnv(devMB int, ncores int, cfg Config) *env {
	ev := &env{}
	ev.dev = pmem.New(pmem.Config{Size: uint64(devMB) << 20})
	ev.cpus = cpu.NewSet(ncores)
	pool := dram.New(4 << 30)

	var hooks *vfs.Hooks
	ev.fs = ext4.Mkfs(ext4.Config{Dev: ev.dev, JournalBytes: 8 << 20, Hooks: nil})
	ev.d = New(cfg, ev.dev, pool, ev.cpus, ev.fs.Allocator(), ev.fs)
	hooks = ev.d.Hooks(true)
	// Re-create the FS with hooks (Mkfs stores them); simplest is to use
	// the setter below.
	ev.fs.SetHooks(hooks)
	ev.icache = vfs.NewICache(ev.fs, 1024, hooks)

	ev.mm = mm.New(pool, ev.fs, ev.cpus)
	for _, c := range ev.cpus.Cores {
		ev.mm.RunOn(c)
	}
	ev.proc = ev.d.NewProc(ev.mm)
	ev.engine = sim.New()
	return ev
}

func (ev *env) run(fn func(t *sim.Thread)) uint64 {
	ev.engine.Go("t", 0, 0, fn)
	return ev.engine.Run()
}

func (ev *env) mkFile(t *sim.Thread, path string, size uint64) *vfs.Inode {
	in, err := ev.icache.Create(t, path)
	if err != nil {
		panic(err)
	}
	if size > 0 {
		if err := ev.fs.Append(t, in, make([]byte, size)); err != nil {
			panic(err)
		}
	}
	return in
}

func TestO1MmapLatencyIndependentOfSize(t *testing.T) {
	// The headline property: daxvm_mmap latency must be near-constant in
	// file size, while baseline MAP_POPULATE scales linearly.
	mmapCost := func(size uint64, daxvm bool) uint64 {
		ev := newEnv(512, 1, Config{})
		// Level the field: compare pure paging cost, not huge-page luck
		// on a fresh image (the paper's aged image rarely has it).
		ev.mm.HugePagesEnabled = false
		var cycles uint64
		ev.run(func(th *sim.Thread) {
			in := ev.mkFile(th, "f", size)
			core := ev.cpus.Cores[0]
			core.Bind(th)
			start := th.Now()
			if daxvm {
				if _, err := ev.proc.Mmap(th, core, in, 0, size, mem.PermRead, 0); err != nil {
					t.Errorf("daxvm mmap: %v", err)
				}
			} else {
				if _, err := ev.mm.Mmap(th, core, in, 0, size, mem.PermRead, mm.MapShared|mm.MapPopulate); err != nil {
					t.Errorf("mmap: %v", err)
				}
			}
			cycles = th.Now() - start
		})
		return cycles
	}
	daxSmall := mmapCost(64<<10, true)
	daxBig := mmapCost(128<<20, true)
	popSmall := mmapCost(64<<10, false)
	popBig := mmapCost(128<<20, false)

	if daxBig > daxSmall*40 {
		t.Errorf("daxvm mmap not O(1): 64K=%d vs 128M=%d", daxSmall, daxBig)
	}
	if popBig < popSmall*20 {
		t.Errorf("populate should scale with size: 64K=%d vs 128M=%d", popSmall, popBig)
	}
	if daxBig*10 > popBig {
		t.Errorf("daxvm (%d) should be far cheaper than populate (%d) for 128M", daxBig, popBig)
	}
}

func TestDaxVMAccessNoFaults(t *testing.T) {
	ev := newEnv(128, 1, Config{})
	ev.run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 256<<10)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, err := ev.proc.Mmap(th, core, in, 0, 256<<10, mem.PermRead, 0)
		if err != nil {
			t.Errorf("Mmap: %v", err)
		}
		if err := ev.mm.Access(th, core, va, 256<<10, false, 0); err != nil {
			t.Errorf("Access: %v", err)
		}
		if ev.mm.Stats.MinorFaults != 0 {
			t.Errorf("DaxVM mapping took %d demand faults", ev.mm.Stats.MinorFaults)
		}
	})
}

func TestReturnedVAHonorsOffsetRounding(t *testing.T) {
	ev := newEnv(128, 1, Config{})
	ev.run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 8<<20)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		// Request an interior, non-2MiB-aligned offset.
		off := uint64(3<<20 + 8192)
		va, err := ev.proc.Mmap(th, core, in, off, 4096, mem.PermRead, 0)
		if err != nil {
			t.Errorf("Mmap: %v", err)
		}
		if uint64(va)%mem.PageSize != 0 {
			t.Error("returned VA not page aligned")
		}
		// The alignment rule: va maps exactly fileOff, and the 2 MiB
		// region around it is silently mapped.
		if err := ev.mm.Access(th, core, va, 4096, false, 0); err != nil {
			t.Errorf("requested page: %v", err)
		}
		before := va - mem.VirtAddr(8192)
		if err := ev.mm.Access(th, core, before, 4096, false, 0); err != nil {
			t.Errorf("silently mapped neighbourhood should be accessible: %v", err)
		}
	})
}

func TestPerProcessPermissions(t *testing.T) {
	ev := newEnv(128, 2, Config{})
	// Second process sharing the same DaxVM manager and FS.
	m2 := mm.New(dram.New(1<<30), ev.fs, ev.cpus)
	m2.RunOn(ev.cpus.Cores[1])
	proc2 := ev.d.NewProc(m2)

	ev.run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 64<<10)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		vaRW, err := ev.proc.Mmap(th, core, in, 0, 64<<10, mem.PermRead|mem.PermWrite, FlagNoMsync)
		if err != nil {
			t.Errorf("rw mmap: %v", err)
		}
		if err := ev.mm.Access(th, core, vaRW, 4096, true, 0); err != nil {
			t.Errorf("rw write: %v", err)
		}

		core2 := ev.cpus.Cores[1]
		vaRO, err := proc2.Mmap(th, core2, in, 0, 64<<10, mem.PermRead, 0)
		if err != nil {
			t.Errorf("ro mmap: %v", err)
		}
		if err := m2.Access(th, core2, vaRO, 4096, false, 0); err != nil {
			t.Errorf("ro read: %v", err)
		}
		if err := m2.Access(th, core2, vaRO, 4096, true, 0); err == nil {
			t.Error("write through RO attachment succeeded")
		}
		// Both processes share ONE file table (built online by the alloc
		// hook, never cold-rebuilt per process).
		if ev.d.Stats.ColdBuilds != 0 {
			t.Errorf("cold builds = %d, want 0", ev.d.Stats.ColdBuilds)
		}
		if len(ev.d.tables) != 1 {
			t.Errorf("persistent tables = %d, want 1 shared", len(ev.d.tables))
		}
	})
}

func TestVolatilePersistentThresholdAndUpgrade(t *testing.T) {
	ev := newEnv(128, 1, Config{})
	ev.run(func(th *sim.Thread) {
		small := ev.mkFile(th, "small", 16<<10)
		ftS := ev.d.TableOf(small)
		if ftS == nil || ftS.Persistent {
			t.Errorf("16K file should have a volatile table: %+v", ftS)
		}
		big := ev.mkFile(th, "big", 1<<20)
		ftB := ev.d.TableOf(big)
		if ftB == nil || !ftB.Persistent {
			t.Error("1M file should have a persistent table")
		}
		// Growing the small file across the threshold upgrades it.
		ev.fs.Append(th, small, make([]byte, 64<<10))
		ftS2 := ev.d.TableOf(small)
		if ftS2 == nil || !ftS2.Persistent {
			t.Error("table not upgraded after growth past 32K")
		}
		if ev.d.Stats.Upgrades != 1 {
			t.Errorf("upgrades = %d", ev.d.Stats.Upgrades)
		}
	})
}

func TestEvictionDestroysVolatileKeepsPersistent(t *testing.T) {
	ev := newEnv(128, 1, Config{})
	ev.run(func(th *sim.Thread) {
		small := ev.mkFile(th, "small", 8<<10)
		big := ev.mkFile(th, "big", 1<<20)
		dramBefore := ev.d.Stats.DRAMTableBytes
		if dramBefore == 0 {
			t.Error("volatile table allocated no DRAM")
		}
		ev.icache.Put(th, small)
		ev.icache.Put(th, big)
		// Force eviction by flooding the cache.
		for i := 0; i < 2000; i++ {
			in := ev.mkFile(th, "flood/"+string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('0'+(i/10)%10))+string(rune('0'+(i/100)%10))+string(rune('0'+(i/1000)%10)), 4096)
			ev.icache.Put(th, in)
		}
		if ev.icache.Stats.Evictions == 0 {
			t.Error("no evictions happened")
		}
		// The persistent table must still be registered.
		if _, ok := ev.d.tables[big.Ino]; !ok {
			t.Error("persistent table lost on eviction")
		}
	})
}

func TestWPFaultAt2MGranularity(t *testing.T) {
	ev := newEnv(256, 1, Config{})
	ev.run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 8<<20)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, _ := ev.proc.Mmap(th, core, in, 0, 8<<20, mem.PermRead|mem.PermWrite, 0)
		// Write 64 pages inside ONE 2 MiB region: exactly one DaxVM WP
		// fault, one dirty record.
		for i := 0; i < 64; i++ {
			if err := ev.mm.Access(th, core, va+mem.VirtAddr(i*mem.PageSize), 8, true, 0); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		if ev.d.Stats.WPFaults2M != 1 {
			t.Errorf("2M WP faults = %d, want 1", ev.d.Stats.WPFaults2M)
		}
		// Touch a second region: one more.
		ev.mm.Access(th, core, va+4<<20, 8, true, 0)
		if ev.d.Stats.WPFaults2M != 2 {
			t.Errorf("2M WP faults = %d, want 2", ev.d.Stats.WPFaults2M)
		}
	})
}

func TestNoSyncDropsAllTracking(t *testing.T) {
	ev := newEnv(256, 1, Config{})
	ev.run(func(th *sim.Thread) {
		in := ev.mkFile(th, "f", 8<<20)
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, _ := ev.proc.Mmap(th, core, in, 0, 8<<20, mem.PermRead|mem.PermWrite, FlagNoMsync)
		for i := 0; i < 8; i++ {
			ev.mm.Access(th, core, va+mem.VirtAddr(i)<<20, 8, true, 0)
		}
		if ev.d.Stats.WPFaults2M != 0 || ev.mm.Stats.WPFaults != 0 {
			t.Errorf("nosync mode took tracking faults: %d/%d", ev.d.Stats.WPFaults2M, ev.mm.Stats.WPFaults)
		}
		if got := in.DirtyPages.Len(); got != 0 {
			t.Errorf("nosync recorded %d dirty pages", got)
		}
		// msync is a no-op.
		if err := ev.mm.Msync(th, core, va, 8<<20); err != nil {
			t.Errorf("Msync: %v", err)
		}
	})
}

func TestAsyncUnmapBatching(t *testing.T) {
	ev := newEnv(256, 2, Config{AsyncBatchPages: 64})
	ev.run(func(th *sim.Thread) {
		core := ev.cpus.Cores[0]
		core.Bind(th)
		var vas []mem.VirtAddr
		var files []*vfs.Inode
		for i := 0; i < 12; i++ {
			in := ev.mkFile(th, "f"+string(rune('a'+i)), 32<<10) // 8 pages each
			files = append(files, in)
			va, err := ev.proc.Mmap(th, core, in, 0, 32<<10, mem.PermRead, FlagEphemeral|FlagUnmapAsync)
			if err != nil {
				t.Errorf("Mmap: %v", err)
			}
			ev.mm.Access(th, core, va, 32<<10, false, 0)
			vas = append(vas, va)
		}
		flushesBefore := core.TLB.Stats.FullFlush
		// Unmap 7 mappings = 56 pages: below the 64-page batch.
		for i := 0; i < 7; i++ {
			ev.proc.Munmap(th, core, vas[i])
		}
		if ev.proc.ZombieCount() != 7 {
			t.Errorf("zombies = %d, want 7", ev.proc.ZombieCount())
		}
		// Vulnerability window: data still accessible after munmap.
		if err := ev.mm.Access(th, core, vas[0], 4096, false, 0); err != nil {
			t.Errorf("zombie access should still work: %v", err)
		}
		// The 8th unmap crosses 64 pages: one batch, one full flush.
		ev.proc.Munmap(th, core, vas[7])
		if ev.proc.ZombieCount() != 0 {
			t.Errorf("zombies after batch = %d", ev.proc.ZombieCount())
		}
		if ev.d.Stats.ZombieBatches != 1 {
			t.Errorf("batches = %d", ev.d.Stats.ZombieBatches)
		}
		if core.TLB.Stats.FullFlush != flushesBefore+1 {
			t.Errorf("full flushes = %d, want exactly one more than %d", core.TLB.Stats.FullFlush, flushesBefore)
		}
		// Now the zombie range must be gone.
		if err := ev.mm.Access(th, core, vas[0], 4096, false, 0); err == nil {
			t.Error("flushed zombie still accessible")
		}
	})
}

func TestTruncateForcesZombieUnmap(t *testing.T) {
	ev := newEnv(128, 1, Config{AsyncBatchPages: 10000})
	ev.run(func(th *sim.Thread) {
		core := ev.cpus.Cores[0]
		core.Bind(th)
		in := ev.mkFile(th, "f", 64<<10)
		va, _ := ev.proc.Mmap(th, core, in, 0, 64<<10, mem.PermRead, FlagEphemeral|FlagUnmapAsync)
		ev.mm.Access(th, core, va, 64<<10, false, 0)
		ev.proc.Munmap(th, core, va)
		if ev.proc.ZombieCount() != 1 {
			t.Error("zombie not deferred")
		}
		// Truncate must force the deferred unmap before reclaiming.
		if err := ev.fs.Truncate(th, in, 0); err != nil {
			t.Errorf("Truncate: %v", err)
		}
		if ev.proc.ZombieCount() != 0 {
			t.Error("truncate left zombies")
		}
		if ev.d.Stats.ForcedUnmaps == 0 {
			t.Error("forced unmap not recorded")
		}
		if err := ev.mm.Access(th, core, va, 4096, false, 0); err == nil {
			t.Error("translation survived truncate")
		}
	})
}

func TestEphemeralHeapReuseAndNoVMATreeGrowth(t *testing.T) {
	ev := newEnv(256, 1, Config{})
	ev.run(func(th *sim.Thread) {
		core := ev.cpus.Cores[0]
		core.Bind(th)
		in := ev.mkFile(th, "f", 32<<10)
		treeBefore := ev.mm.VMACount()
		var first mem.VirtAddr
		for i := 0; i < 100; i++ {
			va, err := ev.proc.Mmap(th, core, in, 0, 32<<10, mem.PermRead, FlagEphemeral)
			if err != nil {
				t.Errorf("Mmap %d: %v", i, err)
			}
			if i == 0 {
				first = va
			}
			ev.proc.Munmap(th, core, va)
		}
		if ev.mm.VMACount() != treeBefore {
			t.Error("ephemeral mappings leaked into the VMA tree")
		}
		if ev.proc.Heap.Live() != 0 {
			t.Errorf("heap live = %d", ev.proc.Heap.Live())
		}
		// Stack-like reuse: with sync unmaps the same VA comes back.
		va, _ := ev.proc.Mmap(th, core, in, 0, 32<<10, mem.PermRead, FlagEphemeral)
		if va != first {
			t.Errorf("heap did not reuse drained region: %#x vs %#x", va, first)
		}
		if ev.proc.Heap.Stats.RegionGrows != 1 {
			t.Errorf("region grows = %d, want 1", ev.proc.Heap.Stats.RegionGrows)
		}
	})
}

func TestEphemeralRejectsMprotect(t *testing.T) {
	ev := newEnv(128, 1, Config{})
	ev.run(func(th *sim.Thread) {
		core := ev.cpus.Cores[0]
		core.Bind(th)
		in := ev.mkFile(th, "f", 32<<10)
		va, _ := ev.proc.Mmap(th, core, in, 0, 32<<10, mem.PermRead, FlagEphemeral)
		if err := ev.proc.Mprotect(th, core, va, 32<<10, mem.PermRead|mem.PermWrite); err == nil {
			t.Error("mprotect on ephemeral mapping should fail")
		}
	})
}

func TestPrezeroPipelineAndSecurity(t *testing.T) {
	ev := newEnv(128, 2, Config{PrezeroBandwidthMBps: 8192})
	ev.d.StartPrezero(ev.engine, 1)
	ev.fs.SetTrustZeroed(true)
	ev.run(func(th *sim.Thread) {
		// Write recognizable data, delete the file, let the daemon zero.
		in := ev.mkFile(th, "secret", 1<<20)
		payload := make([]byte, 1<<20)
		for i := range payload {
			payload[i] = 0xAA
		}
		ev.fs.WriteAt(th, in, 0, payload)
		exts := ev.fs.Extents(in)
		if err := ev.fs.Unlink(th, "secret"); err != nil {
			t.Errorf("Unlink: %v", err)
		}
		in.Deleted = true
		ev.icache.Put(th, in)
		if ev.d.prezero.PendingBlocks() == 0 {
			t.Error("freed blocks not intercepted")
		}
		// Give the daemon virtual time to drain.
		th.Sleep(200_000_000)
		if ev.d.prezero.PendingBlocks() != 0 {
			t.Errorf("daemon left %d blocks pending", ev.d.prezero.PendingBlocks())
		}
		// Security: the old payload must be gone from media.
		for _, e := range exts {
			raw := ev.dev.Bytes(mem.PhysAddr(e.Phys*mem.PageSize), e.Len*mem.PageSize)
			for _, b := range raw {
				if b == 0xAA {
					t.Error("stale secret bytes survived pre-zeroing")
				}
			}
		}
		// Allocation now skips zeroing entirely.
		z0 := ev.fs.Stats.ZeroedBlocks
		in2 := ev.mkFile(th, "next", 1<<20)
		_ = in2
		if ev.fs.Stats.ZeroedBlocks != z0 {
			t.Errorf("allocation still zeroed %d blocks", ev.fs.Stats.ZeroedBlocks-z0)
		}
	})
}

func TestHugeChunkPromotionOnFreshImage(t *testing.T) {
	ev := newEnv(256, 1, Config{})
	ev.run(func(th *sim.Thread) {
		in, _ := ev.icache.Create(th, "big")
		if err := ev.fs.Fallocate(th, in, 0, 16<<20); err != nil {
			t.Errorf("Fallocate: %v", err)
		}
		ft := ev.d.TableOf(in)
		if ft == nil {
			t.Error("no table")
		}
		huge := 0
		for ci := range ft.chunks {
			if ft.chunks[ci].huge {
				huge++
			}
		}
		if huge < 6 {
			t.Errorf("only %d/8 chunks promoted to huge on a fresh image", huge)
		}
		// And they are usable through an attachment.
		core := ev.cpus.Cores[0]
		core.Bind(th)
		va, _ := ev.proc.Mmap(th, core, in, 0, 16<<20, mem.PermRead, 0)
		if err := ev.mm.Access(th, core, va, 16<<20, false, 0); err != nil {
			t.Errorf("Access: %v", err)
		}
		if core.TLB.Stats.Insertions > 5000 {
			t.Errorf("too many TLB fills (%d); huge entries not used", core.TLB.Stats.Insertions)
		}
	})
}

func TestPersistentTableCrashRecovery(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 128 << 20, TrackPersistence: true})
	cpus := cpu.NewSet(1)
	pool := dram.New(1 << 30)
	fs := ext4.Mkfs(ext4.Config{Dev: dev, JournalBytes: 8 << 20})
	d := New(Config{}, dev, pool, cpus, fs.Allocator(), fs)
	fs.SetHooks(d.Hooks(false))

	var descBlock uint64
	var wantExtents []vfs.Extent
	var ino vfs.Ino
	e := sim.New()
	e.Go("t", 0, 0, func(th *sim.Thread) {
		in, _ := fs.Create(th, "f")
		fs.Append(th, in, make([]byte, 1<<20))
		fs.Fsync(th, in) // journal commit fences the PTE flushes
		ft := d.TableOf(in)
		if ft == nil || !ft.Persistent {
			t.Errorf("expected persistent table")
			return
		}
		descBlock = ft.descBlock
		wantExtents = fs.Extents(in)
		ino = in.Ino
	})
	e.Run()

	dev.Crash()

	e2 := sim.New()
	e2.Go("recover", 0, 0, func(th *sim.Thread) {
		ft, err := RecoverFileTable(th, d, ino, descBlock)
		if err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		// Every file block must resolve through the recovered table.
		for _, ext := range wantExtents {
			for b := uint64(0); b < ext.Len; b++ {
				fb := ext.File + b
				ci := int(fb / 512)
				idx := int(fb % 512)
				c := &ft.chunks[ci]
				var pfn mem.PFN
				switch {
				case c.huge:
					pfn = c.hugePFN + mem.PFN(idx)
				case c.node != nil:
					pfn = c.node.Entries[idx].PFN()
				default:
					t.Errorf("chunk %d missing after recovery", ci)
					return
				}
				if pfn != mem.PFN(ext.Phys+b) {
					t.Errorf("block %d: recovered PFN %d, want %d", fb, pfn, ext.Phys+b)
					return
				}
			}
		}
	})
	e2.Run()
}

func TestMonitorMigratesHotPMemTables(t *testing.T) {
	ev := newEnv(256, 1, Config{MonitorEnabled: true})
	NewMonitor(ev.proc, ev.engine, 0)
	ev.run(func(th *sim.Thread) {
		// Interleave a padding file so the big file's chunks are never
		// physically contiguous: no huge promotion, PMem PTE nodes get
		// exercised by every walk (a fragmented-image stand-in).
		in := ev.mkFile(th, "f", 4096)
		pad, _ := ev.icache.Create(th, "pad")
		for i := 0; i < 128; i++ {
			ev.fs.Append(th, in, make([]byte, 512<<10))
			ev.fs.Append(th, pad, make([]byte, 4096))
		}
		core := ev.cpus.Cores[0]
		core.Bind(th)
		size := in.Size
		va, _ := ev.proc.Mmap(th, core, in, 0, size, mem.PermRead, FlagNoMsync)
		ft := ev.d.TableOf(in)
		if !ft.Persistent {
			t.Error("expected persistent table")
		}
		// Random 4K touches defeat the TLB and the PTE-line cache, so
		// walks hit PMem nodes hard.
		rng := uint64(12345)
		accessible := size &^ (mem.HugeSize - 1) // whole chunks only
		for i := 0; i < 120_000; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			off := (rng >> 12) % accessible
			off &^= mem.PageSize - 1
			if err := ev.mm.Access(th, core, va+mem.VirtAddr(off), 8, false, 0); err != nil {
				t.Errorf("access: %v", err)
			}
			if i%1000 == 0 {
				th.Yield() // let the monitor daemon sample
			}
		}
		if ev.d.Stats.Migrations == 0 {
			t.Errorf("monitor never migrated (avg walk sample irrelevant; PMem walks=%d)", core.Stats.PMemWalks)
		}
		if !ft.Migrated {
			t.Error("table not marked migrated")
		}
		// Post-migration accesses must keep working.
		if err := ev.mm.Access(th, core, va, 1<<20, false, 0); err != nil {
			t.Errorf("post-migration access: %v", err)
		}
	})
}
