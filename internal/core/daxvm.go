package core

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/dram"
	"daxvm/internal/fs/alloc"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/obs"
	"daxvm/internal/pmem"
	"daxvm/internal/pt"
	"daxvm/internal/radix"
	"daxvm/internal/sim"
	"daxvm/internal/topo"
)

// Flags are the daxvm_mmap flags (paper §IV-F).
type Flags uint32

const (
	// FlagEphemeral routes VA allocation through the ephemeral heap and
	// forbids every memory operation except munmap.
	FlagEphemeral Flags = 1 << iota
	// FlagUnmapAsync defers unmapping: zombie mappings are detached in
	// batches with one full TLB flush.
	FlagUnmapAsync
	// FlagNoMsync (combined with MAP_SYNC semantics) drops all kernel
	// dirty tracking; msync becomes a no-op and durability is entirely
	// user-space's job.
	FlagNoMsync
)

// Config tunes DaxVM.
type Config struct {
	// VolatileThreshold: files at or below this size use DRAM-only file
	// tables (default 32 KiB).
	VolatileThreshold uint64
	// AsyncBatchPages: zombie pages accumulated before a batched detach +
	// full flush (default 33; the paper also evaluates 512).
	AsyncBatchPages uint64
	// PrezeroBandwidthMBps throttles the background zeroing daemon
	// (default 1024 MB/s on an idle core; Fig. 9c also uses 64).
	PrezeroBandwidthMBps uint64
	// MonitorEnabled activates the MMU performance monitor (Table III).
	MonitorEnabled bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.VolatileThreshold == 0 {
		c.VolatileThreshold = VolatileThresholdDefault
	}
	if c.AsyncBatchPages == 0 {
		c.AsyncBatchPages = cost.FullFlushThresholdPages
	}
	if c.PrezeroBandwidthMBps == 0 {
		c.PrezeroBandwidthMBps = 1024
	}
	return c
}

// ZeroReleaser is the FS-side sink for daemon-zeroed blocks.
type ZeroReleaser interface {
	ReleaseZeroed(t *sim.Thread, ext []vfs.Extent)
}

// Stats aggregates DaxVM activity.
type Stats struct {
	AttachOps      uint64
	DetachOps      uint64
	AttachedChunks uint64
	ColdBuilds     uint64
	Upgrades       uint64 // volatile -> persistent conversions
	WPFaults2M     uint64
	MetaSyncs      uint64
	ZombieBatches  uint64
	ZombiePages    uint64
	ForcedUnmaps   uint64
	Migrations     uint64
	PMemTableBytes uint64
	DRAMTableBytes uint64
	PrezeroedMB    uint64
}

// DaxVM is the per-filesystem DaxVM state.
type DaxVM struct {
	cfg  Config
	dev  *pmem.Device
	dram *dram.Pool
	cpus *cpu.Set

	// metaAlloc supplies PMem blocks for persistent file tables (shared
	// with file data, as on a real image).
	metaAlloc *alloc.Allocator
	releaser  ZeroReleaser

	// tables holds persistent file tables (they outlive the inode
	// cache); volatile tables hang off vfs.Inode.FileTable.
	tables map[vfs.Ino]*FileTable

	prezero *Prezeroer
	procs   []*Proc

	// placement chooses the node for volatile file-table nodes and
	// monitor-migrated DRAM shadows; ileave is its interleave cursor.
	placement topo.Policy
	ileave    uint64

	// Trace receives DaxVM events (attach/detach, zombie flushes, daemon
	// batches, monitor migrations); nil = disabled.
	Trace *obs.Tracer

	Stats Stats
}

// New creates the DaxVM manager for one file system.
func New(cfg Config, dev *pmem.Device, pool *dram.Pool, cpus *cpu.Set, metaAlloc *alloc.Allocator, releaser ZeroReleaser) *DaxVM {
	return &DaxVM{
		cfg:       cfg.withDefaults(),
		dev:       dev,
		dram:      pool,
		cpus:      cpus,
		metaAlloc: metaAlloc,
		releaser:  releaser,
		tables:    make(map[vfs.Ino]*FileTable),
	}
}

// Config returns the effective configuration.
func (d *DaxVM) Config() Config { return d.cfg }

// SetPlacement selects where DaxVM's DRAM-resident table nodes go.
func (d *DaxVM) SetPlacement(p topo.Policy) { d.placement = p }

// pickNode applies the placement policy for a DRAM table allocation
// requested by t. Always node 0 on flat machines.
func (d *DaxVM) pickNode(t *sim.Thread) mem.NodeID {
	if d.cpus == nil || !d.cpus.Topo.Multi() {
		return 0
	}
	return d.placement.Pick(d.cpus.Topo, d.cpus.Topo.NodeOfCore(t.Core), &d.ileave)
}

// Hooks builds the vfs.Hooks wiring DaxVM into a file system. Pass
// prezero=true to intercept freed blocks for background zeroing.
func (d *DaxVM) Hooks(prezero bool) *vfs.Hooks {
	h := &vfs.Hooks{
		OnAlloc: func(t *sim.Thread, in *vfs.Inode, ext []vfs.Extent) {
			d.onAlloc(t, in, ext)
		},
		OnTruncate: func(t *sim.Thread, in *vfs.Inode) {
			d.onTruncate(t, in)
		},
		OnShrink: func(t *sim.Thread, in *vfs.Inode, keepBlocks uint64) {
			d.onShrink(t, in, keepBlocks)
		},
		OnEvict: func(t *sim.Thread, in *vfs.Inode) {
			d.onEvict(t, in)
		},
		OnLoad: func(t *sim.Thread, in *vfs.Inode) {
			d.onLoad(t, in)
		},
	}
	if prezero {
		h.OnFree = func(t *sim.Thread, ext []vfs.Extent) bool {
			if d.prezero == nil {
				return false
			}
			return d.prezero.Intercept(t, ext)
		}
	}
	return h
}

// StartPrezero creates the pre-zero daemon on the given engine/core.
func (d *DaxVM) StartPrezero(e *sim.Engine, coreID int) {
	d.prezero = NewPrezeroer(d, e, coreID)
}

// DrainPrezero synchronously zeroes and releases all pending blocks
// (experiment setup: "pre-zero in advance of running the workload").
func (d *DaxVM) DrainPrezero(t *sim.Thread) {
	if d.prezero != nil {
		d.prezero.Drain(t)
	}
}

// Prezero exposes the daemon state (stats, tests).
func (d *DaxVM) Prezero() *Prezeroer { return d.prezero }

// tableFor returns (building if needed) the file table for an inode.
func (d *DaxVM) tableFor(t *sim.Thread, in *vfs.Inode, fs vfs.FS) *FileTable {
	if ft, ok := d.tables[in.Ino]; ok {
		return ft
	}
	if ft, ok := in.FileTable.(*FileTable); ok && ft != nil {
		return ft
	}
	// Cold build from the extent map.
	persistent := in.Size > d.cfg.VolatileThreshold
	ft := &FileTable{Ino: in.Ino, Persistent: persistent, d: d}
	ft.Populate(t, fs.Extents(in))
	d.Stats.ColdBuilds++
	if persistent {
		d.tables[in.Ino] = ft
	} else {
		in.FileTable = ft
	}
	return ft
}

// onAlloc maintains tables as the FS allocates blocks.
func (d *DaxVM) onAlloc(t *sim.Thread, in *vfs.Inode, ext []vfs.Extent) {
	ft, ok := d.tables[in.Ino]
	if !ok {
		ft, _ = in.FileTable.(*FileTable)
	}
	if ft == nil {
		// Decide the medium by the size the file will have after this
		// allocation, so large files start persistent directly.
		var adding uint64
		for _, e := range ext {
			adding += e.Len * mem.PageSize
		}
		persistent := in.Size+adding > d.cfg.VolatileThreshold
		ft = &FileTable{Ino: in.Ino, Persistent: persistent, d: d}
		if persistent {
			d.tables[in.Ino] = ft
		} else {
			in.FileTable = ft
		}
	}
	ft.Populate(t, ext)
	// Volatile table outgrew the threshold: upgrade to persistent.
	if !ft.Persistent && ft.populatedPages*mem.PageSize > d.cfg.VolatileThreshold {
		d.upgrade(t, in, ft)
	}
}

// upgrade converts a volatile table to a persistent one in place.
func (d *DaxVM) upgrade(t *sim.Thread, in *vfs.Inode, ft *FileTable) {
	d.Stats.Upgrades++
	ft.Persistent = true
	for ci := range ft.chunks {
		c := &ft.chunks[ci]
		if c.node == nil || c.node.Loc.Medium == mem.PMem {
			continue
		}
		old := c.node
		n, blk := ft.newNode(t, true)
		for i := 0; i < mem.PTEsPerTable; i++ {
			if e := old.Entries[i]; e != 0 {
				n.SetEntry(t, i, e)
			}
		}
		n.FlushEntries(t, 0, mem.PTEsPerTable)
		c.node = n
		c.nodeBlock = blk
		if d.dram != nil && old.Frame != pt.NoFrame {
			d.dram.FreeFrame(t, old.Frame)
			old.Frame = pt.NoFrame
		}
		d.Stats.DRAMTableBytes -= mem.PageSize
	}
	ft.writeDescriptor(t)
	in.FileTable = nil
	d.tables[in.Ino] = ft
}

// onShrink trims table coverage after truncate.
func (d *DaxVM) onShrink(t *sim.Thread, in *vfs.Inode, keepBlocks uint64) {
	if ft := d.lookup(in); ft != nil {
		ft.Clear(t, keepBlocks)
		if keepBlocks == 0 {
			ft.Destroy(t)
			delete(d.tables, in.Ino)
			in.FileTable = nil
		}
	}
}

// onTruncate forces deferred unmappings of this inode before the FS
// reclaims blocks (safety, §IV-C "File system races").
func (d *DaxVM) onTruncate(t *sim.Thread, in *vfs.Inode) {
	for _, p := range d.procs {
		p.flushZombiesOf(t, in)
	}
}

// onEvict destroys volatile tables with the inode-cache entry; persistent
// tables survive unless the file is deleted.
func (d *DaxVM) onEvict(t *sim.Thread, in *vfs.Inode) {
	if ft, ok := in.FileTable.(*FileTable); ok && ft != nil && !ft.Persistent {
		ft.Destroy(t)
		in.FileTable = nil
	}
	if in.Deleted {
		if ft, ok := d.tables[in.Ino]; ok {
			ft.Destroy(t)
			delete(d.tables, in.Ino)
		}
	}
}

// onLoad re-links a persistent table on cold open (volatile ones are
// rebuilt lazily by tableFor).
func (d *DaxVM) onLoad(t *sim.Thread, in *vfs.Inode) {
	if ft, ok := d.tables[in.Ino]; ok {
		_ = ft // table root lives in the permanent inode; nothing to do
	}
}

func (d *DaxVM) lookup(in *vfs.Inode) *FileTable {
	if ft, ok := d.tables[in.Ino]; ok {
		return ft
	}
	if ft, ok := in.FileTable.(*FileTable); ok {
		return ft
	}
	return nil
}

// TableOf exposes the table for inspection (tests, storage accounting).
func (d *DaxVM) TableOf(in *vfs.Inode) *FileTable { return d.lookup(in) }

// --- per-process state -------------------------------------------------------

// Proc is DaxVM's per-process state, embedded by the kernel's process.
type Proc struct {
	d    *DaxVM
	MM   *mm.MM
	Heap *EphemeralHeap

	zombies     []*mm.VMA
	zombiePages uint64
}

// procs tracked for zombie forcing on truncate.
// (field on DaxVM; declared here to keep the per-proc code together)

// NewProc wires DaxVM into a process: installs the fault handlers and the
// ephemeral-VMA lookup.
func (d *DaxVM) NewProc(m *mm.MM) *Proc {
	p := &Proc{d: d, MM: m}
	p.Heap = NewEphemeralHeap(m)
	m.EphemeralLookup = p.Heap.Lookup
	m.DaxWPFault = p.wpFault
	d.procs = append(d.procs, p)
	return p
}

// Mmap is daxvm_mmap: O(1) attachment of pre-populated file tables.
// Returns the VA corresponding to fileOff (the mapping may silently cover
// more of the file for alignment, §IV-F).
func (p *Proc) Mmap(t *sim.Thread, core *cpu.Core, in *vfs.Inode, fileOff, length uint64, perm mem.Perm, flags Flags) (mem.VirtAddr, error) {
	if length == 0 {
		return 0, fmt.Errorf("daxvm: zero-length mmap")
	}
	began := t.Now()
	d := p.d
	m := p.MM
	ft := d.tableFor(t, in, m.FS())

	// Round to attachment granularity.
	span := uint64(mem.HugeSize)
	attachLevel := pt.LevelPMD
	start := mem.AlignedDown(fileOff, span)
	end := mem.AlignedUp(fileOff+length, span)
	if cov := uint64(len(ft.chunks)) * mem.HugeSize; end > cov {
		end = cov
	}
	if end <= start {
		return 0, fmt.Errorf("daxvm: mmap beyond populated file (off %d, file pages %d)", fileOff, ft.populatedPages)
	}
	vlen := end - start

	ephemeral := flags&FlagEphemeral != 0
	var va mem.VirtAddr
	// Mode-conditional locking: the scalable ephemeral path takes mmap_sem
	// as a reader (heap-internal locking covers the rest), the regular path
	// as a writer. The release below branches on the same flag, which the
	// path-insensitive lockdiscipline walker cannot prove.
	//lint:ignore lockdiscipline released in the matching branch below
	if ephemeral {
		// Scalable path: mmap_sem as reader + heap-internal locking.
		m.Sem.RLock(t, cost.SemAcquireFast)
		va = p.Heap.Alloc(t, vlen)
	} else { //lint:ignore lockdiscipline released in the matching branch below
		m.Sem.Lock(t, cost.SemAcquireFast)
		va = m.GetUnmappedArea(t, vlen, span)
	}

	v := &mm.VMA{
		Start: va, End: va + mem.VirtAddr(vlen),
		Perm: perm, Flags: mm.MapShared | mm.MapSync,
		Inode: in, FileOff: start,
		DaxVM: true, Ephemeral: ephemeral,
		NoSync:      flags&FlagNoMsync != 0,
		UnmapAsync:  flags&FlagUnmapAsync != 0,
		AttachLevel: attachLevel,
	}

	p.attachRange(t, v, ft)
	d.Stats.AttachOps++

	if ephemeral {
		p.Heap.Register(t, v)
		in.Mappers[v] = func(ft2 *sim.Thread) { p.forceUnmap(ft2, v) }
		//lint:ignore lockdiscipline acquired in the matching branch above
		m.Sem.RUnlock(t, cost.SemReleaseFast)
	} else {
		m.InsertVMA(t, v)
		in.Mappers[v] = func(ft2 *sim.Thread) { p.forceUnmap(ft2, v) }
		//lint:ignore lockdiscipline acquired in the matching branch above
		m.Sem.Unlock(t, cost.SemReleaseFast)
	}
	tag := "attach"
	if ephemeral {
		tag = "ephemeral"
	}
	d.Trace.Emit(obs.EvDaxvmMmap, coreID(core), began, t.Now()-began, tag, vlen/mem.PageSize)
	return va + mem.VirtAddr(fileOff-start), nil
}

// coreID names the trace track for a (possibly nil) core.
func coreID(c *cpu.Core) int {
	if c == nil {
		return 0
	}
	return c.ID
}

// attachPerm strips write when DaxVM dirty tracking (2 MiB-grained)
// applies, so first stores take the coarse tracking fault.
func attachPerm(v *mm.VMA) mem.Perm {
	perm := v.Perm
	if perm.CanWrite() && !v.NoSync {
		perm &^= mem.PermWrite
	}
	return perm
}

// attachRange splices the table fragments covering the VMA.
func (p *Proc) attachRange(t *sim.Thread, v *mm.VMA, ft *FileTable) {
	perm := attachPerm(v)
	c0 := int(v.FileOff / mem.HugeSize)
	n := int(uint64(v.End-v.Start) / mem.HugeSize)
	for i := 0; i < n; i++ {
		ci := c0 + i
		if ci >= len(ft.chunks) {
			break
		}
		va := v.Start + mem.VirtAddr(uint64(i)*mem.HugeSize)
		c := &ft.chunks[ci]
		switch {
		case c.huge:
			p.MM.AS.Map(t, va, pt.MakeEntry(c.hugePFN, perm, true, true), pt.LevelPMD)
		case ft.attachNode(ci) != nil:
			p.MM.AS.Attach(t, va, pt.LevelPMD, ft.attachNode(ci), perm)
		default:
			continue // hole
		}
		t.ChargeAs("attach", cost.AttachEntry)
		p.d.Stats.AttachedChunks++
	}
}

// Munmap is daxvm_munmap. Async mappings become zombies; sync mappings
// detach immediately.
func (p *Proc) Munmap(t *sim.Thread, core *cpu.Core, va mem.VirtAddr) error {
	began := t.Now()
	m := p.MM
	if v := p.Heap.Lookup(va); v != nil {
		m.Sem.RLock(t, cost.SemAcquireFast)
		if v.UnmapAsync {
			p.addZombie(t, core, v)
		} else {
			p.detachNow(t, core, v)
		}
		m.Sem.RUnlock(t, cost.SemReleaseFast)
		p.d.Trace.Emit(obs.EvDaxvmMunmap, coreID(core), began, t.Now()-began, "ephemeral", 0)
		return nil
	}
	m.Sem.Lock(t, cost.SemAcquireFast)
	v := m.FindVMA(t, va)
	if v == nil || !v.DaxVM {
		m.Sem.Unlock(t, cost.SemReleaseFast)
		return fmt.Errorf("daxvm: munmap of non-daxvm mapping at %#x", va)
	}
	m.EraseVMA(t, v)
	if v.UnmapAsync {
		p.zombies = append(p.zombies, v)
		p.zombiePages += p.populatedPagesIn(v)
		if p.zombiePages >= p.d.cfg.AsyncBatchPages {
			p.flushZombies(t, core)
		}
	} else {
		p.detachEntries(t, core, v, true)
	}
	m.Sem.Unlock(t, cost.SemReleaseFast)
	p.d.Trace.Emit(obs.EvDaxvmMunmap, coreID(core), began, t.Now()-began, "tree", 0)
	return nil
}

// addZombie defers an ephemeral unmap (caller holds Sem as reader).
func (p *Proc) addZombie(t *sim.Thread, core *cpu.Core, v *mm.VMA) {
	p.Heap.lock.Lock(t, cost.SpinLockAcquire)
	p.zombies = append(p.zombies, v)
	p.zombiePages += p.populatedPagesIn(v)
	trigger := p.zombiePages >= p.d.cfg.AsyncBatchPages
	p.Heap.lock.Unlock(t, cost.SpinLockRelease)
	if trigger {
		p.flushZombies(t, core)
	}
}

// detachNow removes an ephemeral mapping synchronously.
func (p *Proc) detachNow(t *sim.Thread, core *cpu.Core, v *mm.VMA) {
	p.Heap.Unregister(t, v)
	p.detachEntries(t, core, v, true)
}

// detachEntries clears attachment entries and invalidates. Invalidation
// charges follow the POPULATED pages of the mapping, not the 2 MiB-rounded
// virtual span — only live translations can be cached.
func (p *Proc) detachEntries(t *sim.Thread, core *cpu.Core, v *mm.VMA, invalidate bool) {
	pages := p.populatedPagesIn(v)
	p.MM.AS.ClearRange(t, v.Start, v.End)
	nChunks := uint64(v.End-v.Start) / mem.HugeSize
	t.ChargeAs("detach", cost.AttachEntry*nChunks)
	delete(v.Inode.Mappers, v)
	p.d.Stats.DetachOps++
	if invalidate && pages > 0 {
		targets := p.MM.Cores()
		if pages <= cost.FullFlushThresholdPages {
			vas := p.populatedVAsIn(v, cost.FullFlushThresholdPages)
			p.d.cpus.Shootdown(t, core, targets, cpu.ShootPages, vas, 0, 0)
		} else {
			p.d.cpus.Shootdown(t, core, targets, cpu.ShootFull, nil, 0, 0)
		}
	}
}

// populatedVAsIn lists the virtual pages of the mapping that have live
// translations (bounded by limit).
func (p *Proc) populatedVAsIn(v *mm.VMA, limit uint64) []mem.VirtAddr {
	ft := p.d.lookup(v.Inode)
	var vas []mem.VirtAddr
	if ft == nil {
		return vas
	}
	c0 := int(v.FileOff / mem.HugeSize)
	n := int(uint64(v.End-v.Start) / mem.HugeSize)
	for i := 0; i < n; i++ {
		ci := c0 + i
		if ci >= len(ft.chunks) {
			break
		}
		base := v.Start + mem.VirtAddr(uint64(i)*mem.HugeSize)
		cnt := ft.chunks[ci].pages
		for pg := 0; pg < cnt; pg++ {
			vas = append(vas, base+mem.VirtAddr(pg*mem.PageSize))
			if uint64(len(vas)) >= limit {
				return vas
			}
		}
	}
	return vas
}

// populatedPagesIn estimates live PTEs under the mapping (for
// invalidation policy).
func (p *Proc) populatedPagesIn(v *mm.VMA) uint64 {
	ft := p.d.lookup(v.Inode)
	if ft == nil {
		return uint64(v.End-v.Start) / mem.PageSize
	}
	c0 := int(v.FileOff / mem.HugeSize)
	c1 := c0 + int(uint64(v.End-v.Start)/mem.HugeSize)
	var pages uint64
	for ci := c0; ci < c1 && ci < len(ft.chunks); ci++ {
		pages += uint64(ft.chunks[ci].pages)
	}
	return pages
}

// flushZombies detaches every zombie with ONE full TLB flush across the
// process's cores (§IV-C).
func (p *Proc) flushZombies(t *sim.Thread, core *cpu.Core) {
	began := t.Now()
	t.PushAttr("zombie_flush")
	defer t.PopAttr()
	p.Heap.lock.Lock(t, cost.SpinLockAcquire)
	zs := p.zombies
	p.zombies = nil
	pages := p.zombiePages
	p.zombiePages = 0
	p.Heap.lock.Unlock(t, cost.SpinLockRelease)
	if len(zs) == 0 {
		return
	}
	for _, v := range zs {
		if v.Ephemeral {
			p.Heap.Unregister(t, v)
		}
		p.detachEntries(t, core, v, false)
	}
	p.d.cpus.Shootdown(t, core, p.MM.Cores(), cpu.ShootFull, nil, 0, 0)
	p.d.Stats.ZombieBatches++
	p.d.Stats.ZombiePages += pages
	p.d.Trace.Emit(obs.EvZombieFlush, coreID(core), began, t.Now()-began, "", pages)
}

// flushZombiesOf forces zombies of one inode synchronously (truncate
// race, §IV-C).
func (p *Proc) flushZombiesOf(t *sim.Thread, in *vfs.Inode) {
	var mine []*mm.VMA
	rest := p.zombies[:0]
	for _, v := range p.zombies {
		if v.Inode == in {
			mine = append(mine, v)
			p.zombiePages -= p.populatedPagesIn(v)
		} else {
			rest = append(rest, v)
		}
	}
	p.zombies = rest
	if len(mine) == 0 {
		return
	}
	core := p.anyCore()
	for _, v := range mine {
		if v.Ephemeral {
			p.Heap.Unregister(t, v)
		}
		p.detachEntries(t, core, v, false)
		p.d.Stats.ForcedUnmaps++
	}
	if core != nil {
		p.d.cpus.Shootdown(t, core, p.MM.Cores(), cpu.ShootFull, nil, 0, 0)
	}
}

// forceUnmap is the inode-mapper callback (truncate of a live mapping).
func (p *Proc) forceUnmap(t *sim.Thread, v *mm.VMA) {
	if v.Ephemeral {
		p.Heap.Unregister(t, v)
	} else {
		p.MM.Sem.Lock(t, cost.SemAcquireFast)
		p.MM.EraseVMA(t, v)
		p.MM.Sem.Unlock(t, cost.SemReleaseFast)
	}
	p.detachEntries(t, p.anyCore(), v, true)
	p.d.Stats.ForcedUnmaps++
}

func (p *Proc) anyCore() *cpu.Core {
	for _, c := range p.MM.Cores() {
		return c
	}
	return nil
}

// wpFault is the DaxVM write-protect fault path: dirty tracking at the
// attachment granularity (2 MiB), MAP_SYNC commit, permission upgrade at
// the attachment entry.
func (p *Proc) wpFault(t *sim.Thread, core *cpu.Core, v *mm.VMA, va mem.VirtAddr) error {
	t.Charge(cost.WriteProtectFaultService)
	p.d.Stats.WPFaults2M++
	if !v.NoSync {
		if p.MM.FS().SyncMetaIfDirty(t, v.Inode) {
			p.d.Stats.MetaSyncs++
		}
		// Tag the whole 2 MiB region dirty (one radix op per region).
		region := (uint64(va.HugeDown()-v.Start) + v.FileOff) / mem.PageSize
		t.Charge(cost.RadixTreeTag)
		v.Inode.DirtyPages.Set(region, struct{}{})
		v.Inode.DirtyPages.SetTag(region, radix.TagDirty)
	}
	// Upgrade the attachment-level entry.
	hva := va.HugeDown()
	if !p.MM.AS.AttachedPerm(t, hva, pt.LevelPMD, v.Perm) {
		// Huge leaf chunk: upgrade the PMD leaf itself.
		leaf, idx := p.MM.AS.LeafNode(hva)
		if leaf == nil {
			//lint:ignore hotalloc error path: a fault on an unmapped page ends the workload
			return fmt.Errorf("daxvm: wp fault on unmapped %#x", va)
		}
		leaf.SetEntry(t, idx, leaf.Entries[idx]|pt.BitWrite|pt.BitDirty)
	}
	t.Charge(cost.PTESetPerPage)
	return nil
}

// Mprotect over a DaxVM mapping: whole mappings only; ephemeral never.
func (p *Proc) Mprotect(t *sim.Thread, core *cpu.Core, va mem.VirtAddr, length uint64, perm mem.Perm) error {
	if v := p.Heap.Lookup(va); v != nil {
		return fmt.Errorf("daxvm: mprotect on ephemeral mapping")
	}
	p.MM.Sem.Lock(t, cost.SemAcquireFast)
	defer p.MM.Sem.Unlock(t, cost.SemReleaseFast)
	v := p.MM.FindVMA(t, va)
	if v == nil || !v.DaxVM {
		return fmt.Errorf("daxvm: mprotect of unknown mapping")
	}
	if va != v.Start+mem.VirtAddr(0) || length < v.Len() {
		return fmt.Errorf("daxvm: partial mprotect unsupported")
	}
	v.Perm = perm
	eff := attachPerm(v)
	for hva := v.Start; hva < v.End; hva += mem.HugeSize {
		p.MM.AS.AttachedPerm(t, hva, pt.LevelPMD, eff)
		t.Charge(cost.AttachEntry)
	}
	p.d.cpus.Shootdown(t, core, p.MM.Cores(), cpu.ShootFull, nil, 0, 0)
	return nil
}

// ZombieCount reports pending deferred unmaps (tests, vulnerability-window
// accounting).
func (p *Proc) ZombieCount() int { return len(p.zombies) }

// vmasOf collects the process's live DaxVM VMAs mapping the given inode
// (tree + ephemeral heap). Caller holds Sem.
func (p *Proc) vmasOf(ino vfs.Ino) []*mm.VMA {
	var out []*mm.VMA
	p.MM.EachVMA(func(v *mm.VMA) {
		if v.DaxVM && v.Inode != nil && v.Inode.Ino == ino {
			out = append(out, v)
		}
	})
	for _, v := range p.Heap.vmas {
		if v.Inode != nil && v.Inode.Ino == ino {
			out = append(out, v)
		}
	}
	return out
}
