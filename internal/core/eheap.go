package core

import (
	"daxvm/internal/cost"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/sim"
)

// regionSize is the granularity in which the ephemeral heap grows its
// virtual reservation (paper §IV-B: 1 GiB regions).
const regionSize = 1 << 30

// EphemeralHeap is DaxVM's dedicated address-space allocator for
// ephemeral mappings: linear (stack-like) allocation inside 1 GiB virtual
// regions, a per-region live counter for wholesale reuse, and a dedicated
// spinlock-protected VMA list instead of the global VMA tree. Heap
// operations take mmap_sem only as readers, which is what lets
// m(un)map-heavy workloads scale (Fig. 8a).
type EphemeralHeap struct {
	m       *mm.MM
	lock    sim.SpinLock
	regions []*heapRegion

	// vmas tracks live ephemeral mappings, ordered by start (the paper's
	// per-heap list; a slice with binary search keeps lookups cheap in
	// the simulator).
	vmas map[mem.VirtAddr]*mm.VMA

	Stats EphemeralStats
}

// EphemeralStats counts heap activity.
type EphemeralStats struct {
	Allocs       uint64
	Frees        uint64
	RegionGrows  uint64
	RegionResets uint64
}

type heapRegion struct {
	base mem.VirtAddr
	used uint64
	live int
}

// NewEphemeralHeap creates the heap for one process.
func NewEphemeralHeap(m *mm.MM) *EphemeralHeap {
	return &EphemeralHeap{m: m, vmas: make(map[mem.VirtAddr]*mm.VMA)}
}

// Alloc returns a 2 MiB-aligned virtual range of vlen bytes. The caller
// holds mmap_sem as reader; region growth upgrades briefly to writer.
func (h *EphemeralHeap) Alloc(t *sim.Thread, vlen uint64) mem.VirtAddr {
	vlen = mem.AlignedUp(vlen, mem.HugeSize)
	h.lock.Lock(t, cost.SpinLockAcquire)
	t.Charge(cost.EphemeralAlloc)
	var r *heapRegion
	if n := len(h.regions); n > 0 {
		r = h.regions[n-1]
		if r.used+vlen > regionSize {
			r = nil
		}
	}
	if r == nil {
		r = h.grow(t)
	}
	va := r.base + mem.VirtAddr(r.used)
	r.used += vlen
	r.live++
	h.Stats.Allocs++
	h.lock.Unlock(t, cost.SpinLockRelease)
	return va
}

// grow reserves a new 1 GiB region. The reservation itself needs the VA
// cursor, which GetUnmappedArea owns; growth is rare so the extra cost is
// amortized away.
func (h *EphemeralHeap) grow(t *sim.Thread) *heapRegion {
	va := h.m.GetUnmappedArea(t, regionSize, mem.HugeSize)
	r := &heapRegion{base: va}
	h.regions = append(h.regions, r)
	h.Stats.RegionGrows++
	return r
}

// Register records a live ephemeral VMA (caller holds Sem as reader).
func (h *EphemeralHeap) Register(t *sim.Thread, v *mm.VMA) {
	h.lock.Lock(t, cost.SpinLockAcquire)
	h.vmas[v.Start] = v
	h.lock.Unlock(t, cost.SpinLockRelease)
}

// Unregister drops a VMA and releases its region space when the region
// drains (stack-like reuse).
func (h *EphemeralHeap) Unregister(t *sim.Thread, v *mm.VMA) {
	h.lock.Lock(t, cost.SpinLockAcquire)
	t.Charge(cost.EphemeralFree)
	if _, ok := h.vmas[v.Start]; ok {
		delete(h.vmas, v.Start)
		h.Stats.Frees++
		for _, r := range h.regions {
			if v.Start >= r.base && v.Start < r.base+regionSize {
				r.live--
				if r.live == 0 {
					r.used = 0
					h.Stats.RegionResets++
				}
				break
			}
		}
	}
	h.lock.Unlock(t, cost.SpinLockRelease)
}

// Lookup resolves va to a live ephemeral VMA (no locking cost: used by
// the fault path under Sem-read, where the DES serializes access).
func (h *EphemeralHeap) Lookup(va mem.VirtAddr) *mm.VMA {
	if v, ok := h.vmas[va]; ok {
		return v
	}
	// The fault address is usually interior; scan regions first to
	// bail out fast for non-heap addresses.
	inHeap := false
	for _, r := range h.regions {
		if va >= r.base && va < r.base+regionSize {
			inHeap = true
			break
		}
	}
	if !inHeap {
		return nil
	}
	for _, v := range h.vmas {
		if va >= v.Start && va < v.End {
			return v
		}
	}
	return nil
}

// Live reports live ephemeral mappings.
func (h *EphemeralHeap) Live() int { return len(h.vmas) }
