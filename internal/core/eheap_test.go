package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daxvm/internal/cpu"
	"daxvm/internal/dram"
	"daxvm/internal/fs/ext4"
	"daxvm/internal/mem"
	"daxvm/internal/mm"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

func newHeap() *EphemeralHeap {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	f := ext4.Mkfs(ext4.Config{Dev: dev, JournalBytes: 8 << 20})
	m := mm.New(dram.New(1<<30), f, cpu.NewSet(1))
	return NewEphemeralHeap(m)
}

// Property: across any interleaving of allocations and frees, live ranges
// never overlap and every allocation is 2 MiB aligned.
func TestQuickEphemeralHeapNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHeap()
		ok := true
		e := sim.New()
		e.Go("t", 0, 0, func(th *sim.Thread) {
			type live struct {
				va  mem.VirtAddr
				len uint64
				v   *mm.VMA
			}
			var lives []live
			for op := 0; op < 200; op++ {
				if rng.Intn(2) == 0 || len(lives) == 0 {
					vlen := uint64(1+rng.Intn(4)) * mem.HugeSize
					va := h.Alloc(th, vlen)
					if uint64(va)%mem.HugeSize != 0 {
						ok = false
						return
					}
					for _, l := range lives {
						if va < l.va+mem.VirtAddr(l.len) && l.va < va+mem.VirtAddr(vlen) {
							ok = false // overlap with a live mapping
							return
						}
					}
					v := &mm.VMA{Start: va, End: va + mem.VirtAddr(vlen), Ephemeral: true}
					h.Register(th, v)
					lives = append(lives, live{va, vlen, v})
				} else {
					i := rng.Intn(len(lives))
					h.Unregister(th, lives[i].v)
					lives[i] = lives[len(lives)-1]
					lives = lives[:len(lives)-1]
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEphemeralHeapLookupInteriorAddresses(t *testing.T) {
	h := newHeap()
	e := sim.New()
	e.Go("t", 0, 0, func(th *sim.Thread) {
		va := h.Alloc(th, 4*mem.HugeSize)
		v := &mm.VMA{Start: va, End: va + 4*mem.HugeSize, Ephemeral: true}
		h.Register(th, v)
		if h.Lookup(va+3*mem.HugeSize+12345) != v {
			t.Error("interior lookup failed")
		}
		if h.Lookup(va+4*mem.HugeSize) != nil {
			t.Error("lookup past end hit")
		}
		if h.Lookup(0x1234) != nil {
			t.Error("non-heap address resolved")
		}
		h.Unregister(th, v)
		if h.Lookup(va) != nil {
			t.Error("freed mapping still resolvable")
		}
	})
	e.Run()
}
