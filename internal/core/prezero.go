package core

import (
	"daxvm/internal/cost"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/obs"
	"daxvm/internal/sim"
)

// Prezeroer is DaxVM's asynchronous block pre-zeroing engine (§IV-E):
// freed blocks are parked on per-core lists instead of returning to the
// allocator; a rate-limited kernel thread zeroes them with non-temporal
// stores and only then releases them, marked zeroed. Allocation-time
// zeroing then disappears from the foreground path.
type Prezeroer struct {
	d *DaxVM

	// perCore lists of extents awaiting zeroing (free-path scalability).
	perCore [][]vfs.Extent
	locks   []sim.SpinLock

	pendingBlocks uint64

	Stats PrezeroStats
}

// PrezeroStats counts daemon activity.
type PrezeroStats struct {
	Intercepted uint64 // blocks taken off the free path
	Zeroed      uint64 // blocks zeroed and released
	Stalls      uint64 // times the daemon hit its bandwidth budget
	Batches     uint64 // daemon quanta that zeroed at least one block
}

// zeroQuantum is the daemon's wakeup period in cycles (200 µs).
const zeroQuantum = 200 * cost.CyclesPerUsec

// NewPrezeroer starts the daemon on the engine, pinned to coreID (the
// paper dedicates an idle core).
func NewPrezeroer(d *DaxVM, e *sim.Engine, coreID int) *Prezeroer {
	ncores := len(d.cpus.Cores)
	p := &Prezeroer{
		d:       d,
		perCore: make([][]vfs.Extent, ncores),
		locks:   make([]sim.SpinLock, ncores),
	}
	e.GoDaemon("prezerod", coreID, 0, p.run)
	return p
}

// Intercept takes freed extents onto the caller's core list.
func (p *Prezeroer) Intercept(t *sim.Thread, ext []vfs.Extent) bool {
	c := t.Core % len(p.perCore)
	p.locks[c].Lock(t, cost.SpinLockAcquire)
	p.perCore[c] = append(p.perCore[c], ext...)
	for _, e := range ext {
		p.pendingBlocks += e.Len
		p.Stats.Intercepted += e.Len
	}
	p.locks[c].Unlock(t, cost.SpinLockRelease)
	return true
}

// run is the daemon loop: every quantum, zero up to the bandwidth budget
// and release the blocks to the allocator as known-zeroed.
func (p *Prezeroer) run(t *sim.Thread) {
	t.PushAttr("daemon.prezero")
	bytesPerQuantum := p.d.cfg.PrezeroBandwidthMBps << 20 * zeroQuantum / cost.CyclesPerSecond
	if bytesPerQuantum < mem.PageSize {
		bytesPerQuantum = mem.PageSize
	}
	for {
		t.Sleep(zeroQuantum)
		began := t.Now()
		zeroedBefore := p.Stats.Zeroed
		budget := bytesPerQuantum
		for c := range p.perCore {
			if budget == 0 {
				break
			}
			p.locks[c].Lock(t, cost.SpinLockAcquire)
			list := p.perCore[c]
			var done int
			for i, e := range list {
				bytes := e.Len * mem.PageSize
				if bytes > budget {
					// Split: zero what fits, keep the rest.
					fit := budget / mem.PageSize
					if fit > 0 {
						p.zeroAndRelease(t, vfs.Extent{Phys: e.Phys, Len: fit})
						list[i].Phys += fit
						list[i].Len -= fit
						budget -= fit * mem.PageSize
					}
					p.Stats.Stalls++
					break
				}
				p.zeroAndRelease(t, e)
				budget -= bytes
				done = i + 1
			}
			p.perCore[c] = list[done:]
			p.locks[c].Unlock(t, cost.SpinLockRelease)
		}
		if zeroed := p.Stats.Zeroed - zeroedBefore; zeroed > 0 {
			p.Stats.Batches++
			p.d.Trace.Emit(obs.EvPrezeroBatch, t.Core, began, t.Now()-began, "", zeroed)
		}
	}
}

// zeroAndRelease zeroes one extent with nt-stores (consuming device write
// bandwidth, which is how the daemon interferes with foreground traffic)
// and releases it marked zeroed.
func (p *Prezeroer) zeroAndRelease(t *sim.Thread, e vfs.Extent) {
	p.d.dev.Zero(t, mem.PhysAddr(e.Phys*mem.PageSize), e.Len*mem.PageSize)
	p.d.releaser.ReleaseZeroed(t, []vfs.Extent{e})
	p.pendingBlocks -= e.Len
	p.Stats.Zeroed += e.Len
	p.d.Stats.PrezeroedMB += e.Len * mem.PageSize >> 20
}

// Drain synchronously zeroes everything pending (experiment setup:
// "pre-zero in advance of running the workload").
func (p *Prezeroer) Drain(t *sim.Thread) {
	for c := range p.perCore {
		p.locks[c].Lock(t, cost.SpinLockAcquire)
		list := p.perCore[c]
		p.perCore[c] = nil
		p.locks[c].Unlock(t, cost.SpinLockRelease)
		for _, e := range list {
			p.zeroAndRelease(t, e)
		}
	}
}

// PendingBlocks reports blocks awaiting zeroing.
func (p *Prezeroer) PendingBlocks() uint64 { return p.pendingBlocks }
