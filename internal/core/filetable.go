// Package core implements DaxVM, the paper's contribution: pre-populated
// per-file page tables (file tables) giving O(1) mmap, a scalable
// ephemeral address-space allocator, asynchronous batched unmapping,
// coarse-grain or zero kernel dirty tracking, and asynchronous block
// pre-zeroing — all layered on the simulated kernel's mm and FS models.
package core

import (
	"fmt"

	"daxvm/internal/cost"
	"daxvm/internal/fs/alloc"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/pt"
	"daxvm/internal/sim"
)

// VolatileThresholdDefault: files up to this size keep their tables in
// DRAM only (storage-tax control; paper §IV-A1).
const VolatileThresholdDefault = 32 << 10

// chunk is the file-table state for one 2 MiB span of the file.
type chunk struct {
	// node is the shared PTE-level node (nil when the chunk is a huge
	// leaf). Volatile chunks have a DRAM node; persistent chunks a
	// PMem-resident node (possibly shadowed by a DRAM copy after
	// migration).
	node *pt.Node
	// volatileNode is the DRAM shadow after migration (or the only node
	// for volatile tables — then node == volatileNode).
	volatileNode *pt.Node
	// huge: the chunk's 512 blocks are one aligned run, representable as
	// a PMD leaf entry.
	huge    bool
	hugePFN mem.PFN
	// pages populated in this chunk.
	pages int
	// nodeBlock is the PMem block backing a persistent node.
	nodeBlock uint64
}

// FileTable is DaxVM's pre-populated page-table fragment set for one file.
type FileTable struct {
	Ino        vfs.Ino
	Persistent bool
	Migrated   bool // persistent tables copied to DRAM by the monitor

	chunks []chunk

	// descBlock is the PMem block holding the on-media descriptor
	// (per-chunk node addresses) for persistent tables.
	descBlock uint64

	populatedPages uint64

	d *DaxVM
}

// attachNode returns the node to splice for chunk i, preferring the DRAM
// shadow after migration.
func (ft *FileTable) attachNode(i int) *pt.Node {
	c := &ft.chunks[i]
	if c.volatileNode != nil {
		return c.volatileNode
	}
	return c.node
}

// Chunks reports the number of 2 MiB spans covered.
func (ft *FileTable) Chunks() int { return len(ft.chunks) }

// PopulatedPages reports populated PTEs.
func (ft *FileTable) PopulatedPages() uint64 { return ft.populatedPages }

// StorageBytes reports PMem consumed by persistent nodes + descriptor.
func (ft *FileTable) StorageBytes() uint64 {
	if !ft.Persistent {
		return 0
	}
	n := uint64(mem.PageSize) // descriptor
	for i := range ft.chunks {
		if ft.chunks[i].node != nil && ft.chunks[i].node.Loc.Medium == mem.PMem {
			n += mem.PageSize
		}
	}
	return n
}

// DRAMBytes reports DRAM consumed by volatile nodes/shadows.
func (ft *FileTable) DRAMBytes() uint64 {
	var n uint64
	for i := range ft.chunks {
		c := &ft.chunks[i]
		if c.volatileNode != nil {
			n += mem.PageSize
		} else if c.node != nil && c.node.Loc.Medium == mem.DRAM {
			n += mem.PageSize
		}
	}
	return n
}

// newNode allocates one file-table node in the right medium: persistent
// nodes live on the PMem node owning their backing block; volatile nodes
// follow the mount's placement policy.
func (ft *FileTable) newNode(t *sim.Thread, persistent bool) (*pt.Node, uint64) {
	n := pt.NewNode(pt.LevelPTE, mem.Loc{Medium: mem.DRAM})
	n.Shared = true
	n.NoAD = true // DaxVM drops A/D maintenance in file tables
	var blockAddr uint64
	if persistent {
		runs := ft.d.metaAlloc.Alloc(t, 1)
		if runs == nil {
			panic("daxvm: out of PMem for file tables")
		}
		blockAddr = runs[0].Start
		n.BackAddr = mem.PhysAddr(blockAddr * mem.PageSize)
		n.Loc = mem.Loc{Medium: mem.PMem, Node: ft.d.dev.NodeOf(n.BackAddr)}
		n.Backing = ft.d.dev
		ft.d.Stats.PMemTableBytes += mem.PageSize
	} else {
		if ft.d.dram != nil {
			node := ft.d.pickNode(t)
			n.Frame = ft.d.dram.AllocFrameOn(t, node)
			n.Loc.Node = node
		} else {
			t.Charge(cost.TableAlloc)
		}
		ft.d.Stats.DRAMTableBytes += mem.PageSize
	}
	return n, blockAddr
}

// Populate extends the table with freshly allocated extents (the FS
// OnAlloc hook). Persistent-node PTE stores are mirrored to media and
// flushed in cache-line batches; the fence rides on the FS journal/log
// commit (crash consistency, §IV-A1).
func (ft *FileTable) Populate(t *sim.Thread, ext []vfs.Extent) {
	for _, e := range ext {
		for b := uint64(0); b < e.Len; b++ {
			fileBlock := e.File + b
			phys := e.Phys + b
			ci := int(fileBlock / alloc.BlocksPerHuge)
			idx := int(fileBlock % alloc.BlocksPerHuge)
			for ci >= len(ft.chunks) {
				ft.chunks = append(ft.chunks, chunk{})
			}
			c := &ft.chunks[ci]
			if c.node == nil && !c.huge {
				n, blk := ft.newNode(t, ft.Persistent)
				c.node = n
				c.nodeBlock = blk
				if ft.Persistent {
					ft.writeDescriptor(t)
				}
			}
			if c.huge {
				// Growth after a chunk went huge cannot happen (huge
				// means fully populated), but guard anyway.
				continue
			}
			entry := pt.MakeEntry(mem.PFN(phys), mem.PermRead|mem.PermWrite, true, false)
			c.node.SetEntry(t, idx, entry)
			t.Charge(cost.PTESetPerPage / 4) // pre-population batches well
			c.pages++
			ft.populatedPages++
			if ft.Migrated && c.volatileNode != nil {
				c.volatileNode.SetEntry(t, idx, entry)
			}
		}
		// Batched cache-line flush of the lines this extent touched.
		if ft.Persistent {
			ciFirst := int(e.File / alloc.BlocksPerHuge)
			ciLast := int((e.File + e.Len - 1) / alloc.BlocksPerHuge)
			for ci := ciFirst; ci <= ciLast; ci++ {
				c := &ft.chunks[ci]
				if c.node == nil {
					continue
				}
				lo, hi := 0, mem.PTEsPerTable
				if ci == ciFirst {
					lo = int(e.File % alloc.BlocksPerHuge)
				}
				if ci == ciLast {
					hi = int((e.File+e.Len-1)%alloc.BlocksPerHuge) + 1
				}
				c.node.FlushEntries(t, lo, hi)
			}
		}
	}
	ft.promoteHugeChunks(t)
}

// promoteHugeChunks converts fully-populated, physically-contiguous,
// aligned chunks into PMD huge leaves.
func (ft *FileTable) promoteHugeChunks(t *sim.Thread) {
	for ci := range ft.chunks {
		c := &ft.chunks[ci]
		if c.huge || c.node == nil || c.pages != alloc.BlocksPerHuge {
			continue
		}
		base := c.node.Entries[0].PFN()
		if !mem.IsAligned(uint64(base), alloc.BlocksPerHuge) {
			continue
		}
		contig := true
		for i := 1; i < alloc.BlocksPerHuge; i++ {
			if c.node.Entries[i].PFN() != base+mem.PFN(i) {
				contig = false
				break
			}
		}
		if !contig {
			continue
		}
		c.huge = true
		c.hugePFN = base
		ft.releaseNode(t, c)
	}
}

// releaseNode frees a chunk's node(s) after huge promotion.
func (ft *FileTable) releaseNode(t *sim.Thread, c *chunk) {
	if c.node != nil && c.node.Loc.Medium == mem.PMem {
		ft.d.metaAlloc.Free(t, []alloc.Run{{Start: c.nodeBlock, Len: 1}})
		ft.d.Stats.PMemTableBytes -= mem.PageSize
	} else if c.node != nil {
		if ft.d.dram != nil && c.node.Frame != pt.NoFrame {
			ft.d.dram.FreeFrame(t, c.node.Frame)
			c.node.Frame = pt.NoFrame
		}
		ft.d.Stats.DRAMTableBytes -= mem.PageSize
	}
	if c.volatileNode != nil && c.volatileNode != c.node {
		if ft.d.dram != nil && c.volatileNode.Frame != pt.NoFrame {
			ft.d.dram.FreeFrame(t, c.volatileNode.Frame)
			c.volatileNode.Frame = pt.NoFrame
		}
		ft.d.Stats.DRAMTableBytes -= mem.PageSize
	}
	c.node = nil
	c.volatileNode = nil
	if ft.Persistent {
		ft.writeDescriptor(t)
	}
}

// Clear removes translations for file blocks >= keepBlocks (truncate).
func (ft *FileTable) Clear(t *sim.Thread, keepBlocks uint64) {
	keepChunks := int((keepBlocks + alloc.BlocksPerHuge - 1) / alloc.BlocksPerHuge)
	for ci := len(ft.chunks) - 1; ci >= keepChunks; ci-- {
		c := &ft.chunks[ci]
		ft.populatedPages -= uint64(c.pages)
		c.huge = false
		ft.releaseNode(t, c)
		ft.chunks = ft.chunks[:ci]
	}
	if keepChunks > 0 && keepChunks <= len(ft.chunks) {
		c := &ft.chunks[keepChunks-1]
		firstDead := int(keepBlocks % alloc.BlocksPerHuge)
		if firstDead != 0 && c.node != nil {
			for i := firstDead; i < mem.PTEsPerTable; i++ {
				if c.node.Entries[i].Present() {
					c.node.SetEntry(t, i, 0)
					c.pages--
					ft.populatedPages--
				}
			}
			if ft.Persistent {
				c.node.FlushEntries(t, firstDead, mem.PTEsPerTable)
			}
		}
	}
	if ft.Persistent {
		ft.writeDescriptor(t)
	}
}

// Destroy releases every node (inode eviction for volatile tables, file
// deletion for persistent ones).
func (ft *FileTable) Destroy(t *sim.Thread) {
	for ci := range ft.chunks {
		ft.releaseNode(t, &ft.chunks[ci])
	}
	ft.chunks = nil
	ft.populatedPages = 0
	if ft.Persistent && ft.descBlock != 0 {
		ft.d.metaAlloc.Free(t, []alloc.Run{{Start: ft.descBlock, Len: 1}})
		ft.d.Stats.PMemTableBytes -= mem.PageSize
		ft.descBlock = 0
	}
}

// --- on-media descriptor (persistent tables) --------------------------------

// Descriptor layout (block ft.descBlock): 8-byte magic+ino, then one
// 8-byte word per chunk: the physical block of the chunk's PTE node, or
// hugePFN|hugeBit, or 0 for absent.
const (
	descMagic   = uint64(0xDA4F17AB1E000000)
	descHugeBit = uint64(1) << 62
)

func (ft *FileTable) writeDescriptor(t *sim.Thread) {
	if ft.descBlock == 0 {
		runs := ft.d.metaAlloc.Alloc(t, 1)
		if runs == nil {
			panic("daxvm: out of PMem for descriptor")
		}
		ft.descBlock = runs[0].Start
		ft.d.Stats.PMemTableBytes += mem.PageSize
	}
	if len(ft.chunks) > mem.PageSize/8-2 {
		panic("daxvm: descriptor overflow (file > 1 TiB?)")
	}
	buf := make([]byte, 8*(2+len(ft.chunks)))
	putLE(buf[0:], descMagic|uint64(ft.Ino)&0xFFFFFF)
	putLE(buf[8:], uint64(len(ft.chunks)))
	for i := range ft.chunks {
		c := &ft.chunks[i]
		var w uint64
		switch {
		case c.huge:
			w = descHugeBit | uint64(c.hugePFN)
		case c.node != nil:
			w = c.nodeBlock
		}
		putLE(buf[8*(2+i):], w)
	}
	addr := mem.PhysAddr(ft.descBlock * mem.PageSize)
	ft.d.dev.WriteCached(t, addr, buf)
	ft.d.dev.Flush(t, addr, uint64(len(buf)))
	// Fence rides on the FS journal/log commit.
}

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getLE(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// RecoverFileTable rebuilds a persistent file table from media after a
// crash: the descriptor block gives per-chunk node locations; node
// contents are read back from their mirrored PMem blocks.
func RecoverFileTable(t *sim.Thread, d *DaxVM, ino vfs.Ino, descBlock uint64) (*FileTable, error) {
	dev := d.dev
	addr := mem.PhysAddr(descBlock * mem.PageSize)
	head := make([]byte, 8)
	dev.Read(t, addr, head)
	if getLE(head)&^uint64(0xFFFFFF) != descMagic {
		return nil, fmt.Errorf("daxvm: bad file-table descriptor at block %d", descBlock)
	}
	ft := &FileTable{Ino: ino, Persistent: true, descBlock: descBlock, d: d}
	cntBuf := make([]byte, 8)
	dev.Read(t, addr+8, cntBuf)
	count := int(getLE(cntBuf))
	if count > mem.PageSize/8-2 {
		return nil, fmt.Errorf("daxvm: corrupt descriptor chunk count %d", count)
	}
	for i := 0; i < count; i++ {
		w := make([]byte, 8)
		dev.Read(t, addr+mem.PhysAddr(8*(2+i)), w)
		v := getLE(w)
		if v == 0 {
			ft.chunks = append(ft.chunks, chunk{})
			continue
		}
		var c chunk
		if v&descHugeBit != 0 {
			c.huge = true
			c.hugePFN = mem.PFN(v &^ descHugeBit)
			c.pages = alloc.BlocksPerHuge
		} else {
			backAddr := mem.PhysAddr(v * mem.PageSize)
			n := pt.NewNode(pt.LevelPTE, mem.Loc{Medium: mem.PMem, Node: dev.NodeOf(backAddr)})
			n.Shared = true
			n.NoAD = true
			n.Backing = dev
			n.BackAddr = backAddr
			raw := dev.Bytes(n.BackAddr, mem.PageSize)
			for idx := 0; idx < mem.PTEsPerTable; idx++ {
				e := pt.Entry(getLE(raw[idx*8:]))
				if e.Present() {
					n.Entries[idx] = 0 // SetEntry counts live
					n.SetEntry(nil2(t), idx, e)
					c.pages++
				}
			}
			c.node = n
			c.nodeBlock = v
		}
		ft.populatedPages += uint64(c.pages)
		ft.chunks = append(ft.chunks, c)
	}
	return ft, nil
}

// nil2 passes through the thread (placeholder for charge-free rebuild
// paths if recovery costing is ever split out).
func nil2(t *sim.Thread) *sim.Thread { return t }
