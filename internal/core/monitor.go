package core

import (
	"daxvm/internal/cost"
	"daxvm/internal/cpu"
	"daxvm/internal/mem"
	"daxvm/internal/obs"
	"daxvm/internal/pt"
	"daxvm/internal/sim"
)

// Monitor is DaxVM's MMU performance monitor (paper Table III): it samples
// hardware performance counters and, when the average page-walk latency
// exceeds 200 cycles while walks consume more than 5% of execution time,
// migrates the process's PMem-resident file tables to DRAM.
type Monitor struct {
	p     *Proc
	cores []*cpu.Core

	lastWalkCycles []uint64
	lastWalks      []uint64
	lastClock      []uint64

	Stats MonitorStats
}

// MonitorStats records monitor decisions.
type MonitorStats struct {
	Samples       uint64
	Triggers      uint64
	AvgWalkSample uint64 // last sampled average walk latency
}

// monitorQuantum is the sampling period (1 ms).
const monitorQuantum = 1000 * cost.CyclesPerUsec

// NewMonitor starts the monitor daemon for a process.
func NewMonitor(p *Proc, e *sim.Engine, coreID int) *Monitor {
	cores := p.MM.Cores()
	m := &Monitor{
		p:              p,
		cores:          cores,
		lastWalkCycles: make([]uint64, len(cores)),
		lastWalks:      make([]uint64, len(cores)),
		lastClock:      make([]uint64, len(cores)),
	}
	e.GoDaemon("daxvm-mon", coreID, 0, m.run)
	return m
}

func (m *Monitor) run(t *sim.Thread) {
	t.PushAttr("daemon.monitor")
	for {
		t.Sleep(monitorQuantum)
		t.ChargeAs("sample", cost.PerfCounterRead*uint64(len(m.cores)))
		m.Stats.Samples++
		var dWalkCycles, dWalks, dBusy uint64
		for i, c := range m.cores {
			dWalkCycles += c.Stats.WalkCycles - m.lastWalkCycles[i]
			dWalks += c.Stats.Walks - m.lastWalks[i]
			m.lastWalkCycles[i] = c.Stats.WalkCycles
			m.lastWalks[i] = c.Stats.Walks
			if b := c.Bound(); b != nil {
				now := b.Now()
				if now > m.lastClock[i] {
					dBusy += now - m.lastClock[i]
					m.lastClock[i] = now
				}
			}
		}
		if dWalks == 0 || dBusy == 0 {
			continue
		}
		avgWalk := dWalkCycles / dWalks
		m.Stats.AvgWalkSample = avgWalk
		overheadPct := dWalkCycles * 100 / dBusy
		if avgWalk > cost.MonitorWalkCycleThreshold && overheadPct > cost.MonitorMMUOverheadPct {
			m.migrate(t)
		}
	}
}

// migrate builds DRAM shadows of the PMem table nodes attached in the
// process and re-splices the attachments (paper §IV-A1: "builds
// asynchronously volatile tables and walks the process tables to detach
// the persistent fragments and attach the new volatile").
func (m *Monitor) migrate(t *sim.Thread) {
	began := t.Now()
	t.PushAttr("migrate")
	defer t.PopAttr()
	p := m.p
	d := p.d
	migratedAny := false
	p.MM.Sem.Lock(t, cost.SemAcquireFast)
	for _, ino := range obs.SortedKeys(d.tables) {
		ft := d.tables[ino]
		if !ft.Persistent || ft.Migrated {
			continue
		}
		anyChunk := false
		for ci := range ft.chunks {
			c := &ft.chunks[ci]
			if c.node == nil || c.node.Loc.Medium != mem.PMem || c.volatileNode != nil {
				continue
			}
			node := d.pickNode(t)
			shadow := pt.NewNode(pt.LevelPTE, mem.Loc{Medium: mem.DRAM, Node: node})
			shadow.Shared = true
			shadow.NoAD = true
			for i := 0; i < mem.PTEsPerTable; i++ {
				if e := c.node.Entries[i]; e != 0 {
					shadow.SetEntry(t, i, e)
				}
			}
			// Copy cost: streaming read of one PMem page + DRAM stores.
			t.ChargeAs("table_copy", cost.CopyFromPMemPerPage)
			if d.dram != nil {
				shadow.Frame = d.dram.AllocFrameOn(t, node)
			}
			d.Stats.DRAMTableBytes += mem.PageSize
			c.volatileNode = shadow
			anyChunk = true
		}
		if anyChunk {
			ft.Migrated = true
			migratedAny = true
			m.reattach(t, ft)
		}
	}
	p.MM.Sem.Unlock(t, cost.SemReleaseFast)
	if migratedAny {
		m.Stats.Triggers++
		d.Stats.Migrations++
		// Stale translations and PTE-line state die with one flush.
		core := p.anyCore()
		if core != nil {
			d.cpus.Shootdown(t, core, p.MM.Cores(), cpu.ShootFull, nil, 0, 0)
		}
		for _, c := range p.MM.Cores() {
			c.DropPTELines()
		}
		d.Trace.Emit(obs.EvMonitorMigrate, t.Core, began, t.Now()-began, "", m.Stats.AvgWalkSample)
	}
}

// reattach walks the process's DaxVM VMAs of this table and swaps the
// attachment pointers to the DRAM shadows.
func (m *Monitor) reattach(t *sim.Thread, ft *FileTable) {
	p := m.p
	for _, v := range p.vmasOf(ft.Ino) {
		c0 := int(v.FileOff / mem.HugeSize)
		n := int(uint64(v.End-v.Start) / mem.HugeSize)
		for i := 0; i < n; i++ {
			ci := c0 + i
			if ci >= len(ft.chunks) {
				break
			}
			c := &ft.chunks[ci]
			if c.volatileNode == nil {
				continue
			}
			va := v.Start + mem.VirtAddr(uint64(i)*mem.HugeSize)
			if old := p.MM.AS.Detach(t, va, pt.LevelPMD); old != nil {
				p.MM.AS.Attach(t, va, pt.LevelPMD, c.volatileNode, attachPerm(v))
				t.ChargeAs("reattach", cost.AttachEntry*2)
			}
		}
	}
}
