// Command simlint is the simulator's multichecker: it loads the
// packages named by its argument patterns (default ./...) and runs the
// project's custom analyzers plus reduced ports of three stock ones.
//
// Each analyzer applies to the scope where its invariant holds:
//
//	determinism     daxvm/internal/...          (the simulation core)
//	chargeunits     daxvm/internal/..., cmd/... (anywhere costs flow)
//	attrbalance     everywhere outside package sim
//	spanbalance     everywhere outside package span
//	lockdiscipline  everywhere outside package sim
//	detmap          everywhere
//	shadow, nilness, unusedwrite: everywhere
//
// Findings print as path:line:col: message [analyzer]. Exit status is 1
// if any finding was reported, 2 if loading or analysis failed.
//
// Suppress a finding with a `//lint:ignore <analyzer> reason` comment on
// the offending line or the line above; `all` matches every analyzer.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"daxvm/tools/simlint/ana"
	"daxvm/tools/simlint/analyzers/attrbalance"
	"daxvm/tools/simlint/analyzers/chargeunits"
	"daxvm/tools/simlint/analyzers/determinism"
	"daxvm/tools/simlint/analyzers/detmap"
	"daxvm/tools/simlint/analyzers/lockdiscipline"
	"daxvm/tools/simlint/analyzers/spanbalance"
	"daxvm/tools/simlint/stock"
)

type check struct {
	analyzer *ana.Analyzer
	applies  func(pkgPath string) bool
}

func everywhere(string) bool { return true }

func underAny(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(path, p) {
				return true
			}
		}
		return false
	}
}

var suite = []check{
	{determinism.Analyzer, underAny("daxvm/internal/")},
	{chargeunits.Analyzer, underAny("daxvm/internal/", "daxvm/cmd/")},
	{attrbalance.Analyzer, everywhere},    // skips package sim itself
	{spanbalance.Analyzer, everywhere},    // skips package span itself
	{lockdiscipline.Analyzer, everywhere}, // skips package sim itself
	{detmap.Analyzer, everywhere},
	{stock.Shadow, everywhere},
	{stock.Nilness, everywhere},
	{stock.UnusedWrite, everywhere},
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, c := range suite {
			fmt.Printf("%-16s %s\n", c.analyzer.Name, c.analyzer.Doc)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !knownAnalyzer(name) {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			selected[name] = true
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := ana.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		file      string
		line, col int
		msg       string
		analyzer  string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, c := range suite {
			if len(selected) > 0 && !selected[c.analyzer.Name] {
				continue
			}
			if !c.applies(pkg.PkgPath) {
				continue
			}
			diags, err := ana.Run(c.analyzer, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %s: %s: %v\n", c.analyzer.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s [%s]\n", f.file, f.line, f.col, f.msg, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func knownAnalyzer(name string) bool {
	for _, c := range suite {
		if c.analyzer.Name == name {
			return true
		}
	}
	return false
}
