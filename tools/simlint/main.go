// Command simlint is the simulator's multichecker: it loads the
// packages named by its argument patterns (default ./...) and runs the
// project's custom analyzers plus reduced ports of three stock ones.
//
// Each analyzer applies to the scope where its invariant holds:
//
//	determinism     daxvm/internal/...          (the simulation core)
//	chargeunits     daxvm/internal/..., cmd/... (anywhere costs flow)
//	attrbalance     everywhere outside package sim
//	spanbalance     everywhere outside package span
//	lockdiscipline  everywhere outside package sim
//	detmap          everywhere
//	suppaudit       everywhere (plus a stale-suppression audit after
//	                the full suite has run)
//	shadow, nilness, unusedwrite: everywhere
//	lockorder       whole program (global lock acquisition order,
//	                guarded-by/holds verification across calls)
//	hotalloc        whole program (allocations reachable from hot-path
//	                roots, with per-root traces)
//
// Findings print as path:line:col: message [analyzer]. Exit status is 1
// if any finding was reported, 2 if loading or analysis failed.
//
// Flags:
//
//	-list            print the suite with each analyzer's scope and exit
//	-only a,b        run only the named analyzers
//	-skip a,b        run all but the named analyzers
//	-json            one machine-readable finding per line (suppressed
//	                 findings included, marked "suppressed":true)
//	-lockorder-dot f write the global lock acquisition-order graph to f
//	                 in DOT format
//
// Suppress a finding with a `//lint:ignore <analyzer> reason` comment on
// the offending line or the line above; `all` matches every analyzer
// (except suppaudit, which must be named explicitly). The stale audit
// reports directives that suppress nothing; it is skipped under
// -only/-skip, since a partial suite cannot prove a suppression dead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"daxvm/tools/simlint/ana"
	"daxvm/tools/simlint/analyzers/attrbalance"
	"daxvm/tools/simlint/analyzers/chargeunits"
	"daxvm/tools/simlint/analyzers/determinism"
	"daxvm/tools/simlint/analyzers/detmap"
	"daxvm/tools/simlint/analyzers/hotalloc"
	"daxvm/tools/simlint/analyzers/lockdiscipline"
	"daxvm/tools/simlint/analyzers/lockorder"
	"daxvm/tools/simlint/analyzers/spanbalance"
	"daxvm/tools/simlint/analyzers/suppaudit"
	"daxvm/tools/simlint/stock"
)

type check struct {
	analyzer *ana.Analyzer
	applies  func(pkgPath string) bool
	scope    string
}

func everywhere(string) bool { return true }

func underAny(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(path, p) {
				return true
			}
		}
		return false
	}
}

var suite = []check{
	{determinism.Analyzer, underAny("daxvm/internal/"), "daxvm/internal/..."},
	{chargeunits.Analyzer, underAny("daxvm/internal/", "daxvm/cmd/"), "daxvm/internal/..., daxvm/cmd/..."},
	{attrbalance.Analyzer, everywhere, "everywhere (skips package sim)"},
	{spanbalance.Analyzer, everywhere, "everywhere (skips package span)"},
	{lockdiscipline.Analyzer, everywhere, "everywhere (skips package sim)"},
	{detmap.Analyzer, everywhere, "everywhere"},
	{suppaudit.Analyzer, everywhere, "everywhere"},
	{stock.Shadow, everywhere, "everywhere"},
	{stock.Nilness, everywhere, "everywhere"},
	{stock.UnusedWrite, everywhere, "everywhere"},
	{lockorder.Analyzer, everywhere, "whole program"},
	{hotalloc.Analyzer, everywhere, "whole program"},
}

type finding struct {
	File       string `json:"path"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers with their scopes and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to skip")
	jsonOut := flag.Bool("json", false, "emit one JSON finding per line (suppressed findings included)")
	dotPath := flag.String("lockorder-dot", "", "write the lock acquisition-order graph to this file (DOT)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simlint [-list] [-only a,b] [-skip a,b] [-json] [-lockorder-dot file] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range suite {
			fmt.Printf("%-16s %-40s %s\n", c.analyzer.Name, c.scope, c.analyzer.Doc)
		}
		return
	}

	selected := parseNames(*only)
	skipped := parseNames(*skip)
	run := func(name string) bool {
		if skipped[name] {
			return false
		}
		return len(selected) == 0 || selected[name]
	}
	fullSuite := len(selected) == 0 && len(skipped) == 0

	var names []string
	for _, c := range suite {
		names = append(names, c.analyzer.Name)
	}
	suppaudit.SetKnown(names...)

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		lockorder.SetDotOutput(f)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := ana.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	prog := ana.NewProgram(pkgs)
	supp := ana.CollectSuppressions(pkgs...)

	// ranOn records which analyzers covered which package, so the stale
	// audit never flags a suppression its analyzer didn't get to check.
	ranOn := map[string]map[string]bool{}
	noteRan := func(pkgPath, analyzer string) {
		m := ranOn[pkgPath]
		if m == nil {
			m = map[string]bool{}
			ranOn[pkgPath] = m
		}
		m[analyzer] = true
	}

	var findings []finding
	addDiags := func(marked []ana.MarkedDiagnostic) {
		for _, d := range marked {
			pos := prog.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File:       relPath(pos.Filename),
				Line:       pos.Line,
				Col:        pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
	}

	for _, pkg := range pkgs {
		for _, c := range suite {
			if c.analyzer.WholeProgram || !run(c.analyzer.Name) || !c.applies(pkg.PkgPath) {
				continue
			}
			marked, err := ana.RunMarked(c.analyzer, pkg, supp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", pkg.PkgPath, err)
				os.Exit(2)
			}
			noteRan(pkg.PkgPath, c.analyzer.Name)
			addDiags(marked)
		}
	}
	for _, c := range suite {
		if !c.analyzer.WholeProgram || !run(c.analyzer.Name) {
			continue
		}
		marked, err := ana.RunProgramMarked(c.analyzer, prog, supp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			noteRan(pkg.PkgPath, c.analyzer.Name)
		}
		addDiags(marked)
	}

	// Stale-suppression audit: only meaningful when the full suite ran.
	if fullSuite {
		known := func(name string) bool { return name == "all" || knownAnalyzer(name) }
		stale := supp.Stale(known, func(pkgPath, analyzer string) bool {
			return ranOn[pkgPath][analyzer]
		})
		addDiags(supp.Mark(stale))
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	unsuppressed := 0
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if !f.Suppressed {
			unsuppressed++
		}
		if *jsonOut {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
				os.Exit(2)
			}
		} else if !f.Suppressed {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", unsuppressed)
		os.Exit(1)
	}
}

func parseNames(s string) map[string]bool {
	out := map[string]bool{}
	if s == "" {
		return out
	}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if !knownAnalyzer(name) {
			fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q (try -list)\n", name)
			os.Exit(2)
		}
		out[name] = true
	}
	return out
}

func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return rel
}

func knownAnalyzer(name string) bool {
	for _, c := range suite {
		if c.analyzer.Name == name {
			return true
		}
	}
	return false
}
