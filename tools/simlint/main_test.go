package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestEverySuiteAnalyzerHasFixtures pins the suite to its regression
// fixtures: adding an analyzer without a testdata tree fails here, not
// months later when the first false positive ships.
func TestEverySuiteAnalyzerHasFixtures(t *testing.T) {
	stock := map[string]bool{"shadow": true, "nilness": true, "unusedwrite": true}
	for _, c := range suite {
		name := c.analyzer.Name
		dir := filepath.Join("analyzers", name, "testdata", "src")
		if stock[name] {
			dir = filepath.Join("stock", "testdata", "src", name)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s: no fixture tree at %s: %v", name, dir, err)
			continue
		}
		if len(entries) == 0 {
			t.Errorf("analyzer %s: fixture tree %s is empty", name, dir)
		}
	}
}
