// Package balance is the shared engine behind the open/close pairing
// analyzers: attrbalance (sim.Thread.PushAttr/PopAttr) and spanbalance
// (span.Collector.Begin/End). Both invariants have the same shape —
// every open must be matched by a close on all paths out of the
// function — and the same accepted idioms: a dominating `defer close`,
// an explicit close before each return, or a close inside a closure the
// function returns (the sysEnter idiom, where the caller defers the
// closure).
//
// Two shapes legitimately leave the pair open and are accepted without
// suppression: a function literal passed directly to Engine.Go /
// Engine.GoDaemon / Proc.Spawn (thread-root opens live until the thread
// exits), and a function whose final statement is an infinite
// `for { ... }` (daemon loops never return). Branches are checked on
// NET balance (opens minus deferred closes), so the conditional idiom
// `if x { open(); defer close() }` passes.
package balance

import (
	"go/ast"
	"go/token"
	"go/types"

	"daxvm/tools/simlint/ana"
)

// Config parameterizes one pairing analyzer.
type Config struct {
	Name string // analyzer name
	Doc  string
	// ImplPkg is the package (by name) that implements the pair; it is
	// skipped entirely — the implementation maintains the stack, it does
	// not use it.
	ImplPkg string
	// Open and Close are the method names forming the pair; calls match
	// when the method is defined in a package named ImplPkg.
	Open, Close string
	// Noun names the tracked thing in diagnostics ("attribution frame",
	// "span").
	Noun string
}

// New builds a pairing analyzer from the config.
func New(cfg Config) *ana.Analyzer {
	return &ana.Analyzer{
		Name: cfg.Name,
		Doc:  cfg.Doc,
		Run: func(pass *ana.Pass) error {
			return run(pass, cfg)
		},
	}
}

// threadSpawners are the methods whose func-literal argument runs as a
// thread body and may therefore open a root pair it never closes.
var threadSpawners = map[string]bool{"Go": true, "GoDaemon": true, "Spawn": true}

func run(pass *ana.Pass, cfg Config) error {
	if pass.Pkg.Name() == cfg.ImplPkg {
		return nil
	}
	for _, f := range pass.Files {
		v := &visitor{pass: pass, cfg: cfg}
		v.classifyLits(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				v.checkFunc(fd.Body, false)
			}
		}
	}
	return nil
}

type visitor struct {
	pass *ana.Pass
	cfg  Config
	// rootLit marks func literals passed directly to a thread spawner.
	rootLit map[*ast.FuncLit]bool
	// returnedLit marks func literals that are return results; their
	// closes are credited at the return site, not analyzed standalone.
	returnedLit map[*ast.FuncLit]bool
}

func (v *visitor) classifyLits(f *ast.File) {
	v.rootLit = map[*ast.FuncLit]bool{}
	v.returnedLit = map[*ast.FuncLit]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && threadSpawners[sel.Sel.Name] {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						v.rootLit[lit] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if lit, ok := res.(*ast.FuncLit); ok {
					v.returnedLit[lit] = true
				}
			}
		}
		return true
	})
}

// state tracks the open balance along one control-flow prefix.
type state struct {
	open     int
	deferred int
	openPos  []token.Pos
}

func (s *state) clone() state {
	c := *s
	c.openPos = append([]token.Pos(nil), s.openPos...)
	return c
}

// checkFunc analyzes one function body. allowRoot accepts a trailing
// open pair (thread-root bodies).
func (v *visitor) checkFunc(body *ast.BlockStmt, allowRoot bool) {
	st := &state{}
	v.checkStmts(body.List, st)
	// Also analyze nested literals this body owns (skipping the ones
	// credited or rooted elsewhere).
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if v.rootLit[lit] {
			v.checkFunc(lit.Body, true)
		} else if !v.returnedLit[lit] {
			v.checkFunc(lit.Body, false)
		}
		return false // literals analyze their own nested literals
	})
	if allowRoot || ana.Terminates(body.List) || ana.EndsWithForever(body.List) {
		return
	}
	if open := st.open - st.deferred; open > 0 {
		pos := body.Pos()
		if n := len(st.openPos); n > 0 {
			pos = st.openPos[n-1]
		}
		v.pass.Reportf(pos, "%s frame is still open when the function returns; add a defer %s or pop on every path", v.cfg.Open, v.cfg.Close)
	} else if open < 0 {
		v.pass.Reportf(body.Pos(), "deferred %s without a matching %s", v.cfg.Close, v.cfg.Open)
	}
}

func (v *visitor) checkStmts(stmts []ast.Stmt, st *state) {
	for _, s := range stmts {
		v.checkStmt(s, st)
	}
}

func (v *visitor) checkStmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch {
			case v.isPairCall(call, v.cfg.Open):
				st.open++
				st.openPos = append(st.openPos, call.Pos())
			case v.isPairCall(call, v.cfg.Close):
				if st.open > 0 {
					st.open--
					st.openPos = st.openPos[:len(st.openPos)-1]
				} else {
					v.pass.Reportf(call.Pos(), "%s without an open %s frame on this path", v.cfg.Close, v.cfg.Open)
				}
			}
		}
	case *ast.DeferStmt:
		if v.isPairCall(s.Call, v.cfg.Close) {
			st.deferred++
		} else if v.isPairCall(s.Call, v.cfg.Open) {
			v.pass.Reportf(s.Pos(), "%s in a defer opens a %s after the function body ran", v.cfg.Open, v.cfg.Noun)
		}
	case *ast.ReturnStmt:
		credit := 0
		for _, res := range s.Results {
			if lit, ok := res.(*ast.FuncLit); ok {
				credit += v.closeCredit(lit)
			}
		}
		if open := st.open - st.deferred - credit; open > 0 {
			v.pass.Reportf(s.Pos(), "return leaves %d %s(s) open (%s without %s on this path)", open, v.cfg.Noun, v.cfg.Open, v.cfg.Close)
		}
	case *ast.IfStmt:
		v.branch(s.Body.List, st, s.Body.Pos())
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			v.branch(e.List, st, e.Pos())
		case *ast.IfStmt:
			v.branch([]ast.Stmt{e}, st, e.Pos())
		}
	case *ast.ForStmt:
		v.loop(s.Body.List, st, s.Pos())
	case *ast.RangeStmt:
		v.loop(s.Body.List, st, s.Pos())
	case *ast.BlockStmt:
		v.checkStmts(s.List, st)
	case *ast.SwitchStmt:
		v.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		v.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				v.branch(cc.Body, st, cc.Pos())
			}
		}
	case *ast.LabeledStmt:
		v.checkStmt(s.Stmt, st)
	}
}

func (v *visitor) caseClauses(body *ast.BlockStmt, st *state) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			v.branch(cc.Body, st, cc.Pos())
		}
	}
}

// branch analyzes a conditional block: a terminating branch may do what
// it likes (its returns were checked); a fall-through branch must leave
// the balance unchanged.
func (v *visitor) branch(stmts []ast.Stmt, st *state, pos token.Pos) {
	saved := st.clone()
	v.checkStmts(stmts, st)
	if ana.Terminates(stmts) {
		*st = saved
		return
	}
	// Compare the NET balance (open minus deferred): a branch that both
	// opens and defers its close — the conditional idiom
	// `if x { open(); defer close() }` — closes on every path out of the
	// function and is sound.
	if st.open-st.deferred != saved.open-saved.deferred {
		v.pass.Reportf(pos, "%s opened or closed on only one side of a branch", v.cfg.Noun)
		*st = saved
	}
}

// loop analyzes a loop body: each iteration must preserve the balance.
func (v *visitor) loop(stmts []ast.Stmt, st *state, pos token.Pos) {
	saved := st.clone()
	v.checkStmts(stmts, st)
	if !ana.Terminates(stmts) && st.open != saved.open {
		v.pass.Reportf(pos, "loop iteration changes the %s balance", v.cfg.Noun)
	}
	*st = saved
}

// closeCredit counts the net closes a returned closure performs.
func (v *visitor) closeCredit(lit *ast.FuncLit) int {
	net := 0
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if v.isPairCall(call, v.cfg.Close) {
				net++
			} else if v.isPairCall(call, v.cfg.Open) {
				net--
			}
		}
		return true
	})
	if net < 0 {
		return 0
	}
	return net
}

// isPairCall reports whether call invokes ImplPkg's name method.
func (v *visitor) isPairCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, _ := v.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == v.cfg.ImplPkg
}
