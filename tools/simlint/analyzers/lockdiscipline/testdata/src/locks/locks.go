// Package locks exercises the lockdiscipline analyzer.
package locks

import (
	"sync"

	"daxvm/tools/simlint/teststub/sim"
)

type table struct {
	mu sim.Mutex
	// guarded by mu
	entries map[string]int
	hits    int // guarded by mu
}

func leakOnReturn(t *sim.Thread, tb *table) {
	tb.mu.Lock(t, 10) // want `lock tb\.mu/w is still held on a path out of the function`
	tb.entries["a"] = 1
}

func leakOnEarlyReturn(t *sim.Thread, tb *table, err error) error {
	tb.mu.Lock(t, 10)
	if err != nil {
		return err // want `lock tb\.mu/w is still held on a path out of the function`
	}
	tb.mu.Unlock(t, 10)
	return nil
}

func balancedDefer(t *sim.Thread, tb *table) {
	tb.mu.Lock(t, 10)
	defer tb.mu.Unlock(t, 10)
	tb.entries["a"] = 1
}

func balancedEarlyReturn(t *sim.Thread, tb *table, err error) error {
	tb.mu.Lock(t, 10)
	if err != nil {
		tb.mu.Unlock(t, 10)
		return err
	}
	tb.hits++
	tb.mu.Unlock(t, 10)
	return nil
}

func releaseWithoutAcquire(t *sim.Thread, tb *table) {
	tb.mu.Unlock(t, 10) // want `release of tb\.mu/w which is not held on this path`
}

func lockedInBranchOnly(t *sim.Thread, tb *table, b bool) {
	if b { // want `lock held on only one side of a branch`
		tb.mu.Lock(t, 10)
	}
	tb.mu.Unlock(t, 10) // want `release of tb\.mu/w which is not held on this path`
}

type rwtable struct {
	sem sim.RWSem
	// guarded by sem
	rows []int
}

func wrongMode(t *sim.Thread, rt *rwtable) int {
	rt.sem.RLock(t, 5)
	n := len(rt.rows)
	rt.sem.Unlock(t, 5) // want `release of rt\.sem/w which is not held on this path`
	return n            // want `lock rt\.sem/r is still held on a path out of the function`
}

func readerOK(t *sim.Thread, rt *rwtable) int {
	rt.sem.RLock(t, 5)
	defer rt.sem.RUnlock(t, 5)
	return len(rt.rows)
}

type counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

func syncLeak(c *counter) {
	c.mu.Lock() // want `lock c\.mu/w is still held on a path out of the function`
	c.n++
}

func syncBalanced(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func guardedWithoutLock(c *counter) int {
	return c.n // want `field n is guarded by mu`
}

// snapshotLocked holds mu; the caller acquires it.
func snapshotLocked(c *counter) int {
	return c.n
}

// drainLocked holds mu and releases it on behalf of the caller.
func drainLocked(c *counter) {
	c.n = 0
	c.mu.Unlock()
}

func suppressedLeak(c *counter) {
	//lint:ignore lockdiscipline handed off to the finalizer
	c.mu.Lock()
	c.n++
}
