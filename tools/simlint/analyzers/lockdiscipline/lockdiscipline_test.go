package lockdiscipline_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/lockdiscipline"
	"daxvm/tools/simlint/anatest"
)

func TestLockDiscipline(t *testing.T) {
	anatest.Run(t, "testdata", lockdiscipline.Analyzer, "locks")
}
