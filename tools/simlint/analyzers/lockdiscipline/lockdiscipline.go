// Package lockdiscipline checks two properties of the simulator's
// instrumented locks (sim.Mutex, sim.SpinLock, sim.RWSem) and plain
// sync locks:
//
//  1. Pairing: every Lock/RLock must be matched by an Unlock/RUnlock of
//     the same lock and mode on all paths out of the function — either
//     a dominating defer or an explicit release before each return.
//  2. Guarded fields: a struct field annotated `// guarded by <lock>`
//     may only be touched by functions that acquire that lock (by name)
//     somewhere in their body, or whose doc comment declares
//     `holds <lock>` (the caller already acquired it).
//
// A function whose doc says `holds <lock>` is also exempt from pairing
// for that lock, so helpers that release a caller-held lock are legal.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"daxvm/tools/simlint/ana"
	"daxvm/tools/simlint/analyzers/lockutil"
)

// Analyzer is the lock pairing + guarded-field check.
var Analyzer = &ana.Analyzer{
	Name: "lockdiscipline",
	Doc:  "pair instrumented-lock acquire/release on all paths and enforce `guarded by` field annotations",
	Run:  run,
}

func run(pass *ana.Pass) error {
	if pass.Pkg.Name() == "sim" {
		// The lock implementation itself is out of scope.
		return nil
	}
	guards := collectGuards(pass) // field object -> lock field name
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := holdsFromDoc(fd.Doc)
			checkPairing(pass, fd, held)
			checkGuards(pass, fd, guards, held)
		}
	}
	return nil
}

// holdsFromDoc extracts lock names a doc comment declares as held, e.g.
// "reconcile holds mu and walks the leaf map."
func holdsFromDoc(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return map[string]bool{}
	}
	return lockutil.HoldsFromDoc(doc.Text())
}

// collectGuards maps struct field objects annotated `guarded by <name>`
// to the lock field's name.
func collectGuards(pass *ana.Pass) map[types.Object]string {
	return lockutil.CollectGuards(pass.TypesInfo, pass.Files)
}

// ---- pairing ----

// lockOp describes one acquire/release call: the textual receiver key
// plus the mode ("w" for Lock/Unlock, "r" for RLock/RUnlock).
type lockOp struct {
	key     string
	acquire bool
}

// classify resolves call to a lock operation (shared vocabulary lives
// in lockutil so lockorder classifies the same sites), or ok=false.
func classify(pass *ana.Pass, call *ast.CallExpr) (lockOp, bool) {
	op, ok := lockutil.Classify(pass.TypesInfo, call)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: op.Key, acquire: op.Acquire}, true
}

type lockState struct {
	held     map[string]int
	deferred map[string]int
	pos      map[string]token.Pos // last acquire position per key
}

func newLockState() *lockState {
	return &lockState{held: map[string]int{}, deferred: map[string]int{}, pos: map[string]token.Pos{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	for k, v := range s.pos {
		c.pos[k] = v
	}
	return c
}

func (s *lockState) copyFrom(o *lockState) {
	s.held, s.deferred, s.pos = o.held, o.deferred, o.pos
}

// baseName returns the last selector component of a key like "r.mu/w".
func baseName(key string) string { return lockutil.BaseName(key) }

type pairWalker struct {
	pass *ana.Pass
	// held names from the doc comment: pairing violations on these lock
	// names are the caller's business, not ours.
	exempt map[string]bool
}

func checkPairing(pass *ana.Pass, fd *ast.FuncDecl, exempt map[string]bool) {
	w := &pairWalker{pass: pass, exempt: exempt}
	st := newLockState()
	w.stmts(fd.Body.List, st)
	if ana.Terminates(fd.Body.List) || ana.EndsWithForever(fd.Body.List) {
		return
	}
	w.checkRelease(st, fd.Body.End(), true)
}

// checkRelease reports any key still held at an exit point. At the end
// of the function the acquire site is the useful position; at an early
// return, the return statement itself is.
func (w *pairWalker) checkRelease(st *lockState, exit token.Pos, preferAcquire bool) {
	for _, key := range sortedKeys(st.held) {
		n := st.held[key] - st.deferred[key]
		if n <= 0 || w.exempt[baseName(key)] {
			continue
		}
		pos := exit
		if preferAcquire && st.pos[key].IsValid() {
			pos = st.pos[key]
		}
		w.pass.Reportf(pos, "lock %s is still held on a path out of the function; release it or defer the unlock", key)
	}
}

func (w *pairWalker) stmts(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		w.stmt(s, st)
	}
}

func (w *pairWalker) stmt(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := classify(w.pass, call); ok {
				if op.acquire {
					st.held[op.key]++
					st.pos[op.key] = call.Pos()
				} else if st.held[op.key] > 0 {
					st.held[op.key]--
				} else if !w.exempt[baseName(op.key)] {
					w.pass.Reportf(call.Pos(), "release of %s which is not held on this path", op.key)
				}
			}
		}
	case *ast.DeferStmt:
		if op, ok := classify(w.pass, s.Call); ok {
			if op.acquire {
				w.pass.Reportf(s.Pos(), "deferred lock acquire of %s", op.key)
			} else {
				st.deferred[op.key]++
			}
		}
	case *ast.ReturnStmt:
		w.checkRelease(st, s.Pos(), false)
	case *ast.IfStmt:
		w.branch(s.Body.List, st, s.Body.Pos())
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.branch(e.List, st, e.Pos())
		case *ast.IfStmt:
			w.branch([]ast.Stmt{e}, st, e.Pos())
		}
	case *ast.ForStmt:
		w.loop(s.Body.List, st, s.Pos())
	case *ast.RangeStmt:
		w.loop(s.Body.List, st, s.Pos())
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.SwitchStmt:
		w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(cc.Body, st, cc.Pos())
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	}
}

func (w *pairWalker) caseClauses(body *ast.BlockStmt, st *lockState) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			w.branch(cc.Body, st, cc.Pos())
		}
	}
}

func (w *pairWalker) branch(stmts []ast.Stmt, st *lockState, pos token.Pos) {
	saved := st.clone()
	w.stmts(stmts, st)
	if ana.Terminates(stmts) {
		st.copyFrom(saved)
		return
	}
	if !sameHeld(st.held, saved.held) {
		w.pass.Reportf(pos, "lock held on only one side of a branch")
		st.copyFrom(saved)
	}
}

func (w *pairWalker) loop(stmts []ast.Stmt, st *lockState, pos token.Pos) {
	saved := st.clone()
	w.stmts(stmts, st)
	if !ana.Terminates(stmts) && !sameHeld(st.held, saved.held) {
		w.pass.Reportf(pos, "loop iteration changes which locks are held")
	}
	st.copyFrom(saved)
}

func sameHeld(a, b map[string]int) bool {
	for k, v := range a {
		if v != b[k] {
			return false
		}
	}
	for k, v := range b {
		if v != a[k] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---- guarded fields ----

// checkGuards verifies fd only touches guarded fields while acquiring
// the named lock somewhere in its body (or declaring `holds <lock>`).
func checkGuards(pass *ana.Pass, fd *ast.FuncDecl, guards map[types.Object]string, held map[string]bool) {
	if len(guards) == 0 {
		return
	}
	acquired := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := classify(pass, call); ok && op.acquire {
			acquired[baseName(op.key)] = true
		}
		return true
	})
	reported := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		lock, guarded := guards[obj]
		if !guarded {
			return true
		}
		if !acquired[lock] && !held[lock] && !reported[obj] {
			reported[obj] = true
			pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s, but the function neither acquires it nor declares `holds %s`", sel.Sel.Name, lock, lock)
		}
		return true
	})
}
