// Package spanbalance verifies that every span.Collector.Begin has a
// matching End on all paths out of the function: a dominating
// `defer sp.End(t)`, an explicit End before each return, or an End
// inside a closure the function returns (the sysEnter idiom). An
// unbalanced span is worse than a lost measurement — End pops the
// thread's span stack, so a leaked Begin re-parents every later span on
// the thread and breaks the self-time reconciliation the span layer
// promises (and panics at the next unmatched End).
//
// The pairing engine (accepted idioms, branch/loop net-balance rules)
// is shared with attrbalance via the balance package. Note that the
// analyzer counts only DIRECT calls in defers: `defer sp.End(t)` is
// seen, `defer func() { sp.End(t) }()` is not — instrument with
// separate direct defer statements.
package spanbalance

import (
	"daxvm/tools/simlint/analyzers/balance"
)

// Analyzer is the span Begin/End balance check.
var Analyzer = balance.New(balance.Config{
	Name:    "spanbalance",
	Doc:     "require every span Begin to be closed by End on all return paths",
	ImplPkg: "span",
	Open:    "Begin",
	Close:   "End",
	Noun:    "span",
})
