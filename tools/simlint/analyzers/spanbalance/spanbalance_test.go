package spanbalance_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/spanbalance"
	"daxvm/tools/simlint/anatest"
)

func TestSpanBalance(t *testing.T) {
	anatest.Run(t, "testdata", spanbalance.Analyzer, "spans")
}
