// Package spans exercises the spanbalance analyzer.
package spans

import (
	"daxvm/tools/simlint/teststub/sim"
	"daxvm/tools/simlint/teststub/span"
)

func leakOnReturn(t *sim.Thread, sp *span.Collector) {
	sp.Begin(t, "fault.minor") // want `Begin frame is still open when the function returns`
	t.Charge(10)
}

func leakOnEarlyReturn(t *sim.Thread, sp *span.Collector, err error) error {
	sp.Begin(t, "syscall.read")
	if err != nil {
		return err // want `return leaves 1 span\(s\) open`
	}
	sp.End(t)
	return nil
}

func balancedLinear(t *sim.Thread, sp *span.Collector) {
	sp.Begin(t, "fault.minor")
	t.Charge(10)
	sp.End(t)
}

func balancedDefer(t *sim.Thread, sp *span.Collector, err error) error {
	sp.Begin(t, "syscall.read")
	defer sp.End(t)
	if err != nil {
		return err
	}
	return nil
}

func endWithoutBegin(t *sim.Thread, sp *span.Collector) {
	sp.End(t) // want `End without an open Begin frame`
}

func oneSidedBranch(t *sim.Thread, sp *span.Collector, b bool) {
	if b { // want `span opened or closed on only one side of a branch`
		sp.Begin(t, "maybe")
	}
	t.Charge(1)
}

// conditionalSpan mirrors the gated-instrumentation idiom: the span
// opens only under a condition, with its End deferred in the same
// branch, so every path out is balanced.
func conditionalSpan(t *sim.Thread, sp *span.Collector, on bool) {
	if on {
		sp.Begin(t, "access")
		defer sp.End(t)
	}
	t.ChargeAs("read", 100)
}

func unbalancedLoop(t *sim.Thread, sp *span.Collector, n int) {
	for i := 0; i < n; i++ { // want `loop iteration changes the span balance`
		sp.Begin(t, "iter")
	}
}

func balancedLoop(t *sim.Thread, sp *span.Collector, n int) {
	for i := 0; i < n; i++ {
		sp.Begin(t, "iter")
		t.Charge(1)
		sp.End(t)
	}
}

// opEnter mirrors the kernel's sysEnter idiom: the span is closed by
// the closure the function hands back, which the caller defers.
func opEnter(t *sim.Thread, sp *span.Collector, name string) func() {
	sp.Begin(t, "syscall."+name)
	t.Charge(1000)
	return func() {
		t.Charge(700)
		sp.End(t)
	}
}

// threadRoot mirrors Engine.Go(..., func(t){...}): a root span may stay
// open for the thread's whole life.
func threadRoot(e *sim.Engine, sp *span.Collector) {
	e.Go("app", 0, 0, func(t *sim.Thread) {
		sp.Begin(t, "app")
		t.Charge(1)
	})
}

// daemonLoop mirrors monitor daemons: a root span followed by an
// infinite loop never returns, so the trailing open span is fine.
func daemonLoop(t *sim.Thread, sp *span.Collector) {
	sp.Begin(t, "daemon.monitor")
	for {
		t.Sleep(100)
		t.ChargeAs("sample", 10)
	}
}

// waitsAreNotOpens: Wait and StartSegment calls must not confuse the
// balance tracking.
func waitsAreNotOpens(t *sim.Thread, sp *span.Collector) {
	sp.StartSegment("seg")
	sp.Begin(t, "op")
	sp.Wait(t, span.WaitMmapSem, 30)
	sp.End(t)
}

func suppressedLeak(t *sim.Thread, sp *span.Collector) {
	//lint:ignore spanbalance span intentionally spans the thread's life
	sp.Begin(t, "root")
	t.Charge(1)
}
