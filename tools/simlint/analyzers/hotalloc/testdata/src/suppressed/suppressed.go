// Package suppressed checks that an in-place //lint:ignore hotalloc
// directive with a rationale silences a reachable allocation site.
package suppressed

// Fault is the fixture's per-event entry point.
//
// hotalloc:root
func Fault(n int) []int {
	//lint:ignore hotalloc amortized warm-up buffer, sized once
	return make([]int, n)
}
