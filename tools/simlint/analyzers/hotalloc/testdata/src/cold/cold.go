// Package cold checks the other side of reachability: an allocation in
// a function no root reaches must not be flagged.
package cold

// Enter is a root, but it never reaches the allocator below.
//
// hotalloc:root
func Enter() int {
	return add(1, 2)
}

func add(a, b int) int { return a + b }

// colder is unreachable from Enter; its allocation stays unreported.
func colder(n int) []int {
	return make([]int, n)
}

var _ = colder
