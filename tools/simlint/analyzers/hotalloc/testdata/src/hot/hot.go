// Package hot exercises hotalloc reachability: an allocation in a
// helper reached from a marked root is flagged with its call trace.
package hot

// Fault is the fixture's per-event entry point.
//
// hotalloc:root
func Fault(n int) []int {
	return build(n)
}

func build(n int) []int {
	out := make([]int, n) // want `hot-path allocation \(make\): make allocates; trace: hot\.Fault -> hot\.build`
	return out
}
