package hotalloc_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/hotalloc"
	"daxvm/tools/simlint/anatest"
)

func TestHotAlloc(t *testing.T) {
	anatest.Run(t, "testdata", hotalloc.Analyzer, "hot", "cold", "suppressed")
}
