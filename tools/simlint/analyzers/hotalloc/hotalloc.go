// Package hotalloc is the whole-program hot-path allocation analyzer.
// It classifies heap-allocation sites and flags every site reachable
// from a registered hot-path root — the functions the simulator executes
// per fault, per walk, per charge and per shootdown, where a single
// allocation multiplies into millions and caps host events/sec.
//
// Roots are the built-in list below (the fault handlers, the page
// walker, the TLB shootdown broadcast, the charge observer and the span
// taps) plus any function whose doc comment contains a `hotalloc:root`
// marker. Reachability follows static, interface and bound call edges;
// signature-fallback edges are excluded, and the engine's scheduler
// handoff internals (dispatchFrom, resumeOrStart) are a traversal
// stop-list — the handoff is the determinism wall, and crossing it
// would fuse every thread body into the hot path.
//
// Allocation classes reported:
//
//	make            make(map/slice/chan) in a hot function
//	append          append that may grow its backing array
//	closure         func literal (captured variables escape)
//	box             concrete value passed as an interface parameter
//	concat          non-constant string concatenation
//	byteconv        []byte <-> string conversion
//	complit         composite-literal allocation (&T{...}, []T{...}, map lit)
//
// Each diagnostic carries the shortest call trace from one root (and
// the number of additional roots that also reach the site). Intentional
// allocations — amortized warm-up, error paths — are suppressed in
// place with `//lint:ignore hotalloc <why>`.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"daxvm/tools/simlint/ana"
)

// Analyzer is the whole-program hot-path allocation check.
var Analyzer = &ana.Analyzer{
	Name:         "hotalloc",
	Doc:          "flag heap allocations reachable from hot-path roots (fault handlers, page walker, charge/span taps, TLB shootdown), with per-root traces",
	Run:          run,
	WholeProgram: true,
}

// defaultRoots names the per-event entry points of the simulator. Kept
// in sync with DESIGN §7; fixture roots use the doc marker instead.
var defaultRoots = []string{
	"(*daxvm/internal/mm.MM).PageFault",
	"(*daxvm/internal/mm.MM).WPFault",
	"(*daxvm/internal/cpu.Core).Translate",
	"(*daxvm/internal/cpu.Set).Shootdown",
	"(*daxvm/internal/obs.CycleAccount).Charge",
	"(*daxvm/internal/obs/span.Collector).Observe",
	"(*daxvm/internal/obs/span.Collector).Wait",
	// Gauge readers run on every timeline sampler wake and must stay
	// allocation-free. They are registered as method values
	// (kernel.registerGauges), so they are rooted explicitly instead of
	// relying on dynamic-call resolution through the registry. The
	// sampler's own interval recording is deliberately NOT a root: it
	// allocates per interval, which adaptive coalescing bounds at ~200
	// per run — amortized bookkeeping, not per-event work.
	"(*daxvm/internal/kernel.Kernel).gaugeRunQueue",
	"(*daxvm/internal/kernel.Kernel).gaugeMmapSemQueue",
	"(*daxvm/internal/kernel.Kernel).gaugeInflightIPIs",
	"(*daxvm/internal/kernel.Kernel).gaugePMemBacklog",
	"(*daxvm/internal/kernel.Kernel).gaugeDramOccupancy",
	"(*daxvm/internal/kernel.Kernel).gaugeJournalQueue",
	"(daxvm/internal/kernel.nodeGauge).pmemBacklog",
	"(daxvm/internal/kernel.nodeGauge).dramOccupancy",
}

// stopList cuts traversal at the engine's scheduler handoff: everything
// beyond it runs on another simulated thread's stack, not on the
// faulting path.
var stopList = map[string]bool{
	"(*daxvm/internal/sim.Engine).dispatchFrom":  true,
	"(*daxvm/internal/sim.Thread).resumeOrStart": true,
}

const rootMarker = "hotalloc:root"

func run(pass *ana.Pass) error {
	g := pass.Prog.Graph()

	roots := collectRoots(g)
	if len(roots) == 0 {
		return nil
	}

	// Per-root BFS recording the parent of each reached node, so every
	// diagnostic can carry a shortest trace.
	reached := map[string]map[string]string{} // root -> node -> BFS parent
	for _, root := range roots {
		reached[root] = bfs(g, root)
	}

	// Union of reachable nodes, visited in sorted order.
	nodes := map[string]bool{}
	for _, root := range roots {
		for id := range reached[root] {
			nodes[id] = true
		}
	}

	seen := map[token.Pos]bool{}
	for _, id := range sortedSet(nodes) {
		n := g.Nodes[id]
		if n == nil || n.Pkg == nil || n.Body() == nil {
			continue
		}
		allocs := classifyAllocs(n)
		for _, al := range allocs {
			if seen[al.pos] {
				continue
			}
			seen[al.pos] = true
			trace, extra := bestTrace(roots, reached, id)
			more := ""
			if extra > 0 {
				more = " (+" + itoa(extra) + " more roots)"
			}
			pass.Reportf(al.pos, "hot-path allocation (%s): %s; trace: %s%s",
				al.class, al.what, trace, more)
		}
	}
	return nil
}

func collectRoots(g *ana.CallGraph) []string {
	set := map[string]bool{}
	for _, r := range defaultRoots {
		if n, ok := g.Nodes[r]; ok && n.Body() != nil {
			set[r] = true
		}
	}
	for id, n := range g.Nodes {
		if strings.Contains(n.DocText(), rootMarker) {
			set[id] = true
		}
	}
	return sortedSet(set)
}

// bfs walks traversal edges from root, honoring the stop-list, and
// returns node -> parent (root maps to "").
func bfs(g *ana.CallGraph, root string) map[string]string {
	parent := map[string]string{root: ""}
	queue := []string{root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if stopList[id] {
			continue // the node itself is scanned; its callees are not
		}
		for _, e := range g.Out[id] {
			if !e.Kind.Traversal() {
				continue
			}
			if _, ok := parent[e.Callee]; ok {
				continue
			}
			parent[e.Callee] = id
			queue = append(queue, e.Callee)
		}
	}
	return parent
}

// bestTrace renders the shortest root trace (smallest root name wins
// ties) and counts the other roots that reach id.
func bestTrace(roots []string, reached map[string]map[string]string, id string) (string, int) {
	best := ""
	bestLen := -1
	extra := 0
	for _, root := range roots {
		parents, ok := reached[root]
		if !ok {
			continue
		}
		if _, ok := parents[id]; !ok {
			continue
		}
		var chain []string
		for cur := id; cur != ""; cur = parents[cur] {
			chain = append(chain, shortNode(cur))
		}
		if bestLen != -1 {
			extra++
			if len(chain) >= bestLen {
				continue
			}
		}
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		best = strings.Join(chain, " -> ")
		bestLen = len(chain)
	}
	return best, extra
}

func shortNode(id string) string { return (&ana.CGNode{ID: id}).ShortName() }

// --- allocation classification ----------------------------------------------

type allocSite struct {
	pos   token.Pos
	class string
	what  string
}

// classifyAllocs scans one function body (literals excluded — they are
// their own nodes) for allocation sites.
func classifyAllocs(n *ana.CGNode) []allocSite {
	info := n.Pkg.TypesInfo
	var out []allocSite
	add := func(pos token.Pos, class, what string) {
		out = append(out, allocSite{pos: pos, class: class, what: what})
	}
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			if n.Lit != nd {
				add(nd.Pos(), "closure", "func literal captures escape to the heap")
				return false
			}
		case *ast.CallExpr:
			classifyCall(info, nd, add)
		case *ast.BinaryExpr:
			if nd.Op == token.ADD && isStringType(info.TypeOf(nd)) && !isConst(info, nd) {
				add(nd.OpPos, "concat", "string concatenation allocates")
			}
		case *ast.UnaryExpr:
			if nd.Op == token.AND {
				if _, ok := ast.Unparen(nd.X).(*ast.CompositeLit); ok {
					add(nd.Pos(), "complit", "&composite literal escapes to the heap")
					return true
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(nd).Underlying().(type) {
			case *types.Slice, *types.Map:
				add(nd.Pos(), "complit", "slice/map literal allocates")
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func classifyCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string, string)) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make", "make allocates")
			case "append":
				add(call.Pos(), "append", "append may grow its backing array")
			case "new":
				add(call.Pos(), "make", "new allocates")
			}
			return
		}
	}

	// Conversions: []byte(s) / string(b).
	if tn := conversionType(info, fun); tn != nil && len(call.Args) == 1 {
		argT := types.Default(info.TypeOf(call.Args[0]))
		if isByteSlice(tn) && isStringType(argT) || isStringType(tn) && isByteSlice(argT) {
			add(call.Pos(), "byteconv", "[]byte/string conversion copies")
		}
		return
	}

	// Interface boxing at call arguments.
	sig, _ := info.TypeOf(fun).Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		if isPointerLike(at) {
			continue // pointers box without allocating the pointee
		}
		add(arg.Pos(), "box", "concrete value boxed into interface parameter")
	}
}

// conversionType returns the target type when fun is a type conversion.
func conversionType(info *types.Info, fun ast.Expr) types.Type {
	switch f := fun.(type) {
	case *ast.Ident:
		if tn, ok := info.Uses[f].(*types.TypeName); ok {
			return tn.Type()
		}
	case *ast.SelectorExpr:
		if tn, ok := info.Uses[f.Sel].(*types.TypeName); ok {
			return tn.Type()
		}
	case *ast.ArrayType, *ast.MapType, *ast.StarExpr:
		if t := info.TypeOf(f); t != nil {
			return t
		}
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
