// Package determinism forbids wall-clock time, the unseeded global
// math/rand source, raw goroutines, scheduler-nondeterministic selects,
// and map iteration that charges cycles or emits trace events. The
// simulator's perf gate compares artifacts byte-for-byte; any of these
// constructs can silently perturb the numbers between runs.
package determinism

import (
	"go/ast"
	"go/types"

	"daxvm/tools/simlint/ana"
)

// Analyzer is the determinism check.
var Analyzer = &ana.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, unseeded math/rand, raw go statements, " +
		"multi-case selects, and map iteration that charges cycles or emits trace events",
	Run: run,
}

// seededRandOK lists the math/rand package-level functions that do not
// touch the global source: constructing explicitly seeded generators is
// the sanctioned way to get randomness.
var seededRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// wallClock lists time-package functions that read or wait on the host
// clock. (Formatting and duration arithmetic are fine.)
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

func run(pass *ana.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement bypasses the virtual-time scheduler; use Engine.Go/GoDaemon (or suppress with //lint:ignore determinism <why>)")
			case *ast.SelectStmt:
				if commCases(n) > 1 {
					pass.Reportf(n.Pos(), "select over multiple channels resolves in runtime-scheduler order, not virtual time")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func commCases(s *ast.SelectStmt) int {
	n := 0
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			n++
		}
	}
	return n
}

func checkCall(pass *ana.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	isPkgLevel := fn.Type().(*types.Signature).Recv() == nil
	switch {
	case pkg == "time" && isPkgLevel && wallClock[name]:
		pass.Reportf(call.Pos(), "wall-clock time.%s in simulator code; all time must be virtual (sim.Thread cycles)", name)
	case (pkg == "math/rand" || pkg == "math/rand/v2") && isPkgLevel && !seededRandOK[name]:
		pass.Reportf(call.Pos(), "global math/rand.%s draws from a shared process-wide source; use rand.New(rand.NewSource(seed))", name)
	}
}

// checkMapRange flags `for ... := range m` over a map whose body books
// cycles or emits trace events: both are order-sensitive, and Go map
// iteration order is deliberately randomized.
func checkMapRange(pass *ana.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Name() == "sim" && (fn.Name() == "Charge" || fn.Name() == "ChargeAs" || fn.Name() == "AddRemote"):
			pass.Reportf(rng.Pos(), "map iteration order is randomized but the body charges cycles (%s); iterate a sorted key slice (obs.SortedKeys)", fn.Name())
			return false
		case fn.Pkg().Name() == "obs" && fn.Name() == "Emit":
			pass.Reportf(rng.Pos(), "map iteration order is randomized but the body emits trace events; iterate a sorted key slice (obs.SortedKeys)")
			return false
		}
		return true
	})
}

// calleeFunc resolves a call's target to a *types.Func (methods and
// package-level functions; nil for builtins, conversions, func values).
func calleeFunc(pass *ana.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
