// Package det exercises the determinism analyzer: wall clocks, the
// global rand source, raw goroutines, selects, and charging map ranges.
package det

import (
	"math/rand"
	"sort"
	"time"

	"daxvm/tools/simlint/teststub/obs"
	"daxvm/tools/simlint/teststub/sim"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock time\.Now`
	time.Sleep(0)            // want `wall-clock time\.Sleep`
	return time.Since(start) // want `wall-clock time\.Since`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func seededRandOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func rawGoroutine() {
	go func() {}() // want `raw go statement`
}

func suppressedGoroutine() {
	//lint:ignore determinism token handoff keeps this deterministic
	go func() {}()
}

// shardWorkerPattern mirrors the sharded scheduler's sanctioned host-side
// concurrency (internal/sim/shard.go): suppressed worker spawns that only
// drain deferred observability batches over single-channel operations.
// The model side never spawns; the raw-`go` ban still protects it — an
// unsuppressed spawn in the same shape is flagged below.
func shardWorkerPattern(in chan []int, out chan int, done chan struct{}) {
	//lint:ignore determinism shard host worker: model stays serialized, batches merge in seq order
	go func() {
		for b := range in {
			sum := 0
			for _, v := range b {
				sum += v
			}
			out <- sum
		}
		close(done)
	}()
	go func() { // want `raw go statement`
		<-done
	}()
}

func multiSelect(a, b chan int) int {
	select { // want `select over multiple channels`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleSelectOK(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

func chargingMapRange(t *sim.Thread, costs map[string]uint64) {
	for _, c := range costs { // want `map iteration order is randomized but the body charges cycles`
		t.Charge(c)
	}
}

func emittingMapRange(tr *obs.Tracer, costs map[string]uint64) {
	for name, c := range costs { // want `map iteration order is randomized but the body emits trace events`
		tr.Emit(name, 0, 0, c, "", 0)
	}
}

func sortedMapRangeOK(t *sim.Thread, costs map[string]uint64) {
	keys := make([]string, 0, len(costs))
	for k := range costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Charge(costs[k])
	}
}
