package determinism_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/determinism"
	"daxvm/tools/simlint/anatest"
)

func TestDeterminism(t *testing.T) {
	anatest.Run(t, "testdata", determinism.Analyzer, "det")
}
