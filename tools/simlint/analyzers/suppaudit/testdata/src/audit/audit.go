// Package audit exercises the suppaudit directive checks: unknown
// analyzer names are reported, and `all` cannot hide the report.
package audit

var (
	a = 1 //lint:ignore nosuchcheck misspelled names must be caught // want `//lint:ignore names unknown analyzer "nosuchcheck" \(try simlint -list\)`
	b = 2 //lint:ignore all,badname the all alias must not hide this // want `//lint:ignore names unknown analyzer "badname" \(try simlint -list\)`
	c = 3 //lint:ignore determinism a known name with a reason is fine
)

var _, _, _ = a, b, c
