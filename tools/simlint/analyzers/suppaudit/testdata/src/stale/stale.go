// Package stale feeds the missing-reason check and the driver-side
// stale-suppression audit: neither directive below suppresses anything.
package stale

var x = 1 //lint:ignore determinism

var y = 2 //lint:ignore determinism nothing on this line trips determinism

var _, _ = x, y
