// Package suppaudit keeps //lint:ignore suppressions honest. The
// per-package analyzer here checks the directives themselves: every
// named analyzer must exist in the suite, and every directive must give
// a reason. The companion stale check — a directive that suppresses no
// finding at all — needs to know what every analyzer reported, so it
// runs in the simlint driver after the whole suite (see
// ana.SuppressionSet.Stale); its findings carry this analyzer's name.
//
// suppaudit findings can only be silenced by naming suppaudit
// explicitly: `//lint:ignore all` must not be able to hide the finding
// that says a suppression is rotten.
package suppaudit

import (
	"daxvm/tools/simlint/ana"
)

// Analyzer checks //lint:ignore directives for unknown analyzer names
// and missing reasons.
var Analyzer = &ana.Analyzer{
	Name: "suppaudit",
	Doc:  "report //lint:ignore directives that name an unknown analyzer or give no reason (stale-suppression audit runs in the driver)",
	Run:  run,
}

// known is the set of analyzer names the directive may reference. The
// driver seeds it with the suite; tests seed it with fixture names.
var known = map[string]bool{"all": true}

// SetKnown registers the analyzer names //lint:ignore may reference.
func SetKnown(names ...string) {
	known = map[string]bool{"all": true}
	for _, n := range names {
		known[n] = true
	}
}

func run(pass *ana.Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := ana.ParseIgnore(c.Text)
				if !ok {
					continue
				}
				for _, name := range names {
					if !known[name] {
						pass.Reportf(c.Pos(), "//lint:ignore names unknown analyzer %q (try simlint -list)", name)
					}
				}
				if reason == "" {
					pass.Reportf(c.Pos(), "//lint:ignore without a reason: say why the finding is intentional")
				}
			}
		}
	}
	return nil
}
