package suppaudit_test

import (
	"strings"
	"testing"

	"daxvm/tools/simlint/ana"
	"daxvm/tools/simlint/analyzers/suppaudit"
	"daxvm/tools/simlint/anatest"
)

func TestDirectiveChecks(t *testing.T) {
	suppaudit.SetKnown("determinism", "lockorder", "hotalloc")
	anatest.Run(t, "testdata", suppaudit.Analyzer, "audit")
}

// TestMissingReasonAndStale drives the stale fixture by hand: the
// reason check is a plain diagnostic, and the stale audit needs the
// driver-side SuppressionSet plumbing that anatest does not model.
func TestMissingReasonAndStale(t *testing.T) {
	suppaudit.SetKnown("determinism", "lockorder", "hotalloc")
	pkgs, err := ana.Load("testdata", "./src/stale")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	diags, err := ana.Run(suppaudit.Analyzer, pkg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "without a reason") {
		t.Fatalf("want exactly one missing-reason diagnostic, got %v", diags)
	}

	// No analyzer suppressed anything, and "determinism" ran on the
	// package, so both directives are stale.
	supp := ana.CollectSuppressions(pkg)
	stale := supp.Stale(
		func(name string) bool { return true },
		func(pkgPath, analyzer string) bool { return true },
	)
	if len(stale) != 2 {
		t.Fatalf("want 2 stale directives, got %v", stale)
	}
	for _, d := range stale {
		if d.Analyzer != "suppaudit" || !strings.Contains(d.Message, "suppresses no finding on this line") {
			t.Errorf("unexpected stale diagnostic: %+v", d)
		}
		if !strings.Contains(d.Message, "stale //lint:ignore determinism") {
			t.Errorf("stale message should name the directive: %q", d.Message)
		}
	}

	// A directive whose analyzer did NOT run must never be called stale.
	notRun := supp.Stale(
		func(name string) bool { return true },
		func(pkgPath, analyzer string) bool { return false },
	)
	if len(notRun) != 0 {
		t.Errorf("directives must not be stale when their analyzer did not run, got %v", notRun)
	}
}
