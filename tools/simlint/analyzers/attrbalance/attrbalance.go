// Package attrbalance verifies that every sim.Thread.PushAttr has a
// matching PopAttr on all paths out of the function: a dominating
// `defer t.PopAttr()`, an explicit pop before each return, or a pop
// inside a closure the function returns (the sysEnter idiom, where the
// caller defers the closure). An unbalanced frame does not crash — it
// silently misattributes every later cycle of the thread, corrupting
// the cycle-accounting invariant the perf gate reconciles.
//
// The pairing engine (accepted idioms, branch/loop net-balance rules)
// lives in the shared balance package; spanbalance applies the same
// engine to span.Collector.Begin/End.
package attrbalance

import (
	"daxvm/tools/simlint/analyzers/balance"
)

// Analyzer is the attribution-frame balance check.
var Analyzer = balance.New(balance.Config{
	Name:    "attrbalance",
	Doc:     "require every sim PushAttr to be closed by PopAttr on all return paths",
	ImplPkg: "sim",
	Open:    "PushAttr",
	Close:   "PopAttr",
	Noun:    "attribution frame",
})
