// Package attrbalance verifies that every sim.Thread.PushAttr has a
// matching PopAttr on all paths out of the function: a dominating
// `defer t.PopAttr()`, an explicit pop before each return, or a pop
// inside a closure the function returns (the sysEnter idiom, where the
// caller defers the closure). An unbalanced frame does not crash — it
// silently misattributes every later cycle of the thread, corrupting
// the cycle-accounting invariant the perf gate reconciles.
//
// Two shapes legitimately leave a frame open and are accepted without
// suppression: a function literal passed directly to Engine.Go /
// Engine.GoDaemon / Proc.Spawn (thread-root frames live until the
// thread exits), and a function whose final statement is an infinite
// `for { ... }` (daemon loops never return).
package attrbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"daxvm/tools/simlint/ana"
)

// Analyzer is the attribution-frame balance check.
var Analyzer = &ana.Analyzer{
	Name: "attrbalance",
	Doc:  "require every sim PushAttr to be closed by PopAttr on all return paths",
	Run:  run,
}

// threadSpawners are the methods whose func-literal argument runs as a
// thread body and may therefore open a root frame it never closes.
var threadSpawners = map[string]bool{"Go": true, "GoDaemon": true, "Spawn": true}

func run(pass *ana.Pass) error {
	if pass.Pkg.Name() == "sim" {
		// The engine implements the frame stack; it does not use it.
		return nil
	}
	for _, f := range pass.Files {
		v := &visitor{pass: pass}
		v.classifyLits(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				v.checkFunc(fd.Body, false)
			}
		}
	}
	return nil
}

type visitor struct {
	pass *ana.Pass
	// rootLit marks func literals passed directly to a thread spawner.
	rootLit map[*ast.FuncLit]bool
	// returnedLit marks func literals that are return results; their
	// pops are credited at the return site, not analyzed standalone.
	returnedLit map[*ast.FuncLit]bool
}

func (v *visitor) classifyLits(f *ast.File) {
	v.rootLit = map[*ast.FuncLit]bool{}
	v.returnedLit = map[*ast.FuncLit]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && threadSpawners[sel.Sel.Name] {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						v.rootLit[lit] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if lit, ok := res.(*ast.FuncLit); ok {
					v.returnedLit[lit] = true
				}
			}
		}
		return true
	})
}

// state tracks the open-frame balance along one control-flow prefix.
type state struct {
	open     int
	deferred int
	pushPos  []token.Pos
}

func (s *state) clone() state {
	c := *s
	c.pushPos = append([]token.Pos(nil), s.pushPos...)
	return c
}

// checkFunc analyzes one function body. allowRoot accepts a trailing
// open frame (thread-root bodies).
func (v *visitor) checkFunc(body *ast.BlockStmt, allowRoot bool) {
	st := &state{}
	v.checkStmts(body.List, st)
	// Also analyze nested literals this body owns (skipping the ones
	// credited or rooted elsewhere).
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if v.rootLit[lit] {
			v.checkFunc(lit.Body, true)
		} else if !v.returnedLit[lit] {
			v.checkFunc(lit.Body, false)
		}
		return false // literals analyze their own nested literals
	})
	if allowRoot || ana.Terminates(body.List) || ana.EndsWithForever(body.List) {
		return
	}
	if open := st.open - st.deferred; open > 0 {
		pos := body.Pos()
		if n := len(st.pushPos); n > 0 {
			pos = st.pushPos[n-1]
		}
		v.pass.Reportf(pos, "PushAttr frame is still open when the function returns; add a defer PopAttr or pop on every path")
	} else if open < 0 {
		v.pass.Reportf(body.Pos(), "deferred PopAttr without a matching PushAttr")
	}
}

func (v *visitor) checkStmts(stmts []ast.Stmt, st *state) {
	for _, s := range stmts {
		v.checkStmt(s, st)
	}
}

func (v *visitor) checkStmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch {
			case v.isAttrCall(call, "PushAttr"):
				st.open++
				st.pushPos = append(st.pushPos, call.Pos())
			case v.isAttrCall(call, "PopAttr"):
				if st.open > 0 {
					st.open--
					st.pushPos = st.pushPos[:len(st.pushPos)-1]
				} else {
					v.pass.Reportf(call.Pos(), "PopAttr without an open PushAttr frame on this path")
				}
			}
		}
	case *ast.DeferStmt:
		if v.isAttrCall(s.Call, "PopAttr") {
			st.deferred++
		} else if v.isAttrCall(s.Call, "PushAttr") {
			v.pass.Reportf(s.Pos(), "PushAttr in a defer opens a frame after the function body ran")
		}
	case *ast.ReturnStmt:
		credit := 0
		for _, res := range s.Results {
			if lit, ok := res.(*ast.FuncLit); ok {
				credit += v.popCredit(lit)
			}
		}
		if open := st.open - st.deferred - credit; open > 0 {
			v.pass.Reportf(s.Pos(), "return leaves %d attribution frame(s) open (PushAttr without PopAttr on this path)", open)
		}
	case *ast.IfStmt:
		v.branch(s.Body.List, st, s.Body.Pos())
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			v.branch(e.List, st, e.Pos())
		case *ast.IfStmt:
			v.branch([]ast.Stmt{e}, st, e.Pos())
		}
	case *ast.ForStmt:
		v.loop(s.Body.List, st, s.Pos())
	case *ast.RangeStmt:
		v.loop(s.Body.List, st, s.Pos())
	case *ast.BlockStmt:
		v.checkStmts(s.List, st)
	case *ast.SwitchStmt:
		v.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		v.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				v.branch(cc.Body, st, cc.Pos())
			}
		}
	case *ast.LabeledStmt:
		v.checkStmt(s.Stmt, st)
	}
}

func (v *visitor) caseClauses(body *ast.BlockStmt, st *state) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			v.branch(cc.Body, st, cc.Pos())
		}
	}
}

// branch analyzes a conditional block: a terminating branch may do what
// it likes (its returns were checked); a fall-through branch must leave
// the balance unchanged.
func (v *visitor) branch(stmts []ast.Stmt, st *state, pos token.Pos) {
	saved := st.clone()
	v.checkStmts(stmts, st)
	if ana.Terminates(stmts) {
		*st = saved
		return
	}
	// Compare the NET balance (open minus deferred): a branch that both
	// pushes a frame and defers its pop — the conditional-attribution
	// idiom `if multi { t.PushAttr(x); defer t.PopAttr() }` — closes the
	// frame on every path out of the function and is sound.
	if st.open-st.deferred != saved.open-saved.deferred {
		v.pass.Reportf(pos, "attribution frame opened or closed on only one side of a branch")
		*st = saved
	}
}

// loop analyzes a loop body: each iteration must preserve the balance.
func (v *visitor) loop(stmts []ast.Stmt, st *state, pos token.Pos) {
	saved := st.clone()
	v.checkStmts(stmts, st)
	if !ana.Terminates(stmts) && st.open != saved.open {
		v.pass.Reportf(pos, "loop iteration changes the attribution frame balance")
	}
	*st = saved
}

// popCredit counts the net frame pops a returned closure performs.
func (v *visitor) popCredit(lit *ast.FuncLit) int {
	net := 0
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if v.isAttrCall(call, "PopAttr") {
				net++
			} else if v.isAttrCall(call, "PushAttr") {
				net--
			}
		}
		return true
	})
	if net < 0 {
		return 0
	}
	return net
}

// isAttrCall reports whether call invokes sim.Thread's name method.
func (v *visitor) isAttrCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, _ := v.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "sim"
}
