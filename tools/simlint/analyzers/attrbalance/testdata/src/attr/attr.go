// Package attr exercises the attrbalance analyzer.
package attr

import (
	"daxvm/tools/simlint/teststub/sim"
)

func leakOnReturn(t *sim.Thread) {
	t.PushAttr("fault") // want `PushAttr frame is still open when the function returns`
	t.Charge(10)
}

func leakOnEarlyReturn(t *sim.Thread, err error) error {
	t.PushAttr("syscall")
	if err != nil {
		return err // want `return leaves 1 attribution frame\(s\) open`
	}
	t.PopAttr()
	return nil
}

func balancedLinear(t *sim.Thread) {
	t.PushAttr("fault")
	t.Charge(10)
	t.PopAttr()
}

func balancedDefer(t *sim.Thread, err error) error {
	t.PushAttr("syscall")
	defer t.PopAttr()
	if err != nil {
		return err
	}
	return nil
}

func popWithoutPush(t *sim.Thread) {
	t.PopAttr() // want `PopAttr without an open PushAttr frame`
}

func oneSidedBranch(t *sim.Thread, b bool) {
	if b { // want `attribution frame opened or closed on only one side of a branch`
		t.PushAttr("maybe") // opened on one side only
	}
	t.Charge(1)
}

// conditionalAttr is the per-node device idiom: the frame opens only on
// multi-node machines, and its pop is deferred in the same branch, so
// every path out of the function is balanced.
func conditionalAttr(t *sim.Thread, multi bool) {
	if multi {
		t.PushAttr("pmem.node1")
		defer t.PopAttr()
	}
	t.ChargeAs("read", 100)
}

// conditionalPushOnly still leaks: the deferred pop is missing.
func conditionalPushOnly(t *sim.Thread, multi bool) {
	if multi { // want `attribution frame opened or closed on only one side of a branch`
		t.PushAttr("pmem.node1")
	}
	t.ChargeAs("read", 100)
}

func unbalancedLoop(t *sim.Thread, n int) {
	for i := 0; i < n; i++ { // want `loop iteration changes the attribution frame balance`
		t.PushAttr("iter")
	}
}

func balancedLoop(t *sim.Thread, n int) {
	for i := 0; i < n; i++ {
		t.PushAttr("iter")
		t.Charge(1)
		t.PopAttr()
	}
}

// sysEnter mirrors the kernel idiom: the frame is closed by the closure
// the function hands back to its caller, which defers it.
func sysEnter(t *sim.Thread, name string) func() {
	t.PushAttr("syscall." + name)
	t.Charge(1000)
	return func() {
		t.Charge(700)
		t.PopAttr()
	}
}

// threadRoot mirrors Engine.Go(..., func(t){...}): the root frame stays
// open for the thread's whole life.
func threadRoot(e *sim.Engine) {
	e.Go("app", 0, 0, func(t *sim.Thread) {
		t.PushAttr("app")
		t.Charge(1)
	})
}

// daemonLoop mirrors monitor/prezero daemons: a root frame followed by
// an infinite loop.
func daemonLoop(t *sim.Thread) {
	t.PushAttr("daemon.monitor")
	for {
		t.Sleep(100)
		t.ChargeAs("sample", 10)
	}
}

func suppressedLeak(t *sim.Thread) {
	//lint:ignore attrbalance frame intentionally spans the thread's life
	t.PushAttr("root")
	t.Charge(1)
}
