package attrbalance_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/attrbalance"
	"daxvm/tools/simlint/anatest"
)

func TestAttrBalance(t *testing.T) {
	anatest.Run(t, "testdata", attrbalance.Analyzer, "attr")
}
