// Package lockutil is the shared lock-site vocabulary for the
// lockdiscipline and lockorder analyzers: which types count as
// instrumented locks, how a call site is classified as an
// acquire/release, how `guarded by <lock>` field annotations and
// `holds <lock>` doc-comment claims are parsed, and how a lock
// receiver expression maps to a program-wide lock class.
package lockutil

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockTypes maps package NAME (not path — fixtures use a stub `sim`
// package, and the real one is daxvm/internal/sim) to the type names
// that count as locks.
var LockTypes = map[string]map[string]bool{
	"sim":  {"Mutex": true, "SpinLock": true, "RWSem": true},
	"sync": {"Mutex": true, "RWMutex": true},
}

// MethodOps maps lock method names to their mode and direction.
var MethodOps = map[string]struct {
	Mode    string // "w" or "r"
	Acquire bool
}{
	"Lock":    {"w", true},
	"Unlock":  {"w", false},
	"RLock":   {"r", true},
	"RUnlock": {"r", false},
}

// GuardedRe extracts the lock name from a `guarded by <lock>` comment.
var GuardedRe = regexp.MustCompile(`guarded by (\w+)`)

var holdsRe = regexp.MustCompile(`holds (\w+)`)

// Op describes one acquire/release call site.
type Op struct {
	Key     string // textual receiver + "/" + mode, e.g. "m.mu/w"
	Mode    string
	Acquire bool
	Recv    ast.Expr // the lock receiver expression (sel.X)
}

// Classify resolves call to a lock operation, or ok=false.
func Classify(info *types.Info, call *ast.CallExpr) (Op, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	mop, ok := MethodOps[sel.Sel.Name]
	if !ok {
		return Op{}, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return Op{}, false
	}
	names := LockTypes[fn.Pkg().Name()]
	if names == nil {
		return Op{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return Op{}, false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !names[named.Obj().Name()] {
		return Op{}, false
	}
	return Op{
		Key:     types.ExprString(sel.X) + "/" + mop.Mode,
		Mode:    mop.Mode,
		Acquire: mop.Acquire,
		Recv:    sel.X,
	}, true
}

// BaseName returns the last selector component of a key like "r.mu/w".
func BaseName(key string) string {
	key = strings.TrimSuffix(strings.TrimSuffix(key, "/w"), "/r")
	if i := strings.LastIndex(key, "."); i >= 0 {
		key = key[i+1:]
	}
	return key
}

// HoldsFromDoc extracts lock names a doc comment declares as held, e.g.
// "reconcile holds mu and walks the leaf map."
func HoldsFromDoc(doc string) map[string]bool {
	held := map[string]bool{}
	for _, m := range holdsRe.FindAllStringSubmatch(doc, -1) {
		held[m[1]] = true
	}
	return held
}

// CollectGuards maps struct field objects annotated `guarded by <name>`
// to the lock field's name, scanning the given files.
func CollectGuards(info *types.Info, files []*ast.File) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				var text string
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				m := GuardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guards[obj] = m[1]
					}
				}
			}
			return true
		})
	}
	return guards
}

// ClassOf maps a lock receiver expression to a program-wide lock class:
// `<pkgpath>.<Type>.<field>` for a lock held in a struct field (every
// instance of the struct shares the class) or `<pkgpath>.<var>` for a
// package-level lock variable. ok is false for receivers with no global
// identity (e.g. a lock in a local variable).
func ClassOf(info *types.Info, recv ast.Expr) (string, bool) {
	e := ast.Unparen(recv)
	for {
		switch v := e.(type) {
		case *ast.UnaryExpr:
			e = ast.Unparen(v.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(v.X)
			continue
		}
		break
	}
	switch v := e.(type) {
	case *ast.SelectorExpr:
		fobj, ok := info.Uses[v.Sel].(*types.Var)
		if ok && fobj.IsField() {
			owner := info.TypeOf(v.X)
			for {
				if p, ok := owner.(*types.Pointer); ok {
					owner = p.Elem()
					continue
				}
				break
			}
			if named, ok := owner.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name() + "." + fobj.Name(), true
				}
				return obj.Name() + "." + fobj.Name(), true
			}
			return "", false
		}
		// Package-qualified variable: pkg.Mu.
		if vobj, ok := info.Uses[v.Sel].(*types.Var); ok && vobj.Pkg() != nil && vobj.Parent() == vobj.Pkg().Scope() {
			return vobj.Pkg().Path() + "." + vobj.Name(), true
		}
	case *ast.Ident:
		vobj, ok := info.Uses[v].(*types.Var)
		if ok && vobj.Pkg() != nil && vobj.Parent() == vobj.Pkg().Scope() {
			return vobj.Pkg().Path() + "." + vobj.Name(), true
		}
	}
	return "", false
}

// ShortClass compresses a lock class for human-readable messages:
// "daxvm/internal/mm.MM.Sem" -> "mm.MM.Sem".
func ShortClass(class string) string {
	if i := strings.LastIndexByte(class, '/'); i >= 0 {
		return class[i+1:]
	}
	return class
}
