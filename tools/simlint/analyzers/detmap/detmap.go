// Package detmap forbids ranging directly over a map while writing
// output: Go randomizes map iteration order, so any bytes produced
// inside such a loop — bench artifacts, folded stacks, trace exports —
// differ from run to run and break the byte-stable perf gate. Iterate
// over obs.SortedKeys(m) (or an explicitly sorted slice) instead.
//
// A map range that only aggregates (sums, counts, collects keys for
// later sorting) is fine and not flagged.
package detmap

import (
	"go/ast"
	"go/types"
	"strings"

	"daxvm/tools/simlint/ana"
)

// Analyzer is the deterministic-map-iteration check.
var Analyzer = &ana.Analyzer{
	Name: "detmap",
	Doc:  "forbid writing output from inside a range over a map; iterate sorted keys instead",
	Run:  run,
}

// emitMethods are methods that move bytes toward an export surface.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true, "Emit": true,
}

func run(pass *ana.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if call := findEmit(pass, rng.Body); call != nil {
				pass.Reportf(rng.Pos(), "map iteration order is random but the body writes output (%s); range over obs.SortedKeys instead", callName(call))
			}
			return true
		})
	}
	return nil
}

// findEmit returns the first output-producing call in body, if any.
func findEmit(pass *ana.Pass, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil {
			pkg := fn.Pkg().Name()
			if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				found = call
				return false
			}
			if emitMethods[name] && fn.Type().(*types.Signature).Recv() != nil {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "write"
}
