// Package detmap forbids ranging directly over a map while writing
// output: Go randomizes map iteration order, so any bytes produced
// inside such a loop — bench artifacts, folded stacks, trace exports —
// differ from run to run and break the byte-stable perf gate. Iterate
// over obs.SortedKeys(m) (or an explicitly sorted slice) instead.
//
// A map range that only aggregates (sums, counts, collects keys for
// later sorting) is fine and not flagged.
package detmap

import (
	"go/ast"
	"go/types"
	"strings"

	"daxvm/tools/simlint/ana"
)

// Analyzer is the deterministic-map-iteration check.
var Analyzer = &ana.Analyzer{
	Name: "detmap",
	Doc:  "forbid writing output from inside a range over a map; iterate sorted keys instead",
	Run:  run,
}

// emitMethods are methods that move bytes toward an export surface.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true, "Emit": true,
}

func run(pass *ana.Pass) error {
	for _, f := range pass.Files {
		emitters := collectEmitClosures(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if call := findEmit(pass, rng.Body, emitters); call != nil {
				pass.Reportf(rng.Pos(), "map iteration order is random but the body writes output (%s); range over obs.SortedKeys instead", callName(call))
			}
			return true
		})
	}
	return nil
}

// collectEmitClosures finds local `name := func(...) {...}` closures whose
// body writes output, so a call to one counts as an emit. Row-writer
// helpers like the timeline CSV exporter's `row := func(series, value)`
// would otherwise launder a Fprintf out of the analyzer's sight.
func collectEmitClosures(pass *ana.Pass, f *ast.File) map[types.Object]bool {
	emitters := map[types.Object]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if findEmit(pass, lit.Body, nil) == nil {
			return true
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			emitters[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			emitters[obj] = true
		}
		return true
	})
	return emitters
}

// findEmit returns the first output-producing call in body, if any:
// fmt print/fprint calls, known emit methods, or calls to closures already
// identified as emitters.
func findEmit(pass *ana.Pass, body *ast.BlockStmt, emitters map[types.Object]bool) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && emitters[obj] {
				found = call
				return false
			}
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil {
			pkg := fn.Pkg().Name()
			if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				found = call
				return false
			}
			if emitMethods[name] && fn.Type().(*types.Signature).Recv() != nil {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "write"
}
