// Package dm exercises the detmap analyzer.
package dm

import (
	"fmt"
	"io"
	"strings"

	"daxvm/tools/simlint/teststub/obs"
)

func printUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order is random but the body writes output \(Fprintf\)`
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

func builderUnsorted(m map[string]uint64) string {
	var b strings.Builder
	for k := range m { // want `map iteration order is random but the body writes output \(WriteString\)`
		b.WriteString(k)
	}
	return b.String()
}

func traceUnsorted(tr *obs.Tracer, m map[string]uint64) {
	for tag, v := range m { // want `map iteration order is random but the body writes output \(Emit\)`
		tr.Emit("export", 0, 0, 0, tag, v)
	}
}

func printSorted(w io.Writer, m map[string]int) {
	for _, k := range obs.SortedKeys(m) {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

func aggregateOnly(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}

// csvUnsorted mirrors the timeline CSV exporter's row-helper shape: the
// Fprintf hides inside a local closure, but calling it from a raw map
// range still leaks random order into the output.
func csvUnsorted(w io.Writer, m map[string]uint64) {
	row := func(series string, v uint64) {
		fmt.Fprintf(w, "%s,%d\n", series, v)
	}
	for k, v := range m { // want `map iteration order is random but the body writes output \(row\)`
		row(k, v)
	}
}

func csvSorted(w io.Writer, m map[string]uint64) {
	row := func(series string, v uint64) {
		fmt.Fprintf(w, "%s,%d\n", series, v)
	}
	for _, k := range obs.SortedKeys(m) {
		row(k, m[k])
	}
}

func suppressedSingleton(w io.Writer, m map[string]int) {
	//lint:ignore detmap map has exactly one key by construction
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}
