package detmap_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/detmap"
	"daxvm/tools/simlint/anatest"
)

func TestDetMap(t *testing.T) {
	anatest.Run(t, "testdata", detmap.Analyzer, "dm")
}
