// Package cycle seeds a two-lock acquisition-order cycle, one edge
// direct and one through a helper call, so the report carries the full
// lock path with its witness positions.
package cycle

import "daxvm/tools/simlint/teststub/sim"

type pair struct {
	a sim.Mutex
	b sim.Mutex
}

func abOrder(t *sim.Thread, p *pair) {
	p.a.Lock(t, 10)
	p.b.Lock(t, 10) // want `lock-order cycle: cycle\.pair\.a -> cycle\.pair\.b \(cycle\.go:\d+\) -> cycle\.pair\.a \(cycle\.go:\d+ via cycle\.touchA\): potential deadlock`
	p.b.Unlock(t, 10)
	p.a.Unlock(t, 10)
}

func baOrder(t *sim.Thread, p *pair) {
	p.b.Lock(t, 10)
	touchA(t, p)
	p.b.Unlock(t, 10)
}

func touchA(t *sim.Thread, p *pair) {
	p.a.Lock(t, 10)
	p.a.Unlock(t, 10)
}
