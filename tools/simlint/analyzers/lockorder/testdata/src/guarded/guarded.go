// Package guarded exercises the interprocedural guarded-by and
// holds-claim checks: a helper that touches a guarded field is flagged
// when some caller reaches it without the lock, and a `holds` claim is
// verified at every call site.
package guarded

import "daxvm/tools/simlint/teststub/sim"

type table struct {
	mu sim.Mutex
	// guarded by mu
	entries int
}

func locked(t *sim.Thread, tb *table) {
	tb.mu.Lock(t, 10)
	bump(tb)
	bumpHeld(tb)
	tb.mu.Unlock(t, 10)
}

func bare(t *sim.Thread, tb *table) {
	bump(tb)
}

func bump(tb *table) {
	tb.entries++ // want `field entries is guarded by mu, but guarded\.bump can be entered with mu unheld`
}

// bumpHeld touches the table; callers are checked against the claim.
//
// holds mu
func bumpHeld(tb *table) {
	tb.entries++
}

func callsBare(t *sim.Thread, tb *table) {
	bumpHeld(tb) // want `call to guarded\.bumpHeld, which declares .holds mu., but no lock named mu is held here`
}
