// Package clean acquires its locks in one consistent order from every
// path, so the acquisition-order graph is acyclic and lockorder stays
// silent.
package clean

import "daxvm/tools/simlint/teststub/sim"

type pair struct {
	a sim.Mutex
	b sim.Mutex
}

func first(t *sim.Thread, p *pair) {
	p.a.Lock(t, 10)
	p.b.Lock(t, 10)
	p.b.Unlock(t, 10)
	p.a.Unlock(t, 10)
}

func second(t *sim.Thread, p *pair) {
	p.a.Lock(t, 10)
	p.b.Lock(t, 10)
	p.b.Unlock(t, 10)
	p.a.Unlock(t, 10)
}

func onlyB(t *sim.Thread, p *pair) {
	p.b.Lock(t, 10)
	p.b.Unlock(t, 10)
}
