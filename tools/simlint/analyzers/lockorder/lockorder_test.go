package lockorder_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/lockorder"
	"daxvm/tools/simlint/anatest"
)

func TestLockOrder(t *testing.T) {
	anatest.Run(t, "testdata", lockorder.Analyzer, "cycle", "clean", "guarded")
}
