// Package lockorder is the whole-program lock-ordering analyzer. It
// propagates held-lock sets along call-graph edges and checks three
// properties that the per-function lockdiscipline analyzer cannot see:
//
//  1. Global acquisition order: every "lock B acquired while lock A is
//     held" pair — directly or through any chain of calls — becomes an
//     edge A -> B in the program's acquisition-order graph. A cycle in
//     that graph is a potential deadlock and is reported once, with the
//     full lock path and the source position of every edge on it. The
//     proven (acyclic) order can be dumped as DOT via SetDotOutput.
//
//  2. Interprocedural `guarded by <lock>` verification: a field access
//     with the named lock unheld at the access point is a finding when
//     the enclosing function can actually be *entered* without the lock
//     (a function whose every caller holds the lock is safe even
//     without a doc annotation).
//
//  3. `holds <lock>` claim verification: a call to a function whose doc
//     comment declares `holds mu` from a site where no lock named mu is
//     held is a finding — the annotation lockdiscipline trusts is now
//     checked at every call site.
//
// Locks are identified by class: the struct field or package-level
// variable that holds them (every instance of mm.MM shares the class
// mm.MM.Sem). Call-graph traversal uses static, interface and bound
// edges only; signature-fallback edges are excluded (see ana.EdgeSig).
// Package sim (the lock implementation, and the fixtures' stub) is out
// of scope, which also keeps the engine's thread trampoline from
// fusing unrelated thread bodies into one order.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"daxvm/tools/simlint/ana"
	"daxvm/tools/simlint/analyzers/lockutil"
)

// Analyzer is the whole-program lock-order check.
var Analyzer = &ana.Analyzer{
	Name:         "lockorder",
	Doc:          "prove a global lock acquisition order (cycles are potential deadlocks) and verify `guarded by`/`holds` annotations across calls",
	Run:          run,
	WholeProgram: true,
}

var dotOut io.Writer

// SetDotOutput makes the next run write the acquisition-order graph to
// w in DOT format (used by simlint's -lockorder-dot flag).
func SetDotOutput(w io.Writer) { dotOut = w }

type eventKind uint8

const (
	evAcquire eventKind = iota
	evRelease
	evCall
	evAccess
)

// event is one point of interest in a function body, in source order
// with branch-aware held-set context.
type event struct {
	kind    eventKind
	class   string       // lock class (acquire/release)
	callees []string     // call targets (evCall)
	obj     types.Object // accessed guarded field (evAccess)
	held    []string     // lock classes held at this point (sorted)
	pos     token.Pos
}

// fnInfo is the per-function summary the interprocedural passes consume.
type fnInfo struct {
	node     *ana.CGNode
	events   []event
	docHolds map[string]bool
	acqLocal map[string]bool // classes acquired anywhere in the body
}

// orderEdge is one acquisition-order edge, keeping its first witness.
type orderEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee chain head for indirect edges ("" = direct)
}

type analysis struct {
	pass     *ana.Pass
	graph    *ana.CallGraph
	fns      map[string]*fnInfo
	ids      []string // sorted scoped node IDs
	guards   map[types.Object]string
	edges    map[[2]string]*orderEdge
	acq      map[string]map[string]bool // AcqStar fixpoint
	pkgLocks map[string]map[string]bool // pkg path -> lock base names used there
	entry    map[string]map[string]bool // entryHolds fixpoint
}

func run(pass *ana.Pass) error {
	a := &analysis{
		pass:     pass,
		graph:    pass.Prog.Graph(),
		fns:      map[string]*fnInfo{},
		guards:   map[types.Object]string{},
		edges:    map[[2]string]*orderEdge{},
		acq:      map[string]map[string]bool{},
		pkgLocks: map[string]map[string]bool{},
		entry:    map[string]map[string]bool{},
	}
	for _, pkg := range pass.Prog.Packages {
		if pkg.Name == "sim" {
			continue
		}
		for obj, lock := range lockutil.CollectGuards(pkg.TypesInfo, pkg.Syntax) {
			a.guards[obj] = lock
			a.noteLockName(pkg.PkgPath, lock)
		}
	}
	for _, id := range a.graph.SortedIDs() {
		n := a.graph.Nodes[id]
		if !a.inScope(n) {
			continue
		}
		a.ids = append(a.ids, id)
		a.fns[id] = a.summarize(n)
	}
	a.pruneProseClaims()
	a.fixpointAcq()
	a.fixpointEntryHolds()
	a.buildOrderEdges()
	a.reportCycles()
	a.checkHoldsClaims()
	a.checkGuardedFields()
	if dotOut != nil {
		a.writeDot(dotOut)
		dotOut = nil
	}
	return nil
}

func (a *analysis) inScope(n *ana.CGNode) bool {
	return n != nil && n.Pkg != nil && n.Pkg.Name != "sim" && n.Body() != nil
}

// --- per-function summary ---------------------------------------------------

// summarize walks one function body in source order, tracking the
// held-lock multiset through branches (both arms are walked with a
// cloned set; lockdiscipline separately enforces that arms re-converge,
// so the post-branch state is the maximum over arms).
func (a *analysis) summarize(n *ana.CGNode) *fnInfo {
	fi := &fnInfo{
		node:     n,
		docHolds: lockutil.HoldsFromDoc(n.DocText()),
		acqLocal: map[string]bool{},
	}
	w := &walker{a: a, fi: fi, posEdges: map[token.Pos][]ana.CGEdge{}}
	for _, e := range a.graph.Out[n.ID] {
		if e.Kind.Traversal() {
			w.posEdges[e.Pos] = append(w.posEdges[e.Pos], e)
		}
	}
	held := map[string]int{}
	w.stmts(n.Body().List, held)
	return fi
}

type walker struct {
	a        *analysis
	fi       *fnInfo
	posEdges map[token.Pos][]ana.CGEdge
}

func (w *walker) stmts(stmts []ast.Stmt, held map[string]int) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]int) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		then := cloneHeld(held)
		w.stmts(s.Body.List, then)
		other := cloneHeld(held)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.stmts(e.List, other)
		case *ast.IfStmt:
			w.stmt(e, other)
		}
		mergeHeld(held, then, other)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		body := cloneHeld(held)
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scan(s.X, held)
		body := cloneHeld(held)
		w.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.scan(s.Tag, held)
		w.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.clauses(s.Body, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				arm := cloneHeld(held)
				w.stmts(cc.Body, arm)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		// Deferred unlocks release at function end, so the lock stays
		// held for every later event — exactly the linear view. A
		// deferred call to anything else is treated as a call here.
		if op, ok := lockutil.Classify(w.fi.node.Pkg.TypesInfo, s.Call); ok {
			_ = op
			return
		}
		w.scan(s.Call, held)
	default:
		w.scan(s, held)
	}
}

func (w *walker) clauses(body *ast.BlockStmt, held map[string]int) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			arm := cloneHeld(held)
			w.stmts(cc.Body, arm)
		}
	}
}

// scan processes the expressions of one leaf statement in source order:
// lock operations mutate held, calls and guarded-field accesses record
// events with the held snapshot.
func (w *walker) scan(n ast.Node, held map[string]int) {
	if n == nil {
		return
	}
	info := w.fi.node.Pkg.TypesInfo
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false // its own node
		case *ast.CallExpr:
			if op, ok := lockutil.Classify(info, nd); ok {
				class := w.a.classOf(info, op)
				if op.Acquire {
					w.fi.acqLocal[class] = true
					w.a.noteLockName(w.fi.node.Pkg.PkgPath, classBase(class))
					w.record(event{kind: evAcquire, class: class, held: heldList(held), pos: nd.Pos()})
					held[class]++
				} else if held[class] > 0 {
					held[class]--
				}
				return false // don't scan mu.Lock's receiver as access
			}
			if edges := w.posEdges[nd.Pos()]; len(edges) > 0 {
				callees := make([]string, 0, len(edges))
				for _, e := range edges {
					callees = append(callees, e.Callee)
				}
				sort.Strings(callees)
				w.record(event{kind: evCall, callees: callees, held: heldList(held), pos: nd.Pos()})
			}
		case *ast.SelectorExpr:
			obj := info.Uses[nd.Sel]
			if _, guarded := w.a.guards[obj]; guarded {
				w.record(event{kind: evAccess, obj: obj, held: heldList(held), pos: nd.Sel.Pos()})
			}
		}
		return true
	})
}

func (w *walker) record(e event) { w.fi.events = append(w.fi.events, e) }

// classOf resolves a lock operation to its program-wide class, falling
// back to a function-local identity for locks with no global home.
func (a *analysis) classOf(info *types.Info, op lockutil.Op) string {
	if class, ok := lockutil.ClassOf(info, op.Recv); ok {
		return class
	}
	return "local:" + strings.TrimSuffix(strings.TrimSuffix(op.Key, "/w"), "/r")
}

func cloneHeld(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// mergeHeld folds branch results back into held as the per-class max:
// lockdiscipline enforces that branches re-converge, so max equals
// either arm on discipline-clean code and stays conservative otherwise.
func mergeHeld(held map[string]int, arms ...map[string]int) {
	for _, arm := range arms {
		for k, v := range arm {
			if v > held[k] {
				held[k] = v
			}
		}
	}
}

func heldList(held map[string]int) []string {
	out := make([]string, 0, len(held))
	for k, v := range held {
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// noteLockName records that pkg uses a lock with this base name, which
// makes `holds <name>` claims in that package meaningful.
func (a *analysis) noteLockName(pkgPath, name string) {
	m := a.pkgLocks[pkgPath]
	if m == nil {
		m = map[string]bool{}
		a.pkgLocks[pkgPath] = m
	}
	m[name] = true
}

// pruneProseClaims drops `holds <word>` matches that do not name a lock
// the claiming function's package actually uses: doc sentences like
// "holds only the p50/p99 rows" or the analyzer documentation's own
// examples must not become claims to verify.
func (a *analysis) pruneProseClaims() {
	for _, id := range a.ids {
		fi := a.fns[id]
		if len(fi.docHolds) == 0 {
			continue
		}
		names := a.pkgLocks[fi.node.Pkg.PkgPath]
		for claim := range fi.docHolds {
			if !names[claim] {
				delete(fi.docHolds, claim)
			}
		}
	}
}

// fixpointEntryHolds computes, per function, the lock names held at
// EVERY entry: the intersection over all call sites of what is held
// there (plus the caller's own entry set and claims). A function also
// callable from outside the analyzed scope — or with no callers at all
// — starts with the empty set. Greatest fixpoint: start full, shrink.
func (a *analysis) fixpointEntryHolds() {
	universe := map[string]bool{}
	for _, names := range a.pkgLocks {
		for n := range names {
			universe[n] = true
		}
	}

	// Call sites per callee, from the summaries (scoped callers only).
	type site struct {
		caller string
		held   []string
	}
	sites := map[string][]site{}
	for _, id := range a.ids {
		for _, ev := range a.fns[id].events {
			if ev.kind != evCall {
				continue
			}
			for _, callee := range ev.callees {
				sites[callee] = append(sites[callee], site{caller: id, held: ev.held})
			}
		}
	}

	open := map[string]bool{} // callable from outside the summaries
	for _, id := range a.ids {
		hasUnscoped := false
		for _, e := range a.graph.In[id] {
			if e.Kind.Traversal() {
				if _, ok := a.fns[e.Caller]; !ok {
					hasUnscoped = true
					break
				}
			}
		}
		if hasUnscoped || len(sites[id]) == 0 {
			open[id] = true
		}
	}

	for _, id := range a.ids {
		if open[id] {
			a.entry[id] = map[string]bool{}
		} else {
			full := make(map[string]bool, len(universe))
			for n := range universe {
				full[n] = true
			}
			a.entry[id] = full
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range a.ids {
			if open[id] {
				continue
			}
			cur := a.entry[id]
			for n := range cur {
				ok := true
				for _, s := range sites[id] {
					if heldHasBase(s.held, n) || a.fns[s.caller].docHolds[n] || a.entry[s.caller][n] {
						continue
					}
					ok = false
					break
				}
				if !ok {
					delete(cur, n)
					changed = true
				}
			}
		}
	}
}

// --- interprocedural acquisition sets ---------------------------------------

// fixpointAcq computes AcqStar: every lock class a function may acquire
// directly or through any chain of traversal edges.
func (a *analysis) fixpointAcq() {
	for _, id := range a.ids {
		set := map[string]bool{}
		for c := range a.fns[id].acqLocal {
			set[c] = true
		}
		a.acq[id] = set
	}
	for changed := true; changed; {
		changed = false
		for _, id := range a.ids {
			set := a.acq[id]
			for _, ev := range a.fns[id].events {
				if ev.kind != evCall {
					continue
				}
				for _, callee := range ev.callees {
					for c := range a.acq[callee] {
						if !set[c] {
							set[c] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// buildOrderEdges turns every "B acquired (possibly via calls) while A
// held" pair into an order edge A -> B, keeping the first witness.
func (a *analysis) buildOrderEdges() {
	for _, id := range a.ids {
		for _, ev := range a.fns[id].events {
			switch ev.kind {
			case evAcquire:
				for _, h := range ev.held {
					a.addOrderEdge(h, ev.class, ev.pos, "")
				}
			case evCall:
				if len(ev.held) == 0 {
					continue
				}
				for _, callee := range ev.callees {
					for _, c := range sortedSet(a.acq[callee]) {
						for _, h := range ev.held {
							a.addOrderEdge(h, c, ev.pos, callee)
						}
					}
				}
			}
		}
	}
}

func (a *analysis) addOrderEdge(from, to string, pos token.Pos, via string) {
	k := [2]string{from, to}
	if _, ok := a.edges[k]; ok {
		return
	}
	a.edges[k] = &orderEdge{from: from, to: to, pos: pos, via: via}
}

// --- cycle detection --------------------------------------------------------

// reportCycles runs Tarjan's SCC over the order graph and reports each
// nontrivial SCC (or self-loop) once, with a full lock path.
func (a *analysis) reportCycles() {
	succ := map[string][]string{}
	nodes := map[string]bool{}
	for k := range a.edges {
		nodes[k[0]], nodes[k[1]] = true, true
	}
	ids := sortedSet(nodes)
	for _, id := range ids {
		var out []string
		for k := range a.edges {
			if k[0] == id {
				out = append(out, k[1])
			}
		}
		sort.Strings(out)
		succ[id] = out
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wv := range succ[v] {
			if _, seen := index[wv]; !seen {
				strongconnect(wv)
				if low[wv] < low[v] {
					low[v] = low[wv]
				}
			} else if onStack[wv] && index[wv] < low[v] {
				low[v] = index[wv]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range ids {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		if len(scc) == 1 {
			if _, self := a.edges[[2]string{scc[0], scc[0]}]; !self {
				continue
			}
		}
		a.reportCycle(scc)
	}
}

// reportCycle reconstructs one concrete cycle through the SCC and
// reports it at the first edge's witness position.
func (a *analysis) reportCycle(scc []string) {
	in := map[string]bool{}
	for _, c := range scc {
		in[c] = true
	}
	// DFS from the smallest class back to itself, within the SCC.
	start := scc[0]
	var path []string
	var dfs func(v string) bool
	visited := map[string]bool{}
	dfs = func(v string) bool {
		path = append(path, v)
		for _, w := range sortedSuccIn(a.edges, v, in) {
			if w == start && (len(path) > 1 || v == start) {
				return true
			}
			if !visited[w] {
				visited[w] = true
				if dfs(w) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if !dfs(start) {
		path = scc // fallback: list the SCC members
	}

	var sb strings.Builder
	sb.WriteString("lock-order cycle: ")
	sb.WriteString(lockutil.ShortClass(path[0]))
	for i := 1; i <= len(path); i++ {
		from := path[i-1]
		to := path[i%len(path)]
		e := a.edges[[2]string{from, to}]
		sb.WriteString(" -> ")
		sb.WriteString(lockutil.ShortClass(to))
		if e != nil {
			sb.WriteString(" (")
			sb.WriteString(a.shortPos(e.pos))
			if e.via != "" {
				sb.WriteString(" via ")
				sb.WriteString(shortNode(e.via))
			}
			sb.WriteString(")")
		}
	}
	sb.WriteString(": potential deadlock")
	pos := token.NoPos
	if e := a.edges[[2]string{path[0], path[1%len(path)]}]; e != nil {
		pos = e.pos
	}
	a.pass.Reportf(pos, "%s", sb.String())
}

func sortedSuccIn(edges map[[2]string]*orderEdge, v string, in map[string]bool) []string {
	var out []string
	for k := range edges {
		if k[0] == v && in[k[1]] {
			out = append(out, k[1])
		}
	}
	sort.Strings(out)
	return out
}

// --- holds-claim verification -----------------------------------------------

// checkHoldsClaims verifies each `holds <lock>` doc claim at every call
// site: some held lock class's base name (or the caller's own claim)
// must match.
func (a *analysis) checkHoldsClaims() {
	for _, id := range a.ids {
		fi := a.fns[id]
		for _, ev := range fi.events {
			if ev.kind != evCall {
				continue
			}
			for _, callee := range ev.callees {
				cf := a.fns[callee]
				if cf == nil {
					continue
				}
				for _, name := range sortedSet(cf.docHolds) {
					if heldHasBase(ev.held, name) || fi.docHolds[name] || a.entry[id][name] {
						continue
					}
					a.pass.Reportf(ev.pos, "call to %s, which declares `holds %s`, but no lock named %s is held here",
						shortNode(callee), name, name)
				}
			}
		}
	}
}

func heldHasBase(held []string, name string) bool {
	for _, c := range held {
		if classBase(c) == name {
			return true
		}
	}
	return false
}

// classBase maps a lock class to its field/variable name:
// "daxvm/internal/mm.MM.Sem" -> "Sem".
func classBase(class string) string {
	if i := strings.LastIndexByte(class, '.'); i >= 0 {
		return class[i+1:]
	}
	return class
}

// --- interprocedural guarded-by ---------------------------------------------

// checkGuardedFields reports guarded-field accesses where the lock is
// unheld at the access point and the function is reachable bare.
func (a *analysis) checkGuardedFields() {
	bare := map[string]map[string]bool{} // lock name -> node -> entered bare
	reported := map[string]bool{}
	for _, id := range a.ids {
		fi := a.fns[id]
		for _, ev := range fi.events {
			if ev.kind != evAccess {
				continue
			}
			lock := a.guards[ev.obj]
			if heldHasBase(ev.held, lock) || a.entry[id][lock] {
				continue
			}
			if fi.docHolds[lock] {
				// The claim is verified at every call site by
				// checkHoldsClaims; trust it here.
				continue
			}
			eb := bare[lock]
			if eb == nil {
				eb = a.enteredBare(lock)
				bare[lock] = eb
			}
			if !eb[id] {
				continue // every entry path holds the lock
			}
			key := fmt.Sprintf("%s|%v", id, ev.obj)
			if reported[key] {
				continue
			}
			reported[key] = true
			trace := a.bareTrace(lock, eb, id)
			a.pass.Reportf(ev.pos, "field %s is guarded by %s, but %s can be entered with %s unheld%s",
				ev.obj.Name(), lock, shortNode(id), lock, trace)
		}
	}
}

// enteredBare computes, for one lock name, which functions can be
// entered with no lock of that name held: roots without in-edges start
// bare (unless their doc claims holds), and bareness propagates through
// call sites where the name is unheld.
func (a *analysis) enteredBare(lock string) map[string]bool {
	eb := map[string]bool{}
	for _, id := range a.ids {
		hasCaller := false
		for _, e := range a.graph.In[id] {
			if e.Kind.Traversal() {
				if _, ok := a.fns[e.Caller]; ok {
					hasCaller = true
				}
			}
		}
		if !hasCaller && !a.fns[id].docHolds[lock] {
			eb[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range a.ids {
			if !eb[id] {
				continue
			}
			for _, ev := range a.fns[id].events {
				if ev.kind != evCall || heldHasBase(ev.held, lock) {
					continue
				}
				for _, callee := range ev.callees {
					if _, ok := a.fns[callee]; ok && !eb[callee] {
						eb[callee] = true
						changed = true
					}
				}
			}
		}
	}
	return eb
}

// bareTrace builds a short "entered bare via ..." chain for the report.
func (a *analysis) bareTrace(lock string, eb map[string]bool, target string) string {
	// BFS from bare roots to target along bare call sites.
	prev := map[string]string{}
	var queue []string
	for _, id := range a.ids {
		hasCaller := false
		for _, e := range a.graph.In[id] {
			if e.Kind.Traversal() {
				if _, ok := a.fns[e.Caller]; ok {
					hasCaller = true
				}
			}
		}
		if !hasCaller && eb[id] {
			queue = append(queue, id)
			prev[id] = ""
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if id == target {
			break
		}
		for _, ev := range a.fns[id].events {
			if ev.kind != evCall || heldHasBase(ev.held, lock) {
				continue
			}
			for _, callee := range ev.callees {
				if _, seen := prev[callee]; seen {
					continue
				}
				if _, ok := a.fns[callee]; !ok {
					continue
				}
				prev[callee] = id
				queue = append(queue, callee)
			}
		}
	}
	if _, ok := prev[target]; !ok {
		return ""
	}
	var chain []string
	for id := target; id != ""; id = prev[id] {
		chain = append(chain, shortNode(id))
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if len(chain) <= 1 {
		return ""
	}
	return " (entered via " + strings.Join(chain, " -> ") + ")"
}

// --- output helpers ---------------------------------------------------------

func (a *analysis) shortPos(pos token.Pos) string {
	p := a.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func shortNode(id string) string {
	n := &ana.CGNode{ID: id}
	return n.ShortName()
}

// writeDot dumps the acquisition-order graph in DOT format.
func (a *analysis) writeDot(w io.Writer) {
	keys := make([][2]string, 0, len(a.edges))
	for k := range a.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	fmt.Fprintln(w, "digraph lockorder {")
	fmt.Fprintln(w, "  rankdir=LR;")
	for _, k := range keys {
		e := a.edges[k]
		label := a.shortPos(e.pos)
		if e.via != "" {
			label += " via " + shortNode(e.via)
		}
		fmt.Fprintf(w, "  %q -> %q [label=%q];\n",
			lockutil.ShortClass(k[0]), lockutil.ShortClass(k[1]), label)
	}
	fmt.Fprintln(w, "}")
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
