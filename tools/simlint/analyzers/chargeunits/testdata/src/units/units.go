// Package units exercises the chargeunits analyzer against the real
// cost package's constants.
package units

import (
	"daxvm/internal/cost"
	"daxvm/tools/simlint/teststub/sim"
)

func mixedAdd(copyNS float64) uint64 {
	latencyNS := 305.0
	_ = latencyNS + float64(cost.PMemLoadLatency) // want `expression mixes nanoseconds and cycles`
	return cost.Cycles(latencyNS + copyNS)        // additive in ns, converted: fine
}

func mixedCompare(sizeBytes uint64) bool {
	return sizeBytes > cost.JournalCommit // want `expression mixes bytes and cycles`
}

func mixedAssign(totalCycles uint64, deltaNS uint64) uint64 {
	totalCycles += deltaNS // want `expression mixes cycles and nanoseconds`
	totalCycles += cost.FsyncFixed
	return totalCycles
}

func chargeWrongUnit(t *sim.Thread, copyBytes uint64) {
	t.Charge(copyBytes) // want `Charge expects cycles, got a bytes-valued expression`
	t.Charge(cost.ReadWriteFixed)
	t.ChargeAs("flush", cost.ClwbCost+cost.FenceCost)
}

func sleepWrongUnit(t *sim.Thread, periodNS uint64) {
	t.Sleep(periodNS) // want `Sleep expects cycles, got a nanoseconds-valued expression`
	t.Sleep(cost.SchedWakeup)
}

func cyclesWrongUnit(numPages uint64) uint64 {
	return cost.Cycles(float64(numPages)) // want `cost\.Cycles expects nanoseconds, got a pages-valued expression`
}

func cyclesRightUnit(elapsedNS float64) uint64 {
	return cost.Cycles(elapsedNS)
}

func rateConversionOK(t *sim.Thread, numPages uint64) {
	// Multiplying by a Per<X> rate changes units; the product is
	// deliberately untyped and charging it is fine.
	t.Charge(numPages * cost.CopyDRAMPerPage)
}

func remoteRateOK(t *sim.Thread, numPages uint64) {
	// The NUMA surcharge constants follow the Per-suffix discipline:
	// Per<X>-named rates are untyped, so scaling by a count and charging
	// the product is fine.
	t.Charge(numPages * cost.RemotePMemReadExtraPerPage)
	t.ChargeAs("ipi_send", 3*cost.IPICrossSocketPerTarget)
}

func remoteMixedUnits(sizeBytes uint64) bool {
	// The flat remote-walk surcharge is cycles; comparing bytes against
	// it mixes units.
	return sizeBytes > cost.RemotePMemWalkExtra // want `expression mixes bytes and cycles`
}

func thresholdOK(numPages uint64) bool {
	// pages compared against a pages-suffixed threshold: same unit.
	return numPages > cost.FullFlushThresholdPages
}

func suppressedMix(walkCycles, wallNS uint64) uint64 {
	//lint:ignore chargeunits calibration scratch math, units checked by hand
	return walkCycles + wallNS
}
