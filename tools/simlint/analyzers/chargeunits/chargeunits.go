// Package chargeunits enforces the simulator's typed-units naming
// convention (documented in internal/cost): identifiers carry their unit
// in a name suffix — Cycles/Cost/Latency are cycle-valued, NS/Nanos are
// nanoseconds, Bytes and Pages are counts, Per<X> names are rates. The
// analyzer flags additive arithmetic and comparisons that mix
// cycle-valued expressions with ns/byte/page-valued ones (conversions go
// through multiplication by a rate, or cost.Cycles), non-cycle arguments
// to the charging APIs (Thread.Charge/ChargeAs/AddRemote/Sleep), and
// non-nanosecond arguments to cost.Cycles.
//
// Constants declared in package cost are cycle-valued by default — the
// package doc pins that convention — unless their suffix says otherwise.
package chargeunits

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"daxvm/tools/simlint/ana"
)

// Analyzer is the cycle/ns/bytes unit-mixing check.
var Analyzer = &ana.Analyzer{
	Name: "chargeunits",
	Doc:  "flag arithmetic mixing cycle-valued and ns/byte/page-valued expressions",
	Run:  run,
}

type unit int

const (
	unknown unit = iota
	cycles
	nanos
	bytes
	pages
)

func (u unit) String() string {
	switch u {
	case cycles:
		return "cycles"
	case nanos:
		return "nanoseconds"
	case bytes:
		return "bytes"
	case pages:
		return "pages"
	}
	return "unknown"
}

// rateSuffixes mark per-something conversion factors; their products
// change units, so they are deliberately untyped here.
var rateSuffixes = []string{
	"PerPage", "PerExtent", "PerBlock", "PerLine", "PerCmp",
	"PerTarget", "PerCycle", "PerSecond", "PerUsec", "Pct",
}

var unitSuffixes = []struct {
	suffix string
	u      unit
}{
	{"Pages", pages},
	{"Bytes", bytes},
	{"NS", nanos},
	{"Ns", nanos},
	{"Nanos", nanos},
	{"Cycles", cycles},
	{"Cost", cycles},
	{"Latency", cycles},
	{"Lat", cycles},
}

// chargeArg maps sim.Thread methods to the index of their cycle-valued
// argument.
var chargeArg = map[string]int{
	"Charge":     0,
	"ChargeAs":   1,
	"AddRemote":  1,
	"Sleep":      0,
	"SleepUntil": 0,
}

func run(pass *ana.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				c.checkBinary(n)
			case *ast.AssignStmt:
				c.checkAssign(n)
			case *ast.CallExpr:
				c.checkCall(n)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *ana.Pass
}

var additive = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

func (c *checker) checkBinary(e *ast.BinaryExpr) {
	if !additive[e.Op] {
		return
	}
	lu, ru := c.unitOf(e.X), c.unitOf(e.Y)
	if lu != unknown && ru != unknown && lu != ru {
		c.pass.Reportf(e.OpPos, "expression mixes %s and %s; convert through a rate constant or cost.Cycles first", lu, ru)
	}
}

// checkAssign applies the additive rule to += and -=, where the left
// side's unit must match the right side's.
func (c *checker) checkAssign(s *ast.AssignStmt) {
	if s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN {
		return
	}
	lu, ru := c.unitOf(s.Lhs[0]), c.unitOf(s.Rhs[0])
	if lu != unknown && ru != unknown && lu != ru {
		c.pass.Reportf(s.TokPos, "expression mixes %s and %s; convert through a rate constant or cost.Cycles first", lu, ru)
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Name() == "sim":
		idx, ok := chargeArg[sel.Sel.Name]
		if !ok || idx >= len(call.Args) {
			return
		}
		if u := c.unitOf(call.Args[idx]); u != unknown && u != cycles {
			c.pass.Reportf(call.Args[idx].Pos(), "%s expects cycles, got a %s-valued expression", sel.Sel.Name, u)
		}
	case fn.Pkg().Name() == "cost" && sel.Sel.Name == "Cycles":
		if len(call.Args) != 1 {
			return
		}
		if u := c.unitOf(call.Args[0]); u != unknown && u != nanos {
			c.pass.Reportf(call.Args[0].Pos(), "cost.Cycles expects nanoseconds, got a %s-valued expression", u)
		}
	}
}

// unitOf infers the unit of e from identifier names and structure.
func (c *checker) unitOf(e ast.Expr) unit {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.unitOfObj(c.pass.TypesInfo.Uses[e], e.Name)
	case *ast.SelectorExpr:
		return c.unitOfObj(c.pass.TypesInfo.Uses[e.Sel], e.Sel.Name)
	case *ast.CallExpr:
		// A type conversion keeps the operand's unit.
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.unitOf(e.Args[0])
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil {
				if fn.Pkg().Name() == "cost" && sel.Sel.Name == "Cycles" {
					return cycles
				}
				return nameUnit(sel.Sel.Name)
			}
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return nameUnit(id.Name)
		}
		return unknown
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			lu, ru := c.unitOf(e.X), c.unitOf(e.Y)
			if lu == unknown {
				return ru
			}
			return lu
		default:
			// *, /, %, shifts: the result's unit is whatever the rate
			// math says — treat as unknown.
			return unknown
		}
	case *ast.UnaryExpr:
		return c.unitOf(e.X)
	}
	return unknown
}

// unitOfObj applies the suffix convention to a named object; constants
// in package cost default to cycles per the package contract.
func (c *checker) unitOfObj(obj types.Object, name string) unit {
	if u := nameUnit(name); u != unknown {
		return u
	}
	if isRate(name) {
		return unknown
	}
	if cn, ok := obj.(*types.Const); ok && cn.Pkg() != nil && cn.Pkg().Name() == "cost" {
		return cycles
	}
	return unknown
}

func nameUnit(name string) unit {
	if isRate(name) {
		return unknown
	}
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s.suffix) {
			return s.u
		}
	}
	return unknown
}

func isRate(name string) bool {
	for _, s := range rateSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}
