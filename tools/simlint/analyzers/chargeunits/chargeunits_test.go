package chargeunits_test

import (
	"testing"

	"daxvm/tools/simlint/analyzers/chargeunits"
	"daxvm/tools/simlint/anatest"
)

func TestChargeUnits(t *testing.T) {
	anatest.Run(t, "testdata", chargeunits.Analyzer, "units")
}
