package ana

import (
	"go/token"
	"regexp"
	"strings"
)

// ignoreRe matches staticcheck-style suppression comments:
//
//	//lint:ignore determinism the engine's token handoff is deterministic
//	//lint:ignore attrbalance,lockdiscipline reason...
//
// The named analyzers are silenced on the comment's own line and on the
// line directly below it (so the comment can trail the statement or sit
// on its own line above it). "all" silences every analyzer.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// ParseIgnore parses a comment's text as a //lint:ignore directive,
// returning the named analyzers and the free-text reason. ok is false
// when the comment is not an ignore directive at all.
func ParseIgnore(text string) (names []string, reason string, ok bool) {
	m := ignoreRe.FindStringSubmatch(text)
	if m == nil {
		return nil, "", false
	}
	return strings.Split(m[1], ","), strings.TrimSpace(m[2]), true
}

// Ignore is one //lint:ignore directive found in a loaded package.
type Ignore struct {
	Pos     token.Pos
	File    string
	Line    int
	PkgPath string
	Names   []string
	Reason  string

	hits int // diagnostics this directive suppressed
}

// SuppressionSet indexes every //lint:ignore directive in a set of
// packages and tracks which ones actually suppressed a finding, so the
// stale-suppression audit can report directives that no longer bite.
type SuppressionSet struct {
	fset    *token.FileSet
	byLine  map[string]map[int][]*Ignore // file -> covered line -> directives
	ignores []*Ignore                    // in deterministic (pkg, position) order
}

// CollectSuppressions scans pkgs for //lint:ignore comments. Each
// directive covers its own line and the line directly below.
func CollectSuppressions(pkgs ...*Package) *SuppressionSet {
	s := &SuppressionSet{byLine: map[string]map[int][]*Ignore{}}
	for _, pkg := range pkgs {
		if s.fset == nil {
			s.fset = pkg.Fset
		}
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := ParseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ig := &Ignore{
						Pos:     c.Pos(),
						File:    pos.Filename,
						Line:    pos.Line,
						PkgPath: pkg.PkgPath,
						Names:   names,
						Reason:  reason,
					}
					s.ignores = append(s.ignores, ig)
					byLine := s.byLine[ig.File]
					if byLine == nil {
						byLine = map[int][]*Ignore{}
						s.byLine[ig.File] = byLine
					}
					byLine[ig.Line] = append(byLine[ig.Line], ig)
					byLine[ig.Line+1] = append(byLine[ig.Line+1], ig)
				}
			}
		}
	}
	return s
}

// suppressionMatches reports whether a directive naming `name` silences
// analyzer. The suppaudit analyzer may only be silenced by its exact
// name: a stray `//lint:ignore all` must not be able to hide the very
// finding that says the suppression is stale.
func suppressionMatches(name, analyzer string) bool {
	if analyzer == "suppaudit" {
		return name == analyzer
	}
	return name == analyzer || name == "all"
}

// MarkedDiagnostic is a diagnostic plus whether a //lint:ignore
// directive covers it.
type MarkedDiagnostic struct {
	Diagnostic
	Suppressed bool
}

// Mark tags each diagnostic with its suppression status and records the
// hit on the covering directive (for the stale audit). A nil set marks
// nothing suppressed.
func (s *SuppressionSet) Mark(diags []Diagnostic) []MarkedDiagnostic {
	out := make([]MarkedDiagnostic, 0, len(diags))
	for _, d := range diags {
		md := MarkedDiagnostic{Diagnostic: d}
		if s != nil && s.fset != nil {
			pos := s.fset.Position(d.Pos)
			for _, ig := range s.byLine[pos.Filename][pos.Line] {
				matched := false
				for _, name := range ig.Names {
					if suppressionMatches(name, d.Analyzer) {
						matched = true
						break
					}
				}
				if matched {
					ig.hits++
					md.Suppressed = true
				}
			}
		}
		out = append(out, md)
	}
	return out
}

// Stale reports directives that suppressed nothing. ranOn reports
// whether the named analyzer actually ran on the directive's package
// this invocation: a directive is only stale when everything it names
// ran and still nothing was suppressed (so running a subset of the
// suite never flags live suppressions). Unknown analyzer names are the
// suppaudit analyzer's job, not this audit's, so they are skipped here
// via the known predicate.
func (s *SuppressionSet) Stale(known func(name string) bool, ranOn func(pkgPath, analyzer string) bool) []Diagnostic {
	var out []Diagnostic
	for _, ig := range s.ignores {
		if ig.hits > 0 {
			continue
		}
		allRan := true
		for _, name := range ig.Names {
			if name == "all" {
				continue
			}
			if !known(name) {
				// Unknown name: reported by suppaudit per-package.
				allRan = false
				break
			}
			if !ranOn(ig.PkgPath, name) {
				allRan = false
				break
			}
		}
		if !allRan {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      ig.Pos,
			Analyzer: "suppaudit",
			Message:  "stale //lint:ignore " + strings.Join(ig.Names, ",") + ": suppresses no finding on this line",
		})
	}
	return out
}

// filterSuppressed drops diagnostics covered by //lint:ignore comments
// (the legacy single-package entry point used by ana.Run).
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	set := CollectSuppressions(pkg)
	out := diags[:0]
	for _, md := range set.Mark(diags) {
		if !md.Suppressed {
			out = append(out, md.Diagnostic)
		}
	}
	return out
}
