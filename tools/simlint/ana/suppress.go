package ana

import (
	"regexp"
	"strings"
)

// ignoreRe matches staticcheck-style suppression comments:
//
//	//lint:ignore determinism the engine's token handoff is deterministic
//	//lint:ignore attrbalance,lockdiscipline reason...
//
// The named analyzers are silenced on the comment's own line and on the
// line directly below it (so the comment can trail the statement or sit
// on its own line above it). "all" silences every analyzer.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)(?:\s|$)`)

// filterSuppressed drops diagnostics covered by //lint:ignore comments.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> analyzer names silenced there.
	silenced := map[string]map[int][]string{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := silenced[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					silenced[pos.Filename] = byLine
				}
				names := strings.Split(m[1], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	if len(silenced) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		keep := true
		for _, name := range silenced[pos.Filename][pos.Line] {
			if name == d.Analyzer || name == "all" {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	return out
}
