package ana

import "go/ast"

// Terminates reports whether control cannot fall off the end of stmts:
// the last statement returns, branches, panics, or loops forever. It is
// deliberately syntactic — `break` out of the infinite loop defeats it,
// which the balance analyzers accept as a false-negative trade.
func Terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil
	case *ast.LabeledStmt:
		return Terminates([]ast.Stmt{s.Stmt})
	case *ast.BlockStmt:
		return Terminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		var elseTerm bool
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = Terminates(e.List)
		case *ast.IfStmt:
			elseTerm = Terminates([]ast.Stmt{e})
		}
		return Terminates(s.Body.List) && elseTerm
	}
	return false
}

// EndsWithForever reports whether the last statement is an unconditional
// infinite loop — the daemon-body shape that never returns.
func EndsWithForever(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	f, ok := stmts[len(stmts)-1].(*ast.ForStmt)
	return ok && f.Cond == nil
}
