// Package ana is a minimal reimplementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) on the standard
// library alone. The build environment has no module proxy access, so
// x/tools cannot be a dependency; the subset here is exactly what the
// simlint suite needs: load typed packages, run per-package analyzers,
// collect position-tagged diagnostics, honor //lint:ignore suppressions.
package ana

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run analyzes one package (or, when WholeProgram is set, the
	// whole program via Pass.Prog).
	Run func(*Pass) error
	// WholeProgram marks an interprocedural analyzer: it runs once
	// over the entire load (Pass.Prog set, per-package fields nil)
	// instead of once per package.
	WholeProgram bool
}

// Pass carries one package's syntax and type information to an Analyzer.
// For whole-program analyzers only Analyzer, Fset and Prog are set.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes a on pkg and returns its diagnostics with //lint:ignore
// suppressions already filtered out, sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	diags, err := rawRun(a, pkg)
	if err != nil {
		return nil, err
	}
	diags = filterSuppressed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// RunMarked executes a on pkg and returns every diagnostic, tagged with
// its suppression status against set (hit counts accrue to set for the
// stale audit). A nil set marks nothing suppressed.
func RunMarked(a *Analyzer, pkg *Package, set *SuppressionSet) ([]MarkedDiagnostic, error) {
	diags, err := rawRun(a, pkg)
	if err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return set.Mark(diags), nil
}

func rawRun(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if a.WholeProgram {
		return nil, fmt.Errorf("%s: whole-program analyzer cannot run per package", a.Name)
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	return pass.diags, nil
}

// RunProgramMarked executes a whole-program analyzer once over prog,
// returning every diagnostic tagged with its suppression status.
func RunProgramMarked(a *Analyzer, prog *Program, set *SuppressionSet) ([]MarkedDiagnostic, error) {
	if !a.WholeProgram {
		return nil, fmt.Errorf("%s: per-package analyzer cannot run whole-program", a.Name)
	}
	pass := &Pass{Analyzer: a, Fset: prog.Fset, Prog: prog}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags := pass.diags
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return set.Mark(diags), nil
}
