package ana

import "go/token"

// Program is the whole-program view shared by interprocedural
// analyzers: every loaded package plus the lazily-built call graph.
type Program struct {
	Packages []*Package
	Fset     *token.FileSet

	graph *CallGraph
}

// NewProgram wraps a set of packages loaded by Load (they share one
// FileSet, so positions are comparable across packages).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Packages: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	} else {
		p.Fset = token.NewFileSet()
	}
	return p
}

// Graph returns the whole-program call graph, building it on first use.
// The build is deterministic, so analyzers running in sequence observe
// the identical graph.
func (p *Program) Graph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p)
	}
	return p.graph
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Packages {
		if pkg.PkgPath == path {
			return pkg
		}
	}
	return nil
}
