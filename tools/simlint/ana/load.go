package ana

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, which must lie inside a module). Dependencies are imported from
// compiler export data produced by `go list -export`, so loading works
// offline and never re-typechecks the world; only the matched packages
// themselves are parsed from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
		"-export", "-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			// Std-vendored import paths appear in export data with their
			// canonical "vendor/" prefix and vice versa.
			if f, ok = exports["vendor/"+path]; !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, tp := range targets {
		if len(tp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range tp.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(tp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Implicits:  map[ast.Node]types.Object{},
		}
		var typeErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		tpkg, _ := conf.Check(tp.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("typecheck %s:\n  %s", tp.ImportPath, strings.Join(typeErrs, "\n  "))
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   tp.ImportPath,
			Name:      tp.Name,
			Dir:       tp.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
