package ana

// This file builds the whole-program call graph shared by the
// interprocedural analyzers (lockorder, hotalloc). The graph is built
// once per Program from the already-type-checked packages:
//
//   - static calls of declared functions and methods resolve directly;
//   - interface method calls link to every in-program concrete method
//     of a type implementing the interface (class-hierarchy analysis);
//   - dynamic calls through func-typed struct fields, named func types
//     and locally-aliased func values link to the function values bound
//     to that field/type/alias anywhere in the program, including one
//     level of parameter flow (a func value passed to a function that
//     stores its parameter into a field binds to that field — the
//     SetChargeSink / NewAddressSpace wiring idiom);
//   - remaining dynamic calls fall back to signature matching, but
//     those edges are tagged EdgeSig and excluded from analyzer
//     traversals: the engine's thread trampoline (t.fn(t)) would
//     otherwise make every thread body reachable from every lock.
//
// Everything is deterministic: nodes and edges are sorted, and map
// iteration never leaks into output order.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeIface is a call through an interface method.
	EdgeIface
	// EdgeBound is a dynamic call through a func-typed field, named
	// func type, or aliased local, resolved to its bound values.
	EdgeBound
	// EdgeSig is the signature-match fallback; excluded from analyzer
	// traversals (see package comment above).
	EdgeSig
)

// String names the edge kind for DOT output.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeIface:
		return "iface"
	case EdgeBound:
		return "bound"
	default:
		return "sig"
	}
}

// TraversalKinds reports whether edges of kind k take part in
// reachability and held-lock propagation.
func (k EdgeKind) Traversal() bool { return k != EdgeSig }

// CGNode is one function in the call graph: a declared function or
// method, or a function literal.
type CGNode struct {
	ID   string
	Fn   *types.Func   // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Decl *ast.FuncDecl // nil for literals and bodiless functions
	Pkg  *Package      // owning package; nil for out-of-program callees
	Pos  token.Pos
}

// Body returns the node's syntax body, or nil when the function is
// declared outside the loaded program.
func (n *CGNode) Body() *ast.BlockStmt {
	switch {
	case n.Lit != nil:
		return n.Lit.Body
	case n.Decl != nil:
		return n.Decl.Body
	}
	return nil
}

// DocText returns the declaration doc comment ("" for literals).
func (n *CGNode) DocText() string {
	if n.Decl != nil && n.Decl.Doc != nil {
		return n.Decl.Doc.Text()
	}
	return ""
}

// ShortName compresses a node ID for human-readable traces:
// "(*daxvm/internal/mm.MM).PageFault" -> "(*mm.MM).PageFault".
func (n *CGNode) ShortName() string { return shortID(n.ID) }

// shortID trims the directory part of each import path, keeping the
// package base name: "daxvm/internal/mm.MM" -> "mm.MM".
func shortID(id string) string {
	var sb strings.Builder
	for {
		i := strings.Index(id, "daxvm/")
		if i < 0 {
			sb.WriteString(id)
			return sb.String()
		}
		sb.WriteString(id[:i])
		rest := id[i:]
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			sb.WriteString(rest)
			return sb.String()
		}
		path := rest[:dot]
		if k := strings.LastIndexByte(path, '/'); k >= 0 {
			path = path[k+1:]
		}
		sb.WriteString(path)
		id = rest[dot:]
	}
}

// CGEdge is one resolved call site.
type CGEdge struct {
	Caller string
	Callee string
	Kind   EdgeKind
	Pos    token.Pos
}

// CallGraph is the whole-program call graph.
type CallGraph struct {
	Nodes map[string]*CGNode
	Out   map[string][]CGEdge // sorted by (Pos, Callee, Kind)
	In    map[string][]CGEdge

	funcID map[*types.Func]string
	litID  map[*ast.FuncLit]string
}

// FuncNode resolves a declared function object to its node (nil when
// the function has no body in the program).
func (g *CallGraph) FuncNode(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	if id, ok := g.funcID[origin(fn)]; ok {
		return g.Nodes[id]
	}
	return nil
}

// LitNode resolves a function literal to its node.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CGNode {
	if id, ok := g.litID[lit]; ok {
		return g.Nodes[id]
	}
	return nil
}

// SortedIDs returns every node ID in sorted order.
func (g *CallGraph) SortedIDs() []string {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Callees returns the traversal out-edges of id (EdgeSig excluded).
func (g *CallGraph) Callees(id string) []CGEdge {
	return filterTraversal(g.Out[id])
}

// Callers returns the traversal in-edges of id (EdgeSig excluded).
func (g *CallGraph) Callers(id string) []CGEdge {
	return filterTraversal(g.In[id])
}

func filterTraversal(edges []CGEdge) []CGEdge {
	out := make([]CGEdge, 0, len(edges))
	for _, e := range edges {
		if e.Kind.Traversal() {
			out = append(out, e)
		}
	}
	return out
}

func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// --- builder ----------------------------------------------------------------

type dynCall struct {
	caller string
	keys   []string // precise binding keys, in preference order
	sig    string   // signature fallback key
	pos    token.Pos
}

type ifaceCall struct {
	caller string
	iface  *types.Interface
	method string
	pos    token.Pos
}

type paramFieldLink struct {
	param int
	key   string
}

type funcArg struct {
	callee  string
	idx     int
	valueID string
}

type cgBuilder struct {
	prog *Program
	g    *CallGraph

	bindings    map[string]map[string]bool // bind key -> node IDs
	dynCalls    []dynCall
	ifaceCalls  []ifaceCall
	paramFields map[string][]paramFieldLink
	funcArgs    []funcArg
	aliases     map[types.Object]string // local func var -> bind key
	edgeSeen    map[string]bool
}

func buildCallGraph(prog *Program) *CallGraph {
	b := &cgBuilder{
		prog: prog,
		g: &CallGraph{
			Nodes:  map[string]*CGNode{},
			Out:    map[string][]CGEdge{},
			In:     map[string][]CGEdge{},
			funcID: map[*types.Func]string{},
			litID:  map[*ast.FuncLit]string{},
		},
		bindings:    map[string]map[string]bool{},
		paramFields: map[string][]paramFieldLink{},
		aliases:     map[types.Object]string{},
		edgeSeen:    map[string]bool{},
	}
	for _, pkg := range prog.Packages {
		b.registerPackage(pkg)
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			b.collectFile(pkg, f)
		}
	}
	b.resolveParamFlow()
	b.resolveDynCalls()
	b.resolveIfaceCalls()
	b.finish()
	return b.g
}

// registerPackage creates nodes for every declared function and every
// function literal, numbering literals in source order per enclosure.
func (b *cgBuilder) registerPackage(pkg *Package) {
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				id := fn.FullName()
				b.g.Nodes[id] = &CGNode{ID: id, Fn: fn, Decl: d, Pkg: pkg, Pos: d.Pos()}
				b.g.funcID[origin(fn)] = id
				if d.Body != nil {
					b.registerLits(pkg, id, d.Body)
				}
			case *ast.GenDecl:
				// Package-level initializers may hold literals.
				b.registerLits(pkg, pkg.PkgPath+".init", d)
			}
		}
	}
}

// registerLits assigns IDs to function literals under root, nesting as
// <enclosing>$<n> with n counting in source order per enclosure.
func (b *cgBuilder) registerLits(pkg *Package, root string, n ast.Node) {
	counts := map[string]int{}
	var enclosing []string
	push := func(id string) { enclosing = append(enclosing, id) }
	pop := func() { enclosing = enclosing[:len(enclosing)-1] }
	push(root)
	var walk func(ast.Node) bool
	walk = func(nd ast.Node) bool {
		lit, ok := nd.(*ast.FuncLit)
		if !ok {
			return true
		}
		parent := enclosing[len(enclosing)-1]
		counts[parent]++
		id := fmt.Sprintf("%s$%d", parent, counts[parent])
		b.g.Nodes[id] = &CGNode{ID: id, Lit: lit, Pkg: pkg, Pos: lit.Pos()}
		b.g.litID[lit] = id
		push(id)
		ast.Inspect(lit.Body, walk)
		pop()
		return false
	}
	ast.Inspect(n, walk)
}

// collectFile walks every function body in the file, attributing calls
// and bindings to the innermost enclosing function node.
func (b *cgBuilder) collectFile(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
			if fn == nil || d.Body == nil {
				continue
			}
			b.walkFunc(pkg, b.g.Nodes[fn.FullName()], d.Body)
		case *ast.GenDecl:
			// Literals in package-level initializers walk under their
			// own nodes; bindings in the spec itself are collected too.
			b.collectGenDecl(pkg, d)
		}
	}
}

func (b *cgBuilder) collectGenDecl(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, v := range vs.Values {
			var target ast.Expr
			if i < len(vs.Names) {
				target = vs.Names[i]
			}
			b.bindValue(pkg, v, b.targetKeys(pkg, target, nil))
			if lit, ok := v.(*ast.FuncLit); ok {
				b.walkFunc(pkg, b.g.LitNode(lit), lit.Body)
			}
		}
	}
}

// walkFunc collects calls and bindings in body, attributed to cur.
// Nested literals are walked under their own nodes.
func (b *cgBuilder) walkFunc(pkg *Package, cur *CGNode, body *ast.BlockStmt) {
	if cur == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if ln := b.g.LitNode(n); ln != nil {
				b.walkFunc(pkg, ln, n.Body)
			}
			return false
		case *ast.CallExpr:
			b.collectCall(pkg, cur, n)
		case *ast.AssignStmt:
			b.collectAssign(pkg, cur, n)
		case *ast.ValueSpec:
			for i, v := range n.Values {
				var target ast.Expr
				if i < len(n.Names) {
					target = n.Names[i]
				}
				b.bindValue(pkg, v, b.targetKeys(pkg, target, nil))
			}
		case *ast.CompositeLit:
			b.collectCompositeLit(pkg, n)
		case *ast.ReturnStmt:
			b.collectReturn(pkg, cur, n)
		case *ast.RangeStmt:
			b.collectRangeAlias(pkg, n)
		}
		return true
	})
}

// collectCall classifies one call site.
func (b *cgBuilder) collectCall(pkg *Package, cur *CGNode, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	info := pkg.TypesInfo

	// Function literal called in place.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if ln := b.g.LitNode(lit); ln != nil {
			b.addEdge(CGEdge{Caller: cur.ID, Callee: ln.ID, Kind: EdgeStatic, Pos: call.Pos()})
		}
		return
	}

	obj := calleeObject(info, fun)
	switch o := obj.(type) {
	case *types.Builtin, *types.TypeName:
		return // builtin or conversion; conversions bind via bindValue contexts
	case *types.Func:
		sig, _ := o.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if it, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				b.ifaceCalls = append(b.ifaceCalls, ifaceCall{caller: cur.ID, iface: it, method: o.Name(), pos: call.Pos()})
				return
			}
		}
		callee := origin(o).FullName()
		if _, ok := b.g.Nodes[callee]; !ok {
			// Out-of-program callee: record a bodiless node so the
			// edge still exists (DOT completeness, dead-end for
			// reachability).
			b.g.Nodes[callee] = &CGNode{ID: callee, Fn: o, Pos: token.NoPos}
		}
		b.addEdge(CGEdge{Caller: cur.ID, Callee: callee, Kind: EdgeStatic, Pos: call.Pos()})
		b.collectFuncArgs(pkg, callee, sig, call)
		return
	}

	// Dynamic call: through a field, named func type, alias, or any
	// other func-typed expression.
	t := info.TypeOf(fun)
	sig, _ := t.(*types.Signature)
	if sig == nil {
		if named, ok := t.(*types.Named); ok {
			sig, _ = named.Underlying().(*types.Signature)
		}
	}
	if sig == nil && t != nil {
		sig, _ = t.Underlying().(*types.Signature)
	}
	if sig == nil {
		return // not a call of a function value (e.g. unresolved)
	}
	dc := dynCall{caller: cur.ID, sig: sigKey(sig), pos: call.Pos()}
	dc.keys = b.calleeKeys(pkg, fun)
	b.dynCalls = append(b.dynCalls, dc)
	b.collectFuncArgs(pkg, "", sig, call)
}

// calleeObject resolves the object a call expression's Fun names.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return calleeObject(info, f.X)
	case *ast.IndexListExpr:
		return calleeObject(info, f.X)
	}
	return nil
}

// calleeKeys computes the precise binding keys a dynamic callee
// expression can be looked up under.
func (b *cgBuilder) calleeKeys(pkg *Package, fun ast.Expr) []string {
	var keys []string
	info := pkg.TypesInfo
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if k := fieldKey(info, sel); k != "" {
			keys = append(keys, k)
		}
	}
	if id, ok := fun.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if k, ok := b.aliases[obj]; ok {
				keys = append(keys, k)
			}
			keys = append(keys, varKey(b.prog.Fset, obj))
		}
	}
	if named, ok := info.TypeOf(fun).(*types.Named); ok {
		if _, isSig := named.Underlying().(*types.Signature); isSig {
			keys = append(keys, typeKey(named))
		}
	}
	return keys
}

// collectFuncArgs registers function values passed as call arguments:
// bindings under the parameter's named type, plus a funcArg record for
// one-level parameter flow into fields when the callee is known.
func (b *cgBuilder) collectFuncArgs(pkg *Package, calleeID string, sig *types.Signature, call *ast.CallExpr) {
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Signature); !ok {
			continue
		}
		keys := []string{}
		if named, ok := pt.(*types.Named); ok {
			keys = append(keys, typeKey(named))
		}
		ids := b.bindValue(pkg, arg, keys)
		if calleeID != "" {
			for _, vid := range ids {
				b.funcArgs = append(b.funcArgs, funcArg{callee: calleeID, idx: i, valueID: vid})
			}
		}
	}
}

// collectAssign records bindings (and parameter->field links, and local
// aliases) from one assignment.
func (b *cgBuilder) collectAssign(pkg *Package, cur *CGNode, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	info := pkg.TypesInfo
	for i, rhs := range as.Rhs {
		lhs := as.Lhs[i]
		keys := b.targetKeys(pkg, lhs, rhs)
		b.bindValue(pkg, rhs, keys)
		// Local alias: f := x.Field (func-typed) lets later f(...)
		// calls resolve through the field's bindings.
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil || as.Tok == token.ASSIGN {
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					if sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok {
						if k := fieldKey(info, sel); k != "" {
							b.aliases[obj] = k
						}
					}
				}
			}
		}
		// Parameter flow: s.field = fn where fn is a func-typed
		// parameter of the enclosing declared function.
		if cur != nil && cur.Fn != nil {
			if pidx := paramIndex(cur.Fn, info, rhs); pidx >= 0 {
				for _, k := range keys {
					if strings.HasPrefix(k, "field:") {
						b.paramFields[cur.ID] = append(b.paramFields[cur.ID], paramFieldLink{param: pidx, key: k})
					}
				}
			}
		}
	}
}

// collectCompositeLit records bindings from struct/map literal values,
// including parameter->field links for struct fields initialized from
// func-typed parameters (the Engine.Go / NewAddressSpace idiom).
func (b *cgBuilder) collectCompositeLit(pkg *Package, cl *ast.CompositeLit) {
	info := pkg.TypesInfo
	t := info.TypeOf(cl)
	if t == nil {
		return
	}
	st, _ := t.Underlying().(*types.Struct)
	cur := b.enclosingDecl(pkg, cl.Pos())
	for i, el := range cl.Elts {
		var value ast.Expr
		var keys []string
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok && st != nil {
				if fobj, ok := info.Uses[key].(*types.Var); ok && fobj.IsField() {
					if k := fieldKeyOf(t, fobj); k != "" {
						keys = append(keys, k)
					}
				}
			}
			if mt, ok := t.Underlying().(*types.Map); ok {
				if named, ok := mt.Elem().(*types.Named); ok {
					if _, isSig := named.Underlying().(*types.Signature); isSig {
						keys = append(keys, typeKey(named))
					}
				}
			}
		} else {
			value = el
			if st != nil && i < st.NumFields() {
				if k := fieldKeyOf(t, st.Field(i)); k != "" {
					keys = append(keys, k)
				}
			}
		}
		b.bindValue(pkg, value, keys)
		if cur != nil && cur.Fn != nil {
			if pidx := paramIndex(cur.Fn, info, value); pidx >= 0 {
				for _, k := range keys {
					if strings.HasPrefix(k, "field:") {
						b.paramFields[cur.ID] = append(b.paramFields[cur.ID], paramFieldLink{param: pidx, key: k})
					}
				}
			}
		}
	}
}

// enclosingDecl finds the declared function containing pos (literals
// resolve to their enclosing declaration for parameter lookup).
func (b *cgBuilder) enclosingDecl(pkg *Package, pos token.Pos) *CGNode {
	for _, f := range pkg.Syntax {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pos >= fd.Pos() && pos <= fd.End() {
				if fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
					return b.g.Nodes[fn.FullName()]
				}
			}
		}
	}
	return nil
}

func (b *cgBuilder) collectReturn(pkg *Package, cur *CGNode, ret *ast.ReturnStmt) {
	var results *types.Tuple
	if cur.Fn != nil {
		results = cur.Fn.Type().(*types.Signature).Results()
	} else if cur.Lit != nil {
		if sig, ok := pkg.TypesInfo.TypeOf(cur.Lit).(*types.Signature); ok {
			results = sig.Results()
		}
	}
	for i, v := range ret.Results {
		var keys []string
		if results != nil && i < results.Len() {
			if named, ok := results.At(i).Type().(*types.Named); ok {
				if _, isSig := named.Underlying().(*types.Signature); isSig {
					keys = append(keys, typeKey(named))
				}
			}
		}
		b.bindValue(pkg, v, keys)
	}
}

// collectRangeAlias links `for _, f := range x.Field` loop variables to
// the field's binding key so f(...) resolves precisely.
func (b *cgBuilder) collectRangeAlias(pkg *Package, rs *ast.RangeStmt) {
	sel, ok := ast.Unparen(rs.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	k := fieldKey(pkg.TypesInfo, sel)
	if k == "" {
		return
	}
	if vid, ok := rs.Value.(*ast.Ident); ok {
		if obj := pkg.TypesInfo.Defs[vid]; obj != nil {
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				b.aliases[obj] = k
			}
		}
	}
}

// bindValue registers the function value(s) in expr under keys (plus
// the signature fallback key and any named-func-type conversions it is
// wrapped in). Returns the node IDs bound.
func (b *cgBuilder) bindValue(pkg *Package, expr ast.Expr, keys []string) []string {
	if expr == nil {
		return nil
	}
	info := pkg.TypesInfo
	e := ast.Unparen(expr)
	// Unwrap conversions to named func types, accumulating their keys.
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			break
		}
		tn, ok := calleeObject(info, ast.Unparen(call.Fun)).(*types.TypeName)
		if !ok {
			break
		}
		if named, ok := tn.Type().(*types.Named); ok {
			if _, isSig := named.Underlying().(*types.Signature); isSig {
				keys = append(keys, typeKey(named))
			}
		}
		e = ast.Unparen(call.Args[0])
	}

	var id string
	switch v := e.(type) {
	case *ast.FuncLit:
		if ln := b.g.LitNode(v); ln != nil {
			id = ln.ID
		}
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			id = b.ensureFuncNode(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			id = b.ensureFuncNode(fn)
		}
	}
	if id == "" {
		return nil
	}
	if t := info.TypeOf(e); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			keys = append(keys, sigKey(sig))
		}
	}
	for _, k := range keys {
		if k == "" {
			continue
		}
		set := b.bindings[k]
		if set == nil {
			set = map[string]bool{}
			b.bindings[k] = set
		}
		set[id] = true
	}
	return []string{id}
}

func (b *cgBuilder) ensureFuncNode(fn *types.Func) string {
	id := origin(fn).FullName()
	if _, ok := b.g.Nodes[id]; !ok {
		b.g.Nodes[id] = &CGNode{ID: id, Fn: fn, Pos: token.NoPos}
	}
	return id
}

// targetKeys computes the binding keys an assignment target provides.
func (b *cgBuilder) targetKeys(pkg *Package, target, _ ast.Expr) []string {
	if target == nil {
		return nil
	}
	info := pkg.TypesInfo
	var keys []string
	switch lhs := ast.Unparen(target).(type) {
	case *ast.SelectorExpr:
		if k := fieldKey(info, lhs); k != "" {
			keys = append(keys, k)
		}
	case *ast.IndexExpr:
		// m[k] = fn where m is a field: bind under the map field.
		if sel, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
			if k := fieldKey(info, sel); k != "" {
				keys = append(keys, k)
			}
		}
	case *ast.Ident:
		if obj := info.Defs[lhs]; obj != nil {
			keys = append(keys, varKey(b.prog.Fset, obj))
		} else if obj := info.Uses[lhs]; obj != nil {
			keys = append(keys, varKey(b.prog.Fset, obj))
		}
	}
	if named, ok := info.TypeOf(target).(*types.Named); ok {
		if _, isSig := named.Underlying().(*types.Signature); isSig {
			keys = append(keys, typeKey(named))
		}
	}
	return keys
}

// paramIndex reports which func-typed parameter of fn the expression
// reads, or -1.
func paramIndex(fn *types.Func, info *types.Info, expr ast.Expr) int {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return i
			}
		}
	}
	return -1
}

// --- binding keys -----------------------------------------------------------

func fieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	fobj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fobj.IsField() {
		return ""
	}
	return fieldKeyOf(info.TypeOf(sel.X), fobj)
}

func fieldKeyOf(owner types.Type, fobj *types.Var) string {
	for {
		if p, ok := owner.(*types.Pointer); ok {
			owner = p.Elem()
			continue
		}
		break
	}
	if named, ok := owner.(*types.Named); ok {
		return "field:" + qualifiedTypeName(named) + "." + fobj.Name()
	}
	// Unnamed struct: fall back to a per-field-object key.
	return fmt.Sprintf("field:?%s.%s", fobj.Id(), fobj.Name())
}

func typeKey(named *types.Named) string { return "type:" + qualifiedTypeName(named) }

func qualifiedTypeName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

func varKey(fset *token.FileSet, obj types.Object) string {
	p := fset.Position(obj.Pos())
	return fmt.Sprintf("var:%s:%d:%d", p.Filename, p.Line, p.Column)
}

func sigKey(sig *types.Signature) string {
	return "sig:" + types.TypeString(sig, nil)
}

// --- resolution -------------------------------------------------------------

// resolveParamFlow applies one level of parameter flow: a func value
// passed at a call site whose callee stores that parameter into a field
// binds the value to the field's key.
func (b *cgBuilder) resolveParamFlow() {
	for _, fa := range b.funcArgs {
		for _, link := range b.paramFields[fa.callee] {
			if link.param != fa.idx {
				continue
			}
			set := b.bindings[link.key]
			if set == nil {
				set = map[string]bool{}
				b.bindings[link.key] = set
			}
			set[fa.valueID] = true
		}
	}
}

func (b *cgBuilder) resolveDynCalls() {
	for _, dc := range b.dynCalls {
		targets := map[string]bool{}
		for _, k := range dc.keys {
			for id := range b.bindings[k] {
				targets[id] = true
			}
		}
		kind := EdgeBound
		if len(targets) == 0 {
			kind = EdgeSig
			for id := range b.bindings[dc.sig] {
				targets[id] = true
			}
		}
		for _, id := range sortedSet(targets) {
			b.addEdge(CGEdge{Caller: dc.caller, Callee: id, Kind: kind, Pos: dc.pos})
		}
	}
}

func (b *cgBuilder) resolveIfaceCalls() {
	type implKey struct {
		iface  *types.Interface
		method string
	}
	cache := map[implKey][]string{}
	for _, ic := range b.ifaceCalls {
		key := implKey{ic.iface, ic.method}
		targets, ok := cache[key]
		if !ok {
			targets = b.implementers(ic.iface, ic.method)
			cache[key] = targets
		}
		for _, id := range targets {
			b.addEdge(CGEdge{Caller: ic.caller, Callee: id, Kind: EdgeIface, Pos: ic.pos})
		}
	}
}

// implementers finds every in-program concrete method implementing
// iface.method, in deterministic order.
func (b *cgBuilder) implementers(iface *types.Interface, method string) []string {
	var out []string
	for _, pkg := range b.prog.Packages {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, pkg.Types, method)
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			id := origin(fn).FullName()
			if n, ok := b.g.Nodes[id]; ok && n.Body() != nil {
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

func (b *cgBuilder) addEdge(e CGEdge) {
	k := fmt.Sprintf("%s|%d|%s|%d", e.Caller, e.Pos, e.Callee, e.Kind)
	if b.edgeSeen[k] {
		return
	}
	b.edgeSeen[k] = true
	b.g.Out[e.Caller] = append(b.g.Out[e.Caller], e)
	b.g.In[e.Callee] = append(b.g.In[e.Callee], e)
}

func (b *cgBuilder) finish() {
	for id := range b.g.Out {
		sortEdges(b.g.Out[id])
	}
	for id := range b.g.In {
		sortEdges(b.g.In[id])
	}
}

func sortEdges(edges []CGEdge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return a.Kind < b.Kind
	})
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
