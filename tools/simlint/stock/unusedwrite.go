package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"daxvm/tools/simlint/ana"
)

// UnusedWrite flags a write to a field of a local, non-pointer struct
// variable when the variable is never mentioned again in the function —
// the value (and the write) is dropped on the floor. Functions with
// closures, address-taken variables, or writes inside loops are skipped
// rather than analyzed imprecisely.
var UnusedWrite = &ana.Analyzer{
	Name: "unusedwrite",
	Doc:  "flag struct field writes whose variable is never used afterwards",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *ana.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkWrites(pass, fd)
			}
		}
	}
	return nil
}

func checkWrites(pass *ana.Pass, fd *ast.FuncDecl) {
	if hasClosures(fd.Body) {
		return
	}
	type write struct {
		assign *ast.AssignStmt
		id     *ast.Ident
		obj    types.Object
	}
	var writes []write
	addrTaken := map[types.Object]bool{}
	lastUse := map[types.Object]token.Pos{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := rootIdent(n.X); ok {
					addrTaken[pass.TypesInfo.Uses[id]] = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if p := n.End(); p > lastUse[obj] {
					lastUse[obj] = p
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN || len(n.Lhs) != 1 {
				return true
			}
			sel, ok := n.Lhs[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || obj == nil || !isLocalStruct(fd, obj) {
				return true
			}
			if insideLoop(fd.Body, n.Pos()) {
				return true
			}
			writes = append(writes, write{n, id, obj})
		}
		return true
	})

	for _, w := range writes {
		if addrTaken[w.obj] {
			continue
		}
		// Any mention of the variable after the write (including its own
		// RHS evaluation, which ends before the statement does) keeps it.
		if lastUse[w.obj] > w.assign.End() {
			continue
		}
		pass.Reportf(w.assign.Pos(), "unused write to field %s: %s is never used afterwards",
			types.ExprString(w.assign.Lhs[0]), w.id.Name)
	}
}

func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// isLocalStruct reports whether obj is a non-pointer struct variable
// declared inside fd (not a parameter or result).
func isLocalStruct(fd *ast.FuncDecl, obj *types.Var) bool {
	if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
		return false
	}
	if obj.Pos() < fd.Body.Pos() || obj.Pos() > fd.Body.End() {
		return false
	}
	return true
}

func hasClosures(body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			has = true
			return false
		}
		return true
	})
	return has
}

// insideLoop reports whether pos falls inside any for/range statement
// within body.
func insideLoop(body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body.Pos() <= pos && pos < n.Body.End() {
				inside = true
			}
		case *ast.RangeStmt:
			if n.Body.Pos() <= pos && pos < n.Body.End() {
				inside = true
			}
		}
		return !inside
	})
	return inside
}
