// Package unusedwrite exercises the stock unusedwrite analyzer.
package unusedwrite

type point struct{ x, y int }

func droppedWrite(px, py int) int {
	var p point
	p.x = px
	sum := px + py
	p.y = sum // want `unused write to field p\.y: p is never used afterwards`
	return sum
}

func returnedValue(px int) point {
	var p point
	p.x = px
	return p
}

func addressTaken(px int) *point {
	var p point
	q := &p
	p.x = px
	return q
}

func pointerParam(p *point, px int) {
	p.x = px // writes through a pointer escape to the caller; not flagged
}

func readBack(px int) int {
	var p point
	p.x = px
	return p.x
}
