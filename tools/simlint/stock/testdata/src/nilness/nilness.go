// Package nilness exercises the stock nilness analyzer.
package nilness

type node struct {
	next *node
	val  int
}

func derefInNilBranch(n *node) int {
	if n == nil {
		return n.val // want `n is nil on this branch \(checked at line 10\) and is dereferenced here`
	}
	return n.val
}

func callNilFunc(f func() int) int {
	if f == nil {
		return f() // want `f is nil on this branch \(checked at line 17\) and is dereferenced here`
	}
	return f()
}

func indexNilSlice(s []int) int {
	if s == nil {
		return s[0] // want `s is nil on this branch \(checked at line 24\) and is dereferenced here`
	}
	return s[0]
}

func reassignedFirst(n *node) int {
	if n == nil {
		n = &node{val: 1}
		return n.val // fine: n was reassigned before the dereference
	}
	return n.val
}

func mapIndexOK(m map[string]int) int {
	if m == nil {
		return m["a"] // indexing a nil map reads the zero value, legal
	}
	return m["a"]
}

func guardedProperly(n *node) int {
	if n == nil {
		return 0
	}
	return n.val
}
