// Package shadow exercises the stock shadow analyzer.
package shadow

import "errors"

func shadowedErr(fail bool) error {
	err := errors.New("outer")
	if fail {
		err := errors.New("inner") // want `declaration of "err" shadows declaration at line 7`
		_ = err
	}
	return err
}

func differentType() error {
	err := errors.New("outer")
	{
		err := "not an error" // different type: deliberate reuse, not flagged
		_ = err
	}
	return err
}

func shadowedCount(rows [][]int) int {
	n := 0
	for _, r := range rows {
		n := len(r) // want `declaration of "n" shadows declaration at line 25`
		_ = n
	}
	return n
}

func freshName() error {
	err := errors.New("outer")
	if err != nil {
		inner := errors.New("inner")
		_ = inner
	}
	return err
}
