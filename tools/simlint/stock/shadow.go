// Package stock carries reduced, stdlib-only reimplementations of three
// analyzers from golang.org/x/tools (shadow, nilness, unusedwrite). The
// originals cannot be vendored here — the build environment is offline —
// so these keep the high-signal core of each check and deliberately drop
// the SSA-based corner cases.
package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"daxvm/tools/simlint/ana"
)

// Shadow flags a `:=` declaration that shadows a function-level variable
// of identical type from an enclosing scope, when the outer variable is
// read again after the shadowing declaration — the classic `err := ...`
// inside a block losing the outer err. Shadows of variables that are
// never touched again, and statement-init declarations
// (`if err := f(); ...`), are idiomatic and skipped.
var Shadow = &ana.Analyzer{
	Name: "shadow",
	Doc:  "flag := declarations shadowing a live function-level variable of the same type",
	Run:  runShadow,
}

func runShadow(pass *ana.Pass) error {
	for _, f := range pass.Files {
		inits := initStmts(f)
		lastUse := useSpans(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || assign.Tok != token.DEFINE || inits[assign] {
				return true
			}
			for _, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
				if !ok || obj == nil {
					continue
				}
				checkShadow(pass, id, obj, lastUse)
			}
			return true
		})
	}
	return nil
}

// useSpans records the last position each object is mentioned at.
func useSpans(pass *ana.Pass, f *ast.File) map[types.Object]token.Pos {
	last := map[types.Object]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && id.End() > last[obj] {
			last[obj] = id.End()
		}
		return true
	})
	return last
}

// initStmts collects the Init assignments of if/for/switch statements:
// `if err := f(); err != nil` deliberately scopes the variable to the
// statement, so shadowing there is idiom, not accident.
func initStmts(f *ast.File) map[*ast.AssignStmt]bool {
	inits := map[*ast.AssignStmt]bool{}
	mark := func(s ast.Stmt) {
		if a, ok := s.(*ast.AssignStmt); ok {
			inits[a] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			mark(n.Init)
		case *ast.ForStmt:
			mark(n.Init)
		case *ast.SwitchStmt:
			mark(n.Init)
		case *ast.TypeSwitchStmt:
			mark(n.Init)
		}
		return true
	})
	return inits
}

func checkShadow(pass *ana.Pass, id *ast.Ident, obj *types.Var, lastUse map[types.Object]token.Pos) {
	inner := obj.Parent()
	if inner == nil || inner.Parent() == nil {
		return
	}
	_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok {
		return
	}
	if lastUse[outer] <= id.Pos() {
		// The outer variable is never read after the shadow: nothing can
		// observe a stale value.
		return
	}
	scope := outer.Parent()
	if scope == nil || scope == types.Universe || scope == pass.Pkg.Scope() {
		// Shadowing package-level names is idiomatic; only in-function
		// shadowing is error-prone enough to flag.
		return
	}
	if !types.Identical(obj.Type(), outer.Type()) {
		// A different type means the inner name is a deliberate reuse,
		// not an accidental shadow.
		return
	}
	if scope.End() <= inner.End() {
		// The outer variable dies with the inner scope; nothing after
		// can read the stale value.
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d",
		id.Name, pass.Fset.Position(outer.Pos()).Line)
}
