package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"daxvm/tools/simlint/ana"
)

// Nilness flags dereferences of a variable inside the body of an
// `if x == nil` check: field selection, indexing, unary *, or calling
// it. Map indexing and reassignment before the use are excluded.
var Nilness = &ana.Analyzer{
	Name: "nilness",
	Doc:  "flag dereference of a variable inside its own x == nil branch",
	Run:  runNilness,
}

func runNilness(pass *ana.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			id := nilCheckedVar(pass, ifs.Cond)
			if id == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if deref := findDeref(pass, ifs.Body, obj); deref.IsValid() {
				pass.Reportf(deref, "%s is nil on this branch (checked at line %d) and is dereferenced here",
					id.Name, pass.Fset.Position(ifs.Cond.Pos()).Line)
			}
			return true
		})
	}
	return nil
}

// nilCheckedVar matches `x == nil` (either operand order) and returns x.
func nilCheckedVar(pass *ana.Pass, cond ast.Expr) *ast.Ident {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNil(pass, y) {
		if id, ok := x.(*ast.Ident); ok {
			return id
		}
	}
	if isNil(pass, x) {
		if id, ok := y.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

func isNil(pass *ana.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
}

// findDeref returns the position of the first dereference of obj in
// body, stopping at any reassignment of obj.
func findDeref(pass *ana.Pass, body *ast.BlockStmt, obj types.Object) token.Pos {
	var found token.Pos
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() || reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
				} else if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[id] != nil && id.Name == obj.Name() {
					reassigned = true
				}
			}
		case *ast.SelectorExpr:
			// x.f on a pointer receiver dereferences; on an interface or
			// package it does not.
			if usesObj(pass, n.X, obj) && isPointer(pass, n.X) {
				found = n.Pos()
			}
		case *ast.StarExpr:
			if usesObj(pass, n.X, obj) {
				found = n.Pos()
			}
		case *ast.IndexExpr:
			if usesObj(pass, n.X, obj) && !isMap(pass, n.X) {
				found = n.Pos()
			}
		case *ast.CallExpr:
			if usesObj(pass, n.Fun, obj) {
				found = n.Pos()
			}
		}
		return true
	})
	return found
}

func usesObj(pass *ana.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func isPointer(pass *ana.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}

func isMap(pass *ana.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}
