package stock_test

import (
	"testing"

	"daxvm/tools/simlint/anatest"
	"daxvm/tools/simlint/stock"
)

func TestShadow(t *testing.T) {
	anatest.Run(t, "testdata", stock.Shadow, "shadow")
}

func TestNilness(t *testing.T) {
	anatest.Run(t, "testdata", stock.Nilness, "nilness")
}

func TestUnusedWrite(t *testing.T) {
	anatest.Run(t, "testdata", stock.UnusedWrite, "unusedwrite")
}
