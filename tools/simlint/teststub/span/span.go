// Package span is a no-op mirror of daxvm/internal/obs/span's surface
// for analyzer fixtures. The spanbalance analyzer matches Begin/End
// calls by (package name, method name), so fixtures import this stub
// instead of dragging the real collector into testdata builds.
package span

import (
	"daxvm/tools/simlint/teststub/sim"
)

// WaitKind mirrors the typed wait-reason enum.
type WaitKind int

// WaitMmapSem mirrors one wait kind; fixtures only need a value to pass.
const WaitMmapSem WaitKind = 0

// Collector mirrors the span collector's instrumentation surface.
type Collector struct{}

func (c *Collector) Begin(t *sim.Thread, class string)         { _, _ = t, class }
func (c *Collector) End(t *sim.Thread)                         { _ = t }
func (c *Collector) Wait(t *sim.Thread, k WaitKind, cy uint64) { _, _, _ = t, k, cy }
func (c *Collector) StartSegment(id string)                    { _ = id }
