// Package obs is a no-op mirror of daxvm/internal/obs's trace surface
// for analyzer fixtures (see teststub/sim).
package obs

import (
	"cmp"
	"slices"
)

// Tracer mirrors obs.Tracer's emit surface.
type Tracer struct{}

func (tr *Tracer) Emit(typ string, core int, ts, dur uint64, tag string, arg uint64) {
	_, _, _, _, _, _ = typ, core, ts, dur, tag, arg
}

// SortedKeys mirrors the deterministic-iteration helper.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
