// Package sim is a no-op mirror of daxvm/internal/sim's surface for
// analyzer fixtures. The simlint analyzers match simulator calls by
// (package name, method name, receiver type), so fixtures import this
// stub instead of dragging the whole engine into testdata builds.
package sim

// Thread mirrors sim.Thread's charge/attribution surface.
type Thread struct{}

func (t *Thread) Charge(c uint64)                 { _ = c }
func (t *Thread) ChargeAs(label string, c uint64) { _, _ = label, c }
func (t *Thread) AddRemote(path string, c uint64) { _, _ = path, c }
func (t *Thread) PushAttr(label string)           { _ = label }
func (t *Thread) PopAttr()                        {}
func (t *Thread) Now() uint64                     { return 0 }
func (t *Thread) Sleep(d uint64)                  { _ = d }
func (t *Thread) SleepUntil(tm uint64)            { _ = tm }

// Engine mirrors the thread-spawning surface.
type Engine struct{}

func (e *Engine) Go(name string, core int, start uint64, fn func(*Thread)) *Thread {
	_, _, _, _ = name, core, start, fn
	return &Thread{}
}

func (e *Engine) GoDaemon(name string, core int, start uint64, fn func(*Thread)) *Thread {
	return e.Go(name, core, start, fn)
}

// Mutex mirrors the instrumented sleeping mutex.
type Mutex struct{}

func (m *Mutex) Lock(t *Thread, acqCost uint64)   { _, _ = t, acqCost }
func (m *Mutex) Unlock(t *Thread, relCost uint64) { _, _ = t, relCost }

// SpinLock mirrors the instrumented spinlock.
type SpinLock struct{}

func (s *SpinLock) Lock(t *Thread, acqCost uint64)   { _, _ = t, acqCost }
func (s *SpinLock) Unlock(t *Thread, relCost uint64) { _, _ = t, relCost }

// RWSem mirrors the instrumented reader/writer semaphore.
type RWSem struct{}

func (s *RWSem) Lock(t *Thread, acqCost uint64)    { _, _ = t, acqCost }
func (s *RWSem) Unlock(t *Thread, relCost uint64)  { _, _ = t, relCost }
func (s *RWSem) RLock(t *Thread, acqCost uint64)   { _, _ = t, acqCost }
func (s *RWSem) RUnlock(t *Thread, relCost uint64) { _, _ = t, relCost }
