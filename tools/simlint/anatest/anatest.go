// Package anatest is a minimal analysistest-style harness: it loads
// fixture packages from an analyzer's testdata/src tree, runs the
// analyzer, and checks reported diagnostics against `// want "regexp"`
// comments on the offending lines. Fixtures are ordinary compiling Go
// packages inside the module (testdata directories are invisible to
// `./...` patterns, so `make lint`, vet and builds never see them).
package anatest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"daxvm/tools/simlint/ana"
)

// wantRe pulls the quoted regexps out of a want comment; both
// `// want "..."` and backquoted forms are accepted, the latter so
// regexps need no double escaping.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> for each named fixture package, applies a,
// and fails t on any mismatch between diagnostics and want comments.
func Run(t *testing.T, testdata string, a *ana.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, p := range fixtures {
		patterns[i] = "./src/" + p
	}
	pkgs, err := ana.Load(testdata, patterns...)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(fixtures))
	}
	for _, pkg := range pkgs {
		diags, err := runOne(a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		checkPackage(t, pkg, diags)
	}
}

// runOne applies a to one fixture package. Whole-program analyzers see
// a single-package program (each fixture is its own little world), with
// suppressions filtered the same way the driver filters them.
func runOne(a *ana.Analyzer, pkg *ana.Package) ([]ana.Diagnostic, error) {
	if !a.WholeProgram {
		return ana.Run(a, pkg)
	}
	prog := ana.NewProgram([]*ana.Package{pkg})
	marked, err := ana.RunProgramMarked(a, prog, ana.CollectSuppressions(pkg))
	if err != nil {
		return nil, err
	}
	var diags []ana.Diagnostic
	for _, md := range marked {
		if !md.Suppressed {
			diags = append(diags, md.Diagnostic)
		}
	}
	return diags, nil
}

func checkPackage(t *testing.T, pkg *ana.Package, diags []ana.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range pkg.Syntax {
		collectWants(t, pkg.Fset, f, wants)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		exps := wants[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[string][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", key, q, err)
				}
				re, err := regexp.Compile(s)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", key, s, err)
				}
				wants[key] = append(wants[key], &expectation{re: re})
			}
			if strings.TrimSpace(m[1]) == "" {
				t.Fatalf("%s: want comment with no quoted regexp", key)
			}
		}
	}
}
