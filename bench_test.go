package daxvm

import (
	"fmt"
	"io"
	"testing"

	"daxvm/internal/bench"
)

// benchExperiment runs one paper experiment per benchmark iteration and
// republishes its headline metrics through the testing.B metric channel.
// Quick mode keeps -bench=. runs tractable; `go run ./cmd/daxbench <id>`
// regenerates the full-scale tables.
func benchExperiment(b *testing.B, id string, headline func(m map[string]float64) map[string]float64) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	var metrics map[string]float64
	for i := 0; i < b.N; i++ {
		r := e.Run(bench.Options{Quick: true})
		metrics = r.Metrics
	}
	if headline != nil {
		for name, v := range headline(metrics) {
			b.ReportMetric(v, name)
		}
	}
}

// ratio returns a/b, or 0.
func ratio(m map[string]float64, a, b string) float64 {
	if m[b] == 0 {
		return 0
	}
	return m[a] / m[b]
}

// BenchmarkFig4ReadOnce regenerates Fig. 1a/4: read-once access vs file
// size. Headline: DaxVM over read(2) at 32 KiB and large sizes.
func BenchmarkFig4ReadOnce(b *testing.B) {
	benchExperiment(b, "fig4", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxvm/read@32K": ratio(m, "32K/daxvm-async", "32K/read"),
			"mmap/read@32K":  ratio(m, "32K/mmap", "32K/read"),
			"daxvm/read@8M":  ratio(m, "8.0M/daxvm-async", "8.0M/read"),
		}
	})
}

// BenchmarkFig1bScalability regenerates Fig. 1b: read-once throughput vs
// thread count. Headline: 16-thread scaling factors.
func BenchmarkFig1bScalability(b *testing.B) {
	benchExperiment(b, "fig1b", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"read-scale16":  ratio(m, "t16/read", "t1/read"),
			"mmap-scale16":  ratio(m, "t16/mmap", "t1/mmap"),
			"daxvm-scale16": ratio(m, "t16/daxvm-async", "t1/daxvm-async"),
		}
	})
}

// BenchmarkFig5Repetitive regenerates Fig. 1c/5: repetitive access over a
// large file. Headline: DaxVM over syscalls and over default mmap (4K).
func BenchmarkFig5Repetitive(b *testing.B) {
	benchExperiment(b, "fig5", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxvm/syscall@rand4Kwrite": ratio(m, "rand-write-4K/daxvm-nosync", "rand-write-4K/read"),
			"daxvm/mmap@rand4Kwrite":    ratio(m, "rand-write-4K/daxvm-nosync", "rand-write-4K/mmap"),
		}
	})
}

// BenchmarkTable2PageWalk regenerates Table II: average page-walk cycles
// for DRAM vs PMem file tables.
func BenchmarkTable2PageWalk(b *testing.B) {
	benchExperiment(b, "table2", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"dram-seq":  m["DRAM/seq"],
			"dram-rand": m["DRAM/rand"],
			"pmem-seq":  m["PMem/seq"],
			"pmem-rand": m["PMem/rand"],
		}
	})
}

// BenchmarkFig6Sync regenerates Fig. 6: kernel- vs user-space syncing.
func BenchmarkFig6Sync(b *testing.B) {
	benchExperiment(b, "fig6", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxnosync/write@64K": ratio(m, "64K/daxvm-nosync", "64K/write+fsync"),
			"mmapmsync/write@64K": ratio(m, "64K/mmap+msync", "64K/write+fsync"),
		}
	})
}

// BenchmarkFig7Appends regenerates Fig. 7: appends with and without
// asynchronous pre-zeroing, on ext4-DAX and NOVA.
func BenchmarkFig7Appends(b *testing.B) {
	benchExperiment(b, "fig7", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"ext4-prezero-gain@1M": ratio(m, "ext4-dax/1.0M/daxvm+prezero", "ext4-dax/1.0M/mmap"),
			"nova-write/mmap@1M":   ratio(m, "nova/1.0M/write", "nova/1.0M/mmap"),
			"nova-daxfull/write@1M": ratio(m,
				"nova/1.0M/daxvm+prezero+nosync", "nova/1.0M/write"),
		}
	})
}

// BenchmarkFig8aApache regenerates Fig. 8a: web-server scalability.
func BenchmarkFig8aApache(b *testing.B) {
	benchExperiment(b, "fig8a", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxvm/mmap@16": ratio(m, "t16/daxvm-async", "t16/mmap"),
			"daxvm/read@16": ratio(m, "t16/daxvm-async", "t16/read"),
			"latr/mmap@16":  ratio(m, "t16/latr", "t16/mmap"),
		}
	})
}

// BenchmarkFig8bPageSize regenerates Fig. 8b: page-size sweep at 16 cores.
func BenchmarkFig8bPageSize(b *testing.B) {
	benchExperiment(b, "fig8b", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxvm/read@256K": ratio(m, "256K/daxvm-async", "256K/read"),
		}
	})
}

// BenchmarkFig9aTextSearch regenerates Fig. 9a: text-search scalability.
func BenchmarkFig9aTextSearch(b *testing.B) {
	benchExperiment(b, "fig9a", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxvm/read@16": ratio(m, "t16/daxvm-async", "t16/read"),
			"daxvm/mmap@16": ratio(m, "t16/daxvm-async", "t16/mmap"),
		}
	})
}

// BenchmarkFig9bBoot regenerates Fig. 9b: P-Redis boot curves.
func BenchmarkFig9bBoot(b *testing.B) {
	benchExperiment(b, "fig9b", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"populate-boot-ms":   m["populate/boot-ms"],
			"daxvm-boot-ms":      m["daxvm/boot-ms"],
			"lazy-warmup-ratio":  ratio(m, "mmap/first", "mmap/last"),
			"daxvm-instant-frac": ratio(m, "daxvm/first", "daxvm/last"),
		}
	})
}

// BenchmarkFig9cYCSB regenerates Fig. 9c: YCSB over the LSM store on an
// aged ext4-DAX image.
func BenchmarkFig9cYCSB(b *testing.B) {
	benchExperiment(b, "fig9c", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxvm-nosync/mmap@load": ratio(m, "load/daxvm-nosync", "load/mmap"),
			"daxvm/mmap@runa":        ratio(m, "run-a/daxvm", "run-a/mmap"),
		}
	})
}

// BenchmarkFig9cNova regenerates the NOVA variant of Fig. 9c.
func BenchmarkFig9cNova(b *testing.B) {
	benchExperiment(b, "fig9c-nova", func(m map[string]float64) map[string]float64 {
		return map[string]float64{
			"daxvm-nosync/mmap@load": ratio(m, "load/daxvm-nosync", "load/mmap"),
		}
	})
}

// BenchmarkStorageOverheads regenerates the §V-B storage-tax numbers.
func BenchmarkStorageOverheads(b *testing.B) {
	benchExperiment(b, "storage", func(m map[string]float64) map[string]float64 {
		return map[string]float64{"pmem-tax-pct": m["pmem-pct"]}
	})
}

// BenchmarkFTCost regenerates the §V-B file-table maintenance overhead.
func BenchmarkFTCost(b *testing.B) {
	benchExperiment(b, "ftcost", func(m map[string]float64) map[string]float64 {
		return map[string]float64{"overhead-pct@32K": m["overhead-pct/32K"]}
	})
}

// BenchmarkAblations regenerates the design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	for _, id := range []string{"ablate-batch", "ablate-threshold", "ablate-migration", "ablate-throttle"} {
		id := id
		b.Run(id, func(b *testing.B) { benchExperiment(b, id, nil) })
	}
}

// TestExperimentRegistryComplete pins the experiment inventory to the
// paper's evaluation section.
func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig4", "fig1b", "fig5", "table2", "fig6", "fig7", "ftcost", "storage",
		"fig8a", "fig8b", "fig9a", "fig9b", "fig9c", "fig9c-nova",
		"ablate-batch", "ablate-threshold", "ablate-migration", "ablate-throttle",
	}
	have := map[string]bool{}
	for _, id := range Experiments() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

// TestPublicAPIQuickstart exercises the facade end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	sys := NewSystem(Config{Cores: 2, DeviceBytes: 256 << 20, EnableDaxVM: true})
	p := sys.NewProcess()
	var daxCycles uint64
	sys.Main(p, func(th *Thread, c *Core) {
		fd, err := p.Create(th, "api/check")
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		if err := p.Append(th, fd, make([]byte, 128<<10)); err != nil {
			t.Errorf("Append: %v", err)
			return
		}
		start := th.Now()
		va, err := p.DaxvmMmap(th, c, fd, 0, 128<<10, ReadOnly, MapEphemeral)
		if err != nil {
			t.Errorf("DaxvmMmap: %v", err)
			return
		}
		if err := p.AccessMapped(th, c, va, 128<<10, AccessSum); err != nil {
			t.Errorf("AccessMapped: %v", err)
		}
		if err := p.DaxvmMunmap(th, c, va); err != nil {
			t.Errorf("DaxvmMunmap: %v", err)
		}
		daxCycles = th.Now() - start
		p.Close(th, fd)
	})
	sys.Run()
	if daxCycles == 0 {
		t.Fatal("no cycles recorded")
	}
}

// TestRunExperimentAPI checks the programmatic experiment entry point.
func TestRunExperimentAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, err := RunExperiment("storage", true, io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m["pmem-pct"] <= 0 {
		t.Fatalf("metrics = %v", m)
	}
	if _, err := RunExperiment("nope", true, io.Discard, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Example output hook so `go test` compiles the examples' import path too.
var _ = fmt.Sprintf
