// Command daxfs inspects simulated file-system images: it formats a
// device, optionally ages it with the Geriatrix-style churn, and reports
// fragmentation and huge-page-coverage statistics — the image properties
// that drive the paper's aged-vs-fresh contrasts.
//
// Usage:
//
//	daxfs [-size GiB] [-age] [-rounds N] [-util 0.70] [-probe MiB]
package main

import (
	"flag"
	"fmt"
	"os"

	"daxvm/internal/fs/agefs"
	"daxvm/internal/fs/ext4"
	"daxvm/internal/fs/vfs"
	"daxvm/internal/mem"
	"daxvm/internal/pmem"
	"daxvm/internal/sim"
)

func main() {
	sizeGiB := flag.Int("size", 2, "device size in GiB")
	age := flag.Bool("age", false, "apply Geriatrix-style churn")
	rounds := flag.Int("rounds", 6, "churn rounds")
	util := flag.Float64("util", 0.70, "target utilization")
	probeMiB := flag.Int("probe", 64, "probe allocation size in MiB")
	flag.Parse()

	dev := pmem.New(pmem.Config{Size: uint64(*sizeGiB) << 30})
	fs := ext4.Mkfs(ext4.Config{Dev: dev, JournalBytes: 64 << 20})

	e := sim.New()
	e.Go("daxfs", 0, 0, func(t *sim.Thread) {
		if *age {
			cfg := agefs.DefaultConfig()
			cfg.ChurnRounds = *rounds
			cfg.Utilization = *util
			rep, err := agefs.Age(t, fs, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aging:", err)
				os.Exit(1)
			}
			fmt.Printf("aged image: %d live files, utilization %.2f\n", rep.FilesLive, rep.Utilization)
		}
		fmt.Printf("free space:   %s\n", human(fs.FreeSpace()))
		fmt.Printf("free extents: %d\n", fs.FreeExtentCount())

		// Probe: how fragmented would a large allocation be, and what
		// huge-page coverage would it get?
		in, err := fs.Create(t, "probe")
		if err != nil {
			fmt.Fprintln(os.Stderr, "probe:", err)
			os.Exit(1)
		}
		probe := uint64(*probeMiB) << 20
		if err := fs.Fallocate(t, in, 0, probe); err != nil {
			fmt.Fprintln(os.Stderr, "probe fallocate:", err)
			os.Exit(1)
		}
		exts := fs.Extents(in)
		hugeable := 0
		totalHuge := int(probe / mem.HugeSize)
		for chunk := 0; chunk < totalHuge; chunk++ {
			first := uint64(chunk) * 512
			if covered(exts, first) {
				hugeable++
			}
		}
		fmt.Printf("probe %s:     %d extents, huge coverage %d/%d (%.0f%%)\n",
			human(probe), len(exts), hugeable, totalHuge, 100*float64(hugeable)/float64(totalHuge))
	})
	e.Run()
}

// covered reports whether file blocks [first, first+512) sit in one
// extent with 2 MiB-aligned physical start.
func covered(exts []vfs.Extent, first uint64) bool {
	for _, e := range exts {
		if e.File <= first && first+512 <= e.End() {
			phys := e.Phys + (first - e.File)
			return phys%512 == 0
		}
	}
	return false
}

func human(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
