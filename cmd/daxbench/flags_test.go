package main

import (
	"flag"
	"io"
	"reflect"
	"testing"
)

// Flags must be honored wherever they appear, including after experiment
// ids — the usage pattern `daxbench ftcost -quick -metrics-out dir`.
func TestParseInterleavedFlagsAfterPositionals(t *testing.T) {
	fs := flag.NewFlagSet("daxbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	quick := fs.Bool("quick", false, "")
	out := fs.String("metrics-out", "", "")
	n := fs.Int("nodes", 0, "")

	pos, err := parseInterleaved(fs, []string{"ftcost", "-quick", "storage", "-metrics-out", "dir", "-nodes", "4", "numa"})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"ftcost", "storage", "numa"}; !reflect.DeepEqual(pos, want) {
		t.Fatalf("positionals = %v, want %v", pos, want)
	}
	if !*quick || *out != "dir" || *n != 4 {
		t.Fatalf("flags not honored: quick=%v metrics-out=%q nodes=%d", *quick, *out, *n)
	}
}

func TestParseInterleavedUnknownFlag(t *testing.T) {
	fs := flag.NewFlagSet("daxbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if _, err := parseInterleaved(fs, []string{"ftcost", "-no-such-flag"}); err == nil {
		t.Fatal("unknown flag after positional did not error")
	}
}

func TestParseInterleavedNoArgs(t *testing.T) {
	fs := flag.NewFlagSet("daxbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	pos, err := parseInterleaved(fs, nil)
	if err != nil || len(pos) != 0 {
		t.Fatalf("pos=%v err=%v", pos, err)
	}
}
