package main

import (
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"
)

// Flags must be honored wherever they appear, including after experiment
// ids — the usage pattern `daxbench ftcost -quick -metrics-out dir`.
func TestParseInterleavedFlagsAfterPositionals(t *testing.T) {
	fs := flag.NewFlagSet("daxbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	quick := fs.Bool("quick", false, "")
	out := fs.String("metrics-out", "", "")
	n := fs.Int("nodes", 0, "")

	pos, err := parseInterleaved(fs, []string{"ftcost", "-quick", "storage", "-metrics-out", "dir", "-nodes", "4", "numa"})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"ftcost", "storage", "numa"}; !reflect.DeepEqual(pos, want) {
		t.Fatalf("positionals = %v, want %v", pos, want)
	}
	if !*quick || *out != "dir" || *n != 4 {
		t.Fatalf("flags not honored: quick=%v metrics-out=%q nodes=%d", *quick, *out, *n)
	}
}

func TestParseInterleavedUnknownFlag(t *testing.T) {
	fs := flag.NewFlagSet("daxbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if _, err := parseInterleaved(fs, []string{"ftcost", "-no-such-flag"}); err == nil {
		t.Fatal("unknown flag after positional did not error")
	}
}

func TestParseInterleavedNoArgs(t *testing.T) {
	fs := flag.NewFlagSet("daxbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	pos, err := parseInterleaved(fs, nil)
	if err != nil || len(pos) != 0 {
		t.Fatalf("pos=%v err=%v", pos, err)
	}
}

func TestExportFlagsSet(t *testing.T) {
	if got := exportFlagsSet("", "", "", "", ""); len(got) != 0 {
		t.Fatalf("no flags set, got %v", got)
	}
	got := exportFlagsSet("t.json", "", "p.folded", "", "s.json")
	want := []string{"-trace", "-profile-out", "-spans-out"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestExportConflict pins the exit-2 contract for flag combinations that
// run no experiment: export flags with -compare/-validate or `list` are
// rejected with a usage hint, as is -exemplars without a sink.
func TestExportConflict(t *testing.T) {
	cases := []struct {
		name             string
		compare, valid   bool
		firstArg         string
		export           []string
		exemplarsSet     bool
		exemplars        int
		spansOut, outDir string
		wantSubstr       string // "" means no conflict
	}{
		{name: "plain-run", firstArg: "ftcost", exemplars: 3},
		{name: "run-with-exports", firstArg: "all", export: []string{"-trace"}, exemplars: 3},
		{name: "compare-clean", compare: true, exemplars: 3},
		{name: "validate-clean", valid: true, exemplars: 3},
		{name: "compare-and-validate", compare: true, valid: true, exemplars: 3, wantSubstr: "separate modes"},
		{name: "compare-with-trace", compare: true, export: []string{"-trace"}, exemplars: 3, wantSubstr: "-trace"},
		{name: "validate-with-spans", valid: true, export: []string{"-spans-out"}, exemplars: 3, wantSubstr: "-spans-out"},
		{name: "compare-with-exemplars", compare: true, exemplarsSet: true, exemplars: 5, wantSubstr: "-exemplars"},
		{name: "list-with-metrics", firstArg: "list", export: []string{"-metrics-out"}, exemplars: 3, wantSubstr: "list"},
		{name: "list-with-exemplars", firstArg: "list", exemplarsSet: true, exemplars: 5, wantSubstr: "-exemplars"},
		{name: "exemplars-zero", firstArg: "ftcost", exemplarsSet: true, exemplars: 0, spansOut: "s.json", wantSubstr: ">= 1"},
		{name: "exemplars-no-sink", firstArg: "ftcost", exemplarsSet: true, exemplars: 5, wantSubstr: "no effect"},
		{name: "exemplars-with-spans-out", firstArg: "ftcost", exemplarsSet: true, exemplars: 5, spansOut: "s.json"},
		{name: "exemplars-with-metrics-out", firstArg: "ftcost", exemplarsSet: true, exemplars: 5, outDir: "d"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg := exportConflict(c.compare, c.valid, c.firstArg, c.export, c.exemplarsSet, c.exemplars, c.spansOut, c.outDir)
			if c.wantSubstr == "" {
				if msg != "" {
					t.Fatalf("unexpected conflict: %q", msg)
				}
				return
			}
			if !strings.Contains(msg, c.wantSubstr) {
				t.Fatalf("msg %q does not mention %q", msg, c.wantSubstr)
			}
		})
	}
}

func TestSchedConflict(t *testing.T) {
	cases := []struct {
		name       string
		sched      string
		shards     int
		shardsSet  bool
		wantSubstr string
	}{
		{name: "seq-default", sched: "seq"},
		{name: "shard-default-count", sched: "shard"},
		{name: "shard-explicit-count", sched: "shard", shards: 4, shardsSet: true},
		{name: "unknown-sched", sched: "parallel", wantSubstr: "not supported"},
		{name: "negative-shards", sched: "shard", shards: -1, shardsSet: true, wantSubstr: ">= 1"},
		{name: "zero-shards-explicit", sched: "shard", shards: 0, shardsSet: true, wantSubstr: ">= 1"},
		{name: "shards-without-shard-sched", sched: "seq", shards: 4, shardsSet: true, wantSubstr: "-sched shard"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg := schedConflict(c.sched, c.shards, c.shardsSet)
			if c.wantSubstr == "" {
				if msg != "" {
					t.Fatalf("unexpected conflict: %q", msg)
				}
				return
			}
			if !strings.Contains(msg, c.wantSubstr) {
				t.Fatalf("msg %q does not mention %q", msg, c.wantSubstr)
			}
		})
	}
}
