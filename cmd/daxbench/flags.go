package main

import (
	"flag"
	"fmt"
	"strings"
)

// parseInterleaved parses argv with fs, letting flags and positional
// arguments interleave freely: the standard flag package stops at the
// first positional, which used to force a hand-rolled re-scan switch that
// every new flag had to be added to twice. Here the parse simply resumes
// after each positional, so a flag registered once works in any position.
// Returns the positionals in order.
func parseInterleaved(fs *flag.FlagSet, argv []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(argv); err != nil {
			return nil, err
		}
		argv = fs.Args()
		if len(argv) == 0 {
			return pos, nil
		}
		pos = append(pos, argv[0])
		argv = argv[1:]
	}
}

// exportFlagsSet names the run-export flags that were given a value, for
// the conflict diagnostics.
func exportFlagsSet(trace, metrics, profile, timeline, spans string) []string {
	var set []string
	for _, f := range []struct{ name, val string }{
		{"-trace", trace},
		{"-metrics-out", metrics},
		{"-profile-out", profile},
		{"-timeline-out", timeline},
		{"-spans-out", spans},
	} {
		if f.val != "" {
			set = append(set, f.name)
		}
	}
	return set
}

// exportConflict returns the diagnostic for a flag combination that
// cannot work, or "" when the combination is fine. Export flags describe
// an experiment run, so modes that run nothing (-compare, -validate,
// `list`) reject them rather than silently writing empty files; the
// checks live here, pure, so flags_test.go can pin the exit-2 contract
// without exec'ing the binary.
func exportConflict(compareMode, validateMode bool, firstArg string, exportFlags []string, exemplarsSet bool, exemplars int, spansPath, metricsDir string) string {
	flagged := exportFlags
	if exemplarsSet {
		flagged = append(append([]string{}, exportFlags...), "-exemplars")
	}
	switch {
	case compareMode && validateMode:
		return "-compare and -validate are separate modes; pick one"
	case (compareMode || validateMode) && len(flagged) > 0:
		return fmt.Sprintf("export flags (%s) only apply when running experiments, not with -compare/-validate; see 'daxbench' usage",
			strings.Join(flagged, ", "))
	case compareMode || validateMode:
		return ""
	case firstArg == "list" && len(flagged) > 0:
		return fmt.Sprintf("export flags (%s) only apply when running experiments, not with 'list'; see 'daxbench' usage",
			strings.Join(flagged, ", "))
	case exemplars < 1:
		return fmt.Sprintf("-exemplars must be >= 1 (got %d)", exemplars)
	case exemplarsSet && spansPath == "" && metricsDir == "":
		return "-exemplars has no effect without a sink; add -spans-out FILE or -metrics-out DIR"
	}
	return ""
}

// schedConflict validates the scheduler-selection flags, or returns ""
// when they are fine. Pure for the same reason exportConflict is: the
// exit-2 contract is pinned by flags_test.go without exec'ing the binary.
// The scheduler never changes artifact bytes (enforced by sched-gate), so
// unlike -nodes/-placement the values are validated but not hashed into
// config_hash.
func schedConflict(sched string, shards int, shardsSet bool) string {
	switch {
	case sched != "seq" && sched != "shard":
		return fmt.Sprintf("-sched %q not supported; use seq or shard", sched)
	case shards < 0:
		return fmt.Sprintf("-shards must be >= 1 (got %d)", shards)
	case shardsSet && shards == 0:
		return "-shards must be >= 1 (got 0)"
	case shardsSet && sched != "shard":
		return "-shards only applies with -sched shard"
	}
	return ""
}
