package main

import "flag"

// parseInterleaved parses argv with fs, letting flags and positional
// arguments interleave freely: the standard flag package stops at the
// first positional, which used to force a hand-rolled re-scan switch that
// every new flag had to be added to twice. Here the parse simply resumes
// after each positional, so a flag registered once works in any position.
// Returns the positionals in order.
func parseInterleaved(fs *flag.FlagSet, argv []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(argv); err != nil {
			return nil, err
		}
		argv = fs.Args()
		if len(argv) == 0 {
			return pos, nil
		}
		pos = append(pos, argv[0])
		argv = argv[1:]
	}
}
