// Command daxbench regenerates the DaxVM paper's evaluation tables and
// figures on the simulated machine.
//
// Usage:
//
//	daxbench list                 # list experiment ids
//	daxbench all [-quick]         # run everything
//	daxbench <id> [...] [-quick]  # run specific experiments (fig4, table2, ...)
//	daxbench -compare old.json new.json   # perf-regression gate
//	daxbench -validate a.json [b.json...] # artifact schema validation
//
// Observability:
//
//	-trace out.json      write a Chrome trace of the run (open in Perfetto;
//	                     includes timeline counter tracks)
//	-metrics-out dir     write a BENCH_<id>.json artifact per experiment
//	-profile-out out.folded  write the cycle profile as folded stacks
//	                         (feed to flamegraph.pl or speedscope)
//	-timeline-out out.csv    write per-interval timeline series as tidy CSV
//	-spans-out out.json  write the tail-exemplar span trees as a Chrome
//	                     trace (flow-linked slices; open in Perfetto)
//	-exemplars N         keep the N slowest span trees per operation class
//	                     (default 3; feeds -spans-out and the artifact's
//	                     exemplars section)
//
// Export flags describe a run, so they only make sense when running
// experiments: combining them with -compare, -validate or `list` exits 2
// with a usage hint, as does -exemplars without a sink that uses it.
//
// Every experiment run also prints a host line (wall seconds and engine
// events/sec) and embeds it in the artifact's `host` block — the only
// artifact field that varies between runs of the same build.
//
// Runs with any export flag also print each experiment segment's
// bottleneck verdict (the saturation reports the artifact embeds).
//
// Compare exits 0 when the new artifact is within tolerance of the old,
// 1 on regression, 2 when the artifacts are not comparable (different
// experiment or config) or unreadable. Host-speed deltas and saturation
// verdict changes print as informational lines and never affect the
// exit code. Validate exits 0 when every named artifact parses and
// passes schema checks, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"daxvm/internal/bench"
	"daxvm/internal/cost"
	"daxvm/internal/obs"
	"daxvm/internal/obs/bottleneck"
	"daxvm/internal/obs/span"
	"daxvm/internal/obs/timeline"
)

// profileTopN bounds the per-experiment cycle table printed on stdout.
const profileTopN = 12

// timelineTracks are the registry counters mirrored as Chrome counter
// tracks alongside the always-present "cycles" track.
var timelineTracks = []string{
	"cpu.faults",
	"mm.lock.read.wait_cycles",
	"mm.lock.wait_cycles",
	"pmem.bytes_read",
	"pmem.bytes_written",
	"pmem.nt_stores",
	"tlb.shootdowns",
}

func main() {
	quick := flag.Bool("quick", false, "shrink working sets for a fast pass")
	verbose := flag.Bool("v", false, "stream per-configuration progress")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON of the run to this file")
	metricsDir := flag.String("metrics-out", "", "write a BENCH_<id>.json artifact per experiment into this directory")
	profilePath := flag.String("profile-out", "", "write the run's cycle profile as folded stacks to this file")
	timelinePath := flag.String("timeline-out", "", "write per-interval timeline series as CSV to this file")
	spansPath := flag.String("spans-out", "", "write tail-exemplar span trees as Chrome trace-event JSON to this file")
	exemplars := flag.Int("exemplars", 3, "slowest span trees kept per operation class (feeds -spans-out and artifact exemplars)")
	compare := flag.Bool("compare", false, "compare two artifacts: daxbench -compare old.json new.json")
	validate := flag.Bool("validate", false, "validate artifact files: daxbench -validate a.json [b.json...]")
	nodes := flag.Int("nodes", 0, "NUMA node count for topology-aware experiments (0 = experiment default)")
	placement := flag.String("placement", "", "placement policy for topology-aware experiments: local|remote|interleave|bind:<n>")
	sched := flag.String("sched", "seq", "virtual-time scheduler: seq (sequential reference) or shard (host-parallel observability; identical artifacts)")
	shards := flag.Int("shards", 0, "shard count for -sched shard (0 = default)")
	// Flags may appear before or after experiment ids; flag.CommandLine
	// exits on parse errors, so the error return is unreachable here.
	args, _ := parseInterleaved(flag.CommandLine, os.Args[1:])

	// Export flags describe an experiment run; reject combinations where
	// no run happens (-compare, -validate, `list`) instead of silently
	// producing empty files.
	exportFlags := exportFlagsSet(*tracePath, *metricsDir, *profilePath, *timelinePath, *spansPath)
	exemplarsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exemplars" {
			exemplarsSet = true
		}
	})

	firstArg := ""
	if len(args) > 0 {
		firstArg = args[0]
	}
	if msg := exportConflict(*compare, *validate, firstArg, exportFlags, exemplarsSet, *exemplars, *spansPath, *metricsDir); msg != "" {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
	if *compare {
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: daxbench -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(args[0], args[1]))
	}
	if *validate {
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "usage: daxbench -validate a.json [b.json...]")
			os.Exit(2)
		}
		os.Exit(runValidate(args))
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if *nodes < 0 {
		fmt.Fprintf(os.Stderr, "-nodes must be >= 1 (got %d)\n", *nodes)
		os.Exit(2)
	}
	if *placement != "" && !bench.NumaSupportedPlacement(*placement) {
		fmt.Fprintf(os.Stderr, "-placement %q not supported; use local, remote, interleave or bind:<n>\n", *placement)
		os.Exit(2)
	}
	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})
	if msg := schedConflict(*sched, *shards, shardsSet); msg != "" {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
	opts := bench.Options{Quick: *quick, Nodes: *nodes, Placement: *placement, Sched: *sched, Shards: *shards}
	if *verbose {
		opts.Log = os.Stderr
	}
	// The hub, timeline and span collector are always on: sampling and
	// span bookkeeping charge zero simulated cycles, and the host summary
	// needs the engine event counts. The cycle-attribution and
	// critical-path stdout tables stay gated on an output flag so the
	// default output is unchanged.
	opts.Obs = obs.New(0)
	opts.Timeline = timeline.New(opts.Obs.Reg, opts.Obs.Cycles, timeline.Config{
		Tracer:        opts.Obs.Trace,
		TrackCounters: timelineTracks,
	})
	opts.Spans = span.New(*exemplars)

	r := &runner{
		opts:        opts,
		metricsDir:  *metricsDir,
		printCycles: *tracePath != "" || *metricsDir != "" || *profilePath != "" || *spansPath != "",
	}
	switch args[0] {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range bench.All() {
			checkTopo(e, opts)
			r.runOne(e)
		}
	default:
		for _, id := range args {
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try 'daxbench list'\n", id)
				os.Exit(2)
			}
			checkTopo(e, opts)
			r.runOne(e)
		}
	}

	if *tracePath != "" {
		if err := writeTrace(opts.Obs, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[trace: %d events -> %s (%d dropped); open in https://ui.perfetto.dev]\n",
			opts.Obs.Trace.Len(), *tracePath, opts.Obs.Trace.Dropped())
	}
	if *profilePath != "" {
		if err := writeProfile(opts.Obs, *profilePath); err != nil {
			fmt.Fprintf(os.Stderr, "profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[profile: %d cycles attributed -> %s (folded stacks)]\n",
			opts.Obs.Cycles.Total(), *profilePath)
	}
	if *timelinePath != "" {
		if err := writeTimeline(opts.Timeline, *timelinePath); err != nil {
			fmt.Fprintf(os.Stderr, "timeline: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[timeline: %s (tidy CSV: experiment,interval,start,end,series,value)]\n", *timelinePath)
	}
	if *spansPath != "" {
		if err := writeSpans(opts.Spans, *spansPath); err != nil {
			fmt.Fprintf(os.Stderr, "spans: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[spans: top %d exemplars/class -> %s; open in https://ui.perfetto.dev]\n",
			*exemplars, *spansPath)
	}
}

// checkTopo rejects topology overrides on experiments that model the
// paper's flat single-socket machine.
func checkTopo(e bench.Experiment, o bench.Options) {
	if (o.Nodes != 0 || o.Placement != "") && !e.Topo {
		fmt.Fprintf(os.Stderr, "experiment %q does not accept -nodes/-placement (only topology-aware experiments such as \"numa\" do)\n", e.ID)
		os.Exit(2)
	}
}

func runCompare(oldPath, newPath string) int {
	oldRaw, err := os.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 2
	}
	newRaw, err := os.ReadFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 2
	}
	rep, err := bench.CompareArtifacts(oldRaw, newRaw)
	if err != nil {
		// Invalid or non-comparable artifacts (MismatchError) — not a
		// measured regression, so a distinct exit code.
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	// Informational lines (host speed trend) print regardless of verdict
	// but never flip the exit code.
	for _, line := range rep.Info {
		fmt.Fprintf(os.Stderr, "info %s: %s\n", rep.ID, line)
	}
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "REGRESSION %s: %d of %d checks failed\n", rep.ID, len(rep.Regressions), rep.Checked)
		for _, reg := range rep.Regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", reg)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "ok %s: %d checks within tolerance\n", rep.ID, rep.Checked)
	return 0
}

type runner struct {
	opts        bench.Options
	metricsDir  string
	printCycles bool

	// Per-run cumulative state: the obs hub accumulates across
	// experiments, so each experiment's share is a delta.
	prevCycles obs.CycleSnapshot
	prevReg    obs.Snapshot
	prevEvents uint64
}

func (r *runner) runOne(e bench.Experiment) {
	// Host telemetry is measured here, outside the deterministic core:
	// the simulator itself never reads the wall clock (simlint enforces
	// that in internal/), so the artifact stays byte-stable except the
	// clearly-marked host block.
	start := time.Now()
	res := e.Run(r.opts)
	wall := time.Since(start)
	events := r.opts.Obs.EnginesEvents() - r.prevEvents
	r.prevEvents += events
	eps := 0.0
	if s := wall.Seconds(); s > 0 {
		eps = float64(events) / s
	}

	bench.Render(os.Stdout, res)
	fmt.Printf("host: %.2fs wall, %d engine events, %.3g events/sec\n\n", wall.Seconds(), events, eps)
	fmt.Fprintf(os.Stderr, "[%s finished in %v]\n", e.ID, wall.Round(time.Millisecond))

	o := r.opts.Obs
	cycles := o.Cycles.Snapshot()
	reg := o.Reg.Snapshot()
	cycleDelta := cycles.Delta(r.prevCycles)
	regDelta := reg.Delta(r.prevReg)
	r.prevCycles, r.prevReg = cycles, reg

	if r.printCycles {
		fmt.Printf("-- cycle attribution (%s, top %d) --\n", e.ID, profileTopN)
		cycleDelta.WriteTable(os.Stdout, profileTopN)
		printLatency(regDelta, "cpu.walk_latency", "page walk")
		printLatency(regDelta, "mm.fault_latency", "fault service")
		fmt.Println()
		if seg, ok := r.opts.Spans.ExportSegment(e.ID); ok {
			span.WriteTable(os.Stdout, seg)
			fmt.Println()
		}
		printSaturation(os.Stdout, r.opts, e.ID)
	}

	if r.metricsDir == "" {
		return
	}
	snap := o.Reg.Snapshot()
	art := bench.NewArtifact(res, r.opts, &snap, &cycleDelta)
	art.Host = &bench.HostTelemetry{WallSeconds: wall.Seconds(), Events: events, EventsPerSec: eps}
	path := filepath.Join(r.metricsDir, "BENCH_"+e.ID+".json")
	if err := writeArtifact(art, path); err != nil {
		fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[metrics: %s]\n", path)
}

// printSaturation prints the bottleneck verdict for the experiment's
// timeline segment and any "<id>/..." sub-segments (sweep experiments
// record one per point) — the same reports the artifact embeds.
func printSaturation(w io.Writer, o bench.Options, id string) {
	printed := false
	for _, ex := range o.Timeline.Export() {
		if ex.Segment != id && !strings.HasPrefix(ex.Segment, id+"/") {
			continue
		}
		var sp *span.SegmentExport
		if seg, ok := o.Spans.ExportSegment(ex.Segment); ok {
			sp = &seg
		}
		rep := bottleneck.Analyze(ex, sp)
		if !printed {
			fmt.Fprintf(w, "-- saturation (%s) --\n", id)
			printed = true
		}
		fmt.Fprintf(w, "  %-20s %s\n", ex.Segment, rep.Verdict)
	}
	if printed {
		fmt.Fprintln(w)
	}
}

// printLatency prints the p50/p99 of one latency histogram's delta.
func printLatency(d obs.Snapshot, name, label string) {
	h, ok := d.Hists[name]
	if !ok || h.Count == 0 {
		return
	}
	fmt.Printf("  %-14s p50 ~%.0f cyc, p99 ~%.0f cyc  (%d samples)\n",
		label, h.Quantile(0.50), h.Quantile(0.99), h.Count)
}

func writeArtifact(a *bench.Artifact, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteArtifact(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(o *obs.Obs, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Trace.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeProfile(o *obs.Obs, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Cycles.Snapshot().WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTimeline(tl *timeline.Timeline, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := timeline.WriteCSV(f, tl.Export()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSpans(sp *span.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := span.WriteChromeTrace(f, sp.Export(), float64(cost.CyclesPerUsec)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runValidate checks every named artifact against the schema; exit 0
// only when all pass, so `make validate-baselines` can glob the baseline
// directory.
func runValidate(paths []string) int {
	code := 0
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err == nil {
			err = bench.ValidateArtifact(raw)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "invalid %s: %v\n", p, err)
			code = 1
			continue
		}
		fmt.Fprintf(os.Stderr, "ok %s\n", p)
	}
	return code
}

func usage() {
	fmt.Fprintln(os.Stderr, `daxbench — DaxVM (MICRO'22) evaluation reproduction
usage:
  daxbench list
  daxbench all [-quick] [-v] [export flags]
  daxbench <id> [<id>...] [-quick] [-v] [-nodes n] [-placement p] [export flags]
  daxbench -compare old.json new.json
  daxbench -validate a.json [b.json...]
export flags (experiment runs only):
  -trace out.json  -metrics-out dir  -profile-out out.folded
  -timeline-out out.csv  -spans-out out.json  -exemplars N`)
}
