// Command daxbench regenerates the DaxVM paper's evaluation tables and
// figures on the simulated machine.
//
// Usage:
//
//	daxbench list                 # list experiment ids
//	daxbench all [-quick]         # run everything
//	daxbench <id> [...] [-quick]  # run specific experiments (fig4, table2, ...)
//
// Observability:
//
//	-trace out.json      write a Chrome trace of the run (open in Perfetto)
//	-metrics-out dir     write a BENCH_<id>.json artifact per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"daxvm/internal/bench"
	"daxvm/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "shrink working sets for a fast pass")
	verbose := flag.Bool("v", false, "stream per-configuration progress")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON of the run to this file")
	metricsDir := flag.String("metrics-out", "", "write a BENCH_<id>.json artifact per experiment into this directory")
	flag.Parse()
	// Accept flags after the command too (flag stops at positionals).
	args := make([]string, 0, flag.NArg())
	rest := flag.Args()
	for i := 0; i < len(rest); i++ {
		a := rest[i]
		switch a {
		case "-quick", "--quick":
			*quick = true
		case "-v", "--v":
			*verbose = true
		case "-trace", "--trace", "-metrics-out", "--metrics-out":
			if i+1 >= len(rest) {
				fmt.Fprintf(os.Stderr, "%s needs a value\n", a)
				os.Exit(2)
			}
			i++
			if a == "-trace" || a == "--trace" {
				*tracePath = rest[i]
			} else {
				*metricsDir = rest[i]
			}
		default:
			args = append(args, a)
		}
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	opts := bench.Options{Quick: *quick}
	if *verbose {
		opts.Log = os.Stderr
	}
	if *tracePath != "" || *metricsDir != "" {
		opts.Obs = obs.New(0)
	}

	r := runner{opts: opts, metricsDir: *metricsDir}
	switch args[0] {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range bench.All() {
			r.runOne(e)
		}
	default:
		for _, id := range args {
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try 'daxbench list'\n", id)
				os.Exit(2)
			}
			r.runOne(e)
		}
	}

	if *tracePath != "" {
		if err := writeTrace(opts.Obs, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[trace: %d events -> %s (%d dropped); open in https://ui.perfetto.dev]\n",
			opts.Obs.Trace.Len(), *tracePath, opts.Obs.Trace.Dropped())
	}
}

type runner struct {
	opts       bench.Options
	metricsDir string
}

func (r runner) runOne(e bench.Experiment) {
	start := time.Now()
	res := e.Run(r.opts)
	bench.Render(os.Stdout, res)
	fmt.Fprintf(os.Stderr, "[%s finished in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	if r.metricsDir == "" {
		return
	}
	var snap *obs.Snapshot
	if r.opts.Obs != nil {
		s := r.opts.Obs.Reg.Snapshot()
		snap = &s
	}
	path := filepath.Join(r.metricsDir, "BENCH_"+e.ID+".json")
	if err := writeArtifact(bench.NewArtifact(res, r.opts.Quick, snap), path); err != nil {
		fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[metrics: %s]\n", path)
}

func writeArtifact(a *bench.Artifact, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteArtifact(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(o *obs.Obs, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Trace.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprintln(os.Stderr, `daxbench — DaxVM (MICRO'22) evaluation reproduction
usage:
  daxbench list
  daxbench all [-quick] [-v] [-trace out.json] [-metrics-out dir]
  daxbench <id> [<id>...] [-quick] [-v] [-trace out.json] [-metrics-out dir]`)
}
