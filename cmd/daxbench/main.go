// Command daxbench regenerates the DaxVM paper's evaluation tables and
// figures on the simulated machine.
//
// Usage:
//
//	daxbench list                 # list experiment ids
//	daxbench all [-quick]         # run everything
//	daxbench <id> [...] [-quick]  # run specific experiments (fig4, table2, ...)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"daxvm/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink working sets for a fast pass")
	verbose := flag.Bool("v", false, "stream per-configuration progress")
	flag.Parse()
	// Accept flags after the command too (flag stops at positionals).
	args := make([]string, 0, flag.NArg())
	for _, a := range flag.Args() {
		switch a {
		case "-quick", "--quick":
			*quick = true
		case "-v", "--v":
			*verbose = true
		default:
			args = append(args, a)
		}
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	opts := bench.Options{Quick: *quick}
	if *verbose {
		opts.Log = os.Stderr
	}

	switch args[0] {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range bench.All() {
			runOne(e, opts)
		}
		return
	default:
		for _, id := range args {
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try 'daxbench list'\n", id)
				os.Exit(2)
			}
			runOne(e, opts)
		}
	}
}

func runOne(e bench.Experiment, opts bench.Options) {
	start := time.Now()
	r := e.Run(opts)
	bench.Render(os.Stdout, r)
	fmt.Fprintf(os.Stderr, "[%s finished in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, `daxbench — DaxVM (MICRO'22) evaluation reproduction
usage:
  daxbench list
  daxbench all [-quick] [-v]
  daxbench <id> [<id>...] [-quick] [-v]`)
}
